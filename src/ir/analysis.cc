#include "ir/analysis.h"

#include <algorithm>

#include "ir/simplify.h"

namespace sparsetir {
namespace ir {

namespace {

class VarCollector : public StmtVisitor
{
  public:
    std::set<const VarNode *> vars;

  protected:
    void
    visitVar(const VarNode *op) override
    {
        vars.insert(op);
    }
};

class AccessCollector : public StmtVisitor
{
  public:
    std::vector<BufferAccess> accesses;

  protected:
    void
    visitBufferLoad(const BufferLoadNode *op) override
    {
        accesses.push_back({op->buffer, op->indices, false});
        StmtVisitor::visitBufferLoad(op);
    }

    void
    visitBufferStore(const BufferStoreNode *op) override
    {
        accesses.push_back({op->buffer, op->indices, true});
        StmtVisitor::visitBufferStore(op);
    }
};

class BufferCollector : public StmtVisitor
{
  public:
    std::vector<Buffer> buffers;
    std::set<const BufferNode *> seen;

    void
    add(const Buffer &b)
    {
        if (b != nullptr && seen.insert(b.get()).second) {
            buffers.push_back(b);
        }
    }

  protected:
    void
    visitBufferLoad(const BufferLoadNode *op) override
    {
        add(op->buffer);
        StmtVisitor::visitBufferLoad(op);
    }

    void
    visitBufferStore(const BufferStoreNode *op) override
    {
        add(op->buffer);
        StmtVisitor::visitBufferStore(op);
    }

    void
    visitCall(const CallNode *op) override
    {
        add(op->bufferArg);
        StmtVisitor::visitCall(op);
    }

    void
    visitAllocate(const AllocateNode *op) override
    {
        add(op->buffer);
        StmtVisitor::visitAllocate(op);
    }
};

Interval
addIntervals(const Interval &a, const Interval &b)
{
    Interval r;
    r.hasLo = a.hasLo && b.hasLo;
    r.hasHi = a.hasHi && b.hasHi;
    if (r.hasLo) {
        r.lo = a.lo + b.lo;
    }
    if (r.hasHi) {
        r.hi = a.hi + b.hi;
    }
    return r;
}

Interval
negateInterval(const Interval &a)
{
    Interval r;
    r.hasLo = a.hasHi;
    r.hasHi = a.hasLo;
    if (r.hasLo) {
        r.lo = -a.hi;
    }
    if (r.hasHi) {
        r.hi = -a.lo;
    }
    return r;
}

Interval
mulIntervals(const Interval &a, const Interval &b)
{
    if (!a.hasLo || !a.hasHi || !b.hasLo || !b.hasHi) {
        return Interval::unknown();
    }
    int64_t candidates[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo,
                             a.hi * b.hi};
    Interval r;
    r.hasLo = r.hasHi = true;
    r.lo = *std::min_element(candidates, candidates + 4);
    r.hi = *std::max_element(candidates, candidates + 4);
    return r;
}

} // namespace

std::set<const VarNode *>
collectVars(const Expr &e)
{
    VarCollector c;
    c.visitExpr(e);
    return std::move(c.vars);
}

std::set<const VarNode *>
collectVars(const Stmt &s)
{
    VarCollector c;
    c.visitStmt(s);
    return std::move(c.vars);
}

std::vector<BufferAccess>
collectBufferAccesses(const Stmt &s)
{
    AccessCollector c;
    c.visitStmt(s);
    return std::move(c.accesses);
}

std::vector<Buffer>
collectBuffers(const Stmt &s)
{
    BufferCollector c;
    c.visitStmt(s);
    return std::move(c.buffers);
}

Interval
boundsOf(const Expr &e, const std::map<const VarNode *, Interval> &var_bounds)
{
    switch (e->kind) {
      case ExprKind::kIntImm:
        return Interval::constant(
            static_cast<const IntImmNode *>(e.get())->value);
      case ExprKind::kVar: {
        auto it = var_bounds.find(static_cast<const VarNode *>(e.get()));
        return it != var_bounds.end() ? it->second : Interval::unknown();
      }
      case ExprKind::kAdd: {
        auto op = static_cast<const BinaryNode *>(e.get());
        return addIntervals(boundsOf(op->a, var_bounds),
                            boundsOf(op->b, var_bounds));
      }
      case ExprKind::kSub: {
        auto op = static_cast<const BinaryNode *>(e.get());
        return addIntervals(boundsOf(op->a, var_bounds),
                            negateInterval(boundsOf(op->b, var_bounds)));
      }
      case ExprKind::kMul: {
        auto op = static_cast<const BinaryNode *>(e.get());
        return mulIntervals(boundsOf(op->a, var_bounds),
                            boundsOf(op->b, var_bounds));
      }
      case ExprKind::kFloorDiv: {
        auto op = static_cast<const BinaryNode *>(e.get());
        Interval a = boundsOf(op->a, var_bounds);
        int64_t d = 0;
        if (a.hasLo && a.hasHi && tryConstInt(op->b, &d) && d > 0) {
            Interval r;
            r.hasLo = r.hasHi = true;
            int64_t q1 = a.lo >= 0 ? a.lo / d : -((-a.lo + d - 1) / d);
            int64_t q2 = a.hi >= 0 ? a.hi / d : -((-a.hi + d - 1) / d);
            r.lo = std::min(q1, q2);
            r.hi = std::max(q1, q2);
            return r;
        }
        return Interval::unknown();
      }
      case ExprKind::kFloorMod: {
        auto op = static_cast<const BinaryNode *>(e.get());
        int64_t d = 0;
        if (tryConstInt(op->b, &d) && d > 0) {
            return Interval::range(0, d - 1);
        }
        return Interval::unknown();
      }
      case ExprKind::kMin: {
        auto op = static_cast<const BinaryNode *>(e.get());
        Interval a = boundsOf(op->a, var_bounds);
        Interval b = boundsOf(op->b, var_bounds);
        Interval r;
        r.hasLo = a.hasLo && b.hasLo;
        r.hasHi = a.hasHi || b.hasHi;
        if (r.hasLo) {
            r.lo = std::min(a.lo, b.lo);
        }
        if (a.hasHi && b.hasHi) {
            r.hi = std::min(a.hi, b.hi);
        } else if (a.hasHi) {
            r.hi = a.hi;
        } else if (b.hasHi) {
            r.hi = b.hi;
        }
        return r;
      }
      case ExprKind::kMax: {
        auto op = static_cast<const BinaryNode *>(e.get());
        Interval a = boundsOf(op->a, var_bounds);
        Interval b = boundsOf(op->b, var_bounds);
        Interval r;
        r.hasHi = a.hasHi && b.hasHi;
        r.hasLo = a.hasLo || b.hasLo;
        if (r.hasHi) {
            r.hi = std::max(a.hi, b.hi);
        }
        if (a.hasLo && b.hasLo) {
            r.lo = std::max(a.lo, b.lo);
        } else if (a.hasLo) {
            r.lo = a.lo;
        } else if (b.hasLo) {
            r.lo = b.lo;
        }
        return r;
      }
      case ExprKind::kCast:
        return boundsOf(static_cast<const CastNode *>(e.get())->value,
                        var_bounds);
      default:
        return Interval::unknown();
    }
}

void
inferRegions(const Stmt &body,
             const std::map<const VarNode *, Interval> &var_bounds,
             std::vector<BufferRegion> *reads,
             std::vector<BufferRegion> *writes)
{
    auto accesses = collectBufferAccesses(body);

    auto regionFor = [&](const BufferAccess &access) {
        BufferRegion region;
        region.buffer = access.buffer;
        for (size_t d = 0; d < access.indices.size(); ++d) {
            Interval bounds = boundsOf(access.indices[d], var_bounds);
            if (bounds.hasLo && bounds.hasHi) {
                region.region.emplace_back(
                    intImm(bounds.lo),
                    intImm(bounds.hi - bounds.lo + 1));
            } else {
                // Conservative: whole dimension.
                region.region.emplace_back(intImm(0),
                                           access.buffer->dimExtent(d));
            }
        }
        return region;
    };

    auto mergeInto = [&](std::vector<BufferRegion> *list,
                         const BufferRegion &region) {
        for (auto &existing : *list) {
            if (existing.buffer.get() == region.buffer.get()) {
                // Union per dimension.
                for (size_t d = 0; d < existing.region.size(); ++d) {
                    int64_t lo1 = 0;
                    int64_t lo2 = 0;
                    int64_t e1 = 0;
                    int64_t e2 = 0;
                    bool ok = tryConstInt(existing.region[d].first, &lo1) &&
                              tryConstInt(existing.region[d].second, &e1) &&
                              tryConstInt(region.region[d].first, &lo2) &&
                              tryConstInt(region.region[d].second, &e2);
                    if (ok) {
                        int64_t lo = std::min(lo1, lo2);
                        int64_t hi = std::max(lo1 + e1, lo2 + e2);
                        existing.region[d] = {intImm(lo), intImm(hi - lo)};
                    } else {
                        existing.region[d] = {
                            intImm(0), region.buffer->dimExtent(d)};
                    }
                }
                return;
            }
        }
        list->push_back(region);
    };

    for (const auto &access : accesses) {
        mergeInto(access.isWrite ? writes : reads, regionFor(access));
    }
}

namespace {

class RegionAnnotator : public StmtMutator
{
  public:
    Stmt
    run(const Stmt &root)
    {
        return mutateStmt(root);
    }

  protected:
    Stmt
    mutateFor(const ForNode *op, const Stmt &s) override
    {
        Interval bounds = Interval::unknown();
        int64_t min_v = 0;
        int64_t ext_v = 0;
        if (tryConstInt(simplify(op->minValue), &min_v) &&
            tryConstInt(simplify(op->extent), &ext_v) && ext_v > 0) {
            bounds = Interval::range(min_v, min_v + ext_v - 1);
        }
        varBounds_[op->loopVar.get()] = bounds;
        Stmt result = StmtMutator::mutateFor(op, s);
        varBounds_.erase(op->loopVar.get());
        return result;
    }

    Stmt
    mutateBlock(const BlockNode *op, const Stmt &s) override
    {
        Stmt inner = StmtMutator::mutateBlock(op, s);
        auto old_block = static_cast<const BlockNode *>(inner.get());
        auto node = std::make_shared<BlockNode>(*old_block);
        node->reads.clear();
        node->writes.clear();
        Stmt scan_body = node->init != nullptr
                             ? seq({node->init, node->body})
                             : node->body;
        inferRegions(scan_body, varBounds_, &node->reads, &node->writes);
        return node;
    }

  private:
    std::map<const VarNode *, Interval> varBounds_;
};

class KindCounter : public StmtVisitor
{
  public:
    explicit KindCounter(StmtKind kind) : kind_(kind) {}

    int count = 0;

    void
    visitStmt(const Stmt &s) override
    {
        if (s->kind == kind_) {
            ++count;
        }
        StmtVisitor::visitStmt(s);
    }

  private:
    StmtKind kind_;
};

class SpIterCollector : public StmtVisitor
{
  public:
    std::vector<SparseIteration> iterations;

  protected:
    void
    visitSparseIteration(const SparseIterationNode *op) override
    {
        // Re-wrap in shared_ptr aliasing: we need the owning pointer.
        // StmtVisitor only hands us the raw node, so store via the
        // owning statement in visitStmt below instead.
        StmtVisitor::visitSparseIteration(op);
    }

  public:
    void
    visitStmt(const Stmt &s) override
    {
        if (s->kind == StmtKind::kSparseIteration) {
            iterations.push_back(
                std::static_pointer_cast<const SparseIterationNode>(s));
        }
        StmtVisitor::visitStmt(s);
    }
};

} // namespace

Stmt
annotateRegions(const Stmt &root)
{
    RegionAnnotator annotator;
    return annotator.run(root);
}

bool
containsStmtKind(const Stmt &s, StmtKind kind)
{
    return countStmtKind(s, kind) > 0;
}

int
countStmtKind(const Stmt &s, StmtKind kind)
{
    KindCounter counter(kind);
    counter.visitStmt(s);
    return counter.count;
}

std::vector<SparseIteration>
collectSparseIterations(const Stmt &s)
{
    SpIterCollector c;
    c.visitStmt(s);
    return std::move(c.iterations);
}

} // namespace ir
} // namespace sparsetir
