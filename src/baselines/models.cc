#include "baselines/models.h"

#include <algorithm>
#include <numeric>

#include "support/logging.h"

namespace sparsetir {
namespace baselines {

using format::Bsr;
using format::Csr;
using gpusim::BlockWork;
using gpusim::MemAccess;

namespace {

/** Coalesced warp read of `bytes` contiguous bytes. */
MemAccess
contiguous(uint64_t addr, int64_t bytes, bool write = false)
{
    MemAccess access;
    access.addr = addr;
    access.bytes = static_cast<uint32_t>(
        std::min<int64_t>(bytes, 1u << 30));
    access.write = write;
    return access;
}

/** Scattered access touching `lines` distinct lines over a span. */
MemAccess
scattered(uint64_t addr, int64_t span, int64_t lines,
          bool write = false)
{
    MemAccess access;
    access.addr = addr;
    access.bytes = static_cast<uint32_t>(
        std::min<int64_t>(span, 1u << 30));
    access.scatteredLines = static_cast<uint32_t>(
        std::min<int64_t>(lines, 1 << 28));
    access.write = write;
    return access;
}

} // namespace

// ---------------------------------------------------------------------
// RowSplitSpmmKernel
// ---------------------------------------------------------------------

RowSplitSpmmKernel::RowSplitSpmmKernel(std::string name, const Csr &a,
                                       int64_t feat,
                                       RowSplitParams params)
    : name_(std::move(name)), a_(a), feat_(feat), params_(params)
{
    rowOrder_.resize(a.rows);
    std::iota(rowOrder_.begin(), rowOrder_.end(), 0);
    if (params_.sortRows) {
        // Row swizzle: sort by length, then deal the sorted rows out
        // round-robin so every block receives a mix of long and short
        // rows (Sputnik's load-balancing trick).
        std::vector<int32_t> sorted = rowOrder_;
        std::sort(sorted.begin(), sorted.end(),
                  [&](int32_t x, int32_t y) {
                      return a.rowLength(x) > a.rowLength(y);
                  });
        int64_t blocks =
            (a.rows + params_.rowsPerBlock - 1) / params_.rowsPerBlock;
        size_t cursor = 0;
        for (int64_t slot_in_block = 0;
             slot_in_block < params_.rowsPerBlock; ++slot_in_block) {
            for (int64_t b = 0; b < blocks; ++b) {
                int64_t slot = b * params_.rowsPerBlock + slot_in_block;
                if (slot < a.rows && cursor < sorted.size()) {
                    rowOrder_[slot] = sorted[cursor++];
                }
            }
        }
    }
    AddrAllocator alloc;
    indptrBase_ = alloc.alloc((a.rows + 1) * 4);
    indicesBase_ = alloc.alloc(a.nnz() * 4);
    valuesBase_ = alloc.alloc(a.nnz() * 4);
    bBase_ = alloc.alloc(a.cols * feat * 4);
    cBase_ = alloc.alloc(a.rows * feat * 4);
    footprint_ = (a.rows + 1) * 4 + a.nnz() * 8 +
                 (a.cols + a.rows) * feat * 4;
}

int64_t
RowSplitSpmmKernel::numBlocks() const
{
    return (a_.rows + params_.rowsPerBlock - 1) / params_.rowsPerBlock;
}

void
RowSplitSpmmKernel::blockWork(int64_t block_id, BlockWork *work) const
{
    int64_t begin = block_id * params_.rowsPerBlock;
    int64_t end = std::min<int64_t>(begin + params_.rowsPerBlock,
                                    a_.rows);
    double index_cost = 1.0 - params_.unrollDiscount;
    for (int64_t slot = begin; slot < end; ++slot) {
        int64_t r = rowOrder_[slot];
        int32_t lo = a_.indptr[r];
        int32_t hi = a_.indptr[r + 1];
        work->accesses.push_back(
            contiguous(indptrBase_ + r * 4, 8));
        if (hi > lo) {
            // Non-zero metadata/value reads are contiguous per row.
            work->accesses.push_back(
                contiguous(indicesBase_ + int64_t(lo) * 4,
                           int64_t(hi - lo) * 4));
            work->accesses.push_back(
                contiguous(valuesBase_ + int64_t(lo) * 4,
                           int64_t(hi - lo) * 4));
        }
        for (int32_t p = lo; p < hi; ++p) {
            // Gather one row of B, warp-coalesced.
            work->accesses.push_back(contiguous(
                bBase_ + int64_t(a_.indices[p]) * feat_ * 4,
                feat_ * 4));
            work->flops += 2.0 * static_cast<double>(feat_);
            work->intOps +=
                index_cost * 4.0 *
                static_cast<double>(feat_ / params_.vectorWidth);
            if (!params_.registerAccum) {
                // Global read-modify-write per non-zero.
                work->accesses.push_back(
                    contiguous(cBase_ + r * feat_ * 4, feat_ * 4));
                work->accesses.push_back(contiguous(
                    cBase_ + r * feat_ * 4, feat_ * 4, true));
            }
        }
        if (params_.registerAccum) {
            work->accesses.push_back(
                contiguous(cBase_ + r * feat_ * 4, feat_ * 4, true));
        }
    }
}

// ---------------------------------------------------------------------
// EdgeSplitSpmmKernel
// ---------------------------------------------------------------------

EdgeSplitSpmmKernel::EdgeSplitSpmmKernel(std::string name, const Csr &a,
                                         int64_t feat, int nnz_per_block,
                                         int vector_width)
    : name_(std::move(name)), a_(a), feat_(feat),
      nnzPerBlock_(nnz_per_block), vectorWidth_(vector_width)
{
    rowOfNnz_.resize(a.nnz());
    for (int64_t r = 0; r < a.rows; ++r) {
        for (int32_t p = a.indptr[r]; p < a.indptr[r + 1]; ++p) {
            rowOfNnz_[p] = static_cast<int32_t>(r);
        }
    }
    AddrAllocator alloc;
    alloc.alloc((a.rows + 1) * 4);
    indicesBase_ = alloc.alloc(a.nnz() * 4);
    valuesBase_ = alloc.alloc(a.nnz() * 4);
    bBase_ = alloc.alloc(a.cols * feat * 4);
    cBase_ = alloc.alloc(a.rows * feat * 4);
}

int64_t
EdgeSplitSpmmKernel::numBlocks() const
{
    return (a_.nnz() + nnzPerBlock_ - 1) / nnzPerBlock_;
}

void
EdgeSplitSpmmKernel::blockWork(int64_t block_id, BlockWork *work) const
{
    int64_t begin = block_id * nnzPerBlock_;
    int64_t end = std::min<int64_t>(begin + nnzPerBlock_, a_.nnz());
    if (begin >= end) {
        return;
    }
    work->accesses.push_back(
        contiguous(indicesBase_ + begin * 4, (end - begin) * 4));
    work->accesses.push_back(
        contiguous(valuesBase_ + begin * 4, (end - begin) * 4));
    for (int64_t p = begin; p < end; ++p) {
        work->accesses.push_back(contiguous(
            bBase_ + int64_t(a_.indices[p]) * feat_ * 4, feat_ * 4));
        // Atomic update of the output row.
        work->accesses.push_back(contiguous(
            cBase_ + int64_t(rowOfNnz_[p]) * feat_ * 4, feat_ * 4,
            true));
        work->flops += 2.0 * static_cast<double>(feat_);
        work->intOps += 4.0 * static_cast<double>(feat_ /
                                                  vectorWidth_);
    }
}

// ---------------------------------------------------------------------
// SddmmKernel
// ---------------------------------------------------------------------

SddmmKernel::SddmmKernel(std::string name, const Csr &a, int64_t feat,
                         SddmmParams params)
    : name_(std::move(name)), a_(a), feat_(feat), params_(params)
{
    rowOfNnz_.resize(a.nnz());
    for (int64_t r = 0; r < a.rows; ++r) {
        for (int32_t p = a.indptr[r]; p < a.indptr[r + 1]; ++p) {
            rowOfNnz_[p] = static_cast<int32_t>(r);
        }
    }
    AddrAllocator alloc;
    indptrBase_ = alloc.alloc((a.rows + 1) * 4);
    indicesBase_ = alloc.alloc(a.nnz() * 4);
    xBase_ = alloc.alloc(a.rows * feat * 4);
    yBase_ = alloc.alloc(a.cols * feat * 4);
    outBase_ = alloc.alloc(a.nnz() * 4);
}

int64_t
SddmmKernel::numBlocks() const
{
    if (params_.rowParallel) {
        return a_.rows;
    }
    return (a_.nnz() + params_.nnzPerBlock - 1) / params_.nnzPerBlock;
}

void
SddmmKernel::blockWork(int64_t block_id, BlockWork *work) const
{
    int64_t begin;
    int64_t end;
    if (params_.rowParallel) {
        begin = a_.indptr[block_id];
        end = a_.indptr[block_id + 1];
    } else {
        begin = block_id * params_.nnzPerBlock;
        end = std::min<int64_t>(begin + params_.nnzPerBlock, a_.nnz());
    }
    if (begin >= end) {
        return;
    }
    work->accesses.push_back(
        contiguous(indicesBase_ + begin * 4, (end - begin) * 4));
    for (int64_t p = begin; p < end; ++p) {
        int64_t r = rowOfNnz_[p];
        int64_t c = a_.indices[p];
        int vec = std::max(params_.vectorWidth, 1);
        if (vec >= 4) {
            // float4 loads: same bytes, 16B granules.
            work->accesses.push_back(
                contiguous(xBase_ + r * feat_ * 4, feat_ * 4));
            work->accesses.push_back(
                contiguous(yBase_ + c * feat_ * 4, feat_ * 4));
        } else {
            // Scalar loads: every element a separate 4B request.
            work->accesses.push_back(scattered(
                xBase_ + r * feat_ * 4, feat_ * 4, feat_ / 8 + 1));
            work->accesses.push_back(scattered(
                yBase_ + c * feat_ * 4, feat_ * 4, feat_ / 8 + 1));
        }
        work->flops += 2.0 * static_cast<double>(feat_);
        work->intOps += 4.0 * static_cast<double>(feat_) / vec;
        if (params_.twoStageReduction) {
            // Intra-group reduction in registers + one inter-group
            // combine: log-cost shuffle adds.
            work->flops += 10.0;
        } else {
            // Serial reduction chain costs extra dependent adds.
            work->flops += static_cast<double>(feat_);
        }
        work->accesses.push_back(
            contiguous(outBase_ + p * 4, 4, true));
    }
}

// ---------------------------------------------------------------------
// DenseGemmKernel
// ---------------------------------------------------------------------

DenseGemmKernel::DenseGemmKernel(std::string name, int64_t m, int64_t n,
                                 int64_t k, bool tensor_cores)
    : name_(std::move(name)), m_(m), n_(n), k_(k),
      tensorCores_(tensor_cores)
{
    tilesM_ = (m + 127) / 128;
    tilesN_ = (n + 127) / 128;
    AddrAllocator alloc;
    int elem = tensor_cores ? 2 : 4;
    aBase_ = alloc.alloc(m * k * elem);
    bBase_ = alloc.alloc(k * n * elem);
    cBase_ = alloc.alloc(m * n * 4);
}

int64_t
DenseGemmKernel::numBlocks() const
{
    return tilesM_ * tilesN_;
}

void
DenseGemmKernel::blockWork(int64_t block_id, BlockWork *work) const
{
    int64_t tm = block_id / tilesN_;
    int64_t tn = block_id % tilesN_;
    int elem = tensorCores_ ? 2 : 4;
    int64_t rows = std::min<int64_t>(128, m_ - tm * 128);
    int64_t cols = std::min<int64_t>(128, n_ - tn * 128);
    // Stream A tile rows and B tile columns once per block; shared
    // memory reuse within the tile.
    work->accesses.push_back(
        contiguous(aBase_ + tm * 128 * k_ * elem, rows * k_ * elem));
    work->accesses.push_back(
        contiguous(bBase_ + tn * 128 * k_ * elem, cols * k_ * elem));
    work->sharedBytes +=
        static_cast<double>((rows + cols) * k_ * elem);
    double flops = 2.0 * static_cast<double>(rows) *
                   static_cast<double>(cols) *
                   static_cast<double>(k_);
    if (tensorCores_) {
        work->tensorFlops += flops;
    } else {
        work->flops += flops;
    }
    work->accesses.push_back(contiguous(
        cBase_ + (tm * 128 * n_ + tn * 128) * 4, rows * cols * 4,
        true));
}

// ---------------------------------------------------------------------
// BlockSparseSpmmKernel
// ---------------------------------------------------------------------

BlockSparseSpmmKernel::BlockSparseSpmmKernel(std::string name,
                                             const Bsr &a, int64_t feat,
                                             bool tensor_cores)
    : name_(std::move(name)), a_(a), feat_(feat),
      tensorCores_(tensor_cores)
{
    featTiles_ = (feat + 63) / 64;
    AddrAllocator alloc;
    int elem = tensor_cores ? 2 : 4;
    indptrBase_ = alloc.alloc((a.blockRows + 1) * 4);
    indicesBase_ = alloc.alloc(a.nnzBlocks() * 4);
    valuesBase_ = alloc.alloc(a.values.size() * elem);
    bBase_ = alloc.alloc(a.cols * feat * elem);
    cBase_ = alloc.alloc(a.rows * feat * 4);
}

int64_t
BlockSparseSpmmKernel::numBlocks() const
{
    return a_.blockRows * featTiles_;
}

void
BlockSparseSpmmKernel::blockWork(int64_t block_id, BlockWork *work) const
{
    int64_t br = block_id / featTiles_;
    int64_t ft = block_id % featTiles_;
    int elem = tensorCores_ ? 2 : 4;
    int64_t bs = a_.blockSize;
    int64_t tile_cols = std::min<int64_t>(64, feat_ - ft * 64);
    int32_t lo = a_.indptr[br];
    int32_t hi = a_.indptr[br + 1];
    work->accesses.push_back(contiguous(indptrBase_ + br * 4, 8));
    if (hi > lo) {
        work->accesses.push_back(contiguous(
            indicesBase_ + int64_t(lo) * 4, int64_t(hi - lo) * 4));
    }
    for (int32_t p = lo; p < hi; ++p) {
        // A block and the matching B tile.
        work->accesses.push_back(contiguous(
            valuesBase_ + int64_t(p) * bs * bs * elem,
            bs * bs * elem));
        work->accesses.push_back(contiguous(
            bBase_ +
                (int64_t(a_.indices[p]) * bs * feat_ + ft * 64) * elem,
            bs * tile_cols * elem));
        double flops = 2.0 * static_cast<double>(bs) *
                       static_cast<double>(bs) *
                       static_cast<double>(tile_cols);
        if (tensorCores_) {
            work->tensorFlops += flops;
        } else {
            work->flops += flops;
        }
        work->sharedBytes += static_cast<double>(
            (bs * bs + bs * tile_cols) * elem);
    }
    work->accesses.push_back(contiguous(
        cBase_ + (br * bs * feat_ + ft * 64) * 4, bs * tile_cols * 4,
        true));
}

// ---------------------------------------------------------------------
// BlockSparseSddmmKernel
// ---------------------------------------------------------------------

BlockSparseSddmmKernel::BlockSparseSddmmKernel(std::string name,
                                               const Bsr &a,
                                               int64_t feat,
                                               bool tensor_cores)
    : name_(std::move(name)), a_(a), feat_(feat),
      tensorCores_(tensor_cores)
{
    AddrAllocator alloc;
    int elem = tensor_cores ? 2 : 4;
    xBase_ = alloc.alloc(a.rows * feat * elem);
    yBase_ = alloc.alloc(a.cols * feat * elem);
    outBase_ = alloc.alloc(a.values.size() * 4);
}

int64_t
BlockSparseSddmmKernel::numBlocks() const
{
    return a_.nnzBlocks();
}

void
BlockSparseSddmmKernel::blockWork(int64_t block_id,
                                  BlockWork *work) const
{
    int elem = tensorCores_ ? 2 : 4;
    int64_t bs = a_.blockSize;
    // Locate the block row of this non-zero block.
    int64_t br = std::upper_bound(a_.indptr.begin(), a_.indptr.end(),
                                  static_cast<int32_t>(block_id)) -
                 a_.indptr.begin() - 1;
    int64_t bc = a_.indices[block_id];
    work->accesses.push_back(contiguous(
        xBase_ + br * bs * feat_ * elem, bs * feat_ * elem));
    work->accesses.push_back(contiguous(
        yBase_ + bc * bs * feat_ * elem, bs * feat_ * elem));
    double flops = 2.0 * static_cast<double>(bs) *
                   static_cast<double>(bs) *
                   static_cast<double>(feat_);
    if (tensorCores_) {
        work->tensorFlops += flops;
    } else {
        work->flops += flops;
    }
    work->accesses.push_back(contiguous(
        outBase_ + block_id * bs * bs * 4, bs * bs * 4, true));
}

// ---------------------------------------------------------------------
// GatherScatterKernel
// ---------------------------------------------------------------------

GatherScatterKernel::GatherScatterKernel(std::string name, int64_t rows,
                                         int64_t feat, bool scatter_add)
    : name_(std::move(name)), rows_(rows), feat_(feat),
      scatterAdd_(scatter_add)
{
    AddrAllocator alloc;
    mapBase_ = alloc.alloc(rows * 4);
    srcBase_ = alloc.alloc(rows * feat * 4);
    dstBase_ = alloc.alloc(rows * feat * 4);
}

int64_t
GatherScatterKernel::numBlocks() const
{
    return (rows_ + 31) / 32;
}

void
GatherScatterKernel::blockWork(int64_t block_id, BlockWork *work) const
{
    int64_t begin = block_id * 32;
    int64_t end = std::min<int64_t>(begin + 32, rows_);
    if (begin >= end) {
        return;
    }
    work->accesses.push_back(
        contiguous(mapBase_ + begin * 4, (end - begin) * 4));
    for (int64_t r = begin; r < end; ++r) {
        work->accesses.push_back(
            contiguous(srcBase_ + r * feat_ * 4, feat_ * 4));
        if (scatterAdd_) {
            work->accesses.push_back(
                contiguous(dstBase_ + r * feat_ * 4, feat_ * 4));
            work->flops += static_cast<double>(feat_);
        }
        work->accesses.push_back(
            contiguous(dstBase_ + r * feat_ * 4, feat_ * 4, true));
        work->intOps += 2.0 * static_cast<double>(feat_ / 4);
    }
}

} // namespace baselines
} // namespace sparsetir
