/**
 * @file
 * Transaction-level GPU kernel simulator.
 *
 * A kernel is a grid of thread blocks; each block reports its
 * aggregate work (CUDA-core flops, Tensor-Core flops, integer ops,
 * coalesced global-memory transactions, shared-memory traffic). The
 * simulator streams transactions through per-SM L1 caches and the
 * shared L2, schedules blocks across SMs greedily (earliest finish)
 * and reports execution time and cache statistics.
 *
 * Six mechanisms carry the paper's comparisons: (a) SM load balance
 * (power-law rows vs bucketed ELL), (b) L1/L2 locality (column
 * partitioning, Fig. 12), (c) transaction coalescing (vectorized vs
 * scalar loads), (d) Tensor-Core vs CUDA-core throughput, (e)
 * per-kernel launch overhead (composable formats, horizontal fusion),
 * (f) DRAM traffic of materialized intermediates (RGCN, Fig. 20).
 */

#ifndef SPARSETIR_GPUSIM_SIMULATOR_H_
#define SPARSETIR_GPUSIM_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gpusim/cache.h"
#include "gpusim/spec.h"

namespace sparsetir {
namespace gpusim {

/** One coalesced global-memory transaction group. */
struct MemAccess
{
    /** Base byte address (buffers get disjoint address ranges). */
    uint64_t addr = 0;
    /** Contiguous bytes covered (one warp transaction group). */
    uint32_t bytes = 0;
    /**
     * Number of distinct cache lines the warp touches when the access
     * is scattered (0 = derive from addr/bytes contiguously).
     */
    uint32_t scatteredLines = 0;
    bool write = false;
};

/** Aggregate work of one thread block. */
struct BlockWork
{
    double flops = 0.0;        // CUDA-core floating ops
    double tensorFlops = 0.0;  // Tensor-Core floating ops
    double intOps = 0.0;       // index/address arithmetic
    double sharedBytes = 0.0;  // shared-memory traffic
    std::vector<MemAccess> accesses;

    void
    merge(const BlockWork &other)
    {
        flops += other.flops;
        tensorFlops += other.tensorFlops;
        intOps += other.intOps;
        sharedBytes += other.sharedBytes;
        accesses.insert(accesses.end(), other.accesses.begin(),
                        other.accesses.end());
    }
};

/** A simulatable kernel: a grid of blocks with enumerable work. */
class Kernel
{
  public:
    virtual ~Kernel() = default;

    virtual std::string name() const = 0;
    virtual int64_t numBlocks() const = 0;
    /** Fill `work` with the aggregate work of block `block_id`. */
    virtual void blockWork(int64_t block_id, BlockWork *work) const = 0;
    /** Static shared-memory request per block (occupancy limiter). */
    virtual int64_t sharedMemBytes() const { return 0; }
};

/** Result of simulating one kernel (or a fused group). */
struct KernelStats
{
    double timeMs = 0.0;
    double l1HitRate = 0.0;
    double l2HitRate = 0.0;
    int64_t dramBytes = 0;
    int64_t l1Accesses = 0;
    double flops = 0.0;
    double tensorFlops = 0.0;
    int64_t numBlocks = 0;
    /** max over SMs / mean over SMs of busy cycles (load imbalance). */
    double imbalance = 1.0;
};

/** Options shared by a simulation session. */
struct SimOptions
{
    /** Flush L2 between kernels (paper's FLUSH_L2=ON protocol). */
    bool flushL2BetweenKernels = true;
    /**
     * Pipeline efficiency factor (vendor-tuned kernels get > ours;
     * see baselines/vendor_constants.h).
     */
    double efficiency = 1.0;
};

/** A simulated device: owns L1s and L2 across kernel launches. */
class Device
{
  public:
    explicit Device(GpuSpec spec);

    const GpuSpec &spec() const { return spec_; }

    /** Simulate one kernel launch. */
    KernelStats launch(const Kernel &kernel,
                       const SimOptions &options = SimOptions());

    /**
     * Simulate a sequence of kernels as one horizontally fused launch
     * (single launch overhead, shared wave scheduling).
     */
    KernelStats launchFused(const std::vector<const Kernel *> &kernels,
                            const SimOptions &options = SimOptions());

    /** Peak simulated memory footprint tracker (bytes). */
    void noteMemoryFootprint(int64_t bytes);
    int64_t peakMemoryFootprint() const { return peakFootprint_; }
    void resetMemoryFootprint() { peakFootprint_ = 0; }

  private:
    KernelStats run(const std::vector<const Kernel *> &kernels,
                    const SimOptions &options, int launches);

    GpuSpec spec_;
    std::vector<CacheModel> l1_;
    CacheModel l2_;
    int64_t peakFootprint_ = 0;
};

} // namespace gpusim
} // namespace sparsetir

#endif // SPARSETIR_GPUSIM_SIMULATOR_H_
