/**
 * @file
 * Synthetic pruned transformer weights (paper §4.3.2), standing in
 * for the HuggingFace block-pruned and movement-pruned BERT models.
 */

#ifndef SPARSETIR_GRAPH_PRUNED_WEIGHTS_H_
#define SPARSETIR_GRAPH_PRUNED_WEIGHTS_H_

#include <cstdint>

#include "format/csr.h"

namespace sparsetir {
namespace graph {

/**
 * Block-pruned weight: blocks of `block` x `block` survive with the
 * given density; surviving blocks cluster into a subset of block rows
 * so many block rows are entirely zero (the property DBSR exploits).
 * `row_keep_fraction` controls how many block rows stay non-empty.
 */
format::Csr blockPrunedWeight(int64_t rows, int64_t cols, int block,
                              double density, double row_keep_fraction,
                              uint64_t seed);

/**
 * Movement/magnitude-pruned weight: unstructured survivors with mild
 * column clustering (pruned BERT weights are not uniformly random;
 * heads concentrate survivors).
 */
format::Csr unstructuredPrunedWeight(int64_t rows, int64_t cols,
                                     double density, uint64_t seed);

} // namespace graph
} // namespace sparsetir

#endif // SPARSETIR_GRAPH_PRUNED_WEIGHTS_H_
