/**
 * @file
 * LatencyHistogram bucket math and the registry maps. See metrics.h
 * for the concurrency contract.
 */

#include "observe/metrics.h"

#include <algorithm>
#include <cmath>

namespace sparsetir {
namespace observe {

namespace {

/**
 * Upper bounds in ms, ub[i] = 0.001 * 2^(i/2). Computed once; the
 * last bucket is a catch-all so record() never misses.
 */
const std::array<double, LatencyHistogram::kNumBuckets> &
bucketBounds()
{
    static const std::array<double, LatencyHistogram::kNumBuckets>
        bounds = [] {
            std::array<double, LatencyHistogram::kNumBuckets> b{};
            for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
                b[i] = 0.001 * std::pow(2.0, 0.5 * i);
            }
            return b;
        }();
    return bounds;
}

int
bucketIndex(double ms)
{
    const auto &bounds = bucketBounds();
    auto it =
        std::lower_bound(bounds.begin(), bounds.end(), ms);
    if (it == bounds.end()) {
        return LatencyHistogram::kNumBuckets - 1;
    }
    return static_cast<int>(it - bounds.begin());
}

/** fetch_add for atomic<double> via CAS (C++17 has no native one). */
void
atomicAdd(std::atomic<double> *target, double delta)
{
    double cur = target->load(std::memory_order_relaxed);
    while (!target->compare_exchange_weak(cur, cur + delta,
                                          std::memory_order_relaxed)) {
    }
}

void
atomicMin(std::atomic<double> *target, double v)
{
    double cur = target->load(std::memory_order_relaxed);
    while (v < cur &&
           !target->compare_exchange_weak(cur, v,
                                          std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<double> *target, double v)
{
    double cur = target->load(std::memory_order_relaxed);
    while (v > cur &&
           !target->compare_exchange_weak(cur, v,
                                          std::memory_order_relaxed)) {
    }
}

/**
 * Interpolated percentile from a consistent bucket copy: walk to the
 * bucket containing rank q*(count-1), place the rank linearly within
 * the bucket's [lower, upper) bound range.
 */
double
percentileFromBuckets(
    const uint64_t (&buckets)[LatencyHistogram::kNumBuckets],
    uint64_t count, double q)
{
    if (count == 0) {
        return 0.0;
    }
    double rank = q * static_cast<double>(count - 1);
    uint64_t seen = 0;
    for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
        uint64_t in_bucket = buckets[i];
        if (in_bucket == 0) {
            continue;
        }
        if (rank < static_cast<double>(seen + in_bucket)) {
            double lower =
                i == 0 ? 0.0 : LatencyHistogram::bucketUpperMs(i - 1);
            double upper = LatencyHistogram::bucketUpperMs(i);
            double frac = (rank - static_cast<double>(seen)) /
                          static_cast<double>(in_bucket);
            return lower + (upper - lower) * frac;
        }
        seen += in_bucket;
    }
    return LatencyHistogram::bucketUpperMs(
        LatencyHistogram::kNumBuckets - 1);
}

} // namespace

double
LatencyHistogram::bucketUpperMs(int i)
{
    return bucketBounds()[static_cast<size_t>(i)];
}

void
LatencyHistogram::record(double ms)
{
    if (!(ms >= 0.0)) { // negative or NaN
        ms = 0.0;
    }
    buckets_[bucketIndex(ms)].fetch_add(1, std::memory_order_relaxed);
    atomicAdd(&sum_, ms);
    // First sample seeds min exactly; count_ is bumped last so a
    // racing snapshot never sees count > 0 with a zero-init min.
    if (count_.load(std::memory_order_relaxed) == 0) {
        double expected = 0.0;
        min_.compare_exchange_strong(expected, ms,
                                     std::memory_order_relaxed);
    }
    atomicMin(&min_, ms);
    atomicMax(&max_, ms);
    count_.fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot
LatencyHistogram::snapshot() const
{
    uint64_t buckets[kNumBuckets];
    uint64_t count = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
        buckets[i] = buckets_[i].load(std::memory_order_relaxed);
        count += buckets[i];
    }
    HistogramSnapshot snap;
    snap.count = count;
    snap.sumMs = sum_.load(std::memory_order_relaxed);
    snap.minMs = min_.load(std::memory_order_relaxed);
    snap.maxMs = max_.load(std::memory_order_relaxed);
    auto clamp = [&](double v) {
        return std::min(std::max(v, snap.minMs), snap.maxMs);
    };
    snap.p50Ms = clamp(percentileFromBuckets(buckets, count, 0.50));
    snap.p95Ms = clamp(percentileFromBuckets(buckets, count, 0.95));
    snap.p99Ms = clamp(percentileFromBuckets(buckets, count, 0.99));
    return snap;
}

void
LatencyHistogram::reset()
{
    for (auto &b : buckets_) {
        b.store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
}

Counter *
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot) {
        slot = std::make_unique<Counter>();
    }
    return slot.get();
}

LatencyHistogram *
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot) {
        slot = std::make_unique<LatencyHistogram>();
    }
    return slot.get();
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &entry : counters_) {
        snap.counters[entry.first] = entry.second->value();
    }
    for (const auto &entry : histograms_) {
        snap.histograms[entry.first] = entry.second->snapshot();
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &entry : counters_) {
        entry.second->reset();
    }
    for (auto &entry : histograms_) {
        entry.second->reset();
    }
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry *registry = new MetricsRegistry();
    return *registry;
}

} // namespace observe
} // namespace sparsetir
