#include "runtime/bytecode/compiler.h"

#include <cstdio>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "observe/trace.h"
#include "runtime/interpreter.h"
#include "support/logging.h"
#include "transform/lower_sparse_buffer.h"

namespace sparsetir {
namespace runtime {
namespace bytecode {

using namespace ir;

int
elemKindBytes(ElemKind kind)
{
    switch (kind) {
      case ElemKind::kF64:
      case ElemKind::kI64:
        return 8;
      case ElemKind::kF32:
      case ElemKind::kI32:
        return 4;
      case ElemKind::kI16:
        return 2;
      case ElemKind::kI8:
      case ElemKind::kBool:
        return 1;
    }
    return 4;
}

ElemKind
elemKindOfDtype(const DataType &dtype)
{
    if (dtype.isFloat()) {
        // float16 is widened to float32 storage on the host.
        return dtype.bits() == 64 ? ElemKind::kF64 : ElemKind::kF32;
    }
    if (dtype.isBool()) {
        return ElemKind::kBool;
    }
    switch (dtype.bits()) {
      case 8:
        return ElemKind::kI8;
      case 16:
        return ElemKind::kI16;
      case 64:
        return ElemKind::kI64;
      default:
        return ElemKind::kI32;
    }
}

namespace {

/**
 * Single-function compiler. Register allocation is a stack per file:
 * scoped definitions (scalar params, loop vars, lets) pin a register
 * for their lexical extent, expression temporaries grow above them
 * and are released by mark/restore around every statement. Because
 * scopes nest strictly, one watermark per file suffices.
 */
class Compiler
{
  public:
    explicit Compiler(const PrimFunc &func) : func_(func) {}

    std::shared_ptr<const Program>
    run()
    {
        prog_.name = func_->name;
        for (const auto &param : func_->params) {
            if (param->dtype.isHandle()) {
                registerParamSlot(param);
            } else {
                int reg = allocI();
                scalarParamIndex_[param.get()] = scalars_.size();
                scalars_.push_back(
                    ScalarParam{param->name, static_cast<int32_t>(reg)});
                vars_[param.get()] = VarInfo{false, reg};
            }
        }
        scalarUsed_.assign(scalars_.size(), false);
        prog_.numParamSlots = static_cast<int32_t>(prog_.slots.size());
        blockLoop_ = findBlockIdxLoop(func_->body);
        if (blockLoop_ != nullptr) {
            prog_.blockExtent = blockLoop_->extent;
        }
        if (func_->body != nullptr) {
            compileStmt(func_->body);
        }
        emit(Op::kHalt);
        assignConstRegisters();
        // Lazy-binding parity with the interpreter: only scalar
        // params the compiled code reads require a binding; the VM
        // preloads exactly this list.
        for (size_t i = 0; i < scalars_.size(); ++i) {
            if (scalarUsed_[i]) {
                prog_.scalarParams.push_back(scalars_[i]);
            }
        }
        prog_.numIRegs =
            static_cast<int32_t>(iMax_ + ipoolValues_.size());
        prog_.numFRegs =
            static_cast<int32_t>(fMax_ + fpoolValues_.size());
        return std::make_shared<const Program>(std::move(prog_));
    }

  private:
    struct VarInfo
    {
        bool isFloat = false;
        int reg = 0;
    };

    struct Mark
    {
        int i = 0;
        int f = 0;
    };

    Mark
    mark() const
    {
        return Mark{iTop_, fTop_};
    }

    void
    restore(const Mark &m)
    {
        iTop_ = m.i;
        fTop_ = m.f;
    }

    int
    allocI()
    {
        int reg = iTop_++;
        iMax_ = std::max(iMax_, iTop_);
        return reg;
    }

    int
    allocF()
    {
        int reg = fTop_++;
        fMax_ = std::max(fMax_, fTop_);
        return reg;
    }

    int
    emit(Op op, int32_t a = 0, int32_t b = 0, int32_t c = 0,
         int32_t d = 0, int64_t imm = 0)
    {
        prog_.code.push_back(Instr{op, a, b, c, d, imm});
        return static_cast<int>(prog_.code.size()) - 1;
    }

    int
    here() const
    {
        return static_cast<int>(prog_.code.size());
    }

    void
    patch(int pc, int target)
    {
        prog_.code[static_cast<size_t>(pc)].imm = target;
    }

    // -----------------------------------------------------------------
    // Constant pool
    //
    // Immediates compile to pinned registers preloaded once per run
    // instead of per-evaluation kIConst/kFConst instructions, so loop
    // bodies carry no constant re-materialization. During compilation
    // pool registers are numbered from kConstRegBase; a fixup pass
    // renumbers them above the working registers once the watermark
    // is final.
    // -----------------------------------------------------------------

    static constexpr int kConstRegBase = 1 << 20;

    int
    constI(int64_t value)
    {
        auto [it, inserted] =
            ipool_.emplace(value, static_cast<int>(ipoolValues_.size()));
        if (inserted) {
            ipoolValues_.push_back(value);
        }
        return kConstRegBase + it->second;
    }

    int
    constF(double value)
    {
        int64_t bits;
        std::memcpy(&bits, &value, sizeof(bits));
        auto [it, inserted] =
            fpool_.emplace(bits, static_cast<int>(fpoolValues_.size()));
        if (inserted) {
            fpoolValues_.push_back(bits);
        }
        return kConstRegBase + it->second;
    }

    void
    assignConstRegisters()
    {
        auto remapI = [&](int32_t &reg) {
            if (reg >= kConstRegBase) {
                reg = static_cast<int32_t>(iMax_ +
                                           (reg - kConstRegBase));
            }
        };
        auto remapF = [&](int32_t &reg) {
            if (reg >= kConstRegBase) {
                reg = static_cast<int32_t>(fMax_ +
                                           (reg - kConstRegBase));
            }
        };
        for (Instr &in : prog_.code) {
            switch (in.op) {
              case Op::kJump:
              case Op::kHalt:
              case Op::kIConst:
              case Op::kAlloc:
                remapOnlyC(in, remapI);
                break;
              case Op::kJumpIfZero:
              case Op::kJumpIfNonZero:
                remapI(in.a);
                break;
              case Op::kBranchGE:
              case Op::kIMov:
              case Op::kIAddImm:
              case Op::kIBool:
              case Op::kIEqz:
              case Op::kIAbs:
                remapI(in.a);
                remapI(in.b);
                break;
              case Op::kBlockWindow:
                remapI(in.a);
                remapI(in.b);
                remapI(in.c);
                remapI(in.d);
                break;
              case Op::kIAdd:
              case Op::kISub:
              case Op::kIMul:
              case Op::kIFloorDiv:
              case Op::kIFloorMod:
              case Op::kIMin:
              case Op::kIMax:
              case Op::kICmpEQ:
              case Op::kICmpNE:
              case Op::kICmpLT:
              case Op::kICmpLE:
              case Op::kICmpGT:
              case Op::kICmpGE:
                remapI(in.a);
                remapI(in.b);
                remapI(in.c);
                break;
              case Op::kFConst:
                remapF(in.a);
                break;
              case Op::kFMov:
              case Op::kFAbs:
              case Op::kFExp:
              case Op::kFLog:
              case Op::kFSqrt:
                remapF(in.a);
                remapF(in.b);
                break;
              case Op::kFAdd:
              case Op::kFSub:
              case Op::kFMul:
              case Op::kFDiv:
              case Op::kFMin:
              case Op::kFMax:
                remapF(in.a);
                remapF(in.b);
                remapF(in.c);
                break;
              case Op::kFCmpEQ:
              case Op::kFCmpNE:
              case Op::kFCmpLT:
              case Op::kFCmpLE:
              case Op::kFCmpGT:
              case Op::kFCmpGE:
                remapI(in.a);
                remapF(in.b);
                remapF(in.c);
                break;
              case Op::kCastIF:
                remapF(in.a);
                remapI(in.b);
                break;
              case Op::kCastFI:
                remapI(in.a);
                remapF(in.b);
                break;
              case Op::kLoadI:
              case Op::kStoreI:
                remapI(in.a);
                remapI(in.c);
                break;
              case Op::kLoadF:
              case Op::kStoreF:
                remapF(in.a);
                remapI(in.c);
                break;
              case Op::kLowerBound:
              case Op::kUpperBound: {
                remapI(in.a);
                remapI(in.c);
                remapI(in.d);
                // imm carries the value register for these two ops.
                int32_t val = static_cast<int32_t>(in.imm);
                remapI(val);
                in.imm = val;
                break;
              }
              case Op::kAtomicAddI:
                remapI(in.a);
                remapI(in.c);
                remapI(in.d);
                break;
              case Op::kAtomicAddF:
                remapF(in.a);
                remapI(in.c);
                remapF(in.d);
                break;
            }
        }
        prog_.iconsts.reserve(ipoolValues_.size());
        for (size_t i = 0; i < ipoolValues_.size(); ++i) {
            prog_.iconsts.emplace_back(
                static_cast<int32_t>(iMax_ + i), ipoolValues_[i]);
        }
        prog_.fconsts.reserve(fpoolValues_.size());
        for (size_t i = 0; i < fpoolValues_.size(); ++i) {
            prog_.fconsts.emplace_back(
                static_cast<int32_t>(fMax_ + i), fpoolValues_[i]);
        }
    }

    /** kAlloc's only register operand is c (element count). */
    template <typename Fn>
    static void
    remapOnlyC(Instr &in, Fn &&remap)
    {
        if (in.op == Op::kAlloc) {
            remap(in.c);
        }
    }

    // -----------------------------------------------------------------
    // Common subexpressions and loop-invariant hoisting
    //
    // Two compile-time reuses of pure integer computation, both
    // result-preserving (they only evaluate pure arithmetic earlier
    // or once instead of repeatedly):
    //
    //  - Statement CSE: a BufferStore whose indices/value repeat a
    //    subexpression (the read-modify-write pattern duplicates the
    //    whole output offset) evaluates each repeated subexpression
    //    once into a pinned register. Loads participate only when
    //    the statement performs no atomic side effect, and only
    //    unconditionally-evaluated occurrences count, so nothing
    //    guarded by a Select arm or short-circuit RHS is ever
    //    executed speculatively.
    //
    //  - Loop hoisting: maximal load-free integer arithmetic whose
    //    variables are all bound outside the loop is evaluated once
    //    before the loop head (floordiv/mod only with a non-zero
    //    constant divisor, so hoisting cannot introduce a fault).
    //    Nested loops find outer-hoisted values in the cache, so an
    //    expression lands at its outermost valid level.
    // -----------------------------------------------------------------

    /** Structural key with pointer identity for vars and storage. */
    static void
    cseKeyAppend(std::string *out, const Expr &e)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%d(",
                      static_cast<int>(e->kind));
        out->append(buf);
        switch (e->kind) {
          case ExprKind::kIntImm:
            out->append(std::to_string(
                static_cast<const IntImmNode *>(e.get())->value));
            break;
          case ExprKind::kFloatImm: {
            double v = static_cast<const FloatImmNode *>(e.get())->value;
            int64_t bits;
            std::memcpy(&bits, &v, sizeof(bits));
            out->append(std::to_string(bits));
            break;
          }
          case ExprKind::kVar:
            std::snprintf(buf, sizeof(buf), "%p",
                          static_cast<const void *>(e.get()));
            out->append(buf);
            break;
          case ExprKind::kNot:
            cseKeyAppend(out,
                         static_cast<const NotNode *>(e.get())->a);
            break;
          case ExprKind::kSelect: {
            auto op = static_cast<const SelectNode *>(e.get());
            cseKeyAppend(out, op->cond);
            cseKeyAppend(out, op->trueValue);
            cseKeyAppend(out, op->falseValue);
            break;
          }
          case ExprKind::kCast: {
            auto op = static_cast<const CastNode *>(e.get());
            out->append(op->dtype.str());
            cseKeyAppend(out, op->value);
            break;
          }
          case ExprKind::kBufferLoad: {
            auto op = static_cast<const BufferLoadNode *>(e.get());
            std::snprintf(buf, sizeof(buf), "%p",
                          static_cast<const void *>(
                              op->buffer->data.get()));
            out->append(buf);
            for (const Expr &index : op->indices) {
                cseKeyAppend(out, index);
            }
            break;
          }
          case ExprKind::kStringImm:
            out->append(
                static_cast<const StringImmNode *>(e.get())->value);
            break;
          case ExprKind::kCall: {
            // Calls are never cached, but keys of expressions that
            // contain them must still be well-formed.
            auto op = static_cast<const CallNode *>(e.get());
            std::snprintf(buf, sizeof(buf), "%d:%p",
                          static_cast<int>(op->op),
                          static_cast<const void *>(
                              op->bufferArg == nullptr
                                  ? nullptr
                                  : op->bufferArg->data.get()));
            out->append(buf);
            out->append(op->name);
            for (const Expr &arg : op->args) {
                cseKeyAppend(out, arg);
            }
            break;
          }
          case ExprKind::kRamp: {
            auto op = static_cast<const RampNode *>(e.get());
            cseKeyAppend(out, op->base);
            cseKeyAppend(out, op->stride);
            out->append(std::to_string(op->lanes));
            break;
          }
          case ExprKind::kBroadcast: {
            auto op = static_cast<const BroadcastNode *>(e.get());
            cseKeyAppend(out, op->value);
            out->append(std::to_string(op->lanes));
            break;
          }
          default: {
            auto op = static_cast<const BinaryNode *>(e.get());
            cseKeyAppend(out, op->a);
            cseKeyAppend(out, op->b);
            break;
          }
        }
        out->push_back(')');
    }

    static std::string
    cseKey(const Expr &e)
    {
        std::string key;
        key.reserve(64);
        cseKeyAppend(&key, e);
        return key;
    }

    static bool
    cseEligibleKind(ExprKind kind)
    {
        switch (kind) {
          case ExprKind::kIntImm:
          case ExprKind::kVar:
          case ExprKind::kAdd:
          case ExprKind::kSub:
          case ExprKind::kMul:
          case ExprKind::kFloorDiv:
          case ExprKind::kFloorMod:
          case ExprKind::kMin:
          case ExprKind::kMax:
          case ExprKind::kEQ:
          case ExprKind::kNE:
          case ExprKind::kLT:
          case ExprKind::kLE:
          case ExprKind::kGT:
          case ExprKind::kGE:
          case ExprKind::kAnd:
          case ExprKind::kOr:
          case ExprKind::kNot:
          case ExprKind::kSelect:
          case ExprKind::kCast:
          case ExprKind::kBufferLoad:
            return true;
          default:
            return false;
        }
    }

    /**
     * Pure integer computation: no calls, no float operands, every
     * variable already in scope, floordiv/mod only by non-zero
     * constants, loads (integer-typed) only when allowed.
     */
    bool
    isPureInt(const Expr &e, bool allow_loads)
    {
        if (!cseEligibleKind(e->kind)) {
            return false;
        }
        switch (e->kind) {
          case ExprKind::kIntImm:
            return true;
          case ExprKind::kVar: {
            auto it =
                vars_.find(static_cast<const VarNode *>(e.get()));
            return it != vars_.end() && !it->second.isFloat;
          }
          case ExprKind::kNot:
            return isPureInt(static_cast<const NotNode *>(e.get())->a,
                             allow_loads);
          case ExprKind::kSelect: {
            auto op = static_cast<const SelectNode *>(e.get());
            return isPureInt(op->cond, allow_loads) &&
                   isPureInt(op->trueValue, allow_loads) &&
                   isPureInt(op->falseValue, allow_loads);
          }
          case ExprKind::kCast: {
            auto op = static_cast<const CastNode *>(e.get());
            return !op->dtype.isFloat() &&
                   isPureInt(op->value, allow_loads);
          }
          case ExprKind::kBufferLoad: {
            auto op = static_cast<const BufferLoadNode *>(e.get());
            if (!allow_loads || op->buffer->dtype.isFloat()) {
                return false;
            }
            if (slotOf_.find(op->buffer->data.get()) ==
                slotOf_.end()) {
                return false;
            }
            for (const Expr &index : op->indices) {
                if (!isPureInt(index, allow_loads)) {
                    return false;
                }
            }
            return true;
          }
          case ExprKind::kFloorDiv:
          case ExprKind::kFloorMod: {
            auto op = static_cast<const BinaryNode *>(e.get());
            int64_t divisor = 0;
            if (!tryConstInt(op->b, &divisor) || divisor == 0) {
                return false;
            }
            return isPureInt(op->a, allow_loads);
          }
          default: {
            auto op = static_cast<const BinaryNode *>(e.get());
            return isPureInt(op->a, allow_loads) &&
                   isPureInt(op->b, allow_loads);
          }
        }
    }

    static bool
    cseNontrivial(const Expr &e)
    {
        return e->kind != ExprKind::kVar &&
               e->kind != ExprKind::kIntImm;
    }

    /** Count unconditionally-evaluated candidate occurrences. */
    void
    countCse(const Expr &e, bool conditional, bool allow_loads,
             std::unordered_map<std::string, int> *counts)
    {
        if (!conditional && cseNontrivial(e) &&
            isPureInt(e, allow_loads)) {
            ++(*counts)[cseKey(e)];
        }
        switch (e->kind) {
          case ExprKind::kNot:
            countCse(static_cast<const NotNode *>(e.get())->a,
                     conditional, allow_loads, counts);
            break;
          case ExprKind::kSelect: {
            auto op = static_cast<const SelectNode *>(e.get());
            countCse(op->cond, conditional, allow_loads, counts);
            countCse(op->trueValue, true, allow_loads, counts);
            countCse(op->falseValue, true, allow_loads, counts);
            break;
          }
          case ExprKind::kAnd:
          case ExprKind::kOr: {
            auto op = static_cast<const BinaryNode *>(e.get());
            countCse(op->a, conditional, allow_loads, counts);
            countCse(op->b, true, allow_loads, counts);
            break;
          }
          case ExprKind::kCast:
            countCse(static_cast<const CastNode *>(e.get())->value,
                     conditional, allow_loads, counts);
            break;
          case ExprKind::kBufferLoad: {
            auto op = static_cast<const BufferLoadNode *>(e.get());
            for (const Expr &index : op->indices) {
                countCse(index, conditional, allow_loads, counts);
            }
            break;
          }
          case ExprKind::kCall: {
            auto op = static_cast<const CallNode *>(e.get());
            for (const Expr &arg : op->args) {
                countCse(arg, conditional, allow_loads, counts);
            }
            break;
          }
          case ExprKind::kAdd:
          case ExprKind::kSub:
          case ExprKind::kMul:
          case ExprKind::kDiv:
          case ExprKind::kFloorDiv:
          case ExprKind::kFloorMod:
          case ExprKind::kMin:
          case ExprKind::kMax:
          case ExprKind::kEQ:
          case ExprKind::kNE:
          case ExprKind::kLT:
          case ExprKind::kLE:
          case ExprKind::kGT:
          case ExprKind::kGE: {
            auto op = static_cast<const BinaryNode *>(e.get());
            countCse(op->a, conditional, allow_loads, counts);
            countCse(op->b, conditional, allow_loads, counts);
            break;
          }
          default:
            break;
        }
    }

    /** Evaluate e once into a pinned register and cache it. */
    void
    pinCse(const Expr &e)
    {
        std::string key = cseKey(e);
        if (cse_.count(key)) {
            return;
        }
        Mark m = mark();
        int r = evalI(e);
        restore(m);
        int pin = allocI();
        if (pin != r) {
            emit(Op::kIMov, pin, r);
        }
        cse_.emplace(key, pin);
        cseStack_.push_back(std::move(key));
    }

    /**
     * Post-order materialization of repeated subexpressions: inner
     * repeats pin first, so outer pins evaluate through them.
     */
    void
    materializeCse(const Expr &e,
                   const std::unordered_map<std::string, int> &counts,
                   bool allow_loads)
    {
        switch (e->kind) {
          case ExprKind::kNot:
            materializeCse(static_cast<const NotNode *>(e.get())->a,
                           counts, allow_loads);
            break;
          case ExprKind::kSelect: {
            // Arms are conditional; only the condition may pin.
            auto op = static_cast<const SelectNode *>(e.get());
            materializeCse(op->cond, counts, allow_loads);
            break;
          }
          case ExprKind::kAnd:
          case ExprKind::kOr:
            materializeCse(
                static_cast<const BinaryNode *>(e.get())->a, counts,
                allow_loads);
            break;
          case ExprKind::kCast:
            materializeCse(
                static_cast<const CastNode *>(e.get())->value, counts,
                allow_loads);
            break;
          case ExprKind::kBufferLoad: {
            auto op = static_cast<const BufferLoadNode *>(e.get());
            for (const Expr &index : op->indices) {
                materializeCse(index, counts, allow_loads);
            }
            break;
          }
          case ExprKind::kCall: {
            auto op = static_cast<const CallNode *>(e.get());
            for (const Expr &arg : op->args) {
                materializeCse(arg, counts, allow_loads);
            }
            break;
          }
          case ExprKind::kAdd:
          case ExprKind::kSub:
          case ExprKind::kMul:
          case ExprKind::kDiv:
          case ExprKind::kFloorDiv:
          case ExprKind::kFloorMod:
          case ExprKind::kMin:
          case ExprKind::kMax:
          case ExprKind::kEQ:
          case ExprKind::kNE:
          case ExprKind::kLT:
          case ExprKind::kLE:
          case ExprKind::kGT:
          case ExprKind::kGE: {
            auto op = static_cast<const BinaryNode *>(e.get());
            materializeCse(op->a, counts, allow_loads);
            materializeCse(op->b, counts, allow_loads);
            break;
          }
          default:
            break;
        }
        if (cseNontrivial(e) && isPureInt(e, allow_loads)) {
            auto it = counts.find(cseKey(e));
            if (it != counts.end() && it->second >= 2) {
                pinCse(e);
            }
        }
    }

    /** True when the expression performs an atomic update. */
    static bool
    containsAtomic(const Expr &e)
    {
        switch (e->kind) {
          case ExprKind::kCall: {
            auto op = static_cast<const CallNode *>(e.get());
            if (op->op == Builtin::kAtomicAdd) {
                return true;
            }
            for (const Expr &arg : op->args) {
                if (containsAtomic(arg)) {
                    return true;
                }
            }
            return false;
          }
          case ExprKind::kNot:
            return containsAtomic(
                static_cast<const NotNode *>(e.get())->a);
          case ExprKind::kSelect: {
            auto op = static_cast<const SelectNode *>(e.get());
            return containsAtomic(op->cond) ||
                   containsAtomic(op->trueValue) ||
                   containsAtomic(op->falseValue);
          }
          case ExprKind::kCast:
            return containsAtomic(
                static_cast<const CastNode *>(e.get())->value);
          case ExprKind::kBufferLoad: {
            auto op = static_cast<const BufferLoadNode *>(e.get());
            for (const Expr &index : op->indices) {
                if (containsAtomic(index)) {
                    return true;
                }
            }
            return false;
          }
          case ExprKind::kAdd:
          case ExprKind::kSub:
          case ExprKind::kMul:
          case ExprKind::kDiv:
          case ExprKind::kFloorDiv:
          case ExprKind::kFloorMod:
          case ExprKind::kMin:
          case ExprKind::kMax:
          case ExprKind::kEQ:
          case ExprKind::kNE:
          case ExprKind::kLT:
          case ExprKind::kLE:
          case ExprKind::kGT:
          case ExprKind::kGE:
          case ExprKind::kAnd:
          case ExprKind::kOr: {
            auto op = static_cast<const BinaryNode *>(e.get());
            return containsAtomic(op->a) || containsAtomic(op->b);
          }
          default:
            return false;
        }
    }

    /** Statement-level CSE entry: count, then pin repeats. */
    void
    stmtCse(const BufferStoreNode *op)
    {
        bool allow_loads = !containsAtomic(op->value);
        for (const Expr &index : op->indices) {
            allow_loads = allow_loads && !containsAtomic(index);
        }
        std::unordered_map<std::string, int> counts;
        for (const Expr &index : op->indices) {
            countCse(index, false, allow_loads, &counts);
        }
        countCse(op->value, false, allow_loads, &counts);
        for (const Expr &index : op->indices) {
            materializeCse(index, counts, allow_loads);
        }
        materializeCse(op->value, counts, allow_loads);
    }

    /**
     * Hoist maximal load-free pure arithmetic out of a loop body.
     * Eligibility already requires every referenced variable to be
     * in scope, and the loop variable is registered after this runs,
     * so anything depending on it (or on inner definitions) stays.
     */
    void
    hoistExpr(const Expr &e)
    {
        if (cseNontrivial(e) && isPureInt(e, /*allow_loads=*/false)) {
            pinCse(e);
            return;
        }
        switch (e->kind) {
          case ExprKind::kNot:
            hoistExpr(static_cast<const NotNode *>(e.get())->a);
            break;
          case ExprKind::kSelect: {
            auto op = static_cast<const SelectNode *>(e.get());
            hoistExpr(op->cond);
            hoistExpr(op->trueValue);
            hoistExpr(op->falseValue);
            break;
          }
          case ExprKind::kCast:
            hoistExpr(static_cast<const CastNode *>(e.get())->value);
            break;
          case ExprKind::kBufferLoad: {
            auto op = static_cast<const BufferLoadNode *>(e.get());
            for (const Expr &index : op->indices) {
                hoistExpr(index);
            }
            break;
          }
          case ExprKind::kCall: {
            auto op = static_cast<const CallNode *>(e.get());
            for (const Expr &arg : op->args) {
                hoistExpr(arg);
            }
            break;
          }
          case ExprKind::kAdd:
          case ExprKind::kSub:
          case ExprKind::kMul:
          case ExprKind::kDiv:
          case ExprKind::kFloorDiv:
          case ExprKind::kFloorMod:
          case ExprKind::kMin:
          case ExprKind::kMax:
          case ExprKind::kEQ:
          case ExprKind::kNE:
          case ExprKind::kLT:
          case ExprKind::kLE:
          case ExprKind::kGT:
          case ExprKind::kGE:
          case ExprKind::kAnd:
          case ExprKind::kOr: {
            auto op = static_cast<const BinaryNode *>(e.get());
            hoistExpr(op->a);
            hoistExpr(op->b);
            break;
          }
          default:
            break;
        }
    }

    void
    hoistStmt(const Stmt &s)
    {
        switch (s->kind) {
          case StmtKind::kBufferStore: {
            auto op = static_cast<const BufferStoreNode *>(s.get());
            for (const Expr &index : op->indices) {
                hoistExpr(index);
            }
            hoistExpr(op->value);
            break;
          }
          case StmtKind::kSeq:
            for (const auto &child :
                 static_cast<const SeqStmtNode *>(s.get())->seq) {
                hoistStmt(child);
            }
            break;
          case StmtKind::kFor: {
            auto op = static_cast<const ForNode *>(s.get());
            hoistExpr(op->minValue);
            hoistExpr(op->extent);
            hoistStmt(op->body);
            break;
          }
          case StmtKind::kBlock: {
            auto op = static_cast<const BlockNode *>(s.get());
            if (op->init != nullptr) {
                hoistStmt(op->init);
            }
            hoistStmt(op->body);
            break;
          }
          case StmtKind::kIfThenElse: {
            auto op = static_cast<const IfThenElseNode *>(s.get());
            hoistExpr(op->cond);
            hoistStmt(op->thenBody);
            if (op->elseBody != nullptr) {
                hoistStmt(op->elseBody);
            }
            break;
          }
          case StmtKind::kLetStmt: {
            auto op = static_cast<const LetStmtNode *>(s.get());
            hoistExpr(op->value);
            hoistStmt(op->body);
            break;
          }
          case StmtKind::kAllocate: {
            auto op = static_cast<const AllocateNode *>(s.get());
            for (const Expr &dim : op->buffer->shape) {
                hoistExpr(dim);
            }
            hoistStmt(op->body);
            break;
          }
          case StmtKind::kEvaluate:
            hoistExpr(
                static_cast<const EvaluateNode *>(s.get())->value);
            break;
          default:
            break;
        }
    }

    void
    cseUndo(size_t depth)
    {
        while (cseStack_.size() > depth) {
            cse_.erase(cseStack_.back());
            cseStack_.pop_back();
        }
    }

    // -----------------------------------------------------------------
    // Buffer slots
    // -----------------------------------------------------------------

    void
    registerParamSlot(const Var &param)
    {
        int slot = static_cast<int>(prog_.slots.size());
        SlotInfo info;
        info.name = param->name;
        if (Buffer buffer = func_->bufferOf(param)) {
            info.isFloatClass = buffer->dtype.isFloat();
        }
        prog_.slots.push_back(std::move(info));
        slotOf_[param.get()] = slot;
    }

    /** Read a variable's register, recording scalar-param usage. */
    int
    varReg(const VarNode *var)
    {
        auto used = scalarParamIndex_.find(var);
        if (used != scalarParamIndex_.end()) {
            scalarUsed_[used->second] = true;
        }
        return vars_.at(var).reg;
    }

    /** Slot of a buffer's storage; the data var must be a handle
     * param or an enclosing Allocate. */
    int
    slotFor(const Buffer &buffer)
    {
        auto it = slotOf_.find(buffer->data.get());
        ICHECK(it != slotOf_.end())
            << "no storage bound for buffer '" << buffer->name << "'";
        return it->second;
    }

    // -----------------------------------------------------------------
    // Static typing (mirrors the interpreter's dynamic promotion)
    // -----------------------------------------------------------------

    bool
    isFloatExpr(const Expr &e)
    {
        switch (e->kind) {
          case ExprKind::kIntImm:
            return false;
          case ExprKind::kFloatImm:
            return true;
          case ExprKind::kVar: {
            auto op = static_cast<const VarNode *>(e.get());
            auto it = vars_.find(op);
            ICHECK(it != vars_.end())
                << "unbound variable '" << op->name << "'";
            return it->second.isFloat;
          }
          case ExprKind::kAdd:
          case ExprKind::kSub:
          case ExprKind::kMul:
          case ExprKind::kMin:
          case ExprKind::kMax: {
            auto op = static_cast<const BinaryNode *>(e.get());
            return isFloatExpr(op->a) || isFloatExpr(op->b);
          }
          case ExprKind::kDiv:
            // Interpreter `/` always computes in float.
            return true;
          case ExprKind::kFloorDiv:
          case ExprKind::kFloorMod:
          case ExprKind::kEQ:
          case ExprKind::kNE:
          case ExprKind::kLT:
          case ExprKind::kLE:
          case ExprKind::kGT:
          case ExprKind::kGE:
          case ExprKind::kAnd:
          case ExprKind::kOr:
          case ExprKind::kNot:
            return false;
          case ExprKind::kSelect: {
            auto op = static_cast<const SelectNode *>(e.get());
            return isFloatExpr(op->trueValue) ||
                   isFloatExpr(op->falseValue);
          }
          case ExprKind::kCast:
            return static_cast<const CastNode *>(e.get())
                ->dtype.isFloat();
          case ExprKind::kBufferLoad:
            return static_cast<const BufferLoadNode *>(e.get())
                ->buffer->dtype.isFloat();
          case ExprKind::kCall: {
            auto op = static_cast<const CallNode *>(e.get());
            switch (op->op) {
              case Builtin::kLowerBound:
              case Builtin::kUpperBound:
                return false;
              case Builtin::kExp:
              case Builtin::kLog:
              case Builtin::kSqrt:
                return true;
              case Builtin::kAbs:
                return isFloatExpr(op->args[0]);
              case Builtin::kAtomicAdd:
                ICHECK(op->bufferArg != nullptr);
                return op->bufferArg->dtype.isFloat();
              case Builtin::kExtern:
                USER_CHECK(false) << "cannot interpret extern call '"
                                  << op->name << "'";
            }
            return false;
          }
          default:
            USER_CHECK(false) << "expression kind not compilable to "
                                 "bytecode in '"
                              << func_->name << "'";
        }
        return false;
    }

    // -----------------------------------------------------------------
    // Expressions
    // -----------------------------------------------------------------

    /**
     * Compile e to an int register (interpreter asInt view). The
     * returned register may be a pinned variable register; callers
     * must treat it as read-only.
     */
    int
    evalI(const Expr &e)
    {
        if (!cse_.empty() && cseEligibleKind(e->kind) &&
            cseNontrivial(e)) {
            auto it = cse_.find(cseKey(e));
            if (it != cse_.end()) {
                return it->second;
            }
        }
        if (isFloatExpr(e)) {
            Mark m = mark();
            int f = evalF(e);
            restore(m);
            int r = allocI();
            emit(Op::kCastFI, r, f);
            return r;
        }
        switch (e->kind) {
          case ExprKind::kIntImm:
            return constI(
                static_cast<const IntImmNode *>(e.get())->value);
          case ExprKind::kVar:
            return varReg(static_cast<const VarNode *>(e.get()));
          case ExprKind::kNot: {
            Mark m = mark();
            int a = evalI(static_cast<const NotNode *>(e.get())->a);
            restore(m);
            int r = allocI();
            emit(Op::kIEqz, r, a);
            return r;
          }
          case ExprKind::kSelect:
            return compileSelect(
                static_cast<const SelectNode *>(e.get()), false);
          case ExprKind::kCast:
            // Int-targeted cast of an int value is the identity
            // (interpreter: v.asInt()); float sources took the
            // conversion path above.
            return evalI(static_cast<const CastNode *>(e.get())->value);
          case ExprKind::kBufferLoad: {
            auto op = static_cast<const BufferLoadNode *>(e.get());
            Mark m = mark();
            int off = compileOffset(op->buffer, op->indices);
            restore(m);
            int r = allocI();
            emit(Op::kLoadI, r, slotFor(op->buffer), off);
            return r;
          }
          case ExprKind::kCall:
            return compileCallI(static_cast<const CallNode *>(e.get()));
          case ExprKind::kAnd:
          case ExprKind::kOr:
            return compileShortCircuit(
                static_cast<const BinaryNode *>(e.get()));
          case ExprKind::kEQ:
          case ExprKind::kNE:
          case ExprKind::kLT:
          case ExprKind::kLE:
          case ExprKind::kGT:
          case ExprKind::kGE:
            return compileCompare(
                static_cast<const BinaryNode *>(e.get()));
          case ExprKind::kAdd:
          case ExprKind::kSub:
          case ExprKind::kMul:
          case ExprKind::kFloorDiv:
          case ExprKind::kFloorMod:
          case ExprKind::kMin:
          case ExprKind::kMax: {
            auto op = static_cast<const BinaryNode *>(e.get());
            Mark m = mark();
            int ra = evalI(op->a);
            int rb = evalI(op->b);
            restore(m);
            int r = allocI();
            emit(intArithOp(e->kind), r, ra, rb);
            return r;
          }
          default:
            USER_CHECK(false) << "expression kind not compilable to "
                                 "bytecode in '"
                              << func_->name << "'";
        }
        return 0;
    }

    /** Compile e to a float register (interpreter asFloat view). */
    int
    evalF(const Expr &e)
    {
        if (!isFloatExpr(e)) {
            Mark m = mark();
            int i = evalI(e);
            restore(m);
            int r = allocF();
            emit(Op::kCastIF, r, i);
            return r;
        }
        switch (e->kind) {
          case ExprKind::kFloatImm:
            return constF(
                static_cast<const FloatImmNode *>(e.get())->value);
          case ExprKind::kVar:
            return varReg(static_cast<const VarNode *>(e.get()));
          case ExprKind::kSelect:
            return compileSelect(
                static_cast<const SelectNode *>(e.get()), true);
          case ExprKind::kCast:
            // Float-targeted cast: int sources took the conversion
            // path above; float-of-float is the identity.
            return evalF(static_cast<const CastNode *>(e.get())->value);
          case ExprKind::kBufferLoad: {
            auto op = static_cast<const BufferLoadNode *>(e.get());
            Mark m = mark();
            int off = compileOffset(op->buffer, op->indices);
            restore(m);
            int r = allocF();
            emit(Op::kLoadF, r, slotFor(op->buffer), off);
            return r;
          }
          case ExprKind::kCall:
            return compileCallF(static_cast<const CallNode *>(e.get()));
          case ExprKind::kAdd:
          case ExprKind::kSub:
          case ExprKind::kMul:
          case ExprKind::kDiv:
          case ExprKind::kMin:
          case ExprKind::kMax: {
            auto op = static_cast<const BinaryNode *>(e.get());
            Mark m = mark();
            int fa = evalF(op->a);
            int fb = evalF(op->b);
            restore(m);
            int r = allocF();
            emit(floatArithOp(e->kind), r, fa, fb);
            return r;
          }
          default:
            USER_CHECK(false) << "expression kind not compilable to "
                                 "bytecode in '"
                              << func_->name << "'";
        }
        return 0;
    }

    static Op
    intArithOp(ExprKind kind)
    {
        switch (kind) {
          case ExprKind::kAdd:
            return Op::kIAdd;
          case ExprKind::kSub:
            return Op::kISub;
          case ExprKind::kMul:
            return Op::kIMul;
          case ExprKind::kFloorDiv:
            return Op::kIFloorDiv;
          case ExprKind::kFloorMod:
            return Op::kIFloorMod;
          case ExprKind::kMin:
            return Op::kIMin;
          default:
            return Op::kIMax;
        }
    }

    static Op
    floatArithOp(ExprKind kind)
    {
        switch (kind) {
          case ExprKind::kAdd:
            return Op::kFAdd;
          case ExprKind::kSub:
            return Op::kFSub;
          case ExprKind::kMul:
            return Op::kFMul;
          case ExprKind::kDiv:
            return Op::kFDiv;
          case ExprKind::kMin:
            return Op::kFMin;
          default:
            return Op::kFMax;
        }
    }

    /** EQ..GE with the interpreter's float promotion; result int. */
    int
    compileCompare(const BinaryNode *op)
    {
        bool flt = isFloatExpr(op->a) || isFloatExpr(op->b);
        Mark m = mark();
        int dst;
        if (flt) {
            int fa = evalF(op->a);
            int fb = evalF(op->b);
            restore(m);
            dst = allocI();
            emit(floatCmpOp(op->kind), dst, fa, fb);
        } else {
            int ra = evalI(op->a);
            int rb = evalI(op->b);
            restore(m);
            dst = allocI();
            emit(intCmpOp(op->kind), dst, ra, rb);
        }
        return dst;
    }

    static Op
    intCmpOp(ExprKind kind)
    {
        switch (kind) {
          case ExprKind::kEQ:
            return Op::kICmpEQ;
          case ExprKind::kNE:
            return Op::kICmpNE;
          case ExprKind::kLT:
            return Op::kICmpLT;
          case ExprKind::kLE:
            return Op::kICmpLE;
          case ExprKind::kGT:
            return Op::kICmpGT;
          default:
            return Op::kICmpGE;
        }
    }

    static Op
    floatCmpOp(ExprKind kind)
    {
        switch (kind) {
          case ExprKind::kEQ:
            return Op::kFCmpEQ;
          case ExprKind::kNE:
            return Op::kFCmpNE;
          case ExprKind::kLT:
            return Op::kFCmpLT;
          case ExprKind::kLE:
            return Op::kFCmpLE;
          case ExprKind::kGT:
            return Op::kFCmpGT;
          default:
            return Op::kFCmpGE;
        }
    }

    /**
     * kAnd/kOr with short-circuit jumps: guards depend on the right
     * operand not executing when the left decides (e.g. a bounds
     * check before an indices load), exactly like the interpreter.
     */
    int
    compileShortCircuit(const BinaryNode *op)
    {
        bool is_and = op->kind == ExprKind::kAnd;
        int r = allocI();
        Mark m = mark();
        int a = evalI(op->a);
        int jshort = emit(is_and ? Op::kJumpIfZero : Op::kJumpIfNonZero,
                          a);
        restore(m);
        int b = evalI(op->b);
        emit(Op::kIBool, r, b);
        restore(m);
        int jend = emit(Op::kJump);
        patch(jshort, here());
        emit(Op::kIConst, r, 0, 0, 0, is_and ? 0 : 1);
        patch(jend, here());
        return r;
    }

    /** Select evaluates only the taken arm, like the interpreter. */
    int
    compileSelect(const SelectNode *op, bool flt)
    {
        int r = flt ? allocF() : allocI();
        Mark m = mark();
        int c = evalI(op->cond);
        int jelse = emit(Op::kJumpIfZero, c);
        restore(m);
        int t = flt ? evalF(op->trueValue) : evalI(op->trueValue);
        emit(flt ? Op::kFMov : Op::kIMov, r, t);
        restore(m);
        int jend = emit(Op::kJump);
        patch(jelse, here());
        int f = flt ? evalF(op->falseValue) : evalI(op->falseValue);
        emit(flt ? Op::kFMov : Op::kIMov, r, f);
        restore(m);
        patch(jend, here());
        return r;
    }

    /**
     * Flat element offset of an access. Stage III accesses carry one
     * index; multi-dimensional dense accesses compile the row-major
     * linearization (per-dimension extents evaluated at run time).
     */
    int
    compileOffset(const Buffer &buffer, const std::vector<Expr> &indices)
    {
        if (indices.size() == 1) {
            return evalI(indices[0]);
        }
        USER_CHECK(!buffer->isSparse())
            << "bytecode backend requires lowered (dense) buffer "
               "access for '"
            << buffer->name << "'; run sparse buffer lowering first";
        ICHECK_EQ(indices.size(), buffer->shape.size());
        Expr offset = indices[0];
        for (size_t d = 1; d < indices.size(); ++d) {
            offset = add(mul(offset, buffer->shape[d]), indices[d]);
        }
        return evalI(offset);
    }

    int
    compileCallI(const CallNode *op)
    {
        switch (op->op) {
          case Builtin::kLowerBound:
          case Builtin::kUpperBound: {
            ICHECK(op->bufferArg != nullptr);
            ICHECK_EQ(op->args.size(), 3u);
            int slot = slotFor(op->bufferArg);
            Mark m = mark();
            int lo = evalI(op->args[0]);
            int hi = evalI(op->args[1]);
            int val = evalI(op->args[2]);
            restore(m);
            int r = allocI();
            emit(op->op == Builtin::kLowerBound ? Op::kLowerBound
                                                : Op::kUpperBound,
                 r, slot, lo, hi, val);
            return r;
          }
          case Builtin::kAbs: {
            Mark m = mark();
            int a = evalI(op->args[0]);
            restore(m);
            int r = allocI();
            emit(Op::kIAbs, r, a);
            return r;
          }
          case Builtin::kAtomicAdd: {
            ICHECK(op->bufferArg != nullptr);
            ICHECK_EQ(op->args.size(), 2u);
            int slot = slotFor(op->bufferArg);
            Mark m = mark();
            int off = evalI(op->args[0]);
            int v = evalI(op->args[1]);
            restore(m);
            int r = allocI();
            emit(Op::kAtomicAddI, r, slot, off, v);
            return r;
          }
          default:
            USER_CHECK(false)
                << "cannot compile call in integer context in '"
                << func_->name << "'";
        }
        return 0;
    }

    int
    compileCallF(const CallNode *op)
    {
        switch (op->op) {
          case Builtin::kExp:
          case Builtin::kLog:
          case Builtin::kSqrt: {
            Mark m = mark();
            int a = evalF(op->args[0]);
            restore(m);
            int r = allocF();
            Op code = op->op == Builtin::kExp
                          ? Op::kFExp
                          : (op->op == Builtin::kLog ? Op::kFLog
                                                     : Op::kFSqrt);
            emit(code, r, a);
            return r;
          }
          case Builtin::kAbs: {
            Mark m = mark();
            int a = evalF(op->args[0]);
            restore(m);
            int r = allocF();
            emit(Op::kFAbs, r, a);
            return r;
          }
          case Builtin::kAtomicAdd: {
            ICHECK(op->bufferArg != nullptr);
            ICHECK_EQ(op->args.size(), 2u);
            int slot = slotFor(op->bufferArg);
            Mark m = mark();
            int off = evalI(op->args[0]);
            int v = evalF(op->args[1]);
            restore(m);
            int r = allocF();
            emit(Op::kAtomicAddF, r, slot, off, v);
            return r;
          }
          default:
            USER_CHECK(false)
                << "cannot compile call in float context in '"
                << func_->name << "'";
        }
        return 0;
    }

    // -----------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------

    void
    compileStmt(const Stmt &s)
    {
        switch (s->kind) {
          case StmtKind::kBufferStore: {
            auto op = static_cast<const BufferStoreNode *>(s.get());
            Mark m = mark();
            size_t cse_depth = cseStack_.size();
            stmtCse(op);
            // Value before indices, mirroring the interpreter's
            // evaluation order (observable when the value contains
            // an atomic update the indices then read).
            int slot = slotFor(op->buffer);
            if (op->buffer->dtype.isFloat()) {
                int v = evalF(op->value);
                int off = compileOffset(op->buffer, op->indices);
                emit(Op::kStoreF, v, slot, off);
            } else {
                int v = evalI(op->value);
                int off = compileOffset(op->buffer, op->indices);
                emit(Op::kStoreI, v, slot, off);
            }
            cseUndo(cse_depth);
            restore(m);
            break;
          }
          case StmtKind::kSeq: {
            auto op = static_cast<const SeqStmtNode *>(s.get());
            for (const auto &child : op->seq) {
                compileStmt(child);
            }
            break;
          }
          case StmtKind::kFor:
            compileFor(static_cast<const ForNode *>(s.get()));
            break;
          case StmtKind::kBlock: {
            auto op = static_cast<const BlockNode *>(s.get());
            if (op->init != nullptr) {
                // Fire the init only when every in-scope reduce var
                // is at zero; vars not in scope never veto (the
                // interpreter's scalars_.find miss).
                std::vector<int> skips;
                for (const auto &rv : op->reduceVars) {
                    auto it = vars_.find(rv.get());
                    if (it != vars_.end()) {
                        skips.push_back(emit(Op::kJumpIfNonZero,
                                             it->second.reg));
                    }
                }
                compileStmt(op->init);
                for (int pc : skips) {
                    patch(pc, here());
                }
            }
            compileStmt(op->body);
            break;
          }
          case StmtKind::kIfThenElse: {
            auto op = static_cast<const IfThenElseNode *>(s.get());
            Mark m = mark();
            int c = evalI(op->cond);
            int jelse = emit(Op::kJumpIfZero, c);
            restore(m);
            compileStmt(op->thenBody);
            if (op->elseBody != nullptr) {
                int jend = emit(Op::kJump);
                patch(jelse, here());
                compileStmt(op->elseBody);
                patch(jend, here());
            } else {
                patch(jelse, here());
            }
            break;
          }
          case StmtKind::kLetStmt: {
            auto op = static_cast<const LetStmtNode *>(s.get());
            Mark scope = mark();
            bool flt = isFloatExpr(op->value);
            int reg = flt ? allocF() : allocI();
            Mark m = mark();
            int v = flt ? evalF(op->value) : evalI(op->value);
            emit(flt ? Op::kFMov : Op::kIMov, reg, v);
            restore(m);
            vars_[op->letVar.get()] = VarInfo{flt, reg};
            compileStmt(op->body);
            vars_.erase(op->letVar.get());
            restore(scope);
            break;
          }
          case StmtKind::kAllocate: {
            auto op = static_cast<const AllocateNode *>(s.get());
            int slot = static_cast<int>(prog_.slots.size());
            SlotInfo info;
            info.name = op->buffer->name;
            info.isFloatClass = op->buffer->dtype.isFloat();
            info.isAlloc = true;
            info.allocKind = elemKindOfDtype(op->buffer->dtype);
            prog_.slots.push_back(info);
            Expr size = op->buffer->shape.empty()
                            ? intImm(1)
                            : op->buffer->shape[0];
            for (size_t d = 1; d < op->buffer->shape.size(); ++d) {
                size = mul(size, op->buffer->shape[d]);
            }
            Mark m = mark();
            int n = evalI(size);
            emit(Op::kAlloc, static_cast<int32_t>(info.allocKind),
                 slot, n);
            restore(m);
            slotOf_[op->buffer->data.get()] = slot;
            compileStmt(op->body);
            slotOf_.erase(op->buffer->data.get());
            break;
          }
          case StmtKind::kEvaluate: {
            auto op = static_cast<const EvaluateNode *>(s.get());
            Mark m = mark();
            if (isFloatExpr(op->value)) {
                evalF(op->value);
            } else {
                evalI(op->value);
            }
            restore(m);
            break;
          }
          case StmtKind::kSparseIteration:
            USER_CHECK(false)
                << "cannot interpret Stage I sparse iteration '"
                << static_cast<const SparseIterationNode *>(s.get())
                       ->name
                << "'; lower the function first";
            break;
          default:
            ICHECK(false) << "unhandled stmt kind";
        }
    }

    void
    compileFor(const ForNode *op)
    {
        Mark scope = mark();
        size_t cse_depth = cseStack_.size();
        int rvar = allocI();
        int rhi = allocI();
        Mark m = mark();
        int rmin = evalI(op->minValue);
        int rext = evalI(op->extent);
        if (op == blockLoop_) {
            prog_.blockWindowPc =
                emit(Op::kBlockWindow, rvar, rhi, rmin, rext);
        } else {
            emit(Op::kIMov, rvar, rmin);
            emit(Op::kIAdd, rhi, rmin, rext);
        }
        restore(m);
        // Pin loop-invariant arithmetic before the loop variable
        // enters scope, so nothing depending on it can hoist.
        hoistStmt(op->body);
        vars_[op->loopVar.get()] = VarInfo{false, rvar};
        int head = here();
        int jexit = emit(Op::kBranchGE, rvar, rhi);
        compileStmt(op->body);
        emit(Op::kIAddImm, rvar, rvar, 0, 0, 1);
        emit(Op::kJump, 0, 0, 0, 0, head);
        patch(jexit, here());
        vars_.erase(op->loopVar.get());
        cseUndo(cse_depth);
        restore(scope);
    }

    PrimFunc func_;
    Program prog_;
    /** All scalar params in signature order; used ones publish. */
    std::vector<ScalarParam> scalars_;
    std::unordered_map<const VarNode *, size_t> scalarParamIndex_;
    std::vector<bool> scalarUsed_;
    /** Pinned-register cache of CSE'd / hoisted expressions. */
    std::unordered_map<std::string, int> cse_;
    /** Insertion order of cse_ keys, for scoped undo. */
    std::vector<std::string> cseStack_;
    std::unordered_map<int64_t, int> ipool_;
    std::vector<int64_t> ipoolValues_;
    std::unordered_map<int64_t, int> fpool_;
    std::vector<int64_t> fpoolValues_;
    std::unordered_map<const VarNode *, VarInfo> vars_;
    /** Buffer data var -> slot (params + in-scope allocations). */
    std::unordered_map<const VarNode *, int> slotOf_;
    const ForNode *blockLoop_ = nullptr;
    int iTop_ = 0;
    int fTop_ = 0;
    int iMax_ = 0;
    int fMax_ = 0;
};

} // namespace

std::shared_ptr<const Program>
compile(const ir::PrimFunc &func)
{
    std::string diag = transform::stage3ExecDiagnostic(func);
    USER_CHECK(diag.empty())
        << "cannot compile '" << func->name << "' to bytecode: "
        << diag;
    Compiler compiler(func);
    return compiler.run();
}

namespace {

/** Memo value; the guard detects node-address reuse after free. */
struct MemoEntry
{
    std::weak_ptr<ir::PrimFuncNode> guard;
    std::shared_ptr<const Program> program;
};

std::mutex memo_mu;
std::unordered_map<const ir::PrimFuncNode *, MemoEntry> memo_map;

} // namespace

std::shared_ptr<const Program>
programFor(const ir::PrimFunc &func)
{
    {
        std::lock_guard<std::mutex> lock(memo_mu);
        auto it = memo_map.find(func.get());
        if (it != memo_map.end()) {
            if (it->second.guard.lock().get() == func.get()) {
                return it->second.program;
            }
            memo_map.erase(it);
        }
    }
    std::shared_ptr<const Program> program;
    try {
        SPARSETIR_TRACE_SCOPE("compile", "bytecode.compile");
        program = compile(func);
    } catch (const UserError &) {
        // The designed not-compilable path (stage3ExecDiagnostic):
        // remembered; callers use the interpreter. InternalError is
        // a compiler bug and propagates — silently interpreting
        // would hide it behind correct-but-slow results.
        program = nullptr;
    }
    std::lock_guard<std::mutex> lock(memo_mu);
    if (memo_map.size() > 1024) {
        // Sweep entries whose function has been freed.
        for (auto it = memo_map.begin(); it != memo_map.end();) {
            it = it->second.guard.expired() ? memo_map.erase(it)
                                            : std::next(it);
        }
    }
    memo_map[func.get()] = MemoEntry{func, program};
    return program;
}

} // namespace bytecode
} // namespace runtime
} // namespace sparsetir
