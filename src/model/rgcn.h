/**
 * @file
 * RGCN inference execution variants (paper §4.4.1, Figure 20):
 * SparseTIR(naive) — per-relation two-stage with T in HBM;
 * SparseTIR(hyb) — fused RGMS over 3-D hyb, CUDA cores;
 * SparseTIR(hyb+TC) — the same with Tensor-Core MMA.
 */

#ifndef SPARSETIR_MODEL_RGCN_H_
#define SPARSETIR_MODEL_RGCN_H_

#include <cstdint>
#include <vector>

#include "dfg/op_graph.h"
#include "engine/engine.h"
#include "format/relational.h"
#include "gpusim/simulator.h"

namespace sparsetir {
namespace model {

struct RgcnResult
{
    double timeMs = 0.0;
    /** Simulated GPU memory footprint (bytes). */
    int64_t footprintBytes = 0;
};

/** SparseTIR(naive): per-relation GEMM + CSR SpMM, T materialized. */
RgcnResult rgcnSparseTirNaive(const format::RelationalCsr &graph,
                              int64_t feat, gpusim::Device &device);

/** SparseTIR(hyb) / SparseTIR(hyb+TC): fused RGMS over bucketed ELL. */
RgcnResult rgcnSparseTirHyb(const format::RelationalCsr &graph,
                            int64_t feat, gpusim::Device &device,
                            bool tensor_cores, int bucket_cap_log2 = 5);

/**
 * Shared RGMS kernel-plan heuristics. The simulator path above and
 * the serving path (engine::Engine::rgcn) must bucket and schedule
 * identically for tuning numbers to describe the served kernels, so
 * both derive their plans from these.
 */

/**
 * An RGCN layer as a dataflow graph: per-relation sum-aggregates of
 * "x" combined by add nodes, then the dense update against the shared
 * weight "w" — out = (sum_r A_r @ x) @ w. The relations iterate
 * DISTINCT sparsity structures, so dfg fusion bails and the graph
 * dispatches as the per-node chain (the documented multi-pattern
 * fallback); it still resolves ONE cached graph artifact and one
 * engine dispatch. Relations with no edges are skipped.
 */
dfg::OpGraph buildRgcnGraph(
    const std::vector<dfg::PatternRef> &relations, int64_t feat_in,
    int64_t feat_out);

/** Serve one RGCN layer (chain-dispatched) through the engine. */
engine::DispatchInfo
rgcnLayer(engine::Engine &engine,
          const std::vector<dfg::PatternRef> &relations,
          int64_t feat_in, int64_t feat_out, runtime::NDArray *x,
          runtime::NDArray *w, runtime::NDArray *out);

/** Effective hyb bucket cap for one relation. */
int32_t rgcnBucketCap(const format::Csr &rel, int bucket_cap_log2);

/** Rows grouped per thread block for an RGMS bucket of this width. */
int rgcnRowsPerBlock(int width);

} // namespace model
} // namespace sparsetir

#endif // SPARSETIR_MODEL_RGCN_H_
