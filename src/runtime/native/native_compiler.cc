#include "runtime/native/native_compiler.h"

#include <dlfcn.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "observe/trace.h"
#include "runtime/bytecode/program.h"
#include "runtime/native/c_emitter.h"
#include "support/logging.h"

namespace sparsetir {
namespace runtime {
namespace native {

namespace {

// ---------------------------------------------------------------------
// Cache directory + filenames
// ---------------------------------------------------------------------

/** FNV-1a over the emitted source; the cache filename. A local copy
 *  rather than the engine's fingerprint helper — runtime/ must not
 *  depend on engine/. */
uint64_t
fnv1a(const std::string &text)
{
    uint64_t h = 14695981039346656037ULL;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

std::string
hex16(uint64_t value)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

/** mkdir -p. Races with other processes are fine (EEXIST ignored). */
void
makeDirs(const std::string &path)
{
    std::string partial;
    size_t pos = 0;
    while (pos <= path.size()) {
        size_t next = path.find('/', pos);
        if (next == std::string::npos) {
            next = path.size();
        }
        partial = path.substr(0, next);
        if (!partial.empty() && partial != "/") {
            if (::mkdir(partial.c_str(), 0700) != 0 &&
                errno != EEXIST) {
                USER_CHECK(false)
                    << "cannot create native cache directory '"
                    << partial << "': " << std::strerror(errno);
            }
        }
        pos = next + 1;
    }
}

std::string
compilerCommand()
{
    const char *cc = std::getenv("SPARSETIR_NATIVE_CC");
    return (cc != nullptr && cc[0] != '\0') ? cc : "cc";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// ---------------------------------------------------------------------
// Artifact loading
// ---------------------------------------------------------------------

/**
 * dlopen `so_path` and resolve entry + meta; succeeds only when the
 * embedded meta string equals `expected_meta` (same source hash can
 * only come from the same source, but the meta check additionally
 * rejects truncated/corrupted files whose dlopen accidentally
 * succeeds and artifacts from foreign builds at a colliding name).
 */
std::shared_ptr<void>
tryLoad(const std::string &so_path, const std::string &expected_meta,
        KernelEntryFn *entry_out)
{
    void *raw = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (raw == nullptr) {
        return nullptr;
    }
    std::shared_ptr<void> handle(raw,
                                 [](void *h) { ::dlclose(h); });
    const char *meta =
        static_cast<const char *>(::dlsym(raw, kMetaSymbol));
    if (meta == nullptr || expected_meta != meta) {
        return nullptr;
    }
    auto entry = reinterpret_cast<KernelEntryFn>(
        ::dlsym(raw, kEntrySymbol));
    if (entry == nullptr) {
        return nullptr;
    }
    *entry_out = entry;
    return handle;
}

std::mutex &
cacheMutex()
{
    static std::mutex mu;
    return mu;
}

std::atomic<uint64_t> &
compileCounter()
{
    static std::atomic<uint64_t> count{0};
    return count;
}

std::atomic<uint64_t> &
tempCounter()
{
    static std::atomic<uint64_t> count{0};
    return count;
}

} // namespace

std::string
nativeCacheDir()
{
    const char *dir = std::getenv("SPARSETIR_NATIVE_CACHE_DIR");
    if (dir != nullptr && dir[0] != '\0') {
        return dir;
    }
    return "/tmp/sparsetir-native-" + std::to_string(::getuid());
}

uint64_t
nativeCompileCount()
{
    return compileCounter().load(std::memory_order_relaxed);
}

bool
nativeEnabledByEnv()
{
    const char *value = std::getenv("SPARSETIR_NATIVE");
    return value != nullptr && value[0] != '\0' &&
           std::string(value) != "0";
}

std::shared_ptr<const NativeKernel>
compileNative(const ir::PrimFunc &func, const std::string &key_tag)
{
    EmitResult emitted = emitC(func, key_tag);
    std::string expected_meta =
        "sparsetir-native;abi=" + std::to_string(kNativeAbiVersion) +
        ";tag=" + key_tag + ";kernel=" + emitted.name;
    std::string dir = nativeCacheDir();
    std::string so_path =
        dir + "/st_" + hex16(fnv1a(emitted.source)) + ".so";

    auto kernel = std::make_shared<NativeKernel>();
    kernel->name = emitted.name;
    kernel->slotNames = std::move(emitted.slotNames);
    kernel->numParamSlots = emitted.numParamSlots;
    kernel->scalarNames = std::move(emitted.scalarNames);
    kernel->hasWindow = emitted.hasWindow;
    kernel->soPath = so_path;

    // One process-wide lock around probe-or-build: racing promotions
    // of the same kernel produce exactly one compiler invocation, and
    // the loser loads the winner's installed artifact.
    std::lock_guard<std::mutex> lock(cacheMutex());

    kernel->entry = nullptr;
    kernel->handle = tryLoad(so_path, expected_meta, &kernel->entry);
    if (kernel->handle != nullptr) {
        kernel->diskHit = true;
        return kernel;
    }
    // Not loadable: either absent or corrupted/stale. Drop any stale
    // file so the rename below installs a fresh artifact.
    ::unlink(so_path.c_str());
    makeDirs(dir);

    uint64_t tag = tempCounter().fetch_add(1);
    std::string stem = dir + "/st_build_" +
                       std::to_string(static_cast<long>(::getpid())) +
                       "_" + std::to_string(tag);
    std::string c_path = stem + ".c";
    std::string tmp_so = stem + ".so";
    std::string err_path = stem + ".err";
    {
        std::ofstream out(c_path, std::ios::binary);
        out << emitted.source;
        USER_CHECK(out.good()) << "cannot write native kernel source '"
                               << c_path << "'";
    }

    std::string command = compilerCommand() +
                          " -O2 -fPIC -shared -o '" + tmp_so + "' '" +
                          c_path + "' 2>'" + err_path + "'";
    int rc;
    {
        SPARSETIR_TRACE_SCOPE("native", "native.compile");
        rc = std::system(command.c_str());
    }
    std::string cc_err = readFile(err_path);
    ::unlink(c_path.c_str());
    ::unlink(err_path.c_str());
    if (rc != 0) {
        ::unlink(tmp_so.c_str());
        USER_CHECK(false)
            << "native compilation of '" << kernel->name
            << "' failed (command: " << compilerCommand()
            << " -O2 -fPIC -shared): " << cc_err;
    }
    compileCounter().fetch_add(1, std::memory_order_relaxed);
    // Atomic install: concurrent processes either see the old file or
    // the complete new one, never a partial write.
    USER_CHECK(std::rename(tmp_so.c_str(), so_path.c_str()) == 0)
        << "cannot install native artifact '" << so_path
        << "': " << std::strerror(errno);

    kernel->handle = tryLoad(so_path, expected_meta, &kernel->entry);
    ICHECK(kernel->handle != nullptr)
        << "freshly built native artifact '" << so_path
        << "' failed to load";
    kernel->diskHit = false;
    return kernel;
}

void
execute(const NativeKernel &kernel, const Bindings &bindings,
        const RunOptions &options)
{
    if (options.blockEnd >= 0) {
        USER_CHECK(kernel.hasWindow)
            << "block-windowed execution of '" << kernel.name
            << "': no blockIdx.x-bound loop";
    }

    std::vector<StSlot> slots(kernel.slotNames.size());
    for (int i = 0; i < kernel.numParamSlots; ++i) {
        // Lazy binding, like the VM: a missing parameter array only
        // faults when the kernel actually touches it.
        auto it = bindings.arrays.find(kernel.slotNames[i]);
        if (it == bindings.arrays.end()) {
            continue;
        }
        NDArray *arr = it->second;
        StSlot &s = slots[i];
        s.base = static_cast<unsigned char *>(arr->rawData());
        s.numel = arr->numel();
        s.kind = static_cast<int32_t>(
            bytecode::elemKindOfDtype(arr->dtype()));
        s.ebytes = arr->elemBytes();
        s.bound = 1;
    }
    for (const auto &bv : options.offsetViews) {
        if (bv.view == nullptr) {
            continue;
        }
        for (int i = 0; i < kernel.numParamSlots; ++i) {
            if (kernel.slotNames[i] != bv.name) {
                continue;
            }
            static_assert(sizeof(std::pair<int64_t, int64_t>) ==
                              2 * sizeof(int64_t),
                          "span pairs must be two packed int64s");
            StSlot &s = slots[i];
            s.hasView = 1;
            s.spans = reinterpret_cast<const int64_t *>(
                bv.view->spans.data());
            s.bases = bv.view->bases.data();
            s.numSpans = static_cast<int64_t>(bv.view->spans.size());
        }
    }

    std::vector<int64_t> scalars;
    scalars.reserve(kernel.scalarNames.size());
    for (const auto &name : kernel.scalarNames) {
        auto it = bindings.scalars.find(name);
        ICHECK(it != bindings.scalars.end())
            << "unbound variable '" << name << "'";
        scalars.push_back(it->second);
    }

    StCtx ctx;
    ctx.slots = slots.data();
    ctx.scalars = scalars.data();
    ctx.blockBegin = options.blockBegin;
    ctx.blockEnd = options.blockEnd;

    int32_t rc = kernel.entry(&ctx);

    // Scratch slots are calloc'd inside the kernel; release them on
    // success and fault paths alike (metadata survives for messages).
    for (size_t i = static_cast<size_t>(kernel.numParamSlots);
         i < slots.size(); ++i) {
        std::free(slots[i].base);
        slots[i].base = nullptr;
    }

    if (rc == ST_OK) {
        return;
    }
    int32_t fs = ctx.faultSlot;
    bool has_slot =
        fs >= 0 && fs < static_cast<int32_t>(slots.size());
    const std::string slot_name =
        has_slot ? kernel.slotNames[fs] : std::string("?");
    switch (rc) {
      case ST_FAULT_ACCESS:
        if (has_slot && slots[fs].bound == 0) {
            ICHECK(false)
                << "no storage bound for buffer '" << slot_name << "'";
        }
        ICHECK_GE(ctx.faultOffset, 0)
            << "negative offset into " << slot_name;
        ICHECK(false) << "offset " << ctx.faultOffset
                      << " out of bounds for buffer '" << slot_name
                      << "' (numel "
                      << (has_slot ? slots[fs].numel : 0) << ")";
        break;
      case ST_FAULT_WINDOW:
        ICHECK(false)
            << "offset " << ctx.faultOffset << " of buffer '"
            << slot_name
            << "' lies outside its rebased window (write-set spans "
               "must cover every touched element)";
        break;
      case ST_FAULT_DIV0:
        ICHECK(false) << "floordiv/floormod by zero in '"
                      << kernel.name << "'";
        break;
      case ST_FAULT_CLASS:
        if (has_slot &&
            (slots[fs].kind ==
                 static_cast<int32_t>(bytecode::ElemKind::kF32) ||
             slots[fs].kind ==
                 static_cast<int32_t>(bytecode::ElemKind::kF64))) {
            ICHECK(false)
                << "integer access to float buffer '" << slot_name
                << "'";
        }
        ICHECK(false) << "float access to integer buffer '"
                      << slot_name << "'";
        break;
      case ST_FAULT_SEARCH:
        if (has_slot && slots[fs].hasView != 0) {
            ICHECK(false) << "binary search over rebased buffer '"
                          << slot_name << "'";
        }
        ICHECK(false) << "binary search range out of bounds for "
                         "buffer '"
                      << slot_name << "' (at " << ctx.faultOffset
                      << ")";
        break;
      case ST_FAULT_NEGALLOC:
        ICHECK(false) << "negative scratch allocation for buffer '"
                      << slot_name << "' (" << ctx.faultOffset << ")";
        break;
      case ST_FAULT_OOM:
        ICHECK(false) << "scratch allocation of " << ctx.faultOffset
                      << " elements for buffer '" << slot_name
                      << "' failed";
        break;
      default:
        ICHECK(false) << "native kernel '" << kernel.name
                      << "' returned unknown fault code " << rc;
    }
}

} // namespace native
} // namespace runtime
} // namespace sparsetir
