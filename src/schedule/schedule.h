/**
 * @file
 * Stage II/III schedule primitives (paper §3.3.2).
 *
 * A Schedule wraps a PrimFunc and applies composable, semantics-
 * preserving loop transformations: split, fuse, reorder, bind,
 * vectorize, unroll, parallel, cache_read, cache_write, rfactor,
 * tensorize and annotate. Loops are identified by loop-variable name
 * (unique within a function; split/fuse derive fresh names), blocks by
 * block name.
 *
 * Every primitive validates its preconditions (e.g. loops cannot be
 * reordered across TensorIR block boundaries, reduction loops cannot
 * be thread-bound without atomics) and rebuilds the function
 * functionally.
 */

#ifndef SPARSETIR_SCHEDULE_SCHEDULE_H_
#define SPARSETIR_SCHEDULE_SCHEDULE_H_

#include <string>
#include <vector>

#include "ir/prim_func.h"

namespace sparsetir {
namespace schedule {

class Schedule
{
  public:
    explicit Schedule(ir::PrimFunc func);

    /** Current (rebuilt) function. */
    const ir::PrimFunc &func() const { return func_; }

    /** Names of the loops enclosing `block_name`, outermost first. */
    std::vector<std::string> getLoops(const std::string &block_name) const;

    /**
     * Split loop `name` by `factor` into `{name}_o` (outer) and
     * `{name}_i` (inner, extent = factor). Emits a tail guard when the
     * extent is not provably divisible. Returns {outer, inner} names.
     */
    std::pair<std::string, std::string> split(const std::string &name,
                                              int64_t factor);

    /**
     * Fuse directly nested loops `outer` and `inner` into one loop
     * named `{outer}_{inner}_f`. Returns the fused name.
     */
    std::string fuse(const std::string &outer, const std::string &inner);

    /**
     * Reorder the listed loops (members of one straight-line nest with
     * no block boundaries between them) into the given order.
     */
    void reorder(const std::vector<std::string> &names);

    /** Bind loop to a GPU thread axis ("blockIdx.x", "threadIdx.x"). */
    void bind(const std::string &name, const std::string &thread_tag);

    /** Mark loop vectorized (constant extent required). */
    void vectorize(const std::string &name);

    /** Mark loop unrolled. */
    void unroll(const std::string &name);

    /** Mark loop CPU-parallel. */
    void parallel(const std::string &name);

    /**
     * Cache the write target of reduction block `block_name` in a
     * register-scope accumulator: the block updates the accumulator
     * and the result is written back once after the outermost
     * reduction loop. Requires reduction loops innermost.
     *
     * With `accumulate` the write-back adds into the target instead
     * of overwriting it — required when several kernels (e.g. hyb
     * buckets of a decomposed format) contribute partial sums to the
     * same output, which must be zero-initialized by the caller.
     */
    void cacheWrite(const std::string &block_name,
                    const std::string &buffer_name,
                    bool accumulate = false);

    /**
     * Stage the region of `buffer_name` read inside loop `loop_name`
     * into a scratch buffer of the given scope; accesses are remapped
     * and a copy nest is inserted at the top of the loop body.
     */
    void cacheRead(const std::string &loop_name,
                   const std::string &buffer_name, ir::MemScope scope);

    /**
     * Factor the reduction of block `block_name` along the reduction
     * loop `loop_name`: partial results are accumulated per loop
     * iteration into an intermediate buffer, followed by a final
     * cross-iteration reduction block named `{block_name}_rf`.
     */
    void rfactor(const std::string &block_name,
                 const std::string &loop_name);

    /**
     * Mark block `block_name` for Tensor-Core execution with the given
     * MMA intrinsic ("m16n16k16", "m8n32k16"). Functional semantics
     * are unchanged; code generation and the GPU simulator honour the
     * annotation.
     */
    void tensorize(const std::string &block_name,
                   const std::string &intrinsic);

    /** Attach an annotation to a block. */
    void annotateBlock(const std::string &block_name,
                       const std::string &key, ir::Expr value);

    /** Attach an annotation to a loop. */
    void annotateLoop(const std::string &loop_name, const std::string &key,
                      ir::Expr value);

  private:
    ir::PrimFunc func_;
};

} // namespace schedule
} // namespace sparsetir

#endif // SPARSETIR_SCHEDULE_SCHEDULE_H_
