/**
 * @file
 * SR-BCRS(t, g): the Magicube-style stripe format the paper uses for
 * unstructured-pruned weights (§4.3.2, Figure 18).
 *
 * The matrix is divided into t x 1 tiles (t rows tall, one column
 * wide); all-zero tiles are omitted. Non-zero tiles of one tile-stripe
 * (t consecutive rows) are grouped by a factor g, padding the tail
 * group with zero tiles. The non-zero ratio lower bound is 1/t versus
 * 1/b^2 for BSR(b), which is what lets it beat BSR on fragmented
 * pruned weights.
 */

#ifndef SPARSETIR_FORMAT_SRBCRS_H_
#define SPARSETIR_FORMAT_SRBCRS_H_

#include <cstdint>
#include <vector>

#include "format/csr.h"

namespace sparsetir {
namespace format {

/** SR-BCRS matrix. */
struct SrBcrs
{
    int64_t rows = 0;
    int64_t cols = 0;
    int32_t tileHeight = 1;  // t
    int32_t groupSize = 1;   // g
    int64_t stripes = 0;     // ceil(rows / t)
    /** Groups per stripe prefix sum (stripes + 1). */
    std::vector<int32_t> groupIndptr;
    /** Column of each stored tile (numGroups * g, padded). */
    std::vector<int32_t> tileCols;
    /** Values: one t-vector per stored tile. */
    std::vector<float> values;

    int64_t
    numGroups() const
    {
        return groupIndptr.empty() ? 0 : groupIndptr.back();
    }

    int64_t
    storedTiles() const
    {
        return static_cast<int64_t>(tileCols.size());
    }

    /** Density of the stored representation (non-zeros / stored). */
    double storedDensity() const;
};

/** Convert CSR to SR-BCRS(t, g). */
SrBcrs srbcrsFromCsr(const Csr &m, int32_t t, int32_t g);

/** Expand to row-major dense. */
std::vector<float> srbcrsToDense(const SrBcrs &m);

} // namespace format
} // namespace sparsetir

#endif // SPARSETIR_FORMAT_SRBCRS_H_
