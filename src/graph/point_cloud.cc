#include "graph/point_cloud.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_map>

#include "support/logging.h"
#include "support/rng.h"

namespace sparsetir {
namespace graph {

namespace {

int64_t
voxelKey(int32_t x, int32_t y, int32_t z)
{
    // Shift in the unsigned domain: left-shifting a negative value
    // (coordinates may be negative) is undefined behavior.
    return static_cast<int64_t>(
        (static_cast<uint64_t>(static_cast<int64_t>(x)) << 42) ^
        (static_cast<uint64_t>(static_cast<int64_t>(y)) << 21) ^
        static_cast<uint64_t>(static_cast<int64_t>(z)));
}

} // namespace

VoxelScene
syntheticLidarScene(int64_t target_voxels, uint64_t seed)
{
    Rng rng(seed);
    VoxelScene scene;
    std::unordered_map<int64_t, bool> occupied;
    int32_t extent = static_cast<int32_t>(
        std::max<int64_t>(32, std::llround(
                                  std::sqrt(static_cast<double>(
                                      target_voxels) /
                                            4.0))));

    auto add = [&](int32_t x, int32_t y, int32_t z) {
        if (x < 0 || y < 0 || z < 0) {
            return;
        }
        int64_t key = voxelKey(x, y, z);
        if (occupied.emplace(key, true).second) {
            scene.voxels.push_back({x, y, z});
        }
    };

    // Ground plane with gentle height noise (~60% of voxels).
    int64_t ground_target = target_voxels * 6 / 10;
    for (int64_t i = 0; i < ground_target; ++i) {
        int32_t x = static_cast<int32_t>(rng.uniformInt(extent));
        int32_t y = static_cast<int32_t>(rng.uniformInt(extent));
        int32_t z = static_cast<int32_t>(rng.uniformInt(2));
        add(x, y, z);
    }
    // A few vertical walls (~25%).
    for (int wall = 0; wall < 4; ++wall) {
        int32_t x0 = static_cast<int32_t>(rng.uniformInt(extent));
        int64_t wall_target = target_voxels / 16;
        for (int64_t i = 0; i < wall_target; ++i) {
            int32_t y = static_cast<int32_t>(rng.uniformInt(extent));
            int32_t z = static_cast<int32_t>(rng.uniformInt(12));
            add(x0, y, z);
        }
    }
    // Scattered objects (~15%).
    int64_t object_target = target_voxels * 15 / 100;
    for (int64_t i = 0; i < object_target; ++i) {
        int32_t x = static_cast<int32_t>(rng.uniformInt(extent));
        int32_t y = static_cast<int32_t>(rng.uniformInt(extent));
        int32_t z = static_cast<int32_t>(2 + rng.uniformInt(6));
        add(x, y, z);
    }
    return scene;
}

format::KernelMap
buildKernelMap(const VoxelScene &scene)
{
    // Voxel coordinate -> index.
    std::unordered_map<int64_t, int32_t> index;
    index.reserve(scene.voxels.size());
    for (size_t i = 0; i < scene.voxels.size(); ++i) {
        const auto &v = scene.voxels[i];
        index[voxelKey(v[0], v[1], v[2])] = static_cast<int32_t>(i);
    }

    format::KernelMap map;
    int64_t n = static_cast<int64_t>(scene.voxels.size());
    map.maps.rows = n;
    map.maps.cols = n;
    for (int dx = -1; dx <= 1; ++dx) {
        for (int dy = -1; dy <= 1; ++dy) {
            for (int dz = -1; dz <= 1; ++dz) {
                format::Csr rel;
                rel.rows = n;
                rel.cols = n;
                rel.indptr.push_back(0);
                for (int64_t i = 0; i < n; ++i) {
                    const auto &v = scene.voxels[i];
                    auto it = index.find(voxelKey(
                        v[0] + dx, v[1] + dy, v[2] + dz));
                    if (it != index.end()) {
                        rel.indices.push_back(it->second);
                        rel.values.push_back(1.0f);
                    }
                    rel.indptr.push_back(static_cast<int32_t>(
                        rel.indices.size()));
                }
                map.maps.relations.push_back(std::move(rel));
            }
        }
    }
    return map;
}

} // namespace graph
} // namespace sparsetir
