/**
 * @file
 * Stage III TIR -> C translation.
 *
 * The emitter walks the same IR subset the bytecode compiler consumes
 * (flat loops, guards, buffer loads/stores over one flat index or a
 * row-major dense linearization, floordiv/mod index math, the
 * blockIdx.x grid-window contract) and produces one self-contained C
 * translation unit per kernel. The emitted code reproduces the
 * interpreter's semantics exactly — int64/double arithmetic, the
 * float-promotion rules of isFloatExpr, short-circuit And/Or,
 * one-armed Select, value-before-indices store order, storage-width
 * rounding on float stores — so a native kernel's results are bitwise
 * identical to the interpreter and the bytecode VM.
 *
 * Functions outside the subset (Stage I sparse iterations, vector IR,
 * extern calls) raise UserError, exactly like bytecode::compile;
 * callers treat that as "stay on the bytecode tier".
 */

#ifndef SPARSETIR_RUNTIME_NATIVE_C_EMITTER_H_
#define SPARSETIR_RUNTIME_NATIVE_C_EMITTER_H_

#include <string>
#include <vector>

#include "ir/prim_func.h"

namespace sparsetir {
namespace runtime {
namespace native {

/** One emitted kernel: the C source plus its binding metadata. */
struct EmitResult
{
    /** Complete C translation unit (preamble + entry function). */
    std::string source;
    /** Kernel (function) name, for diagnostics. */
    std::string name;
    /**
     * Binding names of every buffer slot: parameter slots first
     * (bound by name from Bindings::arrays), then scratch slots the
     * kernel allocates itself.
     */
    std::vector<std::string> slotNames;
    int numParamSlots = 0;
    /**
     * Scalar params the emitted code reads, in signature order; the
     * host packs ctx->scalars in exactly this order. Unused scalars
     * are dropped — lazy-binding parity with the other backends.
     */
    std::vector<std::string> scalarNames;
    /** Kernel has an outermost blockIdx.x-bound loop (windowable). */
    bool hasWindow = false;
};

/**
 * Emit `func` as a C translation unit. `key_tag` identifies the
 * artifact (cache key + kernel index + artifact/ABI versions) and is
 * baked into the exported meta string, so a persisted .so can be
 * validated against the key it was built for. Throws UserError when
 * the function is outside the native-compilable subset (the
 * stage3ExecDiagnostic gate plus the emitter's own kind checks).
 */
EmitResult emitC(const ir::PrimFunc &func, const std::string &key_tag);

} // namespace native
} // namespace runtime
} // namespace sparsetir

#endif // SPARSETIR_RUNTIME_NATIVE_C_EMITTER_H_
