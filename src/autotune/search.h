/**
 * @file
 * Performance tuning over the joint space of composable formats and
 * composable transformations (paper §2): grid search with the GPU
 * simulator as the cost oracle.
 */

#ifndef SPARSETIR_AUTOTUNE_SEARCH_H_
#define SPARSETIR_AUTOTUNE_SEARCH_H_

#include <cstdint>
#include <vector>

#include "core/pipeline.h"
#include "engine/engine.h"
#include "format/csr.h"
#include "gpusim/simulator.h"

namespace sparsetir {
namespace autotune {

/** One evaluated hyb configuration. */
struct HybCandidate
{
    int c = 1;
    int k = 0;
    double timeMs = 0.0;
};

/** Search result. */
struct HybTuneResult
{
    HybCandidate best;
    std::vector<HybCandidate> tried;
};

/**
 * Search column-partition counts (paper: c in {1,2,4,8,16}, k fixed to
 * ceil(log2(nnz/rows))) for the hyb SpMM of one matrix. Candidate
 * kernels are resolved through `session`'s compile cache, so
 * re-tuning the same (structure, feat) pair — repeated searches, or
 * one search evaluated on several device models — skips
 * recompilation. (The cache key includes the feature size; tuning at
 * a new feat compiles fresh candidates.)
 */
HybTuneResult tuneSpmmHyb(const format::Csr &a, int64_t feat,
                          gpusim::Device &device,
                          engine::Engine &session,
                          const std::vector<int> &partitions = {1, 2, 4,
                                                                8, 16});

/** Convenience overload: tune inside a transient engine session. */
HybTuneResult tuneSpmmHyb(const format::Csr &a, int64_t feat,
                          gpusim::Device &device,
                          const std::vector<int> &partitions = {1, 2, 4,
                                                                8, 16});

/**
 * Host-measured search: evaluate each hyb(c) candidate by actually
 * executing warm dispatches through `session` (bytecode VM backend
 * by default) and timing the wall clock, instead of consulting the
 * analytical simulator. One priming dispatch per candidate fills the
 * compile cache so the measurement isolates the serving path the
 * engine would really run; timeMs is the mean of `rounds` warm
 * dispatches. Use when the serving hardware itself is the target
 * (host latency tuning), and the simulator overload when predicting
 * GPU behavior.
 *
 * `in_flight` > 1 measures the batched serving shape instead: each
 * round dispatches that many concurrent requests (private feature/
 * output pairs) through one prepared artifact, and timeMs is the
 * mean wall time per REQUEST — so the tuner optimizes throughput
 * under load, which can prefer a different partition count than
 * single-request latency does.
 */
HybTuneResult tuneSpmmHybMeasured(const format::Csr &a, int64_t feat,
                                  engine::Engine &session,
                                  const std::vector<int> &partitions =
                                      {1, 2, 4, 8, 16},
                                  int rounds = 3, int in_flight = 1);

/** One evaluated SDDMM schedule. */
struct SddmmCandidate
{
    core::SddmmSchedule schedule;
    double timeMs = 0.0;
};

/** Search SDDMM schedule parameters (workloads per block, group). */
SddmmCandidate tuneSddmm(const format::Csr &a, int64_t feat,
                         gpusim::Device &device);

} // namespace autotune
} // namespace sparsetir

#endif // SPARSETIR_AUTOTUNE_SEARCH_H_
