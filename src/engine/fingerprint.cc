#include "engine/fingerprint.h"

namespace sparsetir {
namespace engine {

Fingerprint &
Fingerprint::bytes(const void *data, size_t size)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < size; ++i) {
        hash_ ^= p[i];
        hash_ *= 1099511628211ULL;  // FNV prime
    }
    return *this;
}

uint64_t
structureHash(const format::Csr &m)
{
    Fingerprint fp;
    fp.i64(m.rows).i64(m.cols).i32s(m.indptr).i32s(m.indices);
    return fp.digest();
}

uint64_t
structureHash(const format::RelationalCsr &m)
{
    Fingerprint fp;
    fp.i64(m.rows).i64(m.cols).i64(m.numRelations());
    for (const format::Csr &rel : m.relations) {
        fp.i64(static_cast<int64_t>(structureHash(rel)));
    }
    return fp.digest();
}

uint64_t
structureHash(const format::Bsr &m)
{
    Fingerprint fp;
    fp.i64(m.rows)
        .i64(m.cols)
        .i64(m.blockSize)
        .i64(m.blockRows)
        .i64(m.blockCols)
        .i32s(m.indptr)
        .i32s(m.indices);
    return fp.digest();
}

uint64_t
structureHash(const format::SrBcrs &m)
{
    Fingerprint fp;
    fp.i64(m.rows)
        .i64(m.cols)
        .i64(m.tileHeight)
        .i64(m.groupSize)
        .i64(m.stripes)
        .i32s(m.groupIndptr)
        .i32s(m.tileCols);
    return fp.digest();
}

const char *
opKindName(OpKind op)
{
    switch (op) {
      case OpKind::kSpmmCsr:
        return "spmm_csr";
      case OpKind::kSpmmHyb:
        return "spmm_hyb";
      case OpKind::kSddmm:
        return "sddmm";
      case OpKind::kRgcnHyb:
        return "rgcn_hyb";
      case OpKind::kSpmmBsr:
        return "spmm_bsr";
      case OpKind::kSpmmSrbcrs:
        return "spmm_srbcrs";
      case OpKind::kGraph:
        return "graph";
    }
    return "unknown";
}

} // namespace engine
} // namespace sparsetir
