/**
 * @file
 * Axes: the format-defining construct of SparseTIR (paper §3.1).
 *
 * Each axis has two orthogonal attributes: dense/sparse (are the
 * coordinates of non-zero elements contiguous?) and fixed/variable (is
 * the number of non-zero elements per parent position fixed?).
 * Variable axes carry an indptr array; sparse axes carry an indices
 * array. Axes form a dependency tree through their parent links, and
 * compositions of axes describe CSR, BSR, ELL, DIA, ragged tensors,
 * CSF and more.
 */

#ifndef SPARSETIR_IR_AXIS_H_
#define SPARSETIR_IR_AXIS_H_

#include <memory>
#include <string>
#include <vector>

#include "ir/expr.h"

namespace sparsetir {
namespace ir {

/** The four axis kinds (dense/sparse x fixed/variable). */
enum class AxisKind : uint8_t {
    kDenseFixed,
    kDenseVariable,
    kSparseFixed,
    kSparseVariable,
};

class AxisNode;
using Axis = std::shared_ptr<const AxisNode>;

/**
 * One axis of a sparse iteration space.
 *
 * Metadata per the paper: index dtype, maximum length, accumulated
 * number of non-zeros (variable axes) and non-zeros per row (fixed
 * sparse axes). indptr/indices fields hold the handle variables that
 * will be bound to the auxiliary arrays at run time.
 */
class AxisNode
{
  public:
    std::string name;
    AxisKind kind;
    /** Axis this one depends on; null for root (dense-fixed) axes. */
    Axis parent;
    /** Maximum length of the axis (n in the paper). */
    Expr length;
    /** Total number of stored elements along this axis (variable). */
    Expr nnz;
    /** Stored elements per row (sparse-fixed / dense-fixed). */
    Expr nnzCols;
    /** Handle var for the index pointer array (variable axes). */
    Var indptr;
    /** Handle var for the indices array (sparse axes). */
    Var indices;
    /** Index data type. */
    DataType idtype = DataType::int32();

    bool
    isDense() const
    {
        return kind == AxisKind::kDenseFixed ||
               kind == AxisKind::kDenseVariable;
    }
    bool isSparse() const { return !isDense(); }
    bool
    isVariable() const
    {
        return kind == AxisKind::kDenseVariable ||
               kind == AxisKind::kSparseVariable;
    }
    bool isFixed() const { return !isVariable(); }

    /**
     * Number of stored positions along this axis per parent position:
     * for fixed axes this is nnzCols (or length for dense-fixed).
     * Variable axes have no static per-row count.
     */
    Expr
    fixedColumns() const
    {
        return kind == AxisKind::kDenseFixed ? length : nnzCols;
    }
};

/** Create a root dense-fixed axis of the given length. */
Axis denseFixed(std::string name, Expr length,
                DataType idtype = DataType::int32());

/**
 * Create a dense-variable axis: contiguous coordinates, per-row counts
 * given by indptr. Used e.g. for ragged tensors and for the
 * materialized view of indices arrays.
 */
Axis denseVariable(std::string name, Axis parent, Expr length, Expr nnz,
                   Var indptr, DataType idtype = DataType::int32());

/**
 * Create a sparse-fixed axis: nnz_cols stored coordinates per row,
 * given by an indices array (the ELL pattern).
 */
Axis sparseFixed(std::string name, Axis parent, Expr length, Expr nnz_cols,
                 Var indices, DataType idtype = DataType::int32());

/**
 * Create a sparse-variable axis: per-row counts from indptr,
 * coordinates from indices (the CSR pattern).
 */
Axis sparseVariable(std::string name, Axis parent, Expr length, Expr nnz,
                    Var indptr, Var indices,
                    DataType idtype = DataType::int32());

/**
 * Ancestor chain of an axis from the root down to (and including) the
 * axis itself (the "anc" function of eq. 5).
 */
std::vector<Axis> ancestors(const Axis &axis);

} // namespace ir
} // namespace sparsetir

#endif // SPARSETIR_IR_AXIS_H_
