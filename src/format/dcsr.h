/**
 * @file
 * Doubly compressed formats: DCSR (Buluc & Gilbert) and the paper's
 * DBSR (doubly compressed BSR, §4.3.2) which additionally skips
 * all-zero block rows of block-pruned transformer weights.
 */

#ifndef SPARSETIR_FORMAT_DCSR_H_
#define SPARSETIR_FORMAT_DCSR_H_

#include <cstdint>
#include <vector>

#include "format/bsr.h"
#include "format/csr.h"

namespace sparsetir {
namespace format {

/** DCSR: CSR restricted to non-empty rows. */
struct Dcsr
{
    int64_t rows = 0;
    int64_t cols = 0;
    std::vector<int32_t> rowIndices;  // non-empty rows
    std::vector<int32_t> indptr;      // rowIndices.size() + 1
    std::vector<int32_t> indices;
    std::vector<float> values;

    int64_t
    numStoredRows() const
    {
        return static_cast<int64_t>(rowIndices.size());
    }
};

/** Drop empty rows of a CSR matrix. */
Dcsr dcsrFromCsr(const Csr &m);

/** Expand back to a full CSR (empty rows restored). */
Csr csrFromDcsr(const Dcsr &m);

/** DBSR: BSR restricted to non-empty block rows. */
struct Dbsr
{
    int64_t rows = 0;
    int64_t cols = 0;
    int32_t blockSize = 1;
    int64_t blockRows = 0;
    int64_t blockCols = 0;
    std::vector<int32_t> blockRowIndices;  // non-empty block rows
    std::vector<int32_t> indptr;           // stored block rows + 1
    std::vector<int32_t> indices;
    std::vector<float> values;

    int64_t
    numStoredBlockRows() const
    {
        return static_cast<int64_t>(blockRowIndices.size());
    }

    int64_t
    nnzBlocks() const
    {
        return static_cast<int64_t>(indices.size());
    }
};

/** Drop all-zero block rows of a BSR matrix. */
Dbsr dbsrFromBsr(const Bsr &m);

/** Expand to row-major dense. */
std::vector<float> dbsrToDense(const Dbsr &m);

} // namespace format
} // namespace sparsetir

#endif // SPARSETIR_FORMAT_DCSR_H_
