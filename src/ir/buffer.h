/**
 * @file
 * Buffers: value storage for dense and sparse tensors.
 *
 * A sparse buffer (paper §3.1) stores only values; its structure lives
 * in the composed axes. A dense buffer has an explicit shape. After the
 * sparse buffer lowering pass (Stage III) only flat dense buffers
 * remain.
 */

#ifndef SPARSETIR_IR_BUFFER_H_
#define SPARSETIR_IR_BUFFER_H_

#include <memory>
#include <string>
#include <vector>

#include "ir/axis.h"
#include "ir/expr.h"

namespace sparsetir {
namespace ir {

/** Memory scope of a buffer on the target device. */
enum class MemScope : uint8_t {
    kGlobal,
    kShared,
    kLocal,
    /** Tensor-core fragment registers. */
    kWmmaFragment,
};

/** Render scope name ("global", "shared", ...). */
std::string memScopeName(MemScope scope);

/**
 * Value storage for a tensor.
 *
 * When axes is non-empty the buffer is sparse and its logical shape is
 * the composition of those axes; otherwise shape gives a dense
 * rectangular extent. data is the handle variable bound to the actual
 * memory at run time; two sparse buffers sharing axes share auxiliary
 * structure but not values.
 */
class BufferNode
{
  public:
    std::string name;
    /** Handle variable bound to the value array. */
    Var data;
    DataType dtype;
    /** Dense shape; for sparse buffers, empty. */
    std::vector<Expr> shape;
    /** Axis composition; empty for dense buffers. */
    std::vector<Axis> axes;
    MemScope scope = MemScope::kGlobal;

    bool isSparse() const { return !axes.empty(); }

    /** Number of logical dimensions. */
    size_t
    ndim() const
    {
        return isSparse() ? axes.size() : shape.size();
    }

    /** Logical extent of dimension i (axis length for sparse dims). */
    Expr
    dimExtent(size_t i) const
    {
        ICHECK_LT(i, ndim());
        return isSparse() ? axes[i]->length : shape[i];
    }
};

/** Create a dense buffer. */
Buffer denseBuffer(std::string name, std::vector<Expr> shape,
                   DataType dtype = DataType::float32(),
                   MemScope scope = MemScope::kGlobal);

/**
 * Create a sparse buffer from an axis composition
 * (match_sparse_buffer in the paper).
 */
Buffer matchSparseBuffer(std::string name, std::vector<Axis> axes,
                         DataType dtype = DataType::float32());

/** Copy a buffer, replacing its memory scope. */
Buffer withScope(const Buffer &buffer, MemScope scope, std::string name);

/** Factory for BufferLoad (declared in expr.h, defined here). */

} // namespace ir
} // namespace sparsetir

#endif // SPARSETIR_IR_BUFFER_H_
