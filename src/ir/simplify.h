/**
 * @file
 * Algebraic simplifier: constant folding plus identity rules.
 *
 * Keeps lowered IR readable and lets the scheduler reason about loop
 * extents (e.g. recognizing that a split of extent 32 by factor 8 has
 * no tail iteration).
 */

#ifndef SPARSETIR_IR_SIMPLIFY_H_
#define SPARSETIR_IR_SIMPLIFY_H_

#include "ir/functor.h"

namespace sparsetir {
namespace ir {

/** Simplify an expression bottom-up. */
Expr simplify(const Expr &e);

/** Simplify every expression inside a statement. */
Stmt simplifyStmt(const Stmt &s);

} // namespace ir
} // namespace sparsetir

#endif // SPARSETIR_IR_SIMPLIFY_H_
