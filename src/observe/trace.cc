/**
 * @file
 * TraceRecorder internals: per-thread ring buffers behind a
 * thread-local cache, Chrome trace-event export, and the self-time
 * summary. See trace.h for the recording cost contract.
 */

#include "observe/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>

namespace sparsetir {
namespace observe {

namespace {

/** Thread name staged by setCurrentThreadName, applied when the
 *  thread's buffer is created. Fixed storage: never allocates. */
thread_local char tls_pending_name[48] = {0};

/** JSON string escape (names are literals, but exports must stay
 *  well-formed no matter what the literals contain). */
std::string
jsonEscape(const char *s)
{
    std::string out;
    for (; s != nullptr && *s != '\0'; ++s) {
        char c = *s;
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

/**
 * One thread's event storage. `ring` grows to `capacity` and then
 * wraps; `total` counts every event ever recorded, so the oldest
 * live slot is total % capacity once wrapped. The mutex is only
 * contended when an exporter snapshots a live thread.
 */
struct TraceRecorder::ThreadBuf
{
    mutable std::mutex mu;
    std::vector<TraceEvent> ring;
    size_t capacity = 0;
    uint64_t total = 0;
    int tid = 0;
    char name[48] = {0};
    std::thread::id owner;
};

namespace {

/** Per-thread cache of the last (recorder, generation) buffer, so
 *  the steady-state record path takes no recorder-wide lock. Holds
 *  a shared_ptr: a concurrent clear() can drop the recorder's
 *  reference without yanking storage out from under a record(). */
struct TlsBufCache
{
    const TraceRecorder *owner = nullptr;
    uint64_t generation = 0;
    std::shared_ptr<TraceRecorder::ThreadBuf> buf;
};

thread_local TlsBufCache tls_cache;

/** clear() bumps this; cached buffers from older generations are
 *  abandoned (kept alive by the cache until re-registration). */
std::atomic<uint64_t> g_generation{1};

} // namespace

TraceRecorder::TraceRecorder() = default;
TraceRecorder::~TraceRecorder() = default;

TraceRecorder &
TraceRecorder::global()
{
    static TraceRecorder *recorder = new TraceRecorder();
    return *recorder;
}

int64_t
TraceRecorder::nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
TraceRecorder::setCurrentThreadName(const char *name)
{
    std::snprintf(tls_pending_name, sizeof tls_pending_name, "%s",
                  name == nullptr ? "" : name);
}

void
TraceRecorder::setRingCapacity(size_t events)
{
    std::lock_guard<std::mutex> lock(mu_);
    ringCapacity_ = events == 0 ? 1 : events;
}

TraceRecorder::ThreadBuf *
TraceRecorder::threadBuf()
{
    uint64_t generation = g_generation.load(std::memory_order_acquire);
    if (tls_cache.owner == this && tls_cache.generation == generation) {
        return tls_cache.buf.get();
    }
    std::lock_guard<std::mutex> lock(mu_);
    std::thread::id self = std::this_thread::get_id();
    std::shared_ptr<ThreadBuf> found;
    for (const auto &buf : bufs_) {
        if (buf->owner == self) {
            found = buf;
            break;
        }
    }
    if (!found) {
        found = std::make_shared<ThreadBuf>();
        found->capacity = ringCapacity_;
        found->ring.reserve(ringCapacity_);
        found->tid = nextTid_++;
        found->owner = self;
        if (tls_pending_name[0] != '\0') {
            std::snprintf(found->name, sizeof found->name, "%s",
                          tls_pending_name);
        } else {
            std::snprintf(found->name, sizeof found->name,
                          "thread-%d", found->tid);
        }
        bufs_.push_back(found);
    }
    tls_cache.owner = this;
    tls_cache.generation = generation;
    tls_cache.buf = found;
    return found.get();
}

void
TraceRecorder::record(const TraceEvent &event)
{
    ThreadBuf *buf = threadBuf();
    std::lock_guard<std::mutex> lock(buf->mu);
    if (buf->ring.size() < buf->capacity) {
        buf->ring.push_back(event);
    } else {
        buf->ring[buf->total % buf->capacity] = event;
    }
    ++buf->total;
}

void
TraceRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    bufs_.clear();
    nextTid_ = 1;
    ++generation_;
    g_generation.fetch_add(1, std::memory_order_release);
}

uint64_t
TraceRecorder::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t count = 0;
    for (const auto &buf : bufs_) {
        std::lock_guard<std::mutex> buf_lock(buf->mu);
        count += buf->ring.size();
    }
    return count;
}

uint64_t
TraceRecorder::droppedCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t dropped = 0;
    for (const auto &buf : bufs_) {
        std::lock_guard<std::mutex> buf_lock(buf->mu);
        if (buf->total > buf->ring.size()) {
            dropped += buf->total - buf->ring.size();
        }
    }
    return dropped;
}

size_t
TraceRecorder::threadCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return bufs_.size();
}

std::vector<CollectedEvent>
TraceRecorder::collect() const
{
    std::vector<std::shared_ptr<ThreadBuf>> bufs;
    {
        std::lock_guard<std::mutex> lock(mu_);
        bufs = bufs_;
    }
    std::vector<CollectedEvent> out;
    for (const auto &buf : bufs) {
        std::lock_guard<std::mutex> buf_lock(buf->mu);
        size_t n = buf->ring.size();
        size_t oldest =
            buf->total > n ? buf->total % buf->capacity : 0;
        for (size_t i = 0; i < n; ++i) {
            CollectedEvent collected;
            collected.event = buf->ring[(oldest + i) % n];
            collected.tid = buf->tid;
            collected.threadName = buf->name;
            out.push_back(std::move(collected));
        }
    }
    return out;
}

bool
TraceRecorder::writeChromeTrace(const std::string &path) const
{
    std::vector<CollectedEvent> events = collect();
    int64_t base = 0;
    bool first = true;
    for (const auto &e : events) {
        if (first || e.event.startNs < base) {
            base = e.event.startNs;
            first = false;
        }
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        return false;
    }
    std::fputs("{\"traceEvents\":[", f);
    bool need_comma = false;
    // One thread_name metadata event per distinct tid.
    std::map<int, std::string> names;
    for (const auto &e : events) {
        names.emplace(e.tid, e.threadName);
    }
    for (const auto &entry : names) {
        std::fprintf(
            f,
            "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
            "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
            need_comma ? ",\n" : "\n", entry.first,
            jsonEscape(entry.second.c_str()).c_str());
        need_comma = true;
    }
    for (const auto &e : events) {
        std::fprintf(
            f,
            "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
            "\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f",
            need_comma ? ",\n" : "\n",
            jsonEscape(e.event.name).c_str(),
            jsonEscape(e.event.cat).c_str(), e.tid,
            static_cast<double>(e.event.startNs - base) / 1000.0,
            static_cast<double>(e.event.durNs) / 1000.0);
        need_comma = true;
        if (e.event.arg0Name != nullptr) {
            std::fprintf(f, ",\"args\":{\"%s\":%lld",
                         jsonEscape(e.event.arg0Name).c_str(),
                         static_cast<long long>(e.event.arg0));
            if (e.event.arg1Name != nullptr) {
                std::fprintf(f, ",\"%s\":%lld",
                             jsonEscape(e.event.arg1Name).c_str(),
                             static_cast<long long>(e.event.arg1));
            }
            std::fputs("}", f);
        }
        std::fputs("}", f);
    }
    std::fputs("\n]}\n", f);
    bool ok = std::fclose(f) == 0;
    return ok;
}

std::string
TraceRecorder::textSummary(size_t top_n) const
{
    std::vector<CollectedEvent> events = collect();
    // Per-thread index lists sorted by start (ties: longer first, so
    // an enclosing span precedes its children).
    std::map<int, std::vector<size_t>> by_tid;
    for (size_t i = 0; i < events.size(); ++i) {
        by_tid[events[i].tid].push_back(i);
    }
    std::vector<int64_t> self(events.size(), 0);
    for (auto &entry : by_tid) {
        auto &order = entry.second;
        std::sort(order.begin(), order.end(),
                  [&](size_t a, size_t b) {
                      if (events[a].event.startNs !=
                          events[b].event.startNs) {
                          return events[a].event.startNs <
                                 events[b].event.startNs;
                      }
                      return events[a].event.durNs >
                             events[b].event.durNs;
                  });
        // Stack sweep: each span's duration is charged against its
        // nearest open ancestor's self-time.
        std::vector<std::pair<int64_t, size_t>> stack; // (end, idx)
        for (size_t idx : order) {
            const TraceEvent &e = events[idx].event;
            self[idx] = e.durNs;
            while (!stack.empty() &&
                   stack.back().first <= e.startNs) {
                stack.pop_back();
            }
            if (!stack.empty()) {
                self[stack.back().second] -= e.durNs;
            }
            stack.emplace_back(e.startNs + e.durNs, idx);
        }
    }
    struct Agg
    {
        uint64_t count = 0;
        int64_t totalNs = 0;
        int64_t selfNs = 0;
    };
    std::map<std::string, Agg> by_name;
    for (size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &e = events[i].event;
        std::string key = std::string(e.cat ? e.cat : "") + "/" +
                          (e.name ? e.name : "");
        Agg &agg = by_name[key];
        ++agg.count;
        agg.totalNs += e.durNs;
        agg.selfNs += self[i];
    }
    std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                  by_name.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.second.selfNs > b.second.selfNs;
              });
    if (rows.size() > top_n) {
        rows.resize(top_n);
    }
    std::string out;
    char line[160];
    std::snprintf(line, sizeof line, "%-40s %8s %12s %12s\n", "span",
                  "count", "total ms", "self ms");
    out += line;
    for (const auto &row : rows) {
        std::snprintf(
            line, sizeof line, "%-40s %8llu %12.3f %12.3f\n",
            row.first.c_str(),
            static_cast<unsigned long long>(row.second.count),
            static_cast<double>(row.second.totalNs) / 1e6,
            static_cast<double>(row.second.selfNs) / 1e6);
        out += line;
    }
    return out;
}

void
TraceScope::finish()
{
    event_.durNs = TraceRecorder::nowNs() - event_.startNs;
    TraceRecorder::global().record(event_);
}

bool
traceRequestedByEnv()
{
    const char *v = std::getenv("SPARSETIR_TRACE");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
}

} // namespace observe
} // namespace sparsetir
