#include "support/logging.h"

#include <iostream>

namespace sparsetir {
namespace detail {

LogMessage::LogMessage(const char *file, int line)
{
    stream_ << "[" << file << ":" << line << "] ";
}

LogMessage::~LogMessage()
{
    std::cerr << stream_.str() << std::endl;
}

} // namespace detail
} // namespace sparsetir
