/**
 * @file
 * cuSPARSE stand-ins: CSR SpMM (csrmm) and SDDMM (constrained GEMM).
 */

#ifndef SPARSETIR_BASELINES_CUSPARSE_H_
#define SPARSETIR_BASELINES_CUSPARSE_H_

#include <memory>

#include "baselines/models.h"

namespace sparsetir {
namespace baselines {

/** cuSPARSE CSR SpMM: warp-per-row row split, register accumulation. */
std::unique_ptr<gpusim::Kernel> cusparseSpmm(const format::Csr &a,
                                             int64_t feat);

/**
 * cuSPARSE SDDMM: dense-oriented sampled GEMM; scalar loads and no
 * two-stage reduction make it slow on highly sparse graph patterns
 * (paper Figure 14).
 */
std::unique_ptr<gpusim::Kernel> cusparseSddmm(const format::Csr &a,
                                              int64_t feat);

} // namespace baselines
} // namespace sparsetir

#endif // SPARSETIR_BASELINES_CUSPARSE_H_
