/**
 * @file
 * Stage I schedule primitives (paper §3.2.2): sparse_reorder and
 * sparse_fuse. Both are composable transformations on sparse
 * iterations that change the loop structure the lowering pass emits.
 */

#ifndef SPARSETIR_TRANSFORM_STAGE1_SCHEDULE_H_
#define SPARSETIR_TRANSFORM_STAGE1_SCHEDULE_H_

#include <string>
#include <vector>

#include "ir/prim_func.h"

namespace sparsetir {
namespace transform {

/**
 * Reorder the axes of the sparse iteration `iter_name` to the order
 * given by axis names. Validates that every axis still appears after
 * all of its ancestors (dependency order) and that no fusion has been
 * applied yet. Returns a new function.
 */
ir::PrimFunc sparseReorder(const ir::PrimFunc &func,
                           const std::string &iter_name,
                           const std::vector<std::string> &axis_order);

/**
 * Fuse the named consecutive axes of sparse iteration `iter_name`
 * into a single emitted loop over their joint non-zero space (paper
 * Figure 6, SDDMM). The fused axes must form a parent chain.
 */
ir::PrimFunc sparseFuse(const ir::PrimFunc &func,
                        const std::string &iter_name,
                        const std::vector<std::string> &axis_names);

} // namespace transform
} // namespace sparsetir

#endif // SPARSETIR_TRANSFORM_STAGE1_SCHEDULE_H_
