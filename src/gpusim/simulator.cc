#include "gpusim/simulator.h"

#include <algorithm>
#include <queue>

#include "support/logging.h"

namespace sparsetir {
namespace gpusim {

Device::Device(GpuSpec spec)
    : spec_(std::move(spec)),
      l2_(spec_.l2SizeBytes, spec_.l2LineBytes, spec_.l2Assoc)
{
    l1_.reserve(spec_.numSms);
    for (int s = 0; s < spec_.numSms; ++s) {
        l1_.emplace_back(spec_.l1SizeBytes, spec_.l1LineBytes,
                         spec_.l1Assoc);
    }
}

KernelStats
Device::launch(const Kernel &kernel, const SimOptions &options)
{
    return run({&kernel}, options, 1);
}

KernelStats
Device::launchFused(const std::vector<const Kernel *> &kernels,
                    const SimOptions &options)
{
    return run(kernels, options, 1);
}

void
Device::noteMemoryFootprint(int64_t bytes)
{
    peakFootprint_ = std::max(peakFootprint_, bytes);
}

KernelStats
Device::run(const std::vector<const Kernel *> &kernels,
            const SimOptions &options, int launches)
{
    if (options.flushL2BetweenKernels) {
        l2_.flush();
        for (auto &cache : l1_) {
            cache.flush();
        }
    }
    l2_.resetStats();
    for (auto &cache : l1_) {
        cache.resetStats();
    }

    KernelStats stats;
    stats.numBlocks = 0;

    // Greedy earliest-finish assignment of blocks to SMs. Blocks are
    // processed in launch order so the shared L2 sees an interleaving
    // close to a real wave schedule.
    std::priority_queue<std::pair<double, int>,
                        std::vector<std::pair<double, int>>,
                        std::greater<>>
        sm_clock;
    for (int s = 0; s < spec_.numSms; ++s) {
        sm_clock.push({0.0, s});
    }

    int64_t dram_lines = 0;
    double total_cycles_all_sms = 0.0;
    double max_sm_cycles = 0.0;

    BlockWork work;
    for (const Kernel *kernel : kernels) {
        int64_t blocks = kernel->numBlocks();
        stats.numBlocks += blocks;
        for (int64_t b = 0; b < blocks; ++b) {
            auto [clock, sm] = sm_clock.top();
            sm_clock.pop();

            work.flops = 0.0;
            work.tensorFlops = 0.0;
            work.intOps = 0.0;
            work.sharedBytes = 0.0;
            work.accesses.clear();
            kernel->blockWork(b, &work);

            // Stream transactions through this SM's L1, then L2.
            int64_t l1_hit_lines = 0;
            int64_t l2_hit_lines = 0;
            int64_t mem_lines = 0;
            CacheModel &l1 = l1_[sm];
            for (const MemAccess &access : work.accesses) {
                uint64_t first_line = access.addr / spec_.l1LineBytes;
                uint64_t last_line =
                    (access.addr + std::max<uint32_t>(access.bytes, 1) -
                     1) /
                    spec_.l1LineBytes;
                int64_t span_lines =
                    static_cast<int64_t>(last_line - first_line + 1);
                int64_t lines = access.scatteredLines > 0
                                    ? access.scatteredLines
                                    : span_lines;
                // Scattered accesses probe distinct lines spread over
                // the span; approximate by sampling evenly.
                for (int64_t i = 0; i < lines; ++i) {
                    uint64_t line =
                        lines <= span_lines
                            ? first_line +
                                  (span_lines * i) / std::max<int64_t>(
                                                          lines, 1)
                            : first_line + i;
                    ++mem_lines;
                    if (access.write) {
                        // Write-through with write-allocate at L2:
                        // writes consume DRAM bandwidth.
                        l1.accessLine(line);
                        l2_.accessLine(line);
                        ++dram_lines;
                        continue;
                    }
                    if (l1.accessLine(line)) {
                        ++l1_hit_lines;
                    } else if (l2_.accessLine(line)) {
                        ++l2_hit_lines;
                    } else {
                        ++dram_lines;
                    }
                }
            }

            // Cycle accounting: compute and memory overlap.
            double compute_cycles =
                work.flops / spec_.fp32FlopsPerSmPerCycle +
                work.tensorFlops / spec_.tensorFlopsPerSmPerCycle +
                work.intOps / spec_.intOpsPerSmPerCycle +
                work.sharedBytes / spec_.sharedBytesPerSmPerCycle;
            double dram_cycles_per_line =
                spec_.l1LineBytes /
                (spec_.dramBytesPerCycle() / spec_.numSms);
            double mem_cycles =
                l1_hit_lines * 1.0 + l2_hit_lines * 4.0 +
                static_cast<double>(mem_lines - l1_hit_lines -
                                    l2_hit_lines) *
                    dram_cycles_per_line;
            double block_cycles =
                std::max(compute_cycles, mem_cycles) /
                    std::max(options.efficiency, 1e-6) +
                spec_.blockOverheadCycles;

            stats.flops += work.flops;
            stats.tensorFlops += work.tensorFlops;

            double finish = clock + block_cycles;
            total_cycles_all_sms += block_cycles;
            max_sm_cycles = std::max(max_sm_cycles, finish);
            sm_clock.push({finish, sm});
        }
    }

    // Whole-device DRAM bandwidth bound.
    stats.dramBytes = dram_lines * spec_.l1LineBytes;
    double dram_bound_cycles =
        static_cast<double>(stats.dramBytes) / spec_.dramBytesPerCycle();
    double busy_cycles = std::max(max_sm_cycles, dram_bound_cycles);

    double launch_overhead_us =
        spec_.launchOverheadUs * static_cast<double>(launches);
    stats.timeMs =
        busy_cycles / (spec_.clockGhz * 1e9) * 1e3 +
        launch_overhead_us * 1e-3;

    int64_t l1_hits = 0;
    int64_t l1_total = 0;
    for (const auto &cache : l1_) {
        l1_hits += cache.hits();
        l1_total += cache.hits() + cache.misses();
    }
    stats.l1Accesses = l1_total;
    stats.l1HitRate =
        l1_total == 0 ? 0.0
                      : static_cast<double>(l1_hits) /
                            static_cast<double>(l1_total);
    stats.l2HitRate = l2_.hitRate();

    double mean_cycles =
        total_cycles_all_sms / std::max(1, spec_.numSms);
    stats.imbalance =
        mean_cycles > 0.0 ? max_sm_cycles / mean_cycles : 1.0;
    return stats;
}

} // namespace gpusim
} // namespace sparsetir
