/**
 * @file
 * GPU hardware descriptions for the transaction-level simulator.
 *
 * Substitutes for the paper's NVIDIA Tesla V100 and GeForce RTX 3070
 * testbeds (see DESIGN.md, substitution 1). Numbers are public
 * datasheet values; the simulator consumes them as throughput and
 * capacity parameters, so only relative magnitudes matter for the
 * reproduced comparisons.
 */

#ifndef SPARSETIR_GPUSIM_SPEC_H_
#define SPARSETIR_GPUSIM_SPEC_H_

#include <cstdint>
#include <string>

namespace sparsetir {
namespace gpusim {

/** Throughput/capacity description of one GPU. */
struct GpuSpec
{
    std::string name;
    int numSms = 80;
    int warpSize = 32;
    double clockGhz = 1.4;
    /** HBM/GDDR bandwidth. */
    double dramBandwidthGBs = 900.0;
    /** Private per-SM L1/texture cache. */
    int64_t l1SizeBytes = 128 << 10;
    int l1LineBytes = 128;
    int l1Assoc = 4;
    /** Device-wide L2. */
    int64_t l2SizeBytes = 6 << 20;
    int l2LineBytes = 128;
    int l2Assoc = 16;
    /** FP32 FMA throughput per SM per cycle (flops, FMA = 2). */
    double fp32FlopsPerSmPerCycle = 128.0;
    /** FP16 Tensor-Core throughput per SM per cycle (flops). */
    double tensorFlopsPerSmPerCycle = 1024.0;
    /** Integer/address ALU ops per SM per cycle. */
    double intOpsPerSmPerCycle = 64.0;
    /** Shared-memory bandwidth per SM (bytes/cycle). */
    double sharedBytesPerSmPerCycle = 128.0;
    int64_t sharedMemPerSmBytes = 96 << 10;
    /** Per-kernel launch overhead. */
    double launchOverheadUs = 4.0;
    /** Fixed per-thread-block scheduling overhead (cycles). */
    double blockOverheadCycles = 600.0;

    /** DRAM bytes per core cycle (whole device). */
    double
    dramBytesPerCycle() const
    {
        return dramBandwidthGBs / clockGhz;
    }

    /** Tesla V100 (SXM2, 16 GB). */
    static GpuSpec v100();
    /** GeForce RTX 3070. */
    static GpuSpec rtx3070();
};

} // namespace gpusim
} // namespace sparsetir

#endif // SPARSETIR_GPUSIM_SPEC_H_
