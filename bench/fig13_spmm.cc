/**
 * @file
 * Reproduces Figure 13: normalized SpMM speedup against cuSPARSE for
 * {Sputnik, dgSPARSE, TACO, SparseTIR(no-hyb), SparseTIR(hyb)} on the
 * seven Table 1 graphs, on the V100 and RTX3070 device models.
 * Geometric mean over the feature-size sweep.
 */

#include <cstdio>
#include <map>

#include "autotune/search.h"
#include "baselines/cusparse.h"
#include "baselines/dgsparse.h"
#include "baselines/sputnik.h"
#include "baselines/taco.h"
#include "baselines/vendor_constants.h"
#include "bench_util.h"
#include "core/pipeline.h"
#include "graph/datasets.h"

using namespace sparsetir;

namespace {

struct Row
{
    std::string graph;
    std::map<std::string, double> speedup;
};

std::vector<Row>
runDevice(const gpusim::GpuSpec &spec, const std::vector<int64_t> &feats)
{
    std::vector<Row> rows;
    gpusim::Device device(spec);
    for (const auto &dataset : graph::table1Datasets()) {
        graph::DatasetSpec ds = dataset;
        if (benchutil::fastMode()) {
            ds.nodes = std::min<int64_t>(ds.nodes, 20000);
            ds.edges = std::min<int64_t>(ds.edges, 300000);
        }
        format::Csr g = graph::generateDataset(ds);
        Row row;
        row.graph = ds.name;
        std::map<std::string, std::vector<double>> ratios;

        for (int64_t feat : feats) {
            gpusim::SimOptions opts;

            auto cusparse = baselines::cusparseSpmm(g, feat);
            opts.efficiency = baselines::kCusparseEfficiency;
            double base = device.launch(*cusparse, opts).timeMs;

            auto sputnik = baselines::sputnikSpmm(g, feat);
            opts.efficiency = baselines::kSputnikEfficiency;
            ratios["Sputnik"].push_back(
                base / device.launch(*sputnik, opts).timeMs);

            auto dgsparse = baselines::dgsparseSpmm(g, feat);
            opts.efficiency = baselines::kDgsparseEfficiency;
            ratios["dgSPARSE"].push_back(
                base / device.launch(*dgsparse, opts).timeMs);

            auto taco = baselines::tacoSpmm(g, feat);
            opts.efficiency = baselines::kTacoEfficiency;
            ratios["TACO"].push_back(
                base / device.launch(*taco, opts).timeMs);

            // SparseTIR without format decomposition.
            runtime::NDArray b({g.cols * feat},
                               ir::DataType::float32());
            runtime::NDArray c({g.rows * feat},
                               ir::DataType::float32());
            auto csr_shared = std::make_shared<core::BindingSet>();
            csr_shared->external("B_data", &b);
            csr_shared->external("C_data", &c);
            auto no_hyb = core::compileSpmmCsr(g, feat, csr_shared);
            opts.efficiency = baselines::kSparseTirEfficiency;
            ratios["ST(no-hyb)"].push_back(
                base /
                device.launch(no_hyb->simKernel(), opts).timeMs);

            // SparseTIR with the tuned hyb(c, k) format.
            autotune::HybTuneResult tuned = autotune::tuneSpmmHyb(
                g, feat, device,
                benchutil::fastMode()
                    ? std::vector<int>{1, 4}
                    : std::vector<int>{1, 2, 4, 8, 16});
            ratios["ST(hyb)"].push_back(base / tuned.best.timeMs);
        }
        for (auto &[name, values] : ratios) {
            row.speedup[name] = benchutil::geomean(values);
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

void
printTable(const char *device_name, const std::vector<Row> &rows)
{
    std::printf("\n--- %s ---\n", device_name);
    std::vector<std::string> impls = {"Sputnik", "dgSPARSE", "TACO",
                                      "ST(no-hyb)", "ST(hyb)"};
    std::printf("%-15s %9s", "graph", "cuSPARSE");
    for (const auto &impl : impls) {
        std::printf("%11s", impl.c_str());
    }
    std::printf("\n");
    for (const auto &row : rows) {
        std::printf("%-15s %9.2f", row.graph.c_str(), 1.0);
        for (const auto &impl : impls) {
            std::printf("%11.2f", row.speedup.at(impl));
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    benchutil::printHeader(
        "Figure 13: normalized SpMM speedup vs cuSPARSE (geomean over "
        "feature sizes)");
    std::vector<int64_t> feats =
        benchutil::fastMode() ? std::vector<int64_t>{32}
                              : std::vector<int64_t>{32, 64, 128};
    std::printf("feature sizes:");
    for (int64_t f : feats) {
        std::printf(" %lld", static_cast<long long>(f));
    }
    std::printf("  (paper sweeps 32..512)\n");

    printTable("V100", runDevice(gpusim::GpuSpec::v100(), feats));
    printTable("RTX3070", runDevice(gpusim::GpuSpec::rtx3070(), feats));

    std::printf(
        "\nPaper (V100): SparseTIR(hyb) 1.2-2.3x vs cuSPARSE on all "
        "graphs; SparseTIR(no-hyb)\nloses on power-law graphs "
        "(ogbn-arxiv 0.4x) and hyb recovers it; TACO < 1x "
        "everywhere.\nExpected shape: hyb >= no-hyb, hyb > vendor "
        "libraries, TACO slowest.\n");
    return 0;
}
