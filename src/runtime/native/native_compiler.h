/**
 * @file
 * Native (C -> .so) tier: out-of-process compilation, persistent
 * artifact cache, and the host-side executor.
 *
 * compileNative() emits a kernel as C (c_emitter.h), hashes the
 * source, and either loads a matching persisted `.so` from the cache
 * directory (warm start across process restarts) or shells out to the
 * system C compiler and atomically installs the result. execute()
 * binds Bindings/RunOptions onto the dlopen'd entry point with the
 * exact semantics of the bytecode VM — offset views, block windows,
 * lazy parameter binding, fault diagnostics.
 *
 * Environment knobs:
 *   SPARSETIR_NATIVE            enable the tier as the engine default
 *   SPARSETIR_NATIVE_CC         compiler command (default "cc")
 *   SPARSETIR_NATIVE_CACHE_DIR  artifact directory
 *                               (default /tmp/sparsetir-native-<uid>)
 */

#ifndef SPARSETIR_RUNTIME_NATIVE_NATIVE_COMPILER_H_
#define SPARSETIR_RUNTIME_NATIVE_NATIVE_COMPILER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/prim_func.h"
#include "runtime/interpreter.h"
#include "runtime/native/abi.h"

namespace sparsetir {
namespace runtime {
namespace native {

/**
 * One loaded native kernel. The dlopen handle is refcounted through
 * `handle`; the entry pointer stays valid for the kernel's lifetime.
 */
struct NativeKernel
{
    std::string name;
    KernelEntryFn entry = nullptr;
    /** dlopen handle; dlclose on last release. */
    std::shared_ptr<void> handle;
    /** Buffer slot names: params first, then scratch (see emitter). */
    std::vector<std::string> slotNames;
    int numParamSlots = 0;
    /** Scalar params the kernel reads, in ctx->scalars order. */
    std::vector<std::string> scalarNames;
    bool hasWindow = false;
    /** Installed artifact path in the cache directory. */
    std::string soPath;
    /** Loaded from a persisted artifact; no compiler was invoked. */
    bool diskHit = false;
};

/**
 * Compile `func` to a native kernel, reusing a persisted artifact
 * when one with a matching meta string (source hash + key tag + ABI
 * version) exists in the cache directory. Throws UserError when the
 * function is outside the native subset or the C compiler fails /
 * is missing — callers treat that as "stay on bytecode". Safe to
 * call concurrently: a process-wide lock serializes the cache, so
 * racing callers for one kernel produce exactly one compile.
 */
std::shared_ptr<const NativeKernel>
compileNative(const ir::PrimFunc &func, const std::string &key_tag);

/**
 * Execute a native kernel over bindings, honoring RunOptions block
 * windows and offset views. Fault codes surface as the bytecode VM's
 * diagnostics (InternalError / UserError).
 */
void execute(const NativeKernel &kernel, const Bindings &bindings,
             const RunOptions &options);

/** Artifact cache directory currently in effect. */
std::string nativeCacheDir();

/**
 * Process-wide count of C-compiler invocations that produced an
 * artifact (disk hits do not count). Tests assert warm starts and
 * promotion races leave this unchanged / bump it exactly once.
 */
uint64_t nativeCompileCount();

/** True when SPARSETIR_NATIVE asks for the native tier ("1"/"true"/
 *  any value other than "" or "0"). */
bool nativeEnabledByEnv();

} // namespace native
} // namespace runtime
} // namespace sparsetir

#endif // SPARSETIR_RUNTIME_NATIVE_NATIVE_COMPILER_H_
