#include "transform/lower_sparse_buffer.h"

#include <map>

#include "ir/analysis.h"
#include "ir/functor.h"
#include "ir/simplify.h"
#include "transform/lower_sparse_iter.h"

namespace sparsetir {
namespace transform {

using namespace ir;

namespace {

/** Child of `axis` among the buffer's axes (chain assumption). */
int
childIndexOf(const Buffer &buffer, size_t axis_index)
{
    const Axis &axis = buffer->axes[axis_index];
    int child = -1;
    for (size_t j = 0; j < buffer->axes.size(); ++j) {
        if (buffer->axes[j]->parent.get() == axis.get()) {
            ICHECK_EQ(child, -1)
                << "buffer " << buffer->name
                << " has a branching axis tree; expected chains";
            child = static_cast<int>(j);
        }
    }
    return child;
}

/**
 * nnz(Tree(A_i)) of eq. 8: stored slots of the subtree rooted at the
 * axis, restricted to the buffer's axes.
 */
Expr
nnzTree(const Buffer &buffer, size_t axis_index)
{
    // Walk the chain downward, remembering the deepest variable axis.
    std::vector<size_t> chain;
    int cur = static_cast<int>(axis_index);
    while (cur >= 0) {
        chain.push_back(static_cast<size_t>(cur));
        cur = childIndexOf(buffer, static_cast<size_t>(cur));
    }
    int last_variable = -1;
    for (size_t k = 0; k < chain.size(); ++k) {
        if (buffer->axes[chain[k]]->isVariable()) {
            last_variable = static_cast<int>(k);
        }
    }
    Expr slots;
    size_t start = 0;
    if (last_variable >= 0) {
        slots = buffer->axes[chain[last_variable]]->nnz;
        start = static_cast<size_t>(last_variable) + 1;
    } else {
        slots = intImm(1);
    }
    for (size_t k = start; k < chain.size(); ++k) {
        const Axis &axis = buffer->axes[chain[k]];
        if (!axis->isVariable()) {
            slots = mul(slots, axis->fixedColumns());
        }
    }
    return simplify(slots);
}

/** offset(i) of eq. 7: absolute storage position along axis i. */
Expr
axisOffset(const Buffer &buffer, size_t axis_index,
           const std::vector<Expr> &indices,
           std::map<size_t, Expr> &memo)
{
    auto it = memo.find(axis_index);
    if (it != memo.end()) {
        return it->second;
    }
    const Axis &axis = buffer->axes[axis_index];
    Expr result;
    if (axis->parent == nullptr) {
        result = indices[axis_index];
    } else {
        // Locate the parent among the buffer axes.
        int parent_index = -1;
        for (size_t j = 0; j < buffer->axes.size(); ++j) {
            if (buffer->axes[j].get() == axis->parent.get()) {
                parent_index = static_cast<int>(j);
                break;
            }
        }
        ICHECK_GE(parent_index, 0)
            << "buffer " << buffer->name << ": axis " << axis->name
            << " depends on " << axis->parent->name
            << " which is not part of the buffer";
        Expr parent_offset = axisOffset(
            buffer, static_cast<size_t>(parent_index), indices, memo);
        if (axis->isVariable()) {
            result = add(bufferLoad(indptrBufferOf(axis), {parent_offset}),
                         indices[axis_index]);
        } else {
            // Sparse-fixed: k slots per parent position.
            result = add(mul(parent_offset, axis->nnzCols),
                         indices[axis_index]);
        }
    }
    memo[axis_index] = result;
    return result;
}

/** Full flattened offset per eq. 6. */
Expr
flattenSparseAccess(const Buffer &buffer, const std::vector<Expr> &indices)
{
    size_t n = buffer->axes.size();
    // stride(i) per eq. 8, computed right-to-left.
    std::vector<Expr> stride(n + 1);
    stride[n] = intImm(1);
    for (size_t i = n; i-- > 0;) {
        if (buffer->axes[i]->parent == nullptr) {
            stride[i] = mul(nnzTree(buffer, i), stride[i + 1]);
        } else {
            stride[i] = stride[i + 1];
        }
    }
    std::map<size_t, Expr> memo;
    Expr flat = intImm(0);
    for (size_t i = 0; i < n; ++i) {
        if (childIndexOf(buffer, i) >= 0) {
            continue;  // not a leaf
        }
        flat = add(flat, mul(axisOffset(buffer, i, indices, memo),
                             stride[i + 1]));
    }
    return simplify(flat);
}

/** Row-major flattening of a dense multi-dim access. */
Expr
flattenDenseAccess(const Buffer &buffer, const std::vector<Expr> &indices)
{
    Expr flat = indices[0];
    for (size_t d = 1; d < indices.size(); ++d) {
        flat = add(mul(flat, buffer->shape[d]), indices[d]);
    }
    return simplify(flat);
}

class BufferFlattener : public StmtMutator
{
  public:
    Buffer
    flatBuffer(const Buffer &buffer)
    {
        auto it = cache_.find(buffer.get());
        if (it != cache_.end()) {
            return it->second;
        }
        Expr slots;
        if (buffer->isSparse()) {
            slots = intImm(1);
            for (size_t i = 0; i < buffer->axes.size(); ++i) {
                if (buffer->axes[i]->parent == nullptr) {
                    slots = mul(slots, nnzTree(buffer, i));
                }
            }
        } else {
            slots = intImm(1);
            for (const auto &dim : buffer->shape) {
                slots = mul(slots, dim);
            }
        }
        auto node = std::make_shared<BufferNode>();
        node->name = buffer->name;
        node->data = buffer->data;
        node->dtype = buffer->dtype;
        node->shape = {simplify(slots)};
        node->scope = buffer->scope;
        Buffer flat = node;
        cache_[buffer.get()] = flat;
        return flat;
    }

  protected:
    Expr
    mutateBufferLoad(const BufferLoadNode *op, const Expr &e) override
    {
        std::vector<Expr> indices;
        indices.reserve(op->indices.size());
        for (const auto &idx : op->indices) {
            indices.push_back(mutateExpr(idx));
        }
        return std::make_shared<BufferLoadNode>(
            op->dtype, flatBuffer(op->buffer),
            std::vector<Expr>{flatten(op->buffer, indices)});
    }

    Stmt
    mutateBufferStore(const BufferStoreNode *op, const Stmt &s) override
    {
        std::vector<Expr> indices;
        indices.reserve(op->indices.size());
        for (const auto &idx : op->indices) {
            indices.push_back(mutateExpr(idx));
        }
        Expr value = mutateExpr(op->value);
        return bufferStore(flatBuffer(op->buffer),
                           {flatten(op->buffer, indices)},
                           std::move(value));
    }

    Stmt
    mutateAllocate(const AllocateNode *op, const Stmt &s) override
    {
        Stmt body = mutateStmt(op->body);
        return allocate(flatBuffer(op->buffer), std::move(body));
    }

    Buffer
    mutateBuffer(const Buffer &buffer) override
    {
        // Covers Call bufferArg (aux buffers are already flat).
        return buffer->ndim() == 1 && !buffer->isSparse()
                   ? buffer
                   : flatBuffer(buffer);
    }

  private:
    Expr
    flatten(const Buffer &buffer, const std::vector<Expr> &indices)
    {
        if (!buffer->isSparse()) {
            if (indices.size() == 1) {
                return indices[0];
            }
            return flattenDenseAccess(buffer, indices);
        }
        return flattenSparseAccess(buffer, indices);
    }

    std::map<const BufferNode *, Buffer> cache_;
};

} // namespace

Expr
sparseBufferSlots(const Buffer &buffer)
{
    ICHECK(buffer->isSparse());
    Expr slots = intImm(1);
    for (size_t i = 0; i < buffer->axes.size(); ++i) {
        if (buffer->axes[i]->parent == nullptr) {
            slots = mul(slots, nnzTree(buffer, i));
        }
    }
    return simplify(slots);
}

PrimFunc
lowerSparseBuffers(const PrimFunc &func)
{
    USER_CHECK(func->stage == IrStage::kStage2)
        << "lowerSparseBuffers expects a Stage II function";
    PrimFunc result = copyFunc(func);
    BufferFlattener flattener;
    Stmt body = flattener.mutateStmt(func->body);
    result->body = annotateRegions(simplifyStmt(body));
    result->stage = IrStage::kStage3;
    // Rebind the buffer map to the flat views.
    std::vector<std::pair<Var, Buffer>> new_map;
    new_map.reserve(func->bufferMap.size());
    for (const auto &[param, buffer] : func->bufferMap) {
        new_map.emplace_back(param, flattener.flatBuffer(buffer));
    }
    result->bufferMap = std::move(new_map);
    result->axes.clear();
    return result;
}

namespace {

/** Visitor behind stage3ExecDiagnostic; records the first offender. */
class ExecDiagnoser : public StmtVisitor
{
  public:
    const std::string &diagnostic() const { return diag_; }

  protected:
    void
    visitSparseIteration(const SparseIterationNode *op) override
    {
        note("Stage I sparse iteration '" + op->name +
             "' (run sparse iteration lowering)");
    }

    void
    visitBufferLoad(const BufferLoadNode *op) override
    {
        checkAccess(op->buffer, op->indices.size());
        ExprVisitor::visitBufferLoad(op);
    }

    void
    visitBufferStore(const BufferStoreNode *op) override
    {
        checkAccess(op->buffer, op->indices.size());
        StmtVisitor::visitBufferStore(op);
    }

    void
    visitRamp(const RampNode *op) override
    {
        note("vector Ramp expression");
    }

    void
    visitBroadcast(const BroadcastNode *op) override
    {
        note("vector Broadcast expression");
    }

    void
    visitCall(const CallNode *op) override
    {
        if (op->op == Builtin::kExtern) {
            note("extern call '" + op->name + "'");
        }
        ExprVisitor::visitCall(op);
    }

  private:
    void
    checkAccess(const Buffer &buffer, size_t num_indices)
    {
        if (num_indices > 1 && buffer->isSparse()) {
            note("multi-dimensional access to sparse buffer '" +
                 buffer->name + "' (run sparse buffer lowering)");
        }
    }

    void
    note(const std::string &what)
    {
        if (diag_.empty()) {
            diag_ = what;
        }
    }

    std::string diag_;
};

} // namespace

std::string
stage3ExecDiagnostic(const PrimFunc &func)
{
    ExecDiagnoser diagnoser;
    if (func->body != nullptr) {
        diagnoser.visitStmt(func->body);
    }
    return diagnoser.diagnostic();
}

} // namespace transform
} // namespace sparsetir
