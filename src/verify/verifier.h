/**
 * @file
 * Static artifact verifier for Stage III TIR.
 *
 * Proves three properties of a lowered kernel before it is admitted to
 * the CompileCache:
 *
 *  1. Bounds: every buffer load/store index (including the implicit
 *     accesses of binary-search and atomic builtins) stays inside the
 *     buffer's extent, under the loop ranges and guard conditions that
 *     dominate the access. Run on pre-fix IR this flags the historic
 *     `Schedule::cacheWrite` missing-split-tail-guard out-of-bounds
 *     store that the fuzz suite originally caught dynamically.
 *
 *  2. Write-set soundness: every store to a declared reduction output
 *     lands inside the `AccumOutput` spans the fused task-graph's
 *     privatize/fold contract depends on — including the stale/empty
 *     span configurations behind the old empty-write-set sentinel bug.
 *
 *  3. Parallel-race freedom: distinct iterations of the parallel
 *     (blockIdx.x) axis write disjoint locations, or the store is a
 *     recognized reduction handled by span privatization; kernels whose
 *     row sets contain duplicates must carry the exclusive marking.
 *
 * The prover is conservative: a clean verdict is a proof under the
 * declared facts, a failure is "not provable" plus a printer-backed
 * diagnostic pinpointing the offending statement.
 */

#ifndef SPARSETIR_VERIFY_VERIFIER_H_
#define SPARSETIR_VERIFY_VERIFIER_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ir/prim_func.h"
#include "verify/affine.h"

namespace sparsetir {
namespace verify {

/** Failure class of a diagnostic. */
enum class DiagCategory : uint8_t {
    kOutOfBounds,
    kWriteSetViolation,
    kParallelRace,
};

/** Render "out-of-bounds" / "write-set" / "parallel-race". */
const char *diagCategoryName(DiagCategory category);

/** One verification failure, anchored to a statement. */
struct Diagnostic
{
    DiagCategory category;
    /** Buffer the failing access targets. */
    std::string buffer;
    /** What could not be proven, with the obligation spelled out. */
    std::string message;
    /** Printer rendering of the offending statement or expression. */
    std::string stmt;
};

struct VerifyResult
{
    bool ok = true;
    std::vector<Diagnostic> diagnostics;
};

/** Render all diagnostics of a failed result into one report. */
std::string formatDiagnostics(const VerifyResult &result);

/**
 * Declared write-set of one reduction output, mirroring the engine's
 * `AccumOutput` after `restrictAccumSpans`. `buffer` is the name the
 * engine uses — the data-var name of the output buffer (e.g.
 * "C_data"). When `rows`/`rowWidth` are given, the verifier both
 * confines each store to its row slot and checks that every concrete
 * row's slot is covered by the declared spans.
 */
struct AccumWriteSet
{
    std::string buffer;
    /** True when the kernel may write the whole output array. */
    bool wholeArray = true;
    /** Declared [begin, end) spans of flat element offsets. */
    std::vector<std::pair<int64_t, int64_t>> spans;
    /** Name of the row-index array driving the output row. */
    std::string rowsBuffer;
    /** Concrete row ids (borrowed; may be null for symbolic runs). */
    const std::vector<int32_t> *rows = nullptr;
    /** Flat elements per output row. */
    int64_t rowWidth = 0;
};

/**
 * Facts the caller knows about the kernel's inputs. The engine fills
 * concrete values from the cached sparse structure; the pipeline's
 * compile-time self-check fills symbolic format invariants instead.
 */
struct VerifyContext
{
    /** Value facts keyed by buffer name, data-var name or param name. */
    std::map<std::string, ValueFact> facts;
    /** Declared reduction outputs; meaningful when hasAccumSpec. */
    std::vector<AccumWriteSet> accums;
    /** Set when `accums`/`kernelExclusive` reflect a compiled kernel. */
    bool hasAccumSpec = false;
    /** Engine's exclusive marking (split-row kernels). */
    bool kernelExclusive = false;

    /** Declare a scalar parameter's exact value. */
    void scalar(const std::string &name, int64_t value);
    /** Declare an int32 array's min/max/front/back. */
    void int32Array(const std::string &name,
                    const std::vector<int32_t> &values);
};

/**
 * Verify one Stage III function. With a default-constructed context
 * the bounds and race checks still run against format axioms alone;
 * write-set checks need a declared accum spec.
 */
VerifyResult verifyFunc(const ir::PrimFunc &func,
                        const VerifyContext &ctx = VerifyContext());

} // namespace verify
} // namespace sparsetir

#endif // SPARSETIR_VERIFY_VERIFIER_H_
