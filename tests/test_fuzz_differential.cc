/**
 * @file
 * Randomized differential fuzzer over the execution engine.
 *
 * Every case generates a random sparse structure (CSR-derived hyb
 * decompositions with random partition/bucket-cap sets — empty rows,
 * singleton shapes, dense rows forcing widest-bucket splits — plus
 * periodic BSR re-blockings and multi-request batches), random feat
 * sizes and worker counts, then asserts bitwise equality against the
 * serial tree-walking interpreter across the full execution matrix:
 *
 *   backend axis:   interpreter vs bytecode VM vs native (.so) tier
 *   schedule axis:  serial vs barriered parallel vs fused task graph
 *
 * Native engines promote synchronously (nativePromoteAfter = 0), so
 * every native-variant dispatch really runs the dlopen'd kernels; the
 * end-of-run assertions require promotions > 0 and fallbacks == 0 —
 * a native-ineligible kernel shows up as a counted fallback, never a
 * silent skip of the native axis.
 *
 * Periodic cases additionally build a random 2-4-op dataflow graph
 * over the same structure (sddmm-rooted edge chains, aggregate ->
 * update, 2-layer interior-gather stacks that must bail to the
 * chain) and assert fused == per-kernel chain == both backends.
 *
 * Knobs (environment):
 *   FUZZ_CASES  number of cases (default 200 — the tier-1 budget;
 *               CI's fuzz-long job runs 2000)
 *   FUZZ_SEED   base seed (default fixed, so a stock ctest run is
 *               deterministic; accepts 0x-prefixed hex)
 *   FUZZ_CASE   run a single case index (replay of a failure)
 *
 * A failing case prints its seed, index and structure summary plus
 * the exact environment to replay it, e.g.
 *   FUZZ_SEED=0x5eedc0ffee FUZZ_CASE=137 ctest -R test_fuzz
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "dfg/op_graph.h"
#include "engine/engine.h"
#include "format/bsr.h"
#include "graph/generator.h"
#include "support/rng.h"
#include "test_util.h"

namespace sparsetir {
namespace {

using engine::Engine;
using engine::EngineOptions;
using engine::SpmmRequest;
using format::Csr;
using runtime::NDArray;
using testutil::bitwiseEqual;

constexpr uint64_t kDefaultSeed = 0x5eedc0ffeeULL;
constexpr uint64_t kAllCases = ~0ULL;

uint64_t
envU64(const char *name, uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0') {
        return fallback;
    }
    return std::strtoull(v, nullptr, 0);
}

/** SplitMix64 — decorrelates per-case streams from (seed, index). */
uint64_t
mix(uint64_t seed, uint64_t index)
{
    uint64_t z = seed + (index + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::vector<float>
randomValues(Rng *rng, int64_t size)
{
    std::vector<float> out(static_cast<size_t>(size));
    for (auto &v : out) {
        v = static_cast<float>(rng->uniformReal() * 2.0 - 1.0);
    }
    return out;
}

/**
 * One execution configuration of the differential matrix. Engines
 * are pooled per configuration across cases (each owns a thread pool
 * and a compile cache; recreating them per case would dominate the
 * fuzz budget and hide cross-structure cache behavior).
 */
struct Config
{
    const char *name;
    runtime::Backend backend;
    bool parallel;
    bool fused;
};

/** Point every native engine of the run at ONE fresh scratch cache
 *  dir: the fuzzer must never load .so artifacts persisted by other
 *  processes (or leave its own behind at a shared default path). */
void
isolateNativeCacheDir()
{
    static const bool done = [] {
        static char tmpl[] = "/tmp/sparsetir-fuzz-native-XXXXXX";
        if (::mkdtemp(tmpl) != nullptr) {
            ::setenv("SPARSETIR_NATIVE_CACHE_DIR", tmpl, 1);
        }
        return true;
    }();
    (void)done;
}

class EnginePool
{
  public:
    Engine &
    get(const Config &config, int workers, int64_t min_chunk)
    {
        // Serial engines ignore the parallel-schedule knobs;
        // normalize them out of the key so every serial config maps
        // to ONE engine instead of one per (workers, minChunk)
        // combination, each recompiling the same artifacts.
        if (!config.parallel) {
            workers = 1;
            min_chunk = 0;
        }
        Key key{config.backend, config.parallel, config.fused,
                workers, min_chunk};
        auto it = engines_.find(key);
        if (it == engines_.end()) {
            EngineOptions options;
            options.backend = config.backend;
            options.parallel = config.parallel;
            options.fusedDispatch = config.fused;
            options.numThreads = config.parallel ? workers : 1;
            options.minBlocksPerChunk = min_chunk;
            // Every artifact the fuzzer compiles goes through the
            // static verifier regardless of build type: the random
            // structures double as a soak test for the prover.
            options.verifyArtifacts = true;
            if (config.backend == runtime::Backend::kNative) {
                // Promote inside the first resolve, so every native
                // dispatch of the matrix actually runs the .so tier
                // (no warm-up hysteresis to fuzz through). Engines
                // share one artifact dir, so each kernel is compiled
                // once and disk-hit by the other native configs.
                isolateNativeCacheDir();
                options.nativePromoteAfter = 0;
            }
            it = engines_
                     .emplace(key,
                              std::make_unique<Engine>(options))
                     .first;
        }
        return *it->second;
    }

    /** Every live native-backend engine (for end-of-run stats). */
    std::vector<Engine *>
    nativeEngines()
    {
        std::vector<Engine *> out;
        for (auto &[key, engine] : engines_) {
            if (std::get<0>(key) == runtime::Backend::kNative) {
                out.push_back(engine.get());
            }
        }
        return out;
    }

  private:
    using Key =
        std::tuple<runtime::Backend, bool, bool, int, int64_t>;
    std::map<Key, std::unique_ptr<Engine>> engines_;
};

/** The serial interpreter — ground truth for every case. */
constexpr Config kReference = {"serial interpreter",
                               runtime::Backend::kInterpreter, false,
                               false};

/** The differential matrix: all three backends x the three schedule
 * shapes (serial / barriered parallel / fused task graph). */
constexpr Config kVariants[] = {
    {"serial bytecode", runtime::Backend::kBytecode, false, false},
    {"barriered interpreter", runtime::Backend::kInterpreter, true,
     false},
    {"fused interpreter", runtime::Backend::kInterpreter, true, true},
    {"barriered bytecode", runtime::Backend::kBytecode, true, false},
    {"fused bytecode", runtime::Backend::kBytecode, true, true},
    {"serial native", runtime::Backend::kNative, false, false},
    {"barriered native", runtime::Backend::kNative, true, false},
    {"fused native", runtime::Backend::kNative, true, true},
};

/** Random structure with deliberate corner-shape injection. */
Csr
randomStructure(Rng *rng, std::string *desc)
{
    std::ostringstream out;
    Csr a;
    switch (rng->uniformInt(4)) {
      case 0: {
        // Uniform random density, empty rows arise naturally.
        int64_t rows = rng->uniformRange(1, 40);
        int64_t cols = rng->uniformRange(1, 40);
        double density = 0.02 + rng->uniformReal() * 0.3;
        std::vector<float> dense(rows * cols, 0.0f);
        for (auto &v : dense) {
            if (rng->uniformReal() < density) {
                v = static_cast<float>(rng->uniformReal() * 2.0 -
                                       1.0);
                if (v == 0.0f) {
                    v = 0.25f;
                }
            }
        }
        a = format::csrFromDense(rows, cols, dense);
        out << "uniform rows=" << rows << " cols=" << cols;
        break;
      }
      case 1: {
        // Heavy-tailed degrees: diverse bucket sets, split rows.
        int64_t nodes = rng->uniformRange(4, 60);
        int64_t edges =
            nodes * rng->uniformRange(1, 8) + rng->uniformRange(0, 8);
        a = graph::powerLawGraph(nodes, edges, 1.5 +
                                                   rng->uniformReal(),
                                 rng->next());
        out << "powerlaw nodes=" << nodes;
        break;
      }
      case 2: {
        // Singleton-ish shapes: one row, one column, or 1x1.
        if (rng->uniformInt(2) == 0) {
            int64_t cols = rng->uniformRange(1, 24);
            std::vector<float> dense(cols, 0.0f);
            for (auto &v : dense) {
                if (rng->uniformReal() < 0.5) {
                    v = 1.0f + static_cast<float>(rng->uniformReal());
                }
            }
            a = format::csrFromDense(1, cols, dense);
            out << "single-row cols=" << cols;
        } else {
            int64_t rows = rng->uniformRange(1, 24);
            std::vector<float> dense(rows, 0.0f);
            for (auto &v : dense) {
                if (rng->uniformReal() < 0.5) {
                    v = 1.0f + static_cast<float>(rng->uniformReal());
                }
            }
            a = format::csrFromDense(rows, 1, dense);
            out << "single-col rows=" << rows;
        }
        break;
      }
      default: {
        // One dense row over an otherwise empty matrix: the dense
        // row splits across the widest bucket (exclusive kernel)
        // while every other row is a zero row.
        int64_t rows = rng->uniformRange(2, 24);
        int64_t cols = rng->uniformRange(2, 32);
        std::vector<float> dense(rows * cols, 0.0f);
        int64_t dense_row = rng->uniformRange(0, rows - 1);
        for (int64_t j = 0; j < cols; ++j) {
            dense[dense_row * cols + j] =
                static_cast<float>(rng->uniformReal() * 2.0 - 1.0);
            if (dense[dense_row * cols + j] == 0.0f) {
                dense[dense_row * cols + j] = -0.75f;
            }
        }
        a = format::csrFromDense(rows, cols, dense);
        out << "dense-row rows=" << rows << " cols=" << cols;
        break;
      }
    }
    // The hyb pipeline (correctly) rejects all-zero matrices; pin one
    // entry so every generated case dispatches.
    if (a.nnz() == 0) {
        std::vector<float> dense(a.rows * a.cols, 0.0f);
        dense[rng->uniformInt(static_cast<uint64_t>(a.rows *
                                                    a.cols))] = 1.0f;
        a = format::csrFromDense(a.rows, a.cols, dense);
        out << " +pinned-nnz";
    }
    int64_t empty_rows = 0;
    for (int64_t r = 0; r < a.rows; ++r) {
        if (a.rowLength(r) == 0) {
            ++empty_rows;
        }
    }
    out << " nnz=" << a.nnz() << " empty_rows=" << empty_rows;
    *desc = out.str();
    return a;
}

struct CaseParams
{
    int64_t feat = 0;
    engine::HybConfig config;
    int workers = 0;
    int64_t minChunk = 0;
};

CaseParams
randomParams(Rng *rng)
{
    constexpr int64_t kFeats[] = {1, 2, 3, 4, 5, 8, 16};
    constexpr int kWorkers[] = {2, 4, 8};
    constexpr int64_t kMinChunks[] = {1, 4};
    CaseParams params;
    params.feat = kFeats[rng->uniformInt(7)];
    params.config.partitions =
        static_cast<int>(rng->uniformRange(1, 3));
    params.config.bucketCapLog2 =
        static_cast<int>(rng->uniformRange(-1, 2));
    params.workers = kWorkers[rng->uniformInt(3)];
    params.minChunk = kMinChunks[rng->uniformInt(2)];
    return params;
}

std::string
describe(uint64_t seed, uint64_t index, const std::string &structure,
         const CaseParams &params)
{
    std::ostringstream out;
    out << "case " << index << " [" << structure
        << " feat=" << params.feat
        << " partitions=" << params.config.partitions
        << " cap=" << params.config.bucketCapLog2
        << " workers=" << params.workers
        << " minChunk=" << params.minChunk << "]  replay: FUZZ_SEED=0x"
        << std::hex << seed << std::dec << " FUZZ_CASE=" << index
        << " ctest -R test_fuzz_differential";
    return out.str();
}

/** Hyb SpMM: the full 2-backend x 3-schedule differential. */
void
runHybCase(EnginePool *pool, const Csr &a, const CaseParams &params,
           Rng *rng, const std::string &what)
{
    NDArray b = NDArray::fromFloat(
        randomValues(rng, a.cols * params.feat));
    NDArray expected({a.rows * params.feat}, ir::DataType::float32());
    pool->get(kReference, params.workers, params.minChunk)
        .spmmHyb(a, params.feat, &b, &expected, params.config);

    for (const Config &variant : kVariants) {
        Engine &eng =
            pool->get(variant, params.workers, params.minChunk);
        NDArray c({a.rows * params.feat}, ir::DataType::float32());
        eng.spmmHyb(a, params.feat, &b, &c, params.config);
        ASSERT_TRUE(bitwiseEqual(expected, c))
            << variant.name << " diverged on hyb " << what;
    }
}

/** Batched hyb: per-request equality across fused and barriered. */
void
runBatchCase(EnginePool *pool, const Csr &a, const CaseParams &params,
             Rng *rng, const std::string &what)
{
    int requests = static_cast<int>(rng->uniformRange(2, 4));
    std::vector<NDArray> b;
    std::vector<NDArray> expected;
    for (int i = 0; i < requests; ++i) {
        b.push_back(NDArray::fromFloat(
            randomValues(rng, a.cols * params.feat)));
        expected.emplace_back(
            std::vector<int64_t>{a.rows * params.feat},
            ir::DataType::float32());
        pool->get(kReference, params.workers, params.minChunk)
            .spmmHyb(a, params.feat, &b[i], &expected[i],
                     params.config);
    }
    for (const Config &variant : kVariants) {
        Engine &eng =
            pool->get(variant, params.workers, params.minChunk);
        std::vector<NDArray> c;
        std::vector<SpmmRequest> views;
        for (int i = 0; i < requests; ++i) {
            c.emplace_back(std::vector<int64_t>{a.rows * params.feat},
                           ir::DataType::float32());
        }
        for (int i = 0; i < requests; ++i) {
            views.push_back(SpmmRequest{&b[i], &c[i]});
        }
        eng.spmmHybBatch(a, params.feat, views, params.config);
        for (int i = 0; i < requests; ++i) {
            ASSERT_TRUE(bitwiseEqual(expected[i], c[i]))
                << variant.name << " diverged on batched hyb request "
                << i << "/" << requests << " " << what;
        }
    }
}

/** BSR re-blocking: backend x schedule differential on one kernel. */
void
runBsrCase(EnginePool *pool, const Csr &a, const CaseParams &params,
           Rng *rng, const std::string &what)
{
    constexpr int32_t kBlocks[] = {2, 4, 8};
    format::Bsr bsr =
        format::bsrFromCsr(a, kBlocks[rng->uniformInt(3)]);
    if (bsr.nnzBlocks() == 0) {
        return;
    }
    int64_t b_size = bsr.blockCols * bsr.blockSize * params.feat;
    int64_t c_size = bsr.blockRows * bsr.blockSize * params.feat;
    NDArray b = NDArray::fromFloat(randomValues(rng, b_size));
    NDArray expected({c_size}, ir::DataType::float32());
    pool->get(kReference, params.workers, params.minChunk)
        .spmmBsr(bsr, params.feat, &b, &expected);

    for (const Config &variant : kVariants) {
        Engine &eng =
            pool->get(variant, params.workers, params.minChunk);
        NDArray c({c_size}, ir::DataType::float32());
        eng.spmmBsr(bsr, params.feat, &b, &c);
        ASSERT_TRUE(bitwiseEqual(expected, c))
            << variant.name << " diverged on bsr(blockSize="
            << bsr.blockSize << ") " << what;
    }
}

/**
 * Random 2-4-op dataflow-graph chain: fused vs per-kernel chain vs
 * both backends, all bitwise against the serial-interpreter chain.
 * Chains either start at sddmm and walk edge-space ops (scale, relu,
 * masked softmax) with an optional closing spmm, run
 * aggregate -> update, or (on square patterns) stack TWO aggregate ->
 * update layers so a gather op consumes an interior value — the shape
 * fusion must refuse, exercising the silent bail-to-chain path under
 * fuse=true. Every engine in the pool verifies artifacts, so the
 * random structures also soak the graph-program prover.
 */
void
runGraphCase(EnginePool *pool, const Csr &a, const CaseParams &params,
             Rng *rng, const std::string &what)
{
    dfg::PatternRef pattern = dfg::SparsityPattern::fromCsr(a);
    int64_t feat = params.feat;
    std::map<std::string, NDArray> inputs;
    dfg::OpGraph graph;
    std::ostringstream shape;
    int64_t out_numel = 0;
    int expect_chain_kernels = 0;

    uint64_t kind = rng->uniformInt(a.rows == a.cols ? 3 : 2);
    if (kind == 2) {
        // Layer 2's aggregate gathers layer 1's interior result
        // across rows; dfg::fusible must bail and both fuse modes
        // must dispatch the identical 4-kernel chain.
        int64_t fmid = rng->uniformRange(1, 6);
        int64_t fout = rng->uniformRange(1, 6);
        inputs.emplace("x", NDArray::fromFloat(
                                randomValues(rng, a.cols * feat)));
        inputs.emplace("w1", NDArray::fromFloat(
                                 randomValues(rng, feat * fmid)));
        inputs.emplace("w2", NDArray::fromFloat(
                                 randomValues(rng, fmid * fout)));
        int x = graph.denseInput("x", a.cols, feat);
        int w1 = graph.denseInput("w1", feat, fmid);
        int w2 = graph.denseInput("w2", fmid, fout);
        bool mean = rng->uniformInt(2) == 0;
        int y1 = graph.update(graph.aggregate(pattern, x, mean), w1);
        int y2 = graph.update(graph.aggregate(pattern, y1, mean), w2);
        graph.markOutput(y2, "out");
        out_numel = a.rows * fout;
        expect_chain_kernels = 4;
        shape << "2-layer-" << (mean ? "mean-" : "")
              << "sage(interior-gather)";
    } else if (kind == 0) {
        inputs.emplace("q", NDArray::fromFloat(
                                randomValues(rng, a.rows * feat)));
        inputs.emplace("kt", NDArray::fromFloat(
                                 randomValues(rng, feat * a.cols)));
        int q = graph.denseInput("q", a.rows, feat);
        int kt = graph.denseInput("kt", feat, a.cols);
        int e = graph.sddmm(pattern, q, kt);
        shape << "sddmm";
        int extra = static_cast<int>(rng->uniformRange(0, 2));
        for (int j = 0; j < extra; ++j) {
            switch (rng->uniformInt(3)) {
              case 0:
                e = graph.elementwise(e, dfg::EwiseFn::kScale,
                                      0.5 + rng->uniformReal());
                shape << "+scale";
                break;
              case 1:
                e = graph.elementwise(e, dfg::EwiseFn::kRelu);
                shape << "+relu";
                break;
              default:
                e = graph.maskedSoftmax(e);
                shape << "+softmax";
                break;
            }
        }
        if (rng->uniformInt(2) == 0) {
            inputs.emplace("v", NDArray::fromFloat(
                                    randomValues(rng,
                                                 a.cols * feat)));
            int v = graph.denseInput("v", a.cols, feat);
            e = graph.spmm(e, v);
            out_numel = a.rows * feat;
            shape << "+spmm";
        } else {
            out_numel = a.nnz();
        }
        graph.markOutput(e, "out");
    } else {
        int64_t fout = rng->uniformRange(1, 8);
        inputs.emplace("x", NDArray::fromFloat(
                                randomValues(rng, a.cols * feat)));
        inputs.emplace("w", NDArray::fromFloat(
                                randomValues(rng, feat * fout)));
        int x = graph.denseInput("x", a.cols, feat);
        int w = graph.denseInput("w", feat, fout);
        bool mean = rng->uniformInt(2) == 0;
        int h = graph.aggregate(pattern, x, mean);
        graph.markOutput(graph.update(h, w), "out");
        out_numel = a.rows * fout;
        shape << (mean ? "mean-aggregate" : "aggregate") << "+update";
    }

    if (envU64("FUZZ_VERBOSE", 0) != 0) {
        std::fprintf(stderr, "[fuzz]   dfg %s\n",
                     shape.str().c_str());
    }

    std::map<std::string, NDArray *> io;
    for (auto &[name, array] : inputs) {
        io[name] = &array;
    }
    NDArray expected({out_numel}, ir::DataType::float32());
    io["out"] = &expected;
    engine::GraphDispatchOptions chain_opts;
    chain_opts.fuse = false;
    pool->get(kReference, params.workers, params.minChunk)
        .dispatchGraph(graph, io, chain_opts);

    for (const Config &variant : kVariants) {
        Engine &eng =
            pool->get(variant, params.workers, params.minChunk);
        for (bool fuse : {false, true}) {
            NDArray c({out_numel}, ir::DataType::float32());
            io["out"] = &c;
            engine::GraphDispatchOptions options;
            options.fuse = fuse;
            auto info = eng.dispatchGraph(graph, io, options);
            if (fuse && expect_chain_kernels > 0) {
                ASSERT_EQ(info.numKernels, expect_chain_kernels)
                    << variant.name
                    << " fused an interior-gather dfg "
                    << shape.str() << " " << what;
            }
            ASSERT_TRUE(bitwiseEqual(expected, c))
                << variant.name << (fuse ? " fused" : " chain")
                << " diverged on dfg " << shape.str() << " " << what;
        }
    }
}

TEST(FuzzDifferential, ThreeWayBitwiseEquality)
{
    uint64_t seed = envU64("FUZZ_SEED", kDefaultSeed);
    uint64_t cases = envU64("FUZZ_CASES", 200);
    uint64_t only = envU64("FUZZ_CASE", kAllCases);
    // A replay index from a long run (FUZZ_CASES > default) must
    // still be reachable without restating FUZZ_CASES.
    uint64_t limit =
        only != kAllCases ? std::max(cases, only + 1) : cases;
    EnginePool pool;

    for (uint64_t i = 0; i < limit; ++i) {
        if (only != kAllCases && i != only) {
            continue;
        }
        Rng rng(mix(seed, i));
        std::string structure;
        Csr a = randomStructure(&rng, &structure);
        CaseParams params = randomParams(&rng);
        std::string what = describe(seed, i, structure, params);
        SCOPED_TRACE(what);
        if (envU64("FUZZ_VERBOSE", 0) != 0) {
            std::fprintf(stderr, "[fuzz] %s\n", what.c_str());
        }

        // An escaping exception (a backend bounds fault, say) is as
        // much a finding as a bitwise divergence — report it with
        // the replay line instead of letting it abort the run
        // caseless.
        try {
            runHybCase(&pool, a, params, &rng, what);
            if (!::testing::Test::HasFatalFailure() && i % 4 == 3) {
                runBatchCase(&pool, a, params, &rng, what);
            }
            if (!::testing::Test::HasFatalFailure() && i % 5 == 4) {
                runBsrCase(&pool, a, params, &rng, what);
            }
            if (!::testing::Test::HasFatalFailure() && i % 3 == 1) {
                runGraphCase(&pool, a, params, &rng, what);
            }
        } catch (const std::exception &e) {
            FAIL() << "exception escaped " << what << "\n  "
                   << e.what();
        }
        if (::testing::Test::HasFatalFailure()) {
            return;
        }
    }

    // The native axis must have actually run on the .so tier: every
    // native engine promoted its artifacts, nothing fell back to
    // bytecode (an ineligible kernel is a counted fallback — the
    // matrix would pass bitwise on the bytecode fallback path, so a
    // silent skip of the native backend has to be unrepresentable).
    for (Engine *eng : pool.nativeEngines()) {
        engine::NativeStats stats = eng->nativeStats();
        EXPECT_GT(stats.promotions, 0u)
            << "a native-variant engine never promoted";
        EXPECT_EQ(stats.fallbacks, 0u)
            << "a fuzz-generated kernel was native-ineligible";
        EXPECT_GT(stats.compiles + stats.diskHits, 0u)
            << "a native-variant engine served zero native kernels";
    }
}

TEST(FuzzDifferential, AllZeroMatrixRejectedOnEveryPath)
{
    // The hyb pipeline refuses a matrix with no non-zeros; fused and
    // barriered sessions must agree (and leave the output untouched).
    Csr empty;
    empty.rows = 6;
    empty.cols = 5;
    empty.indptr.assign(7, 0);
    int64_t feat = 4;
    NDArray b = NDArray::fromFloat(
        testutil::randomVector(empty.cols * feat, 3));
    for (bool fused : {true, false}) {
        EngineOptions options;
        options.fusedDispatch = fused;
        options.numThreads = 2;
        Engine eng(options);
        NDArray c({empty.rows * feat}, ir::DataType::float32());
        EXPECT_THROW(eng.spmmHyb(empty, feat, &b, &c), UserError);
    }
}

TEST(FuzzDifferential, ArtifactsVerifyClean)
{
    // Fresh engine with verification forced on: a fuzz-style case's
    // artifacts (hyb buckets + bsr) all carry clean verdicts. The
    // main matrix runs with verification on too (see EnginePool);
    // this pins the counters so a silently-disabled verifier cannot
    // turn the soak test into a no-op.
    Rng rng(mix(kDefaultSeed, 0x5EED));
    std::string structure;
    Csr a = randomStructure(&rng, &structure);
    CaseParams params = randomParams(&rng);
    EnginePool pool;
    runHybCase(&pool, a, params, &rng, structure);
    runBsrCase(&pool, a, params, &rng, structure);

    Engine &reference =
        pool.get(kReference, params.workers, params.minChunk);
    auto stats = reference.cacheStats();
    EXPECT_GT(stats.verifiedKernels, 0u) << structure;
    EXPECT_EQ(stats.verifyFailures, 0u) << structure;
}

TEST(FuzzDifferential, WarmFuzzPathsNeverProbeTheGrid)
{
    // A replay of one fuzz-style case, then the no-probe assertion
    // the process-global counter reset makes possible: EVERY warm
    // dispatch (serial, barriered, fused, both backends) must size
    // its grid from the spilled block-extent expression.
    Rng rng(mix(kDefaultSeed, 0xABCDEF));
    std::string structure;
    Csr a = randomStructure(&rng, &structure);
    CaseParams params = randomParams(&rng);
    EnginePool pool;
    runHybCase(&pool, a, params, &rng, structure);  // prime + check

    runtime::resetLaunchProbeCount();
    runHybCase(&pool, a, params, &rng, structure);  // warm replay
    EXPECT_EQ(runtime::launchProbeCount(), 0u)
        << "a warm fuzz dispatch probed the launch grid through the "
           "interpreter";
}

} // namespace
} // namespace sparsetir
