/**
 * @file
 * Reproduces Figure 16: sparse-attention operators (multi-head SpMM
 * and SDDMM) on Longformer band and Pixelated Butterfly masks,
 * normalized against Triton's block-sparse kernels.
 */

#include <cstdio>

#include "bench_util.h"
#include "graph/attention_masks.h"
#include "model/attention.h"

using namespace sparsetir;

namespace {

void
runDevice(const gpusim::GpuSpec &spec, const model::AttentionConfig &cfg)
{
    gpusim::Device device(spec);
    std::printf("\n--- %s ---\n", spec.name.c_str());
    std::printf("%-12s %-12s %8s %10s %10s\n", "op", "pattern",
                "Triton", "ST-CSR", "ST-BSR");

    format::Csr butterfly =
        graph::butterflyMask(cfg.seqLen, cfg.blockSize);
    format::Csr band = graph::bandMask(cfg.seqLen, 256);

    auto report = [&](const char *op, const char *pattern,
                      const model::AttentionTimes &t) {
        std::printf("%-12s %-12s %8.2f %10.2f %10.2f\n", op, pattern,
                    1.0, t.tritonMs / t.sparsetirCsrMs,
                    t.tritonMs / t.sparsetirBsrMs);
    };
    report("SpMM", "Butterfly",
           model::attentionSpmm(butterfly, cfg, device));
    report("SpMM", "Longformer",
           model::attentionSpmm(band, cfg, device));
    report("SDDMM", "Butterfly",
           model::attentionSddmm(butterfly, cfg, device));
    report("SDDMM", "Longformer",
           model::attentionSddmm(band, cfg, device));
}

} // namespace

int
main()
{
    benchutil::printHeader(
        "Figure 16: sparse transformer operators vs Triton "
        "(4096x4096, 12 heads, band 256, head dim 64)");
    model::AttentionConfig cfg;
    if (benchutil::fastMode()) {
        cfg.seqLen = 1024;
        cfg.heads = 2;
    }
    runDevice(gpusim::GpuSpec::v100(), cfg);
    runDevice(gpusim::GpuSpec::rtx3070(), cfg);
    std::printf(
        "\nPaper: SparseTIR-BSR 1.05-1.6x (SpMM) and 1.5-3.0x (SDDMM) "
        "vs Triton; SparseTIR-CSR\ncollapses to 0.04-0.08x because "
        "scalar CSR kernels cannot use Tensor Cores.\nExpected shape: "
        "BSR > Triton >> CSR.\n");
    return 0;
}
