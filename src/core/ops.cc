#include "core/ops.h"

#include "ir/analysis.h"
#include "ir/builder.h"
#include "transform/stage1_schedule.h"

namespace sparsetir {
namespace core {

using namespace ir;

PrimFunc
buildSpmm()
{
    SparseTirBuilder b("spmm");
    Var m = b.scalarParam("m");
    Var n = b.scalarParam("n");
    Var nnz = b.scalarParam("nnz");
    Var feat = b.scalarParam("feat_size");
    Axis i_axis = b.addDenseFixed("I", m);
    Axis j_axis = b.addSparseVariable("J", i_axis, n, nnz);
    Axis jd_axis = b.addDenseFixed("J_", n);
    Axis k_axis = b.addDenseFixed("K", feat);
    Buffer a = b.addSparseBuffer("A", {i_axis, j_axis});
    Buffer x = b.addSparseBuffer("B", {jd_axis, k_axis});
    Buffer c = b.addSparseBuffer("C", {i_axis, k_axis});
    b.spIter(
        {i_axis, j_axis, k_axis}, "SRS", "spmm",
        [&](const std::vector<Var> &v) {
            return bufferStore(
                c, {v[0], v[2]},
                add(bufferLoad(c, {v[0], v[2]}),
                    mul(bufferLoad(a, {v[0], v[1]}),
                        bufferLoad(x, {v[1], v[2]}))));
        },
        [&](const std::vector<Var> &v) {
            return bufferStore(c, {v[0], v[2]}, floatImm(0.0f));
        });
    return b.finish();
}

PrimFunc
buildSddmm(bool fuse_ij)
{
    SparseTirBuilder b("sddmm");
    Var m = b.scalarParam("m");
    Var n = b.scalarParam("n");
    Var nnz = b.scalarParam("nnz");
    Var feat = b.scalarParam("feat_size");
    Axis i_axis = b.addDenseFixed("I", m);
    Axis j_axis = b.addSparseVariable("J", i_axis, n, nnz);
    Axis id_axis = b.addDenseFixed("I_", m);
    Axis jd_axis = b.addDenseFixed("J_", n);
    Axis k_axis = b.addDenseFixed("K", feat);
    Buffer a = b.addSparseBuffer("A", {i_axis, j_axis});
    Buffer x = b.addSparseBuffer("X", {id_axis, k_axis});
    Buffer y = b.addSparseBuffer("Y", {k_axis, jd_axis});
    Buffer out = b.addSparseBuffer("B", {i_axis, j_axis});
    b.spIter(
        {i_axis, j_axis, k_axis}, "SSR", "sddmm",
        [&](const std::vector<Var> &v) {
            return bufferStore(
                out, {v[0], v[1]},
                add(bufferLoad(out, {v[0], v[1]}),
                    mul(mul(bufferLoad(a, {v[0], v[1]}),
                            bufferLoad(x, {v[0], v[2]})),
                        bufferLoad(y, {v[2], v[1]}))));
        },
        [&](const std::vector<Var> &v) {
            return bufferStore(out, {v[0], v[1]}, floatImm(0.0f));
        });
    PrimFunc func = b.finish();
    if (fuse_ij) {
        func = transform::sparseFuse(func, "sddmm", {"I", "J"});
    }
    return func;
}

PrimFunc
buildBsrSpmm(int block_size)
{
    SparseTirBuilder b("bsr_spmm");
    Var mb = b.scalarParam("mb");    // block rows
    Var nb = b.scalarParam("nb");    // block cols
    Var nnzb = b.scalarParam("nnzb");
    Var feat = b.scalarParam("feat_size");
    Axis io = b.addDenseFixed("IO", mb);
    Axis jo = b.addSparseVariable("JO", io, nb, nnzb);
    Axis ii = b.addDenseFixed("II", intImm(block_size));
    Axis ji = b.addDenseFixed("JI", intImm(block_size));
    Axis jd = b.addDenseFixed("J_", mul(nb, intImm(block_size)));
    Axis k_axis = b.addDenseFixed("K", feat);
    Axis id = b.addDenseFixed("I_", mul(mb, intImm(block_size)));
    Buffer a = b.addSparseBuffer("A", {io, jo, ii, ji});
    Buffer x = b.addSparseBuffer("B", {jd, k_axis});
    Buffer c = b.addSparseBuffer("C", {id, k_axis});
    Expr bs = intImm(block_size);
    // Iteration order keeps the intra-block (ii, ji) loops innermost
    // so the tensorized MMA consumes whole fragments: the simulator
    // and codegen then see one cooperative block-load per (jo, k)
    // tile instead of per-thread scalar traffic.
    b.spIter(
        {io, jo, k_axis, ii, ji}, "SRSSR", "bsr_spmm",
        [&](const std::vector<Var> &v) {
            // v = [io, jo, k, ii, ji]
            Expr row = add(mul(v[0], bs), v[3]);
            Expr col = add(mul(v[1], bs), v[4]);
            return bufferStore(
                c, {row, v[2]},
                add(bufferLoad(c, {row, v[2]}),
                    mul(bufferLoad(a, {v[0], v[1], v[3], v[4]}),
                        bufferLoad(x, {col, v[2]}))));
        },
        [&](const std::vector<Var> &v) {
            Expr row = add(mul(v[0], bs), v[3]);
            return bufferStore(c, {row, v[2]}, floatImm(0.0f));
        });
    return b.finish();
}

PrimFunc
buildBsrSddmm(int block_size)
{
    SparseTirBuilder b("bsr_sddmm");
    Var mb = b.scalarParam("mb");    // block rows
    Var nb = b.scalarParam("nb");    // block cols
    Var nnzb = b.scalarParam("nnzb");
    Var feat = b.scalarParam("feat_size");
    Axis io = b.addDenseFixed("IO", mb);
    Axis jo = b.addSparseVariable("JO", io, nb, nnzb);
    Axis ii = b.addDenseFixed("II", intImm(block_size));
    Axis ji = b.addDenseFixed("JI", intImm(block_size));
    Axis id = b.addDenseFixed("I_", mul(mb, intImm(block_size)));
    Axis jd = b.addDenseFixed("J_", mul(nb, intImm(block_size)));
    Axis k_axis = b.addDenseFixed("K", feat);
    Buffer x = b.addSparseBuffer("X", {id, k_axis});
    Buffer y = b.addSparseBuffer("Y", {k_axis, jd});
    Buffer out = b.addSparseBuffer("B", {io, jo, ii, ji});
    Expr bs = intImm(block_size);
    b.spIter(
        {io, jo, ii, ji, k_axis}, "SSSSR", "bsr_sddmm",
        [&](const std::vector<Var> &v) {
            // v = [io, jo, ii, ji, k]
            Expr row = add(mul(v[0], bs), v[2]);
            Expr col = add(mul(v[1], bs), v[3]);
            return bufferStore(
                out, {v[0], v[1], v[2], v[3]},
                add(bufferLoad(out, {v[0], v[1], v[2], v[3]}),
                    mul(bufferLoad(x, {row, v[4]}),
                        bufferLoad(y, {v[4], col}))));
        },
        [&](const std::vector<Var> &v) {
            return bufferStore(out, {v[0], v[1], v[2], v[3]},
                               floatImm(0.0f));
        });
    return b.finish();
}

PrimFunc
buildSrbcrsSpmm(int tile_height, int group_size)
{
    SparseTirBuilder b("srbcrs_spmm");
    Var stripes = b.scalarParam("stripes");
    Var n = b.scalarParam("n");
    Var total_groups = b.scalarParam("total_groups");
    Var feat = b.scalarParam("feat_size");
    // S: stripe axis; G: variable groups per stripe; T: g tiles per
    // group carrying column indices; V: t rows inside a tile.
    Axis s_axis = b.addDenseFixed("S", stripes);
    Axis g_axis =
        b.addDenseVariable("G", s_axis, total_groups, total_groups);
    Axis t_axis = b.addSparseFixed("T", g_axis, n, intImm(group_size));
    Axis v_axis = b.addDenseFixed("V", intImm(tile_height));
    Axis jd = b.addDenseFixed("J_", n);
    Axis k_axis = b.addDenseFixed("K", feat);
    Axis id = b.addDenseFixed("I_", mul(stripes, intImm(tile_height)));
    Buffer a = b.addSparseBuffer("A", {s_axis, g_axis, t_axis, v_axis});
    Buffer x = b.addSparseBuffer("B", {jd, k_axis});
    Buffer c = b.addSparseBuffer("C", {id, k_axis});
    Expr th = intImm(tile_height);
    b.spIter(
        {s_axis, g_axis, t_axis, v_axis, k_axis}, "SRRSS",
        "srbcrs_spmm",
        [&](const std::vector<Var> &v) {
            // v = [s, g, t, vi, k]; the coordinate of t is the column.
            Expr row = add(mul(v[0], th), v[3]);
            return bufferStore(
                c, {row, v[4]},
                add(bufferLoad(c, {row, v[4]}),
                    mul(bufferLoad(a, {v[0], v[1], v[2], v[3]}),
                        bufferLoad(x, {v[2], v[4]}))));
        },
        [&](const std::vector<Var> &v) {
            Expr row = add(mul(v[0], th), v[3]);
            return bufferStore(c, {row, v[4]}, floatImm(0.0f));
        });
    return b.finish();
}

PrimFunc
buildEllRgms(int64_t num_rows, int width, int64_t feat_in,
             int64_t feat_out, const std::string &suffix)
{
    SparseTirBuilder b("rgms_" + suffix);
    Var m = b.scalarParam("m");
    Var n = b.scalarParam("n");
    // Feature sizes are baked in as constants: the fused RGMS kernel
    // is specialized per model configuration, which lets cache_read
    // stage the whole weight tile and keeps every dense loop extent
    // static for scheduling.
    Expr fin = intImm(feat_in);
    Expr fout = intImm(feat_out);
    Axis o_axis = b.addDenseFixed("O" + suffix, intImm(1));
    Axis i_axis =
        b.addSparseFixed("I" + suffix, o_axis, m, intImm(num_rows));
    Axis j_axis =
        b.addSparseFixed("J" + suffix, i_axis, n, intImm(width));
    Axis jd = b.addDenseFixed("J_", n);
    Axis k_axis = b.addDenseFixed("K", fin);
    Axis l_axis = b.addDenseFixed("L", fout);
    Axis id = b.addDenseFixed("I_", m);
    Buffer a = b.addSparseBuffer("A" + suffix, {o_axis, i_axis, j_axis});
    Buffer x = b.addSparseBuffer("X", {jd, k_axis});
    Buffer w = b.addSparseBuffer("W", {k_axis, l_axis});
    Buffer y = b.addSparseBuffer("Y", {id, l_axis});
    b.spIter(
        {o_axis, i_axis, j_axis, k_axis, l_axis}, "SSRRS",
        "rgms_" + suffix,
        [&](const std::vector<Var> &v) {
            // v = [o, i, j, k, l]; i and j stand for coordinates (the
            // original row id and the neighbour column).
            return bufferStore(
                y, {v[1], v[4]},
                add(bufferLoad(y, {v[1], v[4]}),
                    mul(mul(bufferLoad(a, {v[0], v[1], v[2]}),
                            bufferLoad(x, {v[2], v[3]})),
                        bufferLoad(w, {v[3], v[4]}))));
        },
        [&](const std::vector<Var> &v) {
            return bufferStore(y, {v[1], v[4]}, floatImm(0.0f));
        });
    return b.finish();
}

transform::FormatRewriteRule
ellRule(const std::string &suffix, int64_t m, int64_t n, int64_t num_rows,
        int width)
{
    transform::FormatRewriteRule rule;
    rule.name = "ell_" + suffix;
    rule.bufferName = "A";
    Axis o_axis = denseFixed("O" + suffix, intImm(1));
    Var i_indices = var("I" + suffix + "_indices", DataType::handle());
    Axis i_axis = sparseFixed("I" + suffix, o_axis, intImm(m),
                              intImm(num_rows), i_indices);
    Var j_indices = var("J" + suffix + "_indices", DataType::handle());
    Axis j_axis = sparseFixed("J" + suffix, i_axis, intImm(n),
                              intImm(width), j_indices);
    rule.newAxes = {o_axis, i_axis, j_axis};
    rule.newBuffer =
        matchSparseBuffer("A_" + rule.name, {o_axis, i_axis, j_axis});
    rule.axisMap = {{"I", {"O" + suffix, "I" + suffix}},
                    {"J", {"J" + suffix}}};
    rule.invIndexMap = [](const std::vector<Expr> &coords) {
        // (o, i, j) -> (i, j)
        return std::vector<Expr>{coords[1], coords[2]};
    };
    rule.fwdIndexMap = [](const std::vector<Expr> &coords) {
        // (i, j) -> (o, i, j)
        return std::vector<Expr>{intImm(0), coords[0], coords[1]};
    };
    return rule;
}

transform::FormatRewriteRule
bsrRule(const std::string &suffix, int64_t m, int64_t n, int block_size,
        int64_t block_rows, int64_t nnz_blocks)
{
    transform::FormatRewriteRule rule;
    rule.name = "bsr_" + suffix;
    rule.bufferName = "A";
    Var indptr = var("IO" + suffix + "_indptr", DataType::handle());
    Var indices = var("JO" + suffix + "_indices", DataType::handle());
    Axis io = denseFixed("IO" + suffix, intImm(block_rows));
    Axis jo = sparseVariable("JO" + suffix, io,
                             intImm((n + block_size - 1) / block_size),
                             intImm(nnz_blocks), indptr, indices);
    Axis ii = denseFixed("II" + suffix, intImm(block_size));
    Axis ji = denseFixed("JI" + suffix, intImm(block_size));
    rule.newAxes = {io, jo, ii, ji};
    rule.newBuffer =
        matchSparseBuffer("A_" + rule.name, {io, jo, ii, ji});
    rule.axisMap = {{"I", {"IO" + suffix, "II" + suffix}},
                    {"J", {"JO" + suffix, "JI" + suffix}}};
    Expr bs = intImm(block_size);
    rule.invIndexMap = [bs](const std::vector<Expr> &coords) {
        // (io, jo, ii, ji) -> (io*b+ii, jo*b+ji)
        return std::vector<Expr>{add(mul(coords[0], bs), coords[2]),
                                 add(mul(coords[1], bs), coords[3])};
    };
    rule.fwdIndexMap = [bs](const std::vector<Expr> &coords) {
        return std::vector<Expr>{
            floorDiv(coords[0], bs), floorDiv(coords[1], bs),
            floorMod(coords[0], bs), floorMod(coords[1], bs)};
    };
    return rule;
}

std::vector<PrimFunc>
splitIterations(const PrimFunc &func)
{
    std::vector<PrimFunc> out;
    auto iterations = collectSparseIterations(func->body);
    out.reserve(iterations.size());
    for (const auto &iter : iterations) {
        PrimFunc piece = copyFunc(func);
        piece->name = func->name + "_" + iter->name;
        piece->body = iter;
        out.push_back(piece);
    }
    return out;
}

} // namespace core
} // namespace sparsetir
