#include "dfg/op_graph.h"

#include <algorithm>

#include "engine/fingerprint.h"
#include "support/logging.h"

namespace sparsetir {
namespace dfg {

int32_t
SparsityPattern::maxRowNnz() const
{
    int32_t widest = 0;
    for (size_t i = 0; i + 1 < indptr.size(); ++i) {
        widest = std::max(widest, indptr[i + 1] - indptr[i]);
    }
    return widest;
}

uint64_t
SparsityPattern::structureHash() const
{
    if (!hashed_) {
        structure_hash_ = engine::Fingerprint()
                              .i64(rows)
                              .i64(cols)
                              .i32s(indptr)
                              .i32s(indices)
                              .digest();
        hashed_ = true;
    }
    return structure_hash_;
}

std::shared_ptr<const SparsityPattern>
SparsityPattern::fromCsr(const format::Csr &a)
{
    auto pattern = std::make_shared<SparsityPattern>();
    pattern->rows = a.rows;
    pattern->cols = a.cols;
    pattern->indptr = a.indptr;
    pattern->indices = a.indices;
    USER_CHECK(pattern->indptr.size() ==
               static_cast<size_t>(a.rows) + 1)
        << "CSR indptr has " << pattern->indptr.size()
        << " entries for " << a.rows << " rows";
    // Prime the hash cache while the pattern is still exclusively
    // owned; concurrent dispatches then only ever read it.
    pattern->structureHash();
    return pattern;
}

const char *
opTypeName(OpType type)
{
    switch (type) {
      case OpType::kSddmm:
        return "sddmm";
      case OpType::kMaskedSoftmax:
        return "masked_softmax";
      case OpType::kSpmm:
        return "spmm";
      case OpType::kElementwise:
        return "elementwise";
      case OpType::kAggregate:
        return "aggregate";
      case OpType::kUpdate:
        return "update";
      case OpType::kAdd:
        return "add";
    }
    return "unknown";
}

namespace {

/** Binding names must be usable as buffer/param identifiers. */
void
checkName(const std::string &name)
{
    USER_CHECK(!name.empty()) << "graph value names must be non-empty";
    USER_CHECK(name[0] != 'J' && name.rfind("t_", 0) != 0 &&
               name.rfind("acc", 0) != 0)
        << "graph value name '" << name
        << "' collides with reserved kernel buffer names "
           "(J* structure arrays, t_* intermediates, acc* locals)";
}

} // namespace

void
OpGraph::checkNewName(const std::string &name) const
{
    checkName(name);
    // Lowering keys buffers by name: two values sharing one name
    // would silently alias into one buffer, and the dispatch io map
    // could never address them separately.
    for (const ValueDesc &desc : values_) {
        USER_CHECK(desc.name != name)
            << "graph value name '" << name
            << "' is already bound to another value in this graph";
    }
}

int
OpGraph::addValue(ValueDesc desc)
{
    values_.push_back(std::move(desc));
    return static_cast<int>(values_.size()) - 1;
}

int
OpGraph::addNode(Node node, ValueDesc out)
{
    out.producer = static_cast<int>(nodes_.size());
    int id = addValue(std::move(out));
    node.output = id;
    nodes_.push_back(std::move(node));
    return id;
}

const ValueDesc &
OpGraph::checkValue(int id, const char *what) const
{
    USER_CHECK(id >= 0 && id < static_cast<int>(values_.size()))
        << what << ": value id " << id << " is not in this graph";
    return values_[static_cast<size_t>(id)];
}

void
OpGraph::meetRows(int64_t rows)
{
    if (rows_ == 0) {
        rows_ = rows;
        return;
    }
    USER_CHECK(rows_ == rows)
        << "graph nodes must share one row iteration space: have "
        << rows_ << " rows, new node iterates " << rows;
}

int
OpGraph::denseInput(const std::string &name, int64_t rows, int64_t cols)
{
    checkNewName(name);
    USER_CHECK(rows > 0 && cols > 0)
        << "dense input '" << name << "' needs positive shape, got "
        << rows << " x " << cols;
    ValueDesc desc;
    desc.rows = rows;
    desc.cols = cols;
    desc.name = name;
    int id = addValue(std::move(desc));
    inputs_.push_back(id);
    return id;
}

int
OpGraph::edgeInput(const std::string &name, const PatternRef &pattern)
{
    checkNewName(name);
    USER_CHECK(pattern != nullptr) << "edge input needs a pattern";
    ValueDesc desc;
    desc.edge = true;
    desc.rows = pattern->rows;
    desc.pattern = pattern;
    desc.name = name;
    int id = addValue(std::move(desc));
    inputs_.push_back(id);
    return id;
}

int
OpGraph::sddmm(const PatternRef &pattern, int x, int y)
{
    USER_CHECK(pattern != nullptr) << "sddmm needs a pattern";
    const ValueDesc &vx = checkValue(x, "sddmm lhs");
    const ValueDesc &vy = checkValue(y, "sddmm rhs");
    USER_CHECK(!vx.edge && !vy.edge) << "sddmm operands must be dense";
    USER_CHECK(vx.rows == pattern->rows)
        << "sddmm lhs has " << vx.rows << " rows, pattern has "
        << pattern->rows;
    USER_CHECK(vy.cols == pattern->cols)
        << "sddmm rhs has " << vy.cols << " cols, pattern has "
        << pattern->cols;
    USER_CHECK(vx.cols == vy.rows)
        << "sddmm inner dims disagree: " << vx.cols << " vs " << vy.rows;
    meetRows(pattern->rows);
    Node node;
    node.type = OpType::kSddmm;
    node.inputs = {x, y};
    node.pattern = pattern;
    ValueDesc out;
    out.edge = true;
    out.rows = pattern->rows;
    out.pattern = pattern;
    return addNode(std::move(node), std::move(out));
}

int
OpGraph::maskedSoftmax(int e)
{
    const ValueDesc &ve = checkValue(e, "masked_softmax input");
    USER_CHECK(ve.edge) << "masked_softmax input must be an edge tensor";
    meetRows(ve.pattern->rows);
    Node node;
    node.type = OpType::kMaskedSoftmax;
    node.inputs = {e};
    node.pattern = ve.pattern;
    ValueDesc out;
    out.edge = true;
    out.rows = ve.rows;
    out.pattern = ve.pattern;
    return addNode(std::move(node), std::move(out));
}

int
OpGraph::spmm(int e, int b)
{
    const ValueDesc &ve = checkValue(e, "spmm values");
    const ValueDesc &vb = checkValue(b, "spmm dense rhs");
    USER_CHECK(ve.edge) << "spmm values must be an edge tensor";
    USER_CHECK(!vb.edge) << "spmm rhs must be dense";
    USER_CHECK(vb.rows == ve.pattern->cols)
        << "spmm rhs has " << vb.rows << " rows, pattern has "
        << ve.pattern->cols << " cols";
    meetRows(ve.pattern->rows);
    Node node;
    node.type = OpType::kSpmm;
    node.inputs = {e, b};
    node.pattern = ve.pattern;
    ValueDesc out;
    out.rows = ve.pattern->rows;
    out.cols = vb.cols;
    return addNode(std::move(node), std::move(out));
}

int
OpGraph::elementwise(int e, EwiseFn fn, double scale)
{
    const ValueDesc &ve = checkValue(e, "elementwise input");
    USER_CHECK(ve.edge) << "elementwise input must be an edge tensor";
    meetRows(ve.pattern->rows);
    Node node;
    node.type = OpType::kElementwise;
    node.inputs = {e};
    node.pattern = ve.pattern;
    node.fn = fn;
    node.scale = scale;
    ValueDesc out;
    out.edge = true;
    out.rows = ve.rows;
    out.pattern = ve.pattern;
    return addNode(std::move(node), std::move(out));
}

int
OpGraph::aggregate(const PatternRef &pattern, int x, bool mean)
{
    USER_CHECK(pattern != nullptr) << "aggregate needs a pattern";
    const ValueDesc &vx = checkValue(x, "aggregate input");
    USER_CHECK(!vx.edge) << "aggregate input must be dense";
    USER_CHECK(vx.rows == pattern->cols)
        << "aggregate input has " << vx.rows << " rows, pattern has "
        << pattern->cols << " cols";
    meetRows(pattern->rows);
    Node node;
    node.type = OpType::kAggregate;
    node.inputs = {x};
    node.pattern = pattern;
    node.mean = mean;
    ValueDesc out;
    out.rows = pattern->rows;
    out.cols = vx.cols;
    return addNode(std::move(node), std::move(out));
}

int
OpGraph::update(int h, int w)
{
    const ValueDesc &vh = checkValue(h, "update input");
    const ValueDesc &vw = checkValue(w, "update weight");
    USER_CHECK(!vh.edge && !vw.edge) << "update operands must be dense";
    USER_CHECK(vh.cols == vw.rows)
        << "update inner dims disagree: " << vh.cols << " vs "
        << vw.rows;
    meetRows(vh.rows);
    Node node;
    node.type = OpType::kUpdate;
    node.inputs = {h, w};
    ValueDesc out;
    out.rows = vh.rows;
    out.cols = vw.cols;
    return addNode(std::move(node), std::move(out));
}

int
OpGraph::add(int a, int b)
{
    const ValueDesc &va = checkValue(a, "add lhs");
    const ValueDesc &vb = checkValue(b, "add rhs");
    USER_CHECK(!va.edge && !vb.edge) << "add operands must be dense";
    USER_CHECK(va.rows == vb.rows && va.cols == vb.cols)
        << "add operands disagree: " << va.rows << "x" << va.cols
        << " vs " << vb.rows << "x" << vb.cols;
    meetRows(va.rows);
    Node node;
    node.type = OpType::kAdd;
    node.inputs = {a, b};
    ValueDesc out;
    out.rows = va.rows;
    out.cols = va.cols;
    return addNode(std::move(node), std::move(out));
}

void
OpGraph::markOutput(int value, const std::string &name)
{
    checkNewName(name);
    checkValue(value, "markOutput");
    ValueDesc &desc = values_[static_cast<size_t>(value)];
    USER_CHECK(desc.producer >= 0)
        << "graph output '" << name << "' must be produced by a node";
    USER_CHECK(desc.name.empty())
        << "value already named '" << desc.name << "'";
    desc.name = name;
    outputs_.push_back(value);
}

int64_t
OpGraph::totalNnz() const
{
    int64_t total = 0;
    for (const Node &node : nodes_) {
        if (node.pattern != nullptr) {
            total += node.pattern->nnz();
        }
    }
    return total;
}

uint64_t
OpGraph::topologyFingerprint() const
{
    engine::Fingerprint fp;
    fp.i64(static_cast<int64_t>(values_.size()));
    for (const ValueDesc &desc : values_) {
        fp.i64(desc.edge ? 1 : 0)
            .i64(desc.rows)
            .i64(desc.cols)
            .i64(desc.producer)
            .str(desc.name);
        fp.i64(desc.pattern != nullptr
                   ? static_cast<int64_t>(desc.pattern->structureHash())
                   : 0);
    }
    fp.i64(static_cast<int64_t>(nodes_.size()));
    for (const Node &node : nodes_) {
        fp.i64(static_cast<int64_t>(node.type));
        fp.i64(static_cast<int64_t>(node.inputs.size()));
        for (int input : node.inputs) {
            fp.i64(input);
        }
        fp.i64(node.output);
        fp.i64(node.pattern != nullptr
                   ? static_cast<int64_t>(node.pattern->structureHash())
                   : 0);
        fp.i64(static_cast<int64_t>(node.fn));
        fp.bytes(&node.scale, sizeof(node.scale));
        fp.i64(node.mean ? 1 : 0);
    }
    return fp.digest();
}

} // namespace dfg
} // namespace sparsetir
