/**
 * @file
 * Sparse buffer lowering: Stage II -> Stage III (paper §3.4.1).
 *
 * Removes all sparse constructs: every multi-dimensional buffer access
 * (sparse or dense) is rewritten to a flat 1-D access. Sparse buffer
 * offsets follow eqs. 6-8: per-axis offsets chain through indptr
 * lookups and strides multiply the non-zero counts of dependent
 * subtrees.
 */

#ifndef SPARSETIR_TRANSFORM_LOWER_SPARSE_BUFFER_H_
#define SPARSETIR_TRANSFORM_LOWER_SPARSE_BUFFER_H_

#include <string>

#include "ir/prim_func.h"

namespace sparsetir {
namespace transform {

/**
 * Flatten all buffers of a Stage II function, producing Stage III.
 * The input function is not modified.
 */
ir::PrimFunc lowerSparseBuffers(const ir::PrimFunc &func);

/** Total storage slots of a sparse buffer (product form of eq. 8). */
ir::Expr sparseBufferSlots(const ir::Buffer &buffer);

/**
 * Stage III executability check: names the first construct that
 * prevents flat host execution of `func` — a Stage I sparse
 * iteration, a multi-dimensional sparse buffer access (run
 * lowerSparseBuffers first), vector IR (Ramp/Broadcast) or an extern
 * call — or returns an empty string when the function is executable
 * by the scalar host backends. Already-flat (single-index) accesses
 * pass regardless of the buffer's declared sparsity, matching the
 * interpreter's acceptance of partially lowered Stage II functions.
 * The bytecode backend consults this before compiling.
 */
std::string stage3ExecDiagnostic(const ir::PrimFunc &func);

} // namespace transform
} // namespace sparsetir

#endif // SPARSETIR_TRANSFORM_LOWER_SPARSE_BUFFER_H_
