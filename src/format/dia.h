/**
 * @file
 * Diagonal (DIA) storage, used for band matrices such as the
 * Longformer attention mask (paper §4.3.1).
 */

#ifndef SPARSETIR_FORMAT_DIA_H_
#define SPARSETIR_FORMAT_DIA_H_

#include <cstdint>
#include <vector>

#include "format/csr.h"

namespace sparsetir {
namespace format {

/** DIA matrix: one dense row of length `rows` per stored diagonal. */
struct Dia
{
    int64_t rows = 0;
    int64_t cols = 0;
    /** Diagonal offsets (col - row), ascending. */
    std::vector<int32_t> offsets;
    /** offsets.size() * rows values, indexed [diag][row]. */
    std::vector<float> data;

    int64_t numDiagonals() const
    {
        return static_cast<int64_t>(offsets.size());
    }
};

/** Convert CSR to DIA (stores every non-empty diagonal). */
Dia diaFromCsr(const Csr &m);

/** Expand to row-major dense. */
std::vector<float> diaToDense(const Dia &m);

} // namespace format
} // namespace sparsetir

#endif // SPARSETIR_FORMAT_DIA_H_
