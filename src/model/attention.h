/**
 * @file
 * Sparse attention (paper §4.3.1, Figure 16).
 *
 * Two layers:
 *
 *  - The simulator path (`attentionSpmm` / `attentionSddmm`) times
 *    the multi-head SpMM and SDDMM operators on band (Longformer)
 *    and butterfly (Pixelated Butterfly) masks against Triton's
 *    block-sparse kernels. Every SparseTIR entry — including the BSR
 *    SDDMM row-panel kernel — is a compiled IR kernel adapted through
 *    core::BoundKernel::simKernel(); nothing constructs raw
 *    gpusim::Kernel objects.
 *
 *  - The serving path (`buildAttentionGraph` / `attentionPipeline`)
 *    expresses the whole per-head pipeline
 *    (SDDMM -> masked softmax -> SpMM) as a dfg::OpGraph and routes
 *    it through engine::Engine::dispatchGraph, where it compiles to
 *    ONE fused kernel that never materializes the intermediate edge
 *    tensors.
 */

#ifndef SPARSETIR_MODEL_ATTENTION_H_
#define SPARSETIR_MODEL_ATTENTION_H_

#include <cstdint>

#include "dfg/op_graph.h"
#include "engine/engine.h"
#include "format/csr.h"
#include "gpusim/simulator.h"

namespace sparsetir {
namespace model {

struct AttentionConfig
{
    int64_t seqLen = 4096;
    int heads = 12;
    int64_t headDim = 64;
    int blockSize = 32;
};

struct AttentionTimes
{
    double tritonMs = 0.0;
    double sparsetirCsrMs = 0.0;
    double sparsetirBsrMs = 0.0;
};

/** Multi-head SpMM times on the given mask. */
AttentionTimes attentionSpmm(const format::Csr &mask,
                             const AttentionConfig &config,
                             gpusim::Device &device);

/** Multi-head SDDMM times on the given mask. */
AttentionTimes attentionSddmm(const format::Csr &mask,
                              const AttentionConfig &config,
                              gpusim::Device &device);

/**
 * One head's sparse-attention pipeline as a dataflow graph:
 * scores = SDDMM(mask, Q, K^T) scaled by 1/sqrt(headDim), attention
 * weights by masked softmax over each row's present entries, output
 * "out" = SpMM(weights, V). Inputs: "q" (seqLen x headDim), "kt"
 * (headDim x seqLen), "v" (seqLen x headDim). All four nodes share
 * the mask's pattern, so the graph fuses into a single kernel.
 */
dfg::OpGraph buildAttentionGraph(const dfg::PatternRef &mask,
                                 int64_t head_dim);

/**
 * Serve one head through the engine: builds the graph (cached by its
 * topology fingerprint after the first call) and dispatches it.
 */
engine::DispatchInfo
attentionPipeline(engine::Engine &engine, const dfg::PatternRef &mask,
                  int64_t head_dim, runtime::NDArray *q,
                  runtime::NDArray *kt, runtime::NDArray *v,
                  runtime::NDArray *out, bool fuse = true);

} // namespace model
} // namespace sparsetir

#endif // SPARSETIR_MODEL_ATTENTION_H_
