/**
 * @file
 * Observability layer: the disabled-mode zero-span guarantee (the
 * contract the untraced hot path is built on, asserted both on bare
 * macros and through a full untraced Engine session), span nesting
 * and worker-thread attribution under parallelFor, latency-histogram
 * percentiles against a sorted-vector oracle, Chrome-trace JSON
 * well-formedness, one compute span per fused task-graph unit, and
 * per-engine launch-probe attribution through ProbeCounterScope.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "engine/engine.h"
#include "engine/executor.h"
#include "engine/thread_pool.h"
#include "graph/generator.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "runtime/interpreter.h"
#include "support/rng.h"
#include "test_util.h"

namespace sparsetir {
namespace {

using engine::Engine;
using engine::EngineOptions;
using format::Csr;
using observe::TraceRecorder;
using runtime::NDArray;
using testutil::randomVector;

/** Leave the global recorder the way an untraced process has it. */
void
quiesceRecorder()
{
    TraceRecorder::global().setEnabled(false);
    TraceRecorder::global().clear();
}

// ---------------------------------------------------------------------
// Disabled mode: zero spans, zero thread registrations
// ---------------------------------------------------------------------

TEST(Observe, DisabledRecorderRecordsNothing)
{
    quiesceRecorder();
    {
        SPARSETIR_TRACE_SCOPE("test", "outer");
        SPARSETIR_TRACE_SCOPE1("test", "one", "k", 1);
        SPARSETIR_TRACE_SCOPE2("test", "two", "k", 1, "r", 2);
        observe::TraceScope manual("test", "manual");
        manual.end();
    }
    EXPECT_EQ(TraceRecorder::global().eventCount(), 0u);
    EXPECT_EQ(TraceRecorder::global().threadCount(), 0u)
        << "a disabled span must not create a thread buffer";
    EXPECT_TRUE(TraceRecorder::global().collect().empty());
}

// The ctest-level form of the same guarantee: a default (untraced)
// build running real engine traffic records zero spans — the
// instrumentation in dispatch/compile/executor paths must all be
// behind the enabled() check.
TEST(Observe, UntracedEngineSessionRecordsZeroSpans)
{
    unsetenv("SPARSETIR_TRACE");
    quiesceRecorder();

    Csr a = graph::powerLawGraph(120, 1000, 1.8, 3);
    int64_t feat = 8;
    EngineOptions options;
    options.numThreads = 4;
    Engine eng(options);  // options.trace defaults to false
    NDArray b = NDArray::fromFloat(randomVector(a.cols * feat, 7));
    NDArray c({a.rows * feat}, ir::DataType::float32());
    eng.spmmCsr(a, feat, &b, &c);
    eng.spmmCsr(a, feat, &b, &c);  // warm
    engine::HybConfig config;
    config.partitions = 2;
    eng.spmmHyb(a, feat, &b, &c, config);
    eng.spmmHyb(a, feat, &b, &c, config);  // warm

    EXPECT_FALSE(TraceRecorder::global().enabled());
    EXPECT_EQ(TraceRecorder::global().eventCount(), 0u);
    EXPECT_EQ(TraceRecorder::global().threadCount(), 0u);
}

// ---------------------------------------------------------------------
// Nesting and thread attribution
// ---------------------------------------------------------------------

TEST(Observe, SpansNestAndCarryWorkerAttribution)
{
    quiesceRecorder();
    TraceRecorder::global().setEnabled(true);
    TraceRecorder::setCurrentThreadName("main-test");

    {
        observe::TraceScope outer("test", "outer");
        engine::ThreadPool pool(4);
        pool.parallelFor(8, [](int64_t i) {
            SPARSETIR_TRACE_SCOPE1("test", "work", "i", i);
        });
    }
    {
        observe::TraceScope parent("test", "parent");
        SPARSETIR_TRACE_SCOPE("test", "child");
    }

    std::vector<observe::CollectedEvent> events =
        TraceRecorder::global().collect();

    const observe::CollectedEvent *outer = nullptr;
    const observe::CollectedEvent *parent = nullptr;
    const observe::CollectedEvent *child = nullptr;
    std::vector<const observe::CollectedEvent *> work;
    for (const auto &e : events) {
        std::string name = e.event.name;
        if (name == "outer") {
            outer = &e;
        } else if (name == "parent") {
            parent = &e;
        } else if (name == "child") {
            child = &e;
        } else if (name == "work") {
            work.push_back(&e);
        }
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(parent, nullptr);
    ASSERT_NE(child, nullptr);
    ASSERT_EQ(work.size(), 8u) << "one span per parallelFor index";

    // Every worker span falls inside the enclosing outer span and is
    // attributed to a named pool worker (never the main thread).
    std::set<int> worker_tids;
    std::set<int64_t> indices;
    for (const observe::CollectedEvent *w : work) {
        EXPECT_GE(w->event.startNs, outer->event.startNs);
        EXPECT_LE(w->event.startNs + w->event.durNs,
                  outer->event.startNs + outer->event.durNs);
        EXPECT_EQ(w->threadName.rfind("worker-", 0), 0u)
            << "got thread name " << w->threadName;
        EXPECT_NE(w->tid, outer->tid);
        worker_tids.insert(w->tid);
        ASSERT_STREQ(w->event.arg0Name, "i");
        indices.insert(w->event.arg0);
    }
    EXPECT_LE(worker_tids.size(), 4u);
    EXPECT_EQ(indices.size(), 8u) << "all 8 indices traced distinctly";

    // Same-thread lexical nesting: child inside parent, same tid.
    EXPECT_EQ(child->tid, parent->tid);
    EXPECT_EQ(parent->threadName, "main-test");
    EXPECT_GE(child->event.startNs, parent->event.startNs);
    EXPECT_LE(child->event.startNs + child->event.durNs,
              parent->event.startNs + parent->event.durNs);

    quiesceRecorder();
}

// ---------------------------------------------------------------------
// Histogram percentiles vs a sorted-vector oracle
// ---------------------------------------------------------------------

TEST(Observe, HistogramPercentilesTrackSortedOracle)
{
    observe::LatencyHistogram hist;
    Rng rng(1234);
    std::vector<double> samples;
    for (int i = 0; i < 5000; ++i) {
        // Latencies spanning ~3 decades, like real dispatch mixes.
        double ms = 0.005 * std::exp(rng.uniformReal() * 7.0);
        samples.push_back(ms);
        hist.record(ms);
    }
    std::sort(samples.begin(), samples.end());

    observe::HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count, 5000u);
    EXPECT_DOUBLE_EQ(snap.minMs, samples.front());
    EXPECT_DOUBLE_EQ(snap.maxMs, samples.back());

    auto oracle = [&](double q) {
        size_t idx = static_cast<size_t>(
            q * static_cast<double>(samples.size() - 1));
        return samples[idx];
    };
    struct Case
    {
        double got;
        double quantile;
        const char *label;
    } cases[] = {{snap.p50Ms, 0.50, "p50"},
                 {snap.p95Ms, 0.95, "p95"},
                 {snap.p99Ms, 0.99, "p99"}};
    for (const Case &c : cases) {
        double want = oracle(c.quantile);
        ASSERT_GT(want, 0.0);
        double ratio = c.got / want;
        // sqrt(2)-spaced buckets bound the in-bucket error; allow one
        // extra bucket of slack for rank interpolation.
        EXPECT_GT(ratio, 0.5) << c.label << ": got " << c.got
                              << " want " << want;
        EXPECT_LT(ratio, 2.0) << c.label << ": got " << c.got
                              << " want " << want;
    }
    EXPECT_LE(snap.p50Ms, snap.p95Ms);
    EXPECT_LE(snap.p95Ms, snap.p99Ms);

    // Constant samples collapse every percentile to the exact value:
    // the snapshot clamps interpolated percentiles to [min, max].
    observe::LatencyHistogram constant;
    for (int i = 0; i < 100; ++i) {
        constant.record(0.25);
    }
    observe::HistogramSnapshot flat = constant.snapshot();
    EXPECT_EQ(flat.count, 100u);
    EXPECT_DOUBLE_EQ(flat.p50Ms, 0.25);
    EXPECT_DOUBLE_EQ(flat.p95Ms, 0.25);
    EXPECT_DOUBLE_EQ(flat.p99Ms, 0.25);
    EXPECT_DOUBLE_EQ(flat.minMs, 0.25);
    EXPECT_DOUBLE_EQ(flat.maxMs, 0.25);
}

// ---------------------------------------------------------------------
// Chrome trace export: well-formed JSON with the expected shape
// ---------------------------------------------------------------------

/** Minimal recursive-descent JSON validator (syntax only). */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        pos_ = 0;
        if (!value()) {
            return false;
        }
        ws();
        return pos_ == text_.size();
    }

  private:
    void
    ws()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                text_[pos_] == '\r' || text_[pos_] == '\t')) {
            ++pos_;
        }
    }

    bool
    literal(const char *word)
    {
        size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0) {
            return false;
        }
        pos_ += len;
        return true;
    }

    bool
    string()
    {
        if (pos_ >= text_.size() || text_[pos_] != '"') {
            return false;
        }
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size()) {
                    return false;
                }
            }
            ++pos_;
        }
        if (pos_ >= text_.size()) {
            return false;
        }
        ++pos_;  // closing quote
        return true;
    }

    bool
    number()
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            ++pos_;
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool
    value()
    {
        ws();
        if (pos_ >= text_.size()) {
            return false;
        }
        char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            ws();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                ws();
                if (!string()) {
                    return false;
                }
                ws();
                if (pos_ >= text_.size() || text_[pos_] != ':') {
                    return false;
                }
                ++pos_;
                if (!value()) {
                    return false;
                }
                ws();
                if (pos_ < text_.size() && text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                break;
            }
            if (pos_ >= text_.size() || text_[pos_] != '}') {
                return false;
            }
            ++pos_;
            return true;
        }
        if (c == '[') {
            ++pos_;
            ws();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                if (!value()) {
                    return false;
                }
                ws();
                if (pos_ < text_.size() && text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                break;
            }
            if (pos_ >= text_.size() || text_[pos_] != ']') {
                return false;
            }
            ++pos_;
            return true;
        }
        if (c == '"') {
            return string();
        }
        if (c == 't') {
            return literal("true");
        }
        if (c == 'f') {
            return literal("false");
        }
        if (c == 'n') {
            return literal("null");
        }
        return number();
    }

    const std::string &text_;
    size_t pos_ = 0;
};

TEST(Observe, ChromeTraceExportIsWellFormedJson)
{
    quiesceRecorder();
    TraceRecorder::global().setEnabled(true);
    TraceRecorder::setCurrentThreadName("trace-test");
    {
        SPARSETIR_TRACE_SCOPE2("cat.a", "span.a", "x", 1, "y", -2);
    }
    {
        SPARSETIR_TRACE_SCOPE("cat.b", "span.b");
    }
    ASSERT_EQ(TraceRecorder::global().eventCount(), 2u);

    std::string path = "observe_chrome_trace_test.json";
    ASSERT_TRUE(TraceRecorder::global().writeChromeTrace(path));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    in.close();
    std::remove(path.c_str());

    JsonChecker checker(text);
    EXPECT_TRUE(checker.valid()) << "not valid JSON:\n" << text;
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(text.find("\"trace-test\""), std::string::npos);
    EXPECT_NE(text.find("\"span.a\""), std::string::npos);
    EXPECT_NE(text.find("\"span.b\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("\"x\":1"), std::string::npos);
    EXPECT_NE(text.find("\"y\":-2"), std::string::npos);

    // The text summary mentions the recorded spans.
    std::string summary = TraceRecorder::global().textSummary();
    EXPECT_NE(summary.find("span.a"), std::string::npos);
    EXPECT_NE(summary.find("span.b"), std::string::npos);

    quiesceRecorder();
}

// ---------------------------------------------------------------------
// Fused dispatch: one compute span per task-graph unit
// ---------------------------------------------------------------------

TEST(Observe, FusedDispatchTracesOneComputeSpanPerUnit)
{
    Csr a = graph::powerLawGraph(64, 600, 1.5, 11);
    int64_t feat = 8;

    auto pool = std::make_shared<engine::ThreadPool>(4);
    engine::ParallelExecutor executor(pool);
    engine::CompiledKernel kernel = engine::compileKernel(
        core::compileSpmmCsrFunc(feat, core::SpmmSchedule()));

    NDArray indptr = NDArray::fromInt32(a.indptr);
    NDArray indices = NDArray::fromInt32(a.indices);
    NDArray a_data = NDArray::fromFloat(a.values);
    NDArray b = NDArray::fromFloat(randomVector(a.cols * feat, 21));
    runtime::Bindings base;
    base.scalars["m"] = a.rows;
    base.scalars["n"] = a.cols;
    base.scalars["nnz"] = a.nnz();
    base.scalars["feat_size"] = feat;
    base.arrays["J_indptr"] = &indptr;
    base.arrays["J_indices"] = &indices;
    base.arrays["A_data"] = &a_data;
    base.arrays["B_data"] = &b;

    constexpr int kRequests = 2;
    std::vector<NDArray> outs;
    std::vector<runtime::Bindings> requests;
    for (int r = 0; r < kRequests; ++r) {
        outs.emplace_back(std::vector<int64_t>{a.rows * feat},
                          ir::DataType::float32());
    }
    for (int r = 0; r < kRequests; ++r) {
        runtime::Bindings view = base;
        view.arrays["C_data"] = &outs[r];
        requests.push_back(view);
    }

    engine::ExecOptions options;
    options.minBlocksPerChunk = 8;
    std::vector<const engine::CompiledKernel *> kernels{&kernel};
    engine::TaskGraph graph =
        executor.buildTaskGraph(kernels, requests, options);
    ASSERT_GT(graph.units.size(), 0u);

    quiesceRecorder();
    TraceRecorder::global().setEnabled(true);
    executor.runTaskGraph(graph, requests, options);

    std::vector<observe::CollectedEvent> events =
        TraceRecorder::global().collect();
    size_t unit_spans = 0;
    std::set<std::pair<int64_t, int64_t>> seen_pairs;
    for (const auto &e : events) {
        if (std::string(e.event.name) != "fused.unit") {
            continue;
        }
        ++unit_spans;
        ASSERT_STREQ(e.event.arg0Name, "kernel");
        ASSERT_STREQ(e.event.arg1Name, "request");
        seen_pairs.insert({e.event.arg0, e.event.arg1});
    }
    EXPECT_EQ(unit_spans, graph.units.size())
        << "exactly one compute span per task-graph unit";
    // Every (kernel, request) pair in the graph shows up in the trace.
    std::set<std::pair<int64_t, int64_t>> want_pairs;
    for (const engine::TaskGraph::Unit &unit : graph.units) {
        want_pairs.insert({unit.kernel, unit.request});
    }
    EXPECT_EQ(seen_pairs, want_pairs);

    quiesceRecorder();
}

// ---------------------------------------------------------------------
// Launch-probe attribution: ProbeCounterScope + global view
// ---------------------------------------------------------------------

TEST(Observe, ProbeCounterScopeAttributesAndNests)
{
    ir::PrimFunc func =
        core::compileSpmmCsrFunc(4, core::SpmmSchedule());
    runtime::Bindings bindings;
    bindings.scalars["m"] = 32;
    bindings.scalars["n"] = 16;
    bindings.scalars["nnz"] = 50;
    bindings.scalars["feat_size"] = 4;

    uint64_t before = runtime::launchProbeCount();
    observe::Counter outer_counter;
    observe::Counter inner_counter;
    {
        runtime::ProbeCounterScope outer(&outer_counter);
        runtime::launchInfo(func, bindings);
        runtime::launchInfo(func, bindings);
        {
            runtime::ProbeCounterScope inner(&inner_counter);
            runtime::launchInfo(func, bindings);
        }
        // Inner scope ended: attribution restored to the outer sink.
        runtime::launchInfo(func, bindings);
    }
    EXPECT_EQ(outer_counter.value(), 3u);
    EXPECT_EQ(inner_counter.value(), 1u);
    EXPECT_EQ(runtime::launchProbeCount(), before + 4)
        << "the process-global view still counts every probe";

    // Scopes are thread-local: another thread's probes are invisible
    // to this thread's sink (but still hit the global view).
    {
        runtime::ProbeCounterScope outer(&outer_counter);
        std::thread([&] {
            runtime::launchInfo(func, bindings);
        }).join();
    }
    EXPECT_EQ(outer_counter.value(), 3u);
    EXPECT_EQ(runtime::launchProbeCount(), before + 5);

    // The legacy reset shim zeroes the global view without touching
    // scoped counters.
    runtime::resetLaunchProbeCount();
    EXPECT_EQ(runtime::launchProbeCount(), 0u);
    EXPECT_EQ(outer_counter.value(), 3u);
    EXPECT_EQ(inner_counter.value(), 1u);
}

// ---------------------------------------------------------------------
// Per-engine metrics: warm/cold histograms and the snapshot
// ---------------------------------------------------------------------

TEST(Observe, EngineSnapshotReportsPerOpWarmLatency)
{
    Csr a = graph::powerLawGraph(100, 900, 1.8, 17);
    int64_t feat = 8;
    Engine eng(EngineOptions{});
    NDArray b = NDArray::fromFloat(randomVector(a.cols * feat, 5));
    NDArray c({a.rows * feat}, ir::DataType::float32());

    eng.spmmCsr(a, feat, &b, &c);  // cold
    constexpr int kWarm = 4;
    for (int i = 0; i < kWarm; ++i) {
        eng.spmmCsr(a, feat, &b, &c);
    }

    observe::MetricsSnapshot snap = eng.metricsSnapshot();
    ASSERT_EQ(snap.counters.count("engine.requests"), 1u);
    EXPECT_EQ(snap.counters.at("engine.requests"), 1u + kWarm);
    EXPECT_EQ(snap.counters.at("engine.cache_hits"),
              static_cast<uint64_t>(kWarm));
    EXPECT_EQ(snap.counters.at("engine.cache_misses"), 1u);

    ASSERT_EQ(
        snap.histograms.count("engine.warm_dispatch_ms.spmm_csr"),
        1u);
    const observe::HistogramSnapshot &warm =
        snap.histograms.at("engine.warm_dispatch_ms.spmm_csr");
    EXPECT_EQ(warm.count, static_cast<uint64_t>(kWarm));
    EXPECT_GE(warm.p50Ms, 0.0);
    EXPECT_LE(warm.p50Ms, warm.p99Ms);
    const observe::HistogramSnapshot &cold =
        snap.histograms.at("engine.cold_dispatch_ms.spmm_csr");
    EXPECT_EQ(cold.count, 1u);
    // Ops this session never dispatched stay empty.
    EXPECT_EQ(
        snap.histograms.at("engine.warm_dispatch_ms.spmm_hyb").count,
        0u);
    // Scratch gauges ride along in the same snapshot.
    EXPECT_EQ(snap.gauges.count("scratch.leased_bytes"), 1u);

    // A second engine's registry is independent: no aliasing.
    Engine other(EngineOptions{});
    observe::MetricsSnapshot other_snap = other.metricsSnapshot();
    EXPECT_EQ(other_snap.counters.at("engine.requests"), 0u);
}

} // namespace
} // namespace sparsetir
