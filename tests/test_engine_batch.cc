/**
 * @file
 * Batched multi-request dispatch and the BSR / SR-BCRS engine entry
 * points: VM-vs-interpreter bitwise equality for the new ops,
 * batched-vs-sequential bitwise equality per request, concurrent
 * batched dispatch through one shared session, single-compile
 * behavior of an N-request batch, and the warm path never probing
 * the launch grid through the interpreter.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "dfg/op_graph.h"
#include "engine/engine.h"
#include "format/bsr.h"
#include "format/srbcrs.h"
#include "graph/generator.h"
#include "graph/pruned_weights.h"
#include "support/rng.h"
#include "test_util.h"

namespace sparsetir {
namespace {

using engine::Engine;
using engine::EngineOptions;
using engine::SpmmRequest;
using format::Csr;
using runtime::NDArray;
using testutil::bitwiseEqual;
using testutil::randomVector;

Csr
randomCsr(int64_t rows, int64_t cols, double density, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> dense(rows * cols, 0.0f);
    for (auto &v : dense) {
        if (rng.uniformReal() < density) {
            v = static_cast<float>(rng.uniformReal() * 2.0 - 1.0);
            if (v == 0.0f) {
                v = 0.5f;
            }
        }
    }
    return format::csrFromDense(rows, cols, dense);
}

/** Dense reference C = dense(A) @ B over A's original rows x cols. */
std::vector<float>
denseSpmm(const std::vector<float> &dense, int64_t rows, int64_t cols,
          const std::vector<float> &b, int64_t feat)
{
    std::vector<float> out(rows * feat, 0.0f);
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t j = 0; j < cols; ++j) {
            float a = dense[r * cols + j];
            if (a == 0.0f) {
                continue;
            }
            for (int64_t k = 0; k < feat; ++k) {
                out[r * feat + k] += a * b[j * feat + k];
            }
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// BSR / SR-BCRS entry points
// ---------------------------------------------------------------------

TEST(EngineBsr, MatchesDenseReferenceAndBackendsAgreeBitwise)
{
    Csr base = graph::blockPrunedWeight(64, 48, 8, 0.2, 0.5, 3);
    format::Bsr a = format::bsrFromCsr(base, 8);
    int64_t feat = 16;
    auto b_host = randomVector(a.blockCols * a.blockSize * feat, 11);
    NDArray b = NDArray::fromFloat(b_host);

    NDArray c_vm({a.blockRows * a.blockSize * feat},
                 ir::DataType::float32());
    Engine vm_eng(EngineOptions{});
    auto info = vm_eng.spmmBsr(a, feat, &b, &c_vm);
    EXPECT_FALSE(info.cacheHit);
    EXPECT_EQ(info.numKernels, 1);

    // Numeric ground truth over the original (unpadded) shape.
    auto dense = format::bsrToDense(a);
    auto expected = denseSpmm(dense, base.rows, base.cols, b_host,
                              feat);
    for (int64_t i = 0; i < base.rows * feat; ++i) {
        ASSERT_NEAR(expected[i], c_vm.floatAt(i), 1e-3) << "at " << i;
    }

    // Reference-oracle backend must agree bitwise.
    EngineOptions interp;
    interp.backend = runtime::Backend::kInterpreter;
    Engine interp_eng(interp);
    NDArray c_interp({a.blockRows * a.blockSize * feat},
                     ir::DataType::float32());
    interp_eng.spmmBsr(a, feat, &b, &c_interp);
    EXPECT_TRUE(bitwiseEqual(c_interp, c_vm))
        << "BSR SpMM diverged between bytecode VM and interpreter";
}

TEST(EngineBsr, CacheHitsOnValuesMissesOnBlockSize)
{
    Csr base = graph::blockPrunedWeight(64, 64, 8, 0.2, 0.5, 5);
    format::Bsr a = format::bsrFromCsr(base, 8);
    int64_t feat = 8;
    auto b_host = randomVector(a.blockCols * a.blockSize * feat, 13);
    NDArray b = NDArray::fromFloat(b_host);
    NDArray c({a.blockRows * a.blockSize * feat},
              ir::DataType::float32());

    Engine eng(EngineOptions{});
    EXPECT_FALSE(eng.spmmBsr(a, feat, &b, &c).cacheHit);

    // Same block structure, rescaled values: hit, fresh values used.
    format::Bsr a2 = a;
    for (auto &v : a2.values) {
        v *= -2.0f;
    }
    NDArray c2({a.blockRows * a.blockSize * feat},
               ir::DataType::float32());
    EXPECT_TRUE(eng.spmmBsr(a2, feat, &b, &c2).cacheHit);
    auto dense2 = format::bsrToDense(a2);
    auto expected2 = denseSpmm(dense2, base.rows, base.cols, b_host,
                               feat);
    for (int64_t i = 0; i < base.rows * feat; ++i) {
        ASSERT_NEAR(expected2[i], c2.floatAt(i), 1e-3) << "at " << i;
    }

    // Same matrix re-blocked at another edge: the blockSize key
    // field must force a distinct artifact.
    format::Bsr a4 = format::bsrFromCsr(base, 4);
    NDArray b4 =
        NDArray::fromFloat(randomVector(
            a4.blockCols * a4.blockSize * feat, 17));
    NDArray c4({a4.blockRows * a4.blockSize * feat},
               ir::DataType::float32());
    EXPECT_FALSE(eng.spmmBsr(a4, feat, &b4, &c4).cacheHit);
}

TEST(EngineSrbcrs, MatchesDenseReferenceAndBackendsAgreeBitwise)
{
    Csr base = graph::unstructuredPrunedWeight(64, 40, 0.12, 7);
    format::SrBcrs a = format::srbcrsFromCsr(base, 4, 8);
    int64_t feat = 8;
    auto b_host = randomVector(a.cols * feat, 19);
    NDArray b = NDArray::fromFloat(b_host);

    Engine vm_eng(EngineOptions{});
    NDArray c_vm({a.stripes * a.tileHeight * feat},
                 ir::DataType::float32());
    auto info = vm_eng.spmmSrbcrs(a, feat, &b, &c_vm);
    EXPECT_FALSE(info.cacheHit);
    NDArray c_warm({a.stripes * a.tileHeight * feat},
                   ir::DataType::float32());
    EXPECT_TRUE(vm_eng.spmmSrbcrs(a, feat, &b, &c_warm).cacheHit);
    EXPECT_TRUE(bitwiseEqual(c_vm, c_warm));

    auto dense = format::srbcrsToDense(a);
    auto expected = denseSpmm(dense, base.rows, base.cols, b_host,
                              feat);
    for (int64_t i = 0; i < base.rows * feat; ++i) {
        ASSERT_NEAR(expected[i], c_vm.floatAt(i), 1e-3) << "at " << i;
    }

    EngineOptions interp;
    interp.backend = runtime::Backend::kInterpreter;
    Engine interp_eng(interp);
    NDArray c_interp({a.stripes * a.tileHeight * feat},
                     ir::DataType::float32());
    interp_eng.spmmSrbcrs(a, feat, &b, &c_interp);
    EXPECT_TRUE(bitwiseEqual(c_interp, c_vm))
        << "SR-BCRS SpMM diverged between bytecode VM and "
           "interpreter";
}

// ---------------------------------------------------------------------
// Batched dispatch: per-request bitwise equality with serial runs
// ---------------------------------------------------------------------

/** N requests with private feature/output arrays over one graph. */
struct Batch
{
    std::vector<NDArray> b;
    std::vector<NDArray> c;
    std::vector<SpmmRequest> requests;

    Batch(int n, int64_t b_size, int64_t c_size, uint64_t seed)
    {
        for (int i = 0; i < n; ++i) {
            b.push_back(NDArray::fromFloat(
                randomVector(b_size, seed + i)));
            c.emplace_back(std::vector<int64_t>{c_size},
                           ir::DataType::float32());
        }
        for (int i = 0; i < n; ++i) {
            requests.push_back(SpmmRequest{&b[i], &c[i]});
        }
    }
};

TEST(EngineBatch, CsrBatchBitwiseMatchesSequentialDispatch)
{
    Csr a = randomCsr(80, 70, 0.12, 23);
    int64_t feat = 16;
    constexpr int kRequests = 5;
    Batch batch(kRequests, a.cols * feat, a.rows * feat, 100);

    // Sequential ground truth through the one-request entry point.
    Engine seq_eng(EngineOptions{});
    std::vector<NDArray> expected;
    for (int i = 0; i < kRequests; ++i) {
        expected.emplace_back(std::vector<int64_t>{a.rows * feat},
                              ir::DataType::float32());
        seq_eng.spmmCsr(a, feat, batch.requests[i].b, &expected[i]);
    }

    Engine eng(EngineOptions{});
    auto info = eng.spmmCsrBatch(a, feat, batch.requests);
    EXPECT_FALSE(info.cacheHit);
    EXPECT_EQ(info.numRequests, kRequests);
    for (int i = 0; i < kRequests; ++i) {
        EXPECT_TRUE(bitwiseEqual(expected[i], batch.c[i]))
            << "request " << i << " diverged from its serial run";
    }

    // Warm batch into dirty outputs must reproduce bit-for-bit.
    auto warm = eng.spmmCsrBatch(a, feat, batch.requests);
    EXPECT_TRUE(warm.cacheHit);
    for (int i = 0; i < kRequests; ++i) {
        EXPECT_TRUE(bitwiseEqual(expected[i], batch.c[i]));
    }
}

TEST(EngineBatch, HybBatchBitwiseMatchesSequentialDispatch)
{
    // Power-law structure: multiple buckets, including split rows
    // (exclusive kernels) in the widest one.
    Csr a = graph::powerLawGraph(300, 4000, 1.8, 13);
    int64_t feat = 8;
    engine::HybConfig config;
    config.partitions = 2;
    constexpr int kRequests = 4;
    Batch batch(kRequests, a.cols * feat, a.rows * feat, 200);

    Engine seq_eng(EngineOptions{});
    std::vector<NDArray> expected;
    for (int i = 0; i < kRequests; ++i) {
        expected.emplace_back(std::vector<int64_t>{a.rows * feat},
                              ir::DataType::float32());
        seq_eng.spmmHyb(a, feat, batch.requests[i].b, &expected[i],
                        config);
    }

    Engine eng(EngineOptions{});
    auto info = eng.spmmHybBatch(a, feat, batch.requests, config);
    EXPECT_GE(info.numKernels, 2);
    for (int i = 0; i < kRequests; ++i) {
        EXPECT_TRUE(bitwiseEqual(expected[i], batch.c[i]))
            << "request " << i << " diverged from its serial run";
    }

    // Batched dispatch over a prepared handle: same results, no
    // additional artifact resolve.
    engine::PreparedSpmmHyb prepared =
        eng.prepareSpmmHyb(a, feat, config);
    EXPECT_TRUE(prepared.cacheHit);
    for (auto &c : batch.c) {
        c.zero();
    }
    auto prepared_info = eng.spmmHybBatch(prepared, batch.requests);
    EXPECT_TRUE(prepared_info.cacheHit);
    for (int i = 0; i < kRequests; ++i) {
        EXPECT_TRUE(bitwiseEqual(expected[i], batch.c[i]))
            << "prepared-handle request " << i << " diverged";
    }
}

TEST(EngineBatch, BsrAndSrbcrsBatchesMatchSequentialDispatch)
{
    Csr base = graph::blockPrunedWeight(64, 48, 8, 0.2, 0.5, 29);
    format::Bsr bsr = format::bsrFromCsr(base, 8);
    int64_t feat = 8;
    constexpr int kRequests = 3;
    Batch bsr_batch(kRequests, bsr.blockCols * bsr.blockSize * feat,
                    bsr.blockRows * bsr.blockSize * feat, 300);

    Engine eng(EngineOptions{});
    std::vector<NDArray> expected;
    for (int i = 0; i < kRequests; ++i) {
        expected.emplace_back(
            std::vector<int64_t>{bsr.blockRows * bsr.blockSize * feat},
            ir::DataType::float32());
        eng.spmmBsr(bsr, feat, bsr_batch.requests[i].b, &expected[i]);
    }
    eng.spmmBsrBatch(bsr, feat, bsr_batch.requests);
    for (int i = 0; i < kRequests; ++i) {
        EXPECT_TRUE(bitwiseEqual(expected[i], bsr_batch.c[i]))
            << "BSR request " << i << " diverged";
    }

    Csr unstructured = graph::unstructuredPrunedWeight(64, 40, 0.12, 31);
    format::SrBcrs sr = format::srbcrsFromCsr(unstructured, 4, 8);
    Batch sr_batch(kRequests, sr.cols * feat,
                   sr.stripes * sr.tileHeight * feat, 400);
    std::vector<NDArray> sr_expected;
    for (int i = 0; i < kRequests; ++i) {
        sr_expected.emplace_back(
            std::vector<int64_t>{sr.stripes * sr.tileHeight * feat},
            ir::DataType::float32());
        eng.spmmSrbcrs(sr, feat, sr_batch.requests[i].b,
                       &sr_expected[i]);
    }
    eng.spmmSrbcrsBatch(sr, feat, sr_batch.requests);
    for (int i = 0; i < kRequests; ++i) {
        EXPECT_TRUE(bitwiseEqual(sr_expected[i], sr_batch.c[i]))
            << "SR-BCRS request " << i << " diverged";
    }
}

// ---------------------------------------------------------------------
// Cache economics and the warm-path grid probe
// ---------------------------------------------------------------------

TEST(EngineBatch, NRequestBatchPerformsExactlyOneCompile)
{
    Csr a = randomCsr(60, 50, 0.1, 37);
    int64_t feat = 8;
    constexpr int kRequests = 6;
    Batch batch(kRequests, a.cols * feat, a.rows * feat, 500);

    Engine eng(EngineOptions{});
    auto info = eng.spmmCsrBatch(a, feat, batch.requests);
    EXPECT_FALSE(info.cacheHit);
    engine::CacheStats cache = eng.cacheStats();
    EXPECT_EQ(cache.misses, 1u)
        << "an N-request batch must resolve the artifact exactly once";
    EXPECT_EQ(cache.hits, 0u);
    auto stats = eng.stats();
    EXPECT_EQ(stats.requests, static_cast<uint64_t>(kRequests));
    EXPECT_EQ(stats.cacheMisses, 1u);
    EXPECT_EQ(stats.cacheHits, static_cast<uint64_t>(kRequests - 1));

    // A second batch rides the cached artifact: one hit, no compile.
    auto warm = eng.spmmCsrBatch(a, feat, batch.requests);
    EXPECT_TRUE(warm.cacheHit);
    cache = eng.cacheStats();
    EXPECT_EQ(cache.misses, 1u);
    EXPECT_EQ(cache.hits, 1u);
}

TEST(EngineBatch, WarmBatchNeverProbesGridThroughInterpreter)
{
    Csr a = randomCsr(120, 90, 0.1, 41);
    int64_t feat = 16;
    constexpr int kRequests = 4;
    Batch batch(kRequests, a.cols * feat, a.rows * feat, 600);

    EngineOptions options;
    options.numThreads = 4;
    options.minBlocksPerChunk = 4;  // force real grid splitting
    Engine eng(options);
    eng.spmmCsrBatch(a, feat, batch.requests);  // prime the cache

    uint64_t probes_before = runtime::launchProbeCount();
    eng.spmmCsrBatch(a, feat, batch.requests);
    eng.spmmCsr(a, feat, batch.requests[0].b, batch.requests[0].c);
    EXPECT_EQ(runtime::launchProbeCount(), probes_before)
        << "warm dispatch sized its grid through the interpreter "
           "instead of the spilled block-extent expression";
}

TEST(EngineBatch, ConcurrentBatchedDispatchFromManyThreads)
{
    Csr a = graph::powerLawGraph(150, 1800, 1.7, 43);
    int64_t feat = 8;
    engine::HybConfig config;
    config.partitions = 2;
    constexpr int kCallers = 4;
    constexpr int kRequests = 3;

    // Serial per-request ground truth.
    Engine seq_eng(EngineOptions{});
    Batch reference(kRequests, a.cols * feat, a.rows * feat, 700);
    std::vector<NDArray> expected;
    for (int i = 0; i < kRequests; ++i) {
        expected.emplace_back(std::vector<int64_t>{a.rows * feat},
                              ir::DataType::float32());
        seq_eng.spmmHyb(a, feat, reference.requests[i].b,
                        &expected[i], config);
    }

    Engine eng(EngineOptions{});
    // Prime the artifact: racing first-time builders may each
    // compile (documented CompileCache behavior); warm concurrent
    // batches must all hit the one cached artifact.
    {
        Batch prime(kRequests, a.cols * feat, a.rows * feat, 700);
        eng.spmmHybBatch(a, feat, prime.requests, config);
    }
    std::vector<int> failures(kCallers, 0);
    std::vector<std::thread> callers;
    for (int t = 0; t < kCallers; ++t) {
        callers.emplace_back([&, t] {
            // Same feature values as the reference batch, private
            // arrays per caller.
            Batch mine(kRequests, a.cols * feat, a.rows * feat, 700);
            for (int round = 0; round < 3; ++round) {
                eng.spmmHybBatch(a, feat, mine.requests, config);
                for (int i = 0; i < kRequests; ++i) {
                    if (!bitwiseEqual(expected[i], mine.c[i])) {
                        ++failures[t];
                    }
                }
            }
        });
    }
    for (auto &caller : callers) {
        caller.join();
    }
    for (int t = 0; t < kCallers; ++t) {
        EXPECT_EQ(failures[t], 0) << "caller " << t;
    }
    // All callers shared one artifact.
    EXPECT_EQ(eng.cacheStats().misses, 1u);
}

TEST(EngineBatch, RejectsAliasedOrMissingOutputs)
{
    Csr a = randomCsr(20, 20, 0.2, 47);
    int64_t feat = 4;
    NDArray b = NDArray::fromFloat(randomVector(a.cols * feat, 48));
    NDArray c({a.rows * feat}, ir::DataType::float32());

    Engine eng(EngineOptions{});
    std::vector<SpmmRequest> aliased = {SpmmRequest{&b, &c},
                                        SpmmRequest{&b, &c}};
    EXPECT_THROW(eng.spmmCsrBatch(a, feat, aliased), UserError);
    std::vector<SpmmRequest> missing = {SpmmRequest{&b, nullptr}};
    EXPECT_THROW(eng.spmmCsrBatch(a, feat, missing), UserError);
    // An output aliasing an input — its own or another request's —
    // would race under concurrent execution.
    NDArray c2({a.rows * feat}, ir::DataType::float32());
    std::vector<SpmmRequest> self = {SpmmRequest{&c, &c}};
    EXPECT_THROW(eng.spmmCsrBatch(a, feat, self), UserError);
    std::vector<SpmmRequest> cross = {SpmmRequest{&b, &c},
                                      SpmmRequest{&c, &c2}};
    EXPECT_THROW(eng.spmmCsrBatch(a, feat, cross), UserError);
}

// ---------------------------------------------------------------------
// Scratch economics: privatization leases scale with the write set
// ---------------------------------------------------------------------

TEST(EngineBatch, PeakScratchScalesWithTouchedSpansNotOutputs)
{
    // Hyb bucket kernels carry touched-row spans, so a batched
    // dispatch leases scratch proportional to the spans' extents.
    // Every row lands in exactly one bucket per column partition,
    // hence one request's units lease at most partitions x output
    // bytes BETWEEN THEM — where full-output privatization would
    // have peaked at (requests x kernels) x output bytes.
    Csr a = graph::powerLawGraph(300, 4000, 1.8, 97);
    int64_t feat = 8;
    engine::HybConfig config;
    config.partitions = 2;
    constexpr int kRequests = 4;
    Batch batch(kRequests, a.cols * feat, a.rows * feat, 800);

    EngineOptions options;
    options.numThreads = 4;
    Engine eng(options);
    auto info = eng.spmmHybBatch(a, feat, batch.requests, config);
    ASSERT_GE(info.numKernels, 3);

    eng.resetScratchPeak();
    eng.spmmHybBatch(a, feat, batch.requests, config);
    auto scratch = eng.scratchStats();
    int64_t output_bytes =
        a.rows * feat * static_cast<int64_t>(sizeof(float));
    int64_t span_bound =
        static_cast<int64_t>(kRequests) * config.partitions *
        output_bytes;
    int64_t naive = static_cast<int64_t>(kRequests) *
                    info.numKernels * output_bytes;
    EXPECT_GT(scratch.peakLeasedBytes, 0)
        << "batched dispatch never privatized";
    EXPECT_LE(scratch.peakLeasedBytes, span_bound)
        << "leases exceed the touched-span extent bound";
    EXPECT_LT(scratch.peakLeasedBytes, naive)
        << "leases are still full-output sized";
    EXPECT_EQ(scratch.leasedBytes, 0) << "leases were not returned";

    // Warm batches reuse pooled buffers: a third dispatch must not
    // construct any new scratch.
    uint64_t allocs_before = eng.scratchStats().allocations;
    eng.spmmHybBatch(a, feat, batch.requests, config);
    EXPECT_EQ(eng.scratchStats().allocations, allocs_before)
        << "warm batched dispatch allocated fresh scratch";
}

// ---------------------------------------------------------------------
// Rectangular RGCN: the featIn/featOut keying fix, end to end
// ---------------------------------------------------------------------

TEST(EngineBatch, RectangularRgcnSwappedFeatsAreDistinctArtifacts)
{
    format::RelationalCsr graph;
    graph.rows = 30;
    graph.cols = 30;
    for (int r = 0; r < 2; ++r) {
        graph.relations.push_back(randomCsr(30, 30, 0.1, 51 + r));
    }
    int64_t fa = 8;
    int64_t fb = 4;
    auto x_wide = randomVector(graph.cols * fa, 61);
    auto x_narrow = randomVector(graph.cols * fb, 62);
    auto w_host = randomVector(fa * fb, 63);  // also fb x fa sized

    auto reference = [&](const std::vector<float> &x_host,
                         int64_t fin, int64_t fout) {
        // Y = sum_r A_r @ (X @ W), X: cols x fin, W: fin x fout.
        std::vector<float> xw(graph.cols * fout, 0.0f);
        for (int64_t j = 0; j < graph.cols; ++j) {
            for (int64_t l = 0; l < fout; ++l) {
                float acc = 0.0f;
                for (int64_t k = 0; k < fin; ++k) {
                    acc += x_host[j * fin + k] *
                           w_host[k * fout + l];
                }
                xw[j * fout + l] = acc;
            }
        }
        std::vector<float> expected(graph.rows * fout, 0.0f);
        for (const Csr &rel : graph.relations) {
            auto part = core::referenceSpmm(rel, xw, fout);
            for (size_t i = 0; i < expected.size(); ++i) {
                expected[i] += part[i];
            }
        }
        return expected;
    };

    Engine eng(EngineOptions{});
    NDArray x1 = NDArray::fromFloat(x_wide);
    NDArray w = NDArray::fromFloat(w_host);
    NDArray y1({graph.rows * fb}, ir::DataType::float32());
    auto first = eng.rgcn(graph, fa, fb, &x1, &w, &y1);
    EXPECT_FALSE(first.cacheHit);
    auto expected1 = reference(x_wide, fa, fb);
    for (int64_t i = 0; i < y1.numel(); ++i) {
        ASSERT_NEAR(expected1[i], y1.floatAt(i), 1e-2) << "at " << i;
    }

    // Swapped dims: before the v3 key split this aliased the cached
    // (fa, fb) artifact; it must compile its own.
    NDArray x2 = NDArray::fromFloat(x_narrow);
    NDArray y2({graph.rows * fa}, ir::DataType::float32());
    auto second = eng.rgcn(graph, fb, fa, &x2, &w, &y2);
    EXPECT_FALSE(second.cacheHit);
    auto expected2 = reference(x_narrow, fb, fa);
    for (int64_t i = 0; i < y2.numel(); ++i) {
        ASSERT_NEAR(expected2[i], y2.floatAt(i), 1e-2) << "at " << i;
    }
    EXPECT_EQ(eng.cacheStats().misses, 2u);
}

// ---------------------------------------------------------------------
// CacheKey v5: graph artifacts must never alias per-kernel artifacts
// ---------------------------------------------------------------------

TEST(EngineCacheKeyV5, GraphAndPerKernelSddmmDoNotAlias)
{
    // A single-node sddmm GRAPH and the per-kernel sddmm entry point
    // over the SAME structure, rows, and nnz. Before the v5 op split
    // these could collide on (structure, rows, nnz); both must miss.
    Csr a = randomCsr(32, 32, 0.2, 211);
    // Unit values: the per-kernel entry scales by A's values, the
    // graph node samples the pattern only.
    std::fill(a.values.begin(), a.values.end(), 1.0f);
    int64_t feat = 8;

    dfg::OpGraph graph;
    dfg::PatternRef pattern = dfg::SparsityPattern::fromCsr(a);
    int q = graph.denseInput("q", a.rows, feat);
    int kt = graph.denseInput("kt", feat, a.cols);
    graph.markOutput(graph.sddmm(pattern, q, kt), "out");

    NDArray q_arr = NDArray::fromFloat(randomVector(a.rows * feat, 1));
    NDArray kt_arr = NDArray::fromFloat(randomVector(feat * a.cols, 2));
    NDArray graph_out({a.nnz()}, ir::DataType::float32());

    Engine eng(EngineOptions{});
    eng.dispatchGraph(graph,
                      {{"q", &q_arr}, {"kt", &kt_arr},
                       {"out", &graph_out}});
    EXPECT_EQ(eng.cacheStats().misses, 1u);

    // Per-kernel sddmm takes X (rows x feat) and Y (feat x cols) —
    // the same layouts the graph node uses for q / kt.
    NDArray kernel_out({a.nnz()}, ir::DataType::float32());
    auto second = eng.sddmm(a, feat, &q_arr, &kt_arr, &kernel_out);
    EXPECT_FALSE(second.cacheHit);
    EXPECT_EQ(eng.cacheStats().misses, 2u);
    EXPECT_EQ(eng.cacheStats().hits, 0u);

    // Same math either way.
    for (int64_t i = 0; i < a.nnz(); ++i) {
        EXPECT_NEAR(graph_out.floatAt(i), kernel_out.floatAt(i), 1e-4)
            << "at nnz position " << i;
    }
}

TEST(EngineCacheKeyV5, GraphsDifferingOnlyInEdgeStructureBothMiss)
{
    // Two topologically identical graphs whose patterns have EQUAL
    // rows/cols/nnz but different edge positions: one diagonal, one
    // shifted diagonal. Everything the pre-v5 key hashed (op, rows,
    // nnz, schedule) matches; only the structure content differs.
    int64_t n = 16;
    Csr diag, shifted;
    diag.rows = diag.cols = shifted.rows = shifted.cols = n;
    diag.indptr.push_back(0);
    shifted.indptr.push_back(0);
    for (int64_t i = 0; i < n; ++i) {
        diag.indices.push_back(static_cast<int32_t>(i));
        diag.values.push_back(1.0f);
        diag.indptr.push_back(static_cast<int32_t>(i + 1));
        shifted.indices.push_back(static_cast<int32_t>((i + 1) % n));
        shifted.values.push_back(1.0f);
        shifted.indptr.push_back(static_cast<int32_t>(i + 1));
    }

    int64_t feat = 4;
    auto build = [&](const Csr &structure) {
        dfg::OpGraph graph;
        dfg::PatternRef pattern =
            dfg::SparsityPattern::fromCsr(structure);
        int x = graph.denseInput("x", n, feat);
        int h = graph.aggregate(pattern, x, /*mean=*/false);
        graph.markOutput(h, "out");
        return graph;
    };

    std::vector<float> x_host = randomVector(n * feat, 3);
    NDArray x_arr = NDArray::fromFloat(x_host);
    NDArray out1({n * feat}, ir::DataType::float32());
    NDArray out2({n * feat}, ir::DataType::float32());

    Engine eng(EngineOptions{});
    eng.dispatchGraph(build(diag), {{"x", &x_arr}, {"out", &out1}});
    eng.dispatchGraph(build(shifted), {{"x", &x_arr}, {"out", &out2}});
    EXPECT_EQ(eng.cacheStats().misses, 2u);
    EXPECT_EQ(eng.cacheStats().hits, 0u);

    // Diagonal aggregate is the identity; shifted is a row rotation.
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t k = 0; k < feat; ++k) {
            EXPECT_EQ(out1.floatAt(i * feat + k),
                      x_host[i * feat + k]);
            EXPECT_EQ(out2.floatAt(i * feat + k),
                      x_host[((i + 1) % n) * feat + k]);
        }
    }
}

TEST(EngineCacheKeyV5, FusedAndChainGraphArtifactsAreDistinct)
{
    // fuse on/off is part of the schedule fingerprint: dispatching the
    // same graph both ways compiles two artifacts, then both rehit.
    Csr a = randomCsr(24, 24, 0.2, 223);
    dfg::PatternRef pattern = dfg::SparsityPattern::fromCsr(a);
    int64_t feat = 4;
    dfg::OpGraph graph;
    int x = graph.denseInput("x", a.cols, feat);
    int h = graph.aggregate(pattern, x, /*mean=*/true);
    graph.markOutput(h, "out");

    NDArray x_arr = NDArray::fromFloat(randomVector(a.cols * feat, 5));
    NDArray out({a.rows * feat}, ir::DataType::float32());
    Engine eng(EngineOptions{});
    engine::GraphDispatchOptions fused, chain;
    fused.fuse = true;
    chain.fuse = false;
    eng.dispatchGraph(graph, {{"x", &x_arr}, {"out", &out}}, fused);
    eng.dispatchGraph(graph, {{"x", &x_arr}, {"out", &out}}, chain);
    EXPECT_EQ(eng.cacheStats().misses, 2u);
    eng.dispatchGraph(graph, {{"x", &x_arr}, {"out", &out}}, fused);
    eng.dispatchGraph(graph, {{"x", &x_arr}, {"out", &out}}, chain);
    EXPECT_EQ(eng.cacheStats().misses, 2u);
    EXPECT_EQ(eng.cacheStats().hits, 2u);
}

} // namespace
} // namespace sparsetir
