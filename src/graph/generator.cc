#include "graph/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "support/logging.h"

namespace sparsetir {
namespace graph {

using format::Csr;

namespace {

/** Build a CSR graph from a per-row degree sequence. */
Csr
fromDegrees(int64_t nodes, std::vector<int64_t> degrees, Rng &rng)
{
    Csr m;
    m.rows = nodes;
    m.cols = nodes;
    m.indptr.reserve(nodes + 1);
    m.indptr.push_back(0);
    std::unordered_set<int64_t> row_set;
    for (int64_t r = 0; r < nodes; ++r) {
        int64_t degree = std::min<int64_t>(degrees[r], nodes);
        row_set.clear();
        // Self loop first (GNN adjacency convention), then uniform
        // neighbours without replacement.
        if (degree > 0) {
            row_set.insert(r);
        }
        while (static_cast<int64_t>(row_set.size()) < degree) {
            row_set.insert(
                static_cast<int64_t>(rng.uniformInt(nodes)));
        }
        std::vector<int64_t> cols(row_set.begin(), row_set.end());
        std::sort(cols.begin(), cols.end());
        for (int64_t c : cols) {
            m.indices.push_back(static_cast<int32_t>(c));
            m.values.push_back(
                1.0f + 0.1f * static_cast<float>(rng.uniformReal()));
        }
        m.indptr.push_back(static_cast<int32_t>(m.indices.size()));
    }
    return m;
}

/** Rescale a degree sequence to sum to the target edge count. */
void
rescaleDegrees(std::vector<int64_t> *degrees, int64_t nodes,
               int64_t edges)
{
    int64_t total = std::accumulate(degrees->begin(), degrees->end(),
                                    int64_t{0});
    ICHECK_GT(total, 0);
    // A row holds at most `nodes` distinct neighbours, so the graph
    // caps at nodes^2 edges. Clamp the target: with every degree
    // saturated the pad loop below could otherwise never close the
    // deficit and would spin forever (found by the differential
    // fuzzer requesting dense graphs over tiny node counts).
    edges = std::min(edges, nodes * nodes);
    double scale = static_cast<double>(edges) /
                   static_cast<double>(total);
    int64_t acc = 0;
    for (auto &d : *degrees) {
        d = std::max<int64_t>(
            1, static_cast<int64_t>(std::llround(d * scale)));
        d = std::min<int64_t>(d, nodes);
        acc += d;
    }
    // Trim or pad round-off. Trimming may push degrees to zero when
    // the target edge count is below the node count (sparse
    // relations of a heterograph).
    int64_t diff = acc - edges;
    size_t cursor = 0;
    while (diff != 0 && !degrees->empty()) {
        auto &d = (*degrees)[cursor % degrees->size()];
        if (diff > 0 && d > 0) {
            --d;
            --diff;
        } else if (diff < 0 && d < nodes) {
            ++d;
            ++diff;
        }
        ++cursor;
    }
}

} // namespace

Csr
powerLawGraph(int64_t nodes, int64_t edges, double alpha, uint64_t seed)
{
    ICHECK_GT(nodes, 0);
    Rng rng(seed);
    std::vector<int64_t> degrees(nodes);
    int64_t x_max = std::max<int64_t>(2, nodes / 2);
    for (auto &d : degrees) {
        d = rng.powerLaw(alpha, x_max);
    }
    rescaleDegrees(&degrees, nodes, edges);
    return fromDegrees(nodes, std::move(degrees), rng);
}

Csr
concentratedGraph(int64_t nodes, int64_t edges, double rel_spread,
                  uint64_t seed)
{
    ICHECK_GT(nodes, 0);
    Rng rng(seed);
    double mean = static_cast<double>(edges) /
                  static_cast<double>(nodes);
    std::vector<int64_t> degrees(nodes);
    for (auto &d : degrees) {
        double v = mean * (1.0 + rel_spread * rng.normal());
        d = std::max<int64_t>(1, static_cast<int64_t>(std::llround(v)));
    }
    rescaleDegrees(&degrees, nodes, edges);
    return fromDegrees(nodes, std::move(degrees), rng);
}

Csr
uniformGraph(int64_t nodes, int64_t edges, uint64_t seed)
{
    return concentratedGraph(nodes, edges, 0.0, seed);
}

DegreeStats
degreeStats(const Csr &m)
{
    DegreeStats stats;
    if (m.rows == 0) {
        return stats;
    }
    std::vector<int64_t> degrees(m.rows);
    int64_t total = 0;
    for (int64_t r = 0; r < m.rows; ++r) {
        degrees[r] = m.rowLength(r);
        stats.maxDegree = std::max(stats.maxDegree, degrees[r]);
        total += degrees[r];
    }
    stats.meanDegree =
        static_cast<double>(total) / static_cast<double>(m.rows);
    std::sort(degrees.begin(), degrees.end());
    // Gini via the sorted formula.
    double weighted = 0.0;
    for (int64_t i = 0; i < m.rows; ++i) {
        weighted += static_cast<double>(2 * (i + 1) - m.rows - 1) *
                    static_cast<double>(degrees[i]);
    }
    if (total > 0) {
        stats.gini = weighted / (static_cast<double>(m.rows) *
                                 static_cast<double>(total));
    }
    return stats;
}

} // namespace graph
} // namespace sparsetir
