# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-review
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_backend "/root/repo/build-review/test_backend")
set_tests_properties(test_backend PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;56;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_bytecode "/root/repo/build-review/test_bytecode")
set_tests_properties(test_bytecode PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;56;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_engine "/root/repo/build-review/test_engine")
set_tests_properties(test_engine PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;56;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_engine_batch "/root/repo/build-review/test_engine_batch")
set_tests_properties(test_engine_batch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;56;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_engine_fused "/root/repo/build-review/test_engine_fused")
set_tests_properties(test_engine_fused PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;56;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_formats "/root/repo/build-review/test_formats")
set_tests_properties(test_formats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;56;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_fuzz_differential "/root/repo/build-review/test_fuzz_differential")
set_tests_properties(test_fuzz_differential PROPERTIES  LABELS "fuzz" TIMEOUT "1800" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;56;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_gpusim "/root/repo/build-review/test_gpusim")
set_tests_properties(test_gpusim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;56;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_graph "/root/repo/build-review/test_graph")
set_tests_properties(test_graph PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;56;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_ir "/root/repo/build-review/test_ir")
set_tests_properties(test_ir PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;56;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_lowering "/root/repo/build-review/test_lowering")
set_tests_properties(test_lowering PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;56;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_pipeline "/root/repo/build-review/test_pipeline")
set_tests_properties(test_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;56;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_schedule "/root/repo/build-review/test_schedule")
set_tests_properties(test_schedule PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;56;add_test;/root/repo/CMakeLists.txt;0;")
