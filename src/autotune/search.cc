#include "autotune/search.h"

#include <chrono>

#include "baselines/vendor_constants.h"

namespace sparsetir {
namespace autotune {

using core::BindingSet;

HybTuneResult
tuneSpmmHyb(const format::Csr &a, int64_t feat, gpusim::Device &device,
            engine::Engine &session, const std::vector<int> &partitions)
{
    HybTuneResult result;
    gpusim::SimOptions opts;
    opts.efficiency = baselines::kSparseTirEfficiency;
    runtime::NDArray b({a.cols * feat}, ir::DataType::float32());
    runtime::NDArray c({a.rows * feat}, ir::DataType::float32());
    bool first = true;
    for (int partition : partitions) {
        engine::HybConfig config;
        config.partitions = partition;
        engine::PreparedSpmmHyb prepared =
            session.prepareSpmmHyb(a, feat, config);
        prepared.bindings->external("B_data", &b);
        prepared.bindings->external("C_data", &c);
        std::vector<const gpusim::Kernel *> kernels;
        for (auto &kernel : prepared.kernels) {
            kernels.push_back(&kernel->simKernel());
        }
        HybCandidate candidate;
        candidate.c = partition;
        candidate.k = prepared.bucketCapLog2;
        candidate.timeMs = device.launchFused(kernels, opts).timeMs;
        result.tried.push_back(candidate);
        if (first || candidate.timeMs < result.best.timeMs) {
            result.best = candidate;
            first = false;
        }
    }
    return result;
}

HybTuneResult
tuneSpmmHyb(const format::Csr &a, int64_t feat, gpusim::Device &device,
            const std::vector<int> &partitions)
{
    engine::EngineOptions options;
    // The simulator is the cost oracle here: no host execution, so
    // keep the transient session's pool minimal and inert.
    options.numThreads = 1;
    options.parallel = false;
    engine::Engine session(options);
    return tuneSpmmHyb(a, feat, device, session, partitions);
}

HybTuneResult
tuneSpmmHybMeasured(const format::Csr &a, int64_t feat,
                    engine::Engine &session,
                    const std::vector<int> &partitions, int rounds)
{
    USER_CHECK(rounds > 0) << "tuneSpmmHybMeasured needs rounds >= 1";
    HybTuneResult result;
    runtime::NDArray b({a.cols * feat}, ir::DataType::float32());
    runtime::NDArray c({a.rows * feat}, ir::DataType::float32());
    bool first = true;
    for (int partition : partitions) {
        engine::HybConfig config;
        config.partitions = partition;
        // Prepare once: fills the compile cache (so the timed rounds
        // measure the warm serving path — value gather + bind + VM
        // execution) and reports the resolved bucket cap.
        int resolved_k =
            session.prepareSpmmHyb(a, feat, config).bucketCapLog2;
        auto start = std::chrono::steady_clock::now();
        for (int round = 0; round < rounds; ++round) {
            c.zero();
            session.spmmHyb(a, feat, &b, &c, config);
        }
        double elapsed_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        HybCandidate candidate;
        candidate.c = partition;
        candidate.k = resolved_k;
        candidate.timeMs = elapsed_ms / rounds;
        result.tried.push_back(candidate);
        if (first || candidate.timeMs < result.best.timeMs) {
            result.best = candidate;
            first = false;
        }
    }
    return result;
}

SddmmCandidate
tuneSddmm(const format::Csr &a, int64_t feat, gpusim::Device &device)
{
    gpusim::SimOptions opts;
    opts.efficiency = baselines::kSparseTirEfficiency;
    runtime::NDArray x({a.rows * feat}, ir::DataType::float32());
    runtime::NDArray y({feat * a.cols}, ir::DataType::float32());
    runtime::NDArray out({a.nnz()}, ir::DataType::float32());
    SddmmCandidate best;
    bool first = true;
    for (int workloads : {4, 8, 16, 32}) {
        for (int group : {16, 32}) {
            core::SddmmSchedule schedule;
            schedule.workloadsPerBlock = workloads;
            schedule.groupSize = group;
            auto shared = std::make_shared<BindingSet>();
            shared->external("X_data", &x);
            shared->external("Y_data", &y);
            shared->external("B_data", &out);
            auto kernel = core::compileSddmm(a, feat, shared, schedule);
            double time_ms =
                device.launch(kernel->simKernel(), opts).timeMs;
            if (first || time_ms < best.timeMs) {
                best.schedule = schedule;
                best.timeMs = time_ms;
                first = false;
            }
        }
    }
    return best;
}

} // namespace autotune
} // namespace sparsetir
