/**
 * @file
 * Text rendering of SparseTIR programs in a Python-like script form,
 * mirroring the notation used in the paper's figures.
 */

#ifndef SPARSETIR_IR_PRINTER_H_
#define SPARSETIR_IR_PRINTER_H_

#include <string>

#include "ir/prim_func.h"

namespace sparsetir {
namespace ir {

/** Render an expression on one line. */
std::string exprToString(const Expr &e);

/** Render a statement as an indented script. */
std::string stmtToString(const Stmt &s, int indent = 0);

/** Render a whole function: axes, buffers, params and body. */
std::string funcToString(const PrimFunc &func);

/** Render an axis declaration. */
std::string axisToString(const Axis &axis);

} // namespace ir
} // namespace sparsetir

#endif // SPARSETIR_IR_PRINTER_H_
