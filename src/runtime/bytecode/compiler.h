/**
 * @file
 * BytecodeCompiler: Stage III TIR -> register bytecode.
 *
 * One pass over the function body emits the instruction stream:
 * expressions compile to a stack-disciplined register allocation
 * (scoped variables — loop vars, lets, scalar params — get pinned
 * registers; temporaries reuse a watermark above them), loops compile
 * to head-test + back-edge jumps, buffer accesses resolve to slot
 * indices at compile time, and the first blockIdx.x-bound loop gets a
 * kBlockWindow so the parallel executor's block windows apply at run
 * time without recompiling.
 *
 * Typing is inferred statically with the same promotion rules the
 * interpreter applies dynamically (float wins in arithmetic, `/` is
 * always float, floordiv/mod are integer-only), so a compiled program
 * produces bitwise-identical results. The compiler rejects constructs
 * the interpreter also rejects (Stage I sparse iterations,
 * multi-dimensional sparse accesses, vector IR, extern calls) —
 * transform::stage3ExecDiagnostic names the offender first.
 */

#ifndef SPARSETIR_RUNTIME_BYTECODE_COMPILER_H_
#define SPARSETIR_RUNTIME_BYTECODE_COMPILER_H_

#include <memory>

#include "ir/prim_func.h"
#include "runtime/bytecode/program.h"

namespace sparsetir {
namespace runtime {
namespace bytecode {

/**
 * Compile a Stage III function to bytecode. Throws UserError when the
 * function contains constructs outside the host-executable subset
 * (the interpreter remains the only runner for those).
 */
std::shared_ptr<const Program> compile(const ir::PrimFunc &func);

/**
 * Memoized compile keyed on the PrimFunc node identity: the engine's
 * artifacts and repeated runtime::run calls share one Program per
 * function. Returns null (and remembers the failure) when the
 * function is not bytecode-compilable, in which case callers fall
 * back to the interpreter. Thread-safe. PrimFunc bodies are treated
 * as immutable after first compilation, which every pipeline in this
 * codebase honors — mutate via copyFunc instead.
 */
std::shared_ptr<const Program> programFor(const ir::PrimFunc &func);

} // namespace bytecode
} // namespace runtime
} // namespace sparsetir

#endif // SPARSETIR_RUNTIME_BYTECODE_COMPILER_H_
