/**
 * @file
 * cuBLAS stand-in: dense GEMM treating the sparse weight as dense
 * (baseline of Figures 17/19).
 */

#ifndef SPARSETIR_BASELINES_CUBLAS_H_
#define SPARSETIR_BASELINES_CUBLAS_H_

#include <memory>

#include "baselines/models.h"

namespace sparsetir {
namespace baselines {

/** C[m x n] = A[m x k] @ B[k x n]; fp16 Tensor-Core path optional. */
std::unique_ptr<gpusim::Kernel> cublasGemm(int64_t m, int64_t n,
                                           int64_t k, bool tensor_cores);

} // namespace baselines
} // namespace sparsetir

#endif // SPARSETIR_BASELINES_CUBLAS_H_
