#include "core/pipeline.h"

#include <algorithm>
#include <cstdlib>

#include "core/ops.h"
#include "observe/trace.h"
#include "schedule/schedule.h"
#include "support/logging.h"
#include "transform/format_decompose.h"
#include "transform/lower_sparse_buffer.h"
#include "transform/lower_sparse_iter.h"

namespace sparsetir {
namespace core {

using namespace ir;
using format::Csr;
using runtime::NDArray;

// ---------------------------------------------------------------------
// BindingSet / BoundKernel
// ---------------------------------------------------------------------

NDArray *
BindingSet::own(const std::string &param, NDArray arr)
{
    USER_CHECK(bindings_.arrays.find(param) == bindings_.arrays.end())
        << "parameter '" << param
        << "' is already bound in this BindingSet; owning it again "
           "would silently shadow the live binding";
    storage_.push_back(std::move(arr));
    NDArray *ptr = &storage_.back();
    bindings_.arrays[param] = ptr;
    owned_.insert(param);
    return ptr;
}

void
BindingSet::external(const std::string &param, NDArray *arr)
{
    USER_CHECK(owned_.find(param) == owned_.end())
        << "parameter '" << param
        << "' is bound to owned storage in this BindingSet; an "
           "external binding would silently shadow it";
    bindings_.arrays[param] = arr;
}

void
BindingSet::scalar(const std::string &param, int64_t value)
{
    bindings_.scalars[param] = value;
}

NDArray *
BindingSet::find(const std::string &param) const
{
    auto it = bindings_.arrays.find(param);
    return it == bindings_.arrays.end() ? nullptr : it->second;
}

BoundKernel::BoundKernel(PrimFunc stage3,
                         std::shared_ptr<BindingSet> bindings)
    : func_(std::move(stage3)), bindings_(std::move(bindings))
{}

void
BoundKernel::execute() const
{
    runtime::run(func_, bindings_->view());
}

gpusim::IrKernel &
BoundKernel::simKernel()
{
    if (sim_ == nullptr) {
        sim_ = std::make_unique<gpusim::IrKernel>(func_,
                                                  bindings_->view());
    }
    return *sim_;
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

namespace {

/** Lower a Stage I function to Stage II (schedulable loops). */
PrimFunc
lowerToStage2(const PrimFunc &stage1)
{
    SPARSETIR_TRACE_SCOPE("compile", "stage2.lower_sparse_iter");
    return transform::lowerSparseIterations(stage1);
}

/** Flatten a scheduled Stage II function to Stage III. */
PrimFunc
lowerToStage3(const schedule::Schedule &sch)
{
    SPARSETIR_TRACE_SCOPE("compile", "stage3.lower_sparse_buffer");
    return transform::lowerSparseBuffers(sch.func());
}

int
clampThreadX(int64_t feat, int want)
{
    int tx = static_cast<int>(std::min<int64_t>(want, feat));
    // Round down to a power of two for clean splits.
    int p = 1;
    while (p * 2 <= tx) {
        p *= 2;
    }
    return p;
}

/**
 * Compile-time self-check: prove the freshly lowered kernel's bounds
 * and race obligations from the format invariants alone (symbolic —
 * the proof holds for every structure the kernel can be bound to). A
 * failure is a lowering or scheduling bug — the class the cacheWrite
 * missing-split-tail-guard regression belonged to — so it trips
 * ICHECK, not UserError.
 */
PrimFunc
selfVerified(PrimFunc func, const std::string &what)
{
    if (!verifyEnabledByDefault()) {
        return func;
    }
    SPARSETIR_TRACE_SCOPE("verify", "pipeline.self_verify");
    verify::VerifyContext ctx;
    declareFormatFacts(func, &ctx);
    verify::VerifyResult result = verify::verifyFunc(func, ctx);
    ICHECK(result.ok)
        << "pipeline produced a kernel that fails static "
           "verification ("
        << what << "):\n"
        << verify::formatDiagnostics(result);
    return func;
}

} // namespace

bool
verifyEnabledByDefault()
{
    static const bool enabled = [] {
        if (const char *env = std::getenv("SPARSETIR_VERIFY")) {
            if (env[0] != '\0') {
                return env[0] == '1' || env[0] == 't' ||
                       env[0] == 'T';
            }
        }
#ifndef NDEBUG
        return true;
#else
        return false;
#endif
    }();
    return enabled;
}

void
declareFormatFacts(const PrimFunc &func, verify::VerifyContext *ctx)
{
    auto param = [&](const std::string &name) -> Expr {
        for (const Var &p : func->params) {
            if (p->name == name) {
                return p;
            }
        }
        return nullptr;
    };
    // indptr arrays: element values in [0, total], sorted, with
    // fixed endpoints 0 and total (nnz of the structure they index).
    auto indptrFact = [&](const std::string &arr,
                          const std::string &total_name) {
        Expr total = param(total_name);
        if (param(arr) == nullptr || total == nullptr) {
            return;
        }
        verify::ValueFact fact;
        fact.lo = intImm(0);
        fact.hi = total;
        fact.first = intImm(0);
        fact.last = total;
        fact.sorted = true;
        ctx->facts[arr] = fact;
    };
    // index arrays: element values are valid ids in [0, count - 1].
    auto indexFact = [&](const std::string &arr,
                         const std::string &count_name) {
        Expr count = param(count_name);
        if (param(arr) == nullptr || count == nullptr) {
            return;
        }
        verify::ValueFact fact;
        fact.lo = intImm(0);
        fact.hi = sub(count, intImm(1));
        ctx->facts[arr] = fact;
    };
    indptrFact("J_indptr", "nnz");
    indptrFact("JO_indptr", "nnzb");
    indptrFact("G_indptr", "total_groups");
    indexFact("J_indices", "n");
    indexFact("JO_indices", "nb");
    indexFact("T_indices", "n");
    // Per-bucket ELL arrays: I<suffix>_indices holds original row
    // ids, J<suffix>_indices original column ids (see
    // ellRowIndicesParam / ellColIndicesParam).
    const std::string kIndices = "_indices";
    for (const Var &p : func->params) {
        const std::string &name = p->name;
        if (name.size() <= kIndices.size() + 1 ||
            name.compare(name.size() - kIndices.size(),
                         kIndices.size(), kIndices) != 0 ||
            name == "J_indices" || name == "JO_indices" ||
            name == "T_indices") {
            continue;
        }
        if (name[0] == 'I') {
            indexFact(name, "m");
        } else if (name[0] == 'J') {
            indexFact(name, "n");
        }
    }
}

// ---------------------------------------------------------------------
// CSR SpMM
// ---------------------------------------------------------------------

PrimFunc
compileSpmmCsrFunc(int64_t feat, const SpmmSchedule &params)
{
    PrimFunc stage2 = lowerToStage2(buildSpmm());
    schedule::Schedule sch(stage2);
    auto loops = sch.getLoops("spmm");  // i, j, k
    const std::string i = loops[0];
    const std::string j = loops[1];
    const std::string k = loops[2];
    sch.reorder({k, j});
    int tx = clampThreadX(feat, params.threadX);
    auto [k_o, k_i] = sch.split(k, tx);
    sch.bind(i, "blockIdx.x");
    sch.bind(k_i, "threadIdx.x");
    sch.cacheWrite("spmm", "C");
    return selfVerified(lowerToStage3(sch), "spmm_csr");
}

std::shared_ptr<BoundKernel>
compileSpmmCsr(const Csr &a, int64_t feat,
               const std::shared_ptr<BindingSet> &shared,
               const SpmmSchedule &params)
{
    PrimFunc stage3 = compileSpmmCsrFunc(feat, params);

    shared->scalar("m", a.rows);
    shared->scalar("n", a.cols);
    shared->scalar("nnz", a.nnz());
    shared->scalar("feat_size", feat);
    shared->own("J_indptr", NDArray::fromInt32(a.indptr));
    shared->own("J_indices", NDArray::fromInt32(a.indices));
    shared->own("A_data", NDArray::fromFloat(a.values));
    return std::make_shared<BoundKernel>(stage3, shared);
}

// ---------------------------------------------------------------------
// hyb(c, k) SpMM through format decomposition
// ---------------------------------------------------------------------

std::vector<HybKernelPlan>
compileSpmmHybFuncs(const format::Hyb &hyb, int64_t feat, int threadX)
{
    // One ELL rewrite rule per non-empty (partition, bucket).
    std::vector<transform::FormatRewriteRule> rules;
    std::vector<HybKernelPlan> plans;
    for (int p = 0; p < hyb.numPartitions; ++p) {
        for (size_t b = 0; b < hyb.buckets[p].size(); ++b) {
            const format::Ell &ell = hyb.buckets[p][b];
            if (ell.numRows() == 0) {
                continue;
            }
            std::string suffix =
                "p" + std::to_string(p) + "b" + std::to_string(b);
            rules.push_back(ellRule(suffix, hyb.rows, hyb.cols,
                                    ell.numRows(), ell.width));
            HybKernelPlan plan;
            plan.suffix = suffix;
            plan.partition = p;
            plan.bucket = static_cast<int>(b);
            plan.numRows = ell.numRows();
            plan.width = ell.width;
            plans.push_back(std::move(plan));
        }
    }
    USER_CHECK(!rules.empty()) << "matrix has no non-zeros";

    PrimFunc stage1 = buildSpmm();
    observe::TraceScope decompose_span("compile",
                                       "stage1.decompose_format");
    transform::DecomposeResult decomposed =
        transform::decomposeFormat(stage1, rules);
    decompose_span.end();
    auto [pre, compute] = transform::splitPreprocess(
        decomposed.func, decomposed.copyIterNames);
    (void)pre;  // bucket data is prepared by the format library

    // Per-bucket kernels: lower + GE-SpMM-style schedule.
    std::vector<PrimFunc> pieces = splitIterations(compute);
    ICHECK_EQ(pieces.size(), plans.size());
    int tx = clampThreadX(feat, threadX);
    for (size_t idx = 0; idx < pieces.size(); ++idx) {
        SPARSETIR_TRACE_SCOPE1("compile", "stage2.schedule_bucket",
                               "bucket", idx);
        HybKernelPlan &plan = plans[idx];
        const std::string block_name = "spmm_ell_" + plan.suffix;
        PrimFunc stage2 = lowerToStage2(pieces[idx]);
        schedule::Schedule sch(stage2);
        auto loops = sch.getLoops(block_name);  // o, i, j, k
        std::string fused = sch.fuse(loops[0], loops[1]);
        // Bucket b groups 2^(k - b) rows so each block covers ~2^k
        // non-zeros (compile-time load balancing, §4.2.1).
        int rows_per_block = std::max<int64_t>(
            1,
            (1 << hyb.maxWidthLog2) / std::max(plan.width, 1));
        rows_per_block = static_cast<int>(
            std::min<int64_t>(rows_per_block, plan.numRows));
        auto [f_o, f_i] = sch.split(fused, rows_per_block);
        auto [k_o, k_i] = sch.split(loops[3], tx);
        sch.reorder({k_o, k_i, loops[2]});
        sch.bind(f_o, "blockIdx.x");
        sch.bind(f_i, "threadIdx.y");
        sch.bind(k_i, "threadIdx.x");
        // Buckets contribute partial sums to a zero-initialized C.
        sch.cacheWrite(block_name, "C", /*accumulate=*/true);
        plan.func = selfVerified(lowerToStage3(sch), block_name);
    }
    return plans;
}

HybSpmm
compileSpmmHyb(const Csr &a, int64_t feat, int c, int k,
               const std::shared_ptr<BindingSet> &shared, int threadX)
{
    HybSpmm result;
    result.bindings = shared;
    result.hyb = format::hybFromCsr(a, c, k);
    const format::Hyb &hyb = result.hyb;

    std::vector<HybKernelPlan> plans =
        compileSpmmHybFuncs(hyb, feat, threadX);

    // Shared scalars and the original CSR arrays (the copy kernels
    // reference them; compute kernels only touch bucket data).
    shared->scalar("m", a.rows);
    shared->scalar("n", a.cols);
    shared->scalar("nnz", a.nnz());
    shared->scalar("feat_size", feat);
    shared->own("J_indptr", NDArray::fromInt32(a.indptr));
    shared->own("J_indices", NDArray::fromInt32(a.indices));
    shared->own("A_data", NDArray::fromFloat(a.values));

    // Bucket structure + values, prepared by the format library (the
    // pre-processing path; equivalent to running the generated copy
    // iterations once).
    for (const HybKernelPlan &plan : plans) {
        const format::Ell &ell =
            hyb.buckets[plan.partition][plan.bucket];
        shared->own(ellRowIndicesParam(plan.suffix),
                    NDArray::fromInt32(ell.rowIndices));
        shared->own(ellColIndicesParam(plan.suffix),
                    NDArray::fromInt32(ell.colIndices));
        shared->own(hybValuesParam(plan.suffix),
                    NDArray::fromFloat(ell.values));
    }

    for (const HybKernelPlan &plan : plans) {
        result.kernels.push_back(
            std::make_shared<BoundKernel>(plan.func, shared));
    }
    return result;
}

// ---------------------------------------------------------------------
// SDDMM
// ---------------------------------------------------------------------

PrimFunc
compileSddmmFunc(int64_t feat, const SddmmSchedule &params)
{
    PrimFunc stage2 = lowerToStage2(buildSddmm(/*fuse_ij=*/true));
    schedule::Schedule sch(stage2);
    auto loops = sch.getLoops("sddmm");  // ij, k
    auto [ij_o, ij_i] = sch.split(loops[0], params.workloadsPerBlock);
    int group = clampThreadX(feat, params.groupSize);
    auto [k_o, k_i] = sch.split(loops[1], group);
    sch.reorder({k_i, k_o});
    // Two-stage reduction (PRedS): factor the lane dimension out of
    // the reduction, then parallelize it over threadIdx.x.
    sch.rfactor("sddmm", k_i);
    sch.bind(ij_o, "blockIdx.x");
    sch.bind(ij_i, "threadIdx.y");
    sch.bind(k_i, "threadIdx.x");
    return selfVerified(lowerToStage3(sch), "sddmm");
}

std::shared_ptr<BoundKernel>
compileSddmm(const Csr &a, int64_t feat,
             const std::shared_ptr<BindingSet> &shared,
             const SddmmSchedule &params)
{
    PrimFunc stage3 = compileSddmmFunc(feat, params);

    shared->scalar("m", a.rows);
    shared->scalar("n", a.cols);
    shared->scalar("nnz", a.nnz());
    shared->scalar("feat_size", feat);
    shared->own("J_indptr", NDArray::fromInt32(a.indptr));
    shared->own("J_indices", NDArray::fromInt32(a.indices));
    shared->own("A_data", NDArray::fromFloat(a.values));
    return std::make_shared<BoundKernel>(stage3, shared);
}

// ---------------------------------------------------------------------
// BSR SpMM
// ---------------------------------------------------------------------

PrimFunc
compileBsrSpmmFunc(int32_t block_size, int64_t feat,
                   bool tensor_cores)
{
    PrimFunc stage2 = lowerToStage2(buildBsrSpmm(block_size));
    schedule::Schedule sch(stage2);
    auto loops = sch.getLoops("bsr_spmm");  // io, jo, k, ii, ji
    int tx = clampThreadX(feat, 32);
    auto [k_o, k_i] = sch.split(loops[2], tx);
    sch.bind(loops[0], "blockIdx.x");
    sch.bind(k_i, "threadIdx.x");
    if (tensor_cores) {
        sch.tensorize("bsr_spmm", "m16n16k16");
    }
    return selfVerified(lowerToStage3(sch), "bsr_spmm");
}

std::shared_ptr<BoundKernel>
compileBsrSpmm(const format::Bsr &a, int64_t feat,
               const std::shared_ptr<BindingSet> &shared,
               bool tensor_cores)
{
    PrimFunc stage3 =
        compileBsrSpmmFunc(a.blockSize, feat, tensor_cores);

    shared->scalar("mb", a.blockRows);
    shared->scalar("nb", a.blockCols);
    shared->scalar("nnzb", a.nnzBlocks());
    shared->scalar("feat_size", feat);
    shared->own("JO_indptr", NDArray::fromInt32(a.indptr));
    shared->own("JO_indices", NDArray::fromInt32(a.indices));
    shared->own("A_data", NDArray::fromFloat(a.values));
    return std::make_shared<BoundKernel>(stage3, shared);
}

// ---------------------------------------------------------------------
// BSR SDDMM
// ---------------------------------------------------------------------

PrimFunc
compileBsrSddmmFunc(int32_t block_size, int64_t feat,
                    bool tensor_cores)
{
    PrimFunc stage2 = lowerToStage2(buildBsrSddmm(block_size));
    schedule::Schedule sch(stage2);
    auto loops = sch.getLoops("bsr_sddmm");  // io, jo, ii, ji, k
    // One thread block per block row (the row-panel shape): the X
    // panel is loaded once per row and reused across every non-zero
    // block, unlike Triton's per-block reload.
    sch.bind(loops[0], "blockIdx.x");
    sch.bind(loops[3], "threadIdx.x");
    if (tensor_cores) {
        sch.tensorize("bsr_sddmm", "m16n16k16");
    }
    (void)feat;
    return selfVerified(lowerToStage3(sch), "bsr_sddmm");
}

std::shared_ptr<BoundKernel>
compileBsrSddmm(const format::Bsr &a, int64_t feat,
                const std::shared_ptr<BindingSet> &shared,
                bool tensor_cores)
{
    PrimFunc stage3 =
        compileBsrSddmmFunc(a.blockSize, feat, tensor_cores);

    shared->scalar("mb", a.blockRows);
    shared->scalar("nb", a.blockCols);
    shared->scalar("nnzb", a.nnzBlocks());
    shared->scalar("feat_size", feat);
    shared->own("JO_indptr", NDArray::fromInt32(a.indptr));
    shared->own("JO_indices", NDArray::fromInt32(a.indices));
    return std::make_shared<BoundKernel>(stage3, shared);
}

// ---------------------------------------------------------------------
// SR-BCRS SpMM
// ---------------------------------------------------------------------

PrimFunc
compileSrbcrsSpmmFunc(int32_t tile_height, int32_t group_size,
                      int64_t feat)
{
    PrimFunc stage2 = lowerToStage2(
        buildSrbcrsSpmm(tile_height, group_size));
    schedule::Schedule sch(stage2);
    auto loops = sch.getLoops("srbcrs_spmm");  // s, g, t, v, k
    int tx = clampThreadX(feat, 32);
    auto [k_o, k_i] = sch.split(loops[4], tx);
    sch.reorder({k_o, k_i, loops[3], loops[2]});
    sch.bind(loops[0], "blockIdx.x");
    sch.bind(k_i, "threadIdx.x");
    sch.tensorize("srbcrs_spmm", "m8n32k16");
    return selfVerified(lowerToStage3(sch), "srbcrs_spmm");
}

std::shared_ptr<BoundKernel>
compileSrbcrsSpmm(const format::SrBcrs &a, int64_t feat,
                  const std::shared_ptr<BindingSet> &shared)
{
    PrimFunc stage3 =
        compileSrbcrsSpmmFunc(a.tileHeight, a.groupSize, feat);

    shared->scalar("stripes", a.stripes);
    shared->scalar("n", a.cols);
    shared->scalar("total_groups", a.numGroups());
    shared->scalar("feat_size", feat);
    shared->own("G_indptr", NDArray::fromInt32(a.groupIndptr));
    shared->own("T_indices", NDArray::fromInt32(a.tileCols));
    shared->own("A_data", NDArray::fromFloat(a.values));
    return std::make_shared<BoundKernel>(stage3, shared);
}

// ---------------------------------------------------------------------
// ELL RGMS (fused gather-matmul-scatter)
// ---------------------------------------------------------------------

PrimFunc
compileEllRgmsFunc(int64_t num_rows, int width, int64_t feat_in,
                   int64_t feat_out, const std::string &suffix,
                   bool tensor_cores, int rows_per_block)
{
    const std::string block_name = "rgms_" + suffix;
    PrimFunc stage2 = lowerToStage2(
        buildEllRgms(num_rows, width, feat_in, feat_out, suffix));
    schedule::Schedule sch(stage2);
    auto loops = sch.getLoops(block_name);  // o, i, j, k, l
    std::string fused = sch.fuse(loops[0], loops[1]);
    int rpb = static_cast<int>(
        std::min<int64_t>(std::max(rows_per_block, 1), num_rows));
    auto [f_o, f_i] = sch.split(fused, rpb);
    int tx = clampThreadX(feat_out, 32);
    auto [l_o, l_i] = sch.split(loops[4], tx);
    sch.reorder({l_o, l_i, loops[2], loops[3]});
    sch.bind(f_o, "blockIdx.x");
    sch.bind(f_i, "threadIdx.y");
    sch.bind(l_i, "threadIdx.x");
    // Pin the relation's weight matrix in shared memory (Figure 21).
    sch.cacheRead(f_i, "W", MemScope::kShared);
    sch.cacheWrite(block_name, "Y", /*accumulate=*/true);
    if (tensor_cores) {
        sch.tensorize(block_name, "m16n16k16");
    }
    return selfVerified(lowerToStage3(sch), block_name);
}

std::shared_ptr<BoundKernel>
compileEllRgms(const format::Ell &bucket, int64_t feat_in,
               int64_t feat_out,
               const std::shared_ptr<BindingSet> &shared,
               const std::string &suffix, bool tensor_cores,
               int rows_per_block)
{
    PrimFunc stage3 =
        compileEllRgmsFunc(bucket.numRows(), bucket.width, feat_in,
                           feat_out, suffix, tensor_cores,
                           rows_per_block);

    shared->scalar("feat_in", feat_in);
    shared->scalar("feat_out", feat_out);
    shared->own(ellRowIndicesParam(suffix),
                NDArray::fromInt32(bucket.rowIndices));
    shared->own(ellColIndicesParam(suffix),
                NDArray::fromInt32(bucket.colIndices));
    shared->own(rgmsValuesParam(suffix),
                NDArray::fromFloat(bucket.values));
    return std::make_shared<BoundKernel>(stage3, shared);
}

// ---------------------------------------------------------------------
// References
// ---------------------------------------------------------------------

std::vector<float>
referenceSpmm(const Csr &a, const std::vector<float> &b, int64_t feat)
{
    ICHECK_EQ(static_cast<int64_t>(b.size()), a.cols * feat);
    std::vector<float> out(a.rows * feat, 0.0f);
    for (int64_t r = 0; r < a.rows; ++r) {
        for (int32_t p = a.indptr[r]; p < a.indptr[r + 1]; ++p) {
            float v = a.values[p];
            const float *brow = &b[static_cast<int64_t>(a.indices[p]) *
                                   feat];
            float *crow = &out[r * feat];
            for (int64_t k = 0; k < feat; ++k) {
                crow[k] += v * brow[k];
            }
        }
    }
    return out;
}

std::vector<float>
referenceSddmm(const Csr &a, const std::vector<float> &x,
               const std::vector<float> &y, int64_t feat)
{
    std::vector<float> out(a.nnz(), 0.0f);
    for (int64_t r = 0; r < a.rows; ++r) {
        for (int32_t p = a.indptr[r]; p < a.indptr[r + 1]; ++p) {
            int64_t c = a.indices[p];
            float acc = 0.0f;
            for (int64_t k = 0; k < feat; ++k) {
                acc += x[r * feat + k] * y[k * a.cols + c];
            }
            out[p] = a.values[p] * acc;
        }
    }
    return out;
}

} // namespace core
} // namespace sparsetir
