#!/usr/bin/env python3
"""CI perf gate over bench_engine_throughput's JSON output.

Usage: check_perf_gate.py <bench.json> <min_backend_speedup>

Fails (exit 1) when the bytecode backend's warm-dispatch speedup over
the interpreter falls below the threshold, or when the two backends
stopped producing bitwise-identical outputs. The JSON itself is
uploaded as a workflow artifact so the speedup trajectory is
trackable across commits.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    path, threshold = sys.argv[1], float(sys.argv[2])
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)

    speedup = data["backend_speedup"]
    identical = data["bitwise_identical"]
    print(
        f"perf gate: interpreter {data['interpreter_warm_ms']:.2f} ms -> "
        f"bytecode {data['bytecode_warm_ms']:.2f} ms = {speedup:.2f}x "
        f"(threshold {threshold:.1f}x), bitwise_identical={identical}"
    )
    if not identical:
        print("FAIL: backends diverged bitwise", file=sys.stderr)
        return 1
    if speedup < threshold:
        print(
            f"FAIL: backend speedup {speedup:.2f}x below the "
            f"{threshold:.1f}x gate",
            file=sys.stderr,
        )
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
