#include "baselines/torchsparse.h"

namespace sparsetir {
namespace baselines {

TorchSparseConv
torchsparseConv(const format::RelationalCsr &maps, int64_t feat_in,
                int64_t feat_out)
{
    TorchSparseConv conv;
    for (size_t r = 0; r < maps.relations.size(); ++r) {
        const format::Csr &rel = maps.relations[r];
        int64_t pairs = rel.nnz();
        if (pairs == 0) {
            continue;
        }
        std::string tag = "_r" + std::to_string(r);
        conv.kernels.push_back(std::make_unique<GatherScatterKernel>(
            "ts_gather" + tag, pairs, feat_in, false));
        conv.kernels.push_back(std::make_unique<DenseGemmKernel>(
            "ts_gemm" + tag, pairs, feat_out, feat_in, false));
        conv.kernels.push_back(std::make_unique<GatherScatterKernel>(
            "ts_scatter" + tag, pairs, feat_out, true));
        conv.intermediateBytes += pairs * (feat_in + feat_out) * 4;
    }
    return conv;
}

} // namespace baselines
} // namespace sparsetir
