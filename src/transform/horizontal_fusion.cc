#include "transform/horizontal_fusion.h"

#include <map>
#include <set>

#include "ir/functor.h"
#include "ir/simplify.h"

namespace sparsetir {
namespace transform {

using namespace ir;

PrimFunc
horizontalFuse(const std::vector<PrimFunc> &kernels,
               const std::string &name)
{
    USER_CHECK(!kernels.empty()) << "nothing to fuse";
    Var fused_block = var("blk", DataType::int32());
    std::vector<Stmt> guarded;
    int64_t offset = 0;
    PrimFunc out = primFunc(name);
    out->stage = IrStage::kStage3;
    std::set<const VarNode *> seen_params;

    for (const auto &kernel : kernels) {
        USER_CHECK(kernel->stage == IrStage::kStage3)
            << "horizontal fusion expects Stage III kernels";
        USER_CHECK(kernel->body->kind == StmtKind::kFor)
            << "kernel '" << kernel->name
            << "' must start with a blockIdx.x loop";
        auto loop = static_cast<const ForNode *>(kernel->body.get());
        USER_CHECK(loop->forKind == ForKind::kThreadBinding &&
                   loop->threadTag == "blockIdx.x")
            << "kernel '" << kernel->name
            << "' must start with a blockIdx.x loop";
        int64_t extent = 0;
        USER_CHECK(tryConstInt(simplify(loop->extent), &extent))
            << "fusable kernels need constant grid sizes";

        // Body with blockIdx rebased: var = blk - offset.
        std::map<const VarNode *, Expr> subst{
            {loop->loopVar.get(),
             simplify(sub(fused_block, intImm(offset)))}};
        Stmt body = substitute(loop->body, subst);
        Expr in_range = logicalAnd(
            ge(fused_block, intImm(offset)),
            lt(fused_block, intImm(offset + extent)));
        guarded.push_back(ifThenElse(simplify(in_range), body));
        offset += extent;

        for (const auto &param : kernel->params) {
            if (seen_params.insert(param.get()).second) {
                out->params.push_back(param);
            }
        }
        for (const auto &[param, buffer] : kernel->bufferMap) {
            bool present = false;
            for (const auto &[p2, b2] : out->bufferMap) {
                if (p2.get() == param.get()) {
                    present = true;
                    break;
                }
            }
            if (!present) {
                out->bufferMap.emplace_back(param, buffer);
            }
        }
    }

    out->body = forLoop(fused_block, intImm(0), intImm(offset),
                        seq(std::move(guarded)),
                        ForKind::kThreadBinding, "blockIdx.x");
    return out;
}

} // namespace transform
} // namespace sparsetir
