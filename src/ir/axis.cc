#include "ir/axis.h"

#include <algorithm>

namespace sparsetir {
namespace ir {

Axis
denseFixed(std::string name, Expr length, DataType idtype)
{
    auto node = std::make_shared<AxisNode>();
    node->name = std::move(name);
    node->kind = AxisKind::kDenseFixed;
    node->length = length;
    node->nnzCols = length;
    node->idtype = idtype;
    return node;
}

Axis
denseVariable(std::string name, Axis parent, Expr length, Expr nnz,
              Var indptr, DataType idtype)
{
    ICHECK(parent != nullptr) << "variable axis requires a parent";
    auto node = std::make_shared<AxisNode>();
    node->name = std::move(name);
    node->kind = AxisKind::kDenseVariable;
    node->parent = std::move(parent);
    node->length = std::move(length);
    node->nnz = std::move(nnz);
    node->indptr = std::move(indptr);
    node->idtype = idtype;
    return node;
}

Axis
sparseFixed(std::string name, Axis parent, Expr length, Expr nnz_cols,
            Var indices, DataType idtype)
{
    ICHECK(parent != nullptr) << "sparse-fixed axis requires a parent";
    auto node = std::make_shared<AxisNode>();
    node->name = std::move(name);
    node->kind = AxisKind::kSparseFixed;
    node->parent = std::move(parent);
    node->length = std::move(length);
    node->nnzCols = std::move(nnz_cols);
    node->indices = std::move(indices);
    node->idtype = idtype;
    return node;
}

Axis
sparseVariable(std::string name, Axis parent, Expr length, Expr nnz,
               Var indptr, Var indices, DataType idtype)
{
    ICHECK(parent != nullptr) << "sparse-variable axis requires a parent";
    auto node = std::make_shared<AxisNode>();
    node->name = std::move(name);
    node->kind = AxisKind::kSparseVariable;
    node->parent = std::move(parent);
    node->length = std::move(length);
    node->nnz = std::move(nnz);
    node->indptr = std::move(indptr);
    node->indices = std::move(indices);
    node->idtype = idtype;
    return node;
}

std::vector<Axis>
ancestors(const Axis &axis)
{
    std::vector<Axis> chain;
    for (Axis a = axis; a != nullptr; a = a->parent) {
        chain.push_back(a);
    }
    std::reverse(chain.begin(), chain.end());
    return chain;
}

} // namespace ir
} // namespace sparsetir
