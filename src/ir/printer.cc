#include "ir/printer.h"

#include <sstream>

namespace sparsetir {
namespace ir {

namespace {

const char *
binaryOpSymbol(ExprKind kind)
{
    switch (kind) {
      case ExprKind::kAdd:
        return " + ";
      case ExprKind::kSub:
        return " - ";
      case ExprKind::kMul:
        return " * ";
      case ExprKind::kFloorDiv:
        return " // ";
      case ExprKind::kFloorMod:
        return " % ";
      case ExprKind::kDiv:
        return " / ";
      case ExprKind::kEQ:
        return " == ";
      case ExprKind::kNE:
        return " != ";
      case ExprKind::kLT:
        return " < ";
      case ExprKind::kLE:
        return " <= ";
      case ExprKind::kGT:
        return " > ";
      case ExprKind::kGE:
        return " >= ";
      case ExprKind::kAnd:
        return " and ";
      case ExprKind::kOr:
        return " or ";
      default:
        return nullptr;
    }
}

const char *
builtinName(Builtin op)
{
    switch (op) {
      case Builtin::kLowerBound:
        return "lower_bound";
      case Builtin::kUpperBound:
        return "upper_bound";
      case Builtin::kExp:
        return "exp";
      case Builtin::kLog:
        return "log";
      case Builtin::kSqrt:
        return "sqrt";
      case Builtin::kAbs:
        return "abs";
      case Builtin::kAtomicAdd:
        return "atomic_add";
      case Builtin::kExtern:
        return "extern";
    }
    return "?";
}

class Printer
{
  public:
    std::string
    expr(const Expr &e)
    {
        std::ostringstream os;
        printExpr(e, os);
        return os.str();
    }

    std::string
    stmt(const Stmt &s, int indent)
    {
        std::ostringstream os;
        printStmt(s, indent, os);
        return os.str();
    }

  private:
    void
    indentTo(int indent, std::ostringstream &os)
    {
        for (int i = 0; i < indent; ++i) {
            os << "    ";
        }
    }

    void
    printExpr(const Expr &e, std::ostringstream &os)
    {
        if (const char *sym = binaryOpSymbol(e->kind)) {
            auto op = static_cast<const BinaryNode *>(e.get());
            os << "(";
            printExpr(op->a, os);
            os << sym;
            printExpr(op->b, os);
            os << ")";
            return;
        }
        switch (e->kind) {
          case ExprKind::kIntImm: {
            auto op = static_cast<const IntImmNode *>(e.get());
            if (op->dtype.isBool()) {
                os << (op->value != 0 ? "True" : "False");
            } else {
                os << op->value;
            }
            break;
          }
          case ExprKind::kFloatImm: {
            auto op = static_cast<const FloatImmNode *>(e.get());
            std::ostringstream tmp;
            tmp << op->value;
            std::string text = tmp.str();
            os << text;
            if (text.find('.') == std::string::npos &&
                text.find('e') == std::string::npos &&
                text.find("inf") == std::string::npos &&
                text.find("nan") == std::string::npos) {
                os << ".0";
            }
            break;
          }
          case ExprKind::kStringImm:
            os << '"' << static_cast<const StringImmNode *>(e.get())->value
               << '"';
            break;
          case ExprKind::kVar:
            os << static_cast<const VarNode *>(e.get())->name;
            break;
          case ExprKind::kMin:
          case ExprKind::kMax: {
            auto op = static_cast<const BinaryNode *>(e.get());
            os << (e->kind == ExprKind::kMin ? "min(" : "max(");
            printExpr(op->a, os);
            os << ", ";
            printExpr(op->b, os);
            os << ")";
            break;
          }
          case ExprKind::kNot: {
            auto op = static_cast<const NotNode *>(e.get());
            os << "not ";
            printExpr(op->a, os);
            break;
          }
          case ExprKind::kSelect: {
            auto op = static_cast<const SelectNode *>(e.get());
            os << "select(";
            printExpr(op->cond, os);
            os << ", ";
            printExpr(op->trueValue, os);
            os << ", ";
            printExpr(op->falseValue, os);
            os << ")";
            break;
          }
          case ExprKind::kCast: {
            auto op = static_cast<const CastNode *>(e.get());
            os << op->dtype.str() << "(";
            printExpr(op->value, os);
            os << ")";
            break;
          }
          case ExprKind::kBufferLoad: {
            auto op = static_cast<const BufferLoadNode *>(e.get());
            os << op->buffer->name << "[";
            for (size_t i = 0; i < op->indices.size(); ++i) {
                if (i > 0) {
                    os << ", ";
                }
                printExpr(op->indices[i], os);
            }
            os << "]";
            break;
          }
          case ExprKind::kRamp: {
            auto op = static_cast<const RampNode *>(e.get());
            os << "ramp(";
            printExpr(op->base, os);
            os << ", ";
            printExpr(op->stride, os);
            os << ", " << op->lanes << ")";
            break;
          }
          case ExprKind::kBroadcast: {
            auto op = static_cast<const BroadcastNode *>(e.get());
            os << "broadcast(";
            printExpr(op->value, os);
            os << ", " << op->lanes << ")";
            break;
          }
          case ExprKind::kCall: {
            auto op = static_cast<const CallNode *>(e.get());
            if (op->op == Builtin::kExtern) {
                os << op->name << "(";
            } else {
                os << builtinName(op->op) << "(";
            }
            bool first = true;
            if (op->bufferArg != nullptr) {
                os << op->bufferArg->name;
                first = false;
            }
            for (const auto &arg : op->args) {
                if (!first) {
                    os << ", ";
                }
                first = false;
                printExpr(arg, os);
            }
            os << ")";
            break;
          }
          default:
            ICHECK(false) << "unhandled expr kind in printer";
        }
    }

    void
    printStmt(const Stmt &s, int indent, std::ostringstream &os)
    {
        switch (s->kind) {
          case StmtKind::kBufferStore: {
            auto op = static_cast<const BufferStoreNode *>(s.get());
            indentTo(indent, os);
            os << op->buffer->name << "[";
            for (size_t i = 0; i < op->indices.size(); ++i) {
                if (i > 0) {
                    os << ", ";
                }
                printExpr(op->indices[i], os);
            }
            os << "] = ";
            printExpr(op->value, os);
            os << "\n";
            break;
          }
          case StmtKind::kSeq: {
            auto op = static_cast<const SeqStmtNode *>(s.get());
            if (op->seq.empty()) {
                indentTo(indent, os);
                os << "pass\n";
            }
            for (const auto &child : op->seq) {
                printStmt(child, indent, os);
            }
            break;
          }
          case StmtKind::kFor: {
            auto op = static_cast<const ForNode *>(s.get());
            indentTo(indent, os);
            os << "for " << op->loopVar->name;
            switch (op->forKind) {
              case ForKind::kSerial:
                os << " in range(";
                break;
              case ForKind::kParallel:
                os << " in parallel(";
                break;
              case ForKind::kVectorized:
                os << " in vectorized(";
                break;
              case ForKind::kUnrolled:
                os << " in unrolled(";
                break;
              case ForKind::kThreadBinding:
                os << " in thread_binding(\"" << op->threadTag << "\", ";
                break;
            }
            if (!isConstInt(op->minValue, 0)) {
                printExpr(op->minValue, os);
                os << ", ";
                printExpr(add(op->minValue, op->extent), os);
            } else {
                printExpr(op->extent, os);
            }
            os << "):\n";
            printStmt(op->body, indent + 1, os);
            break;
          }
          case StmtKind::kBlock: {
            auto op = static_cast<const BlockNode *>(s.get());
            indentTo(indent, os);
            os << "with block(\"" << op->name << "\"):\n";
            if (!op->reads.empty() || !op->writes.empty()) {
                indentTo(indent + 1, os);
                os << "# reads: [";
                for (size_t i = 0; i < op->reads.size(); ++i) {
                    os << (i > 0 ? ", " : "") << op->reads[i].buffer->name;
                }
                os << "] writes: [";
                for (size_t i = 0; i < op->writes.size(); ++i) {
                    os << (i > 0 ? ", " : "") << op->writes[i].buffer->name;
                }
                os << "]\n";
            }
            for (const auto &[key, value] : op->annotations) {
                indentTo(indent + 1, os);
                os << "# attr: " << key << " = " << expr(value) << "\n";
            }
            if (op->init != nullptr) {
                indentTo(indent + 1, os);
                os << "with init():\n";
                printStmt(op->init, indent + 2, os);
            }
            printStmt(op->body, indent + 1, os);
            break;
          }
          case StmtKind::kIfThenElse: {
            auto op = static_cast<const IfThenElseNode *>(s.get());
            indentTo(indent, os);
            os << "if ";
            printExpr(op->cond, os);
            os << ":\n";
            printStmt(op->thenBody, indent + 1, os);
            if (op->elseBody != nullptr) {
                indentTo(indent, os);
                os << "else:\n";
                printStmt(op->elseBody, indent + 1, os);
            }
            break;
          }
          case StmtKind::kLetStmt: {
            auto op = static_cast<const LetStmtNode *>(s.get());
            indentTo(indent, os);
            os << op->letVar->name << " = ";
            printExpr(op->value, os);
            os << "\n";
            printStmt(op->body, indent, os);
            break;
          }
          case StmtKind::kAllocate: {
            auto op = static_cast<const AllocateNode *>(s.get());
            indentTo(indent, os);
            os << op->buffer->name << " = alloc(["
               << "";
            for (size_t i = 0; i < op->buffer->shape.size(); ++i) {
                os << (i > 0 ? ", " : "");
                printExpr(op->buffer->shape[i], os);
            }
            os << "], \"" << op->buffer->dtype.str() << "\", \""
               << memScopeName(op->buffer->scope) << "\")\n";
            printStmt(op->body, indent, os);
            break;
          }
          case StmtKind::kEvaluate: {
            auto op = static_cast<const EvaluateNode *>(s.get());
            indentTo(indent, os);
            printExpr(op->value, os);
            os << "\n";
            break;
          }
          case StmtKind::kSparseIteration: {
            auto op = static_cast<const SparseIterationNode *>(s.get());
            indentTo(indent, os);
            os << "with sp_iter([";
            size_t axis_pos = 0;
            for (size_t g = 0; g < op->fuseGroups.size(); ++g) {
                if (g > 0) {
                    os << ", ";
                }
                if (op->fuseGroups[g] > 1) {
                    os << "fuse(";
                }
                for (int k = 0; k < op->fuseGroups[g]; ++k) {
                    if (k > 0) {
                        os << ", ";
                    }
                    os << op->axes[axis_pos++]->name;
                }
                if (op->fuseGroups[g] > 1) {
                    os << ")";
                }
            }
            os << "], \"";
            for (auto kind : op->iterKinds) {
                os << (kind == IterKind::kSpatial ? 'S' : 'R');
            }
            os << "\", \"" << op->name << "\") as [";
            for (size_t i = 0; i < op->iterVars.size(); ++i) {
                os << (i > 0 ? ", " : "") << op->iterVars[i]->name;
            }
            os << "]:\n";
            if (op->init != nullptr) {
                indentTo(indent + 1, os);
                os << "with init():\n";
                printStmt(op->init, indent + 2, os);
            }
            printStmt(op->body, indent + 1, os);
            break;
          }
          default:
            ICHECK(false) << "unhandled stmt kind in printer";
        }
    }
};

} // namespace

std::string
exprToString(const Expr &e)
{
    Printer p;
    return p.expr(e);
}

std::string
stmtToString(const Stmt &s, int indent)
{
    Printer p;
    return p.stmt(s, indent);
}

std::string
axisToString(const Axis &axis)
{
    std::ostringstream os;
    os << axis->name << " = ";
    switch (axis->kind) {
      case AxisKind::kDenseFixed:
        os << "dense_fixed(" << exprToString(axis->length) << ")";
        break;
      case AxisKind::kDenseVariable:
        os << "dense_variable(" << axis->parent->name << ", ("
           << exprToString(axis->length) << ", " << exprToString(axis->nnz)
           << "), " << axis->indptr->name << ")";
        break;
      case AxisKind::kSparseFixed:
        os << "sparse_fixed(" << axis->parent->name << ", ("
           << exprToString(axis->length) << ", "
           << exprToString(axis->nnzCols) << "), " << axis->indices->name
           << ")";
        break;
      case AxisKind::kSparseVariable:
        os << "sparse_variable(" << axis->parent->name << ", ("
           << exprToString(axis->length) << ", " << exprToString(axis->nnz)
           << "), (" << axis->indptr->name << ", " << axis->indices->name
           << "))";
        break;
    }
    os << ", \"" << axis->idtype.str() << "\"";
    return os.str();
}

std::string
funcToString(const PrimFunc &func)
{
    std::ostringstream os;
    os << "@prim_func";
    switch (func->stage) {
      case IrStage::kStage1:
        os << "  # stage I (coordinate space)";
        break;
      case IrStage::kStage2:
        os << "  # stage II (position space)";
        break;
      case IrStage::kStage3:
        os << "  # stage III (loop-level)";
        break;
    }
    os << "\ndef " << func->name << "(";
    for (size_t i = 0; i < func->params.size(); ++i) {
        os << (i > 0 ? ", " : "") << func->params[i]->name << ": "
           << func->params[i]->dtype.str();
    }
    os << "):\n";
    for (const auto &axis : func->axes) {
        os << "    " << axisToString(axis) << "\n";
    }
    for (const auto &[param, buffer] : func->bufferMap) {
        os << "    " << buffer->name << " = ";
        if (buffer->isSparse()) {
            os << "match_sparse_buffer(" << param->name << ", (";
            for (size_t i = 0; i < buffer->axes.size(); ++i) {
                os << (i > 0 ? ", " : "") << buffer->axes[i]->name;
            }
            os << ")";
        } else {
            os << "match_buffer(" << param->name << ", (";
            for (size_t i = 0; i < buffer->shape.size(); ++i) {
                os << (i > 0 ? ", " : "") << exprToString(buffer->shape[i]);
            }
            os << ")";
        }
        os << ", \"" << buffer->dtype.str() << "\")\n";
    }
    if (func->body != nullptr) {
        os << stmtToString(func->body, 1);
    }
    return os.str();
}

} // namespace ir
} // namespace sparsetir
