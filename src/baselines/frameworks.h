/**
 * @file
 * Framework-level stand-ins: DGL/FeatGraph SDDMM (the Figure 14
 * baseline), and the DGL / PyG / Graphiler RGCN execution plans of
 * Figure 20 (per-relation two-stage gather-matmul-scatter with the
 * intermediate T materialized in HBM).
 */

#ifndef SPARSETIR_BASELINES_FRAMEWORKS_H_
#define SPARSETIR_BASELINES_FRAMEWORKS_H_

#include <memory>
#include <vector>

#include "baselines/models.h"
#include "format/relational.h"
#include "gpusim/simulator.h"

namespace sparsetir {
namespace baselines {

/** DGL's SDDMM (FeatGraph schedule): row-parallel, vectorized. */
std::unique_ptr<gpusim::Kernel> dglSddmm(const format::Csr &a,
                                         int64_t feat);

/** DGL's SpMM dispatch (cuSPARSE-backed). */
std::unique_ptr<gpusim::Kernel> dglSpmm(const format::Csr &a,
                                        int64_t feat);

/** An RGCN inference execution plan: a kernel sequence + footprint. */
struct RgcnPlan
{
    std::vector<std::unique_ptr<gpusim::Kernel>> kernels;
    /** Extra launches charged (framework dispatch overhead). */
    int extraLaunches = 0;
    /** Bytes of materialized intermediates. */
    int64_t intermediateBytes = 0;
};

/**
 * DGL RGCN: per relation, dense GEMM T_r = X @ W_r over all source
 * nodes, then SpMM-style scatter of T_r (two-stage, T in HBM).
 */
RgcnPlan dglRgcn(const format::RelationalCsr &graph, int64_t feat_in,
                 int64_t feat_out);

/**
 * PyG RGCN: edge-wise gather of transformed features (higher traffic,
 * per-edge intermediate).
 */
RgcnPlan pygRgcn(const format::RelationalCsr &graph, int64_t feat_in,
                 int64_t feat_out);

/**
 * Graphiler RGCN: compiled message passing; single fused pass per
 * relation without HBM T for messages, but no load-balanced format
 * and no Tensor Cores.
 */
RgcnPlan graphilerRgcn(const format::RelationalCsr &graph,
                       int64_t feat_in, int64_t feat_out);

} // namespace baselines
} // namespace sparsetir

#endif // SPARSETIR_BASELINES_FRAMEWORKS_H_
