/**
 * @file
 * Reproduces Figure 15: end-to-end GraphSAGE training speedup of
 * PyTorch+SparseTIR over DGL.
 */

#include <cstdio>

#include "bench_util.h"
#include "graph/datasets.h"
#include "model/graphsage.h"

using namespace sparsetir;

namespace {

void
runDevice(const gpusim::GpuSpec &spec, bool include_reddit)
{
    gpusim::Device device(spec);
    std::printf("\n--- %s ---\n", spec.name.c_str());
    std::printf("%-15s %12s %14s %10s\n", "graph", "DGL(ms)",
                "SparseTIR(ms)", "speedup");
    for (const auto &dataset : graph::table1Datasets()) {
        if (dataset.name == "ogbn-proteins") {
            continue;  // not part of Figure 15
        }
        if (dataset.name == "reddit" && !include_reddit) {
            continue;  // paper: OOM on RTX 3070
        }
        graph::DatasetSpec ds = dataset;
        if (benchutil::fastMode()) {
            ds.nodes = std::min<int64_t>(ds.nodes, 20000);
            ds.edges = std::min<int64_t>(ds.edges, 300000);
        }
        format::Csr g = graph::generateDataset(ds);
        model::GraphSageConfig config;
        model::GraphSageResult result =
            model::graphSageEpoch(g, config, device, 4);
        std::printf("%-15s %12.3f %14.3f %9.2fx\n", ds.name.c_str(),
                    result.dglMs, result.sparsetirMs,
                    result.dglMs / result.sparsetirMs);
    }
}

} // namespace

int
main()
{
    benchutil::printHeader(
        "Figure 15: end-to-end GraphSAGE training, "
        "PyTorch+SparseTIR vs DGL");
    runDevice(gpusim::GpuSpec::v100(), true);
    runDevice(gpusim::GpuSpec::rtx3070(), false);
    std::printf(
        "\nPaper: 1.18-1.52x on V100, 1.08-1.47x on RTX3070. The gain "
        "is bounded by the dense\nGEMM share of the epoch (Amdahl), so "
        "expect mid-range speedups smaller than Figure 13's.\n");
    return 0;
}
