/**
 * @file
 * Backend tests: CUDA source emission goldens, horizontal fusion
 * semantics, interpreter edge cases and the autotuner contract.
 */

#include <gtest/gtest.h>

#include <memory>

#include "autotune/search.h"
#include "codegen/cuda_codegen.h"
#include "core/ops.h"
#include "core/pipeline.h"
#include "graph/generator.h"
#include "support/rng.h"
#include "transform/horizontal_fusion.h"
#include "transform/lower_sparse_buffer.h"
#include "transform/lower_sparse_iter.h"

namespace sparsetir {
namespace {

using core::BindingSet;
using runtime::NDArray;

TEST(Codegen, SpmmKernelShape)
{
    format::Csr a;
    a.rows = 2;
    a.cols = 2;
    a.indptr = {0, 1, 2};
    a.indices = {0, 1};
    a.values = {1.0f, 2.0f};
    auto shared = std::make_shared<BindingSet>();
    auto kernel = core::compileSpmmCsr(a, 8, shared);
    std::string cuda = codegen::emitCuda(kernel->func());
    // Signature and GPU mapping.
    EXPECT_NE(cuda.find("__global__ void spmm("), std::string::npos)
        << cuda;
    EXPECT_NE(cuda.find("= blockIdx.x;"), std::string::npos) << cuda;
    EXPECT_NE(cuda.find("= threadIdx.x;"), std::string::npos) << cuda;
    // Register accumulator from cache_write.
    EXPECT_NE(cuda.find("float C_local[1];"), std::string::npos)
        << cuda;
    // Flattened CSR access through indptr.
    EXPECT_NE(cuda.find("J_indptr["), std::string::npos) << cuda;
}

TEST(Codegen, TensorizeAnnotationSurfaces)
{
    format::Csr a;
    a.rows = 4;
    a.cols = 4;
    a.indptr = {0, 1, 1, 1, 2};
    a.indices = {0, 3};
    a.values = {1.0f, 1.0f};
    format::Bsr bsr = format::bsrFromCsr(a, 2);
    auto shared = std::make_shared<BindingSet>();
    auto kernel = core::compileBsrSpmm(bsr, 8, shared, true);
    std::string cuda = codegen::emitCuda(kernel->func());
    EXPECT_NE(cuda.find("wmma::mma_sync m16n16k16"),
              std::string::npos)
        << cuda;
}

TEST(HorizontalFusion, MergesGridsAndPreservesResults)
{
    // Two single-block kernels writing disjoint halves of C.
    using namespace ir;
    Buffer c = denseBuffer("C", {intImm(8)});
    auto make_kernel = [&](int64_t base, const std::string &name) {
        Var blk = var("blk_" + name);
        Var i = var("i_" + name);
        Stmt store = bufferStore(
            c, {add(intImm(base), i)},
            cast(c->dtype, add(i, intImm(base * 10))));
        Stmt body = forLoop(i, intImm(0), intImm(4), store);
        PrimFunc f = primFunc(name);
        f->stage = IrStage::kStage3;
        f->params = {c->data};
        f->bufferMap = {{c->data, c}};
        f->body = forLoop(blk, intImm(0), intImm(1), body,
                          ForKind::kThreadBinding, "blockIdx.x");
        return f;
    };
    PrimFunc a = make_kernel(0, "ka");
    PrimFunc b = make_kernel(4, "kb");
    PrimFunc fused = transform::horizontalFuse({a, b}, "fused");

    NDArray storage({8}, DataType::float32());
    runtime::Bindings bindings;
    bindings.arrays = {{"C_data", &storage}};
    runtime::run(fused, bindings);
    for (int64_t i = 0; i < 4; ++i) {
        EXPECT_FLOAT_EQ(storage.floatAt(i), static_cast<float>(i));
        EXPECT_FLOAT_EQ(storage.floatAt(4 + i),
                        static_cast<float>(40 + i));
    }
}

TEST(Interpreter, MissingBindingFailsOnlyWhenTouched)
{
    format::Csr a;
    a.rows = 2;
    a.cols = 2;
    a.indptr = {0, 1, 2};
    a.indices = {0, 1};
    a.values = {1.0f, 2.0f};
    auto shared = std::make_shared<BindingSet>();
    auto kernel = core::compileSpmmCsr(a, 4, shared);
    // B/C not bound: execution must fail with a clear error.
    EXPECT_THROW(kernel->execute(), InternalError);
}

TEST(Interpreter, ZeroExtentLoopsAndEmptyMatrix)
{
    format::Csr a;
    a.rows = 3;
    a.cols = 3;
    a.indptr = {0, 0, 0, 0};  // all rows empty
    auto shared = std::make_shared<BindingSet>();
    auto kernel = core::compileSpmmCsr(a, 4, shared);
    NDArray b({3 * 4}, ir::DataType::float32());
    NDArray c({3 * 4}, ir::DataType::float32());
    shared->external("B_data", &b);
    shared->external("C_data", &c);
    EXPECT_NO_THROW(kernel->execute());
    for (int64_t i = 0; i < c.numel(); ++i) {
        EXPECT_FLOAT_EQ(c.floatAt(i), 0.0f);
    }
}

TEST(Autotune, ReturnsBestOfTried)
{
    format::Csr g = graph::powerLawGraph(800, 12000, 1.7, 17);
    gpusim::Device device(gpusim::GpuSpec::v100());
    autotune::HybTuneResult result =
        autotune::tuneSpmmHyb(g, 32, device, {1, 2, 4});
    ASSERT_EQ(result.tried.size(), 3u);
    for (const auto &cand : result.tried) {
        EXPECT_GE(cand.timeMs, result.best.timeMs);
    }
}

TEST(Autotune, SddmmSearchImprovesOrMatchesDefault)
{
    format::Csr g = graph::powerLawGraph(600, 9000, 1.8, 19);
    gpusim::Device device(gpusim::GpuSpec::v100());
    // Default schedule cost.
    auto shared = std::make_shared<BindingSet>();
    NDArray x({g.rows * 32}, ir::DataType::float32());
    NDArray y({32 * g.cols}, ir::DataType::float32());
    NDArray out({g.nnz()}, ir::DataType::float32());
    shared->external("X_data", &x);
    shared->external("Y_data", &y);
    shared->external("B_data", &out);
    auto kernel = core::compileSddmm(g, 32, shared);
    double default_ms =
        device.launch(kernel->simKernel()).timeMs;
    autotune::SddmmCandidate best =
        autotune::tuneSddmm(g, 32, device);
    EXPECT_LE(best.timeMs, default_ms * 1.05);
}

} // namespace
} // namespace sparsetir
