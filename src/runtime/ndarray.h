/**
 * @file
 * Host tensor container used to bind data to PrimFunc parameters.
 */

#ifndef SPARSETIR_RUNTIME_NDARRAY_H_
#define SPARSETIR_RUNTIME_NDARRAY_H_

#include <cstring>
#include <vector>

#include "ir/dtype.h"
#include "support/logging.h"

namespace sparsetir {
namespace runtime {

using ir::DataType;

/**
 * A dense row-major tensor on the host.
 *
 * Integer types are stored at declared width; float16 values are kept
 * in float storage (precision of fp16 arithmetic is not modelled, only
 * its memory traffic — see DESIGN.md substitution notes).
 */
class NDArray
{
  public:
    NDArray() = default;

    NDArray(std::vector<int64_t> shape, DataType dtype);

    /** Convenience: 1-D int32 array from values. */
    static NDArray fromInt32(const std::vector<int32_t> &values);
    /** Convenience: 1-D float32 array from values. */
    static NDArray fromFloat(const std::vector<float> &values);

    const std::vector<int64_t> &shape() const { return shape_; }
    DataType dtype() const { return dtype_; }

    int64_t numel() const { return numel_; }

    /** Storage element width in bytes. */
    int elemBytes() const;

    /** Flat integer read (int-typed arrays). */
    int64_t intAt(int64_t offset) const;
    /** Flat integer write. */
    void setInt(int64_t offset, int64_t value);

    /** Flat float read (float-typed arrays). */
    double floatAt(int64_t offset) const;
    /** Flat float write. */
    void setFloat(int64_t offset, double value);

    /** Row-major offset of a multi-dim index. */
    int64_t
    offsetOf(const std::vector<int64_t> &index) const
    {
        ICHECK_EQ(index.size(), shape_.size());
        int64_t offset = 0;
        for (size_t d = 0; d < shape_.size(); ++d) {
            ICHECK_GE(index[d], 0);
            ICHECK_LT(index[d], shape_[d]);
            offset = offset * shape_[d] + index[d];
        }
        return offset;
    }

    /** Fill with zeros. */
    void zero();

    /** Raw storage for bulk initialization. */
    void *rawData() { return data_.data(); }
    const void *rawData() const { return data_.data(); }

  private:
    std::vector<int64_t> shape_;
    DataType dtype_;
    int64_t numel_ = 0;
    std::vector<unsigned char> data_;
};

/** Max |a-b| over two float arrays of identical shape. */
double maxAbsDiff(const NDArray &a, const NDArray &b);

} // namespace runtime
} // namespace sparsetir

#endif // SPARSETIR_RUNTIME_NDARRAY_H_
