#include "ir/expr.h"

namespace sparsetir {
namespace ir {

namespace {

DataType
binaryResultType(ExprKind kind, const Expr &a, const Expr &b)
{
    switch (kind) {
      case ExprKind::kEQ:
      case ExprKind::kNE:
      case ExprKind::kLT:
      case ExprKind::kLE:
      case ExprKind::kGT:
      case ExprKind::kGE:
      case ExprKind::kAnd:
      case ExprKind::kOr:
        return DataType::boolean().withLanes(a->dtype.lanes());
      default:
        // Promote to the wider operand type.
        if (a->dtype.isFloat() || b->dtype.isFloat()) {
            return a->dtype.isFloat() ? a->dtype : b->dtype;
        }
        return a->dtype.bits() >= b->dtype.bits() ? a->dtype : b->dtype;
    }
}

Expr
makeBinary(ExprKind kind, Expr a, Expr b)
{
    ICHECK(a != nullptr && b != nullptr);
    DataType dtype = binaryResultType(kind, a, b);
    return std::make_shared<BinaryNode>(kind, dtype, std::move(a),
                                        std::move(b));
}

} // namespace

Expr
intImm(int64_t value, DataType dtype)
{
    return std::make_shared<IntImmNode>(value, dtype);
}

Expr
floatImm(double value, DataType dtype)
{
    return std::make_shared<FloatImmNode>(value, dtype);
}

Expr
stringImm(std::string value)
{
    return std::make_shared<StringImmNode>(std::move(value));
}

Var
var(std::string name, DataType dtype)
{
    return std::make_shared<VarNode>(std::move(name), dtype);
}

Expr add(Expr a, Expr b) { return makeBinary(ExprKind::kAdd, a, b); }
Expr sub(Expr a, Expr b) { return makeBinary(ExprKind::kSub, a, b); }
Expr mul(Expr a, Expr b) { return makeBinary(ExprKind::kMul, a, b); }
Expr floorDiv(Expr a, Expr b) { return makeBinary(ExprKind::kFloorDiv, a, b); }
Expr floorMod(Expr a, Expr b) { return makeBinary(ExprKind::kFloorMod, a, b); }
Expr div(Expr a, Expr b) { return makeBinary(ExprKind::kDiv, a, b); }
Expr min(Expr a, Expr b) { return makeBinary(ExprKind::kMin, a, b); }
Expr max(Expr a, Expr b) { return makeBinary(ExprKind::kMax, a, b); }
Expr eq(Expr a, Expr b) { return makeBinary(ExprKind::kEQ, a, b); }
Expr ne(Expr a, Expr b) { return makeBinary(ExprKind::kNE, a, b); }
Expr lt(Expr a, Expr b) { return makeBinary(ExprKind::kLT, a, b); }
Expr le(Expr a, Expr b) { return makeBinary(ExprKind::kLE, a, b); }
Expr gt(Expr a, Expr b) { return makeBinary(ExprKind::kGT, a, b); }
Expr ge(Expr a, Expr b) { return makeBinary(ExprKind::kGE, a, b); }
Expr logicalAnd(Expr a, Expr b) { return makeBinary(ExprKind::kAnd, a, b); }
Expr logicalOr(Expr a, Expr b) { return makeBinary(ExprKind::kOr, a, b); }

Expr
logicalNot(Expr a)
{
    return std::make_shared<NotNode>(std::move(a));
}

Expr
select(Expr cond, Expr true_value, Expr false_value)
{
    return std::make_shared<SelectNode>(std::move(cond),
                                        std::move(true_value),
                                        std::move(false_value));
}

Expr
cast(DataType dtype, Expr value)
{
    if (value->dtype == dtype) {
        return value;
    }
    return std::make_shared<CastNode>(dtype, std::move(value));
}

Expr
ramp(Expr base, Expr stride, int lanes)
{
    return std::make_shared<RampNode>(std::move(base), std::move(stride),
                                      lanes);
}

Expr
broadcast(Expr value, int lanes)
{
    return std::make_shared<BroadcastNode>(std::move(value), lanes);
}

Expr
call(DataType dtype, Builtin op, std::vector<Expr> args, Buffer buffer_arg)
{
    auto node = std::make_shared<CallNode>(dtype, op, std::move(args));
    node->bufferArg = std::move(buffer_arg);
    return node;
}

bool
isConstInt(const Expr &e, int64_t value)
{
    if (auto imm = std::dynamic_pointer_cast<const IntImmNode>(e)) {
        return imm->value == value;
    }
    return false;
}

bool
tryConstInt(const Expr &e, int64_t *out)
{
    if (e == nullptr) {
        return false;
    }
    if (auto imm = std::dynamic_pointer_cast<const IntImmNode>(e)) {
        *out = imm->value;
        return true;
    }
    return false;
}

} // namespace ir
} // namespace sparsetir
