#include "baselines/taco.h"

namespace sparsetir {
namespace baselines {

std::unique_ptr<gpusim::Kernel>
tacoSpmm(const format::Csr &a, int64_t feat)
{
    RowSplitParams params;
    params.rowsPerBlock = 8;
    params.sortRows = false;
    params.registerAccum = false;  // global read-modify-write per nnz
    params.vectorWidth = 1;
    params.unrollDiscount = 0.0;
    return std::make_unique<RowSplitSpmmKernel>("taco_spmm", a, feat,
                                                params);
}

std::unique_ptr<gpusim::Kernel>
tacoSddmm(const format::Csr &a, int64_t feat)
{
    SddmmParams params;
    params.nnzPerBlock = 8;
    params.vectorWidth = 1;
    params.twoStageReduction = false;  // no rfactor at this level
    return std::make_unique<SddmmKernel>("taco_sddmm", a, feat, params);
}

} // namespace baselines
} // namespace sparsetir
