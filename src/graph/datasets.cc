#include "graph/datasets.h"

#include "graph/generator.h"
#include "support/logging.h"

namespace sparsetir {
namespace graph {

std::vector<DatasetSpec>
table1Datasets()
{
    // Scaled stand-ins: ogbn-proteins and reddit keep their mean
    // degree and distribution family but shrink node counts so the
    // transaction-level simulation stays tractable (DESIGN.md).
    return {
        {"cora", 2708, 10556, 2708, 10556, "powerlaw", 2.1, 15.9},
        {"citeseer", 3327, 9228, 3327, 9228, "powerlaw", 2.2, 13.0},
        {"pubmed", 19717, 88651, 19717, 88651, "powerlaw", 2.1, 23.1},
        {"ppi", 44906, 1271274, 44906, 1271274, "powerlaw", 1.9, 22.9},
        {"ogbn-arxiv", 169343, 1166243, 169343, 1166243, "powerlaw",
         2.0, 17.5},
        {"ogbn-proteins", 132534, 39561252, 26507, 3956125,
         "concentrated", 0.35, 21.6},
        {"reddit", 232965, 114615892, 46593, 4584636, "powerlaw", 1.6,
         28.6},
    };
}

DatasetSpec
datasetSpec(const std::string &name)
{
    for (const auto &spec : table1Datasets()) {
        if (spec.name == name) {
            return spec;
        }
    }
    USER_CHECK(false) << "unknown dataset '" << name << "'";
    return {};
}

format::Csr
generateDataset(const DatasetSpec &spec, uint64_t seed)
{
    if (spec.family == "powerlaw") {
        return powerLawGraph(spec.nodes, spec.edges, spec.alphaOrSpread,
                             seed);
    }
    return concentratedGraph(spec.nodes, spec.edges, spec.alphaOrSpread,
                             seed);
}

} // namespace graph
} // namespace sparsetir
