/**
 * @file
 * Named synthetic stand-ins for the paper's GNN datasets (Table 1).
 * Large graphs are scaled down to keep simulation tractable; the
 * scale factor is recorded so benches can report it.
 */

#ifndef SPARSETIR_GRAPH_DATASETS_H_
#define SPARSETIR_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "format/csr.h"

namespace sparsetir {
namespace graph {

/** One Table 1 dataset configuration. */
struct DatasetSpec
{
    std::string name;
    /** Paper-reported size. */
    int64_t paperNodes;
    int64_t paperEdges;
    /** Synthesized size (scaled when the original is too large). */
    int64_t nodes;
    int64_t edges;
    /** "powerlaw" or "concentrated". */
    std::string family;
    double alphaOrSpread;
    /** Paper-reported %padding for hyb (Table 1). */
    double paperPaddingPct;
};

/** The seven Table 1 graphs. */
std::vector<DatasetSpec> table1Datasets();

/** Look up by name ("cora", ..., "reddit"). */
DatasetSpec datasetSpec(const std::string &name);

/** Generate the synthetic stand-in. */
format::Csr generateDataset(const DatasetSpec &spec, uint64_t seed = 42);

} // namespace graph
} // namespace sparsetir

#endif // SPARSETIR_GRAPH_DATASETS_H_
