/**
 * @file
 * Documented pipeline-efficiency constants for vendor baselines.
 *
 * The simulator models mechanisms (balance, caching, coalescing,
 * launches, Tensor Cores); what it cannot derive is how close each
 * closed-source library runs to the hardware roofline. These factors
 * encode that calibration: > 1 means better-than-our-default
 * instruction scheduling. They are the only "magic numbers" in the
 * baseline stand-ins and every value is used through SimOptions::
 * efficiency so it is visible at the call site.
 */

#ifndef SPARSETIR_BASELINES_VENDOR_CONSTANTS_H_
#define SPARSETIR_BASELINES_VENDOR_CONSTANTS_H_

namespace sparsetir {
namespace baselines {

/** cuBLAS dense GEMM: heavily tuned, near-roofline. */
inline constexpr double kCublasEfficiency = 1.25;

/** cuSPARSE: well-tuned generic kernels. */
inline constexpr double kCusparseEfficiency = 1.0;

/** dgSPARSE (GE-SpMM / DA-SpMM / PRedS): research-tuned. */
inline constexpr double kDgsparseEfficiency = 1.05;

/** Sputnik: tuned for moderate (DL) sparsity. */
inline constexpr double kSputnikEfficiency = 1.0;

/** TACO-generated code: portable, no register-level tuning. */
inline constexpr double kTacoEfficiency = 0.8;

/** Triton block-sparse: tile-level tuned. */
inline constexpr double kTritonEfficiency = 1.1;

/** TorchSparse: tuned gather/scatter + cuBLAS GEMM. */
inline constexpr double kTorchSparseEfficiency = 1.0;

/** Framework-dispatched kernels (DGL/PyG): framework overhead folded
 *  into per-launch costs instead; kernels themselves near cuSPARSE. */
inline constexpr double kFrameworkEfficiency = 0.95;

/** SparseTIR-generated kernels (ours). */
inline constexpr double kSparseTirEfficiency = 1.0;

} // namespace baselines
} // namespace sparsetir

#endif // SPARSETIR_BASELINES_VENDOR_CONSTANTS_H_
