/**
 * @file
 * Request fingerprinting for the execution engine's compile cache.
 *
 * A compiled kernel is a pure function of (operator kind, sparsity
 * structure, schedule parameters, feature dimension) — never of the
 * stored values. The fingerprint hashes exactly those inputs, so two
 * matrices with identical sparsity patterns but different values map
 * to the same artifact, while any structural change (an extra
 * non-zero, a different bucketing) forces a recompile.
 */

#ifndef SPARSETIR_ENGINE_FINGERPRINT_H_
#define SPARSETIR_ENGINE_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "format/csr.h"
#include "format/relational.h"

namespace sparsetir {
namespace engine {

/** Incremental FNV-1a (64-bit) hasher over typed fields. */
class Fingerprint
{
  public:
    Fingerprint &bytes(const void *data, size_t size);

    Fingerprint &
    i64(int64_t v)
    {
        return bytes(&v, sizeof(v));
    }

    Fingerprint &
    i32s(const std::vector<int32_t> &v)
    {
        i64(static_cast<int64_t>(v.size()));
        return bytes(v.data(), v.size() * sizeof(int32_t));
    }

    Fingerprint &
    str(const std::string &s)
    {
        i64(static_cast<int64_t>(s.size()));
        return bytes(s.data(), s.size());
    }

    uint64_t digest() const { return hash_; }

  private:
    uint64_t hash_ = 14695981039346656037ULL;  // FNV offset basis
};

/** Hash of a CSR matrix's sparsity structure (not its values). */
uint64_t structureHash(const format::Csr &m);

/** Structure hash over every relation of a heterogeneous graph. */
uint64_t structureHash(const format::RelationalCsr &m);

/** Operator families the engine serves. */
enum class OpKind : uint8_t {
    kSpmmCsr = 1,
    kSpmmHyb = 2,
    kSddmm = 3,
    kRgcnHyb = 4,
};

const char *opKindName(OpKind op);

/**
 * Version of the cached-artifact layout, folded into every cache
 * key. Bump whenever the contents an Artifact carries change shape
 * or meaning, so persisted or long-lived caches can never serve an
 * artifact built by older code to newer dispatch logic.
 *
 *  v1 — Stage III PrimFuncs + structure arrays + provenance maps.
 *  v2 — kernels carry compiled bytecode programs and span-restricted
 *       write-set metadata (engine::CompiledKernel).
 */
constexpr uint32_t kArtifactVersion = 2;

/** Key of one compile-cache entry. */
struct CacheKey
{
    /** Artifact layout version (kArtifactVersion of the builder). */
    uint32_t version = kArtifactVersion;
    OpKind op = OpKind::kSpmmCsr;
    /** Sparsity structure fingerprint. */
    uint64_t structure = 0;
    /** Schedule / format-parameter fingerprint (c, k, threadX, ...). */
    uint64_t schedule = 0;
    /**
     * Feature dimension. RGMS currently serves square layers
     * (feat_in == feat_out == feat); an entry point with distinct
     * in/out widths must fold both into the key.
     */
    int64_t feat = 0;
    /**
     * Raw shape facts (rows, total nnz) carried alongside the hash:
     * a 64-bit fingerprint collision across different shapes can
     * then never match, so a stale artifact's provenance map cannot
     * be applied to a smaller values array.
     */
    int64_t rows = 0;
    int64_t nnz = 0;

    bool
    operator==(const CacheKey &other) const
    {
        return version == other.version && op == other.op &&
               structure == other.structure &&
               schedule == other.schedule && feat == other.feat &&
               rows == other.rows && nnz == other.nnz;
    }
};

struct CacheKeyHash
{
    size_t
    operator()(const CacheKey &key) const
    {
        Fingerprint fp;
        int64_t op = static_cast<int64_t>(key.op);
        fp.i64(static_cast<int64_t>(key.version))
            .i64(op)
            .i64(static_cast<int64_t>(key.structure))
            .i64(static_cast<int64_t>(key.schedule))
            .i64(key.feat)
            .i64(key.rows)
            .i64(key.nnz);
        return static_cast<size_t>(fp.digest());
    }
};

} // namespace engine
} // namespace sparsetir

#endif // SPARSETIR_ENGINE_FINGERPRINT_H_
