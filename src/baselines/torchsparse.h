/**
 * @file
 * TorchSparse stand-in (paper §4.4.2): sparse convolution as explicit
 * gather -> cuBLAS GEMM -> scatter with the intermediate matrix T
 * materialized in HBM (no on-chip fusion).
 */

#ifndef SPARSETIR_BASELINES_TORCHSPARSE_H_
#define SPARSETIR_BASELINES_TORCHSPARSE_H_

#include <memory>
#include <vector>

#include "baselines/models.h"
#include "format/relational.h"
#include "gpusim/simulator.h"

namespace sparsetir {
namespace baselines {

/** One relation's phase kernels plus T footprint. */
struct TorchSparseConv
{
    std::vector<std::unique_ptr<gpusim::Kernel>> kernels;
    /** Bytes of materialized intermediates (footprint accounting). */
    int64_t intermediateBytes = 0;
};

/**
 * Build the kernel sequence for one sparse-conv layer over a kernel
 * map: per relation gather + GEMM + scatter-add.
 */
TorchSparseConv torchsparseConv(const format::RelationalCsr &maps,
                                int64_t feat_in, int64_t feat_out);

} // namespace baselines
} // namespace sparsetir

#endif // SPARSETIR_BASELINES_TORCHSPARSE_H_
