#include "verify/affine.h"

#include <algorithm>
#include <sstream>

#include "ir/structural_equal.h"
#include "support/logging.h"

namespace sparsetir {
namespace verify {

namespace {

/** Max recursion depth of the non-negativity search. */
constexpr int kProveDepth = 24;
/** Max expression-conversion recursion depth. */
constexpr int kConvertDepth = 64;
/** Max div/mod normalization sweeps. */
constexpr int kNormalizeSweeps = 8;
/** Max depth when folding symbolic bounds to constants. */
constexpr int kConstDepth = 8;

/** Merge two sorted atom-id multisets. */
Monomial
mergeMonomials(const Monomial &a, const Monomial &b)
{
    Monomial out;
    out.reserve(a.size() + b.size());
    std::merge(a.begin(), a.end(), b.begin(), b.end(),
               std::back_inserter(out));
    return out;
}

int
countAtom(const Monomial &m, int id)
{
    return static_cast<int>(std::count(m.begin(), m.end(), id));
}

/** m with one occurrence of the atom at position `pos` removed. */
Monomial
eraseAt(const Monomial &m, size_t pos)
{
    Monomial out = m;
    out.erase(out.begin() + static_cast<ptrdiff_t>(pos));
    return out;
}

/** LinExpr of a bare monomial with coefficient 1. */
LinExpr
monomialExpr(const Monomial &m)
{
    LinExpr e;
    if (m.empty()) {
        e.constant = 1;
    } else {
        e.terms[m] = 1;
    }
    return e;
}

} // namespace

// ---------------------------------------------------------------------
// LinExpr arithmetic
// ---------------------------------------------------------------------

LinExpr &
LinExpr::operator+=(const LinExpr &other)
{
    constant += other.constant;
    for (const auto &kv : other.terms) {
        int64_t &coeff = terms[kv.first];
        coeff += kv.second;
        if (coeff == 0) {
            terms.erase(kv.first);
        }
    }
    return *this;
}

LinExpr &
LinExpr::operator-=(const LinExpr &other)
{
    constant -= other.constant;
    for (const auto &kv : other.terms) {
        int64_t &coeff = terms[kv.first];
        coeff -= kv.second;
        if (coeff == 0) {
            terms.erase(kv.first);
        }
    }
    return *this;
}

LinExpr &
LinExpr::operator*=(int64_t scale)
{
    if (scale == 0) {
        terms.clear();
        constant = 0;
        return *this;
    }
    constant *= scale;
    for (auto &kv : terms) {
        kv.second *= scale;
    }
    return *this;
}

LinExpr
LinExpr::product(const LinExpr &a, const LinExpr &b)
{
    LinExpr out;
    out.constant = a.constant * b.constant;
    for (const auto &ta : a.terms) {
        if (b.constant != 0) {
            int64_t &coeff = out.terms[ta.first];
            coeff += ta.second * b.constant;
            if (coeff == 0) {
                out.terms.erase(ta.first);
            }
        }
        for (const auto &tb : b.terms) {
            Monomial m = mergeMonomials(ta.first, tb.first);
            int64_t &coeff = out.terms[m];
            coeff += ta.second * tb.second;
            if (coeff == 0) {
                out.terms.erase(m);
            }
        }
    }
    if (a.constant != 0) {
        for (const auto &tb : b.terms) {
            int64_t &coeff = out.terms[tb.first];
            coeff += a.constant * tb.second;
            if (coeff == 0) {
                out.terms.erase(tb.first);
            }
        }
    }
    return out;
}

std::string
LinExpr::key() const
{
    std::ostringstream os;
    os << constant;
    for (const auto &kv : terms) {
        os << "|";
        for (size_t i = 0; i < kv.first.size(); ++i) {
            os << (i ? "." : "") << kv.first[i];
        }
        os << "*" << kv.second;
    }
    return os.str();
}

// ---------------------------------------------------------------------
// Facts and scopes
// ---------------------------------------------------------------------

void
AffineAnalyzer::addFact(const std::string &name, ValueFact fact)
{
    facts_[name] = std::move(fact);
}

const ValueFact *
AffineAnalyzer::findFact(const std::string &name) const
{
    auto it = facts_.find(name);
    return it == facts_.end() ? nullptr : &it->second;
}

const ValueFact *
AffineAnalyzer::factForBuffer(const ir::Buffer &buffer) const
{
    if (buffer == nullptr) {
        return nullptr;
    }
    if (const ValueFact *fact = findFact(buffer->name)) {
        return fact;
    }
    if (buffer->data != nullptr) {
        return findFact(buffer->data->name);
    }
    return nullptr;
}

void
AffineAnalyzer::pushLoopVar(const ir::Var &v, const ir::Expr &min_value,
                            const ir::Expr &extent)
{
    LoopRange range;
    range.lo = toLinExpr(min_value);
    range.hi = range.lo + toLinExpr(extent) - LinExpr::constant_(1);
    loopRanges_[v.get()] = std::move(range);
}

void
AffineAnalyzer::popLoopVar(const ir::Var &v)
{
    loopRanges_.erase(v.get());
}

void
AffineAnalyzer::pushLet(const ir::Var &v, const ir::Expr &value)
{
    lets_[v.get()] = value;
}

void
AffineAnalyzer::popLet(const ir::Var &v)
{
    lets_.erase(v.get());
}

int
AffineAnalyzer::pushConstraints(const ir::Expr &cond, bool negated)
{
    if (cond == nullptr) {
        return 0;
    }
    switch (cond->kind) {
    case ir::ExprKind::kAnd: {
        const auto *node = static_cast<const ir::BinaryNode *>(cond.get());
        if (!negated) {
            int n = pushConstraints(node->a, false);
            return n + pushConstraints(node->b, false);
        }
        // !(a && b) is a disjunction — no single conjunct is implied.
        return 0;
    }
    case ir::ExprKind::kOr: {
        const auto *node = static_cast<const ir::BinaryNode *>(cond.get());
        if (negated) {
            // !(a || b) == !a && !b
            int n = pushConstraints(node->a, true);
            return n + pushConstraints(node->b, true);
        }
        return 0;
    }
    case ir::ExprKind::kNot: {
        const auto *node = static_cast<const ir::NotNode *>(cond.get());
        return pushConstraints(node->a, !negated);
    }
    case ir::ExprKind::kLT:
    case ir::ExprKind::kLE:
    case ir::ExprKind::kGT:
    case ir::ExprKind::kGE:
    case ir::ExprKind::kEQ: {
        const auto *node = static_cast<const ir::BinaryNode *>(cond.get());
        LinExpr a = toLinExpr(node->a);
        LinExpr b = toLinExpr(node->b);
        ir::ExprKind kind = cond->kind;
        if (negated) {
            // !(a < b) == a >= b, etc. EQ negation gives a disjunction.
            switch (kind) {
            case ir::ExprKind::kLT: kind = ir::ExprKind::kGE; break;
            case ir::ExprKind::kLE: kind = ir::ExprKind::kGT; break;
            case ir::ExprKind::kGT: kind = ir::ExprKind::kLE; break;
            case ir::ExprKind::kGE: kind = ir::ExprKind::kLT; break;
            default: return 0;
            }
        }
        switch (kind) {
        case ir::ExprKind::kLT: // a < b  ->  b - a - 1 >= 0
            constraints_.push_back(b - a - LinExpr::constant_(1));
            return 1;
        case ir::ExprKind::kLE: // a <= b  ->  b - a >= 0
            constraints_.push_back(b - a);
            return 1;
        case ir::ExprKind::kGT:
            constraints_.push_back(a - b - LinExpr::constant_(1));
            return 1;
        case ir::ExprKind::kGE:
            constraints_.push_back(a - b);
            return 1;
        case ir::ExprKind::kEQ:
            constraints_.push_back(a - b);
            constraints_.push_back(b - a);
            return 2;
        default:
            return 0;
        }
    }
    default:
        return 0;
    }
}

void
AffineAnalyzer::popConstraints(int count)
{
    ICHECK_GE(static_cast<int>(constraints_.size()), count);
    constraints_.resize(constraints_.size() - static_cast<size_t>(count));
}

// ---------------------------------------------------------------------
// Conversion
// ---------------------------------------------------------------------

int
AffineAnalyzer::internAtom(const ir::Expr &e)
{
    for (size_t i = 0; i < atoms_.size(); ++i) {
        if (ir::structuralEqual(atoms_[i].expr, e)) {
            return static_cast<int>(i);
        }
    }
    atoms_.push_back(Atom{e});
    return static_cast<int>(atoms_.size()) - 1;
}

int
AffineAnalyzer::findAtom(const ir::Expr &e) const
{
    for (size_t i = 0; i < atoms_.size(); ++i) {
        if (ir::structuralEqual(atoms_[i].expr, e)) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

LinExpr
AffineAnalyzer::atomExpr(int id) const
{
    LinExpr e;
    e.terms[Monomial{id}] = 1;
    return e;
}

std::vector<int>
AffineAnalyzer::loadAtomsOf(const LinExpr &e,
                            const std::string &buffer_name) const
{
    std::vector<int> out;
    for (const auto &kv : e.terms) {
        for (int id : kv.first) {
            const ir::Expr &expr = atoms_[static_cast<size_t>(id)].expr;
            if (expr->kind != ir::ExprKind::kBufferLoad) {
                continue;
            }
            const auto *load =
                static_cast<const ir::BufferLoadNode *>(expr.get());
            if (load->buffer == nullptr) {
                continue;
            }
            bool match = load->buffer->name == buffer_name ||
                         (load->buffer->data != nullptr &&
                          load->buffer->data->name == buffer_name);
            if (match &&
                std::find(out.begin(), out.end(), id) == out.end()) {
                out.push_back(id);
            }
        }
    }
    return out;
}

LinExpr
AffineAnalyzer::toLinExpr(const ir::Expr &e)
{
    LinExpr out = convert(e, kConvertDepth);
    normalizeDivMod(&out, kConvertDepth);
    return out;
}

LinExpr
AffineAnalyzer::convert(const ir::Expr &e, int depth)
{
    ICHECK(e != nullptr);
    if (depth <= 0) {
        return atomExpr(internAtom(e));
    }
    switch (e->kind) {
    case ir::ExprKind::kIntImm:
        return LinExpr::constant_(
            static_cast<const ir::IntImmNode *>(e.get())->value);
    case ir::ExprKind::kAdd: {
        const auto *node = static_cast<const ir::BinaryNode *>(e.get());
        return convert(node->a, depth - 1) + convert(node->b, depth - 1);
    }
    case ir::ExprKind::kSub: {
        const auto *node = static_cast<const ir::BinaryNode *>(e.get());
        return convert(node->a, depth - 1) - convert(node->b, depth - 1);
    }
    case ir::ExprKind::kMul: {
        const auto *node = static_cast<const ir::BinaryNode *>(e.get());
        return LinExpr::product(convert(node->a, depth - 1),
                                convert(node->b, depth - 1));
    }
    case ir::ExprKind::kCast: {
        const auto *node = static_cast<const ir::CastNode *>(e.get());
        if (node->dtype.isInt() || node->dtype.isUInt()) {
            return convert(node->value, depth - 1);
        }
        return atomExpr(internAtom(e));
    }
    case ir::ExprKind::kVar: {
        const auto *var = static_cast<const ir::VarNode *>(e.get());
        auto it = lets_.find(var);
        if (it != lets_.end()) {
            return convert(it->second, depth - 1);
        }
        // Exact caller facts (lo == hi == const) fold to literals so
        // symbolic parameters cancel against concrete spans/widths even
        // inside product monomials, where range reasoning cannot reach.
        if (const ValueFact *fact = findFact(var->name)) {
            int64_t lo = 0;
            int64_t hi = 0;
            if (fact->lo != nullptr && fact->hi != nullptr &&
                ir::tryConstInt(fact->lo, &lo) &&
                ir::tryConstInt(fact->hi, &hi) && lo == hi) {
                return LinExpr::constant_(lo);
            }
        }
        return atomExpr(internAtom(e));
    }
    case ir::ExprKind::kFloorDiv:
    case ir::ExprKind::kFloorMod: {
        // Fold constant operands so structurally different spellings of
        // the same division intern to one atom.
        const auto *node = static_cast<const ir::BinaryNode *>(e.get());
        int64_t a = 0;
        int64_t b = 0;
        if (ir::tryConstInt(node->a, &a) && ir::tryConstInt(node->b, &b) &&
            b > 0) {
            int64_t q = a / b;
            int64_t r = a % b;
            if (r != 0 && ((r < 0) != (b < 0))) {
                q -= 1;
                r += b;
            }
            return LinExpr::constant_(
                e->kind == ir::ExprKind::kFloorDiv ? q : r);
        }
        return atomExpr(internAtom(e));
    }
    default:
        return atomExpr(internAtom(e));
    }
}

void
AffineAnalyzer::normalizeDivMod(LinExpr *e, int depth)
{
    for (int sweep = 0; sweep < kNormalizeSweeps; ++sweep) {
        bool changed = false;
        for (const auto &kv : e->terms) {
            const Monomial &mono = kv.first;
            const int64_t coeff = kv.second;
            for (size_t pos = 0; pos < mono.size(); ++pos) {
                const ir::Expr &dexpr =
                    atoms_[static_cast<size_t>(mono[pos])].expr;
                if (dexpr->kind != ir::ExprKind::kFloorDiv) {
                    continue;
                }
                const auto *div =
                    static_cast<const ir::BinaryNode *>(dexpr.get());
                int64_t c = 0;
                if (!ir::tryConstInt(div->b, &c) || c <= 0) {
                    continue;
                }
                // Find the matching floormod(a, c) atom.
                int modId = -1;
                for (size_t i = 0; i < atoms_.size(); ++i) {
                    const ir::Expr &mexpr = atoms_[i].expr;
                    if (mexpr->kind != ir::ExprKind::kFloorMod) {
                        continue;
                    }
                    const auto *mod =
                        static_cast<const ir::BinaryNode *>(mexpr.get());
                    int64_t mc = 0;
                    if (ir::tryConstInt(mod->b, &mc) && mc == c &&
                        ir::structuralEqual(mod->a, div->a)) {
                        modId = static_cast<int>(i);
                        break;
                    }
                }
                if (modId < 0) {
                    continue;
                }
                Monomial rest = eraseAt(mono, pos);
                Monomial modMono = rest;
                modMono.insert(
                    std::upper_bound(modMono.begin(), modMono.end(), modId),
                    modId);
                auto modIt = e->terms.find(modMono);
                if (modIt == e->terms.end() || coeff != c * modIt->second) {
                    continue;
                }
                // coeff2*(c*(a//c) + a%c)*rest  ->  coeff2*a*rest
                int64_t coeff2 = modIt->second;
                e->terms.erase(mono);
                e->terms.erase(modMono);
                LinExpr repl = LinExpr::product(convert(div->a, depth - 1),
                                                monomialExpr(rest));
                repl *= coeff2;
                *e += repl;
                changed = true;
                break;
            }
            if (changed) {
                break;
            }
        }
        if (!changed) {
            return;
        }
    }
}

// ---------------------------------------------------------------------
// Atom properties
// ---------------------------------------------------------------------

bool
AffineAnalyzer::atomNonNeg(int id)
{
    if (inProgress_.count(id)) {
        return false;
    }
    inProgress_.insert(id);
    const ir::Expr expr = atoms_[static_cast<size_t>(id)].expr;
    bool result = false;
    switch (expr->kind) {
    case ir::ExprKind::kVar: {
        const auto *var = static_cast<const ir::VarNode *>(expr.get());
        auto loop = loopRanges_.find(var);
        if (loop != loopRanges_.end()) {
            result = proveNonNeg(loop->second.lo);
        } else if (const ValueFact *fact = findFact(var->name)) {
            result = fact->lo != nullptr && proveNonNeg(fact->lo);
        } else {
            // Axiom: free scalar parameters are sizes, hence >= 0.
            result = true;
        }
        break;
    }
    case ir::ExprKind::kFloorMod: {
        const auto *node = static_cast<const ir::BinaryNode *>(expr.get());
        int64_t c = 0;
        result = ir::tryConstInt(node->b, &c) && c > 0;
        break;
    }
    case ir::ExprKind::kFloorDiv: {
        const auto *node = static_cast<const ir::BinaryNode *>(expr.get());
        int64_t c = 0;
        result = ir::tryConstInt(node->b, &c) && c > 0 &&
                 proveNonNeg(node->a);
        break;
    }
    case ir::ExprKind::kBufferLoad: {
        const auto *load =
            static_cast<const ir::BufferLoadNode *>(expr.get());
        const ValueFact *fact = factForBuffer(load->buffer);
        result = fact != nullptr && fact->lo != nullptr &&
                 proveNonNeg(fact->lo);
        break;
    }
    case ir::ExprKind::kCall: {
        const auto *call = static_cast<const ir::CallNode *>(expr.get());
        if ((call->op == ir::Builtin::kLowerBound ||
             call->op == ir::Builtin::kUpperBound) &&
            call->args.size() == 3) {
            // Result lies in [loArg, hiArg].
            result = proveNonNeg(call->args[0]);
        }
        break;
    }
    case ir::ExprKind::kMin: {
        const auto *node = static_cast<const ir::BinaryNode *>(expr.get());
        result = proveNonNeg(node->a) && proveNonNeg(node->b);
        break;
    }
    case ir::ExprKind::kMax: {
        const auto *node = static_cast<const ir::BinaryNode *>(expr.get());
        result = proveNonNeg(node->a) || proveNonNeg(node->b);
        break;
    }
    case ir::ExprKind::kSelect: {
        const auto *node = static_cast<const ir::SelectNode *>(expr.get());
        result = proveNonNeg(node->trueValue) &&
                 proveNonNeg(node->falseValue);
        break;
    }
    default:
        break;
    }
    inProgress_.erase(id);
    return result;
}

bool
AffineAnalyzer::atomLo(int id, LinExpr *out)
{
    if (inProgress_.count(id)) {
        return false;
    }
    inProgress_.insert(id);
    const ir::Expr expr = atoms_[static_cast<size_t>(id)].expr;
    bool result = false;
    switch (expr->kind) {
    case ir::ExprKind::kVar: {
        const auto *var = static_cast<const ir::VarNode *>(expr.get());
        auto loop = loopRanges_.find(var);
        if (loop != loopRanges_.end()) {
            *out = loop->second.lo;
            result = true;
        } else if (const ValueFact *fact = findFact(var->name)) {
            if (fact->lo != nullptr) {
                *out = toLinExpr(fact->lo);
                result = true;
            }
        }
        break;
    }
    case ir::ExprKind::kFloorMod: {
        const auto *node = static_cast<const ir::BinaryNode *>(expr.get());
        int64_t c = 0;
        if (ir::tryConstInt(node->b, &c) && c > 0) {
            *out = LinExpr::constant_(0);
            result = true;
        }
        break;
    }
    case ir::ExprKind::kFloorDiv: {
        const auto *node = static_cast<const ir::BinaryNode *>(expr.get());
        int64_t c = 0;
        if (ir::tryConstInt(node->b, &c) && c > 0 &&
            proveNonNeg(node->a)) {
            *out = LinExpr::constant_(0);
            result = true;
        }
        break;
    }
    case ir::ExprKind::kBufferLoad: {
        const auto *load =
            static_cast<const ir::BufferLoadNode *>(expr.get());
        const ValueFact *fact = factForBuffer(load->buffer);
        if (fact != nullptr && fact->lo != nullptr) {
            *out = toLinExpr(fact->lo);
            result = true;
        }
        break;
    }
    case ir::ExprKind::kCall: {
        const auto *call = static_cast<const ir::CallNode *>(expr.get());
        if ((call->op == ir::Builtin::kLowerBound ||
             call->op == ir::Builtin::kUpperBound) &&
            call->args.size() == 3) {
            *out = toLinExpr(call->args[0]);
            result = true;
            // Refinement: if the searched value is known to be past the
            // first element, position 0 cannot be the answer.
            const ValueFact *fact = factForBuffer(call->bufferArg);
            if (fact != nullptr && fact->first != nullptr &&
                ir::isConstInt(call->args[0], 0)) {
                LinExpr v = toLinExpr(call->args[2]);
                LinExpr first = toLinExpr(fact->first);
                bool skipsFront =
                    call->op == ir::Builtin::kUpperBound
                        ? proveNonNeg(v - first) // buf[0] <= v
                        : proveNonNeg(v - first -
                                      LinExpr::constant_(1)); // buf[0] < v
                if (skipsFront) {
                    *out += LinExpr::constant_(1);
                }
            }
        }
        break;
    }
    case ir::ExprKind::kMax: {
        // max(a, b) >= each branch; take the first that resolves.
        const auto *node = static_cast<const ir::BinaryNode *>(expr.get());
        for (const ir::Expr &branch : {node->a, node->b}) {
            LinExpr lin = toLinExpr(branch);
            if (lin.isConstant()) {
                *out = lin;
                result = true;
                break;
            }
            int sub = findAtom(branch);
            if (sub >= 0 && sub != id && atomLo(sub, out)) {
                result = true;
                break;
            }
        }
        break;
    }
    default:
        break;
    }
    inProgress_.erase(id);
    return result;
}

bool
AffineAnalyzer::atomHi(int id, LinExpr *out)
{
    if (inProgress_.count(id)) {
        return false;
    }
    inProgress_.insert(id);
    const ir::Expr expr = atoms_[static_cast<size_t>(id)].expr;
    bool result = false;
    switch (expr->kind) {
    case ir::ExprKind::kVar: {
        const auto *var = static_cast<const ir::VarNode *>(expr.get());
        auto loop = loopRanges_.find(var);
        if (loop != loopRanges_.end()) {
            *out = loop->second.hi;
            result = true;
        } else if (const ValueFact *fact = findFact(var->name)) {
            if (fact->hi != nullptr) {
                *out = toLinExpr(fact->hi);
                result = true;
            }
        }
        break;
    }
    case ir::ExprKind::kFloorMod: {
        const auto *node = static_cast<const ir::BinaryNode *>(expr.get());
        int64_t c = 0;
        if (ir::tryConstInt(node->b, &c) && c > 0) {
            *out = LinExpr::constant_(c - 1);
            result = true;
        }
        break;
    }
    case ir::ExprKind::kFloorDiv: {
        const auto *node = static_cast<const ir::BinaryNode *>(expr.get());
        int64_t c = 0;
        if (ir::tryConstInt(node->b, &c) && c > 0) {
            LinExpr arg = toLinExpr(node->a);
            int64_t alo = 0;
            int64_t ahi = 0;
            if (constBounds(arg, &alo, &ahi, kConstDepth)) {
                int64_t q = ahi / c;
                if (ahi % c != 0 && ahi < 0) {
                    q -= 1;
                }
                *out = LinExpr::constant_(q);
                result = true;
            } else if (proveNonNeg(arg)) {
                // floor(a/c) <= a for a >= 0, c >= 1.
                *out = arg;
                result = true;
            }
        }
        break;
    }
    case ir::ExprKind::kBufferLoad: {
        const auto *load =
            static_cast<const ir::BufferLoadNode *>(expr.get());
        const ValueFact *fact = factForBuffer(load->buffer);
        if (fact != nullptr && fact->hi != nullptr) {
            *out = toLinExpr(fact->hi);
            result = true;
        }
        break;
    }
    case ir::ExprKind::kCall: {
        const auto *call = static_cast<const ir::CallNode *>(expr.get());
        if ((call->op == ir::Builtin::kLowerBound ||
             call->op == ir::Builtin::kUpperBound) &&
            call->args.size() == 3) {
            *out = toLinExpr(call->args[1]);
            result = true;
            // Refinement: if the last element already satisfies the
            // search predicate, the not-found sentinel hiArg cannot be
            // returned. Requires hiArg == the array extent so that
            // fact->last really is buf[hiArg - 1].
            const ValueFact *fact = factForBuffer(call->bufferArg);
            if (fact != nullptr && fact->last != nullptr &&
                call->bufferArg != nullptr &&
                call->bufferArg->ndim() == 1) {
                LinExpr extent = toLinExpr(call->bufferArg->dimExtent(0));
                if (extent.key() == out->key()) {
                    LinExpr v = toLinExpr(call->args[2]);
                    LinExpr last = toLinExpr(fact->last);
                    bool lastHits =
                        call->op == ir::Builtin::kUpperBound
                            ? proveNonNeg(last - v -
                                          LinExpr::constant_(1)) // last > v
                            : proveNonNeg(last - v);             // last >= v
                    if (lastHits) {
                        *out -= LinExpr::constant_(1);
                    }
                }
            }
        }
        break;
    }
    case ir::ExprKind::kMin: {
        // min(a, b) <= each branch; take the first that resolves.
        const auto *node = static_cast<const ir::BinaryNode *>(expr.get());
        for (const ir::Expr &branch : {node->a, node->b}) {
            LinExpr lin = toLinExpr(branch);
            if (lin.isConstant()) {
                *out = lin;
                result = true;
                break;
            }
            int sub = findAtom(branch);
            if (sub >= 0 && sub != id && atomHi(sub, out)) {
                result = true;
                break;
            }
        }
        break;
    }
    default:
        break;
    }
    inProgress_.erase(id);
    return result;
}

bool
AffineAnalyzer::monomialNonNeg(const Monomial &m)
{
    for (int id : m) {
        if (!atomNonNeg(id)) {
            return false;
        }
    }
    return true;
}

bool
AffineAnalyzer::cofactorsNonNeg(const Monomial &m, size_t skip)
{
    for (size_t i = 0; i < m.size(); ++i) {
        if (i != skip && !atomNonNeg(m[i])) {
            return false;
        }
    }
    return true;
}

bool
AffineAnalyzer::constBounds(const LinExpr &e, int64_t *lo, int64_t *hi,
                            int depth)
{
    if (depth <= 0) {
        return false;
    }
    int64_t sumLo = e.constant;
    int64_t sumHi = e.constant;
    for (const auto &kv : e.terms) {
        // Bound the monomial product; require every factor in [0, inf)
        // with known constant bounds so products stay monotone.
        int64_t plo = 1;
        int64_t phi = 1;
        for (int id : kv.first) {
            LinExpr alo;
            LinExpr ahi;
            if (!atomLo(id, &alo) || !atomHi(id, &ahi)) {
                return false;
            }
            int64_t aloLo = 0;
            int64_t aloHi = 0;
            int64_t ahiLo = 0;
            int64_t ahiHi = 0;
            if (!constBounds(alo, &aloLo, &aloHi, depth - 1) ||
                !constBounds(ahi, &ahiLo, &ahiHi, depth - 1)) {
                return false;
            }
            if (aloLo < 0) {
                return false;
            }
            plo *= aloLo;
            phi *= ahiHi;
        }
        if (kv.second >= 0) {
            sumLo += kv.second * plo;
            sumHi += kv.second * phi;
        } else {
            sumLo += kv.second * phi;
            sumHi += kv.second * plo;
        }
    }
    *lo = sumLo;
    *hi = sumHi;
    return true;
}

// ---------------------------------------------------------------------
// The prover
// ---------------------------------------------------------------------

bool
AffineAnalyzer::proveNonNeg(const LinExpr &e)
{
    std::set<std::string> visited;
    return proveNonNegImpl(e, kProveDepth, &visited);
}

bool
AffineAnalyzer::proveNonNeg(const ir::Expr &a)
{
    return proveNonNeg(toLinExpr(a));
}

bool
AffineAnalyzer::proveLE(const ir::Expr &a, const ir::Expr &b)
{
    return proveNonNeg(toLinExpr(b) - toLinExpr(a));
}

bool
AffineAnalyzer::proveNonNegImpl(const LinExpr &e, int depth,
                                std::set<std::string> *visited)
{
    if (e.terms.empty()) {
        return e.constant >= 0;
    }
    if (depth <= 0) {
        return false;
    }
    if (!visited->insert(e.key()).second) {
        return false;
    }

    // Move 1: direct — constant >= 0 and every term provably >= 0.
    if (e.constant >= 0) {
        bool direct = true;
        for (const auto &kv : e.terms) {
            if (kv.second < 0 || !monomialNonNeg(kv.first)) {
                direct = false;
                break;
            }
        }
        if (direct) {
            return true;
        }
    }

    // Move 2: subtract a guard constraint c >= 0, optionally scaled by
    // a non-negative monomial s; e = (e - s*c) + s*c, so (e - s*c) >= 0
    // suffices. The scale is chosen so a negative monomial of c aligns
    // with a negative monomial of e (e.g. the split-tail guard
    // `feat - 1 - kpart >= 0` scaled by `n` discharges
    // `n*feat - 1 - n*kpart - col`). Repeated application via
    // recursion handles constraints needed with multiplicity.
    for (size_t ci = 0; ci < constraints_.size(); ++ci) {
        const LinExpr c = constraints_[ci];
        std::set<Monomial> scales;
        for (const auto &ce : c.terms) {
            if (ce.second >= 0) {
                continue;
            }
            for (const auto &te : e.terms) {
                if (te.second >= 0) {
                    continue;
                }
                // Does ce.first divide te.first? The quotient monomial
                // is the candidate scale.
                if (!std::includes(te.first.begin(), te.first.end(),
                                   ce.first.begin(), ce.first.end())) {
                    continue;
                }
                Monomial scale;
                auto it = ce.first.begin();
                for (int id : te.first) {
                    if (it != ce.first.end() && *it == id) {
                        ++it;
                    } else {
                        scale.push_back(id);
                    }
                }
                scales.insert(scale);
            }
        }
        for (const Monomial &scale : scales) {
            if (!monomialNonNeg(scale)) {
                continue;
            }
            LinExpr scaled = LinExpr::product(c, monomialExpr(scale));
            if (proveNonNegImpl(e - scaled, depth - 1, visited)) {
                return true;
            }
        }
    }

    // Move 3: eliminate one atom by substituting its bound — the upper
    // bound where the atom's coefficient is negative (requires the
    // cofactors non-negative), the lower bound (or zero, when the atom
    // itself is non-negative) where it is positive. Branch over the
    // candidate atoms: elimination order matters because substituted
    // bounds introduce cancellations.
    std::vector<int> candidates;
    for (const auto &kv : e.terms) {
        for (int id : kv.first) {
            if (std::find(candidates.begin(), candidates.end(), id) ==
                candidates.end()) {
                candidates.push_back(id);
            }
        }
    }
    for (int id : candidates) {
        // Variant A substitutes the symbolic lower bound into positive
        // terms; variant B drops non-negative positive terms instead
        // (equivalent to lo = 0). Both are sound; either can be the one
        // that cancels.
        for (int variant = 0; variant < 2; ++variant) {
            LinExpr reduced;
            reduced.constant = e.constant;
            bool feasible = true;
            bool usedLoSubst = false;
            for (const auto &kv : e.terms) {
                const Monomial &mono = kv.first;
                int64_t coeff = kv.second;
                int cnt = countAtom(mono, id);
                if (cnt == 0) {
                    reduced.terms[mono] = coeff;
                    continue;
                }
                if (cnt > 1) {
                    feasible = false;
                    break;
                }
                size_t pos = static_cast<size_t>(
                    std::find(mono.begin(), mono.end(), id) - mono.begin());
                if (!cofactorsNonNeg(mono, pos)) {
                    feasible = false;
                    break;
                }
                Monomial rest = eraseAt(mono, pos);
                if (coeff < 0) {
                    LinExpr hi;
                    if (!atomHi(id, &hi)) {
                        feasible = false;
                        break;
                    }
                    LinExpr repl = LinExpr::product(hi, monomialExpr(rest));
                    repl *= coeff;
                    reduced += repl;
                } else {
                    LinExpr lo;
                    if (variant == 0 && atomLo(id, &lo)) {
                        LinExpr repl =
                            LinExpr::product(lo, monomialExpr(rest));
                        repl *= coeff;
                        reduced += repl;
                        usedLoSubst = true;
                    } else if (atomNonNeg(id)) {
                        // Drop the term: coeff * atom * rest >= 0.
                    } else {
                        feasible = false;
                        break;
                    }
                }
            }
            if (!feasible) {
                break; // cnt > 1 or cofactors fail for both variants
            }
            if (variant == 1 && !usedLoSubst) {
                break; // variant B identical to A
            }
            normalizeDivMod(&reduced, kConvertDepth);
            if (proveNonNegImpl(reduced, depth - 1, visited)) {
                return true;
            }
            if (!usedLoSubst) {
                break;
            }
        }
    }
    return false;
}

bool
AffineAnalyzer::proveBlockDisjoint(const LinExpr &index,
                                   const ir::Var &block_var)
{
    return proveBlockStride(index, block_var) ||
           proveBlockMonotone(index, block_var);
}

bool
AffineAnalyzer::proveBlockStride(const LinExpr &index,
                                 const ir::Var &block_var)
{
    int blockId = findAtom(block_var);
    if (blockId < 0) {
        // The block var does not appear in the index at all: distinct
        // iterations address the same location.
        return false;
    }
    LinExpr stride;
    LinExpr rest;
    rest.constant = index.constant;
    for (const auto &kv : index.terms) {
        int cnt = countAtom(kv.first, blockId);
        if (cnt == 0) {
            rest.terms[kv.first] = kv.second;
            continue;
        }
        if (cnt > 1) {
            return false; // non-linear in the block var
        }
        size_t pos = static_cast<size_t>(
            std::find(kv.first.begin(), kv.first.end(), blockId) -
            kv.first.begin());
        Monomial cof = eraseAt(kv.first, pos);
        // The stride must be invariant across iterations: every factor
        // has to be a free scalar parameter, not a loop variable or a
        // data-dependent value.
        for (int id : cof) {
            const ir::Expr &expr = atoms_[static_cast<size_t>(id)].expr;
            if (expr->kind != ir::ExprKind::kVar) {
                return false;
            }
            const auto *var = static_cast<const ir::VarNode *>(expr.get());
            if (loopRanges_.count(var) != 0) {
                return false;
            }
        }
        LinExpr term = monomialExpr(cof);
        term *= kv.second;
        stride += term;
    }
    // Disjointness: 0 <= rest <= stride - 1 means consecutive block
    // ids are separated by at least the span the inner loops can cover.
    return proveNonNeg(rest) &&
           proveNonNeg(stride - rest - LinExpr::constant_(1));
}

bool
AffineAnalyzer::proveBlockMonotone(const LinExpr &index,
                                   const ir::Var &block_var)
{
    // Rule B: index = c * P[block_var] + rest with P sorted and
    // c a positive constant. Distinct block ids then address disjoint
    // windows, because b' > b implies P[b'] >= P[b + 1] and hence
    // c*P[b'] >= c*P[b + 1], so confining the index to
    // [c*P[block_var], c*P[block_var + 1]) is enough. c = 1 is the
    // CSR edge-space pattern `E[J_indptr[i] + r]` (upper bound from
    // the padded-row guard `r < P[i + 1] - P[i]`); c = blockArea is
    // the BSR pattern `B[(JO_indptr[io] + jo) * area + t]` whose
    // inner offset t spans one block.
    for (const auto &kv : index.terms) {
        if (kv.first.size() != 1 || kv.second < 1) {
            continue;
        }
        int id = kv.first[0];
        const ir::Expr &expr = atoms_[static_cast<size_t>(id)].expr;
        if (expr->kind != ir::ExprKind::kBufferLoad) {
            continue;
        }
        const auto *load =
            static_cast<const ir::BufferLoadNode *>(expr.get());
        if (load->indices.size() != 1 ||
            !ir::structuralEqual(load->indices[0], block_var)) {
            continue;
        }
        const ValueFact *fact = factForBuffer(load->buffer);
        if (fact == nullptr || !fact->sorted) {
            continue;
        }
        LinExpr scaled = atomExpr(id);
        scaled *= kv.second;
        LinExpr rest = index - scaled;
        if (!proveNonNeg(rest)) {
            continue;
        }
        ir::Expr next = ir::bufferLoad(
            load->buffer, {ir::add(block_var, ir::intImm(1))});
        LinExpr upper = atomExpr(internAtom(next));
        upper *= kv.second;
        upper -= index;
        upper -= LinExpr::constant_(1);
        if (proveNonNeg(upper)) {
            return true;
        }
    }
    return false;
}

} // namespace verify
} // namespace sparsetir
