/**
 * @file
 * Pruned-transformer SpMM (paper §4.3.2): block-pruned weights in
 * BSR vs DBSR, movement-pruned weights in SR-BCRS, functionally
 * verified and simulated — Figures 17-19 in miniature — then served
 * through an engine::Engine session: the pruned weight compiles
 * once, and a batch of in-flight activation matrices (one per
 * sequence in the serving batch) rides the cached artifact.
 *
 * Build & run:  ./build/examples/pruned_bert
 */

#include <cstdio>
#include <vector>

#include "core/pipeline.h"
#include "engine/engine.h"
#include "format/dcsr.h"
#include "format/srbcrs.h"
#include "graph/pruned_weights.h"
#include "support/rng.h"

using namespace sparsetir;

int
main()
{
    int64_t rows = 1024;
    int64_t cols = 768;
    int64_t seq = 128;

    // ---- Structured (block) pruning: BSR vs DBSR. ----
    format::Csr blocked =
        graph::blockPrunedWeight(rows, cols, 32, 0.05, 0.4, 5);
    format::Bsr bsr = format::bsrFromCsr(blocked, 32);
    format::Dbsr dbsr = format::dbsrFromBsr(bsr);
    std::printf("block-pruned weight: %lld nnz, %lld blocks, "
                "%lld/%lld block rows empty\n",
                static_cast<long long>(blocked.nnz()),
                static_cast<long long>(bsr.nnzBlocks()),
                static_cast<long long>(bsr.blockRows -
                                       dbsr.numStoredBlockRows()),
                static_cast<long long>(bsr.blockRows));

    // Functional check of the tensorized BSR SpMM.
    Rng rng(7);
    std::vector<float> b_host(bsr.blockCols * 32 * seq);
    for (auto &v : b_host) {
        v = static_cast<float>(rng.uniformReal() - 0.5);
    }
    auto shared = std::make_shared<core::BindingSet>();
    runtime::NDArray b = runtime::NDArray::fromFloat(b_host);
    runtime::NDArray c({bsr.blockRows * 32 * seq},
                       ir::DataType::float32());
    shared->external("B_data", &b);
    shared->external("C_data", &c);
    auto kernel = core::compileBsrSpmm(bsr, seq, shared, true);
    kernel->execute();
    auto dense = format::bsrToDense(bsr);
    double worst = 0.0;
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t k = 0; k < seq; ++k) {
            float expect = 0.0f;
            for (int64_t col = 0; col < cols; ++col) {
                expect += dense[r * cols + col] *
                          b_host[col * seq + k];
            }
            worst = std::max(worst, static_cast<double>(std::abs(
                                        expect -
                                        (float)c.floatAt(r * seq + k))));
        }
    }
    std::printf("BSR SpMM functional check: max |err| = %g (%s)\n",
                worst, worst < 1e-2 ? "PASS" : "FAIL");

    // ---- Unstructured pruning: SR-BCRS. ----
    format::Csr unstructured =
        graph::unstructuredPrunedWeight(rows, cols, 0.06, 9);
    format::SrBcrs sr = format::srbcrsFromCsr(unstructured, 8, 32);
    format::Bsr bsr_u = format::bsrFromCsr(unstructured, 32);
    double bsr_density =
        static_cast<double>(unstructured.nnz()) /
        static_cast<double>(bsr_u.values.size());
    std::printf("\nmovement-pruned weight at density 0.06:\n");
    std::printf("  SR-BCRS(8,32) stored density: %.3f\n",
                sr.storedDensity());
    std::printf("  BSR(32)      stored density: %.3f\n", bsr_density);
    std::printf("SR-BCRS keeps %0.1fx less fragmentation than "
                "BSR(32) (paper Figure 19 right panel;\nlower bound "
                "1/t vs 1/b^2, §4.3.2).\n",
                sr.storedDensity() / std::max(bsr_density, 1e-9));

    // ---- Serving: one cached weight artifact, batched requests. ----
    engine::Engine session(engine::EngineOptions{});
    constexpr int kInFlight = 3;
    std::vector<runtime::NDArray> batch_b;
    std::vector<runtime::NDArray> batch_c;
    for (int i = 0; i < kInFlight; ++i) {
        std::vector<float> activations(bsr.blockCols * 32 * seq);
        for (auto &v : activations) {
            v = static_cast<float>(rng.uniformReal() - 0.5);
        }
        batch_b.push_back(runtime::NDArray::fromFloat(activations));
        batch_c.emplace_back(
            std::vector<int64_t>{bsr.blockRows * 32 * seq},
            ir::DataType::float32());
    }
    std::vector<engine::SpmmRequest> requests;
    for (int i = 0; i < kInFlight; ++i) {
        requests.push_back(
            engine::SpmmRequest{&batch_b[i], &batch_c[i]});
    }
    engine::BatchDispatchInfo cold =
        session.spmmBsrBatch(bsr, seq, requests);
    engine::BatchDispatchInfo warm =
        session.spmmBsrBatch(bsr, seq, requests);
    std::printf("\nengine serving (BSR weight, %d activation "
                "matrices in flight):\n  cold batch: compile %.2f ms "
                "(%s), exec %.1f ms\n  warm batch: compile %.4f ms "
                "(%s), exec %.1f ms\n",
                kInFlight, cold.compileMs,
                cold.cacheHit ? "hit" : "miss", cold.execMs,
                warm.compileMs, warm.cacheHit ? "hit" : "miss",
                warm.execMs);

    // The unstructured weight serves through the same session under
    // its own cache key (tileHeight/groupSize are key fields).
    runtime::NDArray sr_b = runtime::NDArray::fromFloat(
        std::vector<float>(sr.cols * seq, 0.25f));
    runtime::NDArray sr_c({sr.stripes * sr.tileHeight * seq},
                          ir::DataType::float32());
    engine::DispatchInfo sr_info =
        session.spmmSrbcrs(sr, seq, &sr_b, &sr_c);
    std::printf("SR-BCRS dispatch: cache %s, %d kernel(s)\n",
                sr_info.cacheHit ? "hit" : "miss",
                sr_info.numKernels);
    return 0;
}
