#include "engine/compile_cache.h"

#include <chrono>

#include "observe/trace.h"
#include "support/logging.h"

namespace sparsetir {
namespace engine {

CompileCache::CompileCache(size_t capacity,
                           observe::MetricsRegistry *metrics)
    : capacity_(capacity)
{
    USER_CHECK(capacity > 0) << "compile cache capacity must be >= 1";
    if (metrics == nullptr) {
        ownedMetrics_ = std::make_unique<observe::MetricsRegistry>();
        metrics = ownedMetrics_.get();
    }
    hits_ = metrics->counter("cache.hits");
    misses_ = metrics->counter("cache.misses");
    evictions_ = metrics->counter("cache.evictions");
    buildMs_ = metrics->histogram("cache.build_ms");
    verifiedKernels_ = metrics->counter("cache.verified_kernels");
    verifyFailures_ = metrics->counter("cache.verify_failures");
    verifyMs_ = metrics->histogram("cache.verify_ms");
}

void
CompileCache::touch(const CacheKey &key, Entry &entry)
{
    lru_.erase(entry.lruPos);
    lru_.push_front(key);
    entry.lruPos = lru_.begin();
}

std::shared_ptr<Artifact>
CompileCache::getOrBuild(
    const CacheKey &key,
    const std::function<std::shared_ptr<Artifact>()> &builder,
    bool *was_hit)
{
    if (was_hit != nullptr) {
        *was_hit = false;
    }
    {
        SPARSETIR_TRACE_SCOPE1("cache", "cache.lookup", "op",
                               static_cast<int64_t>(key.op));
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            hits_->add(1);
            touch(key, it->second);
            if (was_hit != nullptr) {
                *was_hit = true;
            }
            return it->second.value;
        }
        misses_->add(1);
    }

    // Build outside the lock: compilation dominates lookup cost and
    // must not block hits on other keys.
    auto start = std::chrono::steady_clock::now();
    std::shared_ptr<Artifact> built;
    {
        SPARSETIR_TRACE_SCOPE1("cache", "cache.build", "op",
                               static_cast<int64_t>(key.op));
        built = builder();
    }
    double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    ICHECK(built != nullptr) << "cache builder returned null artifact";
    buildMs_->record(elapsed_ms);
    // The verdict rides on the artifact (paid once, at build); the
    // registry keeps the aggregate verify cost and outcome counters.
    if (built->verify.attempted) {
        verifyMs_->record(built->verify.verifyMs);
        verifiedKernels_->add(
            static_cast<uint64_t>(built->verify.kernels));
        if (!built->verify.ok) {
            verifyFailures_->add(1);
        }
    }

    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        // Lost a build race; keep the incumbent so every caller that
        // already holds a reference agrees on one artifact.
        touch(key, it->second);
        return it->second.value;
    }
    while (entries_.size() >= capacity_) {
        const CacheKey &victim = lru_.back();
        entries_.erase(victim);
        lru_.pop_back();
        evictions_->add(1);
    }
    lru_.push_front(key);
    entries_[key] = Entry{built, lru_.begin()};
    return built;
}

std::shared_ptr<Artifact>
CompileCache::peek(const CacheKey &key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : it->second.value;
}

CacheStats
CompileCache::stats() const
{
    CacheStats stats;
    stats.hits = hits_->value();
    stats.misses = misses_->value();
    stats.evictions = evictions_->value();
    stats.compileMs = buildMs_->sumMs();
    stats.verifiedKernels = verifiedKernels_->value();
    stats.verifyFailures = verifyFailures_->value();
    stats.verifyMs = verifyMs_->sumMs();
    return stats;
}

size_t
CompileCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
CompileCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    lru_.clear();
}

} // namespace engine
} // namespace sparsetir
