/**
 * @file
 * Format library tests: every conversion must round-trip through
 * dense, preserve values, and report correct padding statistics.
 * Parameterized sweeps act as property tests over sizes/densities.
 */

#include <gtest/gtest.h>

#include "format/bsr.h"
#include "format/coo.h"
#include "format/csr.h"
#include "format/dcsr.h"
#include "format/dia.h"
#include "format/ell.h"
#include "format/hyb.h"
#include "format/srbcrs.h"
#include "support/logging.h"
#include "support/rng.h"

namespace sparsetir {
namespace format {
namespace {

std::vector<float>
randomDense(int64_t rows, int64_t cols, double density, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> dense(rows * cols, 0.0f);
    for (auto &v : dense) {
        if (rng.uniformReal() < density) {
            v = static_cast<float>(rng.uniformReal() + 0.1);
        }
    }
    return dense;
}

struct FormatCase
{
    int64_t rows;
    int64_t cols;
    double density;
};

class FormatRoundTrip : public ::testing::TestWithParam<FormatCase>
{
};

TEST_P(FormatRoundTrip, CsrDense)
{
    auto [rows, cols, density] = GetParam();
    auto dense = randomDense(rows, cols, density, 101);
    Csr m = csrFromDense(rows, cols, dense);
    EXPECT_TRUE(csrValid(m));
    EXPECT_EQ(csrToDense(m), dense);
}

TEST_P(FormatRoundTrip, CsrTransposeTwiceIsIdentity)
{
    auto [rows, cols, density] = GetParam();
    auto dense = randomDense(rows, cols, density, 102);
    Csr m = csrFromDense(rows, cols, dense);
    Csr tt = csrTranspose(csrTranspose(m));
    EXPECT_TRUE(csrValid(tt));
    EXPECT_EQ(csrToDense(tt), dense);
}

TEST_P(FormatRoundTrip, CooCanonicalRoundTrip)
{
    auto [rows, cols, density] = GetParam();
    auto dense = randomDense(rows, cols, density, 103);
    Csr m = csrFromDense(rows, cols, dense);
    Csr back = csrFromCoo(cooFromCsr(m));
    EXPECT_TRUE(csrValid(back));
    EXPECT_EQ(csrToDense(back), dense);
}

TEST_P(FormatRoundTrip, BsrRoundTrip)
{
    auto [rows, cols, density] = GetParam();
    auto dense = randomDense(rows, cols, density, 104);
    Csr m = csrFromDense(rows, cols, dense);
    for (int block : {2, 4}) {
        Bsr b = bsrFromCsr(m, block);
        auto rebuilt = bsrToDense(b);
        ASSERT_EQ(rebuilt.size(), dense.size());
        EXPECT_EQ(rebuilt, dense) << "block " << block;
    }
}

TEST_P(FormatRoundTrip, DiaRoundTrip)
{
    auto [rows, cols, density] = GetParam();
    auto dense = randomDense(rows, cols, density, 105);
    Csr m = csrFromDense(rows, cols, dense);
    EXPECT_EQ(diaToDense(diaFromCsr(m)), dense);
}

TEST_P(FormatRoundTrip, DcsrRoundTrip)
{
    auto [rows, cols, density] = GetParam();
    auto dense = randomDense(rows, cols, density, 106);
    Csr m = csrFromDense(rows, cols, dense);
    Csr back = csrFromDcsr(dcsrFromCsr(m));
    EXPECT_TRUE(csrValid(back));
    EXPECT_EQ(csrToDense(back), dense);
}

TEST_P(FormatRoundTrip, DbsrRoundTrip)
{
    auto [rows, cols, density] = GetParam();
    auto dense = randomDense(rows, cols, density, 107);
    Csr m = csrFromDense(rows, cols, dense);
    Bsr b = bsrFromCsr(m, 4);
    EXPECT_EQ(dbsrToDense(dbsrFromBsr(b)), dense);
}

TEST_P(FormatRoundTrip, SrbcrsRoundTrip)
{
    auto [rows, cols, density] = GetParam();
    auto dense = randomDense(rows, cols, density, 108);
    Csr m = csrFromDense(rows, cols, dense);
    for (auto [t, g] : {std::pair{4, 2}, std::pair{8, 4}}) {
        SrBcrs s = srbcrsFromCsr(m, t, g);
        EXPECT_EQ(srbcrsToDense(s), dense)
            << "t=" << t << " g=" << g;
    }
}

TEST_P(FormatRoundTrip, HybRoundTrip)
{
    auto [rows, cols, density] = GetParam();
    auto dense = randomDense(rows, cols, density, 109);
    Csr m = csrFromDense(rows, cols, dense);
    for (int c : {1, 2, 4}) {
        Hyb h = hybFromCsr(m, c, -1);
        auto rebuilt = hybToDense(h);
        ASSERT_EQ(rebuilt.size(), dense.size());
        for (size_t i = 0; i < dense.size(); ++i) {
            ASSERT_NEAR(dense[i], rebuilt[i], 1e-6)
                << "c=" << c << " at " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, FormatRoundTrip,
    ::testing::Values(FormatCase{1, 1, 1.0}, FormatCase{7, 5, 0.3},
                      FormatCase{16, 16, 0.1},
                      FormatCase{33, 65, 0.05},
                      FormatCase{64, 48, 0.5},
                      FormatCase{20, 20, 0.0}));

TEST(Formats, EllRejectsOverfullRow)
{
    auto dense = randomDense(4, 8, 1.0, 110);
    Csr m = csrFromDense(4, 8, dense);
    EXPECT_THROW(ellFromCsrRows(m, {0}, 2), sparsetir::InternalError);
}

TEST(Formats, HybPaddingStatistics)
{
    // One row of length 3 in a width-4 bucket: 1 padded zero.
    std::vector<float> dense(4 * 8, 0.0f);
    dense[0 * 8 + 1] = 1.0f;
    dense[0 * 8 + 2] = 2.0f;
    dense[0 * 8 + 3] = 3.0f;
    Csr m = csrFromDense(4, 8, dense);
    Hyb h = hybFromCsr(m, 1, 2);
    EXPECT_EQ(h.storedEntries(), 4);
    EXPECT_EQ(h.paddedZeros(), 1);
    EXPECT_NEAR(h.paddingRatio(), 0.25, 1e-9);
}

TEST(Formats, HybSplitsLongRows)
{
    // A row longer than 2^k must split into multiple bucket-k rows.
    std::vector<float> dense(2 * 16, 0.0f);
    for (int c = 0; c < 10; ++c) {
        dense[c] = static_cast<float>(c + 1);
    }
    Csr m = csrFromDense(2, 16, dense);
    Hyb h = hybFromCsr(m, 1, 2);  // widest bucket = 4
    auto rebuilt = hybToDense(h);
    for (size_t i = 0; i < dense.size(); ++i) {
        ASSERT_NEAR(dense[i], rebuilt[i], 1e-6) << i;
    }
    // 10 nnz in width-4 chunks -> 3 rows in the widest bucket.
    EXPECT_EQ(h.buckets[0][2].numRows(), 3);
}

TEST(Formats, SrbcrsDensityBound)
{
    // Stored density of SR-BCRS(t, g) is at least 1/t for non-empty
    // matrices (paper §4.3.2).
    auto dense = randomDense(32, 32, 0.05, 111);
    Csr m = csrFromDense(32, 32, dense);
    if (m.nnz() == 0) {
        GTEST_SKIP();
    }
    SrBcrs s = srbcrsFromCsr(m, 8, 4);
    // Allow group padding to dip slightly below the tile bound.
    EXPECT_GT(s.storedDensity(), 1.0 / 8.0 * 0.5);
}

} // namespace
} // namespace format
} // namespace sparsetir
