/**
 * @file
 * Request fingerprinting for the execution engine's compile cache.
 *
 * A compiled kernel is a pure function of (operator kind, sparsity
 * structure, schedule parameters, feature dimensions) — never of the
 * stored values. The fingerprint hashes exactly those inputs, so two
 * matrices with identical sparsity patterns but different values map
 * to the same artifact, while any structural change (an extra
 * non-zero, a different bucketing, a different block size) forces a
 * recompile.
 */

#ifndef SPARSETIR_ENGINE_FINGERPRINT_H_
#define SPARSETIR_ENGINE_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "format/bsr.h"
#include "format/csr.h"
#include "format/relational.h"
#include "format/srbcrs.h"

namespace sparsetir {
namespace engine {

/** Incremental FNV-1a (64-bit) hasher over typed fields. */
class Fingerprint
{
  public:
    Fingerprint &bytes(const void *data, size_t size);

    Fingerprint &
    i64(int64_t v)
    {
        return bytes(&v, sizeof(v));
    }

    Fingerprint &
    i32s(const std::vector<int32_t> &v)
    {
        i64(static_cast<int64_t>(v.size()));
        return bytes(v.data(), v.size() * sizeof(int32_t));
    }

    Fingerprint &
    str(const std::string &s)
    {
        i64(static_cast<int64_t>(s.size()));
        return bytes(s.data(), s.size());
    }

    uint64_t digest() const { return hash_; }

  private:
    uint64_t hash_ = 14695981039346656037ULL;  // FNV offset basis
};

/** Hash of a CSR matrix's sparsity structure (not its values). */
uint64_t structureHash(const format::Csr &m);

/** Structure hash over every relation of a heterogeneous graph. */
uint64_t structureHash(const format::RelationalCsr &m);

/** Hash of a BSR matrix's block-sparsity structure (not values). */
uint64_t structureHash(const format::Bsr &m);

/** Hash of an SR-BCRS matrix's tile structure (not values). */
uint64_t structureHash(const format::SrBcrs &m);

/** Operator families the engine serves. */
enum class OpKind : uint8_t {
    kSpmmCsr = 1,
    kSpmmHyb = 2,
    kSddmm = 3,
    kRgcnHyb = 4,
    kSpmmBsr = 5,
    kSpmmSrbcrs = 6,
    /** Whole dataflow graph served by Engine::dispatchGraph. */
    kGraph = 7,
};

const char *opKindName(OpKind op);

/**
 * Version of the cached-artifact layout, folded into every cache
 * key. Bump whenever the contents an Artifact carries change shape
 * or meaning, so persisted or long-lived caches can never serve an
 * artifact built by older code to newer dispatch logic.
 *
 *  v1 — Stage III PrimFuncs + structure arrays + provenance maps.
 *  v2 — kernels carry compiled bytecode programs and span-restricted
 *       write-set metadata (engine::CompiledKernel).
 *  v3 — keys carry distinct featIn/featOut plus block-structure
 *       facts (blockSize, tileHeight, groupSize); kernels carry the
 *       spilled block-extent expression so warm dispatch never
 *       probes the grid through the interpreter.
 *  v4 — AccumOutput write sets carry an explicit whole-array flag
 *       and a packed OffsetView window (span-extent-sized
 *       privatization leases); an empty span list now means "touches
 *       nothing", no longer the whole-array sentinel.
 *  v5 — graph-level artifacts (OpKind::kGraph): the structure field
 *       fingerprints a whole OpGraph's node/edge topology (op kinds,
 *       per-edge sparsity-structure hashes, feature shapes), and the
 *       artifact carries either one fused kernel or the per-kernel
 *       chain plus its intermediate-buffer plan.
 *  v6 — kernels carry a NativeBox for the tiered native (.so)
 *       backend; the version is also folded into every persisted
 *       native artifact's key tag, so on-disk .so files built by
 *       older code are rejected and rebuilt rather than loaded.
 */
constexpr uint32_t kArtifactVersion = 6;

/** Key of one compile-cache entry. */
struct CacheKey
{
    /** Artifact layout version (kArtifactVersion of the builder). */
    uint32_t version = kArtifactVersion;
    OpKind op = OpKind::kSpmmCsr;
    /** Sparsity structure fingerprint. */
    uint64_t structure = 0;
    /** Schedule / format-parameter fingerprint (c, k, threadX, ...). */
    uint64_t schedule = 0;
    /**
     * Input and output feature dimensions, keyed separately. Square
     * ops set both to the same value; asymmetric entry points (e.g.
     * a rectangular RGCN layer) differ — a single shared field would
     * silently alias (featIn=16, featOut=32) with (32, 16) and serve
     * a kernel compiled for the wrong shapes.
     */
    int64_t featIn = 0;
    int64_t featOut = 0;
    /**
     * Raw shape facts (rows, total nnz) carried alongside the hash:
     * a 64-bit fingerprint collision across different shapes can
     * then never match, so a stale artifact's provenance map cannot
     * be applied to a smaller values array.
     */
    int64_t rows = 0;
    int64_t nnz = 0;
    /**
     * Block-structure facts of blocked formats, raw like rows/nnz:
     * BSR's block edge, SR-BCRS's tile height t and group factor g.
     * Zero for formats without the notion.
     */
    int32_t blockSize = 0;
    int32_t tileHeight = 0;
    int32_t groupSize = 0;

    bool
    operator==(const CacheKey &other) const
    {
        return version == other.version && op == other.op &&
               structure == other.structure &&
               schedule == other.schedule &&
               featIn == other.featIn && featOut == other.featOut &&
               rows == other.rows && nnz == other.nnz &&
               blockSize == other.blockSize &&
               tileHeight == other.tileHeight &&
               groupSize == other.groupSize;
    }
};

struct CacheKeyHash
{
    size_t
    operator()(const CacheKey &key) const
    {
        Fingerprint fp;
        int64_t op = static_cast<int64_t>(key.op);
        fp.i64(static_cast<int64_t>(key.version))
            .i64(op)
            .i64(static_cast<int64_t>(key.structure))
            .i64(static_cast<int64_t>(key.schedule))
            .i64(key.featIn)
            .i64(key.featOut)
            .i64(key.rows)
            .i64(key.nnz)
            .i64(key.blockSize)
            .i64(key.tileHeight)
            .i64(key.groupSize);
        return static_cast<size_t>(fp.digest());
    }
};

} // namespace engine
} // namespace sparsetir

#endif // SPARSETIR_ENGINE_FINGERPRINT_H_
