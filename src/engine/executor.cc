#include "engine/executor.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <set>
#include <unordered_set>

#include "ir/analysis.h"
#include "ir/expr.h"
#include "ir/functor.h"
#include "ir/structural_equal.h"
#include "observe/trace.h"
#include "runtime/bytecode/compiler.h"
#include "runtime/bytecode/vm.h"
#include "runtime/native/native_compiler.h"
#include "support/logging.h"

namespace sparsetir {
namespace engine {

using namespace ir;
using runtime::Bindings;
using runtime::NDArray;

namespace {

/** Collects loads of one buffer (by data var) inside an expression. */
class LoadCollector : public ExprVisitor
{
  public:
    explicit LoadCollector(const VarNode *data) : data_(data) {}

    const std::vector<const BufferLoadNode *> &loads() const
    {
        return loads_;
    }

  protected:
    void
    visitBufferLoad(const BufferLoadNode *op) override
    {
        if (op->buffer->data.get() == data_) {
            loads_.push_back(op);
        }
        ExprVisitor::visitBufferLoad(op);
    }

  private:
    const VarNode *data_;
    std::vector<const BufferLoadNode *> loads_;
};

/**
 * Finds parameter-bound buffers updated by cross-element
 * accumulation: a store whose value re-loads the stored element, or
 * an atomic_add call. An RMW store inside a block whose init writes
 * the same buffer is exempt — that is an *initialized* reduction
 * (e.g. rfactor's final update): per element the init overwrites any
 * prior contents before the updates accumulate, so the kernel has
 * overwrite semantics and its per-block writes are disjoint; treating
 * it as accumulation would fold stale output contents back in.
 */
class AccumFinder : public StmtVisitor
{
  public:
    explicit AccumFinder(const PrimFunc &func)
    {
        for (const auto &param : func->params) {
            if (param->dtype.isHandle()) {
                params_.insert(param.get());
            }
        }
    }

    const std::set<std::string> &found() const { return found_; }

  protected:
    void
    visitBlock(const BlockNode *op) override
    {
        std::vector<const VarNode *> pushed;
        if (op->init != nullptr) {
            for (const BufferAccess &access :
                 collectBufferAccesses(op->init)) {
                if (access.isWrite) {
                    const VarNode *data = access.buffer->data.get();
                    if (init_written_.insert(data).second) {
                        pushed.push_back(data);
                    }
                }
            }
        }
        StmtVisitor::visitBlock(op);
        for (const VarNode *data : pushed) {
            init_written_.erase(data);
        }
    }

    void
    visitBufferStore(const BufferStoreNode *op) override
    {
        const VarNode *data = op->buffer->data.get();
        if (params_.count(data) && !init_written_.count(data)) {
            LoadCollector loads(data);
            loads.visitExpr(op->value);
            for (const BufferLoadNode *load : loads.loads()) {
                if (sameIndices(load->indices, op->indices)) {
                    found_.insert(data->name);
                    break;
                }
            }
        }
        StmtVisitor::visitBufferStore(op);
    }

    void
    visitCall(const CallNode *op) override
    {
        if (op->op == Builtin::kAtomicAdd && op->bufferArg != nullptr &&
            params_.count(op->bufferArg->data.get())) {
            found_.insert(op->bufferArg->data->name);
        }
        ExprVisitor::visitCall(op);
    }

  private:
    static bool
    sameIndices(const std::vector<Expr> &a, const std::vector<Expr> &b)
    {
        if (a.size() != b.size()) {
            return false;
        }
        for (size_t i = 0; i < a.size(); ++i) {
            if (!structuralEqual(a[i], b[i])) {
                return false;
            }
        }
        return true;
    }

    std::unordered_set<const VarNode *> params_;
    /** Buffers written by an enclosing block's init (scoped). */
    std::unordered_set<const VarNode *> init_written_;
    std::set<std::string> found_;
};

/**
 * Fold a private accumulator into the shared array element-wise: the
 * whole array for whole-array privates, otherwise each packed span
 * of the compact window back onto its absolute position. An empty
 * window folds nothing.
 */
void
foldInto(NDArray *shared, const NDArray &priv, const AccumOutput &out)
{
    auto fold_range = [&](int64_t shared_begin, int64_t priv_begin,
                          int64_t count) {
        if (shared->dtype().isFloat()) {
            for (int64_t i = 0; i < count; ++i) {
                shared->setFloat(shared_begin + i,
                                 shared->floatAt(shared_begin + i) +
                                     priv.floatAt(priv_begin + i));
            }
        } else {
            for (int64_t i = 0; i < count; ++i) {
                shared->setInt(shared_begin + i,
                               shared->intAt(shared_begin + i) +
                                   priv.intAt(priv_begin + i));
            }
        }
    };
    if (out.wholeArray) {
        ICHECK_EQ(shared->numel(), priv.numel());
        fold_range(0, 0, shared->numel());
        return;
    }
    ICHECK_EQ(priv.numel(), out.window.numel);
    const auto &spans = out.window.spans;
    for (size_t k = 0; k < spans.size(); ++k) {
        fold_range(spans[k].first, out.window.bases[k],
                   spans[k].second - spans[k].first);
    }
}

/**
 * Grid extent from the kernel's spilled launch expression, evaluated
 * over the request's scalar bindings; 0 when the kernel has no block
 * grid or the extent is not scalar-evaluable (run unsplit then).
 * Never probes through runtime::launchInfo — that is the point.
 */
int64_t
blockExtentOf(const CompiledKernel &kernel, const Bindings &bindings)
{
    int64_t extent = 0;
    if (kernel.blockExtent != nullptr &&
        runtime::evalScalarExtent(kernel.blockExtent, bindings,
                                  &extent)) {
        return extent;
    }
    return 0;
}

/** Execute one kernel (optionally windowed) on the chosen backend. */
void
execOne(const CompiledKernel &kernel, const Bindings &bindings,
        const ExecOptions &options,
        const runtime::RunOptions &window = runtime::RunOptions())
{
    runtime::RunOptions run = window;
    run.backend = options.backend;
    // Tier chain: native when promoted, bytecode otherwise, with the
    // interpreter as the final authority. A kNative dispatch whose
    // kernel has no swapped-in artifact yet (promotion pending, or
    // emission/cc bailed) is indistinguishable from kBytecode.
    if (options.backend == runtime::Backend::kNative &&
        kernel.native != nullptr) {
        if (auto native = kernel.native->get()) {
            runtime::native::execute(*native, bindings, run);
            return;
        }
    }
    if (options.backend != runtime::Backend::kInterpreter &&
        kernel.program != nullptr) {
        runtime::bytecode::execute(*kernel.program, bindings, run);
        return;
    }
    runtime::run(kernel.func, bindings, run);
}

} // namespace

void
AccumOutput::setSpans(std::vector<Span> spans)
{
    window = runtime::OffsetView::fromSpans(std::move(spans));
    wholeArray = false;
}

CompiledKernel
compileKernel(const ir::PrimFunc &func, bool with_program,
              bool analyze_accums)
{
    SPARSETIR_TRACE_SCOPE("compile", "compile.kernel");
    CompiledKernel kernel;
    kernel.func = func;
    // Every kernel gets an (empty) native box so the promotion path
    // can swap an artifact into copies already handed out.
    kernel.native = std::make_shared<NativeBox>();
    if (with_program) {
        kernel.program = runtime::bytecode::programFor(func);
    }
    // Spill the launch info: take the extent the bytecode compiler
    // already located, or walk the IR once here (interpreter-only
    // kernels). Warm dispatches evaluate this expression instead of
    // probing the grid through the interpreter.
    if (kernel.program != nullptr) {
        kernel.blockExtent = kernel.program->blockExtent;
    } else if (const ir::ForNode *loop =
                   runtime::findBlockIdxLoop(func->body)) {
        kernel.blockExtent = loop->extent;
    }
    if (analyze_accums) {
        for (std::string &name :
             ParallelExecutor::accumulatedParams(func)) {
            AccumOutput out;
            out.name = std::move(name);
            kernel.accums.push_back(std::move(out));
        }
    }
    return kernel;
}

std::vector<Span>
touchedRowSpans(const std::vector<int32_t> &rows, int64_t row_width)
{
    std::vector<int32_t> sorted(rows);
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()),
                 sorted.end());
    std::vector<Span> spans;
    for (size_t i = 0; i < sorted.size();) {
        size_t j = i + 1;
        while (j < sorted.size() &&
               sorted[j] == sorted[j - 1] + 1) {
            ++j;
        }
        spans.emplace_back(
            static_cast<int64_t>(sorted[i]) * row_width,
            (static_cast<int64_t>(sorted[j - 1]) + 1) * row_width);
        i = j;
    }
    return spans;
}

// ---------------------------------------------------------------------
// ScratchPool
// ---------------------------------------------------------------------

namespace {

int64_t
arrayBytes(const NDArray &array)
{
    return array.numel() * array.elemBytes();
}

} // namespace

ScratchPool::ScratchPool(int64_t max_free_bytes)
    : maxFreeBytes_(max_free_bytes)
{
    ICHECK_GE(maxFreeBytes_, 0);
}

ScratchPool::Lease
ScratchPool::acquire(int64_t numel, ir::DataType dtype)
{
    Key key{numel,
            (static_cast<uint64_t>(dtype.code()) << 32) |
                (static_cast<uint64_t>(dtype.bits()) << 16) |
                static_cast<uint64_t>(dtype.lanes())};
    std::lock_guard<std::mutex> lock(mu_);
    ++leases_;
    auto it = free_.find(key);
    if (it != free_.end() && !it->second.empty()) {
        std::unique_ptr<NDArray> array =
            std::move(it->second.back().array);
        it->second.pop_back();
        freeBytes_ -= arrayBytes(*array);
        leasedBytes_ += arrayBytes(*array);
        peakLeasedBytes_ = std::max(peakLeasedBytes_, leasedBytes_);
        NDArray *raw = array.release();
        leased_[raw] = key;
        return Lease{raw, /*fresh=*/false};
    }
    auto array = std::make_unique<NDArray>(
        std::vector<int64_t>{numel}, dtype);
    ++allocations_;
    leasedBytes_ += arrayBytes(*array);
    peakLeasedBytes_ = std::max(peakLeasedBytes_, leasedBytes_);
    NDArray *raw = array.release();
    leased_[raw] = key;
    return Lease{raw, /*fresh=*/true};
}

void
ScratchPool::evictOldestLocked()
{
    auto oldest = free_.end();
    for (auto it = free_.begin(); it != free_.end();) {
        if (it->second.empty()) {
            it = free_.erase(it);
            continue;
        }
        // Entries within a key are release-ordered, so the front is
        // that key's oldest; compare fronts across keys.
        if (oldest == free_.end() ||
            it->second.front().seq < oldest->second.front().seq) {
            oldest = it;
        }
        ++it;
    }
    if (oldest == free_.end()) {
        return;
    }
    freeBytes_ -= arrayBytes(*oldest->second.front().array);
    oldest->second.erase(oldest->second.begin());
}

void
ScratchPool::release(NDArray *array)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = leased_.find(array);
    ICHECK(it != leased_.end())
        << "scratch release of an array the pool did not lease";
    std::unique_ptr<NDArray> owned(array);
    Key key = it->second;
    leased_.erase(it);
    int64_t bytes = arrayBytes(*owned);
    leasedBytes_ -= bytes;
    if (bytes > maxFreeBytes_) {
        return;  // larger than the whole budget: never retainable,
                 // and evicting the warm pool for it would be waste
    }
    // Make room by evicting least-recently-released buffers, so a
    // workload shift to new shapes displaces stale buffers instead
    // of being locked out of the pool by them.
    while (freeBytes_ + bytes > maxFreeBytes_ && !free_.empty()) {
        evictOldestLocked();
    }
    freeBytes_ += bytes;
    free_[key].push_back(FreeEntry{std::move(owned), seq_++});
}

ScratchStats
ScratchPool::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    ScratchStats stats;
    stats.leasedBytes = leasedBytes_;
    stats.peakLeasedBytes = peakLeasedBytes_;
    stats.freeBytes = freeBytes_;
    stats.leases = leases_;
    stats.allocations = allocations_;
    return stats;
}

void
ScratchPool::resetPeak()
{
    std::lock_guard<std::mutex> lock(mu_);
    peakLeasedBytes_ = leasedBytes_;
}

void
ScratchPool::poisonFree(unsigned char byte)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[key, entries] : free_) {
        (void)key;
        for (FreeEntry &entry : entries) {
            int64_t bytes = arrayBytes(*entry.array);
            if (bytes > 0) {
                std::memset(entry.array->rawData(), byte,
                            static_cast<size_t>(bytes));
            }
        }
    }
}

// ---------------------------------------------------------------------
// ParallelExecutor
// ---------------------------------------------------------------------

ParallelExecutor::ParallelExecutor(std::shared_ptr<ThreadPool> pool)
    : pool_(std::move(pool))
{
    ICHECK(pool_ != nullptr);
}

void
ParallelExecutor::forCapped(int64_t n, int workers,
                            const std::function<void(int64_t)> &fn) const
{
    if (workers >= pool_->size()) {
        // No per-call cap below pool capacity: enqueue everything,
        // the pool bounds concurrency.
        pool_->parallelFor(n, fn);
        return;
    }
    for (int64_t wave = 0; wave < n; wave += workers) {
        int64_t count = std::min<int64_t>(workers, n - wave);
        pool_->parallelFor(count, [&](int64_t j) { fn(wave + j); });
    }
}

std::vector<std::string>
ParallelExecutor::accumulatedParams(const PrimFunc &func)
{
    AccumFinder finder(func);
    if (func->body != nullptr) {
        finder.visitStmt(func->body);
    }
    return std::vector<std::string>(finder.found().begin(),
                                    finder.found().end());
}

Bindings
ParallelExecutor::privatize(const CompiledKernel &kernel,
                            const Bindings &shared,
                            std::vector<Private> *privates,
                            runtime::RunOptions *run) const
{
    Bindings local = shared;
    for (const AccumOutput &out : kernel.accums) {
        // Lazy-binding convention: an accumulated buffer the caller
        // did not bind would fault on access anyway.
        auto it = shared.arrays.find(out.name);
        if (it == shared.arrays.end()) {
            continue;
        }
        const NDArray &orig = *it->second;
        int64_t numel = orig.numel();
        if (!out.wholeArray) {
            // Spans come from the artifact; the output array from
            // the caller. An undersized binding must fail here with
            // a binding diagnostic, not later as a VM bounds fault.
            if (!out.window.spans.empty()) {
                ICHECK_LE(out.window.spans.back().second, orig.numel())
                    << "write-set span of '" << out.name
                    << "' exceeds the bound output array (undersized "
                       "output binding?)";
            }
            // Lease only the write-set extent. An empty write set
            // leases zero elements: the unit can touch nothing, and
            // if the kernel writes anyway the window faults — the
            // old empty-spans == whole-array sentinel instead paid a
            // full-output zero+fold (and flipped -0.0 pre-values).
            numel = out.window.numel;
        }
        ScratchPool::Lease lease = scratch_.acquire(numel, orig.dtype());
        // Record the lease before any step that can throw, so the
        // caller's cleanup path can release it.
        privates->push_back(Private{&out, lease.array});
        // The zero contract is the executor's, not the allocator's:
        // pool contents are unspecified, so zero unconditionally
        // rather than depending on NDArray's constructor fill (a
        // redundant memset only on the cold, pool-miss path; leases
        // are write-set sized, so it covers exactly the bytes that
        // will be folded).
        lease.array->zero();
        local.arrays[out.name] = lease.array;
        if (!out.wholeArray) {
            // The kernel keeps writing absolute offsets; both
            // backends translate them through this view into the
            // packed lease.
            run->offsetViews.push_back(
                runtime::BufferView{out.name, &out.window});
        }
    }
    return local;
}

void
ParallelExecutor::foldAndRelease(const Bindings &shared,
                                 std::vector<Private> *privates) const
{
    for (Private &priv : *privates) {
        NDArray *target = shared.arrays.at(priv.out->name);
        foldInto(target, *priv.array, *priv.out);
        scratch_.release(priv.array);
        priv.array = nullptr;
    }
    privates->clear();
}

void
ParallelExecutor::releaseAll(
    std::vector<std::vector<Private>> *privates) const
{
    for (auto &group : *privates) {
        for (Private &priv : group) {
            if (priv.array != nullptr) {
                scratch_.release(priv.array);
                priv.array = nullptr;
            }
        }
        group.clear();
    }
}

void
ParallelExecutor::runKernel(const CompiledKernel &kernel,
                            const Bindings &bindings,
                            const ExecOptions &options) const
{
    int workers = options.workers > 0
                      ? std::min(options.workers, pool_->size())
                      : pool_->size();
    // An exclusive kernel may write one element twice; both writes
    // inside one chunk's private would fold as pre + (a1 + a2) where
    // serial computed ((pre + a1) + a2), so it must not be split.
    if (!options.parallel || workers <= 1 || kernel.exclusive) {
        execOne(kernel, bindings, options);
        return;
    }
    int64_t block_extent = blockExtentOf(kernel, bindings);
    int64_t min_chunk = std::max<int64_t>(options.minBlocksPerChunk, 1);
    int64_t chunks =
        block_extent > 0
            ? std::min<int64_t>(workers, block_extent / min_chunk)
            : 0;
    if (chunks < 2) {
        execOne(kernel, bindings, options);
        return;
    }

    // Chunk windows cover the kernel's whole write set between them,
    // so privatization uses the kernel-level spans.
    std::vector<std::vector<Private>> privates(chunks);
    std::vector<Bindings> locals;
    locals.reserve(chunks);
    std::vector<runtime::RunOptions> windows(chunks);
    try {
        int64_t base = block_extent / chunks;
        int64_t rem = block_extent % chunks;
        int64_t begin = 0;
        for (int64_t c = 0; c < chunks; ++c) {
            int64_t extent = base + (c < rem ? 1 : 0);
            windows[c].blockBegin = begin;
            windows[c].blockEnd = begin + extent;
            begin += extent;
            locals.push_back(privatize(kernel, bindings, &privates[c],
                                       &windows[c]));
        }
        pool_->parallelFor(chunks, [&](int64_t c) {
            SPARSETIR_TRACE_SCOPE1("exec", "kernel.chunk", "chunk", c);
            execOne(kernel, locals[c], options, windows[c]);
        });
        // Fold privates in chunk order: per element this replays the
        // serial order of block contributions.
        for (int64_t c = 0; c < chunks; ++c) {
            foldAndRelease(bindings, &privates[c]);
        }
    } catch (...) {
        releaseAll(&privates);
        throw;
    }
}

void
ParallelExecutor::runKernels(
    const std::vector<const CompiledKernel *> &kernels,
    const Bindings &bindings, const ExecOptions &options) const
{
    int workers = options.workers > 0
                      ? std::min(options.workers, pool_->size())
                      : pool_->size();
    if (!options.parallel || workers <= 1) {
        for (const CompiledKernel *kernel : kernels) {
            execOne(*kernel, bindings, options);
        }
        return;
    }
    if (kernels.size() == 1) {
        // A lone kernel still gets grid-level parallelism (window
        // splitting is bitwise-safe for non-exclusive kernels;
        // runKernel keeps exclusive ones serial).
        runKernel(*kernels[0], bindings, options);
        return;
    }

    // Run a contiguous batch of single-write-back kernels in
    // parallel on privatized accumulators, then fold the privates in
    // list order: per output element this replays the serial
    // addition sequence exactly.
    auto run_batch = [&](int64_t begin, int64_t end) {
        int64_t n = end - begin;
        if (n <= 0) {
            return;
        }
        if (n == 1) {
            // Sole kernel of its batch: grid-split it instead of
            // running serially (non-exclusive by construction).
            runKernel(*kernels[begin], bindings, options);
            return;
        }
        std::vector<std::vector<Private>> privates(n);
        std::vector<Bindings> locals;
        locals.reserve(n);
        std::vector<runtime::RunOptions> runs(n);
        try {
            for (int64_t i = 0; i < n; ++i) {
                locals.push_back(privatize(*kernels[begin + i],
                                           bindings, &privates[i],
                                           &runs[i]));
            }
            forCapped(n, workers, [&](int64_t i) {
                execOne(*kernels[begin + i], locals[i], options,
                        runs[i]);
            });
            for (int64_t i = 0; i < n; ++i) {
                foldAndRelease(bindings, &privates[i]);
            }
        } catch (...) {
            releaseAll(&privates);
            throw;
        }
    };

    int64_t total = static_cast<int64_t>(kernels.size());
    int64_t batch_begin = 0;
    for (int64_t i = 0; i < total; ++i) {
        if (kernels[i]->exclusive) {
            run_batch(batch_begin, i);
            // Exclusive kernels observe the true pre-values, so they
            // run at their serial position on shared storage.
            execOne(*kernels[i], bindings, options);
            batch_begin = i + 1;
        }
    }
    run_batch(batch_begin, total);
}

// ---------------------------------------------------------------------
// Multi-request (batched) dispatch
// ---------------------------------------------------------------------

void
ParallelExecutor::runKernelBatch(const CompiledKernel &kernel,
                                 const std::vector<Bindings> &requests,
                                 const ExecOptions &options) const
{
    int64_t num_requests = static_cast<int64_t>(requests.size());
    if (num_requests == 0) {
        return;
    }
    if (num_requests == 1) {
        runKernel(kernel, requests[0], options);
        return;
    }
    int workers = options.workers > 0
                      ? std::min(options.workers, pool_->size())
                      : pool_->size();
    if (!options.parallel || workers <= 1) {
        for (const Bindings &request : requests) {
            execOne(kernel, request, options);
        }
        return;
    }

    // Spread the workers across in-flight requests: each request is
    // split into at most ceil(workers / requests) grid chunks, so the
    // unit count stays near the worker count. Once requests alone
    // saturate the pool, every request runs unsplit (pure request
    // parallelism, no privatization at all). Exclusive kernels are
    // never split, but distinct requests write distinct outputs, so
    // they still run concurrently across the batch.
    int64_t per_request_cap =
        kernel.exclusive
            ? 1
            : std::max<int64_t>(
                  1, (workers + num_requests - 1) / num_requests);
    int64_t min_chunk = std::max<int64_t>(options.minBlocksPerChunk, 1);
    std::vector<int64_t> extents(num_requests, 0);
    std::vector<int64_t> chunks_per(num_requests, 1);
    int64_t total_units = 0;
    for (int64_t r = 0; r < num_requests; ++r) {
        if (per_request_cap >= 2) {
            extents[r] = blockExtentOf(kernel, requests[r]);
            if (extents[r] > 0) {
                chunks_per[r] =
                    std::max<int64_t>(1, std::min(per_request_cap,
                                                  extents[r] /
                                                      min_chunk));
            }
        }
        total_units += chunks_per[r];
    }

    /** One pool task: a (request, grid window) pair. */
    struct Unit
    {
        const Bindings *bindings = nullptr;
        runtime::RunOptions window;
    };
    std::vector<Unit> units;
    units.reserve(total_units);
    std::vector<Bindings> locals;
    locals.reserve(total_units);
    std::vector<std::vector<Private>> privates(total_units);
    /** Per request: its privatized unit indices, in chunk order. */
    std::vector<std::vector<size_t>> fold_plan(num_requests);
    try {
        for (int64_t r = 0; r < num_requests; ++r) {
            int64_t chunks = chunks_per[r];
            if (chunks < 2) {
                // Sole unit of its request: serial semantics on the
                // request's own buffers, nothing to privatize.
                units.push_back(Unit{&requests[r], {}});
                continue;
            }
            int64_t base = extents[r] / chunks;
            int64_t rem = extents[r] % chunks;
            int64_t begin = 0;
            for (int64_t c = 0; c < chunks; ++c) {
                int64_t extent = base + (c < rem ? 1 : 0);
                size_t index = units.size();
                Unit unit;
                unit.window.blockBegin = begin;
                unit.window.blockEnd = begin + extent;
                begin += extent;
                locals.push_back(privatize(kernel, requests[r],
                                           &privates[index],
                                           &unit.window));
                unit.bindings = &locals.back();
                units.push_back(std::move(unit));
                fold_plan[r].push_back(index);
            }
        }
        forCapped(static_cast<int64_t>(units.size()), workers,
                  [&](int64_t i) {
                      const Unit &unit = units[i];
                      execOne(kernel, *unit.bindings, options,
                              unit.window);
                  });
        // Fold each request's privates in chunk order: per output
        // element this replays that request's serial block order.
        for (int64_t r = 0; r < num_requests; ++r) {
            for (size_t index : fold_plan[r]) {
                foldAndRelease(requests[r], &privates[index]);
            }
        }
    } catch (...) {
        releaseAll(&privates);
        throw;
    }
}

void
ParallelExecutor::runKernelsBatch(
    const std::vector<const CompiledKernel *> &kernels,
    const std::vector<Bindings> &requests,
    const ExecOptions &options) const
{
    int64_t num_requests = static_cast<int64_t>(requests.size());
    if (num_requests == 0 || kernels.empty()) {
        return;
    }
    if (num_requests == 1) {
        runKernels(kernels, requests[0], options);
        return;
    }
    int workers = options.workers > 0
                      ? std::min(options.workers, pool_->size())
                      : pool_->size();
    if (!options.parallel || workers <= 1) {
        for (const Bindings &request : requests) {
            for (const CompiledKernel *kernel : kernels) {
                execOne(*kernel, request, options);
            }
        }
        return;
    }

    // Stripe the cross product (request x kernel) of one contiguous
    // run of non-exclusive kernels across the pool, privatizing each
    // unit and folding per request in kernel-list order.
    auto run_segment = [&](int64_t begin, int64_t end) {
        int64_t n = end - begin;
        if (n <= 0) {
            return;
        }
        if (n == 1) {
            // Sole kernel of its segment: add grid splitting to the
            // request axis (non-exclusive by construction).
            runKernelBatch(*kernels[begin], requests, options);
            return;
        }
        int64_t total = num_requests * n;
        std::vector<std::vector<Private>> privates(total);
        std::vector<Bindings> locals;
        locals.reserve(total);
        std::vector<runtime::RunOptions> runs(total);
        try {
            for (int64_t r = 0; r < num_requests; ++r) {
                for (int64_t i = 0; i < n; ++i) {
                    locals.push_back(privatize(*kernels[begin + i],
                                               requests[r],
                                               &privates[r * n + i],
                                               &runs[r * n + i]));
                }
            }
            forCapped(total, workers, [&](int64_t idx) {
                execOne(*kernels[begin + idx % n], locals[idx],
                        options, runs[idx]);
            });
            for (int64_t r = 0; r < num_requests; ++r) {
                for (int64_t i = 0; i < n; ++i) {
                    foldAndRelease(requests[r],
                                   &privates[r * n + i]);
                }
            }
        } catch (...) {
            releaseAll(&privates);
            throw;
        }
    };

    int64_t total = static_cast<int64_t>(kernels.size());
    int64_t segment_begin = 0;
    for (int64_t i = 0; i < total; ++i) {
        if (kernels[i]->exclusive) {
            run_segment(segment_begin, i);
            // Serial at its list position within each request; the
            // requests themselves are independent.
            forCapped(num_requests, workers, [&](int64_t r) {
                execOne(*kernels[i], requests[r], options);
            });
            segment_begin = i + 1;
        }
    }
    run_segment(segment_begin, total);
}

// ---------------------------------------------------------------------
// Fused task-graph dispatch
// ---------------------------------------------------------------------

namespace {

/** Borrow a value-request vector as the pointer form. */
std::vector<const Bindings *>
asPointers(const std::vector<Bindings> &requests)
{
    std::vector<const Bindings *> pointers;
    pointers.reserve(requests.size());
    for (const Bindings &request : requests) {
        pointers.push_back(&request);
    }
    return pointers;
}

} // namespace

TaskGraph
ParallelExecutor::buildTaskGraph(
    const std::vector<const CompiledKernel *> &kernels,
    const std::vector<Bindings> &requests,
    const ExecOptions &options) const
{
    return buildTaskGraph(kernels, asPointers(requests), options);
}

TaskGraph
ParallelExecutor::buildTaskGraph(
    const std::vector<const CompiledKernel *> &kernels,
    const std::vector<const Bindings *> &requests,
    const ExecOptions &options) const
{
    TaskGraph graph;
    graph.kernels = kernels;
    graph.numRequests = static_cast<int>(requests.size());
    graph.chains.resize(requests.size());
    if (kernels.empty() || requests.empty()) {
        return graph;
    }
    int workers = options.workers > 0
                      ? std::min(options.workers, pool_->size())
                      : pool_->size();
    int64_t num_splittable = 0;
    for (const CompiledKernel *kernel : kernels) {
        if (!kernel->exclusive) {
            ++num_splittable;
        }
    }
    // Spread the pool across the whole cross product: each
    // non-exclusive (request, kernel) pair gets at most
    // ceil(workers / pairs) grid chunks, keeping the unit count near
    // the worker count. Once requests x kernels alone saturates the
    // pool, nothing is split (pure unit parallelism, minimal
    // privatization).
    int64_t pairs = std::max<int64_t>(
        1, static_cast<int64_t>(requests.size()) * num_splittable);
    int64_t cap =
        std::max<int64_t>(1, (workers + pairs - 1) / pairs);
    int64_t min_chunk = std::max<int64_t>(options.minBlocksPerChunk, 1);
    for (size_t r = 0; r < requests.size(); ++r) {
        for (size_t k = 0; k < kernels.size(); ++k) {
            TaskGraph::ChainEntry entry;
            entry.kernel = static_cast<int>(k);
            if (kernels[k]->exclusive) {
                // Never split, never privatized: executes on shared
                // storage at its chain position.
                entry.exclusive = true;
                graph.chains[r].push_back(entry);
                continue;
            }
            int64_t chunks = 1;
            int64_t extent = 0;
            if (cap >= 2) {
                extent = blockExtentOf(*kernels[k], *requests[r]);
                if (extent > 0) {
                    chunks = std::max<int64_t>(
                        1, std::min(cap, extent / min_chunk));
                }
            }
            entry.firstUnit = graph.units.size();
            entry.numUnits = static_cast<int>(chunks);
            if (chunks < 2) {
                entry.numUnits = 1;
                graph.units.push_back(
                    TaskGraph::Unit{static_cast<int>(r),
                                    static_cast<int>(k), 0, -1});
            } else {
                int64_t base = extent / chunks;
                int64_t rem = extent % chunks;
                int64_t begin = 0;
                for (int64_t c = 0; c < chunks; ++c) {
                    int64_t len = base + (c < rem ? 1 : 0);
                    graph.units.push_back(
                        TaskGraph::Unit{static_cast<int>(r),
                                        static_cast<int>(k), begin,
                                        begin + len});
                    begin += len;
                }
            }
            graph.chains[r].push_back(entry);
        }
    }
    return graph;
}

void
ParallelExecutor::runTaskGraph(const TaskGraph &graph,
                               const std::vector<Bindings> &requests,
                               const ExecOptions &options) const
{
    runTaskGraph(graph, asPointers(requests), options);
}

void
ParallelExecutor::runTaskGraph(
    const TaskGraph &graph,
    const std::vector<const Bindings *> &requests,
    const ExecOptions &options) const
{
    ICHECK_EQ(static_cast<size_t>(graph.numRequests), requests.size())
        << "task graph was built for a different request set";
    if (graph.kernels.empty() || requests.empty()) {
        return;
    }
    int workers = options.workers > 0
                      ? std::min(options.workers, pool_->size())
                      : pool_->size();
    if (!options.parallel || workers <= 1) {
        // The serial oracle itself: kernels in list order per request.
        for (const Bindings *request : requests) {
            for (const CompiledKernel *kernel : graph.kernels) {
                execOne(*kernel, *request, options);
            }
        }
        return;
    }

    int64_t num_requests = static_cast<int64_t>(requests.size());
    size_t num_kernels = graph.kernels.size();
    size_t num_units = graph.units.size();

    // Per-(request, kernel) count of unfinished compute units. A
    // non-exclusive fold entry is ready exactly when its count hits
    // zero; the release-decrement / acquire-load pair makes the
    // finishing unit's private writes visible to whichever thread
    // folds them.
    std::unique_ptr<std::atomic<int>[]> pending(
        new std::atomic<int>[num_requests * num_kernels]);
    for (int64_t i = 0; i < num_requests *
                                static_cast<int64_t>(num_kernels);
         ++i) {
        pending[i].store(0, std::memory_order_relaxed);
    }
    for (int64_t r = 0; r < num_requests; ++r) {
        for (const TaskGraph::ChainEntry &entry : graph.chains[r]) {
            if (!entry.exclusive) {
                pending[r * num_kernels + entry.kernel].store(
                    entry.numUnits, std::memory_order_relaxed);
            }
        }
    }
    std::vector<std::mutex> chain_mu(num_requests);
    std::vector<size_t> cursor(num_requests, 0);
    // Chain has a thread inside an exclusive kernel (lock dropped
    // for the duration); other advances return and the busy thread
    // re-walks when it finishes.
    std::vector<uint8_t> busy(num_requests, 0);

    std::vector<std::vector<Private>> privates(num_units);
    std::vector<Bindings> locals;
    locals.reserve(num_units);
    std::vector<runtime::RunOptions> runs(num_units);
    try {
        for (size_t i = 0; i < num_units; ++i) {
            const TaskGraph::Unit &unit = graph.units[i];
            runs[i].blockBegin = unit.blockBegin;
            runs[i].blockEnd = unit.blockEnd;
            locals.push_back(privatize(*graph.kernels[unit.kernel],
                                       *requests[unit.request],
                                       &privates[i], &runs[i]));
        }

        // Walk request r's chain as far as readiness allows. Every
        // pending-hit-zero event calls this, so the chain drains: the
        // mutex totally orders the walks, each decrement precedes its
        // own walk, hence the last walk in lock order sees every
        // earlier kernel ready and runs to the end. An exclusive
        // kernel executes with the lock DROPPED (`busy` keeps later
        // folds of the same request ordered behind it while
        // concurrent advances return instead of idling on the
        // mutex); the executing thread re-walks afterwards, so any
        // readiness event that arrived meanwhile is picked up.
        auto advance = [&](int64_t r) {
            std::unique_lock<std::mutex> lock(chain_mu[r]);
            if (busy[r]) {
                return;  // the busy thread re-walks when it finishes
            }
            const std::vector<TaskGraph::ChainEntry> &chain =
                graph.chains[r];
            while (cursor[r] < chain.size()) {
                const TaskGraph::ChainEntry &entry = chain[cursor[r]];
                if (entry.exclusive) {
                    busy[r] = 1;
                    lock.unlock();
                    {
                        SPARSETIR_TRACE_SCOPE2(
                            "exec", "fused.exclusive", "kernel",
                            entry.kernel, "request", r);
                        execOne(*graph.kernels[entry.kernel],
                                *requests[r], options);
                    }
                    lock.lock();
                    busy[r] = 0;
                } else {
                    if (pending[r * num_kernels + entry.kernel].load(
                            std::memory_order_acquire) != 0) {
                        break;
                    }
                    SPARSETIR_TRACE_SCOPE2("exec", "fused.fold",
                                           "kernel", entry.kernel,
                                           "request", r);
                    for (int c = 0; c < entry.numUnits; ++c) {
                        foldAndRelease(*requests[r],
                                       &privates[entry.firstUnit + c]);
                    }
                }
                ++cursor[r];
            }
        };

        // ONE pool over everything: a kickoff task per request (so a
        // chain headed by an exclusive kernel starts without waiting
        // on any compute unit) plus every compute unit. A worker cap
        // below the pool size is honored by launching that many
        // self-replenishing runners over a shared task counter — not
        // by forCapped's waves, whose per-wave joins would be exactly
        // the barriers the fused schedule exists to remove.
        int64_t total_tasks =
            num_requests + static_cast<int64_t>(num_units);
        std::atomic<int64_t> next_task{0};
        auto run_task = [&](int64_t t) {
            if (t < num_requests) {
                advance(t);
                return;
            }
            size_t i = static_cast<size_t>(t - num_requests);
            const TaskGraph::Unit &unit = graph.units[i];
            {
                SPARSETIR_TRACE_SCOPE2("exec", "fused.unit", "kernel",
                                       unit.kernel, "request",
                                       unit.request);
                execOne(*graph.kernels[unit.kernel], locals[i],
                        options, runs[i]);
            }
            if (pending[unit.request * num_kernels + unit.kernel]
                    .fetch_sub(1, std::memory_order_acq_rel) == 1) {
                advance(unit.request);
            }
        };
        pool_->parallelFor(
            std::min<int64_t>(workers, total_tasks), [&](int64_t) {
                for (;;) {
                    int64_t t = next_task.fetch_add(
                        1, std::memory_order_relaxed);
                    if (t >= total_tasks) {
                        return;
                    }
                    run_task(t);
                }
            });
        for (int64_t r = 0; r < num_requests; ++r) {
            ICHECK_EQ(cursor[r], graph.chains[r].size())
                << "fused fold chain of request " << r
                << " did not drain";
        }
    } catch (...) {
        releaseAll(&privates);
        throw;
    }
}

void
ParallelExecutor::runKernelsFused(
    const std::vector<const CompiledKernel *> &kernels,
    const std::vector<Bindings> &requests,
    const ExecOptions &options) const
{
    int workers = options.workers > 0
                      ? std::min(options.workers, pool_->size())
                      : pool_->size();
    if (!options.parallel || workers <= 1) {
        // Serial sessions skip graph construction entirely — the
        // plan (extent evaluations, unit/chain vectors) would be
        // built per dispatch only to be ignored by the fallback.
        for (const Bindings &request : requests) {
            for (const CompiledKernel *kernel : kernels) {
                execOne(*kernel, request, options);
            }
        }
        return;
    }
    std::vector<const Bindings *> pointers = asPointers(requests);
    TaskGraph graph = buildTaskGraph(kernels, pointers, options);
    runTaskGraph(graph, pointers, options);
}

void
ParallelExecutor::runKernelsFused(
    const std::vector<const CompiledKernel *> &kernels,
    const Bindings &bindings, const ExecOptions &options) const
{
    int workers = options.workers > 0
                      ? std::min(options.workers, pool_->size())
                      : pool_->size();
    if (!options.parallel || workers <= 1) {
        for (const CompiledKernel *kernel : kernels) {
            execOne(*kernel, bindings, options);
        }
        return;
    }
    std::vector<const Bindings *> one{&bindings};
    TaskGraph graph = buildTaskGraph(kernels, one, options);
    runTaskGraph(graph, one, options);
}

// ---------------------------------------------------------------------
// Raw-PrimFunc convenience overloads
// ---------------------------------------------------------------------

namespace {

/** One-off CompiledKernel with an optional precomputed accum list. */
CompiledKernel
transientKernel(const PrimFunc &func, const ExecOptions &options,
                const std::vector<std::string> *accum)
{
    CompiledKernel kernel = compileKernel(
        func, options.backend != runtime::Backend::kInterpreter,
        /*analyze_accums=*/accum == nullptr);
    if (accum != nullptr) {
        for (const std::string &name : *accum) {
            AccumOutput out;
            out.name = name;
            kernel.accums.push_back(std::move(out));
        }
    }
    return kernel;
}

} // namespace

void
ParallelExecutor::runKernel(const PrimFunc &func,
                            const Bindings &bindings,
                            const ExecOptions &options,
                            const std::vector<std::string> *accum) const
{
    runKernel(transientKernel(func, options, accum), bindings,
              options);
}

void
ParallelExecutor::runKernels(
    const std::vector<PrimFunc> &funcs, const Bindings &bindings,
    const ExecOptions &options, const std::vector<uint8_t> &exclusive,
    const std::vector<std::vector<std::string>> *accums) const
{
    ICHECK(exclusive.empty() || exclusive.size() == funcs.size())
        << "exclusive mask does not match kernel count";
    ICHECK(accums == nullptr || accums->size() == funcs.size())
        << "precomputed accumulation lists do not match kernel count";
    std::vector<CompiledKernel> owned;
    owned.reserve(funcs.size());
    for (size_t i = 0; i < funcs.size(); ++i) {
        owned.push_back(transientKernel(
            funcs[i], options,
            accums != nullptr ? &(*accums)[i] : nullptr));
        owned.back().exclusive =
            !exclusive.empty() && exclusive[i] != 0;
    }
    std::vector<const CompiledKernel *> pointers;
    pointers.reserve(owned.size());
    for (const CompiledKernel &kernel : owned) {
        pointers.push_back(&kernel);
    }
    runKernels(pointers, bindings, options);
}

} // namespace engine
} // namespace sparsetir
