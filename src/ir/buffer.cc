#include "ir/buffer.h"

namespace sparsetir {
namespace ir {

std::string
memScopeName(MemScope scope)
{
    switch (scope) {
      case MemScope::kGlobal:
        return "global";
      case MemScope::kShared:
        return "shared";
      case MemScope::kLocal:
        return "local";
      case MemScope::kWmmaFragment:
        return "wmma";
    }
    return "unknown";
}

Buffer
denseBuffer(std::string name, std::vector<Expr> shape, DataType dtype,
            MemScope scope)
{
    auto node = std::make_shared<BufferNode>();
    node->data = var(name + "_data", DataType::handle());
    node->name = std::move(name);
    node->dtype = dtype;
    node->shape = std::move(shape);
    node->scope = scope;
    return node;
}

Buffer
matchSparseBuffer(std::string name, std::vector<Axis> axes, DataType dtype)
{
    ICHECK(!axes.empty()) << "sparse buffer needs at least one axis";
    auto node = std::make_shared<BufferNode>();
    node->data = var(name + "_data", DataType::handle());
    node->name = std::move(name);
    node->dtype = dtype;
    node->axes = std::move(axes);
    return node;
}

Buffer
withScope(const Buffer &buffer, MemScope scope, std::string name)
{
    auto node = std::make_shared<BufferNode>(*buffer);
    node->name = std::move(name);
    node->data = var(node->name + "_data", DataType::handle());
    node->scope = scope;
    return node;
}

Expr
bufferLoad(Buffer buffer, std::vector<Expr> indices)
{
    ICHECK(buffer != nullptr);
    ICHECK_EQ(indices.size(), buffer->ndim())
        << "buffer " << buffer->name << " expects " << buffer->ndim()
        << " indices";
    int lanes = 1;
    for (const auto &idx : indices) {
        if (idx->dtype.lanes() > lanes) {
            lanes = idx->dtype.lanes();
        }
    }
    return std::make_shared<BufferLoadNode>(buffer->dtype.withLanes(lanes),
                                            std::move(buffer),
                                            std::move(indices));
}

} // namespace ir
} // namespace sparsetir
