#include "baselines/cusparse.h"

namespace sparsetir {
namespace baselines {

std::unique_ptr<gpusim::Kernel>
cusparseSpmm(const format::Csr &a, int64_t feat)
{
    RowSplitParams params;
    params.rowsPerBlock = 32;
    params.sortRows = false;
    params.registerAccum = true;
    params.vectorWidth = 4;
    params.unrollDiscount = 0.25;
    return std::make_unique<RowSplitSpmmKernel>("cusparse_spmm", a, feat,
                                                params);
}

std::unique_ptr<gpusim::Kernel>
cusparseSddmm(const format::Csr &a, int64_t feat)
{
    SddmmParams params;
    params.nnzPerBlock = 4;
    params.vectorWidth = 1;       // scalar loads
    params.twoStageReduction = false;
    return std::make_unique<SddmmKernel>("cusparse_sddmm", a, feat,
                                         params);
}

} // namespace baselines
} // namespace sparsetir
