/**
 * @file
 * Set-associative LRU cache model used for L1 (per SM) and L2
 * (device-wide) hit-rate simulation. Cache behaviour drives the
 * column-partitioning ablation of paper Figure 12.
 */

#ifndef SPARSETIR_GPUSIM_CACHE_H_
#define SPARSETIR_GPUSIM_CACHE_H_

#include <cstdint>
#include <vector>

namespace sparsetir {
namespace gpusim {

/** Set-associative LRU cache over line addresses. */
class CacheModel
{
  public:
    CacheModel(int64_t size_bytes, int line_bytes, int assoc);

    /**
     * Access one byte address; allocates on miss. Returns true on
     * hit.
     */
    bool access(uint64_t addr);

    /** Access a whole line by line index (addr / lineBytes). */
    bool accessLine(uint64_t line);

    /** Forget all contents (the paper's FLUSH_L2 protocol). */
    void flush();

    int64_t hits() const { return hits_; }
    int64_t misses() const { return misses_; }

    double
    hitRate() const
    {
        int64_t total = hits_ + misses_;
        return total == 0 ? 0.0
                          : static_cast<double>(hits_) /
                                static_cast<double>(total);
    }

    void
    resetStats()
    {
        hits_ = 0;
        misses_ = 0;
    }

    int lineBytes() const { return lineBytes_; }

  private:
    int lineBytes_;
    int assoc_;
    int64_t numSets_;
    /** ways per set, most recently used first; 0 = empty. */
    std::vector<uint64_t> tags_;
    int64_t hits_ = 0;
    int64_t misses_ = 0;
};

} // namespace gpusim
} // namespace sparsetir

#endif // SPARSETIR_GPUSIM_CACHE_H_
