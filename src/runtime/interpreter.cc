#include "runtime/interpreter.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ir/functor.h"
#include "runtime/bytecode/compiler.h"
#include "runtime/bytecode/vm.h"

namespace sparsetir {
namespace runtime {

using namespace ir;

namespace {

/** A scalar runtime value. */
struct Value
{
    bool isFloat = false;
    int64_t i = 0;
    double f = 0.0;

    static Value
    ofInt(int64_t v)
    {
        Value value;
        value.i = v;
        return value;
    }
    static Value
    ofFloat(double v)
    {
        Value value;
        value.isFloat = true;
        value.f = v;
        return value;
    }

    int64_t
    asInt() const
    {
        return isFloat ? static_cast<int64_t>(f) : i;
    }
    double
    asFloat() const
    {
        return isFloat ? f : static_cast<double>(i);
    }
};

} // namespace

OffsetView
OffsetView::fromSpans(std::vector<std::pair<int64_t, int64_t>> spans)
{
    OffsetView view;
    view.bases.reserve(spans.size());
    int64_t packed = 0;
    int64_t prev_end = 0;
    for (const auto &span : spans) {
        ICHECK_GE(span.first, 0) << "negative span begin";
        ICHECK_LT(span.first, span.second)
            << "empty or inverted span in offset view";
        ICHECK_GE(span.first, prev_end)
            << "offset-view spans must be sorted and disjoint";
        prev_end = span.second;
        view.bases.push_back(packed);
        packed += span.second - span.first;
    }
    view.numel = packed;
    view.spans = std::move(spans);
    return view;
}

int64_t
floordivInt(int64_t a, int64_t b)
{
    ICHECK_NE(b, 0) << "division by zero in interpreted program";
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) {
        --q;
    }
    return q;
}

/** First For bound to blockIdx.x, pre-order; null when absent. */
const ForNode *
findBlockIdxLoop(const Stmt &s)
{
    if (s == nullptr) {
        return nullptr;
    }
    switch (s->kind) {
      case StmtKind::kFor: {
        auto op = static_cast<const ForNode *>(s.get());
        if (op->forKind == ForKind::kThreadBinding &&
            op->threadTag == "blockIdx.x") {
            return op;
        }
        return findBlockIdxLoop(op->body);
      }
      case StmtKind::kSeq: {
        auto op = static_cast<const SeqStmtNode *>(s.get());
        for (const auto &child : op->seq) {
            if (const ForNode *found = findBlockIdxLoop(child)) {
                return found;
            }
        }
        return nullptr;
      }
      case StmtKind::kBlock:
        return findBlockIdxLoop(
            static_cast<const BlockNode *>(s.get())->body);
      case StmtKind::kIfThenElse: {
        auto op = static_cast<const IfThenElseNode *>(s.get());
        if (const ForNode *found = findBlockIdxLoop(op->thenBody)) {
            return found;
        }
        return findBlockIdxLoop(op->elseBody);
      }
      case StmtKind::kLetStmt:
        return findBlockIdxLoop(
            static_cast<const LetStmtNode *>(s.get())->body);
      case StmtKind::kAllocate:
        return findBlockIdxLoop(
            static_cast<const AllocateNode *>(s.get())->body);
      default:
        return nullptr;
    }
}

namespace {

class Machine
{
  public:
    Machine(const PrimFunc &func, const Bindings &bindings) : func_(func)
    {
        // Bindings resolve lazily: a parameter the function never
        // touches (e.g. the original CSR arrays in a bucket compute
        // kernel) need not be bound.
        for (const auto &param : func->params) {
            if (param->dtype.isHandle()) {
                auto it = bindings.arrays.find(param->name);
                if (it != bindings.arrays.end()) {
                    arrays_[param.get()] = it->second;
                }
            } else {
                auto it = bindings.scalars.find(param->name);
                if (it != bindings.scalars.end()) {
                    scalars_[param.get()] = Value::ofInt(it->second);
                }
            }
        }
    }

    void
    run()
    {
        if (func_->body != nullptr) {
            exec(func_->body);
        }
    }

    /**
     * Restrict execution to iterations [begin, end) of the given
     * blockIdx loop (offsets relative to the loop's min).
     */
    void
    restrictBlocks(const ForNode *loop, int64_t begin, int64_t end)
    {
        restricted_loop_ = loop;
        block_begin_ = begin;
        block_end_ = end;
    }

    /** Evaluate an expression against the bound scalars. */
    int64_t
    evalScalar(const Expr &e)
    {
        return evalExpr(e).asInt();
    }

    /** Rebase accesses of handle parameter `name` (see OffsetView). */
    void
    bindView(const std::string &name, const OffsetView *view)
    {
        for (const auto &param : func_->params) {
            if (param->dtype.isHandle() && param->name == name) {
                views_[param.get()] = view;
            }
        }
    }

  private:
    NDArray *
    arrayOf(const Buffer &buffer)
    {
        auto it = arrays_.find(buffer->data.get());
        ICHECK(it != arrays_.end())
            << "no storage bound for buffer '" << buffer->name << "'";
        return it->second;
    }

    /**
     * Translate an absolute offset into a rebased buffer's packed
     * storage; identity for buffers without a view. Faults on
     * accesses outside the window — the write-set contract made
     * checkable.
     */
    int64_t
    viewOffset(const Buffer &buffer, int64_t offset)
    {
        if (views_.empty()) {
            return offset;
        }
        auto it = views_.find(buffer->data.get());
        if (it == views_.end()) {
            return offset;
        }
        int64_t packed = it->second->translate(offset);
        ICHECK_GE(packed, 0)
            << "offset " << offset << " of buffer '" << buffer->name
            << "' lies outside its rebased window (write-set spans "
               "must cover every touched element)";
        return packed;
    }

    /** Row-major flat offset of an access. */
    int64_t
    flatOffset(const Buffer &buffer, const std::vector<Expr> &indices)
    {
        if (indices.size() == 1) {
            return evalExpr(indices[0]).asInt();
        }
        ICHECK(!buffer->isSparse())
            << "interpreter requires lowered (dense) buffer access for '"
            << buffer->name << "'; run sparse buffer lowering first";
        ICHECK_EQ(indices.size(), buffer->shape.size());
        int64_t offset = 0;
        for (size_t d = 0; d < indices.size(); ++d) {
            int64_t extent = evalExpr(buffer->shape[d]).asInt();
            int64_t idx = evalExpr(indices[d]).asInt();
            ICHECK_GE(idx, 0) << "negative index into " << buffer->name;
            ICHECK_LT(idx, extent)
                << "index out of bounds in " << buffer->name << " dim "
                << d;
            offset = offset * extent + idx;
        }
        return offset;
    }

    Value
    loadBuffer(const Buffer &buffer, const std::vector<Expr> &indices)
    {
        NDArray *array = arrayOf(buffer);
        int64_t offset = flatOffset(buffer, indices);
        ICHECK_GE(offset, 0) << "negative offset into " << buffer->name;
        offset = viewOffset(buffer, offset);
        ICHECK_LT(offset, array->numel())
            << "offset " << offset << " out of bounds for buffer '"
            << buffer->name << "' (numel " << array->numel() << ")";
        if (array->dtype().isFloat()) {
            return Value::ofFloat(array->floatAt(offset));
        }
        return Value::ofInt(array->intAt(offset));
    }

    void
    storeBuffer(const Buffer &buffer, const std::vector<Expr> &indices,
                const Value &value)
    {
        NDArray *array = arrayOf(buffer);
        int64_t offset = flatOffset(buffer, indices);
        ICHECK_GE(offset, 0) << "negative offset into " << buffer->name;
        offset = viewOffset(buffer, offset);
        ICHECK_LT(offset, array->numel())
            << "offset " << offset << " out of bounds for buffer '"
            << buffer->name << "' (numel " << array->numel() << ")";
        if (array->dtype().isFloat()) {
            array->setFloat(offset, value.asFloat());
        } else {
            array->setInt(offset, value.asInt());
        }
    }

    Value
    evalBinary(const BinaryNode *op)
    {
        Value a = evalExpr(op->a);
        Value b = evalExpr(op->b);
        bool flt = a.isFloat || b.isFloat;
        auto boolean = [](bool v) { return Value::ofInt(v ? 1 : 0); };
        switch (op->kind) {
          case ExprKind::kAdd:
            return flt ? Value::ofFloat(a.asFloat() + b.asFloat())
                       : Value::ofInt(a.i + b.i);
          case ExprKind::kSub:
            return flt ? Value::ofFloat(a.asFloat() - b.asFloat())
                       : Value::ofInt(a.i - b.i);
          case ExprKind::kMul:
            return flt ? Value::ofFloat(a.asFloat() * b.asFloat())
                       : Value::ofInt(a.i * b.i);
          case ExprKind::kDiv:
            return Value::ofFloat(a.asFloat() / b.asFloat());
          case ExprKind::kFloorDiv:
            ICHECK(!flt) << "floordiv on float values";
            return Value::ofInt(floordivInt(a.i, b.i));
          case ExprKind::kFloorMod:
            ICHECK(!flt) << "floormod on float values";
            return Value::ofInt(a.i - floordivInt(a.i, b.i) * b.i);
          case ExprKind::kMin:
            return flt ? Value::ofFloat(std::min(a.asFloat(), b.asFloat()))
                       : Value::ofInt(std::min(a.i, b.i));
          case ExprKind::kMax:
            return flt ? Value::ofFloat(std::max(a.asFloat(), b.asFloat()))
                       : Value::ofInt(std::max(a.i, b.i));
          case ExprKind::kEQ:
            return boolean(flt ? a.asFloat() == b.asFloat() : a.i == b.i);
          case ExprKind::kNE:
            return boolean(flt ? a.asFloat() != b.asFloat() : a.i != b.i);
          case ExprKind::kLT:
            return boolean(flt ? a.asFloat() < b.asFloat() : a.i < b.i);
          case ExprKind::kLE:
            return boolean(flt ? a.asFloat() <= b.asFloat() : a.i <= b.i);
          case ExprKind::kGT:
            return boolean(flt ? a.asFloat() > b.asFloat() : a.i > b.i);
          case ExprKind::kGE:
            return boolean(flt ? a.asFloat() >= b.asFloat() : a.i >= b.i);
          case ExprKind::kAnd:
            return boolean(a.asInt() != 0 && b.asInt() != 0);
          case ExprKind::kOr:
            return boolean(a.asInt() != 0 || b.asInt() != 0);
          default:
            ICHECK(false) << "unhandled binary kind";
        }
        return Value();
    }

    Value
    evalCall(const CallNode *op)
    {
        switch (op->op) {
          case Builtin::kLowerBound:
          case Builtin::kUpperBound: {
            ICHECK(op->bufferArg != nullptr);
            ICHECK_EQ(op->args.size(), 3u);
            ICHECK(views_.find(op->bufferArg->data.get()) ==
                   views_.end())
                << "binary search over rebased buffer '"
                << op->bufferArg->name << "'";
            NDArray *array = arrayOf(op->bufferArg);
            int64_t lo = evalExpr(op->args[0]).asInt();
            int64_t hi = evalExpr(op->args[1]).asInt();
            int64_t val = evalExpr(op->args[2]).asInt();
            ICHECK_GE(lo, 0);
            ICHECK_LE(hi, array->numel());
            bool upper = op->op == Builtin::kUpperBound;
            while (lo < hi) {
                int64_t mid = lo + (hi - lo) / 2;
                int64_t elem = array->intAt(mid);
                bool go_right = upper ? elem <= val : elem < val;
                if (go_right) {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            return Value::ofInt(lo);
          }
          case Builtin::kExp:
            return Value::ofFloat(std::exp(evalExpr(op->args[0]).asFloat()));
          case Builtin::kLog:
            return Value::ofFloat(std::log(evalExpr(op->args[0]).asFloat()));
          case Builtin::kSqrt:
            return Value::ofFloat(
                std::sqrt(evalExpr(op->args[0]).asFloat()));
          case Builtin::kAbs: {
            Value v = evalExpr(op->args[0]);
            return v.isFloat ? Value::ofFloat(std::fabs(v.f))
                             : Value::ofInt(std::llabs(v.i));
          }
          case Builtin::kAtomicAdd: {
            ICHECK(op->bufferArg != nullptr);
            ICHECK_EQ(op->args.size(), 2u);
            NDArray *array = arrayOf(op->bufferArg);
            int64_t offset = evalExpr(op->args[0]).asInt();
            ICHECK_GE(offset, 0);
            offset = viewOffset(op->bufferArg, offset);
            ICHECK_LT(offset, array->numel());
            if (array->dtype().isFloat()) {
                double old = array->floatAt(offset);
                array->setFloat(offset,
                                old + evalExpr(op->args[1]).asFloat());
                return Value::ofFloat(old);
            }
            int64_t old = array->intAt(offset);
            array->setInt(offset, old + evalExpr(op->args[1]).asInt());
            return Value::ofInt(old);
          }
          case Builtin::kExtern:
            USER_CHECK(false) << "cannot interpret extern call '"
                              << op->name << "'";
        }
        return Value();
    }

    Value
    evalExpr(const Expr &e)
    {
        switch (e->kind) {
          case ExprKind::kIntImm:
            return Value::ofInt(
                static_cast<const IntImmNode *>(e.get())->value);
          case ExprKind::kFloatImm:
            return Value::ofFloat(
                static_cast<const FloatImmNode *>(e.get())->value);
          case ExprKind::kVar: {
            auto op = static_cast<const VarNode *>(e.get());
            auto it = scalars_.find(op);
            ICHECK(it != scalars_.end())
                << "unbound variable '" << op->name << "'";
            return it->second;
          }
          case ExprKind::kNot:
            return Value::ofInt(
                evalExpr(static_cast<const NotNode *>(e.get())->a)
                            .asInt() == 0
                    ? 1
                    : 0);
          case ExprKind::kSelect: {
            auto op = static_cast<const SelectNode *>(e.get());
            return evalExpr(op->cond).asInt() != 0
                       ? evalExpr(op->trueValue)
                       : evalExpr(op->falseValue);
          }
          case ExprKind::kCast: {
            auto op = static_cast<const CastNode *>(e.get());
            Value v = evalExpr(op->value);
            if (op->dtype.isFloat()) {
                return Value::ofFloat(v.asFloat());
            }
            return Value::ofInt(v.asInt());
          }
          case ExprKind::kBufferLoad: {
            auto op = static_cast<const BufferLoadNode *>(e.get());
            return loadBuffer(op->buffer, op->indices);
          }
          case ExprKind::kCall:
            return evalCall(static_cast<const CallNode *>(e.get()));
          case ExprKind::kStringImm:
          case ExprKind::kRamp:
          case ExprKind::kBroadcast:
            ICHECK(false) << "expression kind not interpretable as scalar";
            return Value();
          case ExprKind::kAnd: {
            // Short-circuit: guards rely on the right operand not
            // being evaluated when the left is false (e.g. bounds
            // check before an indices load).
            auto op = static_cast<const BinaryNode *>(e.get());
            if (evalExpr(op->a).asInt() == 0) {
                return Value::ofInt(0);
            }
            return Value::ofInt(evalExpr(op->b).asInt() != 0 ? 1 : 0);
          }
          case ExprKind::kOr: {
            auto op = static_cast<const BinaryNode *>(e.get());
            if (evalExpr(op->a).asInt() != 0) {
                return Value::ofInt(1);
            }
            return Value::ofInt(evalExpr(op->b).asInt() != 0 ? 1 : 0);
          }
          default:
            return evalBinary(static_cast<const BinaryNode *>(e.get()));
        }
    }

    void
    exec(const Stmt &s)
    {
        switch (s->kind) {
          case StmtKind::kBufferStore: {
            auto op = static_cast<const BufferStoreNode *>(s.get());
            storeBuffer(op->buffer, op->indices, evalExpr(op->value));
            break;
          }
          case StmtKind::kSeq: {
            auto op = static_cast<const SeqStmtNode *>(s.get());
            for (const auto &child : op->seq) {
                exec(child);
            }
            break;
          }
          case StmtKind::kFor: {
            auto op = static_cast<const ForNode *>(s.get());
            int64_t min_v = evalExpr(op->minValue).asInt();
            int64_t extent = evalExpr(op->extent).asInt();
            int64_t lo = min_v;
            int64_t hi = min_v + extent;
            if (op == restricted_loop_) {
                lo = min_v + std::max<int64_t>(block_begin_, 0);
                hi = std::min(hi, min_v + block_end_);
            }
            Value &slot = scalars_[op->loopVar.get()];
            for (int64_t v = lo; v < hi; ++v) {
                slot = Value::ofInt(v);
                exec(op->body);
            }
            scalars_.erase(op->loopVar.get());
            break;
          }
          case StmtKind::kBlock: {
            auto op = static_cast<const BlockNode *>(s.get());
            if (op->init != nullptr) {
                bool fire = true;
                for (const auto &rv : op->reduceVars) {
                    auto it = scalars_.find(rv.get());
                    if (it != scalars_.end() && it->second.asInt() != 0) {
                        fire = false;
                        break;
                    }
                }
                if (fire) {
                    exec(op->init);
                }
            }
            exec(op->body);
            break;
          }
          case StmtKind::kIfThenElse: {
            auto op = static_cast<const IfThenElseNode *>(s.get());
            if (evalExpr(op->cond).asInt() != 0) {
                exec(op->thenBody);
            } else if (op->elseBody != nullptr) {
                exec(op->elseBody);
            }
            break;
          }
          case StmtKind::kLetStmt: {
            auto op = static_cast<const LetStmtNode *>(s.get());
            scalars_[op->letVar.get()] = evalExpr(op->value);
            exec(op->body);
            scalars_.erase(op->letVar.get());
            break;
          }
          case StmtKind::kAllocate: {
            auto op = static_cast<const AllocateNode *>(s.get());
            std::vector<int64_t> shape;
            shape.reserve(op->buffer->shape.size());
            for (const auto &dim : op->buffer->shape) {
                shape.push_back(evalExpr(dim).asInt());
            }
            auto storage =
                std::make_unique<NDArray>(shape, op->buffer->dtype);
            NDArray *ptr = storage.get();
            allocations_.push_back(std::move(storage));
            arrays_[op->buffer->data.get()] = ptr;
            exec(op->body);
            arrays_.erase(op->buffer->data.get());
            allocations_.pop_back();
            break;
          }
          case StmtKind::kEvaluate:
            evalExpr(static_cast<const EvaluateNode *>(s.get())->value);
            break;
          case StmtKind::kSparseIteration:
            USER_CHECK(false)
                << "cannot interpret Stage I sparse iteration '"
                << static_cast<const SparseIterationNode *>(s.get())->name
                << "'; lower the function first";
            break;
          default:
            ICHECK(false) << "unhandled stmt kind";
        }
    }

    PrimFunc func_;
    std::unordered_map<const VarNode *, Value> scalars_;
    std::unordered_map<const VarNode *, NDArray *> arrays_;
    /** Rebased handle parameters (see OffsetView); usually empty. */
    std::unordered_map<const VarNode *, const OffsetView *> views_;
    std::vector<std::unique_ptr<NDArray>> allocations_;
    const ForNode *restricted_loop_ = nullptr;
    int64_t block_begin_ = 0;
    int64_t block_end_ = 0;
};

} // namespace

void
run(const ir::PrimFunc &func, const Bindings &bindings)
{
    run(func, bindings, RunOptions());
}

void
run(const ir::PrimFunc &func, const Bindings &bindings,
    const RunOptions &options)
{
    if (options.backend != Backend::kInterpreter) {
        // Compile once (memoized); functions outside the bytecode
        // subset fall through to the interpreter, whose diagnostics
        // are authoritative for them. kNative lands here too: bare
        // run() has no compiled artifact attached, so it serves the
        // bytecode tier — native dispatch is the engine executor's
        // job (CompiledKernel::native).
        std::shared_ptr<const bytecode::Program> program =
            bytecode::programFor(func);
        if (program != nullptr) {
            bytecode::execute(*program, bindings, options);
            return;
        }
    }
    runInterpreted(func, bindings, options);
}

void
runInterpreted(const ir::PrimFunc &func, const Bindings &bindings,
               const RunOptions &options)
{
    Machine machine(func, bindings);
    for (const BufferView &bv : options.offsetViews) {
        machine.bindView(bv.name, bv.view);
    }
    if (options.blockEnd >= 0) {
        const ForNode *loop = findBlockIdxLoop(func->body);
        USER_CHECK(loop != nullptr)
            << "block-windowed execution of '" << func->name
            << "': no blockIdx.x-bound loop";
        machine.restrictBlocks(loop, options.blockBegin,
                               options.blockEnd);
    }
    machine.run();
}

namespace {

/** The process-global probe count lives in the global metrics
 *  registry; the pointer is stable for the process lifetime. */
observe::Counter *
globalProbeCounter()
{
    static observe::Counter *counter =
        observe::MetricsRegistry::global().counter(
            "runtime.launch_probes");
    return counter;
}

/** Per-thread attribution sink installed by ProbeCounterScope. */
thread_local observe::Counter *tls_probe_counter = nullptr;

void
countLaunchProbe()
{
    globalProbeCounter()->add(1);
    if (tls_probe_counter != nullptr) {
        tls_probe_counter->add(1);
    }
}

} // namespace

ProbeCounterScope::ProbeCounterScope(observe::Counter *counter)
    : prev_(tls_probe_counter)
{
    tls_probe_counter = counter;
}

ProbeCounterScope::~ProbeCounterScope()
{
    tls_probe_counter = prev_;
}

uint64_t
launchProbeCount()
{
    return globalProbeCounter()->value();
}

void
resetLaunchProbeCount()
{
    globalProbeCounter()->reset();
}

bool
evalScalarExtent(const ir::Expr &e, const Bindings &bindings,
                 int64_t *out)
{
    if (e == nullptr) {
        return false;
    }
    switch (e->kind) {
      case ExprKind::kIntImm:
        *out = static_cast<const IntImmNode *>(e.get())->value;
        return true;
      case ExprKind::kVar: {
        auto it = bindings.scalars.find(
            static_cast<const VarNode *>(e.get())->name);
        if (it == bindings.scalars.end()) {
            return false;
        }
        *out = it->second;
        return true;
      }
      case ExprKind::kAdd:
      case ExprKind::kSub:
      case ExprKind::kMul:
      case ExprKind::kFloorDiv:
      case ExprKind::kFloorMod:
      case ExprKind::kMin:
      case ExprKind::kMax:
      case ExprKind::kEQ:
      case ExprKind::kNE:
      case ExprKind::kLT:
      case ExprKind::kLE:
      case ExprKind::kGT:
      case ExprKind::kGE:
      case ExprKind::kAnd:
      case ExprKind::kOr: {
        const auto *op = static_cast<const BinaryNode *>(e.get());
        int64_t a = 0;
        int64_t b = 0;
        if (!evalScalarExtent(op->a, bindings, &a) ||
            !evalScalarExtent(op->b, bindings, &b)) {
            return false;
        }
        switch (e->kind) {
          case ExprKind::kAdd:
            *out = a + b;
            return true;
          case ExprKind::kSub:
            *out = a - b;
            return true;
          case ExprKind::kMul:
            *out = a * b;
            return true;
          case ExprKind::kFloorDiv:
            if (b == 0) {
                return false;
            }
            *out = floordivInt(a, b);
            return true;
          case ExprKind::kFloorMod:
            if (b == 0) {
                return false;
            }
            *out = a - floordivInt(a, b) * b;
            return true;
          case ExprKind::kMin:
            *out = std::min(a, b);
            return true;
          case ExprKind::kMax:
            *out = std::max(a, b);
            return true;
          case ExprKind::kEQ:
            *out = a == b;
            return true;
          case ExprKind::kNE:
            *out = a != b;
            return true;
          case ExprKind::kLT:
            *out = a < b;
            return true;
          case ExprKind::kLE:
            *out = a <= b;
            return true;
          case ExprKind::kGT:
            *out = a > b;
            return true;
          case ExprKind::kGE:
            *out = a >= b;
            return true;
          case ExprKind::kAnd:
            *out = (a != 0) && (b != 0);
            return true;
          case ExprKind::kOr:
            *out = (a != 0) || (b != 0);
            return true;
          default:
            return false;
        }
      }
      case ExprKind::kNot: {
        int64_t a = 0;
        if (!evalScalarExtent(
                static_cast<const NotNode *>(e.get())->a, bindings,
                &a)) {
            return false;
        }
        *out = a == 0;
        return true;
      }
      case ExprKind::kSelect: {
        const auto *op = static_cast<const SelectNode *>(e.get());
        int64_t cond = 0;
        if (!evalScalarExtent(op->cond, bindings, &cond)) {
            return false;
        }
        return evalScalarExtent(
            cond != 0 ? op->trueValue : op->falseValue, bindings,
            out);
      }
      case ExprKind::kCast: {
        const auto *op = static_cast<const CastNode *>(e.get());
        if (!op->dtype.isInt() && !op->dtype.isBool()) {
            return false;
        }
        return evalScalarExtent(op->value, bindings, out);
      }
      default:
        // Buffer loads, calls, float/vector expressions: not a
        // scalar-only grid extent.
        return false;
    }
}

LaunchInfo
launchInfo(const ir::PrimFunc &func, const Bindings &bindings)
{
    LaunchInfo info;
    countLaunchProbe();
    const ForNode *loop = findBlockIdxLoop(func->body);
    if (loop == nullptr) {
        return info;
    }
    // The extent of a blockIdx loop may reference scalar params (e.g.
    // the row count); evaluate it with only those bound. Anything else
    // (loop/let-carried values) means the grid is not statically
    // addressable and callers must run the kernel unsplit.
    try {
        Machine machine(func, bindings);
        info.blockExtent = machine.evalScalar(loop->extent);
        info.hasBlockIdx = true;
    } catch (const InternalError &) {
        info.blockExtent = 0;
        info.hasBlockIdx = false;
    }
    return info;
}

void
runModule(const ir::Module &mod, const Bindings &bindings)
{
    for (const auto &func : mod->functions) {
        run(func, bindings);
    }
}

} // namespace runtime
} // namespace sparsetir
