/**
 * @file
 * Reproduces Table 2: heterogeneous graph statistics and the %padding
 * of the 3-D hyb decomposition used by the RGCN kernels.
 */

#include <cstdio>

#include "bench_util.h"
#include "format/relational.h"
#include "graph/hetero.h"

int
main()
{
    using namespace sparsetir;
    benchutil::printHeader(
        "Table 2: heterogeneous graphs used in RGCN (synthetic "
        "stand-ins)");
    std::printf("%-12s %10s %12s %8s %10s | %10s\n", "graph", "#nodes",
                "#edges", "#etypes", "%padding", "paper-%pad");
    for (const auto &spec : graph::table2Heterographs()) {
        graph::HeteroSpec hs = spec;
        if (benchutil::fastMode()) {
            hs.nodes = std::min<int64_t>(hs.nodes, 10000);
            hs.edges = std::min<int64_t>(hs.edges, 100000);
        }
        format::RelationalCsr g = graph::generateHetero(hs);
        format::RelationalHyb hyb = format::relationalHyb(g, 1, 5);
        std::printf("%-12s %10lld %12lld %8d %10.1f | %10.1f",
                    hs.name.c_str(), static_cast<long long>(hs.nodes),
                    static_cast<long long>(g.totalNnz()), hs.numEtypes,
                    hyb.paddingRatio() * 100.0, spec.paperPaddingPct);
        if (hs.nodes != spec.paperNodes) {
            std::printf("   (scaled from %lld/%lld)",
                        static_cast<long long>(spec.paperNodes),
                        static_cast<long long>(spec.paperEdges));
        }
        std::printf("\n");
    }
    return 0;
}
