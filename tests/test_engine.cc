/**
 * @file
 * Execution engine tests: compile-cache keying (structure-sensitive,
 * value-insensitive), deterministic parallel execution (bitwise
 * equality with the serial interpreter across worker counts), the
 * write-set analysis behind privatization, and concurrent dispatch
 * through one shared Engine session.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "engine/compile_cache.h"
#include "engine/engine.h"
#include "engine/executor.h"
#include "engine/fingerprint.h"
#include "engine/thread_pool.h"
#include "graph/generator.h"
#include "ir/expr.h"
#include "ir/stmt.h"
#include "support/rng.h"
#include "test_util.h"

namespace sparsetir {
namespace {

using core::BindingSet;
using engine::Engine;
using engine::EngineOptions;
using format::Csr;
using runtime::NDArray;
using testutil::bitwiseEqual;
using testutil::randomVector;

Csr
randomCsr(int64_t rows, int64_t cols, double density, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> dense(rows * cols, 0.0f);
    for (auto &v : dense) {
        if (rng.uniformReal() < density) {
            v = static_cast<float>(rng.uniformReal() * 2.0 - 1.0);
            if (v == 0.0f) {
                v = 0.5f;
            }
        }
    }
    return format::csrFromDense(rows, cols, dense);
}

// ---------------------------------------------------------------------
// Fingerprint / cache keying
// ---------------------------------------------------------------------

TEST(Fingerprint, StructureHashIgnoresValues)
{
    Csr a = randomCsr(20, 20, 0.2, 1);
    Csr b = a;
    for (auto &v : b.values) {
        v *= 2.0f;
    }
    EXPECT_EQ(engine::structureHash(a), engine::structureHash(b));
}

TEST(Fingerprint, StructureHashSeesStructure)
{
    Csr a = randomCsr(20, 20, 0.2, 1);
    Csr b = randomCsr(20, 20, 0.2, 2);
    EXPECT_NE(engine::structureHash(a), engine::structureHash(b));
}

TEST(Fingerprint, SwappedFeatInOutKeysDistinctly)
{
    // Regression for the v2 feat-aliasing bug: the key carried one
    // shared `feat` (documented feat_in == feat_out), so a
    // rectangular op and its transpose-shaped twin collided and the
    // cache served a kernel compiled for the wrong widths. v3 keys
    // both dims.
    engine::CacheKey a;
    a.op = engine::OpKind::kRgcnHyb;
    a.structure = 42;
    a.schedule = 7;
    a.featIn = 16;
    a.featOut = 32;
    engine::CacheKey b = a;
    b.featIn = 32;
    b.featOut = 16;
    EXPECT_FALSE(a == b);

    engine::CompileCache cache(4);
    int builds = 0;
    auto builder = [&] {
        ++builds;
        return std::make_shared<engine::Artifact>();
    };
    cache.getOrBuild(a, builder);
    cache.getOrBuild(b, builder);
    EXPECT_EQ(builds, 2) << "swapped featIn/featOut aliased one entry";
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(Fingerprint, BlockStructureFactsKeyDistinctly)
{
    engine::CacheKey bsr8;
    bsr8.op = engine::OpKind::kSpmmBsr;
    bsr8.structure = 9;
    bsr8.featIn = bsr8.featOut = 16;
    bsr8.blockSize = 8;
    engine::CacheKey bsr4 = bsr8;
    bsr4.blockSize = 4;
    EXPECT_FALSE(bsr8 == bsr4);

    engine::CacheKey sr;
    sr.op = engine::OpKind::kSpmmSrbcrs;
    sr.structure = 9;
    sr.featIn = sr.featOut = 16;
    sr.tileHeight = 4;
    sr.groupSize = 8;
    engine::CacheKey sr2 = sr;
    sr2.tileHeight = 8;
    sr2.groupSize = 4;
    EXPECT_FALSE(sr == sr2);

    // The artifact version is part of every key: a layout bump can
    // never serve an old artifact to new dispatch logic.
    engine::CacheKey old_version = bsr8;
    old_version.version = engine::kArtifactVersion - 1;
    EXPECT_FALSE(bsr8 == old_version);
}

TEST(CompileCache, HitOnSameKeyMissOnDifferent)
{
    engine::CompileCache cache(4);
    engine::CacheKey key1;
    key1.structure = 1;
    engine::CacheKey key2;
    key2.structure = 2;

    int builds = 0;
    auto builder = [&] {
        ++builds;
        return std::make_shared<engine::Artifact>();
    };
    auto first = cache.getOrBuild(key1, builder);
    auto second = cache.getOrBuild(key1, builder);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(builds, 1);
    cache.getOrBuild(key2, builder);
    EXPECT_EQ(builds, 2);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(CompileCache, EvictsLeastRecentlyUsed)
{
    engine::CompileCache cache(2);
    auto builder = [] { return std::make_shared<engine::Artifact>(); };
    engine::CacheKey keys[3];
    for (int i = 0; i < 3; ++i) {
        keys[i].structure = static_cast<uint64_t>(i + 1);
    }
    cache.getOrBuild(keys[0], builder);
    cache.getOrBuild(keys[1], builder);
    cache.getOrBuild(keys[0], builder);  // refresh key 0
    cache.getOrBuild(keys[2], builder);  // evicts key 1
    EXPECT_NE(cache.peek(keys[0]), nullptr);
    EXPECT_EQ(cache.peek(keys[1]), nullptr);
    EXPECT_NE(cache.peek(keys[2]), nullptr);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(Engine, CacheHitOnIdenticalStructure)
{
    Engine eng(EngineOptions{});
    Csr a = randomCsr(30, 25, 0.15, 3);
    int64_t feat = 16;
    auto b_host = randomVector(a.cols * feat, 4);
    NDArray b = NDArray::fromFloat(b_host);
    NDArray c({a.rows * feat}, ir::DataType::float32());

    auto first = eng.spmmCsr(a, feat, &b, &c);
    EXPECT_FALSE(first.cacheHit);

    // Same structure, different values: must hit.
    Csr a2 = a;
    for (auto &v : a2.values) {
        v *= 3.0f;
    }
    c.zero();
    auto second = eng.spmmCsr(a2, feat, &b, &c);
    EXPECT_TRUE(second.cacheHit);

    // Check the hit produced a2's (scaled) result, not stale values.
    auto expected = core::referenceSpmm(a2, b_host, feat);
    for (int64_t i = 0; i < c.numel(); ++i) {
        ASSERT_NEAR(expected[i], c.floatAt(i), 1e-4) << "at " << i;
    }

    // Structurally different matrix: must miss.
    Csr a3 = randomCsr(30, 25, 0.15, 99);
    c.zero();
    auto third = eng.spmmCsr(a3, feat, &b, &c);
    EXPECT_FALSE(third.cacheHit);

    // Different feature size on the original structure: must miss.
    NDArray b2 = NDArray::fromFloat(randomVector(a.cols * 8, 5));
    NDArray c2({a.rows * 8}, ir::DataType::float32());
    auto fourth = eng.spmmCsr(a, 8, &b2, &c2);
    EXPECT_FALSE(fourth.cacheHit);

    auto stats = eng.stats();
    EXPECT_EQ(stats.requests, 4u);
    EXPECT_EQ(stats.cacheHits, 1u);
    EXPECT_EQ(stats.cacheMisses, 3u);
}

TEST(Engine, HybCacheHitSkipsRebucketing)
{
    Engine eng(EngineOptions{});
    Csr a = graph::powerLawGraph(200, 2500, 1.8, 7);
    int64_t feat = 8;
    auto b_host = randomVector(a.cols * feat, 8);
    NDArray b = NDArray::fromFloat(b_host);
    NDArray c({a.rows * feat}, ir::DataType::float32());

    engine::HybConfig config;
    config.partitions = 2;
    auto first = eng.spmmHyb(a, feat, &b, &c, config);
    EXPECT_FALSE(first.cacheHit);
    EXPECT_GE(first.numKernels, 2);

    // Re-dispatch with rescaled values through the provenance maps.
    Csr a2 = a;
    for (auto &v : a2.values) {
        v *= -0.5f;
    }
    c.zero();
    auto second = eng.spmmHyb(a2, feat, &b, &c, config);
    EXPECT_TRUE(second.cacheHit);
    auto expected = core::referenceSpmm(a2, b_host, feat);
    for (int64_t i = 0; i < c.numel(); ++i) {
        ASSERT_NEAR(expected[i], c.floatAt(i), 1e-3) << "at " << i;
    }
}

// ---------------------------------------------------------------------
// Write-set analysis
// ---------------------------------------------------------------------

TEST(Executor, AccumulatedParamsClassification)
{
    // CSR SpMM overwrites C (no read-modify-write on a param).
    auto csr_func = core::compileSpmmCsrFunc(16, core::SpmmSchedule());
    EXPECT_TRUE(
        engine::ParallelExecutor::accumulatedParams(csr_func).empty());

    // SDDMM's rfactor write-back reads and re-stores B_data, but the
    // enclosing block's init zeroes B_data first: an initialized
    // reduction has overwrite semantics and must NOT be classified
    // as accumulation (folding would re-add stale output contents).
    auto sddmm_func = core::compileSddmmFunc(16, core::SddmmSchedule());
    EXPECT_TRUE(
        engine::ParallelExecutor::accumulatedParams(sddmm_func)
            .empty());

    // Hyb bucket kernels accumulate into C_data.
    format::Hyb hyb =
        format::hybFromCsr(randomCsr(40, 40, 0.2, 11), 1, -1);
    auto plans = core::compileSpmmHybFuncs(hyb, 16);
    ASSERT_FALSE(plans.empty());
    for (const auto &plan : plans) {
        auto accum =
            engine::ParallelExecutor::accumulatedParams(plan.func);
        ASSERT_EQ(accum.size(), 1u);
        EXPECT_EQ(accum[0], "C_data");
    }
}

// ---------------------------------------------------------------------
// Parallel execution = serial execution, bitwise
// ---------------------------------------------------------------------

/** Serial ground truth for hyb SpMM via the core pipeline. */
NDArray
serialHybSpmm(const Csr &a, int64_t feat,
              const std::vector<float> &b_host, int partitions)
{
    auto shared = std::make_shared<BindingSet>();
    NDArray b = NDArray::fromFloat(b_host);
    NDArray c({a.rows * feat}, ir::DataType::float32());
    shared->external("B_data", &b);
    shared->external("C_data", &c);
    core::HybSpmm compiled =
        core::compileSpmmHyb(a, feat, partitions, -1, shared);
    for (auto &kernel : compiled.kernels) {
        kernel->execute();
    }
    return c;
}

TEST(Engine, ParallelSpmmBitwiseMatchesSerial)
{
    Csr a = graph::powerLawGraph(300, 4000, 1.8, 13);
    int64_t feat = 16;
    auto b_host = randomVector(a.cols * feat, 14);
    NDArray serial = serialHybSpmm(a, feat, b_host, 2);

    for (int threads : {1, 2, 8}) {
        EngineOptions options;
        options.numThreads = threads;
        Engine eng(options);
        NDArray b = NDArray::fromFloat(b_host);
        NDArray c({a.rows * feat}, ir::DataType::float32());
        engine::HybConfig config;
        config.partitions = 2;
        eng.spmmHyb(a, feat, &b, &c, config);
        EXPECT_TRUE(bitwiseEqual(serial, c))
            << "hyb SpMM diverged from serial with " << threads
            << " worker(s)";
    }
}

TEST(Engine, ParallelCsrSpmmBitwiseMatchesSerial)
{
    Csr a = randomCsr(120, 90, 0.1, 15);
    int64_t feat = 24;
    auto b_host = randomVector(a.cols * feat, 16);

    // Serial ground truth through the core pipeline.
    auto shared = std::make_shared<BindingSet>();
    NDArray b_serial = NDArray::fromFloat(b_host);
    NDArray c_serial({a.rows * feat}, ir::DataType::float32());
    shared->external("B_data", &b_serial);
    shared->external("C_data", &c_serial);
    core::compileSpmmCsr(a, feat, shared)->execute();

    for (int threads : {1, 2, 8}) {
        EngineOptions options;
        options.numThreads = threads;
        options.minBlocksPerChunk = 4;
        Engine eng(options);
        NDArray b = NDArray::fromFloat(b_host);
        NDArray c({a.rows * feat}, ir::DataType::float32());
        eng.spmmCsr(a, feat, &b, &c);
        EXPECT_TRUE(bitwiseEqual(c_serial, c))
            << "CSR SpMM diverged from serial with " << threads
            << " worker(s)";
    }
}

TEST(Engine, ParallelSddmmBitwiseMatchesSerial)
{
    Csr a = randomCsr(90, 70, 0.12, 17);
    int64_t feat = 32;
    auto x_host = randomVector(a.rows * feat, 18);
    auto y_host = randomVector(feat * a.cols, 19);

    auto shared = std::make_shared<BindingSet>();
    NDArray x_serial = NDArray::fromFloat(x_host);
    NDArray y_serial = NDArray::fromFloat(y_host);
    NDArray out_serial({a.nnz()}, ir::DataType::float32());
    shared->external("X_data", &x_serial);
    shared->external("Y_data", &y_serial);
    shared->external("B_data", &out_serial);
    core::compileSddmm(a, feat, shared)->execute();

    for (int threads : {1, 2, 8}) {
        EngineOptions options;
        options.numThreads = threads;
        options.minBlocksPerChunk = 2;
        Engine eng(options);
        NDArray x = NDArray::fromFloat(x_host);
        NDArray y = NDArray::fromFloat(y_host);
        NDArray out({a.nnz()}, ir::DataType::float32());
        eng.sddmm(a, feat, &x, &y, &out);
        EXPECT_TRUE(bitwiseEqual(out_serial, out))
            << "SDDMM diverged from serial with " << threads
            << " worker(s)";
    }
}

TEST(Engine, SddmmOverwritesDirtyOutputInParallel)
{
    // Regression: the initialized-reduction write-back must overwrite
    // a reused output buffer, not accumulate into it, regardless of
    // worker count.
    Csr a = randomCsr(90, 70, 0.12, 23);
    int64_t feat = 32;
    auto x_host = randomVector(a.rows * feat, 24);
    auto y_host = randomVector(feat * a.cols, 25);

    EngineOptions options;
    options.numThreads = 4;
    options.minBlocksPerChunk = 2;
    Engine eng(options);
    NDArray x = NDArray::fromFloat(x_host);
    NDArray y = NDArray::fromFloat(y_host);
    NDArray out({a.nnz()}, ir::DataType::float32());
    eng.sddmm(a, feat, &x, &y, &out);
    NDArray first = out;  // copy
    // Dispatch again into the now-dirty buffer.
    eng.sddmm(a, feat, &x, &y, &out);
    EXPECT_TRUE(bitwiseEqual(first, out))
        << "second dispatch into a dirty buffer diverged";
}

TEST(Executor, WorkerCapWavesStayBitwiseExact)
{
    // ExecOptions.workers below the pool size takes the wave-capped
    // fan-out path; results must still replay serial order exactly.
    Csr a = graph::powerLawGraph(250, 3000, 1.8, 27);
    int64_t feat = 8;
    auto b_host = randomVector(a.cols * feat, 28);
    NDArray serial = serialHybSpmm(a, feat, b_host, 2);

    format::Hyb hyb = format::hybFromCsr(a, 2, -1);
    auto plans = core::compileSpmmHybFuncs(hyb, feat);
    std::vector<ir::PrimFunc> funcs;
    std::vector<uint8_t> exclusive;
    for (const auto &plan : plans) {
        const format::Ell &ell =
            hyb.buckets[plan.partition][plan.bucket];
        funcs.push_back(plan.func);
        std::set<int32_t> unique(ell.rowIndices.begin(),
                                 ell.rowIndices.end());
        exclusive.push_back(
            unique.size() != ell.rowIndices.size() ? 1 : 0);
    }

    engine::ParallelExecutor executor(
        std::make_shared<engine::ThreadPool>(4));
    auto shared = std::make_shared<BindingSet>();
    NDArray b = NDArray::fromFloat(b_host);
    NDArray c({a.rows * feat}, ir::DataType::float32());
    shared->external("B_data", &b);
    shared->external("C_data", &c);
    core::HybSpmm compiled = core::compileSpmmHyb(a, feat, 2, -1,
                                                  shared);
    (void)compiled;  // binds bucket arrays into `shared`

    engine::ExecOptions options;
    options.workers = 2;  // below the 4-thread pool: wave path
    executor.runKernels(funcs, shared->view(), options, exclusive);
    EXPECT_TRUE(bitwiseEqual(serial, c));
}

// ---------------------------------------------------------------------
// Session behavior
// ---------------------------------------------------------------------

TEST(Engine, ConcurrentDispatchFromManyThreads)
{
    Engine eng(EngineOptions{});
    Csr a = graph::powerLawGraph(150, 1800, 1.7, 21);
    int64_t feat = 8;
    auto b_host = randomVector(a.cols * feat, 22);
    auto expected = core::referenceSpmm(a, b_host, feat);

    constexpr int kCallers = 4;
    constexpr int kRounds = 3;
    std::vector<double> worst(kCallers, 0.0);
    std::vector<std::thread> callers;
    for (int t = 0; t < kCallers; ++t) {
        callers.emplace_back([&, t] {
            for (int round = 0; round < kRounds; ++round) {
                NDArray b = NDArray::fromFloat(b_host);
                NDArray c({a.rows * feat}, ir::DataType::float32());
                engine::HybConfig config;
                config.partitions = 1 + t % 2;
                eng.spmmHyb(a, feat, &b, &c, config);
                for (int64_t i = 0; i < c.numel(); ++i) {
                    worst[t] = std::max(
                        worst[t],
                        std::abs(expected[i] - c.floatAt(i)));
                }
            }
        });
    }
    for (auto &caller : callers) {
        caller.join();
    }
    for (int t = 0; t < kCallers; ++t) {
        EXPECT_LT(worst[t], 1e-3) << "caller " << t;
    }
    auto stats = eng.stats();
    EXPECT_EQ(stats.requests,
              static_cast<uint64_t>(kCallers * kRounds));
    // Two distinct configs; later rounds must all hit.
    EXPECT_GE(stats.cacheHits,
              static_cast<uint64_t>(kCallers * kRounds - 2 * kCallers));
}

TEST(Engine, RgcnMatchesPerRelationReference)
{
    // Three relations over a small node set.
    format::RelationalCsr graph;
    graph.rows = 40;
    graph.cols = 40;
    for (int r = 0; r < 3; ++r) {
        graph.relations.push_back(
            randomCsr(40, 40, 0.08, 31 + r));
    }
    int64_t feat = 8;
    auto x_host = randomVector(graph.cols * feat, 41);
    auto w_host = randomVector(feat * feat, 42);

    Engine eng(EngineOptions{});
    NDArray x = NDArray::fromFloat(x_host);
    NDArray w = NDArray::fromFloat(w_host);
    NDArray y({graph.rows * feat}, ir::DataType::float32());
    auto info = eng.rgcn(graph, feat, &x, &w, &y);
    EXPECT_GE(info.numKernels, 3);

    // Reference: Y = sum_r A_r @ (X @ W).
    std::vector<float> xw(graph.cols * feat, 0.0f);
    for (int64_t j = 0; j < graph.cols; ++j) {
        for (int64_t l = 0; l < feat; ++l) {
            float acc = 0.0f;
            for (int64_t k = 0; k < feat; ++k) {
                acc += x_host[j * feat + k] * w_host[k * feat + l];
            }
            xw[j * feat + l] = acc;
        }
    }
    std::vector<float> expected(graph.rows * feat, 0.0f);
    for (const Csr &rel : graph.relations) {
        auto part = core::referenceSpmm(rel, xw, feat);
        for (size_t i = 0; i < expected.size(); ++i) {
            expected[i] += part[i];
        }
    }
    for (int64_t i = 0; i < y.numel(); ++i) {
        ASSERT_NEAR(expected[i], y.floatAt(i), 1e-2) << "at " << i;
    }

    // Second dispatch with different values: cache hit, same result
    // shape of work.
    NDArray y2({graph.rows * feat}, ir::DataType::float32());
    auto info2 = eng.rgcn(graph, feat, &x, &w, &y2);
    EXPECT_TRUE(info2.cacheHit);
    EXPECT_TRUE(bitwiseEqual(y, y2));
}

TEST(BindingSet, OwnRejectsDuplicateParameter)
{
    BindingSet bindings;
    bindings.own("A_data", NDArray::fromFloat({1.0f, 2.0f}));
    EXPECT_THROW(bindings.own("A_data", NDArray::fromFloat({3.0f})),
                 UserError);
    // External bindings registered first are protected too.
    NDArray ext({4}, ir::DataType::float32());
    bindings.external("B_data", &ext);
    EXPECT_THROW(bindings.own("B_data", NDArray::fromFloat({5.0f})),
                 UserError);
}

TEST(ThreadPool, ParallelForRunsEveryIndexAndPropagatesErrors)
{
    engine::ThreadPool pool(4);
    std::vector<int> hits(100, 0);
    pool.parallelFor(100, [&](int64_t i) { hits[i] = 1; });
    for (int h : hits) {
        EXPECT_EQ(h, 1);
    }
    EXPECT_THROW(pool.parallelFor(8,
                                  [](int64_t i) {
                                      if (i == 3) {
                                          throw UserError("boom");
                                      }
                                  }),
                 UserError);
}

TEST(ThreadPool, NestedParallelForRunsInlineInsteadOfDeadlocking)
{
    // A worker that calls parallelFor blocks on futures while
    // occupying the very slot its sub-tasks need; once every worker
    // does so (nested dispatch on a saturated pool) nothing runs
    // anything. parallelFor must detect worker-thread callers and
    // degrade to caller-runs. Without the fix this test hangs.
    engine::ThreadPool pool(2);
    EXPECT_FALSE(pool.onWorkerThread());
    std::atomic<int> leaves{0};
    pool.parallelFor(2, [&](int64_t) {
        EXPECT_TRUE(pool.onWorkerThread());
        pool.parallelFor(2, [&](int64_t) { ++leaves; });
    });
    EXPECT_EQ(leaves.load(), 4);

    // Nested dispatch from a task submitted onto a size-1 pool: the
    // lone worker must run the inner range itself.
    engine::ThreadPool one(1);
    std::atomic<int> inner{0};
    auto future = one.submit(
        [&] { one.parallelFor(4, [&](int64_t) { ++inner; }); });
    future.get();
    EXPECT_EQ(inner.load(), 4);

    // A different pool's worker is NOT this pool's worker: nesting
    // across pools still fans out (and must not false-positive).
    std::atomic<int> cross{0};
    one.submit([&] {
           EXPECT_FALSE(pool.onWorkerThread());
           pool.parallelFor(8, [&](int64_t) { ++cross; });
       }).get();
    EXPECT_EQ(cross.load(), 8);

    // Exceptions still propagate through the caller-runs path.
    EXPECT_THROW(pool.parallelFor(2,
                                  [&](int64_t) {
                                      pool.parallelFor(
                                          2, [](int64_t i) {
                                              if (i == 1) {
                                                  throw UserError(
                                                      "nested boom");
                                              }
                                          });
                                  }),
                 UserError);
}

// ---------------------------------------------------------------------
// Scratch pool: accounting, eviction, and the zero-on-lease contract
// ---------------------------------------------------------------------

TEST(Executor, ScratchPoolAccountingBudgetAndEvictionOrder)
{
    // float32 buffers: 8 elems = 32 bytes, 4 elems = 16 bytes.
    engine::ScratchPool pool(/*max_free_bytes=*/64);
    auto f32 = ir::DataType::float32();

    auto x = pool.acquire(8, f32);
    auto y = pool.acquire(4, f32);
    auto z = pool.acquire(8, f32);
    EXPECT_TRUE(x.fresh && y.fresh && z.fresh);
    auto stats = pool.stats();
    EXPECT_EQ(stats.leasedBytes, 80);
    EXPECT_EQ(stats.peakLeasedBytes, 80);
    EXPECT_EQ(stats.leases, 3u);
    EXPECT_EQ(stats.allocations, 3u);

    pool.release(x.array);
    pool.release(y.array);
    stats = pool.stats();
    EXPECT_EQ(stats.leasedBytes, 32);
    EXPECT_EQ(stats.freeBytes, 48);
    EXPECT_EQ(stats.peakLeasedBytes, 80) << "high-water mark sticks";

    // Releasing z (32B) overflows the 64-byte budget: the LEAST
    // RECENTLY RELEASED buffer (x) is evicted, across keys, not the
    // most recent (y).
    pool.release(z.array);
    stats = pool.stats();
    EXPECT_EQ(stats.leasedBytes, 0);
    EXPECT_EQ(stats.freeBytes, 48);  // y (16) + z (32); x evicted
    auto y2 = pool.acquire(4, f32);
    EXPECT_FALSE(y2.fresh) << "y was evicted";
    auto z2 = pool.acquire(8, f32);
    EXPECT_FALSE(z2.fresh) << "z was evicted";
    auto x2 = pool.acquire(8, f32);
    EXPECT_TRUE(x2.fresh)
        << "x must have been evicted as the oldest release";

    pool.resetPeak();
    EXPECT_EQ(pool.stats().peakLeasedBytes, pool.stats().leasedBytes);
    pool.release(y2.array);
    pool.release(z2.array);
    pool.release(x2.array);
    EXPECT_EQ(pool.stats().leasedBytes, 0);

    // A buffer larger than the whole budget is never retained — and
    // must not evict the warm pool on its way out.
    engine::ScratchPool tiny(/*max_free_bytes=*/16);
    auto keep = tiny.acquire(4, f32);
    tiny.release(keep.array);
    EXPECT_EQ(tiny.stats().freeBytes, 16);
    auto big = tiny.acquire(64, f32);
    tiny.release(big.array);
    stats = tiny.stats();
    EXPECT_EQ(stats.freeBytes, 16) << "oversized release disturbed "
                                      "the retained pool";
    EXPECT_EQ(stats.leasedBytes, 0);
}

TEST(Executor, ThrowingKernelReleasesEveryLease)
{
    // A kernel faulting mid-parallel-run must not leak scratch:
    // releaseAll returns every live lease before the rethrow.
    Csr a = graph::powerLawGraph(200, 2400, 1.8, 91);
    int64_t feat = 8;
    format::Hyb hyb = format::hybFromCsr(a, 2, -1);
    auto plans = core::compileSpmmHybFuncs(hyb, feat);
    std::vector<ir::PrimFunc> funcs;
    for (const auto &plan : plans) {
        funcs.push_back(plan.func);
    }
    ASSERT_GE(funcs.size(), 2u);

    engine::ParallelExecutor executor(
        std::make_shared<engine::ThreadPool>(4));
    auto shared = std::make_shared<BindingSet>();
    NDArray b_bad({4}, ir::DataType::float32());  // far too small
    NDArray c({a.rows * feat}, ir::DataType::float32());
    shared->external("B_data", &b_bad);
    shared->external("C_data", &c);
    core::HybSpmm compiled =
        core::compileSpmmHyb(a, feat, 2, -1, shared);
    (void)compiled;  // binds bucket arrays into `shared`

    EXPECT_THROW(executor.runKernels(funcs, shared->view(),
                                     engine::ExecOptions()),
                 InternalError);
    auto stats = executor.scratchStats();
    EXPECT_GT(stats.leases, 0u) << "dispatch never privatized";
    EXPECT_EQ(stats.leasedBytes, 0)
        << "thrown dispatch leaked scratch leases";
}

TEST(Executor, PoisonedPoolScratchIsRezeroedOnLease)
{
    // The zero-on-lease contract belongs to the executor, not the
    // allocator: fill every retained pool buffer with garbage
    // between dispatches and results must stay bitwise identical.
    Csr a = graph::powerLawGraph(250, 3000, 1.8, 93);
    int64_t feat = 8;
    auto b_host = randomVector(a.cols * feat, 94);
    NDArray serial = serialHybSpmm(a, feat, b_host, 2);

    format::Hyb hyb = format::hybFromCsr(a, 2, -1);
    auto plans = core::compileSpmmHybFuncs(hyb, feat);
    std::vector<ir::PrimFunc> funcs;
    std::vector<uint8_t> exclusive;
    for (const auto &plan : plans) {
        const format::Ell &ell =
            hyb.buckets[plan.partition][plan.bucket];
        funcs.push_back(plan.func);
        std::set<int32_t> unique(ell.rowIndices.begin(),
                                 ell.rowIndices.end());
        exclusive.push_back(
            unique.size() != ell.rowIndices.size() ? 1 : 0);
    }

    engine::ParallelExecutor executor(
        std::make_shared<engine::ThreadPool>(4));
    auto shared = std::make_shared<BindingSet>();
    NDArray b = NDArray::fromFloat(b_host);
    NDArray c({a.rows * feat}, ir::DataType::float32());
    shared->external("B_data", &b);
    shared->external("C_data", &c);
    core::HybSpmm compiled =
        core::compileSpmmHyb(a, feat, 2, -1, shared);
    (void)compiled;

    executor.runKernels(funcs, shared->view(), engine::ExecOptions(),
                        exclusive);
    EXPECT_TRUE(bitwiseEqual(serial, c));

    c.zero();
    executor.poisonScratch(0xAB);
    executor.runKernels(funcs, shared->view(), engine::ExecOptions(),
                        exclusive);
    EXPECT_TRUE(bitwiseEqual(serial, c))
        << "a reused lease leaked poisoned pool contents";
}

// ---------------------------------------------------------------------
// Empty write sets: the whole-array sentinel regression
// ---------------------------------------------------------------------

/**
 * f(n, out): for i in [0, n): out[i] = out[i] + 1 — an accumulated
 * output whose write set the test controls via setSpans.
 */
ir::PrimFunc
accumLoopFunc(const std::string &name)
{
    auto func = ir::primFunc(name);
    ir::Var n = ir::var("n");
    ir::Var i = ir::var("i");
    ir::Buffer out =
        ir::denseBuffer("out", {n}, ir::DataType::float32());
    func->params = {n, out->data};
    func->bufferMap.emplace_back(out->data, out);
    func->body = ir::forLoop(
        i, ir::intImm(0), n,
        ir::bufferStore(out, {i},
                        ir::add(ir::bufferLoad(out, {i}),
                                ir::floatImm(1.0))));
    func->stage = ir::IrStage::kStage3;
    return func;
}

TEST(Executor, EmptyWriteSetLeavesOutputBitwiseUntouched)
{
    // Regression: touchedRowSpans({}, w) == {} used to be read as
    // the whole-array sentinel, so a unit touching ZERO rows zeroed
    // and folded the entire output — O(output) wasted work per unit,
    // and the fold's `pre + 0.0` flipped -0.0 pre-values to +0.0.
    // With the explicit wholeArray flag an empty write set leases,
    // zeroes and folds nothing.
    auto func = accumLoopFunc("touches_nothing");
    engine::CompiledKernel k1 = engine::compileKernel(func);
    ASSERT_EQ(k1.accums.size(), 1u);
    EXPECT_EQ(k1.accums[0].name, "out_data");
    EXPECT_TRUE(k1.accums[0].wholeArray);
    k1.accums[0].setSpans(engine::touchedRowSpans({}, 4));
    EXPECT_FALSE(k1.accums[0].wholeArray);
    EXPECT_EQ(k1.accums[0].window.numel, 0);
    engine::CompiledKernel k2 = k1;  // two units: the batch path

    // -0.0 everywhere: any spurious fold flips the sign bit.
    NDArray out = NDArray::fromFloat(std::vector<float>(16, -0.0f));
    NDArray before = out;  // copy
    runtime::Bindings bindings;
    bindings.scalars = {{"n", 0}};
    bindings.arrays = {{"out_data", &out}};

    engine::ParallelExecutor executor(
        std::make_shared<engine::ThreadPool>(2));
    std::vector<const engine::CompiledKernel *> kernels = {&k1, &k2};
    executor.runKernels(kernels, bindings, engine::ExecOptions());
    EXPECT_TRUE(bitwiseEqual(before, out))
        << "zero-touched-rows units disturbed the output";
    // Zero-extent leases contribute nothing to the high-water mark.
    EXPECT_EQ(executor.scratchStats().peakLeasedBytes, 0);
}

} // namespace
} // namespace sparsetir
