#include "ir/functor.h"

namespace sparsetir {
namespace ir {

namespace {

/** True when the expression kind is a BinaryNode. */
bool
isBinaryKind(ExprKind kind)
{
    switch (kind) {
      case ExprKind::kAdd:
      case ExprKind::kSub:
      case ExprKind::kMul:
      case ExprKind::kFloorDiv:
      case ExprKind::kFloorMod:
      case ExprKind::kDiv:
      case ExprKind::kMin:
      case ExprKind::kMax:
      case ExprKind::kEQ:
      case ExprKind::kNE:
      case ExprKind::kLT:
      case ExprKind::kLE:
      case ExprKind::kGT:
      case ExprKind::kGE:
      case ExprKind::kAnd:
      case ExprKind::kOr:
        return true;
      default:
        return false;
    }
}

} // namespace

// ---------------------------------------------------------------------
// ExprVisitor
// ---------------------------------------------------------------------

void
ExprVisitor::visitExpr(const Expr &e)
{
    ICHECK(e != nullptr);
    if (isBinaryKind(e->kind)) {
        visitBinary(static_cast<const BinaryNode *>(e.get()));
        return;
    }
    switch (e->kind) {
      case ExprKind::kIntImm:
        visitIntImm(static_cast<const IntImmNode *>(e.get()));
        break;
      case ExprKind::kFloatImm:
        visitFloatImm(static_cast<const FloatImmNode *>(e.get()));
        break;
      case ExprKind::kStringImm:
        visitStringImm(static_cast<const StringImmNode *>(e.get()));
        break;
      case ExprKind::kVar:
        visitVar(static_cast<const VarNode *>(e.get()));
        break;
      case ExprKind::kNot:
        visitNot(static_cast<const NotNode *>(e.get()));
        break;
      case ExprKind::kSelect:
        visitSelect(static_cast<const SelectNode *>(e.get()));
        break;
      case ExprKind::kCast:
        visitCast(static_cast<const CastNode *>(e.get()));
        break;
      case ExprKind::kBufferLoad:
        visitBufferLoad(static_cast<const BufferLoadNode *>(e.get()));
        break;
      case ExprKind::kRamp:
        visitRamp(static_cast<const RampNode *>(e.get()));
        break;
      case ExprKind::kBroadcast:
        visitBroadcast(static_cast<const BroadcastNode *>(e.get()));
        break;
      case ExprKind::kCall:
        visitCall(static_cast<const CallNode *>(e.get()));
        break;
      default:
        ICHECK(false) << "unhandled expr kind";
    }
}

void
ExprVisitor::visitBinary(const BinaryNode *op)
{
    visitExpr(op->a);
    visitExpr(op->b);
}

void
ExprVisitor::visitNot(const NotNode *op)
{
    visitExpr(op->a);
}

void
ExprVisitor::visitSelect(const SelectNode *op)
{
    visitExpr(op->cond);
    visitExpr(op->trueValue);
    visitExpr(op->falseValue);
}

void
ExprVisitor::visitCast(const CastNode *op)
{
    visitExpr(op->value);
}

void
ExprVisitor::visitBufferLoad(const BufferLoadNode *op)
{
    for (const auto &idx : op->indices) {
        visitExpr(idx);
    }
}

void
ExprVisitor::visitRamp(const RampNode *op)
{
    visitExpr(op->base);
    visitExpr(op->stride);
}

void
ExprVisitor::visitBroadcast(const BroadcastNode *op)
{
    visitExpr(op->value);
}

void
ExprVisitor::visitCall(const CallNode *op)
{
    for (const auto &arg : op->args) {
        visitExpr(arg);
    }
}

// ---------------------------------------------------------------------
// StmtVisitor
// ---------------------------------------------------------------------

void
StmtVisitor::visitStmt(const Stmt &s)
{
    ICHECK(s != nullptr);
    switch (s->kind) {
      case StmtKind::kBufferStore:
        visitBufferStore(static_cast<const BufferStoreNode *>(s.get()));
        break;
      case StmtKind::kSeq:
        visitSeq(static_cast<const SeqStmtNode *>(s.get()));
        break;
      case StmtKind::kFor:
        visitFor(static_cast<const ForNode *>(s.get()));
        break;
      case StmtKind::kBlock:
        visitBlock(static_cast<const BlockNode *>(s.get()));
        break;
      case StmtKind::kIfThenElse:
        visitIfThenElse(static_cast<const IfThenElseNode *>(s.get()));
        break;
      case StmtKind::kLetStmt:
        visitLetStmt(static_cast<const LetStmtNode *>(s.get()));
        break;
      case StmtKind::kAllocate:
        visitAllocate(static_cast<const AllocateNode *>(s.get()));
        break;
      case StmtKind::kEvaluate:
        visitEvaluate(static_cast<const EvaluateNode *>(s.get()));
        break;
      case StmtKind::kSparseIteration:
        visitSparseIteration(
            static_cast<const SparseIterationNode *>(s.get()));
        break;
      default:
        ICHECK(false) << "unhandled stmt kind";
    }
}

void
StmtVisitor::visitBufferStore(const BufferStoreNode *op)
{
    for (const auto &idx : op->indices) {
        visitExpr(idx);
    }
    visitExpr(op->value);
}

void
StmtVisitor::visitSeq(const SeqStmtNode *op)
{
    for (const auto &s : op->seq) {
        visitStmt(s);
    }
}

void
StmtVisitor::visitFor(const ForNode *op)
{
    visitExpr(op->minValue);
    visitExpr(op->extent);
    visitStmt(op->body);
}

void
StmtVisitor::visitBlock(const BlockNode *op)
{
    if (op->init != nullptr) {
        visitStmt(op->init);
    }
    visitStmt(op->body);
}

void
StmtVisitor::visitIfThenElse(const IfThenElseNode *op)
{
    visitExpr(op->cond);
    visitStmt(op->thenBody);
    if (op->elseBody != nullptr) {
        visitStmt(op->elseBody);
    }
}

void
StmtVisitor::visitLetStmt(const LetStmtNode *op)
{
    visitExpr(op->value);
    visitStmt(op->body);
}

void
StmtVisitor::visitAllocate(const AllocateNode *op)
{
    visitStmt(op->body);
}

void
StmtVisitor::visitEvaluate(const EvaluateNode *op)
{
    visitExpr(op->value);
}

void
StmtVisitor::visitSparseIteration(const SparseIterationNode *op)
{
    if (op->init != nullptr) {
        visitStmt(op->init);
    }
    visitStmt(op->body);
}

// ---------------------------------------------------------------------
// ExprMutator
// ---------------------------------------------------------------------

Expr
ExprMutator::mutateExpr(const Expr &e)
{
    ICHECK(e != nullptr);
    if (isBinaryKind(e->kind)) {
        return mutateBinary(static_cast<const BinaryNode *>(e.get()), e);
    }
    switch (e->kind) {
      case ExprKind::kIntImm:
        return mutateIntImm(static_cast<const IntImmNode *>(e.get()), e);
      case ExprKind::kFloatImm:
        return mutateFloatImm(static_cast<const FloatImmNode *>(e.get()), e);
      case ExprKind::kStringImm:
        return mutateStringImm(static_cast<const StringImmNode *>(e.get()),
                               e);
      case ExprKind::kVar:
        return mutateVar(static_cast<const VarNode *>(e.get()), e);
      case ExprKind::kNot:
        return mutateNot(static_cast<const NotNode *>(e.get()), e);
      case ExprKind::kSelect:
        return mutateSelect(static_cast<const SelectNode *>(e.get()), e);
      case ExprKind::kCast:
        return mutateCast(static_cast<const CastNode *>(e.get()), e);
      case ExprKind::kBufferLoad:
        return mutateBufferLoad(static_cast<const BufferLoadNode *>(e.get()),
                                e);
      case ExprKind::kRamp:
        return mutateRamp(static_cast<const RampNode *>(e.get()), e);
      case ExprKind::kBroadcast:
        return mutateBroadcast(static_cast<const BroadcastNode *>(e.get()),
                               e);
      case ExprKind::kCall:
        return mutateCall(static_cast<const CallNode *>(e.get()), e);
      default:
        ICHECK(false) << "unhandled expr kind";
    }
    return e;
}

Expr
ExprMutator::mutateIntImm(const IntImmNode *op, const Expr &e)
{
    return e;
}

Expr
ExprMutator::mutateFloatImm(const FloatImmNode *op, const Expr &e)
{
    return e;
}

Expr
ExprMutator::mutateStringImm(const StringImmNode *op, const Expr &e)
{
    return e;
}

Expr
ExprMutator::mutateVar(const VarNode *op, const Expr &e)
{
    return e;
}

Expr
ExprMutator::mutateBinary(const BinaryNode *op, const Expr &e)
{
    Expr a = mutateExpr(op->a);
    Expr b = mutateExpr(op->b);
    if (a == op->a && b == op->b) {
        return e;
    }
    return std::make_shared<BinaryNode>(op->kind, op->dtype, std::move(a),
                                        std::move(b));
}

Expr
ExprMutator::mutateNot(const NotNode *op, const Expr &e)
{
    Expr a = mutateExpr(op->a);
    if (a == op->a) {
        return e;
    }
    return logicalNot(std::move(a));
}

Expr
ExprMutator::mutateSelect(const SelectNode *op, const Expr &e)
{
    Expr cond = mutateExpr(op->cond);
    Expr t = mutateExpr(op->trueValue);
    Expr f = mutateExpr(op->falseValue);
    if (cond == op->cond && t == op->trueValue && f == op->falseValue) {
        return e;
    }
    return select(std::move(cond), std::move(t), std::move(f));
}

Expr
ExprMutator::mutateCast(const CastNode *op, const Expr &e)
{
    Expr value = mutateExpr(op->value);
    if (value == op->value) {
        return e;
    }
    return std::make_shared<CastNode>(op->dtype, std::move(value));
}

Expr
ExprMutator::mutateBufferLoad(const BufferLoadNode *op, const Expr &e)
{
    Buffer buffer = mutateBuffer(op->buffer);
    std::vector<Expr> indices;
    indices.reserve(op->indices.size());
    bool changed = buffer != op->buffer;
    for (const auto &idx : op->indices) {
        Expr new_idx = mutateExpr(idx);
        changed |= new_idx != idx;
        indices.push_back(std::move(new_idx));
    }
    if (!changed) {
        return e;
    }
    return std::make_shared<BufferLoadNode>(op->dtype, std::move(buffer),
                                            std::move(indices));
}

Expr
ExprMutator::mutateRamp(const RampNode *op, const Expr &e)
{
    Expr base = mutateExpr(op->base);
    Expr stride = mutateExpr(op->stride);
    if (base == op->base && stride == op->stride) {
        return e;
    }
    return ramp(std::move(base), std::move(stride), op->lanes);
}

Expr
ExprMutator::mutateBroadcast(const BroadcastNode *op, const Expr &e)
{
    Expr value = mutateExpr(op->value);
    if (value == op->value) {
        return e;
    }
    return broadcast(std::move(value), op->lanes);
}

Expr
ExprMutator::mutateCall(const CallNode *op, const Expr &e)
{
    std::vector<Expr> args;
    args.reserve(op->args.size());
    bool changed = false;
    Buffer buffer;
    if (op->bufferArg != nullptr) {
        buffer = mutateBuffer(op->bufferArg);
        changed |= buffer != op->bufferArg;
    }
    for (const auto &arg : op->args) {
        Expr new_arg = mutateExpr(arg);
        changed |= new_arg != arg;
        args.push_back(std::move(new_arg));
    }
    if (!changed) {
        return e;
    }
    auto node = std::make_shared<CallNode>(op->dtype, op->op,
                                           std::move(args), op->name);
    node->bufferArg = std::move(buffer);
    return node;
}

// ---------------------------------------------------------------------
// StmtMutator
// ---------------------------------------------------------------------

Stmt
StmtMutator::mutateStmt(const Stmt &s)
{
    ICHECK(s != nullptr);
    switch (s->kind) {
      case StmtKind::kBufferStore:
        return mutateBufferStore(
            static_cast<const BufferStoreNode *>(s.get()), s);
      case StmtKind::kSeq:
        return mutateSeq(static_cast<const SeqStmtNode *>(s.get()), s);
      case StmtKind::kFor:
        return mutateFor(static_cast<const ForNode *>(s.get()), s);
      case StmtKind::kBlock:
        return mutateBlock(static_cast<const BlockNode *>(s.get()), s);
      case StmtKind::kIfThenElse:
        return mutateIfThenElse(
            static_cast<const IfThenElseNode *>(s.get()), s);
      case StmtKind::kLetStmt:
        return mutateLetStmt(static_cast<const LetStmtNode *>(s.get()), s);
      case StmtKind::kAllocate:
        return mutateAllocate(static_cast<const AllocateNode *>(s.get()), s);
      case StmtKind::kEvaluate:
        return mutateEvaluate(static_cast<const EvaluateNode *>(s.get()), s);
      case StmtKind::kSparseIteration:
        return mutateSparseIteration(
            static_cast<const SparseIterationNode *>(s.get()), s);
      default:
        ICHECK(false) << "unhandled stmt kind";
    }
    return s;
}

Stmt
StmtMutator::mutateBufferStore(const BufferStoreNode *op, const Stmt &s)
{
    Buffer buffer = mutateBuffer(op->buffer);
    std::vector<Expr> indices;
    indices.reserve(op->indices.size());
    bool changed = buffer != op->buffer;
    for (const auto &idx : op->indices) {
        Expr new_idx = mutateExpr(idx);
        changed |= new_idx != idx;
        indices.push_back(std::move(new_idx));
    }
    Expr value = mutateExpr(op->value);
    changed |= value != op->value;
    if (!changed) {
        return s;
    }
    return std::make_shared<BufferStoreNode>(std::move(buffer),
                                             std::move(indices),
                                             std::move(value));
}

Stmt
StmtMutator::mutateSeq(const SeqStmtNode *op, const Stmt &s)
{
    std::vector<Stmt> stmts;
    stmts.reserve(op->seq.size());
    bool changed = false;
    for (const auto &child : op->seq) {
        Stmt new_child = mutateStmt(child);
        changed |= new_child != child;
        if (new_child != nullptr) {
            stmts.push_back(std::move(new_child));
        } else {
            changed = true;
        }
    }
    if (!changed) {
        return s;
    }
    return seq(std::move(stmts));
}

Stmt
StmtMutator::mutateFor(const ForNode *op, const Stmt &s)
{
    Expr min_value = mutateExpr(op->minValue);
    Expr extent = mutateExpr(op->extent);
    Stmt body = mutateStmt(op->body);
    if (min_value == op->minValue && extent == op->extent &&
        body == op->body) {
        return s;
    }
    auto node = std::make_shared<ForNode>(op->loopVar, std::move(min_value),
                                          std::move(extent), op->forKind,
                                          std::move(body), op->threadTag);
    node->annotations = op->annotations;
    return node;
}

Stmt
StmtMutator::mutateBlock(const BlockNode *op, const Stmt &s)
{
    Stmt init = op->init != nullptr ? mutateStmt(op->init) : nullptr;
    Stmt body = mutateStmt(op->body);
    if (init == op->init && body == op->body) {
        return s;
    }
    auto node = std::make_shared<BlockNode>(op->name, std::move(body));
    node->init = std::move(init);
    node->reduceVars = op->reduceVars;
    node->reads = op->reads;
    node->writes = op->writes;
    node->annotations = op->annotations;
    return node;
}

Stmt
StmtMutator::mutateIfThenElse(const IfThenElseNode *op, const Stmt &s)
{
    Expr cond = mutateExpr(op->cond);
    Stmt then_body = mutateStmt(op->thenBody);
    Stmt else_body =
        op->elseBody != nullptr ? mutateStmt(op->elseBody) : nullptr;
    if (cond == op->cond && then_body == op->thenBody &&
        else_body == op->elseBody) {
        return s;
    }
    return ifThenElse(std::move(cond), std::move(then_body),
                      std::move(else_body));
}

Stmt
StmtMutator::mutateLetStmt(const LetStmtNode *op, const Stmt &s)
{
    Expr value = mutateExpr(op->value);
    Stmt body = mutateStmt(op->body);
    if (value == op->value && body == op->body) {
        return s;
    }
    return letStmt(op->letVar, std::move(value), std::move(body));
}

Stmt
StmtMutator::mutateAllocate(const AllocateNode *op, const Stmt &s)
{
    Buffer buffer = mutateBuffer(op->buffer);
    Stmt body = mutateStmt(op->body);
    if (body == op->body && buffer == op->buffer) {
        return s;
    }
    return allocate(std::move(buffer), std::move(body));
}

Stmt
StmtMutator::mutateEvaluate(const EvaluateNode *op, const Stmt &s)
{
    Expr value = mutateExpr(op->value);
    if (value == op->value) {
        return s;
    }
    return evaluate(std::move(value));
}

Stmt
StmtMutator::mutateSparseIteration(const SparseIterationNode *op,
                                   const Stmt &s)
{
    Stmt init = op->init != nullptr ? mutateStmt(op->init) : nullptr;
    Stmt body = mutateStmt(op->body);
    if (init == op->init && body == op->body) {
        return s;
    }
    auto node = std::make_shared<SparseIterationNode>(
        op->name, op->axes, op->iterVars, op->iterKinds, std::move(body));
    node->init = std::move(init);
    node->fuseGroups = op->fuseGroups;
    return node;
}

// ---------------------------------------------------------------------
// Substitution helpers
// ---------------------------------------------------------------------

Expr
substitute(const Expr &e, const std::map<const VarNode *, Expr> &subst)
{
    VarSubstituter sub(subst);
    return sub.mutateExpr(e);
}

Stmt
substitute(const Stmt &s, const std::map<const VarNode *, Expr> &subst)
{
    VarSubstituter sub(subst);
    return sub.mutateStmt(s);
}

} // namespace ir
} // namespace sparsetir
