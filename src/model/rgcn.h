/**
 * @file
 * RGCN inference execution variants (paper §4.4.1, Figure 20):
 * SparseTIR(naive) — per-relation two-stage with T in HBM;
 * SparseTIR(hyb) — fused RGMS over 3-D hyb, CUDA cores;
 * SparseTIR(hyb+TC) — the same with Tensor-Core MMA.
 */

#ifndef SPARSETIR_MODEL_RGCN_H_
#define SPARSETIR_MODEL_RGCN_H_

#include <cstdint>

#include "format/relational.h"
#include "gpusim/simulator.h"

namespace sparsetir {
namespace model {

struct RgcnResult
{
    double timeMs = 0.0;
    /** Simulated GPU memory footprint (bytes). */
    int64_t footprintBytes = 0;
};

/** SparseTIR(naive): per-relation GEMM + CSR SpMM, T materialized. */
RgcnResult rgcnSparseTirNaive(const format::RelationalCsr &graph,
                              int64_t feat, gpusim::Device &device);

/** SparseTIR(hyb) / SparseTIR(hyb+TC): fused RGMS over bucketed ELL. */
RgcnResult rgcnSparseTirHyb(const format::RelationalCsr &graph,
                            int64_t feat, gpusim::Device &device,
                            bool tensor_cores, int bucket_cap_log2 = 5);

/**
 * Shared RGMS kernel-plan heuristics. The simulator path above and
 * the serving path (engine::Engine::rgcn) must bucket and schedule
 * identically for tuning numbers to describe the served kernels, so
 * both derive their plans from these.
 */

/** Effective hyb bucket cap for one relation. */
int32_t rgcnBucketCap(const format::Csr &rel, int bucket_cap_log2);

/** Rows grouped per thread block for an RGMS bucket of this width. */
int rgcnRowsPerBlock(int width);

} // namespace model
} // namespace sparsetir

#endif // SPARSETIR_MODEL_RGCN_H_
