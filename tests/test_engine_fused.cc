/**
 * @file
 * Fused task-graph dispatch: bitwise equality of the fused schedule
 * against both the serial oracle and the barriered parallel path, on
 * hyb SpMM (single and batched, including the prepared-handle
 * overload) and RGCN; structural properties of built TaskGraphs;
 * chains headed by exclusive kernels; and determinism under
 * contention — many threads hammering one shared fused session must
 * produce bit-identical results from exactly one compile, without
 * ever probing the launch grid through the interpreter.
 */

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "engine/engine.h"
#include "graph/generator.h"
#include "support/rng.h"
#include "test_util.h"

namespace sparsetir {
namespace {

using engine::Engine;
using engine::EngineOptions;
using engine::SpmmRequest;
using format::Csr;
using runtime::NDArray;
using testutil::bitwiseEqual;
using testutil::randomVector;

Csr
randomCsr(int64_t rows, int64_t cols, double density, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> dense(rows * cols, 0.0f);
    for (auto &v : dense) {
        if (rng.uniformReal() < density) {
            v = static_cast<float>(rng.uniformReal() * 2.0 - 1.0);
            if (v == 0.0f) {
                v = 0.5f;
            }
        }
    }
    return format::csrFromDense(rows, cols, dense);
}

/** Engine with every schedule knob explicit. */
Engine
makeEngine(runtime::Backend backend, bool parallel, bool fused,
           int threads, int64_t min_chunk = 8)
{
    EngineOptions options;
    options.backend = backend;
    options.parallel = parallel;
    options.fusedDispatch = fused;
    options.numThreads = threads;
    options.minBlocksPerChunk = min_chunk;
    return Engine(options);
}

// ---------------------------------------------------------------------
// Fused vs barriered vs serial, single request
// ---------------------------------------------------------------------

TEST(EngineFused, HybBitwiseMatchesSerialAndBarriered)
{
    // Power-law structure: several buckets per partition, split rows
    // (an exclusive kernel) in the widest one.
    Csr a = graph::powerLawGraph(300, 4000, 1.8, 13);
    int64_t feat = 8;
    engine::HybConfig config;
    config.partitions = 2;
    auto b_host = randomVector(a.cols * feat, 7);
    NDArray b = NDArray::fromFloat(b_host);

    // Serial interpreter oracle.
    Engine serial = makeEngine(runtime::Backend::kInterpreter,
                               /*parallel=*/false, /*fused=*/false, 1);
    NDArray expected({a.rows * feat}, ir::DataType::float32());
    serial.spmmHyb(a, feat, &b, &expected, config);

    struct Variant
    {
        const char *name;
        runtime::Backend backend;
        bool fused;
    };
    const Variant variants[] = {
        {"bytecode fused", runtime::Backend::kBytecode, true},
        {"bytecode barriered", runtime::Backend::kBytecode, false},
        {"interpreter fused", runtime::Backend::kInterpreter, true},
        {"interpreter barriered", runtime::Backend::kInterpreter,
         false},
    };
    for (const Variant &variant : variants) {
        Engine eng = makeEngine(variant.backend, /*parallel=*/true,
                                variant.fused, 4,
                                /*min_chunk=*/4);
        NDArray c({a.rows * feat}, ir::DataType::float32());
        auto info = eng.spmmHyb(a, feat, &b, &c, config);
        EXPECT_GE(info.numKernels, 2);
        EXPECT_TRUE(bitwiseEqual(expected, c))
            << variant.name << " diverged from the serial oracle";
        // Warm re-dispatch into a dirty output must reproduce.
        auto warm = eng.spmmHyb(a, feat, &b, &c, config);
        EXPECT_TRUE(warm.cacheHit);
        EXPECT_TRUE(bitwiseEqual(expected, c))
            << variant.name << " warm re-dispatch diverged";
    }
}

TEST(EngineFused, RgcnBitwiseMatchesSerialAndBarriered)
{
    format::RelationalCsr graph;
    graph.rows = 60;
    graph.cols = 60;
    for (int r = 0; r < 3; ++r) {
        graph.relations.push_back(
            graph::powerLawGraph(60, 400, 1.7, 31 + r));
        graph.relations.back().cols = 60;
    }
    int64_t feat = 8;
    NDArray x = NDArray::fromFloat(randomVector(graph.cols * feat, 41));
    NDArray w = NDArray::fromFloat(randomVector(feat * feat, 42));

    Engine serial = makeEngine(runtime::Backend::kInterpreter, false,
                               false, 1);
    NDArray expected({graph.rows * feat}, ir::DataType::float32());
    serial.rgcn(graph, feat, &x, &w, &expected);

    for (bool fused : {true, false}) {
        for (runtime::Backend backend :
             {runtime::Backend::kBytecode,
              runtime::Backend::kInterpreter}) {
            Engine eng = makeEngine(backend, true, fused, 4);
            NDArray y({graph.rows * feat}, ir::DataType::float32());
            auto info = eng.rgcn(graph, feat, &x, &w, &y);
            EXPECT_GE(info.numKernels, 3);
            EXPECT_TRUE(bitwiseEqual(expected, y))
                << (fused ? "fused" : "barriered") << " rgcn on "
                << (backend == runtime::Backend::kBytecode
                        ? "bytecode"
                        : "interpreter")
                << " diverged from the serial oracle";
        }
    }
}

// ---------------------------------------------------------------------
// Batched fused dispatch
// ---------------------------------------------------------------------

TEST(EngineFused, HybBatchBitwiseMatchesSequentialAndBarriered)
{
    Csr a = graph::powerLawGraph(250, 3000, 1.8, 53);
    int64_t feat = 8;
    engine::HybConfig config;
    config.partitions = 2;
    constexpr int kRequests = 4;

    std::vector<NDArray> b;
    std::vector<NDArray> fused_c;
    std::vector<NDArray> barriered_c;
    std::vector<NDArray> expected;
    for (int i = 0; i < kRequests; ++i) {
        b.push_back(
            NDArray::fromFloat(randomVector(a.cols * feat, 60 + i)));
        fused_c.emplace_back(std::vector<int64_t>{a.rows * feat},
                             ir::DataType::float32());
        barriered_c.emplace_back(std::vector<int64_t>{a.rows * feat},
                                 ir::DataType::float32());
        expected.emplace_back(std::vector<int64_t>{a.rows * feat},
                              ir::DataType::float32());
    }

    // Per-request serial ground truth.
    Engine serial = makeEngine(runtime::Backend::kInterpreter, false,
                               false, 1);
    for (int i = 0; i < kRequests; ++i) {
        serial.spmmHyb(a, feat, &b[i], &expected[i], config);
    }

    Engine fused_eng = makeEngine(runtime::Backend::kBytecode, true,
                                  true, 4);
    Engine barriered_eng = makeEngine(runtime::Backend::kBytecode,
                                      true, false, 4);
    std::vector<SpmmRequest> fused_requests;
    std::vector<SpmmRequest> barriered_requests;
    for (int i = 0; i < kRequests; ++i) {
        fused_requests.push_back(SpmmRequest{&b[i], &fused_c[i]});
        barriered_requests.push_back(
            SpmmRequest{&b[i], &barriered_c[i]});
    }
    fused_eng.spmmHybBatch(a, feat, fused_requests, config);
    barriered_eng.spmmHybBatch(a, feat, barriered_requests, config);
    for (int i = 0; i < kRequests; ++i) {
        EXPECT_TRUE(bitwiseEqual(expected[i], fused_c[i]))
            << "fused batch request " << i << " diverged";
        EXPECT_TRUE(bitwiseEqual(expected[i], barriered_c[i]))
            << "barriered batch request " << i << " diverged";
    }

    // Prepared-handle overload through the fused path.
    engine::PreparedSpmmHyb prepared =
        fused_eng.prepareSpmmHyb(a, feat, config);
    EXPECT_TRUE(prepared.cacheHit);
    for (auto &c : fused_c) {
        c.zero();
    }
    auto info = fused_eng.spmmHybBatch(prepared, fused_requests);
    EXPECT_TRUE(info.cacheHit);
    for (int i = 0; i < kRequests; ++i) {
        EXPECT_TRUE(bitwiseEqual(expected[i], fused_c[i]))
            << "fused prepared-handle request " << i << " diverged";
    }
}

// ---------------------------------------------------------------------
// Chains headed by exclusive kernels
// ---------------------------------------------------------------------

TEST(EngineFused, ChainHeadedByExclusiveKernelRunsViaKickoff)
{
    // Cap the bucket width at 1 on a matrix whose every row has
    // several entries: all rows split into multiple width-1 ELL rows,
    // so the decomposition is a SINGLE exclusive kernel — the fold
    // chain starts (and ends) with an exclusive entry that no compute
    // unit completion would ever trigger; only the per-request
    // kickoff tasks can run it.
    Csr a = randomCsr(40, 30, 0.3, 71);
    ASSERT_GT(a.nnz(), a.rows);  // rows with >= 2 entries exist
    int64_t feat = 4;
    engine::HybConfig config;
    config.partitions = 1;
    config.bucketCapLog2 = 0;

    Engine serial = makeEngine(runtime::Backend::kInterpreter, false,
                               false, 1);
    NDArray b = NDArray::fromFloat(randomVector(a.cols * feat, 72));
    NDArray expected({a.rows * feat}, ir::DataType::float32());
    serial.spmmHyb(a, feat, &b, &expected, config);

    Engine fused = makeEngine(runtime::Backend::kBytecode, true, true,
                              4);
    NDArray c({a.rows * feat}, ir::DataType::float32());
    fused.spmmHyb(a, feat, &b, &c, config);
    EXPECT_TRUE(bitwiseEqual(expected, c));

    // Batched: the exclusive kernel still runs once per request,
    // concurrently ACROSS requests (disjoint outputs), serially
    // within each.
    constexpr int kRequests = 3;
    std::vector<NDArray> bs;
    std::vector<NDArray> cs;
    for (int i = 0; i < kRequests; ++i) {
        bs.push_back(
            NDArray::fromFloat(randomVector(a.cols * feat, 80 + i)));
        cs.emplace_back(std::vector<int64_t>{a.rows * feat},
                        ir::DataType::float32());
    }
    std::vector<SpmmRequest> requests;
    for (int i = 0; i < kRequests; ++i) {
        requests.push_back(SpmmRequest{&bs[i], &cs[i]});
    }
    fused.spmmHybBatch(a, feat, requests, config);
    for (int i = 0; i < kRequests; ++i) {
        NDArray want({a.rows * feat}, ir::DataType::float32());
        serial.spmmHyb(a, feat, &bs[i], &want, config);
        EXPECT_TRUE(bitwiseEqual(want, cs[i]))
            << "exclusive-head batch request " << i << " diverged";
    }
}

// ---------------------------------------------------------------------
// TaskGraph structure
// ---------------------------------------------------------------------

TEST(EngineFused, TaskGraphSplitsGridsAndOrdersChains)
{
    auto pool = std::make_shared<engine::ThreadPool>(8);
    engine::ParallelExecutor executor(pool);

    engine::CompiledKernel kernel =
        engine::compileKernel(
            core::compileSpmmCsrFunc(4, core::SpmmSchedule()));
    ASSERT_NE(kernel.blockExtent, nullptr);
    engine::CompiledKernel exclusive = kernel;
    exclusive.exclusive = true;

    runtime::Bindings bindings;
    bindings.scalars["m"] = 64;
    bindings.scalars["n"] = 32;
    bindings.scalars["nnz"] = 100;
    bindings.scalars["feat_size"] = 4;
    std::vector<runtime::Bindings> requests{bindings, bindings};

    engine::ExecOptions options;
    options.minBlocksPerChunk = 8;
    std::vector<const engine::CompiledKernel *> kernels{&kernel,
                                                        &exclusive};
    engine::TaskGraph graph =
        executor.buildTaskGraph(kernels, requests, options);

    ASSERT_EQ(graph.numRequests, 2);
    ASSERT_EQ(graph.chains.size(), 2u);
    for (const auto &chain : graph.chains) {
        // One entry per kernel, in list order.
        ASSERT_EQ(chain.size(), kernels.size());
        EXPECT_EQ(chain[0].kernel, 0);
        EXPECT_FALSE(chain[0].exclusive);
        EXPECT_GE(chain[0].numUnits, 1);
        EXPECT_EQ(chain[1].kernel, 1);
        EXPECT_TRUE(chain[1].exclusive);
        EXPECT_EQ(chain[1].numUnits, 0);
        // Chunk windows of the non-exclusive kernel tile the grid
        // contiguously in chunk order.
        if (chain[0].numUnits > 1) {
            int64_t cursor = 0;
            for (int c = 0; c < chain[0].numUnits; ++c) {
                const engine::TaskGraph::Unit &unit =
                    graph.units[chain[0].firstUnit + c];
                EXPECT_EQ(unit.blockBegin, cursor);
                EXPECT_GT(unit.blockEnd, unit.blockBegin);
                cursor = unit.blockEnd;
            }
            EXPECT_EQ(cursor, 64);
        }
    }
    // Exclusive kernels contribute no compute units at all.
    for (const engine::TaskGraph::Unit &unit : graph.units) {
        EXPECT_EQ(unit.kernel, 0);
    }
    // Unit count stays near the worker count (kickoffs aside).
    EXPECT_LE(graph.units.size(), 16u);
}

// ---------------------------------------------------------------------
// Determinism under contention
// ---------------------------------------------------------------------

TEST(EngineFused, DeterministicUnderContentionWithOneCompile)
{
    Csr a = graph::powerLawGraph(200, 2400, 1.8, 91);
    int64_t feat = 8;
    engine::HybConfig config;
    config.partitions = 2;
    auto b_host = randomVector(a.cols * feat, 92);

    Engine serial = makeEngine(runtime::Backend::kInterpreter, false,
                               false, 1);
    NDArray b_ref = NDArray::fromFloat(b_host);
    NDArray expected({a.rows * feat}, ir::DataType::float32());
    serial.spmmHyb(a, feat, &b_ref, &expected, config);

    // One shared fused session. Prime the artifact first: racing
    // first-time builders may each compile (documented CompileCache
    // behavior); the warm contention run must hit one artifact.
    Engine eng = makeEngine(runtime::Backend::kBytecode, true, true,
                            4);
    {
        NDArray b = NDArray::fromFloat(b_host);
        NDArray c({a.rows * feat}, ir::DataType::float32());
        eng.spmmHyb(a, feat, &b, &c, config);
    }
    // The whole contention run is warm: it must never size a grid
    // through the interpreter probe.
    runtime::resetLaunchProbeCount();

    constexpr int kThreads = 8;
    constexpr int kRounds = 7;  // 8 x 7 = 56 dispatches >= 50
    std::vector<int> mismatches(kThreads, 0);
    std::vector<std::thread> callers;
    for (int t = 0; t < kThreads; ++t) {
        callers.emplace_back([&, t] {
            NDArray b = NDArray::fromFloat(b_host);
            NDArray c({a.rows * feat}, ir::DataType::float32());
            for (int round = 0; round < kRounds; ++round) {
                c.zero();
                eng.spmmHyb(a, feat, &b, &c, config);
                if (!bitwiseEqual(expected, c)) {
                    ++mismatches[t];
                }
            }
        });
    }
    for (auto &caller : callers) {
        caller.join();
    }
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_EQ(mismatches[t], 0)
            << "thread " << t
            << " observed a nondeterministic fused result";
    }
    EXPECT_EQ(eng.cacheStats().misses, 1u)
        << "contention run compiled the artifact more than once";
    EXPECT_EQ(runtime::launchProbeCount(), 0u)
        << "warm fused dispatch probed the grid through the "
           "interpreter";
    // Every privatization lease went back to the pool.
    EXPECT_EQ(eng.scratchStats().leasedBytes, 0);
}

} // namespace
} // namespace sparsetir
