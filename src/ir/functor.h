/**
 * @file
 * Recursive visitors and functional mutators over the SparseTIR AST.
 *
 * ExprVisitor/StmtVisitor walk the tree read-only; ExprMutator/
 * StmtMutator rebuild it, sharing unchanged subtrees. Passes subclass
 * these and override the node kinds they care about.
 */

#ifndef SPARSETIR_IR_FUNCTOR_H_
#define SPARSETIR_IR_FUNCTOR_H_

#include "ir/stmt.h"

namespace sparsetir {
namespace ir {

/** Read-only traversal over expressions. */
class ExprVisitor
{
  public:
    virtual ~ExprVisitor() = default;

    /** Dispatch on e's kind. */
    virtual void visitExpr(const Expr &e);

  protected:
    virtual void visitIntImm(const IntImmNode *op) {}
    virtual void visitFloatImm(const FloatImmNode *op) {}
    virtual void visitStringImm(const StringImmNode *op) {}
    virtual void visitVar(const VarNode *op) {}
    virtual void visitBinary(const BinaryNode *op);
    virtual void visitNot(const NotNode *op);
    virtual void visitSelect(const SelectNode *op);
    virtual void visitCast(const CastNode *op);
    virtual void visitBufferLoad(const BufferLoadNode *op);
    virtual void visitRamp(const RampNode *op);
    virtual void visitBroadcast(const BroadcastNode *op);
    virtual void visitCall(const CallNode *op);
};

/** Read-only traversal over statements (and their expressions). */
class StmtVisitor : public ExprVisitor
{
  public:
    /** Dispatch on s's kind. */
    virtual void visitStmt(const Stmt &s);

  protected:
    virtual void visitBufferStore(const BufferStoreNode *op);
    virtual void visitSeq(const SeqStmtNode *op);
    virtual void visitFor(const ForNode *op);
    virtual void visitBlock(const BlockNode *op);
    virtual void visitIfThenElse(const IfThenElseNode *op);
    virtual void visitLetStmt(const LetStmtNode *op);
    virtual void visitAllocate(const AllocateNode *op);
    virtual void visitEvaluate(const EvaluateNode *op);
    virtual void visitSparseIteration(const SparseIterationNode *op);
};

/** Functional rewriting over expressions. */
class ExprMutator
{
  public:
    virtual ~ExprMutator() = default;

    /** Rewrite e; returns e itself when nothing below changed. */
    virtual Expr mutateExpr(const Expr &e);

  protected:
    virtual Expr mutateIntImm(const IntImmNode *op, const Expr &e);
    virtual Expr mutateFloatImm(const FloatImmNode *op, const Expr &e);
    virtual Expr mutateStringImm(const StringImmNode *op, const Expr &e);
    virtual Expr mutateVar(const VarNode *op, const Expr &e);
    virtual Expr mutateBinary(const BinaryNode *op, const Expr &e);
    virtual Expr mutateNot(const NotNode *op, const Expr &e);
    virtual Expr mutateSelect(const SelectNode *op, const Expr &e);
    virtual Expr mutateCast(const CastNode *op, const Expr &e);
    virtual Expr mutateBufferLoad(const BufferLoadNode *op, const Expr &e);
    virtual Expr mutateRamp(const RampNode *op, const Expr &e);
    virtual Expr mutateBroadcast(const BroadcastNode *op, const Expr &e);
    virtual Expr mutateCall(const CallNode *op, const Expr &e);

    /** Hook for rewriting the buffer referenced by loads/stores. */
    virtual Buffer mutateBuffer(const Buffer &buffer) { return buffer; }
};

/** Functional rewriting over statements. */
class StmtMutator : public ExprMutator
{
  public:
    /** Rewrite s; returns s itself when nothing below changed. */
    virtual Stmt mutateStmt(const Stmt &s);

  protected:
    virtual Stmt mutateBufferStore(const BufferStoreNode *op, const Stmt &s);
    virtual Stmt mutateSeq(const SeqStmtNode *op, const Stmt &s);
    virtual Stmt mutateFor(const ForNode *op, const Stmt &s);
    virtual Stmt mutateBlock(const BlockNode *op, const Stmt &s);
    virtual Stmt mutateIfThenElse(const IfThenElseNode *op, const Stmt &s);
    virtual Stmt mutateLetStmt(const LetStmtNode *op, const Stmt &s);
    virtual Stmt mutateAllocate(const AllocateNode *op, const Stmt &s);
    virtual Stmt mutateEvaluate(const EvaluateNode *op, const Stmt &s);
    virtual Stmt mutateSparseIteration(const SparseIterationNode *op,
                                       const Stmt &s);
};

/**
 * Substitute variables by expressions throughout an expression or
 * statement. Keys are VarNode addresses.
 */
class VarSubstituter : public StmtMutator
{
  public:
    explicit VarSubstituter(std::map<const VarNode *, Expr> subst)
        : subst_(std::move(subst))
    {}

  protected:
    Expr
    mutateVar(const VarNode *op, const Expr &e) override
    {
        auto it = subst_.find(op);
        return it != subst_.end() ? it->second : e;
    }

  private:
    std::map<const VarNode *, Expr> subst_;
};

/** Convenience wrappers around VarSubstituter. */
Expr substitute(const Expr &e, const std::map<const VarNode *, Expr> &subst);
Stmt substitute(const Stmt &s, const std::map<const VarNode *, Expr> &subst);

} // namespace ir
} // namespace sparsetir

#endif // SPARSETIR_IR_FUNCTOR_H_
