/**
 * @file
 * End-to-end compile pipelines: Stage I op -> (format decomposition)
 * -> lowering -> Stage II schedules -> Stage III -> bound, runnable,
 * simulatable kernels.
 *
 * This is the public API a downstream user programs against; the
 * bench harness and examples are built on it.
 */

#ifndef SPARSETIR_CORE_PIPELINE_H_
#define SPARSETIR_CORE_PIPELINE_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "format/bsr.h"
#include "format/csr.h"
#include "format/ell.h"
#include "format/hyb.h"
#include "format/srbcrs.h"
#include "gpusim/ir_kernel.h"
#include "ir/prim_func.h"
#include "runtime/interpreter.h"

namespace sparsetir {
namespace core {

/** Owned + external arrays/scalars shared by a group of kernels. */
class BindingSet
{
  public:
    /** Own an array under a parameter name; returns a stable pointer. */
    runtime::NDArray *own(const std::string &param, runtime::NDArray arr);
    /** Bind an external array (caller keeps ownership). */
    void external(const std::string &param, runtime::NDArray *arr);
    /** Bind a scalar. */
    void scalar(const std::string &param, int64_t value);

    const runtime::Bindings &view() const { return bindings_; }
    runtime::NDArray *find(const std::string &param) const;

  private:
    runtime::Bindings bindings_;
    std::deque<runtime::NDArray> storage_;
};

/** A Stage III function bound to data: executable and simulatable. */
class BoundKernel
{
  public:
    BoundKernel(ir::PrimFunc stage3,
                std::shared_ptr<BindingSet> bindings);

    const ir::PrimFunc &func() const { return func_; }
    const std::shared_ptr<BindingSet> &bindings() const
    {
        return bindings_;
    }

    /** Functional execution on the host interpreter. */
    void execute() const;

    /** Simulator adapter (built lazily, cached). */
    gpusim::IrKernel &simKernel();

  private:
    ir::PrimFunc func_;
    std::shared_ptr<BindingSet> bindings_;
    std::unique_ptr<gpusim::IrKernel> sim_;
};

/** Tunable schedule parameters for SpMM-family kernels. */
struct SpmmSchedule
{
    /** threadIdx.x width over the feature dimension. */
    int threadX = 32;
    /** Rows grouped into one thread block (hyb buckets override). */
    int rowsPerBlock = 1;
};

/** Tunable schedule parameters for SDDMM. */
struct SddmmSchedule
{
    /** Non-zeros per thread block. */
    int workloadsPerBlock = 8;
    /** Reduction lanes (rfactor width). */
    int groupSize = 32;
};

/** CSR SpMM (SparseTIR no-hyb): C = A @ B. */
std::shared_ptr<BoundKernel> compileSpmmCsr(
    const format::Csr &a, int64_t feat,
    const std::shared_ptr<BindingSet> &shared,
    const SpmmSchedule &params = SpmmSchedule());

/** Result of a hyb(c, k) SpMM compilation. */
struct HybSpmm
{
    format::Hyb hyb;
    /** One kernel per non-empty (partition, bucket). */
    std::vector<std::shared_ptr<BoundKernel>> kernels;
    std::shared_ptr<BindingSet> bindings;
};

/**
 * SpMM through the composable-format pipeline: decomposeFormat with
 * one ELL rule per non-empty (partition, bucket), per-bucket GE-SpMM
 * style schedules, bucket data prepared by format::hybFromCsr.
 * The paper's Figure 11/13 "SparseTIR(hyb)" configuration.
 */
HybSpmm compileSpmmHyb(const format::Csr &a, int64_t feat, int c, int k,
                       const std::shared_ptr<BindingSet> &shared,
                       int threadX = 32);

/** Fused SDDMM with two-stage (rfactor) reduction, PRedS-style. */
std::shared_ptr<BoundKernel> compileSddmm(
    const format::Csr &a, int64_t feat,
    const std::shared_ptr<BindingSet> &shared,
    const SddmmSchedule &params = SddmmSchedule());

/** BSR SpMM; `tensor_cores` routes the MMA to the TC pipe (fp16). */
std::shared_ptr<BoundKernel> compileBsrSpmm(
    const format::Bsr &a, int64_t feat,
    const std::shared_ptr<BindingSet> &shared, bool tensor_cores);

/** SR-BCRS(t, g) SpMM with Tensor-Core MMA (m8n32k16). */
std::shared_ptr<BoundKernel> compileSrbcrsSpmm(
    const format::SrBcrs &a, int64_t feat,
    const std::shared_ptr<BindingSet> &shared);

/**
 * One fused gather-matmul-scatter kernel for an ELL bucket of one
 * relation (paper Figure 21): Y += scatter(A_ell @ X @ W_r).
 * X/W/Y are bound externally in `shared` as "X_data"/"W_data"/
 * "Y_data" by the caller. Suffix keeps kernels distinct.
 */
std::shared_ptr<BoundKernel> compileEllRgms(
    const format::Ell &bucket, int64_t feat_in, int64_t feat_out,
    const std::shared_ptr<BindingSet> &shared, const std::string &suffix,
    bool tensor_cores, int rows_per_block = 4);

/** Dense reference SpMM for verification: C = A_dense @ B. */
std::vector<float> referenceSpmm(const format::Csr &a,
                                 const std::vector<float> &b,
                                 int64_t feat);

/** Dense reference SDDMM: out_nnz = (X @ Y) masked to A's pattern. */
std::vector<float> referenceSddmm(const format::Csr &a,
                                  const std::vector<float> &x,
                                  const std::vector<float> &y,
                                  int64_t feat);

} // namespace core
} // namespace sparsetir

#endif // SPARSETIR_CORE_PIPELINE_H_
