#include "support/rng.h"

#include <cmath>

#include "support/logging.h"

namespace sparsetir {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &w : state_) {
        w = splitmix64(s);
    }
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::uniformInt(uint64_t bound)
{
    ICHECK_GT(bound, 0u);
    // Rejection sampling to remove modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold) {
            return r % bound;
        }
    }
}

int64_t
Rng::uniformRange(int64_t lo, int64_t hi)
{
    ICHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
        uniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::uniformReal()
{
    return (next() >> 11) * (1.0 / 9007199254740992.0);
}

double
Rng::normal()
{
    double u1 = uniformReal();
    double u2 = uniformReal();
    if (u1 < 1e-300) {
        u1 = 1e-300;
    }
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

int64_t
Rng::powerLaw(double alpha, int64_t x_max)
{
    ICHECK_GT(alpha, 1.0);
    ICHECK_GE(x_max, 1);
    // Inverse CDF of continuous Pareto on [1, x_max], truncated.
    double u = uniformReal();
    double exponent = 1.0 - alpha;
    double x_max_pow = std::pow(static_cast<double>(x_max), exponent);
    double value = std::pow(1.0 - u * (1.0 - x_max_pow), 1.0 / exponent);
    int64_t result = static_cast<int64_t>(value);
    if (result < 1) {
        result = 1;
    }
    if (result > x_max) {
        result = x_max;
    }
    return result;
}

} // namespace sparsetir
