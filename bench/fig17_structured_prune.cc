/**
 * @file
 * Reproduces Figure 17: SpMM over block-pruned transformer weights
 * (block 32) across weight densities, normalized against cuBLAS
 * dense GEMM. Compares SparseTIR(BSR), SparseTIR(DBSR) and Triton.
 */

#include <cstdio>

#include "baselines/cublas.h"
#include "baselines/triton.h"
#include "baselines/vendor_constants.h"
#include "bench_util.h"
#include "core/pipeline.h"
#include "format/dcsr.h"
#include "graph/pruned_weights.h"

using namespace sparsetir;

namespace {

void
runDevice(const gpusim::GpuSpec &spec)
{
    gpusim::Device device(spec);
    // Weight: 4096x1024 (BERT FFN-sized), activations seq 512.
    int64_t rows = benchutil::fastMode() ? 1024 : 4096;
    int64_t cols = 1024;
    int64_t seq = 512;
    std::printf("\n--- %s ---\n", spec.name.c_str());
    std::printf("%-10s %8s %10s %10s %10s %12s\n", "density",
                "cuBLAS", "ST(BSR)", "ST(DBSR)", "Triton",
                "zero-brows%");
    for (int exp = 7; exp >= 1; --exp) {
        double density = 1.0 / static_cast<double>(1 << exp);
        // Block-pruned models keep survivors clustered in a subset of
        // block rows (paper: "many all-zero rows").
        double keep = std::min(1.0, 0.25 + density * 6.0);
        format::Csr w = graph::blockPrunedWeight(rows, cols, 32,
                                                 density, keep, 99);
        format::Bsr bsr = format::bsrFromCsr(w, 32);
        format::Dbsr dbsr = format::dbsrFromBsr(bsr);
        double zero_rows =
            1.0 - static_cast<double>(dbsr.numStoredBlockRows()) /
                      static_cast<double>(bsr.blockRows);

        gpusim::SimOptions opts;
        opts.efficiency = baselines::kCublasEfficiency;
        auto gemm = baselines::cublasGemm(rows, seq, cols, true);
        double base = device.launch(*gemm, opts).timeMs;

        opts.efficiency = baselines::kTritonEfficiency;
        auto triton = baselines::tritonBlockSpmm(bsr, seq);
        double triton_ms = device.launch(*triton, opts).timeMs;

        opts.efficiency = baselines::kSparseTirEfficiency;
        auto bsr_shared = std::make_shared<core::BindingSet>();
        runtime::NDArray b({bsr.blockCols * 32 * seq},
                           ir::DataType::float32());
        runtime::NDArray c({bsr.blockRows * 32 * seq},
                           ir::DataType::float32());
        bsr_shared->external("B_data", &b);
        bsr_shared->external("C_data", &c);
        auto st_bsr = core::compileBsrSpmm(bsr, seq, bsr_shared, true);
        double st_bsr_ms =
            device.launch(st_bsr->simKernel(), opts).timeMs;

        // DBSR: identical kernel on the compacted block rows; model
        // by re-running BSR on a matrix with empty rows dropped.
        format::Csr compact = format::csrFromDcsr(
            format::dcsrFromCsr(w));
        compact.rows = dbsr.numStoredBlockRows() * 32;
        compact.indptr.resize(compact.rows + 1,
                              compact.indptr.back());
        format::Bsr bsr_compact = format::bsrFromCsr(compact, 32);
        auto dbsr_shared = std::make_shared<core::BindingSet>();
        runtime::NDArray b2({bsr_compact.blockCols * 32 * seq},
                            ir::DataType::float32());
        runtime::NDArray c2({bsr_compact.blockRows * 32 * seq},
                            ir::DataType::float32());
        dbsr_shared->external("B_data", &b2);
        dbsr_shared->external("C_data", &c2);
        auto st_dbsr =
            core::compileBsrSpmm(bsr_compact, seq, dbsr_shared, true);
        double st_dbsr_ms =
            device.launch(st_dbsr->simKernel(), opts).timeMs;

        std::printf("2^-%-7d %8.2f %10.2f %10.2f %10.2f %11.0f%%\n",
                    exp, 1.0, base / st_bsr_ms, base / st_dbsr_ms,
                    base / triton_ms, zero_rows * 100.0);
    }
}

} // namespace

int
main()
{
    benchutil::printHeader(
        "Figure 17: block-pruned transformer SpMM vs cuBLAS "
        "(block 32, batch 1, seq 512)");
    runDevice(gpusim::GpuSpec::v100());
    runDevice(gpusim::GpuSpec::rtx3070());
    std::printf(
        "\nPaper: DBSR consistently above BSR (skips all-zero block "
        "rows), both above Triton at\nlow density; speedups vs cuBLAS "
        "grow as density falls (up to ~30x at 2^-7).\n");
    return 0;
}
