/**
 * @file
 * Lowering from OpGraph to executable Stage III kernels.
 *
 * Every node lowers to one canonical row-parallel kernel: an outer
 * blockIdx.x loop over the shared row space, guarded padded inner
 * loops over `maxRowNnz` positions (`if r < J_indptr[i+1] -
 * J_indptr[i]`), and per-row scalar accumulators allocated inside the
 * row loop. That shape is chosen for the verifier — the guard is the
 * exact conjunct the affine prover subtracts to discharge edge-space
 * bounds, and the `J_indptr[i] + r` store index is what the
 * monotone-window race rule recognizes.
 *
 * `lowerGraph` produces one of two artifacts over those kernels:
 *
 *  - fused: all nodes share one sparsity pattern, so the bodies fuse
 *    into a single PrimFunc (transform::fuseRowRegions) and every
 *    interior tensor becomes a per-row local — the intermediate edge
 *    tensor of SDDMM -> softmax -> SpMM is never materialized.
 *
 *  - chain: one kernel per node, dispatched sequentially, interior
 *    tensors materialized in scratch ("t_<id>" temps). This is the
 *    bitwise oracle for the fused path and the fallback when fusion
 *    bails (`reason` says why).
 *
 * Shapes and structure extents are baked into the IR as constants
 * (they are part of the graph's cache key anyway), so lowered kernels
 * have no scalar parameters and warm dispatch never probes.
 */

#ifndef SPARSETIR_DFG_LOWER_H_
#define SPARSETIR_DFG_LOWER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dfg/op_graph.h"
#include "ir/prim_func.h"

namespace sparsetir {
namespace dfg {

/** A chain-mode intermediate tensor to materialize at dispatch. */
struct LoweredTemp
{
    std::string name;
    int64_t numel = 0;
};

/** Structure arrays one pattern contributes to kernel bindings. */
struct StructureBinding
{
    std::string indptrName;
    std::string indicesName;
    PatternRef pattern;
};

struct GraphLowering
{
    /** One fused kernel (true) or a per-node chain (false). */
    bool fused = false;
    /** Why fusion bailed to the chain; empty when fused. */
    std::string reason;
    /** Kernels in dispatch order (size 1 when fused). */
    std::vector<ir::PrimFunc> funcs;
    /** Chain-mode intermediates; empty when fused. */
    std::vector<LoweredTemp> temps;
    /** Distinct patterns, in first-use order. */
    std::vector<StructureBinding> structures;
    /** Shared blockIdx.x extent of every kernel. */
    int64_t rows = 0;
};

/**
 * Check whether `graph` fuses into one kernel. Returns true and
 * clears `*reason`, or returns false with the bail cause: more than
 * one distinct sparsity pattern among nodes (share the PatternRef —
 * identity, not content, defines an iteration space), or an interior
 * value that is also marked as a graph output (it must materialize).
 */
bool fusible(const OpGraph &graph, std::string *reason);

/**
 * Lower `graph`. With `fuse` set, fuses when `fusible` allows and
 * falls back to the chain otherwise; with `fuse` clear, always
 * produces the per-node chain.
 */
GraphLowering lowerGraph(const OpGraph &graph, bool fuse);

} // namespace dfg
} // namespace sparsetir

#endif // SPARSETIR_DFG_LOWER_H_
