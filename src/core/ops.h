/**
 * @file
 * Stage I builders for the paper's operators: SpMM (Figure 3), SDDMM,
 * BSR SpMM, SR-BCRS SpMM (Figure 18) and the relational
 * gather-matmul-scatter RGMS (§4.4), plus the ELL format-rewrite rule
 * factories used for hyb(c, k) decomposition (Appendix A).
 */

#ifndef SPARSETIR_CORE_OPS_H_
#define SPARSETIR_CORE_OPS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ir/prim_func.h"
#include "transform/format_decompose.h"

namespace sparsetir {
namespace core {

/** CSR SpMM Stage I program (paper Figure 3): C = A @ B. */
ir::PrimFunc buildSpmm();

/**
 * SDDMM Stage I program: B_out = A ⊙ (X @ Y). When `fuse_ij` the
 * spatial (I, J) axes are fused (paper Figure 6).
 */
ir::PrimFunc buildSddmm(bool fuse_ij);

/**
 * BSR SpMM Stage I program with a constant block size: C = A @ B where
 * A is stored in BSR(block). Block count and dims are scalar params.
 */
ir::PrimFunc buildBsrSpmm(int block_size);

/**
 * BSR SDDMM Stage I program with a constant block size:
 * B_out[block] = (X @ Y) sampled at A's present blocks — the
 * row-panel kernel of the sparse-attention pipeline (Figure 16).
 */
ir::PrimFunc buildBsrSddmm(int block_size);

/**
 * SR-BCRS(t, g) SpMM Stage I program (paper Figure 18): stripes of t
 * rows store g-grouped 1-wide tiles.
 * Structure constants (stripes, groups) are baked in as parameters.
 */
ir::PrimFunc buildSrbcrsSpmm(int tile_height, int group_size);

/**
 * ELL-bucket RGMS Stage I program for one (relation, bucket) pair
 * (paper Figure 21): Y[i, l] += sum_j sum_k A[i, j] X[j, k] W[k, l]
 * with A an ELL sub-matrix over a compacted row list. Structure
 * constants are baked in (rows, width); feature sizes are params.
 */
ir::PrimFunc buildEllRgms(int64_t num_rows, int width, int64_t feat_in,
                          int64_t feat_out, const std::string &suffix);

/**
 * ELL format-rewrite rule for hyb decomposition: a bucket with
 * `num_rows` compacted rows of `width` stored entries, selected from
 * an m x n matrix. Axis names are suffixed to keep rules distinct.
 */
transform::FormatRewriteRule ellRule(const std::string &suffix,
                                     int64_t m, int64_t n,
                                     int64_t num_rows, int width);

/**
 * BSR format-rewrite rule (paper Appendix A): block size `b`,
 * `block_rows` block rows, `nnz_blocks` stored blocks.
 */
transform::FormatRewriteRule bsrRule(const std::string &suffix,
                                     int64_t m, int64_t n, int block_size,
                                     int64_t block_rows,
                                     int64_t nnz_blocks);

/**
 * Split a multi-iteration Stage I function into one function per
 * sparse iteration (each kernel launches separately unless
 * horizontally fused).
 */
std::vector<ir::PrimFunc> splitIterations(const ir::PrimFunc &func);

} // namespace core
} // namespace sparsetir

#endif // SPARSETIR_CORE_OPS_H_
