/**
 * @file
 * IR analyses: variable collection, buffer access collection, simple
 * interval bound analysis and block read/write region inference.
 */

#ifndef SPARSETIR_IR_ANALYSIS_H_
#define SPARSETIR_IR_ANALYSIS_H_

#include <map>
#include <set>
#include <vector>

#include "ir/functor.h"

namespace sparsetir {
namespace ir {

/** All variables referenced in an expression/statement. */
std::set<const VarNode *> collectVars(const Expr &e);
std::set<const VarNode *> collectVars(const Stmt &s);

/** One buffer access site. */
struct BufferAccess
{
    Buffer buffer;
    std::vector<Expr> indices;
    bool isWrite;
};

/** All buffer loads/stores in a statement, in visit order. */
std::vector<BufferAccess> collectBufferAccesses(const Stmt &s);

/** All buffers referenced in a statement (loads, stores, calls). */
std::vector<Buffer> collectBuffers(const Stmt &s);

/** Closed integer interval; may be unbounded on either side. */
struct Interval
{
    int64_t lo = 0;
    int64_t hi = 0;
    bool hasLo = false;
    bool hasHi = false;

    static Interval
    constant(int64_t v)
    {
        return Interval{v, v, true, true};
    }
    static Interval
    range(int64_t lo, int64_t hi)
    {
        return Interval{lo, hi, true, true};
    }
    static Interval unknown() { return Interval{}; }
};

/**
 * Evaluate conservative bounds of an integer expression given bounds
 * for its variables. Unknown vars yield an unbounded interval.
 */
Interval boundsOf(const Expr &e,
                  const std::map<const VarNode *, Interval> &var_bounds);

/**
 * Compute block read/write regions (the Read/Write Region Analysis
 * step of sparse iteration lowering, §3.3.1): for each buffer accessed
 * under the statement, union the accessed regions per dimension, given
 * loop-var bounds. Returns conservative whole-dimension ranges when an
 * index cannot be bounded.
 */
void inferRegions(const Stmt &body,
                  const std::map<const VarNode *, Interval> &var_bounds,
                  std::vector<BufferRegion> *reads,
                  std::vector<BufferRegion> *writes);

/** Annotate every Block in the function body with inferred regions. */
Stmt annotateRegions(const Stmt &root);

/** True if the statement contains a node of the given stmt kind. */
bool containsStmtKind(const Stmt &s, StmtKind kind);

/** Count nodes of a statement kind. */
int countStmtKind(const Stmt &s, StmtKind kind);

/** Collect all SparseIteration nodes in order. */
std::vector<SparseIteration> collectSparseIterations(const Stmt &s);

} // namespace ir
} // namespace sparsetir

#endif // SPARSETIR_IR_ANALYSIS_H_
