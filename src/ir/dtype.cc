#include "ir/dtype.h"

#include "support/logging.h"

namespace sparsetir {
namespace ir {

std::string
DataType::str() const
{
    std::string base;
    switch (code_) {
      case kInt:
        base = "int";
        break;
      case kUInt:
        base = "uint";
        break;
      case kFloat:
        base = "float";
        break;
      case kBool:
        return lanes_ == 1 ? "bool" : "boolx" + std::to_string(lanes_);
      case kHandle:
        return "handle";
      default:
        ICHECK(false) << "unknown dtype code";
    }
    base += std::to_string(bits_);
    if (lanes_ != 1) {
        base += "x" + std::to_string(lanes_);
    }
    return base;
}

} // namespace ir
} // namespace sparsetir
