/**
 * @file
 * Bytecode backend tests: a differential suite asserting bitwise
 * equality between the BytecodeVM and the tree-walking interpreter
 * (the reference oracle) across every kernel family the engine
 * serves — spmmCsr, spmmHyb (including split-row buckets), sddmm and
 * rgcn — plus block-window execution, program structure, the
 * Stage III executability hook, touched-row span derivation and the
 * engine-level backend selector.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/ops.h"
#include "core/pipeline.h"
#include "engine/engine.h"
#include "engine/executor.h"
#include "format/hyb.h"
#include "graph/generator.h"
#include "ir/stmt.h"
#include "runtime/bytecode/compiler.h"
#include "runtime/bytecode/vm.h"
#include "runtime/interpreter.h"
#include "support/rng.h"
#include "test_util.h"
#include "transform/lower_sparse_buffer.h"
#include "transform/lower_sparse_iter.h"

namespace sparsetir {
namespace {

using core::BindingSet;
using format::Csr;
using runtime::Backend;
using runtime::Bindings;
using runtime::NDArray;
using testutil::bitwiseEqual;
using testutil::randomVector;
namespace bytecode = runtime::bytecode;

/** A CSR with one very long row, so small bucket caps split it. */
Csr
longRowCsr(int64_t rows, int64_t cols, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> dense(rows * cols, 0.0f);
    for (int64_t j = 0; j < cols; ++j) {
        // Row 0 is (almost) fully dense.
        if (rng.uniformReal() < 0.9) {
            dense[j] = static_cast<float>(rng.uniformReal() + 0.1);
        }
    }
    for (int64_t i = 1; i < rows; ++i) {
        for (int64_t j = 0; j < cols; ++j) {
            if (rng.uniformReal() < 0.05) {
                dense[i * cols + j] =
                    static_cast<float>(rng.uniformReal() + 0.1);
            }
        }
    }
    return format::csrFromDense(rows, cols, dense);
}

// ---------------------------------------------------------------------
// Program structure
// ---------------------------------------------------------------------

TEST(BytecodeCompiler, CompilesSpmmWithBlockWindow)
{
    auto func = core::compileSpmmCsrFunc(16, core::SpmmSchedule());
    auto program = bytecode::compile(func);
    ASSERT_NE(program, nullptr);
    EXPECT_FALSE(program->code.empty());
    EXPECT_GT(program->numIRegs, 0);
    EXPECT_GT(program->numFRegs, 0);
    // The kernel has a blockIdx.x grid, so block windows must apply.
    ASSERT_GE(program->blockWindowPc, 0);
    EXPECT_EQ(program->code[program->blockWindowPc].op,
              bytecode::Op::kBlockWindow);
    // Every handle param that the kernel touches resolves to a slot.
    EXPECT_GT(program->numParamSlots, 0);
    // Scalar params are preassigned registers.
    EXPECT_FALSE(program->scalarParams.empty());
}

TEST(BytecodeCompiler, MemoizesPerFunction)
{
    auto func = core::compileSpmmCsrFunc(8, core::SpmmSchedule());
    auto first = bytecode::programFor(func);
    auto second = bytecode::programFor(func);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first.get(), second.get());
}

TEST(BytecodeCompiler, RejectsStageOneViaDiagnostic)
{
    ir::PrimFunc stage1 = core::buildSddmm(true);
    EXPECT_FALSE(transform::stage3ExecDiagnostic(stage1).empty());
    EXPECT_THROW(bytecode::compile(stage1), UserError);
    // The memoized path remembers the failure and reports null.
    EXPECT_EQ(bytecode::programFor(stage1), nullptr);

    ir::PrimFunc stage3 = transform::lowerSparseBuffers(
        transform::lowerSparseIterations(stage1));
    EXPECT_TRUE(transform::stage3ExecDiagnostic(stage3).empty());
    EXPECT_NE(bytecode::programFor(stage3), nullptr);
}

TEST(BytecodeVM, UnusedScalarParamsStayLazilyBound)
{
    // f(n_unused, out): out[0] = 7. The interpreter binds scalars
    // lazily, so running without "n_unused" works; the VM must agree.
    auto func = ir::primFunc("lazy");
    ir::Var unused = ir::var("n_unused");
    ir::Buffer out_buf = ir::denseBuffer(
        "out", {ir::intImm(1)}, ir::DataType::float32());
    func->params = {unused, out_buf->data};
    func->bufferMap.emplace_back(out_buf->data, out_buf);
    func->body = ir::bufferStore(out_buf, {ir::intImm(0)},
                                 ir::floatImm(7.0));
    func->stage = ir::IrStage::kStage3;

    auto program = bytecode::compile(func);
    ASSERT_NE(program, nullptr);
    EXPECT_TRUE(program->scalarParams.empty());

    NDArray out({1}, ir::DataType::float32());
    Bindings bindings;
    bindings.arrays = {{"out_data", &out}};
    runtime::runInterpreted(func, bindings);
    EXPECT_EQ(out.floatAt(0), 7.0);
    out.zero();
    bytecode::execute(*program, bindings);
    EXPECT_EQ(out.floatAt(0), 7.0);
}

TEST(Executor, TouchedRowSpansMergeAndScale)
{
    // Rows {0,1,2, 5, 7,8} with width 4 -> [0,12) [20,24) [28,36).
    std::vector<int32_t> rows = {7, 0, 2, 8, 5, 1, 2, 0};
    auto spans = engine::touchedRowSpans(rows, 4);
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0], (engine::Span{0, 12}));
    EXPECT_EQ(spans[1], (engine::Span{20, 24}));
    EXPECT_EQ(spans[2], (engine::Span{28, 36}));
    EXPECT_TRUE(engine::touchedRowSpans({}, 4).empty());
}

TEST(Executor, OffsetViewPacksAndTranslates)
{
    auto view = runtime::OffsetView::fromSpans(
        {{4, 8}, {12, 14}, {20, 24}});
    EXPECT_EQ(view.numel, 10);
    ASSERT_EQ(view.bases.size(), 3u);
    EXPECT_EQ(view.bases[0], 0);
    EXPECT_EQ(view.bases[1], 4);
    EXPECT_EQ(view.bases[2], 6);
    // In-span offsets pack contiguously...
    EXPECT_EQ(view.translate(4), 0);
    EXPECT_EQ(view.translate(7), 3);
    EXPECT_EQ(view.translate(12), 4);
    EXPECT_EQ(view.translate(13), 5);
    EXPECT_EQ(view.translate(20), 6);
    EXPECT_EQ(view.translate(23), 9);
    // ...and everything between or beyond spans is outside.
    EXPECT_EQ(view.translate(0), -1);
    EXPECT_EQ(view.translate(3), -1);
    EXPECT_EQ(view.translate(8), -1);
    EXPECT_EQ(view.translate(14), -1);
    EXPECT_EQ(view.translate(19), -1);
    EXPECT_EQ(view.translate(24), -1);

    // Single span: the two-compare fast path.
    auto one = runtime::OffsetView::fromSpans({{8, 16}});
    EXPECT_EQ(one.numel, 8);
    EXPECT_EQ(one.translate(8), 0);
    EXPECT_EQ(one.translate(15), 7);
    EXPECT_EQ(one.translate(7), -1);
    EXPECT_EQ(one.translate(16), -1);

    // Empty window: a valid view with no inside.
    auto empty = runtime::OffsetView::fromSpans({});
    EXPECT_EQ(empty.numel, 0);
    EXPECT_EQ(empty.translate(0), -1);

    // Malformed span lists are rejected up front.
    EXPECT_THROW(runtime::OffsetView::fromSpans({{4, 4}}),
                 InternalError);
    EXPECT_THROW(runtime::OffsetView::fromSpans({{8, 12}, {4, 6}}),
                 InternalError);
    EXPECT_THROW(runtime::OffsetView::fromSpans({{-2, 4}}),
                 InternalError);
}

TEST(BytecodeVM, OffsetViewRebasedRunMatchesInterpreterBitwise)
{
    // f(base, n, out, v): for i in [0, n): out[base+i] += v[i],
    // executed against a PACKED `out` (window [4,8) u [12,14)) on
    // both backends: each must translate the kernel's absolute
    // offsets into the packed array identically, and fault on any
    // access outside the window.
    auto func = ir::primFunc("rebased");
    ir::Var base = ir::var("base");
    ir::Var n = ir::var("n");
    ir::Var i = ir::var("i");
    ir::Buffer out = ir::denseBuffer("out", {ir::intImm(64)},
                                     ir::DataType::float32());
    ir::Buffer v = ir::denseBuffer("v", {ir::intImm(64)},
                                   ir::DataType::float32());
    func->params = {base, n, out->data, v->data};
    func->bufferMap.emplace_back(out->data, out);
    func->bufferMap.emplace_back(v->data, v);
    ir::Expr idx = ir::add(base, i);
    func->body = ir::forLoop(
        i, ir::intImm(0), n,
        ir::bufferStore(out, {idx},
                        ir::add(ir::bufferLoad(out, {idx}),
                                ir::bufferLoad(v, {i}))));
    func->stage = ir::IrStage::kStage3;
    auto program = bytecode::compile(func);
    ASSERT_NE(program, nullptr);

    auto view = runtime::OffsetView::fromSpans({{4, 8}, {12, 14}});
    ASSERT_EQ(view.numel, 6);
    NDArray packed_interp =
        NDArray::fromFloat({10, 20, 30, 40, 50, 60});
    NDArray packed_vm = NDArray::fromFloat({10, 20, 30, 40, 50, 60});
    NDArray vals = NDArray::fromFloat({1, 2, 3, 4});

    runtime::RunOptions options;
    options.offsetViews.push_back(
        runtime::BufferView{"out_data", &view});
    Bindings bindings;
    bindings.scalars = {{"base", 4}, {"n", 4}};
    bindings.arrays = {{"out_data", &packed_interp},
                       {"v_data", &vals}};
    runtime::runInterpreted(func, bindings, options);
    bindings.arrays["out_data"] = &packed_vm;
    bytecode::execute(*program, bindings, options);
    EXPECT_TRUE(bitwiseEqual(packed_interp, packed_vm));
    // Absolute [4,8) lands in packed [0,4); packed [4,6) untouched.
    EXPECT_EQ(packed_interp.floatAt(0), 11.0);
    EXPECT_EQ(packed_interp.floatAt(3), 44.0);
    EXPECT_EQ(packed_interp.floatAt(4), 50.0);

    // The second span: absolute [12,14) lands in packed [4,6).
    bindings.scalars["base"] = 12;
    bindings.scalars["n"] = 2;
    bytecode::execute(*program, bindings, options);
    EXPECT_EQ(packed_vm.floatAt(4), 51.0);
    EXPECT_EQ(packed_vm.floatAt(5), 62.0);

    // Accesses outside the window fault on BOTH backends: the
    // write-set contract is enforced, not trusted.
    bindings.scalars["base"] = 8;
    EXPECT_THROW(bytecode::execute(*program, bindings, options),
                 InternalError);
    bindings.arrays["out_data"] = &packed_interp;
    EXPECT_THROW(runtime::runInterpreted(func, bindings, options),
                 InternalError);

    // Without the view the same offsets address the full array.
    NDArray full({64}, ir::DataType::float32());
    bindings.arrays["out_data"] = &full;
    bindings.scalars["base"] = 4;
    bindings.scalars["n"] = 4;
    runtime::RunOptions no_view;
    bytecode::execute(*program, bindings, no_view);
    EXPECT_EQ(full.floatAt(4), 1.0);
    EXPECT_EQ(full.floatAt(7), 4.0);
}

// ---------------------------------------------------------------------
// Differential: VM vs interpreter, bitwise
// ---------------------------------------------------------------------

/** Run one function on both backends over twin binding sets. */
struct DifferentialResult
{
    NDArray interp;
    NDArray vm;
};

TEST(BytecodeVM, SpmmCsrBitwiseMatchesInterpreter)
{
    Csr a = graph::powerLawGraph(400, 5000, 1.8, 11);
    int64_t feat = 16;
    auto func = core::compileSpmmCsrFunc(feat, core::SpmmSchedule());
    auto program = bytecode::programFor(func);
    ASSERT_NE(program, nullptr);

    auto b_host = randomVector(a.cols * feat, 12);
    NDArray indptr = NDArray::fromInt32(a.indptr);
    NDArray indices = NDArray::fromInt32(a.indices);
    NDArray values = NDArray::fromFloat(a.values);
    NDArray b = NDArray::fromFloat(b_host);
    NDArray c_interp({a.rows * feat}, ir::DataType::float32());
    NDArray c_vm({a.rows * feat}, ir::DataType::float32());

    Bindings bindings;
    bindings.scalars = {{"m", a.rows},
                        {"n", a.cols},
                        {"nnz", a.nnz()},
                        {"feat_size", feat}};
    bindings.arrays = {{"J_indptr", &indptr},
                       {"J_indices", &indices},
                       {"A_data", &values},
                       {"B_data", &b},
                       {"C_data", &c_interp}};
    runtime::runInterpreted(func, bindings);

    bindings.arrays["C_data"] = &c_vm;
    bytecode::execute(*program, bindings);
    EXPECT_TRUE(bitwiseEqual(c_interp, c_vm));
}

TEST(BytecodeVM, BlockWindowsComposeToFullRun)
{
    Csr a = graph::powerLawGraph(300, 3500, 1.7, 21);
    int64_t feat = 8;
    auto func = core::compileSpmmCsrFunc(feat, core::SpmmSchedule());
    auto program = bytecode::programFor(func);
    ASSERT_NE(program, nullptr);

    auto b_host = randomVector(a.cols * feat, 22);
    NDArray indptr = NDArray::fromInt32(a.indptr);
    NDArray indices = NDArray::fromInt32(a.indices);
    NDArray values = NDArray::fromFloat(a.values);
    NDArray b = NDArray::fromFloat(b_host);
    NDArray c_full({a.rows * feat}, ir::DataType::float32());
    NDArray c_windows({a.rows * feat}, ir::DataType::float32());

    Bindings bindings;
    bindings.scalars = {{"m", a.rows},
                        {"n", a.cols},
                        {"nnz", a.nnz()},
                        {"feat_size", feat}};
    bindings.arrays = {{"J_indptr", &indptr},
                       {"J_indices", &indices},
                       {"A_data", &values},
                       {"B_data", &b},
                       {"C_data", &c_full}};
    runtime::runInterpreted(func, bindings);

    // Three disjoint windows on the VM must reproduce the full run
    // (spmm rows are disjoint across blockIdx).
    bindings.arrays["C_data"] = &c_windows;
    runtime::LaunchInfo info = runtime::launchInfo(func, bindings);
    ASSERT_TRUE(info.hasBlockIdx);
    ASSERT_GE(info.blockExtent, 3);
    int64_t third = info.blockExtent / 3;
    std::vector<std::pair<int64_t, int64_t>> windows = {
        {0, third},
        {third, 2 * third},
        {2 * third, info.blockExtent}};
    for (const auto &[begin, end] : windows) {
        runtime::RunOptions options;
        options.blockBegin = begin;
        options.blockEnd = end;
        bytecode::execute(*program, bindings, options);
    }
    EXPECT_TRUE(bitwiseEqual(c_full, c_windows));

    // Windowing a kernel with no blockIdx loop is a user error on
    // both backends.
    auto no_grid = ir::primFunc("flat");
    runtime::RunOptions window;
    window.blockEnd = 1;
    auto empty_program = bytecode::Program();
    empty_program.name = "flat";
    EXPECT_THROW(bytecode::execute(empty_program, bindings, window),
                 UserError);
}

TEST(BytecodeVM, SddmmBitwiseMatchesInterpreter)
{
    Csr a = graph::powerLawGraph(200, 2400, 1.6, 31);
    int64_t feat = 32;
    auto func = core::compileSddmmFunc(feat, core::SddmmSchedule());
    auto program = bytecode::programFor(func);
    ASSERT_NE(program, nullptr);

    auto x_host = randomVector(a.rows * feat, 32);
    auto y_host = randomVector(feat * a.cols, 33);
    NDArray indptr = NDArray::fromInt32(a.indptr);
    NDArray indices = NDArray::fromInt32(a.indices);
    NDArray values = NDArray::fromFloat(a.values);
    NDArray x = NDArray::fromFloat(x_host);
    NDArray y = NDArray::fromFloat(y_host);
    NDArray out_interp({a.nnz()}, ir::DataType::float32());
    NDArray out_vm({a.nnz()}, ir::DataType::float32());

    Bindings bindings;
    bindings.scalars = {{"m", a.rows},
                        {"n", a.cols},
                        {"nnz", a.nnz()},
                        {"feat_size", feat}};
    bindings.arrays = {{"J_indptr", &indptr},
                       {"J_indices", &indices},
                       {"A_data", &values},
                       {"X_data", &x},
                       {"Y_data", &y},
                       {"B_data", &out_interp}};
    runtime::runInterpreted(func, bindings);

    bindings.arrays["B_data"] = &out_vm;
    bytecode::execute(*program, bindings);
    EXPECT_TRUE(bitwiseEqual(out_interp, out_vm));
}

// ---------------------------------------------------------------------
// Engine-level differential (backend selector)
// ---------------------------------------------------------------------

/** Dispatch the same request on both backends; compare bitwise. */
template <typename DispatchFn>
void
expectBackendsAgree(DispatchFn &&dispatch, int64_t out_numel)
{
    NDArray out[2] = {
        NDArray({out_numel}, ir::DataType::float32()),
        NDArray({out_numel}, ir::DataType::float32())};
    for (int which = 0; which < 2; ++which) {
        engine::EngineOptions options;
        options.backend = which == 0 ? Backend::kInterpreter
                                     : Backend::kBytecode;
        engine::Engine eng(options);
        dispatch(eng, &out[which]);
    }
    EXPECT_TRUE(bitwiseEqual(out[0], out[1]))
        << "bytecode backend diverged from the interpreter";
}

TEST(EngineBackend, SpmmHybAgreesAcrossBackends)
{
    Csr a = graph::powerLawGraph(350, 4200, 1.9, 41);
    int64_t feat = 16;
    auto b_host = randomVector(a.cols * feat, 42);
    engine::HybConfig config;
    config.partitions = 2;
    expectBackendsAgree(
        [&](engine::Engine &eng, NDArray *c) {
            NDArray b = NDArray::fromFloat(b_host);
            eng.spmmHyb(a, feat, &b, c, config);
        },
        a.rows * feat);
}

TEST(EngineBackend, SplitRowHybAgreesAcrossBackends)
{
    // A near-dense row with a small bucket cap forces the widest
    // bucket to carry several ELL rows of one original row: the
    // exclusive (serial-position) path on both backends.
    Csr a = longRowCsr(60, 200, 43);
    format::Hyb hyb = format::hybFromCsr(a, 1, 2);
    bool has_split = false;
    for (const auto &bucket : hyb.buckets[0]) {
        std::vector<int32_t> rows = bucket.rowIndices;
        std::sort(rows.begin(), rows.end());
        if (std::adjacent_find(rows.begin(), rows.end()) !=
            rows.end()) {
            has_split = true;
        }
    }
    ASSERT_TRUE(has_split)
        << "fixture no longer produces split rows; lower the cap";

    int64_t feat = 8;
    auto b_host = randomVector(a.cols * feat, 44);
    engine::HybConfig config;
    config.partitions = 1;
    config.bucketCapLog2 = 2;
    expectBackendsAgree(
        [&](engine::Engine &eng, NDArray *c) {
            NDArray b = NDArray::fromFloat(b_host);
            eng.spmmHyb(a, feat, &b, c, config);
        },
        a.rows * feat);
}

TEST(EngineBackend, SddmmAgreesAcrossBackends)
{
    Csr a = graph::powerLawGraph(180, 2000, 1.7, 51);
    int64_t feat = 16;
    auto x_host = randomVector(a.rows * feat, 52);
    auto y_host = randomVector(feat * a.cols, 53);
    expectBackendsAgree(
        [&](engine::Engine &eng, NDArray *out) {
            NDArray x = NDArray::fromFloat(x_host);
            NDArray y = NDArray::fromFloat(y_host);
            eng.sddmm(a, feat, &x, &y, out);
        },
        a.nnz());
}

TEST(EngineBackend, RgcnAgreesAcrossBackendsOnDirtyOutput)
{
    format::RelationalCsr graph;
    graph.rows = 50;
    graph.cols = 50;
    for (int r = 0; r < 4; ++r) {
        graph.relations.push_back(graph::powerLawGraph(
            50, 260 + 40 * r, 1.6, 61 + r));
        graph.relations.back().cols = 50;
    }
    int64_t feat = 8;
    auto x_host = randomVector(graph.cols * feat, 71);
    auto w_host = randomVector(feat * feat, 72);
    // RGCN accumulates into Y (Y += scatter(...)); start from a
    // non-zero output so the span-restricted privatization must
    // preserve untouched rows AND pre-values of touched rows.
    auto y0 = randomVector(graph.rows * feat, 73);

    NDArray out[2] = {NDArray::fromFloat(y0), NDArray::fromFloat(y0)};
    for (int which = 0; which < 2; ++which) {
        engine::EngineOptions options;
        options.backend = which == 0 ? Backend::kInterpreter
                                     : Backend::kBytecode;
        engine::Engine eng(options);
        NDArray x = NDArray::fromFloat(x_host);
        NDArray w = NDArray::fromFloat(w_host);
        auto info = eng.rgcn(graph, feat, &x, &w, &out[which]);
        EXPECT_GE(info.numKernels, 4);
        // Dispatch again so the second round leases dirty pooled
        // scratch buffers (the span-restricted zero must clean them).
        eng.rgcn(graph, feat, &x, &w, &out[which]);
    }
    EXPECT_TRUE(bitwiseEqual(out[0], out[1]))
        << "rgcn bytecode backend diverged on dirty output";
}

TEST(EngineBackend, ParallelVmMatchesSerialInterpreter)
{
    // The full contract at once: multi-worker bytecode execution vs
    // the single-threaded interpreter, bitwise.
    Csr a = graph::powerLawGraph(400, 5200, 1.8, 81);
    int64_t feat = 16;
    auto b_host = randomVector(a.cols * feat, 82);
    engine::HybConfig config;
    config.partitions = 4;

    NDArray serial({a.rows * feat}, ir::DataType::float32());
    {
        engine::EngineOptions options;
        options.backend = Backend::kInterpreter;
        options.numThreads = 1;
        options.parallel = false;
        engine::Engine eng(options);
        NDArray b = NDArray::fromFloat(b_host);
        eng.spmmHyb(a, feat, &b, &serial, config);
    }
    for (int threads : {2, 8}) {
        engine::EngineOptions options;
        options.backend = Backend::kBytecode;
        options.numThreads = threads;
        options.minBlocksPerChunk = 2;
        engine::Engine eng(options);
        NDArray b = NDArray::fromFloat(b_host);
        NDArray c({a.rows * feat}, ir::DataType::float32());
        eng.spmmHyb(a, feat, &b, &c, config);
        EXPECT_TRUE(bitwiseEqual(serial, c))
            << "VM with " << threads
            << " workers diverged from the serial interpreter";
    }
}

TEST(EngineBackend, CacheKeyCarriesArtifactVersion)
{
    engine::CacheKey key;
    EXPECT_EQ(key.version, engine::kArtifactVersion);
    engine::CacheKey old_key = key;
    old_key.version = 1;
    EXPECT_FALSE(key == old_key);
    EXPECT_NE(engine::CacheKeyHash()(key),
              engine::CacheKeyHash()(old_key));
}

} // namespace
} // namespace sparsetir
