/**
 * @file
 * Named counters and latency histograms: the metrics half of the
 * observability layer.
 *
 * A MetricsRegistry maps stable names ("engine.requests",
 * "engine.warm_dispatch_ms.spmm_hyb", "runtime.launch_probes") to
 * lock-free instruments. Registration takes a lock once per name;
 * the returned pointers stay valid for the registry's lifetime, so
 * hot paths record through a cached pointer with a relaxed atomic
 * add — no lock, no allocation. The legacy stats structs
 * (EngineStats, CacheStats) are reconstructed as views over these
 * instruments; see engine.h / compile_cache.h.
 *
 * Naming scheme: `<subsystem>.<what>[_<unit>][.<detail>]`, e.g.
 * `cache.evictions` (counter), `engine.warm_dispatch_ms.spmm_csr`
 * (histogram, milliseconds). Counters count events; histograms carry
 * a `_ms` unit suffix before any detail segment.
 */

#ifndef SPARSETIR_OBSERVE_METRICS_H_
#define SPARSETIR_OBSERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace sparsetir {
namespace observe {

/** Monotonic event counter; add/read are relaxed atomics. */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        value_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Point-in-time view of one LatencyHistogram. */
struct HistogramSnapshot
{
    uint64_t count = 0;
    double sumMs = 0.0;
    double minMs = 0.0;
    double maxMs = 0.0;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
};

/**
 * Fixed-bucket latency histogram in milliseconds.
 *
 * 64 log-spaced buckets with upper bounds 0.001ms * 2^(i/2): the
 * sqrt(2) ratio bounds any interpolated percentile's relative error
 * by ~41% while covering 1 microsecond to ~50 minutes. record() is
 * three relaxed atomic ops (bucket, count, CAS-looped sum) plus two
 * min/max CAS loops — safe from any thread, never allocating.
 * Percentiles interpolate linearly inside the hit bucket and clamp
 * to the exactly-tracked min/max, so a degenerate histogram (every
 * sample equal) reports that sample exactly.
 */
class LatencyHistogram
{
  public:
    static constexpr int kNumBuckets = 64;

    /** Record one latency sample; negative values clamp to zero. */
    void record(double ms);

    /**
     * Consistent-enough view under concurrent record(): each field
     * is individually atomic, the set is not (a racing record may
     * appear in count but not yet in a bucket).
     */
    HistogramSnapshot snapshot() const;

    uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double
    sumMs() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    void reset();

    /** Inclusive upper bound of bucket `i` in milliseconds. */
    static double bucketUpperMs(int i);

  private:
    std::atomic<uint64_t> buckets_[kNumBuckets] = {};
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0};
    std::atomic<double> max_{0.0};
};

/** Everything a registry (plus owner-provided gauges) knows. */
struct MetricsSnapshot
{
    std::map<std::string, uint64_t> counters;
    std::map<std::string, HistogramSnapshot> histograms;
    /** Instantaneous values published by the owner (e.g. scratch
     *  bytes currently leased) — not registry instruments. */
    std::map<std::string, int64_t> gauges;
};

/**
 * Name -> instrument map. counter()/histogram() intern the name on
 * first use and thereafter return the same pointer, which remains
 * valid until the registry is destroyed — cache it across calls on
 * hot paths. Instruments are never removed.
 *
 * Engines own private registries so concurrent engines never alias
 * each other's counts; global() serves process-wide facts (the
 * launch-probe counter) and code with no engine in scope.
 */
class MetricsRegistry
{
  public:
    Counter *counter(const std::string &name);
    LatencyHistogram *histogram(const std::string &name);

    MetricsSnapshot snapshot() const;

    /** Zero every registered instrument (names stay registered). */
    void reset();

    static MetricsRegistry &global();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<LatencyHistogram>>
        histograms_;
};

} // namespace observe
} // namespace sparsetir

#endif // SPARSETIR_OBSERVE_METRICS_H_
