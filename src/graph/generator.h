/**
 * @file
 * Synthetic graph generators replacing the paper's datasets (see
 * DESIGN.md substitution 3). Node/edge counts and degree-distribution
 * families match the originals; the heavy-tailed or concentrated
 * degree shape is what drives load-balancing and caching effects.
 */

#ifndef SPARSETIR_GRAPH_GENERATOR_H_
#define SPARSETIR_GRAPH_GENERATOR_H_

#include <cstdint>

#include "format/csr.h"
#include "support/rng.h"

namespace sparsetir {
namespace graph {

/**
 * Power-law graph: degrees sampled from a truncated Pareto with the
 * given exponent, rescaled to hit the target edge count; neighbour
 * columns uniform without replacement. Citation networks and social
 * graphs (cora/citeseer/pubmed/arxiv/reddit families).
 */
format::Csr powerLawGraph(int64_t nodes, int64_t edges, double alpha,
                          uint64_t seed);

/**
 * Concentrated-degree graph: degrees normally distributed around the
 * mean with small relative spread (ogbn-proteins' "centralized"
 * distribution, §4.2.1).
 */
format::Csr concentratedGraph(int64_t nodes, int64_t edges,
                              double rel_spread, uint64_t seed);

/** Uniform Erdos-Renyi-style graph. */
format::Csr uniformGraph(int64_t nodes, int64_t edges, uint64_t seed);

/** Degree-distribution summary used by dataset reports. */
struct DegreeStats
{
    int64_t maxDegree = 0;
    double meanDegree = 0.0;
    /** Gini coefficient of the degree distribution (imbalance). */
    double gini = 0.0;
};

DegreeStats degreeStats(const format::Csr &m);

} // namespace graph
} // namespace sparsetir

#endif // SPARSETIR_GRAPH_GENERATOR_H_
