#include "ir/prim_func.h"

namespace sparsetir {
namespace ir {

PrimFunc
primFunc(std::string name)
{
    auto func = std::make_shared<PrimFuncNode>();
    func->name = std::move(name);
    return func;
}

PrimFunc
copyFunc(const PrimFunc &func)
{
    return std::make_shared<PrimFuncNode>(*func);
}

} // namespace ir
} // namespace sparsetir
