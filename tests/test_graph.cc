/**
 * @file
 * Synthetic dataset generator tests: target sizes hit, distribution
 * families distinguishable, masks/kernel maps structurally correct.
 */

#include <gtest/gtest.h>

#include "format/bsr.h"
#include "format/dcsr.h"
#include "graph/attention_masks.h"
#include "graph/datasets.h"
#include "graph/generator.h"
#include "graph/hetero.h"
#include "graph/point_cloud.h"
#include "graph/pruned_weights.h"

namespace sparsetir {
namespace graph {
namespace {

TEST(Generator, HitsTargetEdgeCount)
{
    for (auto family : {0, 1}) {
        format::Csr g = family == 0
                            ? powerLawGraph(5000, 60000, 1.8, 7)
                            : concentratedGraph(5000, 60000, 0.3, 7);
        EXPECT_TRUE(format::csrValid(g));
        EXPECT_EQ(g.rows, 5000);
        // Deduplication can drop a few edges; stay within 2%.
        EXPECT_NEAR(static_cast<double>(g.nnz()), 60000.0,
                    60000.0 * 0.02);
    }
}

TEST(Generator, PowerLawIsHeavierTailed)
{
    format::Csr pl = powerLawGraph(8000, 120000, 1.6, 11);
    format::Csr cn = concentratedGraph(8000, 120000, 0.2, 11);
    DegreeStats s_pl = degreeStats(pl);
    DegreeStats s_cn = degreeStats(cn);
    EXPECT_GT(s_pl.gini, s_cn.gini + 0.2);
    EXPECT_GT(s_pl.maxDegree, s_cn.maxDegree * 4);
}

TEST(Generator, Deterministic)
{
    format::Csr a = powerLawGraph(1000, 8000, 2.0, 13);
    format::Csr b = powerLawGraph(1000, 8000, 2.0, 13);
    EXPECT_EQ(a.indptr, b.indptr);
    EXPECT_EQ(a.indices, b.indices);
}

TEST(Datasets, AllTable1SpecsGenerate)
{
    for (const auto &spec : table1Datasets()) {
        if (spec.edges > 200000) {
            continue;  // covered by the benches; keep tests fast
        }
        format::Csr g = generateDataset(spec);
        EXPECT_TRUE(format::csrValid(g)) << spec.name;
        EXPECT_EQ(g.rows, spec.nodes) << spec.name;
    }
}

TEST(Hetero, RelationsPartitionEdges)
{
    HeteroSpec spec = heteroSpec("AIFB");
    format::RelationalCsr g = generateHetero(spec);
    EXPECT_EQ(g.numRelations(), spec.numEtypes);
    EXPECT_NEAR(static_cast<double>(g.totalNnz()),
                static_cast<double>(spec.edges),
                static_cast<double>(spec.edges) * 0.05);
    // Zipf popularity: first relation carries the most edges.
    EXPECT_GE(g.relations.front().nnz(), g.relations.back().nnz());
}

TEST(AttentionMasks, BandStructure)
{
    format::Csr band = bandMask(128, 16);
    EXPECT_TRUE(format::csrValid(band));
    // Middle rows have full band width.
    EXPECT_EQ(band.rowLength(64), 17);  // half*2 + diagonal
    // Entries stay within the band.
    for (int32_t p = band.indptr[64]; p < band.indptr[65]; ++p) {
        EXPECT_LE(std::abs(band.indices[p] - 64), 8);
    }
}

TEST(AttentionMasks, ButterflyBlockAligned)
{
    format::Csr mask = butterflyMask(256, 32);
    EXPECT_TRUE(format::csrValid(mask));
    format::Bsr bsr = format::bsrFromCsr(mask, 32);
    // Butterfly masks are exactly block-sparse: no partial blocks.
    EXPECT_NEAR(bsr.paddingRatio(), 0.0, 1e-9);
    // log2(#blocks) + 1 block neighbours per block row.
    EXPECT_EQ(bsr.indptr[1] - bsr.indptr[0], 4);  // 8 blocks -> 3+1
}

TEST(PrunedWeights, DensityAndZeroRows)
{
    format::Csr w = blockPrunedWeight(512, 512, 32, 0.05, 0.4, 3);
    EXPECT_TRUE(format::csrValid(w));
    double density = static_cast<double>(w.nnz()) / (512.0 * 512.0);
    EXPECT_NEAR(density, 0.05, 0.02);
    format::Bsr bsr = format::bsrFromCsr(w, 32);
    format::Dbsr dbsr = format::dbsrFromBsr(bsr);
    // At 40% row keep, most block rows are empty.
    EXPECT_LE(dbsr.numStoredBlockRows(),
              static_cast<int64_t>(bsr.blockRows * 0.5) + 1);
}

TEST(PointCloud, KernelMapIsEll1)
{
    VoxelScene scene = syntheticLidarScene(3000, 5);
    EXPECT_GT(scene.voxels.size(), 1000u);
    format::KernelMap map = buildKernelMap(scene);
    EXPECT_EQ(map.maps.relations.size(), 27u);
    EXPECT_TRUE(map.isEll1());
    // The identity offset relation maps every voxel to itself.
    const format::Csr &center = map.maps.relations[13];
    EXPECT_EQ(center.nnz(),
              static_cast<int64_t>(scene.voxels.size()));
}

} // namespace
} // namespace graph
} // namespace sparsetir
