#include "ir/simplify.h"

#include <cmath>

namespace sparsetir {
namespace ir {

namespace {

int64_t
floordiv(int64_t a, int64_t b)
{
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) {
        --q;
    }
    return q;
}

int64_t
floormod(int64_t a, int64_t b)
{
    return a - floordiv(a, b) * b;
}

/** Fold a binary op over two integer constants. */
Expr
foldIntBinary(ExprKind kind, int64_t a, int64_t b, DataType dtype)
{
    auto boolean = [](bool v) {
        return intImm(v ? 1 : 0, DataType::boolean());
    };
    switch (kind) {
      case ExprKind::kAdd:
        return intImm(a + b, dtype);
      case ExprKind::kSub:
        return intImm(a - b, dtype);
      case ExprKind::kMul:
        return intImm(a * b, dtype);
      case ExprKind::kFloorDiv:
        return b == 0 ? nullptr : intImm(floordiv(a, b), dtype);
      case ExprKind::kFloorMod:
        return b == 0 ? nullptr : intImm(floormod(a, b), dtype);
      case ExprKind::kMin:
        return intImm(std::min(a, b), dtype);
      case ExprKind::kMax:
        return intImm(std::max(a, b), dtype);
      case ExprKind::kEQ:
        return boolean(a == b);
      case ExprKind::kNE:
        return boolean(a != b);
      case ExprKind::kLT:
        return boolean(a < b);
      case ExprKind::kLE:
        return boolean(a <= b);
      case ExprKind::kGT:
        return boolean(a > b);
      case ExprKind::kGE:
        return boolean(a >= b);
      case ExprKind::kAnd:
        return boolean(a != 0 && b != 0);
      case ExprKind::kOr:
        return boolean(a != 0 || b != 0);
      default:
        return nullptr;
    }
}

/** Fold a binary op over two float constants. */
Expr
foldFloatBinary(ExprKind kind, double a, double b, DataType dtype)
{
    switch (kind) {
      case ExprKind::kAdd:
        return floatImm(a + b, dtype);
      case ExprKind::kSub:
        return floatImm(a - b, dtype);
      case ExprKind::kMul:
        return floatImm(a * b, dtype);
      case ExprKind::kDiv:
        return floatImm(a / b, dtype);
      case ExprKind::kMin:
        return floatImm(std::min(a, b), dtype);
      case ExprKind::kMax:
        return floatImm(std::max(a, b), dtype);
      default:
        return nullptr;
    }
}

class Simplifier : public StmtMutator
{
  protected:
    Expr
    mutateBinary(const BinaryNode *op, const Expr &e) override
    {
        Expr a = mutateExpr(op->a);
        Expr b = mutateExpr(op->b);

        int64_t ia = 0;
        int64_t ib = 0;
        bool ca = tryConstInt(a, &ia);
        bool cb = tryConstInt(b, &ib);
        if (ca && cb) {
            if (Expr folded = foldIntBinary(op->kind, ia, ib, op->dtype)) {
                return folded;
            }
        }
        auto fa = std::dynamic_pointer_cast<const FloatImmNode>(a);
        auto fb = std::dynamic_pointer_cast<const FloatImmNode>(b);
        if (fa && fb) {
            if (Expr folded = foldFloatBinary(op->kind, fa->value, fb->value,
                                              op->dtype)) {
                return folded;
            }
        }

        // Identity rules.
        switch (op->kind) {
          case ExprKind::kAdd:
            if (ca && ia == 0) {
                return b;
            }
            if (cb && ib == 0) {
                return a;
            }
            break;
          case ExprKind::kSub:
            if (cb && ib == 0) {
                return a;
            }
            if (a == b) {
                return intImm(0, op->dtype);
            }
            break;
          case ExprKind::kMul:
            if ((ca && ia == 0) || (cb && ib == 0)) {
                return intImm(0, op->dtype);
            }
            if (ca && ia == 1) {
                return b;
            }
            if (cb && ib == 1) {
                return a;
            }
            if (fa && fa->value == 1.0) {
                return b;
            }
            if (fb && fb->value == 1.0) {
                return a;
            }
            break;
          case ExprKind::kFloorDiv:
            if (cb && ib == 1) {
                return a;
            }
            if (ca && ia == 0) {
                return intImm(0, op->dtype);
            }
            break;
          case ExprKind::kFloorMod:
            if (cb && ib == 1) {
                return intImm(0, op->dtype);
            }
            break;
          case ExprKind::kMin:
          case ExprKind::kMax:
            if (a == b) {
                return a;
            }
            break;
          case ExprKind::kAnd:
            if (ca) {
                return ia != 0 ? b : intImm(0, DataType::boolean());
            }
            if (cb) {
                return ib != 0 ? a : intImm(0, DataType::boolean());
            }
            break;
          case ExprKind::kOr:
            if (ca) {
                return ia != 0 ? intImm(1, DataType::boolean()) : b;
            }
            if (cb) {
                return ib != 0 ? intImm(1, DataType::boolean()) : a;
            }
            break;
          default:
            break;
        }

        // (x + c1) + c2 -> x + (c1+c2); (x * c1) * c2 -> x * (c1*c2)
        if (cb && (op->kind == ExprKind::kAdd ||
                   op->kind == ExprKind::kMul)) {
            if (auto inner = std::dynamic_pointer_cast<const BinaryNode>(a)) {
                int64_t ic = 0;
                if (inner->kind == op->kind && tryConstInt(inner->b, &ic)) {
                    int64_t combined = op->kind == ExprKind::kAdd
                                           ? ic + ib
                                           : ic * ib;
                    return mutateExpr(std::make_shared<BinaryNode>(
                        op->kind, op->dtype, inner->a,
                        intImm(combined, op->dtype)));
                }
            }
        }

        if (a == op->a && b == op->b) {
            return e;
        }
        return std::make_shared<BinaryNode>(op->kind, op->dtype,
                                            std::move(a), std::move(b));
    }

    Expr
    mutateSelect(const SelectNode *op, const Expr &e) override
    {
        Expr cond = mutateExpr(op->cond);
        Expr t = mutateExpr(op->trueValue);
        Expr f = mutateExpr(op->falseValue);
        int64_t c = 0;
        if (tryConstInt(cond, &c)) {
            return c != 0 ? t : f;
        }
        if (cond == op->cond && t == op->trueValue && f == op->falseValue) {
            return e;
        }
        return select(std::move(cond), std::move(t), std::move(f));
    }

    Expr
    mutateCast(const CastNode *op, const Expr &e) override
    {
        Expr value = mutateExpr(op->value);
        int64_t iv = 0;
        if (op->dtype.isInt() && tryConstInt(value, &iv)) {
            return intImm(iv, op->dtype);
        }
        if (auto fv = std::dynamic_pointer_cast<const FloatImmNode>(value)) {
            if (op->dtype.isFloat()) {
                return floatImm(fv->value, op->dtype);
            }
        }
        if (value == op->value) {
            return e;
        }
        return std::make_shared<CastNode>(op->dtype, std::move(value));
    }

  public:
    Stmt
    mutateIfThenElse(const IfThenElseNode *op, const Stmt &s) override
    {
        Expr cond = mutateExpr(op->cond);
        int64_t c = 0;
        if (tryConstInt(cond, &c)) {
            if (c != 0) {
                return mutateStmt(op->thenBody);
            }
            return op->elseBody != nullptr ? mutateStmt(op->elseBody)
                                           : seq({});
        }
        return StmtMutator::mutateIfThenElse(op, s);
    }
};

} // namespace

Expr
simplify(const Expr &e)
{
    Simplifier s;
    return s.mutateExpr(e);
}

Stmt
simplifyStmt(const Stmt &s)
{
    Simplifier simp;
    return simp.mutateStmt(s);
}

} // namespace ir
} // namespace sparsetir
