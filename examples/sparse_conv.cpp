/**
 * @file
 * 3-D sparse convolution on a synthetic LiDAR scene (paper §4.4.2):
 * the kernel map is 27 ELL(1) relations, and the fused RGMS kernel
 * avoids materializing the gather/scatter intermediate.
 *
 * Build & run:  ./build/examples/sparse_conv
 */

#include <cstdio>

#include "baselines/torchsparse.h"
#include "core/pipeline.h"
#include "format/ell.h"
#include "graph/point_cloud.h"

using namespace sparsetir;

int
main()
{
    graph::VoxelScene scene = graph::syntheticLidarScene(20000, 3);
    format::KernelMap map = graph::buildKernelMap(scene);
    std::printf("voxelized scene: %zu occupied voxels\n",
                scene.voxels.size());
    std::printf("kernel map: %zu relations, %lld in/out pairs, "
                "ELL(1): %s\n",
                map.maps.relations.size(),
                static_cast<long long>(map.maps.totalNnz()),
                map.isEll1() ? "yes" : "no");

    int64_t channels = 64;
    gpusim::Device device(gpusim::GpuSpec::v100());

    // TorchSparse-style: gather -> GEMM -> scatter with T in HBM.
    baselines::TorchSparseConv ts =
        baselines::torchsparseConv(map.maps, channels, channels);
    double ts_ms = 0.0;
    for (const auto &kernel : ts.kernels) {
        ts_ms += device.launch(*kernel).timeMs;
    }
    std::printf("\nTorchSparse-style: %.3f ms, intermediate T = "
                "%.1f MB in HBM\n",
                ts_ms, ts.intermediateBytes / (1024.0 * 1024.0));

    // SparseTIR: fused RGMS, one kernel per offset, fused launch.
    auto shared = std::make_shared<core::BindingSet>();
    runtime::NDArray x({map.maps.cols * channels},
                       ir::DataType::float32());
    runtime::NDArray w({channels * channels},
                       ir::DataType::float32());
    runtime::NDArray y({map.maps.rows * channels},
                       ir::DataType::float32());
    shared->external("X_data", &x);
    shared->external("W_data", &w);
    shared->external("Y_data", &y);
    shared->scalar("m", map.maps.rows);
    shared->scalar("n", map.maps.cols);
    std::vector<std::shared_ptr<core::BoundKernel>> kernels;
    std::vector<const gpusim::Kernel *> sims;
    for (size_t r = 0; r < map.maps.relations.size(); ++r) {
        const format::Csr &rel = map.maps.relations[r];
        if (rel.nnz() == 0) {
            continue;
        }
        std::vector<int32_t> rows;
        for (int64_t row = 0; row < rel.rows; ++row) {
            if (rel.rowLength(row) > 0) {
                rows.push_back(static_cast<int32_t>(row));
            }
        }
        format::Ell ell = format::ellFromCsrRows(rel, rows, 1);
        auto kernel = core::compileEllRgms(
            ell, channels, channels, shared,
            "c" + std::to_string(r), true, 16);
        kernels.push_back(kernel);
        sims.push_back(&kernel->simKernel());
    }
    double st_ms = device.launchFused(sims).timeMs;
    std::printf("SparseTIR fused RGMS: %.3f ms (%.2fx), no HBM "
                "intermediate\n",
                st_ms, ts_ms / st_ms);
    return 0;
}
