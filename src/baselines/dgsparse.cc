#include "baselines/dgsparse.h"

namespace sparsetir {
namespace baselines {

std::unique_ptr<gpusim::Kernel>
dgsparseSpmm(const format::Csr &a, int64_t feat)
{
    RowSplitParams params;
    params.rowsPerBlock = 8;      // finer granularity than cuSPARSE
    params.sortRows = false;
    params.registerAccum = true;
    params.vectorWidth = 4;
    params.unrollDiscount = 0.4;
    return std::make_unique<RowSplitSpmmKernel>("dgsparse_spmm", a, feat,
                                                params);
}

std::unique_ptr<gpusim::Kernel>
dgsparseSddmmCsr(const format::Csr &a, int64_t feat)
{
    SddmmParams params;
    params.rowParallel = true;
    params.vectorWidth = 4;
    params.twoStageReduction = true;
    return std::make_unique<SddmmKernel>("dgsparse_sddmm_csr", a, feat,
                                         params);
}

std::unique_ptr<gpusim::Kernel>
dgsparseSddmmCoo(const format::Csr &a, int64_t feat)
{
    SddmmParams params;
    params.rowParallel = false;
    params.nnzPerBlock = 16;
    params.vectorWidth = 4;
    params.twoStageReduction = true;
    return std::make_unique<SddmmKernel>("dgsparse_sddmm_coo", a, feat,
                                         params);
}

} // namespace baselines
} // namespace sparsetir
