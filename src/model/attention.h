/**
 * @file
 * Sparse attention operators (paper §4.3.1, Figure 16): batched
 * multi-head SpMM and SDDMM on band (Longformer) and butterfly
 * (Pixelated Butterfly) masks, in CSR and BSR variants.
 */

#ifndef SPARSETIR_MODEL_ATTENTION_H_
#define SPARSETIR_MODEL_ATTENTION_H_

#include <cstdint>

#include "format/csr.h"
#include "gpusim/simulator.h"

namespace sparsetir {
namespace model {

struct AttentionConfig
{
    int64_t seqLen = 4096;
    int heads = 12;
    int64_t headDim = 64;
    int blockSize = 32;
};

struct AttentionTimes
{
    double tritonMs = 0.0;
    double sparsetirCsrMs = 0.0;
    double sparsetirBsrMs = 0.0;
};

/** Multi-head SpMM times on the given mask. */
AttentionTimes attentionSpmm(const format::Csr &mask,
                             const AttentionConfig &config,
                             gpusim::Device &device);

/** Multi-head SDDMM times on the given mask. */
AttentionTimes attentionSddmm(const format::Csr &mask,
                              const AttentionConfig &config,
                              gpusim::Device &device);

} // namespace model
} // namespace sparsetir

#endif // SPARSETIR_MODEL_ATTENTION_H_
