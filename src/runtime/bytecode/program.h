/**
 * @file
 * The bytecode program format executed by the BytecodeVM.
 *
 * A Program is the compiled form of one Stage III PrimFunc: a flat
 * stream of register-based instructions over
 *
 *  - an int64 register file (loop variables, offsets, scalar params,
 *    integer temporaries),
 *  - a double register file (float temporaries; stores round to the
 *    destination buffer's storage width, matching the interpreter),
 *  - a buffer slot table with pre-resolved parameter names, so a warm
 *    dispatch binds arrays by one hash lookup per parameter instead
 *    of one per AST access.
 *
 * Control flow is explicit jumps; loops compile to a head test plus a
 * back-edge, and the outermost blockIdx.x-bound loop carries a
 * kBlockWindow instruction through which RunOptions block windows are
 * applied without recompiling (the unit of host-side parallelism).
 *
 * Buffer slots are rebasable per dispatch: RunOptions::offsetViews
 * names parameter slots whose accesses the VM translates through a
 * runtime::OffsetView into packed storage, so one Program also serves
 * every write-set-sized privatization buffer of a parallel execution
 * — the program itself stays offset-agnostic and immutable.
 *
 * The instruction semantics mirror the tree-walking interpreter
 * exactly — same integer/float promotion, same short-circuit
 * evaluation, same storage rounding — so a Program's results are
 * bitwise identical to interpreting its source function.
 */

#ifndef SPARSETIR_RUNTIME_BYTECODE_PROGRAM_H_
#define SPARSETIR_RUNTIME_BYTECODE_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ir/dtype.h"
#include "ir/expr.h"

namespace sparsetir {
namespace runtime {
namespace bytecode {

/**
 * Opcodes. Register operand conventions: `a` is the destination,
 * `b`/`c`/`d` are sources; slot operands index Program::slots; `imm`
 * carries jump targets, inline constants (kIConst; kFConst stores the
 * double's bit pattern) or an extra register operand.
 */
enum class Op : uint8_t {
    // Control flow (imm = target pc unless noted).
    kJump,
    kJumpIfZero,     // if ireg[a] == 0 goto imm
    kJumpIfNonZero,  // if ireg[a] != 0 goto imm
    kBranchGE,       // if ireg[a] >= ireg[b] goto imm (loop exit test)
    kBlockWindow,    // ireg[a]=lo, ireg[b]=hi from min=ireg[c],
                     // extent=ireg[d] and the VM's run window
    kHalt,

    // Integer register ops (int64 arithmetic, like interpreter Value).
    kIConst,  // ireg[a] = imm
    kIMov,    // ireg[a] = ireg[b]
    kIAdd,
    kISub,
    kIMul,
    kIFloorDiv,
    kIFloorMod,
    kIMin,
    kIMax,
    kIAddImm,  // ireg[a] = ireg[b] + imm
    kICmpEQ,   // ireg[a] = ireg[b] == ireg[c]
    kICmpNE,
    kICmpLT,
    kICmpLE,
    kICmpGT,
    kICmpGE,
    kIBool,  // ireg[a] = ireg[b] != 0
    kIEqz,   // ireg[a] = ireg[b] == 0
    kIAbs,

    // Float register ops (double arithmetic, like interpreter Value).
    kFConst,  // freg[a] = bit_cast<double>(imm)
    kFMov,    // freg[a] = freg[b]
    kFAdd,
    kFSub,
    kFMul,
    kFDiv,
    kFMin,
    kFMax,
    kFCmpEQ,  // ireg[a] = freg[b] == freg[c]
    kFCmpNE,
    kFCmpLT,
    kFCmpLE,
    kFCmpGT,
    kFCmpGE,
    kFAbs,
    kFExp,
    kFLog,
    kFSqrt,

    // Conversions (interpreter asFloat / asInt semantics).
    kCastIF,  // freg[a] = double(ireg[b])
    kCastFI,  // ireg[a] = int64(freg[b])  (C truncation)

    // Memory. b = slot, offsets are element indices, bounds-checked.
    kLoadI,       // ireg[a] = slots[b][ireg[c]]
    kLoadF,       // freg[a] = slots[b][ireg[c]]
    kStoreI,      // slots[b][ireg[c]] = ireg[a]
    kStoreF,      // slots[b][ireg[c]] = freg[a] (rounds to storage)
    kLowerBound,  // ireg[a] = lower_bound(slots[b], lo=ireg[c],
                  //                       hi=ireg[d], val=ireg[imm])
    kUpperBound,
    kAtomicAddI,  // ireg[a] = old; slots[b][ireg[c]] += ireg[d]
    kAtomicAddF,  // freg[a] = old; slots[b][ireg[c]] += freg[d]
    kAlloc,       // (re)allocate scratch slot b with ireg[c] elements,
                  // zero-filled; elem kind in a
};

/** One decoded instruction. */
struct Instr
{
    Op op = Op::kHalt;
    int32_t a = 0;
    int32_t b = 0;
    int32_t c = 0;
    int32_t d = 0;
    int64_t imm = 0;
};

/**
 * Storage element kind of a buffer slot, the same set NDArray can
 * hold (float16 is widened to float32 storage on the host).
 */
enum class ElemKind : uint8_t {
    kF32,
    kF64,
    kI8,
    kI16,
    kI32,
    kI64,
    kBool,
};

/** Bytes per element of a kind. */
int elemKindBytes(ElemKind kind);

/**
 * Storage kind of a dtype, mirroring NDArray's host layout (float16
 * is widened to float32 storage). The single source of truth shared
 * by the compiler (scratch slots) and the VM (bound arrays).
 */
ElemKind elemKindOfDtype(const ir::DataType &dtype);

/** True for the float class (loads/stores go to the freg file). */
inline bool
elemKindIsFloat(ElemKind kind)
{
    return kind == ElemKind::kF32 || kind == ElemKind::kF64;
}

/**
 * One buffer slot: a function parameter or a scratch allocation.
 * Parameter slots may additionally be rebased per dispatch through
 * RunOptions::offsetViews (matched by name at bind time); the
 * compiled access instructions are unchanged — translation happens in
 * the VM's slot resolution.
 */
struct SlotInfo
{
    /** Parameter name (binding key), or the scratch buffer's name. */
    std::string name;
    /**
     * Register-class expectation compiled into every access of this
     * slot (descriptive; from the declared buffer dtype when known).
     * A binding of the other class faults on the slot's first
     * access — not at bind time, preserving the lazy-binding
     * convention for slots this run never touches.
     */
    bool isFloatClass = false;
    /** Scratch allocation (kAlloc-managed) vs bound parameter. */
    bool isAlloc = false;
    /** For scratch slots: storage kind; params use the bound array. */
    ElemKind allocKind = ElemKind::kF32;
};

/** A scalar function parameter pre-assigned to an int register. */
struct ScalarParam
{
    std::string name;
    int32_t reg = 0;
};

/** A compiled Stage III kernel. */
struct Program
{
    /** Source function name (diagnostics). */
    std::string name;
    std::vector<Instr> code;
    /** Parameter slots first, then scratch (alloc) slots. */
    std::vector<SlotInfo> slots;
    int32_t numParamSlots = 0;
    std::vector<ScalarParam> scalarParams;
    int32_t numIRegs = 0;
    int32_t numFRegs = 0;
    /**
     * Constant pool: (register, value) pairs the VM preloads before
     * executing. Pooled constants occupy pinned registers above the
     * working set, so loop bodies never re-materialize immediates.
     */
    std::vector<std::pair<int32_t, int64_t>> iconsts;
    /** Float constants; the value is the double's bit pattern. */
    std::vector<std::pair<int32_t, int64_t>> fconsts;
    /**
     * pc of the kBlockWindow instruction of the outermost
     * blockIdx.x-bound loop; -1 when the kernel has no block grid.
     * Mirrors runtime::findBlockIdxLoop on the source function.
     */
    int32_t blockWindowPc = -1;
    /**
     * Launch info spilled at compile time: the extent expression of
     * that loop (null when blockWindowPc is -1). Warm dispatchers
     * size their grid by evaluating this over scalar bindings
     * (runtime::evalScalarExtent) instead of re-walking the source
     * IR with the interpreter on every request.
     */
    ir::Expr blockExtent;
};

} // namespace bytecode
} // namespace runtime
} // namespace sparsetir

#endif // SPARSETIR_RUNTIME_BYTECODE_PROGRAM_H_
