#include "graph/attention_masks.h"

#include <algorithm>
#include <set>

#include "support/logging.h"

namespace sparsetir {
namespace graph {

using format::Csr;

Csr
bandMask(int64_t n, int64_t band)
{
    ICHECK_GT(n, 0);
    int64_t half = band / 2;
    Csr m;
    m.rows = n;
    m.cols = n;
    m.indptr.push_back(0);
    for (int64_t r = 0; r < n; ++r) {
        int64_t lo = std::max<int64_t>(0, r - half);
        int64_t hi = std::min<int64_t>(n - 1, r + half);
        for (int64_t c = lo; c <= hi; ++c) {
            m.indices.push_back(static_cast<int32_t>(c));
            m.values.push_back(1.0f);
        }
        m.indptr.push_back(static_cast<int32_t>(m.indices.size()));
    }
    return m;
}

Csr
butterflyMask(int64_t n, int64_t block)
{
    ICHECK_GT(block, 0);
    int64_t blocks = (n + block - 1) / block;
    Csr m;
    m.rows = n;
    m.cols = n;
    m.indptr.push_back(0);
    std::set<int64_t> row_blocks;
    for (int64_t r = 0; r < n; ++r) {
        int64_t br = r / block;
        row_blocks.clear();
        // Butterfly connections: blocks at XOR power-of-two strides.
        row_blocks.insert(br);
        for (int64_t stride = 1; stride < blocks; stride <<= 1) {
            row_blocks.insert(br ^ stride);
        }
        for (int64_t bc : row_blocks) {
            if (bc < 0 || bc >= blocks) {
                continue;
            }
            int64_t lo = bc * block;
            int64_t hi = std::min(n, lo + block);
            for (int64_t c = lo; c < hi; ++c) {
                m.indices.push_back(static_cast<int32_t>(c));
                m.values.push_back(1.0f);
            }
        }
        m.indptr.push_back(static_cast<int32_t>(m.indices.size()));
    }
    return m;
}

} // namespace graph
} // namespace sparsetir
