#include "runtime/native/c_emitter.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/expr.h"
#include "ir/stmt.h"
#include "runtime/bytecode/program.h"
#include "runtime/interpreter.h"
#include "runtime/native/abi.h"
#include "support/logging.h"
#include "transform/lower_sparse_buffer.h"

namespace sparsetir {
namespace runtime {
namespace native {

using namespace ir;

namespace {

/**
 * Fixed preamble of every emitted translation unit: the ABI structs
 * (textually identical to abi.h — keep in sync), fault codes, and the
 * runtime helpers that mirror the bytecode VM's slot resolution,
 * typed load/store, binary search, atomic read-modify-write and
 * scratch allocation. Helpers return a fault code (0 = ok) and record
 * (slot, offset) in the context; the host turns codes back into the
 * VM's diagnostics.
 */
const char kPreamble[] = R"(#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef struct {
    unsigned char *base;
    int64_t numel;
    int32_t kind;
    int32_t ebytes;
    int32_t bound;
    int32_t has_view;
    const int64_t *spans;
    const int64_t *bases;
    int64_t num_spans;
} StSlot;

typedef struct {
    StSlot *slots;
    const int64_t *scalars;
    int64_t block_begin;
    int64_t block_end;
    int32_t fault_slot;
    int64_t fault_offset;
} StCtx;

#define ST_OK 0
#define ST_FAULT_ACCESS 1
#define ST_FAULT_WINDOW 2
#define ST_FAULT_DIV0 3
#define ST_FAULT_CLASS 4
#define ST_FAULT_SEARCH 5
#define ST_FAULT_NEGALLOC 6
#define ST_FAULT_OOM 7

#define ST_KF32 0
#define ST_KF64 1
#define ST_KI8 2
#define ST_KI16 3
#define ST_KI32 4
#define ST_KI64 5
#define ST_KBOOL 6

#define ST_CALL(e) do { int32_t st_rc_ = (e); if (st_rc_) return st_rc_; } while (0)

static int32_t st_fault(StCtx *ctx, int32_t code, int32_t slot, int64_t offset) {
    ctx->fault_slot = slot;
    ctx->fault_offset = offset;
    return code;
}

/* Floor division toward negative infinity; callers guard divisor != 0. */
static int64_t st_floordiv(int64_t a, int64_t b) {
    int64_t q = a / b;
    if ((a % b) != 0 && ((a < 0) != (b < 0))) { --q; }
    return q;
}

/* Translate (OffsetView) + bounds-check an access; mirrors the VM's slotAt. */
static int32_t st_resolve(StCtx *ctx, int32_t slot, int64_t *off) {
    const StSlot *s = &ctx->slots[slot];
    int64_t o = *off;
    if (s->has_view) {
        int64_t packed = -1;
        if (s->num_spans == 1) {
            packed = (o >= s->spans[0] && o < s->spans[1]) ? o - s->spans[0] : -1;
        } else {
            int64_t lo = 0;
            int64_t hi = s->num_spans;
            while (lo < hi) {
                int64_t mid = (lo + hi) / 2;
                if (s->spans[2 * mid] <= o) { lo = mid + 1; } else { hi = mid; }
            }
            if (lo != 0 && o < s->spans[2 * (lo - 1) + 1]) {
                packed = s->bases[lo - 1] + (o - s->spans[2 * (lo - 1)]);
            }
        }
        if (packed < 0) { return st_fault(ctx, ST_FAULT_WINDOW, slot, o); }
        o = packed;
    }
    if ((uint64_t)o >= (uint64_t)s->numel) {
        return st_fault(ctx, ST_FAULT_ACCESS, slot, o);
    }
    *off = o;
    return ST_OK;
}

static int32_t st_ld_i(StCtx *ctx, int32_t slot, int64_t off, int64_t *out) {
    ST_CALL(st_resolve(ctx, slot, &off));
    const StSlot *s = &ctx->slots[slot];
    const unsigned char *p = s->base + (uint64_t)off * (uint64_t)s->ebytes;
    switch (s->kind) {
      case ST_KI32: { int32_t v; memcpy(&v, p, 4); *out = v; return ST_OK; }
      case ST_KI64: { int64_t v; memcpy(&v, p, 8); *out = v; return ST_OK; }
      case ST_KI16: { int16_t v; memcpy(&v, p, 2); *out = v; return ST_OK; }
      case ST_KI8: { int8_t v; memcpy(&v, p, 1); *out = v; return ST_OK; }
      case ST_KBOOL: *out = *p != 0; return ST_OK;
      default: return st_fault(ctx, ST_FAULT_CLASS, slot, off);
    }
}

static int32_t st_st_i(StCtx *ctx, int32_t slot, int64_t off, int64_t value) {
    ST_CALL(st_resolve(ctx, slot, &off));
    const StSlot *s = &ctx->slots[slot];
    unsigned char *p = s->base + (uint64_t)off * (uint64_t)s->ebytes;
    switch (s->kind) {
      case ST_KI32: { int32_t v = (int32_t)value; memcpy(p, &v, 4); return ST_OK; }
      case ST_KI64: memcpy(p, &value, 8); return ST_OK;
      case ST_KI16: { int16_t v = (int16_t)value; memcpy(p, &v, 2); return ST_OK; }
      case ST_KI8: { int8_t v = (int8_t)value; memcpy(p, &v, 1); return ST_OK; }
      case ST_KBOOL: *p = value != 0 ? 1 : 0; return ST_OK;
      default: return st_fault(ctx, ST_FAULT_CLASS, slot, off);
    }
}

static int32_t st_ld_f(StCtx *ctx, int32_t slot, int64_t off, double *out) {
    ST_CALL(st_resolve(ctx, slot, &off));
    const StSlot *s = &ctx->slots[slot];
    const unsigned char *p = s->base + (uint64_t)off * (uint64_t)s->ebytes;
    if (s->kind == ST_KF32) { float v; memcpy(&v, p, 4); *out = v; return ST_OK; }
    if (s->kind == ST_KF64) { memcpy(out, p, 8); return ST_OK; }
    return st_fault(ctx, ST_FAULT_CLASS, slot, off);
}

static int32_t st_st_f(StCtx *ctx, int32_t slot, int64_t off, double value) {
    ST_CALL(st_resolve(ctx, slot, &off));
    const StSlot *s = &ctx->slots[slot];
    unsigned char *p = s->base + (uint64_t)off * (uint64_t)s->ebytes;
    if (s->kind == ST_KF32) {
        /* Round to storage width, like the VM and NDArray::setFloat. */
        float v = (float)value;
        memcpy(p, &v, 4);
        return ST_OK;
    }
    if (s->kind == ST_KF64) { memcpy(p, &value, 8); return ST_OK; }
    return st_fault(ctx, ST_FAULT_CLASS, slot, off);
}

static int32_t st_search(StCtx *ctx, int32_t slot, int64_t lo, int64_t hi,
                         int64_t val, int32_t upper, int64_t *out) {
    const StSlot *s = &ctx->slots[slot];
    if (!s->bound) { return st_fault(ctx, ST_FAULT_ACCESS, slot, 0); }
    if (s->has_view) { return st_fault(ctx, ST_FAULT_SEARCH, slot, 0); }
    if (lo < 0 || hi > s->numel) {
        return st_fault(ctx, ST_FAULT_SEARCH, slot, lo < 0 ? lo : hi);
    }
    while (lo < hi) {
        int64_t mid = lo + (hi - lo) / 2;
        int64_t elem;
        ST_CALL(st_ld_i(ctx, slot, mid, &elem));
        int32_t go_right = upper ? (elem <= val) : (elem < val);
        if (go_right) { lo = mid + 1; } else { hi = mid; }
    }
    *out = lo;
    return ST_OK;
}

static int32_t st_atomic_i(StCtx *ctx, int32_t slot, int64_t off, int64_t add,
                           int64_t *out) {
    int64_t old;
    ST_CALL(st_ld_i(ctx, slot, off, &old));
    ST_CALL(st_st_i(ctx, slot, off, old + add));
    *out = old;
    return ST_OK;
}

static int32_t st_atomic_f(StCtx *ctx, int32_t slot, int64_t off, double add,
                           double *out) {
    double old;
    ST_CALL(st_ld_f(ctx, slot, off, &old));
    ST_CALL(st_st_f(ctx, slot, off, old + add));
    *out = old;
    return ST_OK;
}

/* (Re)allocate a scratch slot, zero-filled (kAlloc semantics). */
static int32_t st_alloc(StCtx *ctx, int32_t slot, int64_t n, int32_t kind,
                        int32_t ebytes) {
    StSlot *s = &ctx->slots[slot];
    if (n < 0) { return st_fault(ctx, ST_FAULT_NEGALLOC, slot, n); }
    free(s->base);
    s->base = (unsigned char *)calloc(n > 0 ? (size_t)n : 1, (size_t)ebytes);
    if (s->base == NULL) { return st_fault(ctx, ST_FAULT_OOM, slot, n); }
    s->numel = n;
    s->kind = kind;
    s->ebytes = ebytes;
    s->bound = 1;
    return ST_OK;
}

)";

/**
 * Stage III -> C translator for one function. Statement-oriented
 * emission: every non-leaf subexpression lands in its own named
 * int64_t/double temporary, in the interpreter's left-to-right
 * evaluation order — C's unspecified operand order can then never
 * reorder faults or atomic side effects. Short-circuit And/Or and
 * one-armed Select compile to if/else over temporaries. The typing
 * mirrors the bytecode compiler's isFloatExpr exactly.
 */
class Emitter
{
  public:
    Emitter(const PrimFunc &func, std::string key_tag)
        : func_(func), keyTag_(std::move(key_tag))
    {}

    EmitResult
    run()
    {
        for (const auto &param : func_->params) {
            if (param->dtype.isHandle()) {
                int slot = static_cast<int>(slotNames_.size());
                slotNames_.push_back(param->name);
                slotOf_[param.get()] = slot;
            } else {
                size_t index = scalars_.size();
                scalarIndex_[param.get()] = index;
                scalars_.push_back(param->name);
                vars_[param.get()] =
                    CVar{false, "s" + std::to_string(index)};
            }
        }
        scalarUsed_.assign(scalars_.size(), false);
        numParamSlots_ = static_cast<int>(slotNames_.size());
        blockLoop_ = findBlockIdxLoop(func_->body);
        indent_ = 1;
        if (func_->body != nullptr) {
            emitStmt(func_->body);
        }

        EmitResult result;
        result.name = func_->name;
        result.slotNames = slotNames_;
        result.numParamSlots = numParamSlots_;
        result.hasWindow = blockLoop_ != nullptr;

        std::string decls;
        int published = 0;
        for (size_t i = 0; i < scalars_.size(); ++i) {
            if (!scalarUsed_[i]) {
                continue;
            }
            decls += "    const int64_t s" + std::to_string(i) +
                     " = ctx->scalars[" + std::to_string(published) +
                     "];\n";
            result.scalarNames.push_back(scalars_[i]);
            ++published;
        }

        std::string meta = "sparsetir-native;abi=" +
                           std::to_string(kNativeAbiVersion) +
                           ";tag=" + keyTag_ + ";kernel=" + func_->name;
        std::string src;
        src += "/* SparseTIR native kernel: " + func_->name +
               " (generated) */\n";
        src += kPreamble;
        src += "const char sparsetir_kernel_meta[] = \"" + meta +
               "\";\n\n";
        src += "int32_t sparsetir_kernel_run(StCtx *ctx) {\n";
        src += "    (void)ctx;\n";
        src += decls;
        src += body_;
        src += "    return ST_OK;\n";
        src += "}\n";
        result.source = std::move(src);
        return result;
    }

  private:
    struct CVar
    {
        bool isFloat = false;
        std::string name;
    };

    // -----------------------------------------------------------------
    // Emission plumbing
    // -----------------------------------------------------------------

    void
    line(const std::string &text)
    {
        body_.append(static_cast<size_t>(indent_) * 4, ' ');
        body_ += text;
        body_ += '\n';
    }

    std::string
    tmp()
    {
        return "t" + std::to_string(tmpCount_++);
    }

    std::string
    slotTok(int slot) const
    {
        return std::to_string(slot);
    }

    static std::string
    intLiteral(int64_t value)
    {
        if (value == INT64_MIN) {
            return "(-INT64_C(9223372036854775807) - 1)";
        }
        return "INT64_C(" + std::to_string(value) + ")";
    }

    std::string
    floatLiteral(double value) const
    {
        USER_CHECK(std::isfinite(value))
            << "non-finite float constant not compilable to native "
               "code in '"
            << func_->name << "'";
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%a", value);
        return "(" + std::string(buf) + ")";
    }

    /** Variable token, recording scalar-param usage (lazy binding). */
    std::string
    varTok(const VarNode *var)
    {
        auto used = scalarIndex_.find(var);
        if (used != scalarIndex_.end()) {
            scalarUsed_[used->second] = true;
        }
        auto it = vars_.find(var);
        ICHECK(it != vars_.end())
            << "unbound variable '" << var->name << "'";
        return it->second.name;
    }

    int
    slotFor(const Buffer &buffer)
    {
        auto it = slotOf_.find(buffer->data.get());
        ICHECK(it != slotOf_.end())
            << "no storage bound for buffer '" << buffer->name << "'";
        return it->second;
    }

    // -----------------------------------------------------------------
    // Static typing (identical to the bytecode compiler's)
    // -----------------------------------------------------------------

    bool
    isFloatExpr(const Expr &e)
    {
        switch (e->kind) {
          case ExprKind::kIntImm:
            return false;
          case ExprKind::kFloatImm:
            return true;
          case ExprKind::kVar: {
            auto op = static_cast<const VarNode *>(e.get());
            auto it = vars_.find(op);
            ICHECK(it != vars_.end())
                << "unbound variable '" << op->name << "'";
            return it->second.isFloat;
          }
          case ExprKind::kAdd:
          case ExprKind::kSub:
          case ExprKind::kMul:
          case ExprKind::kMin:
          case ExprKind::kMax: {
            auto op = static_cast<const BinaryNode *>(e.get());
            return isFloatExpr(op->a) || isFloatExpr(op->b);
          }
          case ExprKind::kDiv:
            // `/` always computes in float, like the interpreter.
            return true;
          case ExprKind::kFloorDiv:
          case ExprKind::kFloorMod:
          case ExprKind::kEQ:
          case ExprKind::kNE:
          case ExprKind::kLT:
          case ExprKind::kLE:
          case ExprKind::kGT:
          case ExprKind::kGE:
          case ExprKind::kAnd:
          case ExprKind::kOr:
          case ExprKind::kNot:
            return false;
          case ExprKind::kSelect: {
            auto op = static_cast<const SelectNode *>(e.get());
            return isFloatExpr(op->trueValue) ||
                   isFloatExpr(op->falseValue);
          }
          case ExprKind::kCast:
            return static_cast<const CastNode *>(e.get())
                ->dtype.isFloat();
          case ExprKind::kBufferLoad:
            return static_cast<const BufferLoadNode *>(e.get())
                ->buffer->dtype.isFloat();
          case ExprKind::kCall: {
            auto op = static_cast<const CallNode *>(e.get());
            switch (op->op) {
              case Builtin::kLowerBound:
              case Builtin::kUpperBound:
                return false;
              case Builtin::kExp:
              case Builtin::kLog:
              case Builtin::kSqrt:
                return true;
              case Builtin::kAbs:
                return isFloatExpr(op->args[0]);
              case Builtin::kAtomicAdd:
                ICHECK(op->bufferArg != nullptr);
                return op->bufferArg->dtype.isFloat();
              case Builtin::kExtern:
                USER_CHECK(false) << "cannot compile extern call '"
                                  << op->name << "' to native code";
            }
            return false;
          }
          default:
            USER_CHECK(false) << "expression kind not compilable to "
                                 "native code in '"
                              << func_->name << "'";
        }
        return false;
    }

    // -----------------------------------------------------------------
    // Expressions. emitI/emitF return a C token (temp name, variable
    // or literal) of type int64_t / double respectively.
    // -----------------------------------------------------------------

    std::string
    emitI(const Expr &e)
    {
        if (isFloatExpr(e)) {
            std::string f = emitF(e);
            std::string t = tmp();
            // C truncation, the VM's kCastFI.
            line("int64_t " + t + " = (int64_t)" + f + ";");
            return t;
        }
        switch (e->kind) {
          case ExprKind::kIntImm:
            return intLiteral(
                static_cast<const IntImmNode *>(e.get())->value);
          case ExprKind::kVar:
            return varTok(static_cast<const VarNode *>(e.get()));
          case ExprKind::kNot: {
            std::string a =
                emitI(static_cast<const NotNode *>(e.get())->a);
            std::string t = tmp();
            line("int64_t " + t + " = (" + a + " == 0) ? 1 : 0;");
            return t;
          }
          case ExprKind::kSelect:
            return emitSelect(static_cast<const SelectNode *>(e.get()),
                              false);
          case ExprKind::kCast:
            // Int-targeted cast of an int value is the identity;
            // float sources took the conversion path above.
            return emitI(static_cast<const CastNode *>(e.get())->value);
          case ExprKind::kBufferLoad: {
            auto op = static_cast<const BufferLoadNode *>(e.get());
            std::string off = emitOffset(op->buffer, op->indices);
            int slot = slotFor(op->buffer);
            std::string t = tmp();
            line("int64_t " + t + " = 0;");
            line("ST_CALL(st_ld_i(ctx, " + slotTok(slot) + ", " + off +
                 ", &" + t + "));");
            return t;
          }
          case ExprKind::kCall:
            return emitCallI(static_cast<const CallNode *>(e.get()));
          case ExprKind::kAnd:
          case ExprKind::kOr:
            return emitShortCircuit(
                static_cast<const BinaryNode *>(e.get()));
          case ExprKind::kEQ:
          case ExprKind::kNE:
          case ExprKind::kLT:
          case ExprKind::kLE:
          case ExprKind::kGT:
          case ExprKind::kGE:
            return emitCompare(
                static_cast<const BinaryNode *>(e.get()));
          case ExprKind::kAdd:
          case ExprKind::kSub:
          case ExprKind::kMul:
          case ExprKind::kMin:
          case ExprKind::kMax: {
            auto op = static_cast<const BinaryNode *>(e.get());
            std::string a = emitI(op->a);
            std::string b = emitI(op->b);
            std::string t = tmp();
            line("int64_t " + t + " = " + intArith(e->kind, a, b) +
                 ";");
            return t;
          }
          case ExprKind::kFloorDiv:
          case ExprKind::kFloorMod: {
            auto op = static_cast<const BinaryNode *>(e.get());
            std::string a = emitI(op->a);
            std::string b = emitI(op->b);
            line("if (" + b + " == 0) { return st_fault(ctx, "
                 "ST_FAULT_DIV0, -1, 0); }");
            std::string t = tmp();
            if (e->kind == ExprKind::kFloorDiv) {
                line("int64_t " + t + " = st_floordiv(" + a + ", " +
                     b + ");");
            } else {
                line("int64_t " + t + " = " + a + " - st_floordiv(" +
                     a + ", " + b + ") * " + b + ";");
            }
            return t;
          }
          default:
            USER_CHECK(false) << "expression kind not compilable to "
                                 "native code in '"
                              << func_->name << "'";
        }
        return "0";
    }

    std::string
    emitF(const Expr &e)
    {
        if (!isFloatExpr(e)) {
            std::string i = emitI(e);
            std::string t = tmp();
            line("double " + t + " = (double)" + i + ";");
            return t;
        }
        switch (e->kind) {
          case ExprKind::kFloatImm:
            return floatLiteral(
                static_cast<const FloatImmNode *>(e.get())->value);
          case ExprKind::kVar:
            return varTok(static_cast<const VarNode *>(e.get()));
          case ExprKind::kSelect:
            return emitSelect(static_cast<const SelectNode *>(e.get()),
                              true);
          case ExprKind::kCast:
            // Float-targeted cast: int sources converted above;
            // float-of-float is the identity.
            return emitF(static_cast<const CastNode *>(e.get())->value);
          case ExprKind::kBufferLoad: {
            auto op = static_cast<const BufferLoadNode *>(e.get());
            std::string off = emitOffset(op->buffer, op->indices);
            int slot = slotFor(op->buffer);
            std::string t = tmp();
            line("double " + t + " = 0;");
            line("ST_CALL(st_ld_f(ctx, " + slotTok(slot) + ", " + off +
                 ", &" + t + "));");
            return t;
          }
          case ExprKind::kCall:
            return emitCallF(static_cast<const CallNode *>(e.get()));
          case ExprKind::kAdd:
          case ExprKind::kSub:
          case ExprKind::kMul:
          case ExprKind::kDiv:
          case ExprKind::kMin:
          case ExprKind::kMax: {
            auto op = static_cast<const BinaryNode *>(e.get());
            std::string a = emitF(op->a);
            std::string b = emitF(op->b);
            std::string t = tmp();
            line("double " + t + " = " + floatArith(e->kind, a, b) +
                 ";");
            return t;
          }
          default:
            USER_CHECK(false) << "expression kind not compilable to "
                                 "native code in '"
                              << func_->name << "'";
        }
        return "0";
    }

    static std::string
    intArith(ExprKind kind, const std::string &a, const std::string &b)
    {
        switch (kind) {
          case ExprKind::kAdd:
            return a + " + " + b;
          case ExprKind::kSub:
            return a + " - " + b;
          case ExprKind::kMul:
            return a + " * " + b;
          case ExprKind::kMin:
            return "(" + b + " < " + a + ") ? " + b + " : " + a;
          default:  // kMax
            return "(" + a + " < " + b + ") ? " + b + " : " + a;
        }
    }

    /**
     * Float min/max spelled exactly as std::min/std::max resolve, so
     * NaN propagation and signed-zero selection are bitwise the
     * interpreter's.
     */
    static std::string
    floatArith(ExprKind kind, const std::string &a,
               const std::string &b)
    {
        switch (kind) {
          case ExprKind::kAdd:
            return a + " + " + b;
          case ExprKind::kSub:
            return a + " - " + b;
          case ExprKind::kMul:
            return a + " * " + b;
          case ExprKind::kDiv:
            return a + " / " + b;
          case ExprKind::kMin:
            return "(" + b + " < " + a + ") ? " + b + " : " + a;
          default:  // kMax
            return "(" + a + " < " + b + ") ? " + b + " : " + a;
        }
    }

    static const char *
    cmpOp(ExprKind kind)
    {
        switch (kind) {
          case ExprKind::kEQ:
            return "==";
          case ExprKind::kNE:
            return "!=";
          case ExprKind::kLT:
            return "<";
          case ExprKind::kLE:
            return "<=";
          case ExprKind::kGT:
            return ">";
          default:
            return ">=";
        }
    }

    /** EQ..GE with the interpreter's float promotion; result int. */
    std::string
    emitCompare(const BinaryNode *op)
    {
        bool flt = isFloatExpr(op->a) || isFloatExpr(op->b);
        std::string a = flt ? emitF(op->a) : emitI(op->a);
        std::string b = flt ? emitF(op->b) : emitI(op->b);
        std::string t = tmp();
        line("int64_t " + t + " = (" + a + " " + cmpOp(op->kind) +
             " " + b + ") ? 1 : 0;");
        return t;
    }

    /** kAnd/kOr: the right operand must not execute when the left
     *  decides, exactly like the interpreter. */
    std::string
    emitShortCircuit(const BinaryNode *op)
    {
        bool is_and = op->kind == ExprKind::kAnd;
        std::string t = tmp();
        line("int64_t " + t + " = " + (is_and ? "0" : "1") + ";");
        std::string a = emitI(op->a);
        line("if (" + a + (is_and ? " != 0" : " == 0") + ") {");
        ++indent_;
        std::string b = emitI(op->b);
        line(t + " = (" + b + " != 0) ? 1 : 0;");
        --indent_;
        line("}");
        return t;
    }

    /** Select evaluates only the taken arm, like the interpreter. */
    std::string
    emitSelect(const SelectNode *op, bool flt)
    {
        std::string t = tmp();
        line(std::string(flt ? "double " : "int64_t ") + t + " = 0;");
        std::string c = emitI(op->cond);
        line("if (" + c + " != 0) {");
        ++indent_;
        std::string tv = flt ? emitF(op->trueValue)
                             : emitI(op->trueValue);
        line(t + " = " + tv + ";");
        --indent_;
        line("} else {");
        ++indent_;
        std::string fv = flt ? emitF(op->falseValue)
                             : emitI(op->falseValue);
        line(t + " = " + fv + ";");
        --indent_;
        line("}");
        return t;
    }

    /**
     * Flat element offset of an access: Stage III accesses carry one
     * index; multi-dimensional dense accesses emit the row-major
     * linearization (per-dimension extents evaluated at run time).
     */
    std::string
    emitOffset(const Buffer &buffer, const std::vector<Expr> &indices)
    {
        if (indices.size() == 1) {
            return emitI(indices[0]);
        }
        USER_CHECK(!buffer->isSparse())
            << "native backend requires lowered (dense) buffer "
               "access for '"
            << buffer->name << "'; run sparse buffer lowering first";
        ICHECK_EQ(indices.size(), buffer->shape.size());
        Expr offset = indices[0];
        for (size_t d = 1; d < indices.size(); ++d) {
            offset = add(mul(offset, buffer->shape[d]), indices[d]);
        }
        return emitI(offset);
    }

    std::string
    emitCallI(const CallNode *op)
    {
        switch (op->op) {
          case Builtin::kLowerBound:
          case Builtin::kUpperBound: {
            ICHECK(op->bufferArg != nullptr);
            ICHECK_EQ(op->args.size(), 3u);
            int slot = slotFor(op->bufferArg);
            std::string lo = emitI(op->args[0]);
            std::string hi = emitI(op->args[1]);
            std::string val = emitI(op->args[2]);
            std::string t = tmp();
            line("int64_t " + t + " = 0;");
            line("ST_CALL(st_search(ctx, " + slotTok(slot) + ", " +
                 lo + ", " + hi + ", " + val + ", " +
                 (op->op == Builtin::kUpperBound ? "1" : "0") + ", &" +
                 t + "));");
            return t;
          }
          case Builtin::kAbs: {
            std::string a = emitI(op->args[0]);
            std::string t = tmp();
            line("int64_t " + t + " = (" + a + " < 0) ? -" + a +
                 " : " + a + ";");
            return t;
          }
          case Builtin::kAtomicAdd: {
            ICHECK(op->bufferArg != nullptr);
            ICHECK_EQ(op->args.size(), 2u);
            int slot = slotFor(op->bufferArg);
            std::string off = emitI(op->args[0]);
            std::string v = emitI(op->args[1]);
            std::string t = tmp();
            line("int64_t " + t + " = 0;");
            line("ST_CALL(st_atomic_i(ctx, " + slotTok(slot) + ", " +
                 off + ", " + v + ", &" + t + "));");
            return t;
          }
          default:
            USER_CHECK(false)
                << "cannot compile call in integer context in '"
                << func_->name << "'";
        }
        return "0";
    }

    std::string
    emitCallF(const CallNode *op)
    {
        switch (op->op) {
          case Builtin::kExp:
          case Builtin::kLog:
          case Builtin::kSqrt: {
            std::string a = emitF(op->args[0]);
            const char *fn = op->op == Builtin::kExp
                                 ? "exp"
                                 : (op->op == Builtin::kLog ? "log"
                                                            : "sqrt");
            std::string t = tmp();
            line("double " + t + " = " + fn + "(" + a + ");");
            return t;
          }
          case Builtin::kAbs: {
            std::string a = emitF(op->args[0]);
            std::string t = tmp();
            line("double " + t + " = fabs(" + a + ");");
            return t;
          }
          case Builtin::kAtomicAdd: {
            ICHECK(op->bufferArg != nullptr);
            ICHECK_EQ(op->args.size(), 2u);
            int slot = slotFor(op->bufferArg);
            std::string off = emitI(op->args[0]);
            std::string v = emitF(op->args[1]);
            std::string t = tmp();
            line("double " + t + " = 0;");
            line("ST_CALL(st_atomic_f(ctx, " + slotTok(slot) + ", " +
                 off + ", " + v + ", &" + t + "));");
            return t;
          }
          default:
            USER_CHECK(false)
                << "cannot compile call in float context in '"
                << func_->name << "'";
        }
        return "0";
    }

    // -----------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------

    void
    emitStmt(const Stmt &s)
    {
        switch (s->kind) {
          case StmtKind::kBufferStore: {
            auto op = static_cast<const BufferStoreNode *>(s.get());
            int slot = slotFor(op->buffer);
            // Value before indices, mirroring the interpreter's
            // evaluation order (observable when the value contains
            // an atomic update the indices then read).
            if (op->buffer->dtype.isFloat()) {
                std::string v = emitF(op->value);
                std::string off = emitOffset(op->buffer, op->indices);
                line("ST_CALL(st_st_f(ctx, " + slotTok(slot) + ", " +
                     off + ", " + v + "));");
            } else {
                std::string v = emitI(op->value);
                std::string off = emitOffset(op->buffer, op->indices);
                line("ST_CALL(st_st_i(ctx, " + slotTok(slot) + ", " +
                     off + ", " + v + "));");
            }
            break;
          }
          case StmtKind::kSeq: {
            auto op = static_cast<const SeqStmtNode *>(s.get());
            for (const auto &child : op->seq) {
                emitStmt(child);
            }
            break;
          }
          case StmtKind::kFor:
            emitFor(static_cast<const ForNode *>(s.get()));
            break;
          case StmtKind::kBlock: {
            auto op = static_cast<const BlockNode *>(s.get());
            if (op->init != nullptr) {
                // Fire the init only when every in-scope reduce var
                // is at zero; vars not in scope never veto.
                std::string cond;
                for (const auto &rv : op->reduceVars) {
                    auto it = vars_.find(rv.get());
                    if (it != vars_.end()) {
                        if (!cond.empty()) {
                            cond += " && ";
                        }
                        cond += "(" + it->second.name + " == 0)";
                    }
                }
                if (cond.empty()) {
                    emitStmt(op->init);
                } else {
                    line("if (" + cond + ") {");
                    ++indent_;
                    emitStmt(op->init);
                    --indent_;
                    line("}");
                }
            }
            emitStmt(op->body);
            break;
          }
          case StmtKind::kIfThenElse: {
            auto op = static_cast<const IfThenElseNode *>(s.get());
            std::string c = emitI(op->cond);
            line("if (" + c + " != 0) {");
            ++indent_;
            emitStmt(op->thenBody);
            --indent_;
            if (op->elseBody != nullptr) {
                line("} else {");
                ++indent_;
                emitStmt(op->elseBody);
                --indent_;
            }
            line("}");
            break;
          }
          case StmtKind::kLetStmt: {
            auto op = static_cast<const LetStmtNode *>(s.get());
            bool flt = isFloatExpr(op->value);
            std::string v = flt ? emitF(op->value) : emitI(op->value);
            std::string name = "l" + std::to_string(tmpCount_++);
            line(std::string(flt ? "double " : "int64_t ") + name +
                 " = " + v + ";");
            vars_[op->letVar.get()] = CVar{flt, name};
            emitStmt(op->body);
            vars_.erase(op->letVar.get());
            break;
          }
          case StmtKind::kAllocate: {
            auto op = static_cast<const AllocateNode *>(s.get());
            int slot = static_cast<int>(slotNames_.size());
            slotNames_.push_back(op->buffer->name);
            bytecode::ElemKind kind =
                bytecode::elemKindOfDtype(op->buffer->dtype);
            Expr size = op->buffer->shape.empty()
                            ? intImm(1)
                            : op->buffer->shape[0];
            for (size_t d = 1; d < op->buffer->shape.size(); ++d) {
                size = mul(size, op->buffer->shape[d]);
            }
            std::string n = emitI(size);
            line("ST_CALL(st_alloc(ctx, " + slotTok(slot) + ", " + n +
                 ", " + std::to_string(static_cast<int>(kind)) + ", " +
                 std::to_string(bytecode::elemKindBytes(kind)) +
                 "));");
            slotOf_[op->buffer->data.get()] = slot;
            emitStmt(op->body);
            slotOf_.erase(op->buffer->data.get());
            break;
          }
          case StmtKind::kEvaluate: {
            auto op = static_cast<const EvaluateNode *>(s.get());
            if (isFloatExpr(op->value)) {
                std::string v = emitF(op->value);
                line("(void)" + v + ";");
            } else {
                std::string v = emitI(op->value);
                line("(void)" + v + ";");
            }
            break;
          }
          case StmtKind::kSparseIteration:
            USER_CHECK(false)
                << "cannot compile Stage I sparse iteration '"
                << static_cast<const SparseIterationNode *>(s.get())
                       ->name
                << "' to native code; lower the function first";
            break;
          default:
            ICHECK(false) << "unhandled stmt kind";
        }
    }

    void
    emitFor(const ForNode *op)
    {
        std::string mn = emitI(op->minValue);
        std::string ext = emitI(op->extent);
        std::string lo = tmp();
        std::string hi = tmp();
        line("int64_t " + lo + " = " + mn + ";");
        line("int64_t " + hi + " = " + mn + " + " + ext + ";");
        if (op == blockLoop_) {
            // The kBlockWindow contract: clamp the outermost
            // blockIdx.x loop to the dispatch's [blockBegin,
            // blockEnd) grid chunk.
            line("if (ctx->block_end >= 0) {");
            ++indent_;
            line(lo + " = " + mn +
                 " + (ctx->block_begin > 0 ? ctx->block_begin : 0);");
            std::string h = tmp();
            line("int64_t " + h + " = " + mn + " + ctx->block_end;");
            line("if (" + h + " < " + hi + ") { " + hi + " = " + h +
                 "; }");
            --indent_;
            line("}");
        }
        std::string v = "v" + std::to_string(tmpCount_++);
        line("for (int64_t " + v + " = " + lo + "; " + v + " < " + hi +
             "; ++" + v + ") {");
        ++indent_;
        vars_[op->loopVar.get()] = CVar{false, v};
        emitStmt(op->body);
        vars_.erase(op->loopVar.get());
        --indent_;
        line("}");
    }

    PrimFunc func_;
    std::string keyTag_;
    std::string body_;
    int indent_ = 1;
    int tmpCount_ = 0;
    std::vector<std::string> slotNames_;
    int numParamSlots_ = 0;
    std::vector<std::string> scalars_;
    std::unordered_map<const VarNode *, size_t> scalarIndex_;
    std::vector<bool> scalarUsed_;
    std::unordered_map<const VarNode *, CVar> vars_;
    std::unordered_map<const VarNode *, int> slotOf_;
    const ForNode *blockLoop_ = nullptr;
};

} // namespace

EmitResult
emitC(const ir::PrimFunc &func, const std::string &key_tag)
{
    std::string diag = transform::stage3ExecDiagnostic(func);
    USER_CHECK(diag.empty())
        << "cannot compile '" << func->name << "' to native code: "
        << diag;
    Emitter emitter(func, key_tag);
    return emitter.run();
}

} // namespace native
} // namespace runtime
} // namespace sparsetir
