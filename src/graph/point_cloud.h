/**
 * @file
 * Synthetic LiDAR-like point clouds and sparse-convolution kernel
 * maps, standing in for SemanticKITTI (paper §4.4.2).
 */

#ifndef SPARSETIR_GRAPH_POINT_CLOUD_H_
#define SPARSETIR_GRAPH_POINT_CLOUD_H_

#include <array>
#include <cstdint>
#include <vector>

#include "format/relational.h"

namespace sparsetir {
namespace graph {

/** One voxelized scene. */
struct VoxelScene
{
    /** Occupied voxel coordinates (x, y, z). */
    std::vector<std::array<int32_t, 3>> voxels;
};

/**
 * Synthetic outdoor scene: a ground plane, a few walls and scattered
 * objects, voxelized on a grid of the given resolution. Produces on
 * the order of `target_voxels` occupied voxels.
 */
VoxelScene syntheticLidarScene(int64_t target_voxels, uint64_t seed);

/**
 * Kernel map for a 3^3 sparse convolution (stride 1, submanifold):
 * one relation per kernel offset; relation r maps output voxel i to
 * input voxel j when input(i + offset_r) == j. Every row has at most
 * one entry — the ELL(1) structure of Figure 22.
 */
format::KernelMap buildKernelMap(const VoxelScene &scene);

} // namespace graph
} // namespace sparsetir

#endif // SPARSETIR_GRAPH_POINT_CLOUD_H_
