#include "model/rgcn.h"

#include "baselines/cublas.h"
#include "baselines/models.h"
#include "baselines/vendor_constants.h"
#include "core/pipeline.h"
#include "format/hyb.h"
#include "observe/trace.h"
#include "support/logging.h"

namespace sparsetir {
namespace model {

using namespace baselines;

int32_t
rgcnBucketCap(const format::Csr &rel, int bucket_cap_log2)
{
    return std::min(bucket_cap_log2, format::hybDefaultK(rel) + 1);
}

int
rgcnRowsPerBlock(int width)
{
    return static_cast<int>(
        std::max<int64_t>(1, 32 / std::max(width, 1)));
}

RgcnResult
rgcnSparseTirNaive(const format::RelationalCsr &graph, int64_t feat,
                   gpusim::Device &device)
{
    RgcnResult result;
    gpusim::SimOptions opts;
    opts.efficiency = kSparseTirEfficiency;
    int64_t footprint =
        graph.cols * feat * 4 + graph.rows * feat * 4;  // X and Y
    for (size_t r = 0; r < graph.relations.size(); ++r) {
        const format::Csr &rel = graph.relations[r];
        if (rel.nnz() == 0) {
            continue;
        }
        DenseGemmKernel gemm("st_naive_gemm", graph.cols, feat, feat,
                             false);
        result.timeMs += device.launch(gemm, opts).timeMs;
        RowSplitParams spmm_params;
        spmm_params.rowsPerBlock = 16;
        spmm_params.vectorWidth = 4;
        spmm_params.unrollDiscount = 0.4;
        RowSplitSpmmKernel spmm("st_naive_spmm", rel, feat,
                                spmm_params);
        result.timeMs += device.launch(spmm, opts).timeMs;
        footprint += graph.cols * feat * 4;  // T_r in HBM
        footprint += rel.nnz() * 8 + (rel.rows + 1) * 4;
    }
    footprint += static_cast<int64_t>(graph.relations.size()) * feat *
                 feat * 4;  // W
    result.footprintBytes = footprint;
    return result;
}

RgcnResult
rgcnSparseTirHyb(const format::RelationalCsr &graph, int64_t feat,
                 gpusim::Device &device, bool tensor_cores,
                 int bucket_cap_log2)
{
    RgcnResult result;
    gpusim::SimOptions opts;
    opts.efficiency = kSparseTirEfficiency;

    // Shared feature/weight/output arrays (no T: fused kernel).
    auto shared = std::make_shared<core::BindingSet>();
    runtime::NDArray x({graph.cols * feat}, ir::DataType::float32());
    runtime::NDArray w({feat * feat}, ir::DataType::float32());
    runtime::NDArray y({graph.rows * feat}, ir::DataType::float32());
    shared->external("X_data", &x);
    shared->external("W_data", &w);
    shared->external("Y_data", &y);
    shared->scalar("m", graph.rows);
    shared->scalar("n", graph.cols);

    int64_t footprint = (graph.cols + graph.rows) * feat * 4 +
                        static_cast<int64_t>(graph.relations.size()) *
                            feat * feat * 4;
    if (tensor_cores) {
        // Half-precision copies of operands (paper: extra footprint
        // from fp16/fp32 conversion).
        footprint += (graph.cols + graph.rows) * feat * 2;
    }

    std::vector<std::shared_ptr<core::BoundKernel>> kernels;
    std::vector<const gpusim::Kernel *> sims;
    for (size_t r = 0; r < graph.relations.size(); ++r) {
        const format::Csr &rel = graph.relations[r];
        if (rel.nnz() == 0) {
            continue;
        }
        format::Hyb hyb = format::hybFromCsr(
            rel, 1, rgcnBucketCap(rel, bucket_cap_log2));
        for (size_t b = 0; b < hyb.buckets[0].size(); ++b) {
            const format::Ell &bucket = hyb.buckets[0][b];
            if (bucket.numRows() == 0) {
                continue;
            }
            std::string suffix =
                "r" + std::to_string(r) + "b" + std::to_string(b);
            int rows_per_block = rgcnRowsPerBlock(bucket.width);
            auto kernel = core::compileEllRgms(
                bucket, feat, feat, shared, suffix, tensor_cores,
                rows_per_block);
            kernels.push_back(kernel);
            sims.push_back(&kernel->simKernel());
            footprint += bucket.numRows() *
                         (4 + bucket.width * (tensor_cores ? 6 : 8));
        }
    }
    // Horizontally fused launch: one overhead for all buckets.
    result.timeMs = device.launchFused(sims, opts).timeMs;
    result.footprintBytes = footprint;
    return result;
}

dfg::OpGraph
buildRgcnGraph(const std::vector<dfg::PatternRef> &relations,
               int64_t feat_in, int64_t feat_out)
{
    SPARSETIR_TRACE_SCOPE("dfg", "dfg.graph_build");
    USER_CHECK(!relations.empty())
        << "RGCN graph needs at least one relation";
    dfg::OpGraph graph;
    int x = graph.denseInput("x", relations[0]->cols, feat_in);
    int w = graph.denseInput("w", feat_in, feat_out);
    int combined = -1;
    for (const dfg::PatternRef &rel : relations) {
        if (rel->nnz() == 0) {
            continue;
        }
        int h = graph.aggregate(rel, x, /*mean=*/false);
        combined = combined < 0 ? h : graph.add(combined, h);
    }
    USER_CHECK(combined >= 0)
        << "RGCN graph has no edges in any relation";
    int out = graph.update(combined, w);
    graph.markOutput(out, "out");
    return graph;
}

engine::DispatchInfo
rgcnLayer(engine::Engine &engine,
          const std::vector<dfg::PatternRef> &relations,
          int64_t feat_in, int64_t feat_out, runtime::NDArray *x,
          runtime::NDArray *w, runtime::NDArray *out)
{
    dfg::OpGraph graph = buildRgcnGraph(relations, feat_in, feat_out);
    return engine.dispatchGraph(
        graph, {{"x", x}, {"w", w}, {"out", out}},
        engine::GraphDispatchOptions());
}

} // namespace model
} // namespace sparsetir
