#include "dfg/lower.h"

#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "ir/buffer.h"
#include "ir/expr.h"
#include "ir/stmt.h"
#include "support/logging.h"
#include "transform/fuse_regions.h"

namespace sparsetir {
namespace dfg {

using namespace ir;

namespace {

/**
 * Flat float/int buffer whose handle param carries the buffer name
 * itself (the binding key), matching the core kernels' convention
 * ("J_indptr" binds the param named "J_indptr").
 */
Buffer
flatBuffer(const std::string &name, int64_t numel, DataType dtype)
{
    USER_CHECK(numel >= 0 &&
               numel <= std::numeric_limits<int32_t>::max())
        << "buffer '" << name << "' with " << numel
        << " elements exceeds the int32 index space";
    auto node = std::make_shared<BufferNode>();
    node->data = var(name, DataType::handle());
    node->name = name;
    node->dtype = dtype;
    node->shape = {intImm(numel)};
    return node;
}

/** Interior values carry generated names; named values their own. */
std::string
valueBufferName(const ValueDesc &desc, int vid)
{
    return desc.name.empty() ? "t_" + std::to_string(vid) : desc.name;
}

int64_t
valueNumel(const ValueDesc &desc)
{
    return desc.edge ? desc.pattern->nnz() : desc.rows * desc.cols;
}

/**
 * Shared lowering state: one row variable and one buffer object per
 * value / structure array, reused by every node kernel so the fusion
 * pass's name-keyed dedup and the structural index folding see
 * pointer-identical vars and buffers.
 */
struct LowerCtx
{
    const OpGraph *graph = nullptr;
    Var row;
    std::vector<Buffer> valueBuf;
    std::vector<PatternRef> patterns;
    std::vector<Buffer> indptrBuf;
    std::vector<Buffer> indicesBuf;

    int
    patternId(const PatternRef &pattern)
    {
        for (size_t i = 0; i < patterns.size(); ++i) {
            if (patterns[i].get() == pattern.get()) {
                return static_cast<int>(i);
            }
        }
        int id = static_cast<int>(patterns.size());
        std::string stem = "J" + std::to_string(id);
        patterns.push_back(pattern);
        indptrBuf.push_back(
            flatBuffer(stem + "_indptr",
                       static_cast<int64_t>(pattern->indptr.size()),
                       DataType::int32()));
        indicesBuf.push_back(flatBuffer(stem + "_indices",
                                        pattern->nnz(),
                                        DataType::int32()));
        return id;
    }
};

/** One-element float32 local accumulator. */
Buffer
accBuffer(const std::string &name)
{
    auto node = std::make_shared<BufferNode>();
    node->data = var(name, DataType::handle());
    node->name = name;
    node->dtype = DataType::float32();
    node->shape = {intImm(1)};
    node->scope = MemScope::kLocal;
    return node;
}

/**
 * Emission helpers for one node. Everything row-relative is written
 * in terms of ctx.row; the `J_indptr[i] + r` position and the
 * `r < J_indptr[i+1] - J_indptr[i]` guard are re-emitted structurally
 * identical at every use so the affine prover's interning and the
 * fusion pass's index folding both match them.
 */
struct NodeEmit
{
    LowerCtx *ctx;
    const Node *node;
    int nid = 0;
    int pid = -1;

    Var
    loopVar(const char *stem) const
    {
        return var(std::string(stem) + std::to_string(nid));
    }

    Expr
    width() const
    {
        const Buffer &jp = ctx->indptrBuf[static_cast<size_t>(pid)];
        return sub(bufferLoad(jp, {add(ctx->row, intImm(1))}),
                   bufferLoad(jp, {ctx->row}));
    }

    /** Flat edge position of (row, r). */
    Expr
    pos(const Var &r) const
    {
        const Buffer &jp = ctx->indptrBuf[static_cast<size_t>(pid)];
        return add(bufferLoad(jp, {ctx->row}), r);
    }

    /** Column id at (row, r). */
    Expr
    col(const Var &r) const
    {
        return bufferLoad(ctx->indicesBuf[static_cast<size_t>(pid)],
                          {pos(r)});
    }

    /** Padded inner loop over positions, body guarded by the width. */
    Stmt
    rowPositions(const Var &r, Stmt body) const
    {
        int64_t maxw = ctx->patterns[static_cast<size_t>(pid)]
                           ->maxRowNnz();
        return forLoop(r, intImm(0), intImm(maxw),
                       ifThenElse(lt(r, width()), std::move(body)));
    }

    const Buffer &
    in(size_t which) const
    {
        return ctx->valueBuf[static_cast<size_t>(
            node->inputs[which])];
    }

    const Buffer &
    out() const
    {
        return ctx->valueBuf[static_cast<size_t>(node->output)];
    }

    /** Flat row-major offset (ctx.row, k) of a dense value. */
    Expr
    denseAt(int vid, const Var &k) const
    {
        const ValueDesc &desc = ctx->graph->value(vid);
        return add(mul(ctx->row, intImm(desc.cols)), k);
    }
};

Stmt
sddmmRowBody(const NodeEmit &e)
{
    const OpGraph &g = *e.ctx->graph;
    int64_t feat = g.value(e.node->inputs[0]).cols;
    int64_t n = g.value(e.node->inputs[1]).cols;
    Buffer acc = accBuffer("acc" + std::to_string(e.nid));
    Var r = e.loopVar("r");
    Var k = e.loopVar("k");
    Expr x = bufferLoad(e.in(0),
                        {add(mul(e.ctx->row, intImm(feat)), k)});
    Expr y = bufferLoad(e.in(1), {add(mul(k, intImm(n)), e.col(r))});
    Stmt inner = seq({
        bufferStore(acc, {intImm(0)}, floatImm(0.0)),
        forLoop(k, intImm(0), intImm(feat),
                bufferStore(acc, {intImm(0)},
                            add(bufferLoad(acc, {intImm(0)}),
                                mul(x, y)))),
        bufferStore(e.out(), {e.pos(r)},
                    bufferLoad(acc, {intImm(0)})),
    });
    return allocate(acc, e.rowPositions(r, std::move(inner)));
}

Stmt
softmaxRowBody(const NodeEmit &e)
{
    Buffer mx = accBuffer("accmx" + std::to_string(e.nid));
    Buffer sm = accBuffer("accsm" + std::to_string(e.nid));
    Var r1 = e.loopVar("ra");
    Var r2 = e.loopVar("rb");
    Var r3 = e.loopVar("rc");
    // Numerically-stable three-pass form; the subtraction of the row
    // max and the duplicated exp() are part of the bitwise contract
    // between fused and chain lowerings, so they stay identical here
    // by sharing this single emitter.
    Expr neg_inf = floatImm(-std::numeric_limits<float>::max());
    Stmt pass1 = e.rowPositions(
        r1, bufferStore(mx, {intImm(0)},
                        max(bufferLoad(mx, {intImm(0)}),
                            bufferLoad(e.in(0), {e.pos(r1)}))));
    Expr exp2 = call(DataType::float32(), Builtin::kExp,
                     {sub(bufferLoad(e.in(0), {e.pos(r2)}),
                          bufferLoad(mx, {intImm(0)}))});
    Stmt pass2 = e.rowPositions(
        r2, bufferStore(sm, {intImm(0)},
                        add(bufferLoad(sm, {intImm(0)}), exp2)));
    Expr exp3 = call(DataType::float32(), Builtin::kExp,
                     {sub(bufferLoad(e.in(0), {e.pos(r3)}),
                          bufferLoad(mx, {intImm(0)}))});
    Stmt pass3 = e.rowPositions(
        r3, bufferStore(e.out(), {e.pos(r3)},
                        div(exp3, bufferLoad(sm, {intImm(0)}))));
    Stmt body = seq({
        bufferStore(mx, {intImm(0)}, neg_inf),
        std::move(pass1),
        bufferStore(sm, {intImm(0)}, floatImm(0.0)),
        std::move(pass2),
        std::move(pass3),
    });
    return allocate(mx, allocate(sm, std::move(body)));
}

Stmt
spmmRowBody(const NodeEmit &e)
{
    const OpGraph &g = *e.ctx->graph;
    int64_t feat = g.value(e.node->output).cols;
    Buffer acc = accBuffer("acc" + std::to_string(e.nid));
    Var k = e.loopVar("k");
    Var r = e.loopVar("r");
    Expr b = bufferLoad(e.in(1), {add(mul(e.col(r), intImm(feat)), k)});
    Stmt reduce = e.rowPositions(
        r, bufferStore(acc, {intImm(0)},
                       add(bufferLoad(acc, {intImm(0)}),
                           mul(bufferLoad(e.in(0), {e.pos(r)}), b))));
    Stmt per_feat = seq({
        bufferStore(acc, {intImm(0)}, floatImm(0.0)),
        std::move(reduce),
        bufferStore(e.out(), {e.denseAt(e.node->output, k)},
                    bufferLoad(acc, {intImm(0)})),
    });
    return allocate(acc,
                    forLoop(k, intImm(0), intImm(feat),
                            std::move(per_feat)));
}

Stmt
elementwiseRowBody(const NodeEmit &e)
{
    Var r = e.loopVar("r");
    Expr v = bufferLoad(e.in(0), {e.pos(r)});
    Expr mapped;
    switch (e.node->fn) {
      case EwiseFn::kScale:
        mapped = mul(v, floatImm(e.node->scale));
        break;
      case EwiseFn::kRelu:
        mapped = max(v, floatImm(0.0));
        break;
    }
    return e.rowPositions(
        r, bufferStore(e.out(), {e.pos(r)}, std::move(mapped)));
}

Stmt
aggregateRowBody(const NodeEmit &e)
{
    const OpGraph &g = *e.ctx->graph;
    int64_t feat = g.value(e.node->output).cols;
    Buffer acc = accBuffer("acc" + std::to_string(e.nid));
    Var k = e.loopVar("k");
    Var r = e.loopVar("r");
    Expr x = bufferLoad(e.in(0), {add(mul(e.col(r), intImm(feat)), k)});
    Stmt reduce = e.rowPositions(
        r, bufferStore(acc, {intImm(0)},
                       add(bufferLoad(acc, {intImm(0)}), x)));
    Expr result = bufferLoad(acc, {intImm(0)});
    if (e.node->mean) {
        // Empty rows divide by max(degree, 1): sum is zero, mean is
        // zero, and no division-by-zero reaches either backend.
        result = div(result,
                     max(cast(DataType::float32(), e.width()),
                         floatImm(1.0)));
    }
    Stmt per_feat = seq({
        bufferStore(acc, {intImm(0)}, floatImm(0.0)),
        std::move(reduce),
        bufferStore(e.out(), {e.denseAt(e.node->output, k)},
                    std::move(result)),
    });
    return allocate(acc,
                    forLoop(k, intImm(0), intImm(feat),
                            std::move(per_feat)));
}

Stmt
updateRowBody(const NodeEmit &e)
{
    const OpGraph &g = *e.ctx->graph;
    int64_t inner = g.value(e.node->inputs[0]).cols;
    int64_t feat = g.value(e.node->output).cols;
    Buffer acc = accBuffer("acc" + std::to_string(e.nid));
    Var j = e.loopVar("j");
    Var k = e.loopVar("k");
    Expr h = bufferLoad(e.in(0), {e.denseAt(e.node->inputs[0], k)});
    Expr w = bufferLoad(e.in(1), {add(mul(k, intImm(feat)), j)});
    Stmt per_out = seq({
        bufferStore(acc, {intImm(0)}, floatImm(0.0)),
        forLoop(k, intImm(0), intImm(inner),
                bufferStore(acc, {intImm(0)},
                            add(bufferLoad(acc, {intImm(0)}),
                                mul(h, w)))),
        bufferStore(e.out(), {e.denseAt(e.node->output, j)},
                    bufferLoad(acc, {intImm(0)})),
    });
    return allocate(acc,
                    forLoop(j, intImm(0), intImm(feat),
                            std::move(per_out)));
}

Stmt
addRowBody(const NodeEmit &e)
{
    const OpGraph &g = *e.ctx->graph;
    int64_t feat = g.value(e.node->output).cols;
    Var k = e.loopVar("k");
    Expr lhs = bufferLoad(e.in(0), {e.denseAt(e.node->inputs[0], k)});
    Expr rhs = bufferLoad(e.in(1), {e.denseAt(e.node->inputs[1], k)});
    return forLoop(k, intImm(0), intImm(feat),
                   bufferStore(e.out(),
                               {e.denseAt(e.node->output, k)},
                               add(std::move(lhs), std::move(rhs))));
}

PrimFunc
nodeFunc(LowerCtx *ctx, int nid)
{
    const Node &node = ctx->graph->nodes()[static_cast<size_t>(nid)];
    NodeEmit e;
    e.ctx = ctx;
    e.node = &node;
    e.nid = nid;
    if (node.pattern != nullptr) {
        e.pid = ctx->patternId(node.pattern);
    }

    Stmt row_body;
    switch (node.type) {
      case OpType::kSddmm:
        row_body = sddmmRowBody(e);
        break;
      case OpType::kMaskedSoftmax:
        row_body = softmaxRowBody(e);
        break;
      case OpType::kSpmm:
        row_body = spmmRowBody(e);
        break;
      case OpType::kElementwise:
        row_body = elementwiseRowBody(e);
        break;
      case OpType::kAggregate:
        row_body = aggregateRowBody(e);
        break;
      case OpType::kUpdate:
        row_body = updateRowBody(e);
        break;
      case OpType::kAdd:
        row_body = addRowBody(e);
        break;
    }
    ICHECK(row_body != nullptr);

    PrimFunc func = primFunc("dfg_" + std::string(opTypeName(node.type)) +
                             "_n" + std::to_string(nid));
    func->stage = IrStage::kStage3;
    auto addParam = [&func](const Buffer &buffer) {
        for (const auto &[v, b] : func->bufferMap) {
            (void)v;
            if (b.get() == buffer.get()) {
                return;
            }
        }
        func->params.push_back(buffer->data);
        func->bufferMap.emplace_back(buffer->data, buffer);
    };
    if (e.pid >= 0) {
        addParam(ctx->indptrBuf[static_cast<size_t>(e.pid)]);
        // Softmax and elementwise never read column ids; keep their
        // signatures to what the body touches.
        if (node.type == OpType::kSddmm ||
            node.type == OpType::kSpmm ||
            node.type == OpType::kAggregate) {
            addParam(ctx->indicesBuf[static_cast<size_t>(e.pid)]);
        }
    }
    for (int input : node.inputs) {
        addParam(ctx->valueBuf[static_cast<size_t>(input)]);
    }
    addParam(ctx->valueBuf[static_cast<size_t>(node.output)]);

    func->body = forLoop(ctx->row, intImm(0),
                         intImm(ctx->graph->rows()),
                         std::move(row_body),
                         ForKind::kThreadBinding, "blockIdx.x");
    return func;
}

} // namespace

namespace {

/**
 * Operand slots a node gathers by column id, i.e. reads operand rows
 * other than the fused row (spmm's dense rhs at B[col(p),k],
 * aggregate's input at X[col(p),k], sddmm's rhs at Y[k,col(p)];
 * sddmm's lhs is row-local today but held to the same rule so both
 * sddmm operands obey one contract). Fusion demotes interior values
 * to per-row locals covering only the fused row's window, and rows
 * run in parallel over blockIdx.x — so a gather over an interior
 * value would read local memory the row never wrote and race with
 * the producer in other rows. Only graph inputs may be gathered.
 */
size_t
gatheredOperands(OpType type, size_t slots[2])
{
    switch (type) {
      case OpType::kSddmm:
        slots[0] = 0;
        slots[1] = 1;
        return 2;
      case OpType::kSpmm:
        slots[0] = 1;
        return 1;
      case OpType::kAggregate:
        slots[0] = 0;
        return 1;
      default:
        return 0;
    }
}

} // namespace

bool
fusible(const OpGraph &graph, std::string *reason)
{
    const SparsityPattern *shared = nullptr;
    for (const Node &node : graph.nodes()) {
        if (node.pattern == nullptr) {
            continue;
        }
        if (shared == nullptr) {
            shared = node.pattern.get();
        } else if (shared != node.pattern.get()) {
            *reason = "nodes iterate distinct sparsity structures "
                      "(share one PatternRef to fuse)";
            return false;
        }
    }
    for (const Node &node : graph.nodes()) {
        size_t slots[2];
        size_t count = gatheredOperands(node.type, slots);
        for (size_t g = 0; g < count; ++g) {
            int vid = node.inputs[slots[g]];
            if (graph.value(vid).producer >= 0) {
                *reason = std::string(opTypeName(node.type)) +
                          " gathers rows of interior value '" +
                          valueBufferName(graph.value(vid), vid) +
                          "' across the row space; fusion cannot "
                          "localize a gathered operand";
                return false;
            }
        }
    }
    std::vector<int> consumers(graph.values().size(), 0);
    for (const Node &node : graph.nodes()) {
        for (int input : node.inputs) {
            consumers[static_cast<size_t>(input)] += 1;
        }
    }
    for (int vid : graph.outputs()) {
        if (consumers[static_cast<size_t>(vid)] > 0) {
            *reason = "interior value '" + graph.value(vid).name +
                      "' is exposed as a graph output and must "
                      "materialize";
            return false;
        }
    }
    reason->clear();
    return true;
}

GraphLowering
lowerGraph(const OpGraph &graph, bool fuse)
{
    USER_CHECK(!graph.nodes().empty())
        << "cannot lower a graph with no compute nodes";
    USER_CHECK(!graph.outputs().empty())
        << "cannot lower a graph with no marked outputs";

    LowerCtx ctx;
    ctx.graph = &graph;
    ctx.row = var("i");
    ctx.valueBuf.reserve(graph.values().size());
    for (size_t vid = 0; vid < graph.values().size(); ++vid) {
        const ValueDesc &desc = graph.values()[vid];
        ctx.valueBuf.push_back(
            flatBuffer(valueBufferName(desc, static_cast<int>(vid)),
                       valueNumel(desc), DataType::float32()));
    }

    GraphLowering out;
    out.rows = graph.rows();
    for (size_t nid = 0; nid < graph.nodes().size(); ++nid) {
        out.funcs.push_back(nodeFunc(&ctx, static_cast<int>(nid)));
    }
    for (size_t pid = 0; pid < ctx.patterns.size(); ++pid) {
        StructureBinding binding;
        binding.indptrName = ctx.indptrBuf[pid]->name;
        binding.indicesName = ctx.indicesBuf[pid]->name;
        binding.pattern = ctx.patterns[pid];
        out.structures.push_back(std::move(binding));
    }

    std::string reason;
    bool can_fuse = fuse && fusible(graph, &reason);
    if (can_fuse) {
        std::vector<transform::LocalizeSpec> specs;
        for (size_t vid = 0; vid < graph.values().size(); ++vid) {
            const ValueDesc &desc = graph.values()[vid];
            if (desc.producer < 0 || !desc.name.empty()) {
                continue; // inputs and marked outputs stay global
            }
            transform::LocalizeSpec spec;
            spec.buffer = ctx.valueBuf[vid]->name;
            if (desc.edge) {
                int pid = ctx.patternId(desc.pattern);
                spec.rowBase = bufferLoad(
                    ctx.indptrBuf[static_cast<size_t>(pid)],
                    {ctx.row});
                spec.extent = std::max<int64_t>(
                    1, desc.pattern->maxRowNnz());
            } else {
                spec.rowBase = mul(ctx.row, intImm(desc.cols));
                spec.extent = desc.cols;
            }
            specs.push_back(std::move(spec));
        }
        out.funcs = {transform::fuseRowRegions(out.funcs,
                                               "dfg_fused_graph",
                                               specs)};
        out.fused = true;
    } else {
        out.fused = false;
        out.reason = fuse ? reason : "per-kernel dispatch requested";
        for (size_t vid = 0; vid < graph.values().size(); ++vid) {
            const ValueDesc &desc = graph.values()[vid];
            if (desc.producer < 0 || !desc.name.empty()) {
                continue;
            }
            LoweredTemp temp;
            temp.name = ctx.valueBuf[vid]->name;
            temp.numel = valueNumel(desc);
            out.temps.push_back(std::move(temp));
        }
    }
    return out;
}

} // namespace dfg
} // namespace sparsetir
