/**
 * @file
 * Relational (3-D) sparse structures for RGMS (paper §4.4): one 2-D
 * sparse matrix per relation, and the 3-D generalization of hyb used
 * by the fused RGCN kernel.
 */

#ifndef SPARSETIR_FORMAT_RELATIONAL_H_
#define SPARSETIR_FORMAT_RELATIONAL_H_

#include <cstdint>
#include <vector>

#include "format/csr.h"
#include "format/ell.h"
#include "format/hyb.h"

namespace sparsetir {
namespace format {

/** A_r per relation r (adjacency of the subgraph with edge type r). */
struct RelationalCsr
{
    int64_t rows = 0;
    int64_t cols = 0;
    std::vector<Csr> relations;

    int64_t numRelations() const
    {
        return static_cast<int64_t>(relations.size());
    }

    int64_t totalNnz() const;
};

/**
 * 3-D hyb: each relation decomposed to hyb(c, k) (paper uses
 * hyb(1, 5) for RGCN).
 */
struct RelationalHyb
{
    int64_t rows = 0;
    int64_t cols = 0;
    std::vector<Hyb> relations;

    int64_t storedEntries() const;
    int64_t paddedZeros() const;
    /** %padding reported in Table 2. */
    double paddingRatio() const;
};

/** Decompose every relation with hyb(c, k). */
RelationalHyb relationalHyb(const RelationalCsr &m, int32_t c, int32_t k);

/**
 * Sparse-convolution kernel map: one relation per kernel offset; every
 * row has at most one non-zero (the paper's ELL(1) observation, §4.4.2
 * Figure 22).
 */
struct KernelMap
{
    /** outputs x inputs bipartite maps, one per kernel offset. */
    RelationalCsr maps;
    /** True when every row of every relation has <= 1 entry. */
    bool isEll1() const;
};

} // namespace format
} // namespace sparsetir

#endif // SPARSETIR_FORMAT_RELATIONAL_H_
