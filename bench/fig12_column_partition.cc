/**
 * @file
 * Reproduces Figure 12: SpMM kernel duration and L1/L2 hit rates of
 * the SparseTIR hyb kernels on the reddit-like graph under different
 * column-partition counts (feature size 128).
 */

#include <cstdio>

#include "autotune/search.h"
#include "baselines/vendor_constants.h"
#include "bench_util.h"
#include "core/pipeline.h"
#include "gpusim/simulator.h"
#include "graph/datasets.h"

int
main()
{
    using namespace sparsetir;
    benchutil::printHeader(
        "Figure 12: kernel duration and L1/L2 hit rate vs column "
        "partitions (reddit-like, feat 128, V100 model)");

    graph::DatasetSpec spec = graph::datasetSpec("reddit");
    if (benchutil::fastMode()) {
        spec.nodes /= 8;
        spec.edges /= 8;
    }
    format::Csr g = graph::generateDataset(spec);
    int64_t feat = 128;

    gpusim::Device device(gpusim::GpuSpec::v100());
    gpusim::SimOptions opts;
    opts.efficiency = baselines::kSparseTirEfficiency;

    runtime::NDArray b({g.cols * feat}, ir::DataType::float32());
    runtime::NDArray c({g.rows * feat}, ir::DataType::float32());

    std::printf("%-12s %12s %12s %12s %10s\n", "#partitions",
                "L1-hit-rate", "L2-hit-rate", "duration(ms)",
                "imbalance");
    for (int partitions : {1, 2, 4, 8, 16}) {
        auto shared = std::make_shared<core::BindingSet>();
        shared->external("B_data", &b);
        shared->external("C_data", &c);
        core::HybSpmm compiled =
            core::compileSpmmHyb(g, feat, partitions, -1, shared);
        std::vector<const gpusim::Kernel *> kernels;
        for (auto &kernel : compiled.kernels) {
            kernels.push_back(&kernel->simKernel());
        }
        gpusim::KernelStats stats = device.launchFused(kernels, opts);
        std::printf("%-12d %11.1f%% %11.1f%% %12.3f %10.2f\n",
                    partitions, stats.l1HitRate * 100.0,
                    stats.l2HitRate * 100.0, stats.timeMs,
                    stats.imbalance);
    }
    std::printf(
        "\nPaper (V100, full reddit): L1 31.5->39.4%%, "
        "L2 24.8->88.8%%, duration 64.6->27.3 ms as partitions go "
        "1->16.\nExpected shape: both hit rates rise with partitions; "
        "duration falls then saturates.\n");
    return 0;
}
