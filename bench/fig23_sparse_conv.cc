/**
 * @file
 * Reproduces Figure 23: 3-D sparse convolution (MinkowskiNet-style
 * layers on a synthetic LiDAR scene) — SparseTIR's fused RGMS with
 * Tensor Cores vs TorchSparse's gather-GEMM-scatter, across channel
 * sizes.
 */

#include <cmath>
#include <cstdio>

#include "baselines/torchsparse.h"
#include "baselines/vendor_constants.h"
#include "bench_util.h"
#include "core/pipeline.h"
#include "format/ell.h"
#include "graph/point_cloud.h"

using namespace sparsetir;

namespace {

void
runDevice(const gpusim::GpuSpec &spec,
          const format::RelationalCsr &maps)
{
    gpusim::Device device(spec);
    std::printf("\n--- %s ---\n", spec.name.c_str());
    std::printf("%-18s %14s %16s %10s\n", "sqrt(Cin*Cout)",
                "TorchSparse(ms)", "SparseTIR-TC(ms)", "speedup");
    for (int64_t channels : {16, 32, 64, 128, 256}) {
        if (benchutil::fastMode() && channels > 64) {
            continue;
        }
        // TorchSparse: explicit gather + cuBLAS GEMM + scatter.
        baselines::TorchSparseConv ts =
            baselines::torchsparseConv(maps, channels, channels);
        gpusim::SimOptions ts_opts;
        ts_opts.efficiency = baselines::kTorchSparseEfficiency;
        gpusim::SimOptions gemm_opts;
        gemm_opts.efficiency = baselines::kCublasEfficiency;
        double ts_ms = 0.0;
        for (const auto &kernel : ts.kernels) {
            bool is_gemm =
                kernel->name().find("gemm") != std::string::npos;
            ts_ms += device
                         .launch(*kernel,
                                 is_gemm ? gemm_opts : ts_opts)
                         .timeMs;
        }

        // SparseTIR: fused RGMS, one ELL(1) kernel per offset,
        // horizontally fused.
        auto shared = std::make_shared<core::BindingSet>();
        runtime::NDArray x({maps.cols * channels},
                           ir::DataType::float32());
        runtime::NDArray w({channels * channels},
                           ir::DataType::float32());
        runtime::NDArray y({maps.rows * channels},
                           ir::DataType::float32());
        shared->external("X_data", &x);
        shared->external("W_data", &w);
        shared->external("Y_data", &y);
        shared->scalar("m", maps.rows);
        shared->scalar("n", maps.cols);
        std::vector<std::shared_ptr<core::BoundKernel>> kernels;
        std::vector<const gpusim::Kernel *> sims;
        for (size_t r = 0; r < maps.relations.size(); ++r) {
            const format::Csr &rel = maps.relations[r];
            if (rel.nnz() == 0) {
                continue;
            }
            // Each relation is already ELL(1): rows with one entry.
            std::vector<int32_t> rows;
            for (int64_t row = 0; row < rel.rows; ++row) {
                if (rel.rowLength(row) > 0) {
                    rows.push_back(static_cast<int32_t>(row));
                }
            }
            format::Ell ell = format::ellFromCsrRows(rel, rows, 1);
            auto kernel = core::compileEllRgms(
                ell, channels, channels, shared,
                "c" + std::to_string(r), true, 16);
            kernels.push_back(kernel);
            sims.push_back(&kernel->simKernel());
        }
        gpusim::SimOptions opts;
        opts.efficiency = baselines::kSparseTirEfficiency;
        double st_ms = device.launchFused(sims, opts).timeMs;

        std::printf("%-18lld %14.3f %16.3f %9.2fx\n",
                    static_cast<long long>(channels), ts_ms, st_ms,
                    ts_ms / st_ms);
    }
}

} // namespace

int
main()
{
    benchutil::printHeader(
        "Figure 23: sparse convolution vs TorchSparse (synthetic "
        "LiDAR scene, 3^3 kernel)");
    int64_t voxels = benchutil::fastMode() ? 8000 : 60000;
    graph::VoxelScene scene = graph::syntheticLidarScene(voxels, 23);
    format::KernelMap map = graph::buildKernelMap(scene);
    std::printf("scene voxels: %zu, kernel map ELL(1): %s\n",
                scene.voxels.size(), map.isEll1() ? "yes" : "no");
    runDevice(gpusim::GpuSpec::v100(), map.maps);
    runDevice(gpusim::GpuSpec::rtx3070(), map.maps);
    std::printf(
        "\nPaper: SparseTIR wins (up to ~7x) at small/medium channels "
        "by avoiding the HBM round trip\nfor T; TorchSparse (cuBLAS) "
        "catches up and wins above sqrt(Cin*Cout) ~= 128-256 where "
        "GEMM\nflops dominate. Expected shape: speedup decreasing in "
        "channel size, crossover near the top.\n");
    return 0;
}
