#include "autotune/search.h"

#include <chrono>

#include "baselines/vendor_constants.h"

namespace sparsetir {
namespace autotune {

using core::BindingSet;

HybTuneResult
tuneSpmmHyb(const format::Csr &a, int64_t feat, gpusim::Device &device,
            engine::Engine &session, const std::vector<int> &partitions)
{
    HybTuneResult result;
    gpusim::SimOptions opts;
    opts.efficiency = baselines::kSparseTirEfficiency;
    runtime::NDArray b({a.cols * feat}, ir::DataType::float32());
    runtime::NDArray c({a.rows * feat}, ir::DataType::float32());
    bool first = true;
    for (int partition : partitions) {
        engine::HybConfig config;
        config.partitions = partition;
        engine::PreparedSpmmHyb prepared =
            session.prepareSpmmHyb(a, feat, config);
        prepared.bindings->external("B_data", &b);
        prepared.bindings->external("C_data", &c);
        std::vector<const gpusim::Kernel *> kernels;
        for (auto &kernel : prepared.kernels) {
            kernels.push_back(&kernel->simKernel());
        }
        HybCandidate candidate;
        candidate.c = partition;
        candidate.k = prepared.bucketCapLog2;
        candidate.timeMs = device.launchFused(kernels, opts).timeMs;
        result.tried.push_back(candidate);
        if (first || candidate.timeMs < result.best.timeMs) {
            result.best = candidate;
            first = false;
        }
    }
    return result;
}

HybTuneResult
tuneSpmmHyb(const format::Csr &a, int64_t feat, gpusim::Device &device,
            const std::vector<int> &partitions)
{
    engine::EngineOptions options;
    // The simulator is the cost oracle here: no host execution, so
    // keep the transient session's pool minimal and inert.
    options.numThreads = 1;
    options.parallel = false;
    engine::Engine session(options);
    return tuneSpmmHyb(a, feat, device, session, partitions);
}

HybTuneResult
tuneSpmmHybMeasured(const format::Csr &a, int64_t feat,
                    engine::Engine &session,
                    const std::vector<int> &partitions, int rounds,
                    int in_flight)
{
    USER_CHECK(rounds > 0) << "tuneSpmmHybMeasured needs rounds >= 1";
    USER_CHECK(in_flight > 0)
        << "tuneSpmmHybMeasured needs in_flight >= 1";
    HybTuneResult result;
    // Single-request mode reuses one b/c pair; batched mode gives
    // every in-flight request private feature and output arrays,
    // like distinct tenants of one weight matrix. Only the arrays
    // the chosen mode dispatches are allocated.
    runtime::NDArray b;
    runtime::NDArray c;
    std::vector<runtime::NDArray> batch_b;
    std::vector<runtime::NDArray> batch_c;
    std::vector<engine::SpmmRequest> requests;
    if (in_flight == 1) {
        b = runtime::NDArray({a.cols * feat},
                             ir::DataType::float32());
        c = runtime::NDArray({a.rows * feat},
                             ir::DataType::float32());
    } else {
        for (int i = 0; i < in_flight; ++i) {
            batch_b.emplace_back(std::vector<int64_t>{a.cols * feat},
                                 ir::DataType::float32());
            batch_c.emplace_back(std::vector<int64_t>{a.rows * feat},
                                 ir::DataType::float32());
        }
        for (int i = 0; i < in_flight; ++i) {
            requests.push_back(
                engine::SpmmRequest{&batch_b[i], &batch_c[i]});
        }
    }
    bool first = true;
    for (int partition : partitions) {
        engine::HybConfig config;
        config.partitions = partition;
        // Prepare once: fills the compile cache (so the timed rounds
        // measure the warm serving path — value gather + bind + VM
        // execution) and reports the resolved bucket cap.
        engine::PreparedSpmmHyb prepared =
            session.prepareSpmmHyb(a, feat, config);
        auto start = std::chrono::steady_clock::now();
        for (int round = 0; round < rounds; ++round) {
            if (in_flight == 1) {
                c.zero();
                session.spmmHyb(a, feat, &b, &c, config);
            } else {
                session.spmmHybBatch(prepared, requests);
            }
        }
        double elapsed_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        HybCandidate candidate;
        candidate.c = partition;
        candidate.k = prepared.bucketCapLog2;
        candidate.timeMs = elapsed_ms / (rounds * in_flight);
        result.tried.push_back(candidate);
        if (first || candidate.timeMs < result.best.timeMs) {
            result.best = candidate;
            first = false;
        }
    }
    return result;
}

SddmmCandidate
tuneSddmm(const format::Csr &a, int64_t feat, gpusim::Device &device)
{
    gpusim::SimOptions opts;
    opts.efficiency = baselines::kSparseTirEfficiency;
    runtime::NDArray x({a.rows * feat}, ir::DataType::float32());
    runtime::NDArray y({feat * a.cols}, ir::DataType::float32());
    runtime::NDArray out({a.nnz()}, ir::DataType::float32());
    SddmmCandidate best;
    bool first = true;
    for (int workloads : {4, 8, 16, 32}) {
        for (int group : {16, 32}) {
            core::SddmmSchedule schedule;
            schedule.workloadsPerBlock = workloads;
            schedule.groupSize = group;
            auto shared = std::make_shared<BindingSet>();
            shared->external("X_data", &x);
            shared->external("Y_data", &y);
            shared->external("B_data", &out);
            auto kernel = core::compileSddmm(a, feat, shared, schedule);
            double time_ms =
                device.launch(kernel->simKernel(), opts).timeMs;
            if (first || time_ms < best.timeMs) {
                best.schedule = schedule;
                best.timeMs = time_ms;
                first = false;
            }
        }
    }
    return best;
}

} // namespace autotune
} // namespace sparsetir
