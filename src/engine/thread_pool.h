/**
 * @file
 * Fixed-size worker pool for host-side kernel execution.
 *
 * Tasks are plain closures; submit() returns a future that carries the
 * task's exception, if any, to the waiting caller. The pool is shared
 * by every request of an Engine session. Tasks must not submit() and
 * then block on the resulting futures — but parallelFor() is safe to
 * call from anywhere, including from inside a pool task: it detects
 * worker-thread callers and degrades to caller-runs (inline, serial)
 * instead of blocking a worker slot on work that needs that very
 * slot, which on a saturated pool would deadlock.
 */

#ifndef SPARSETIR_ENGINE_THREAD_POOL_H_
#define SPARSETIR_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace sparsetir {
namespace engine {

class ThreadPool
{
  public:
    /** num_threads == 0 picks the hardware concurrency (min 1). */
    explicit ThreadPool(int num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int size() const { return static_cast<int>(workers_.size()); }

    /** Enqueue a task; the future rethrows the task's exception. */
    std::future<void> submit(std::function<void()> task);

    /**
     * Run fn(i) for every i in [0, n), distributing across the pool,
     * and block until all complete. Rethrows the first exception
     * (caller-runs paths surface it at the failing index, without
     * running the remaining indices). Callable from any thread,
     * including concurrently and from inside a pool task: a call
     * from one of this pool's own workers runs inline (caller-runs)
     * — a worker blocking on sub-tasks would hold the slot those
     * sub-tasks need, and a saturated pool of such workers deadlocks.
     */
    void parallelFor(int64_t n, const std::function<void(int64_t)> &fn);

    /** True when called from one of THIS pool's worker threads. */
    bool onWorkerThread() const;

  private:
    void workerLoop(int index);

    std::vector<std::thread> workers_;
    std::deque<std::packaged_task<void()>> queue_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

} // namespace engine
} // namespace sparsetir

#endif // SPARSETIR_ENGINE_THREAD_POOL_H_
