#include "verify/verifier.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "ir/analysis.h"
#include "ir/printer.h"
#include "ir/structural_equal.h"
#include "runtime/interpreter.h"
#include "support/logging.h"

namespace sparsetir {
namespace verify {

namespace {

using ir::Expr;
using ir::ExprKind;
using ir::Stmt;
using ir::StmtKind;

std::string
oneLine(std::string s)
{
    while (!s.empty() && (s.back() == '\n' || s.back() == ' ')) {
        s.pop_back();
    }
    auto nl = s.find('\n');
    if (nl != std::string::npos) {
        s = s.substr(0, nl) + " ...";
    }
    return s;
}

/**
 * Mirror of the engine's AccumFinder (engine/executor.cc): a store to
 * a handle-param buffer counts as a reduction when its value re-loads
 * the stored location, except for buffers initialized in an enclosing
 * Block's init (reduce-with-init outputs get their safety from
 * disjointness, not privatization). kAtomicAdd on a param buffer is
 * always a reduction. The verifier must classify stores exactly like
 * the executor does, or its race verdicts would diverge from the
 * machinery that acts on them.
 */
class DerivedAccumScan
{
  public:
    explicit DerivedAccumScan(const ir::PrimFunc &func)
    {
        for (const auto &param : func->params) {
            if (param->dtype.isHandle()) {
                params_.insert(param.get());
            }
        }
        scanStmt(func->body);
    }

    const std::set<std::string> &found() const { return found_; }

  private:
    void
    scanStmt(const Stmt &s)
    {
        if (s == nullptr) {
            return;
        }
        switch (s->kind) {
        case StmtKind::kBufferStore: {
            const auto *op = static_cast<const ir::BufferStoreNode *>(s.get());
            const ir::VarNode *data = op->buffer->data.get();
            if (params_.count(data) && !initWritten_.count(data) &&
                valueReloads(op->value, op)) {
                found_.insert(data->name);
            }
            for (const Expr &index : op->indices) {
                scanExpr(index);
            }
            scanExpr(op->value);
            return;
        }
        case StmtKind::kSeq:
            for (const auto &child :
                 static_cast<const ir::SeqStmtNode *>(s.get())->seq) {
                scanStmt(child);
            }
            return;
        case StmtKind::kFor: {
            const auto *op = static_cast<const ir::ForNode *>(s.get());
            scanExpr(op->minValue);
            scanExpr(op->extent);
            scanStmt(op->body);
            return;
        }
        case StmtKind::kBlock: {
            const auto *op = static_cast<const ir::BlockNode *>(s.get());
            std::vector<const ir::VarNode *> pushed;
            if (op->init != nullptr) {
                for (const ir::BufferAccess &access :
                     ir::collectBufferAccesses(op->init)) {
                    if (access.isWrite) {
                        const ir::VarNode *data = access.buffer->data.get();
                        if (initWritten_.insert(data).second) {
                            pushed.push_back(data);
                        }
                    }
                }
            }
            scanStmt(op->init);
            scanStmt(op->body);
            for (const ir::VarNode *data : pushed) {
                initWritten_.erase(data);
            }
            return;
        }
        case StmtKind::kIfThenElse: {
            const auto *op = static_cast<const ir::IfThenElseNode *>(s.get());
            scanExpr(op->cond);
            scanStmt(op->thenBody);
            scanStmt(op->elseBody);
            return;
        }
        case StmtKind::kLetStmt: {
            const auto *op = static_cast<const ir::LetStmtNode *>(s.get());
            scanExpr(op->value);
            scanStmt(op->body);
            return;
        }
        case StmtKind::kAllocate:
            scanStmt(static_cast<const ir::AllocateNode *>(s.get())->body);
            return;
        case StmtKind::kEvaluate:
            scanExpr(static_cast<const ir::EvaluateNode *>(s.get())->value);
            return;
        default:
            return;
        }
    }

    void
    scanExpr(const Expr &e)
    {
        if (e == nullptr) {
            return;
        }
        switch (e->kind) {
        case ExprKind::kCall: {
            const auto *op = static_cast<const ir::CallNode *>(e.get());
            if (op->op == ir::Builtin::kAtomicAdd &&
                op->bufferArg != nullptr &&
                params_.count(op->bufferArg->data.get())) {
                found_.insert(op->bufferArg->data->name);
            }
            for (const Expr &arg : op->args) {
                scanExpr(arg);
            }
            return;
        }
        case ExprKind::kAdd:
        case ExprKind::kSub:
        case ExprKind::kMul:
        case ExprKind::kFloorDiv:
        case ExprKind::kFloorMod:
        case ExprKind::kDiv:
        case ExprKind::kMin:
        case ExprKind::kMax:
        case ExprKind::kEQ:
        case ExprKind::kNE:
        case ExprKind::kLT:
        case ExprKind::kLE:
        case ExprKind::kGT:
        case ExprKind::kGE:
        case ExprKind::kAnd:
        case ExprKind::kOr: {
            const auto *op = static_cast<const ir::BinaryNode *>(e.get());
            scanExpr(op->a);
            scanExpr(op->b);
            return;
        }
        case ExprKind::kNot:
            scanExpr(static_cast<const ir::NotNode *>(e.get())->a);
            return;
        case ExprKind::kSelect: {
            const auto *op = static_cast<const ir::SelectNode *>(e.get());
            scanExpr(op->cond);
            scanExpr(op->trueValue);
            scanExpr(op->falseValue);
            return;
        }
        case ExprKind::kCast:
            scanExpr(static_cast<const ir::CastNode *>(e.get())->value);
            return;
        case ExprKind::kBufferLoad:
            for (const Expr &index :
                 static_cast<const ir::BufferLoadNode *>(e.get())->indices) {
                scanExpr(index);
            }
            return;
        default:
            return;
        }
    }

    bool
    valueReloads(const Expr &value, const ir::BufferStoreNode *store)
    {
        if (value == nullptr) {
            return false;
        }
        if (value->kind == ExprKind::kBufferLoad) {
            const auto *load =
                static_cast<const ir::BufferLoadNode *>(value.get());
            if (load->buffer->data.get() == store->buffer->data.get() &&
                load->indices.size() == store->indices.size()) {
                bool same = true;
                for (size_t i = 0; i < load->indices.size(); ++i) {
                    if (!ir::structuralEqual(load->indices[i],
                                             store->indices[i])) {
                        same = false;
                        break;
                    }
                }
                if (same) {
                    return true;
                }
            }
        }
        switch (value->kind) {
        case ExprKind::kAdd:
        case ExprKind::kSub:
        case ExprKind::kMul:
        case ExprKind::kFloorDiv:
        case ExprKind::kFloorMod:
        case ExprKind::kDiv:
        case ExprKind::kMin:
        case ExprKind::kMax: {
            const auto *op = static_cast<const ir::BinaryNode *>(value.get());
            return valueReloads(op->a, store) || valueReloads(op->b, store);
        }
        case ExprKind::kSelect: {
            const auto *op = static_cast<const ir::SelectNode *>(value.get());
            return valueReloads(op->trueValue, store) ||
                   valueReloads(op->falseValue, store);
        }
        case ExprKind::kCast:
            return valueReloads(
                static_cast<const ir::CastNode *>(value.get())->value, store);
        case ExprKind::kCall: {
            const auto *op = static_cast<const ir::CallNode *>(value.get());
            for (const Expr &arg : op->args) {
                if (valueReloads(arg, store)) {
                    return true;
                }
            }
            return false;
        }
        default:
            return false;
        }
    }

    std::set<const ir::VarNode *> params_;
    std::set<const ir::VarNode *> initWritten_;
    std::set<std::string> found_;
};

class FuncVerifier
{
  public:
    FuncVerifier(const ir::PrimFunc &func, const VerifyContext &ctx)
        : func_(func), ctx_(ctx)
    {}

    VerifyResult
    run()
    {
        for (const auto &kv : ctx_.facts) {
            az_.addFact(kv.first, kv.second);
        }
        for (const auto &[param, buffer] : func_->bufferMap) {
            paramData_.insert(buffer->data.get());
        }
        DerivedAccumScan scan(func_);
        derivedAccums_ = scan.found();
        raceSafeBuffers_ = derivedAccums_;
        if (ctx_.hasAccumSpec) {
            for (const AccumWriteSet &accum : ctx_.accums) {
                raceSafeBuffers_.insert(accum.buffer);
            }
            checkAccumSpecs();
        }
        blockLoop_ = runtime::findBlockIdxLoop(func_->body);
        walkStmt(func_->body);
        return std::move(result_);
    }

  private:
    // --- accum-spec-level checks (independent of any statement) ------

    void
    checkAccumSpecs()
    {
        std::set<std::string> declared;
        for (const AccumWriteSet &accum : ctx_.accums) {
            declared.insert(accum.buffer);
            std::string anchor = "(accum spec '" + accum.buffer + "')";
            if (accum.wholeArray) {
                continue;
            }
            if (accum.rows == nullptr) {
                continue;
            }
            std::vector<int32_t> rows(*accum.rows);
            std::sort(rows.begin(), rows.end());
            bool dupRows =
                std::adjacent_find(rows.begin(), rows.end()) != rows.end();
            if (dupRows && !ctx_.kernelExclusive) {
                report(DiagCategory::kParallelRace, accum.buffer,
                       "row set contains duplicate rows but the kernel "
                       "does not carry the exclusive marking; two "
                       "parallel chunks could fold the same row "
                       "concurrently",
                       anchor);
            }
            rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
            if (rows.empty()) {
                continue;
            }
            if (accum.spans.empty()) {
                report(DiagCategory::kWriteSetViolation, accum.buffer,
                       "declared write-set is empty but the kernel writes " +
                           std::to_string(rows.size()) + " row(s)",
                       anchor);
                continue;
            }
            if (accum.rowWidth <= 0) {
                report(DiagCategory::kWriteSetViolation, accum.buffer,
                       "row width must be positive to cover concrete rows",
                       anchor);
                continue;
            }
            for (int32_t row : rows) {
                int64_t begin = static_cast<int64_t>(row) * accum.rowWidth;
                int64_t end = begin + accum.rowWidth;
                bool covered = false;
                for (const auto &span : accum.spans) {
                    if (begin >= span.first && end <= span.second) {
                        covered = true;
                        break;
                    }
                }
                if (!covered) {
                    report(DiagCategory::kWriteSetViolation, accum.buffer,
                           "row " + std::to_string(row) + " writes [" +
                               std::to_string(begin) + ", " +
                               std::to_string(end) +
                               ") outside every declared span",
                           anchor);
                    break;
                }
            }
        }
        for (const std::string &name : derivedAccums_) {
            if (!declared.count(name)) {
                report(DiagCategory::kWriteSetViolation, name,
                       "kernel reduces into '" + name +
                           "' but no AccumOutput declares it; the fused "
                           "dispatcher would not privatize it",
                       "(accum spec)");
            }
        }
    }

    // --- statement walk ----------------------------------------------

    void
    walkStmt(const Stmt &s)
    {
        if (s == nullptr) {
            return;
        }
        switch (s->kind) {
        case StmtKind::kBufferStore: {
            const auto *op = static_cast<const ir::BufferStoreNode *>(s.get());
            anchor_ = oneLine(ir::stmtToString(s));
            for (const Expr &index : op->indices) {
                walkExpr(index);
            }
            walkExpr(op->value);
            checkAccess(op->buffer, op->indices);
            if (!op->indices.empty()) {
                checkWriteSet(op->buffer, op->indices[0]);
                checkRace(op->buffer, op->indices[0]);
            }
            return;
        }
        case StmtKind::kSeq:
            for (const auto &child :
                 static_cast<const ir::SeqStmtNode *>(s.get())->seq) {
                walkStmt(child);
            }
            return;
        case StmtKind::kFor: {
            const auto *op = static_cast<const ir::ForNode *>(s.get());
            anchor_ = "for " + op->loopVar->name + " in range(" +
                      ir::exprToString(op->minValue) + ", ..+" +
                      ir::exprToString(op->extent) + ")";
            walkExpr(op->minValue);
            walkExpr(op->extent);
            az_.pushLoopVar(op->loopVar, op->minValue, op->extent);
            bool wasInBlockLoop = inBlockLoop_;
            if (op == blockLoop_) {
                inBlockLoop_ = true;
                blockVar_ = op->loopVar;
            }
            walkStmt(op->body);
            inBlockLoop_ = wasInBlockLoop;
            az_.popLoopVar(op->loopVar);
            return;
        }
        case StmtKind::kBlock: {
            const auto *op = static_cast<const ir::BlockNode *>(s.get());
            if (op->init != nullptr) {
                // Init runs on the iterations where every reduce var is
                // zero; its accesses may rely on that.
                int pushed = 0;
                for (const ir::Var &rv : op->reduceVars) {
                    pushed += az_.pushConstraints(ir::eq(rv, ir::intImm(0)),
                                                  false);
                }
                walkStmt(op->init);
                az_.popConstraints(pushed);
            }
            walkStmt(op->body);
            return;
        }
        case StmtKind::kIfThenElse: {
            const auto *op = static_cast<const ir::IfThenElseNode *>(s.get());
            anchor_ = "if " + ir::exprToString(op->cond) + ":";
            walkExpr(op->cond);
            int pushed = az_.pushConstraints(op->cond, false);
            walkStmt(op->thenBody);
            az_.popConstraints(pushed);
            if (op->elseBody != nullptr) {
                pushed = az_.pushConstraints(op->cond, true);
                walkStmt(op->elseBody);
                az_.popConstraints(pushed);
            }
            return;
        }
        case StmtKind::kLetStmt: {
            const auto *op = static_cast<const ir::LetStmtNode *>(s.get());
            anchor_ = "let " + op->letVar->name + " = " +
                      ir::exprToString(op->value);
            walkExpr(op->value);
            az_.pushLet(op->letVar, op->value);
            walkStmt(op->body);
            az_.popLet(op->letVar);
            return;
        }
        case StmtKind::kAllocate: {
            const auto *op = static_cast<const ir::AllocateNode *>(s.get());
            const ir::VarNode *data = op->buffer->data.get();
            bool isPrivate = inBlockLoop_ || blockLoop_ == nullptr;
            if (isPrivate) {
                privateBuffers_.insert(data);
            } else {
                sharedAllocs_.insert(data);
            }
            walkStmt(op->body);
            if (isPrivate) {
                privateBuffers_.erase(data);
            } else {
                sharedAllocs_.erase(data);
            }
            return;
        }
        case StmtKind::kEvaluate:
            anchor_ = oneLine(ir::stmtToString(s));
            walkExpr(static_cast<const ir::EvaluateNode *>(s.get())->value);
            return;
        default:
            report(DiagCategory::kOutOfBounds, "",
                   "statement kind not valid in Stage III",
                   oneLine(ir::stmtToString(s)));
            return;
        }
    }

    void
    walkExpr(const Expr &e)
    {
        if (e == nullptr) {
            return;
        }
        switch (e->kind) {
        case ExprKind::kBufferLoad: {
            const auto *op = static_cast<const ir::BufferLoadNode *>(e.get());
            for (const Expr &index : op->indices) {
                walkExpr(index);
            }
            checkAccess(op->buffer, op->indices);
            return;
        }
        case ExprKind::kCall: {
            const auto *op = static_cast<const ir::CallNode *>(e.get());
            for (const Expr &arg : op->args) {
                walkExpr(arg);
            }
            checkCall(op);
            return;
        }
        case ExprKind::kAdd:
        case ExprKind::kSub:
        case ExprKind::kMul:
        case ExprKind::kFloorDiv:
        case ExprKind::kFloorMod:
        case ExprKind::kDiv:
        case ExprKind::kMin:
        case ExprKind::kMax:
        case ExprKind::kEQ:
        case ExprKind::kNE:
        case ExprKind::kLT:
        case ExprKind::kLE:
        case ExprKind::kGT:
        case ExprKind::kGE:
        case ExprKind::kAnd:
        case ExprKind::kOr: {
            const auto *op = static_cast<const ir::BinaryNode *>(e.get());
            walkExpr(op->a);
            walkExpr(op->b);
            return;
        }
        case ExprKind::kNot:
            walkExpr(static_cast<const ir::NotNode *>(e.get())->a);
            return;
        case ExprKind::kSelect: {
            // Both arms are checked unconditionally: the interpreter
            // evaluates eagerly, so an unguarded arm must be safe.
            const auto *op = static_cast<const ir::SelectNode *>(e.get());
            walkExpr(op->cond);
            walkExpr(op->trueValue);
            walkExpr(op->falseValue);
            return;
        }
        case ExprKind::kCast:
            walkExpr(static_cast<const ir::CastNode *>(e.get())->value);
            return;
        case ExprKind::kRamp: {
            const auto *op = static_cast<const ir::RampNode *>(e.get());
            walkExpr(op->base);
            walkExpr(op->stride);
            return;
        }
        case ExprKind::kBroadcast:
            walkExpr(static_cast<const ir::BroadcastNode *>(e.get())->value);
            return;
        default:
            return;
        }
    }

    // --- the three checks --------------------------------------------

    void
    checkAccess(const ir::Buffer &buffer, const std::vector<Expr> &indices)
    {
        if (buffer == nullptr) {
            return;
        }
        if (indices.size() != buffer->ndim()) {
            report(DiagCategory::kOutOfBounds, buffer->name,
                   "access has " + std::to_string(indices.size()) +
                       " indices but the buffer has " +
                       std::to_string(buffer->ndim()) + " dimension(s)",
                   anchor_);
            return;
        }
        for (size_t i = 0; i < indices.size(); ++i) {
            LinExpr idx = az_.toLinExpr(indices[i]);
            if (!az_.proveNonNeg(idx)) {
                report(DiagCategory::kOutOfBounds, buffer->name,
                       "cannot prove 0 <= " + ir::exprToString(indices[i]),
                       anchor_);
            }
            LinExpr extent = az_.toLinExpr(buffer->dimExtent(i));
            if (!az_.proveNonNeg(extent - idx - LinExpr::constant_(1))) {
                report(DiagCategory::kOutOfBounds, buffer->name,
                       "cannot prove " + ir::exprToString(indices[i]) +
                           " < " + ir::exprToString(buffer->dimExtent(i)),
                       anchor_);
            }
        }
    }

    void
    checkCall(const ir::CallNode *op)
    {
        if ((op->op == ir::Builtin::kLowerBound ||
             op->op == ir::Builtin::kUpperBound) &&
            op->args.size() == 3 && op->bufferArg != nullptr &&
            op->bufferArg->ndim() == 1) {
            // The search scans positions [lo, hi) of bufferArg; the
            // interpreter hard-aborts on lo < 0 or hi > numel.
            if (!az_.proveNonNeg(op->args[0])) {
                report(DiagCategory::kOutOfBounds, op->bufferArg->name,
                       "cannot prove search lo 0 <= " +
                           ir::exprToString(op->args[0]),
                       anchor_);
            }
            LinExpr hi = az_.toLinExpr(op->args[1]);
            LinExpr extent = az_.toLinExpr(op->bufferArg->dimExtent(0));
            if (!az_.proveNonNeg(extent - hi)) {
                report(DiagCategory::kOutOfBounds, op->bufferArg->name,
                       "cannot prove search hi " +
                           ir::exprToString(op->args[1]) + " <= " +
                           ir::exprToString(op->bufferArg->dimExtent(0)),
                       anchor_);
            }
        }
        if (op->op == ir::Builtin::kAtomicAdd && !op->args.empty() &&
            op->bufferArg != nullptr) {
            checkAccess(op->bufferArg, {op->args[0]});
            checkWriteSet(op->bufferArg, op->args[0]);
            // Atomic updates cannot lose writes; no race check needed.
        }
    }

    const AccumWriteSet *
    declaredAccumFor(const ir::Buffer &buffer) const
    {
        if (!ctx_.hasAccumSpec) {
            return nullptr;
        }
        for (const AccumWriteSet &accum : ctx_.accums) {
            if (accum.buffer == buffer->data->name ||
                accum.buffer == buffer->name) {
                return &accum;
            }
        }
        return nullptr;
    }

    void
    checkWriteSet(const ir::Buffer &buffer, const Expr &index)
    {
        const AccumWriteSet *accum = declaredAccumFor(buffer);
        if (accum == nullptr || accum->wholeArray) {
            return;
        }
        LinExpr idx = az_.toLinExpr(index);
        // Direct containment in one declared span.
        for (const auto &span : accum->spans) {
            if (az_.proveNonNeg(idx - LinExpr::constant_(span.first)) &&
                az_.proveNonNeg(LinExpr::constant_(span.second - 1) - idx)) {
                return;
            }
        }
        // Row confinement: the store stays inside the row slot of some
        // row-array load appearing in the index; checkAccumSpecs
        // already proved every concrete row slot is span-covered.
        if (!accum->rowsBuffer.empty() && accum->rowWidth > 0) {
            for (int atomId : az_.loadAtomsOf(idx, accum->rowsBuffer)) {
                LinExpr base = az_.atomExpr(atomId);
                base *= accum->rowWidth;
                if (az_.proveNonNeg(idx - base) &&
                    az_.proveNonNeg(base +
                                    LinExpr::constant_(accum->rowWidth - 1) -
                                    idx)) {
                    return;
                }
            }
        }
        report(DiagCategory::kWriteSetViolation, buffer->name,
               "cannot prove store index " + ir::exprToString(index) +
                   " lands inside the declared AccumOutput spans",
               anchor_);
    }

    void
    checkRace(const ir::Buffer &buffer, const Expr &index)
    {
        if (ctx_.hasAccumSpec && ctx_.kernelExclusive) {
            // Exclusive kernels are never run with overlapping chunks.
            return;
        }
        if (blockLoop_ == nullptr) {
            return; // no parallel axis
        }
        const ir::VarNode *data = buffer->data.get();
        if (privateBuffers_.count(data)) {
            return; // fresh allocation per parallel iteration
        }
        bool isParam = paramData_.count(data) != 0;
        if (isParam && raceSafeBuffers_.count(data->name)) {
            return; // recognized reduction: privatized + folded in order
        }
        if (!isParam && !sharedAllocs_.count(data)) {
            // Allocated buffer that is neither private nor recorded as
            // shared — defensive: treat as private (cannot happen with
            // a well-formed walk).
            return;
        }
        if (!inBlockLoop_) {
            report(DiagCategory::kParallelRace, buffer->name,
                   "store outside the blockIdx.x loop is replayed by "
                   "every parallel chunk",
                   anchor_);
            return;
        }
        LinExpr idx = az_.toLinExpr(index);
        if (!az_.proveBlockDisjoint(idx, blockVar_)) {
            report(DiagCategory::kParallelRace, buffer->name,
                   "cannot prove distinct blockIdx.x iterations write "
                   "disjoint locations of '" +
                       buffer->name + "' via index " +
                       ir::exprToString(index),
                   anchor_);
        }
    }

    void
    report(DiagCategory category, const std::string &buffer,
           const std::string &message, const std::string &stmt)
    {
        std::string dedup = std::to_string(static_cast<int>(category)) + "|" +
                            buffer + "|" + message + "|" + stmt;
        if (!seen_.insert(dedup).second) {
            return;
        }
        result_.ok = false;
        result_.diagnostics.push_back(
            Diagnostic{category, buffer, message, stmt});
    }

    ir::PrimFunc func_;
    const VerifyContext &ctx_;
    AffineAnalyzer az_;
    VerifyResult result_;
    std::set<std::string> seen_;

    std::set<const ir::VarNode *> paramData_;
    std::set<std::string> derivedAccums_;
    std::set<std::string> raceSafeBuffers_;
    std::set<const ir::VarNode *> privateBuffers_;
    std::set<const ir::VarNode *> sharedAllocs_;
    const ir::ForNode *blockLoop_ = nullptr;
    ir::Var blockVar_;
    bool inBlockLoop_ = false;
    std::string anchor_;
};

} // namespace

const char *
diagCategoryName(DiagCategory category)
{
    switch (category) {
    case DiagCategory::kOutOfBounds:
        return "out-of-bounds";
    case DiagCategory::kWriteSetViolation:
        return "write-set";
    case DiagCategory::kParallelRace:
        return "parallel-race";
    }
    return "unknown";
}

std::string
formatDiagnostics(const VerifyResult &result)
{
    std::ostringstream os;
    for (const Diagnostic &diag : result.diagnostics) {
        os << "  [" << diagCategoryName(diag.category) << "]";
        if (!diag.buffer.empty()) {
            os << " buffer '" << diag.buffer << "'";
        }
        os << ": " << diag.message << "\n    at: " << diag.stmt << "\n";
    }
    return os.str();
}

void
VerifyContext::scalar(const std::string &name, int64_t value)
{
    ValueFact fact;
    fact.lo = ir::intImm(value, ir::DataType::int64());
    fact.hi = fact.lo;
    facts[name] = fact;
}

void
VerifyContext::int32Array(const std::string &name,
                          const std::vector<int32_t> &values)
{
    ValueFact fact;
    if (!values.empty()) {
        auto [lo, hi] = std::minmax_element(values.begin(), values.end());
        fact.lo = ir::intImm(*lo, ir::DataType::int64());
        fact.hi = ir::intImm(*hi, ir::DataType::int64());
        fact.first = ir::intImm(values.front(), ir::DataType::int64());
        fact.last = ir::intImm(values.back(), ir::DataType::int64());
        fact.sorted = std::is_sorted(values.begin(), values.end());
    } else {
        // No elements: every loop over the array has extent zero, so
        // any load of its values is dynamically unreachable. The
        // degenerate range keeps the (vacuous) proofs of dominated
        // accesses discharging instead of failing on "unknown value".
        fact.lo = ir::intImm(0, ir::DataType::int64());
        fact.hi = fact.lo;
    }
    facts[name] = fact;
}

VerifyResult
verifyFunc(const ir::PrimFunc &func, const VerifyContext &ctx)
{
    ICHECK(func != nullptr);
    ICHECK(func->stage == ir::IrStage::kStage3)
        << "verifyFunc expects Stage III IR, got function '" << func->name
        << "'";
    FuncVerifier verifier(func, ctx);
    return verifier.run();
}

} // namespace verify
} // namespace sparsetir
