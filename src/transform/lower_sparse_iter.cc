#include "transform/lower_sparse_iter.h"

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "ir/analysis.h"
#include "ir/functor.h"
#include "ir/simplify.h"

namespace sparsetir {
namespace transform {

using namespace ir;

Expr
axisSlots(const Axis &axis)
{
    switch (axis->kind) {
      case AxisKind::kDenseFixed:
        return axis->length;
      case AxisKind::kDenseVariable:
      case AxisKind::kSparseVariable:
        return axis->nnz;
      case AxisKind::kSparseFixed:
        return mul(axisSlots(axis->parent), axis->nnzCols);
    }
    ICHECK(false);
    return nullptr;
}

Buffer
indptrBufferOf(const Axis &axis)
{
    ICHECK(axis->isVariable())
        << "axis " << axis->name << " has no indptr";
    Expr parent_slots = axis->parent != nullptr ? axisSlots(axis->parent)
                                                : intImm(1);
    auto node = std::make_shared<BufferNode>();
    node->name = axis->name + "_indptr";
    node->data = axis->indptr;
    node->dtype = axis->idtype;
    node->shape = {simplify(add(parent_slots, intImm(1)))};
    return node;
}

Buffer
indicesBufferOf(const Axis &axis)
{
    ICHECK(axis->isSparse())
        << "axis " << axis->name << " has no indices";
    auto node = std::make_shared<BufferNode>();
    node->name = axis->name + "_indices";
    node->data = axis->indices;
    node->dtype = axis->idtype;
    node->shape = {simplify(axisSlots(axis))};
    return node;
}

namespace {

/** Per-axis state while lowering one sparse iteration. */
struct AxisLoopInfo
{
    Axis axis;
    /** Relative position variable (loop var or let-bound var). */
    Var posVar;
    /** Absolute storage position expression. */
    Expr absPos;
    /** Coordinate expression in terms of position variables. */
    Expr coord;
};

class Lowerer
{
  public:
    explicit Lowerer(const PrimFunc &func) : func_(func) {}

    PrimFunc
    run()
    {
        PrimFunc result = copyFunc(func_);
        // Step 1: auxiliary buffer materialization. Collect all axes
        // reachable from declared axes (parents included).
        for (const auto &axis : func_->axes) {
            materializeAxis(axis);
        }
        for (const auto &[param, buffer] : func_->bufferMap) {
            for (const auto &axis : buffer->axes) {
                materializeAxis(axis);
            }
        }

        Stmt body = lowerStmt(func_->body);
        // Step 4: region analysis.
        body = annotateRegions(simplifyStmt(body));
        result->body = body;
        result->stage = IrStage::kStage2;
        // Register aux buffers in the buffer map so downstream passes
        // and the interpreter can bind them.
        for (const auto &[axis, buffer] : indptrBuffers_) {
            result->bufferMap.emplace_back(buffer->data, buffer);
        }
        for (const auto &[axis, buffer] : indicesBuffers_) {
            result->bufferMap.emplace_back(buffer->data, buffer);
        }
        // Domain hints (assume_buffer_domain in the paper).
        for (const auto &[axis_ptr, buffer] : indicesBuffers_) {
            result->attrs["domain::" + buffer->name] = axis_ptr->length;
        }
        return result;
    }

  private:
    void
    materializeAxis(const Axis &axis)
    {
        if (axis == nullptr || visitedAxes_.count(axis.get())) {
            return;
        }
        visitedAxes_.insert(axis.get());
        materializeAxis(axis->parent);
        if (axis->isVariable()) {
            indptrBuffers_.emplace(axis.get(), indptrBufferOf(axis));
        }
        if (axis->isSparse()) {
            indicesBuffers_.emplace(axis.get(), indicesBufferOf(axis));
        }
    }

    Buffer
    indptrBuf(const Axis &axis)
    {
        materializeAxis(axis);
        return indptrBuffers_.at(axis.get());
    }

    Buffer
    indicesBuf(const Axis &axis)
    {
        materializeAxis(axis);
        return indicesBuffers_.at(axis.get());
    }

    Stmt
    lowerStmt(const Stmt &s)
    {
        if (s->kind == StmtKind::kSparseIteration) {
            return lowerIteration(
                std::static_pointer_cast<const SparseIterationNode>(s));
        }
        if (s->kind == StmtKind::kSeq) {
            auto op = static_cast<const SeqStmtNode *>(s.get());
            std::vector<Stmt> out;
            out.reserve(op->seq.size());
            for (const auto &child : op->seq) {
                out.push_back(lowerStmt(child));
            }
            return seq(std::move(out));
        }
        return s;
    }

    /** Absolute position of the parent of `axis` in loop context. */
    Expr
    parentAbsPos(const Axis &axis,
                 const std::map<const AxisNode *, AxisLoopInfo> &infos)
    {
        if (axis->parent == nullptr) {
            return intImm(0);
        }
        auto it = infos.find(axis->parent.get());
        ICHECK(it != infos.end())
            << "axis " << axis->name << " iterated before its parent "
            << axis->parent->name
            << "; sparse_reorder must keep dependency order";
        return it->second.absPos;
    }

    /**
     * Fill in posVar/absPos/coord for one axis given the relative
     * position variable.
     */
    AxisLoopInfo
    makeInfo(const Axis &axis, const Var &pos_var,
             const std::map<const AxisNode *, AxisLoopInfo> &infos)
    {
        AxisLoopInfo info;
        info.axis = axis;
        info.posVar = pos_var;
        switch (axis->kind) {
          case AxisKind::kDenseFixed:
            info.absPos = pos_var;
            info.coord = pos_var;
            break;
          case AxisKind::kDenseVariable: {
            Expr parent_pos = parentAbsPos(axis, infos);
            Expr base = bufferLoad(indptrBuf(axis), {parent_pos});
            info.absPos = add(base, pos_var);
            info.coord = pos_var;
            break;
          }
          case AxisKind::kSparseFixed: {
            Expr parent_pos = parentAbsPos(axis, infos);
            info.absPos =
                add(mul(parent_pos, axis->nnzCols), pos_var);
            info.coord = bufferLoad(indicesBuf(axis), {info.absPos});
            break;
          }
          case AxisKind::kSparseVariable: {
            Expr parent_pos = parentAbsPos(axis, infos);
            Expr base = bufferLoad(indptrBuf(axis), {parent_pos});
            info.absPos = add(base, pos_var);
            info.coord = bufferLoad(indicesBuf(axis), {info.absPos});
            break;
          }
        }
        return info;
    }

    /** Loop extent for one axis in the current context. */
    Expr
    loopExtent(const Axis &axis,
               const std::map<const AxisNode *, AxisLoopInfo> &infos)
    {
        switch (axis->kind) {
          case AxisKind::kDenseFixed:
            return axis->length;
          case AxisKind::kSparseFixed:
            return axis->nnzCols;
          case AxisKind::kDenseVariable:
          case AxisKind::kSparseVariable: {
            Expr parent_pos = parentAbsPos(axis, infos);
            Buffer indptr = indptrBuf(axis);
            return sub(bufferLoad(indptr, {add(parent_pos, intImm(1))}),
                       bufferLoad(indptr, {parent_pos}));
          }
        }
        ICHECK(false);
        return nullptr;
    }

    /** True when the extent expression depends on loop variables. */
    bool
    extentDataDependent(const Expr &extent)
    {
        // Any buffer load inside the extent makes it data-dependent.
        struct Finder : public ExprVisitor
        {
            bool found = false;
            void
            visitBufferLoad(const BufferLoadNode *op) override
            {
                found = true;
                ExprVisitor::visitBufferLoad(op);
            }
        } finder;
        finder.visitExpr(extent);
        return finder.found;
    }

    Stmt
    lowerIteration(const SparseIteration &iter)
    {
        std::map<const AxisNode *, AxisLoopInfo> infos;
        // Step 2+3 bookkeeping.
        struct LoopSpec
        {
            Var loopVar;
            Expr extent;
            bool dataDependent;
            std::vector<Var> letVars;  // fused-position recoveries
            std::vector<Expr> letValues;
            bool isReduction;
        };
        std::vector<LoopSpec> loops;

        size_t axis_pos = 0;
        for (size_t g = 0; g < iter->fuseGroups.size(); ++g) {
            int group = iter->fuseGroups[g];
            ICHECK_GE(group, 1);
            if (group == 1) {
                const Axis &axis = iter->axes[axis_pos];
                LoopSpec spec;
                spec.extent = loopExtent(axis, infos);
                spec.dataDependent = extentDataDependent(spec.extent);
                spec.loopVar = var(iter->iterVars[axis_pos]->name,
                                   axis->idtype);
                spec.isReduction =
                    iter->iterKinds[axis_pos] == IterKind::kReduction;
                infos[axis.get()] =
                    makeInfo(axis, spec.loopVar, infos);
                loops.push_back(std::move(spec));
                ++axis_pos;
            } else {
                // Fused group: consecutive axes forming an ancestor
                // chain; iterate the flattened non-zero space of the
                // deepest axis and recover outer positions by search.
                std::vector<Axis> chain(iter->axes.begin() + axis_pos,
                                        iter->axes.begin() + axis_pos +
                                            group);
                for (int k = 1; k < group; ++k) {
                    USER_CHECK(chain[k]->parent == chain[k - 1])
                        << "fused axes must form a parent chain";
                }
                const Axis &deepest = chain.back();
                USER_CHECK(deepest->isVariable())
                    << "fused iteration requires a variable deepest "
                    << "axis";
                LoopSpec spec;
                spec.extent = axisSlots(deepest);
                spec.dataDependent = false;
                std::string fused_name;
                for (int k = 0; k < group; ++k) {
                    fused_name += iter->iterVars[axis_pos + k]->name;
                }
                spec.loopVar = var(fused_name, deepest->idtype);
                spec.isReduction = false;
                for (int k = 0; k < group; ++k) {
                    spec.isReduction |= iter->iterKinds[axis_pos + k] ==
                                        IterKind::kReduction;
                }
                // Recover positions from the flat index, deepest
                // first: the flat index IS the deepest absolute
                // position; each parent's absolute position comes from
                // an upper_bound search over its child's indptr.
                Expr abs = spec.loopVar;
                std::vector<std::pair<Var, Expr>> lets;
                std::vector<Expr> abs_chain(group);
                abs_chain[group - 1] = abs;
                for (int k = group - 1; k >= 1; --k) {
                    const Axis &child = chain[k];
                    Buffer indptr = indptrBuf(child);
                    Expr parent_slots =
                        chain[k - 1]->parent == nullptr
                            ? axisSlots(chain[k - 1])
                            : axisSlots(chain[k - 1]);
                    // upper_bound(indptr, 0, len, abs) - 1
                    Expr search = sub(
                        call(child->idtype, Builtin::kUpperBound,
                             {intImm(0),
                              simplify(add(parent_slots, intImm(1))),
                              abs_chain[k]},
                             indptr),
                        intImm(1));
                    Var parent_abs_var =
                        var(iter->iterVars[axis_pos + k - 1]->name +
                                "_pos",
                            child->idtype);
                    lets.emplace_back(parent_abs_var, search);
                    abs_chain[k - 1] = parent_abs_var;
                }
                // Fill axis infos with absolute/relative positions.
                for (int k = 0; k < group; ++k) {
                    const Axis &axis = chain[k];
                    AxisLoopInfo info;
                    info.axis = axis;
                    info.absPos = abs_chain[k];
                    // Relative position: abs - row start.
                    if (k == 0) {
                        if (axis->isVariable() && axis->parent != nullptr) {
                            Expr parent_pos = parentAbsPos(axis, infos);
                            info.posVar = nullptr;
                            // Relative position unused for outer fused
                            // axes in buffer access matching; keep abs.
                        }
                        info.posVar = nullptr;
                    } else {
                        info.posVar = nullptr;
                    }
                    if (axis->isSparse()) {
                        info.coord =
                            bufferLoad(indicesBuf(axis), {info.absPos});
                    } else if (axis->kind == AxisKind::kDenseFixed) {
                        info.coord = info.absPos;
                    } else {
                        // Dense-variable: coordinate = relative pos.
                        Expr parent_pos =
                            k > 0 ? abs_chain[k - 1]
                                  : parentAbsPos(axis, infos);
                        info.coord = sub(
                            info.absPos,
                            bufferLoad(indptrBuf(axis), {parent_pos}));
                    }
                    infos[axis.get()] = info;
                }
                for (auto &[v, value] : lets) {
                    spec.letVars.push_back(v);
                    spec.letValues.push_back(value);
                }
                loops.push_back(std::move(spec));
                axis_pos += group;
            }
        }
        ICHECK_EQ(axis_pos, iter->axes.size());

        // Step 3: coordinate translation of the body.
        Stmt body = translateBody(iter, infos);
        Stmt init = iter->init != nullptr
                        ? translateBody(iter, infos, /*use_init=*/true)
                        : nullptr;

        // Collect reduction loop variables for init gating.
        std::vector<Var> reduce_vars;
        for (const auto &spec : loops) {
            if (spec.isReduction) {
                reduce_vars.push_back(spec.loopVar);
            }
        }

        // Innermost block holds the body (+init).
        auto inner_block =
            std::make_shared<BlockNode>(iter->name, body);
        inner_block->init = init;
        inner_block->reduceVars = reduce_vars;
        Stmt current = inner_block;

        // Wrap loops inside-out; insert an isolation block before each
        // data-dependent loop (paper Figure 8).
        int block_counter = 0;
        for (size_t idx = loops.size(); idx-- > 0;) {
            LoopSpec &spec = loops[idx];
            // Let-bind fused position recoveries just inside the loop.
            for (size_t li = spec.letVars.size(); li-- > 0;) {
                current = letStmt(spec.letVars[li], spec.letValues[li],
                                  current);
            }
            current = forLoop(spec.loopVar, intImm(0), spec.extent,
                              current);
            if (idx > 0 && spec.dataDependent) {
                current = block(iter->name + "_" +
                                    std::to_string(block_counter++),
                                current);
            }
        }
        return current;
    }

    /**
     * Rewrite the stage I body: buffer accesses move from coordinate
     * space to position space (eqs. 1-5).
     */
    Stmt
    translateBody(const SparseIteration &iter,
                  const std::map<const AxisNode *, AxisLoopInfo> &infos,
                  bool use_init = false)
    {
        // Coordinate expression for each iteration variable.
        std::map<const VarNode *, Expr> coord_subst;
        for (size_t i = 0; i < iter->axes.size(); ++i) {
            const auto &info = infos.at(iter->axes[i].get());
            coord_subst[iter->iterVars[i].get()] = info.coord;
        }

        class AccessTranslator : public StmtMutator
        {
          public:
            AccessTranslator(
                Lowerer *lowerer,
                const std::map<const AxisNode *, AxisLoopInfo> &infos,
                const std::map<const VarNode *, Expr> &coord_subst)
                : lowerer_(lowerer), infos_(infos),
                  coordSubst_(coord_subst)
            {}

          protected:
            Expr
            mutateVar(const VarNode *op, const Expr &e) override
            {
                // A bare iteration variable outside a buffer access
                // means its coordinate value.
                auto it = coordSubst_.find(op);
                return it != coordSubst_.end() ? it->second : e;
            }

            Expr
            mutateBufferLoad(const BufferLoadNode *op,
                             const Expr &e) override
            {
                if (!op->buffer->isSparse()) {
                    return StmtMutator::mutateBufferLoad(op, e);
                }
                TranslatedAccess access =
                    translateIndices(op->buffer, op->indices);
                Expr load = std::make_shared<BufferLoadNode>(
                    op->dtype, op->buffer, std::move(access.positions));
                if (access.guard != nullptr) {
                    // Coordinate might be absent: absent loads read as
                    // zero (this is what makes generated format-copy
                    // iterations produce correct padding).
                    Expr zero = op->dtype.isFloat()
                                    ? floatImm(0.0, op->dtype)
                                    : intImm(0, op->dtype);
                    load = select(access.guard, std::move(load),
                                  std::move(zero));
                }
                return load;
            }

            Stmt
            mutateBufferStore(const BufferStoreNode *op,
                              const Stmt &s) override
            {
                Expr value = mutateExpr(op->value);
                if (!op->buffer->isSparse()) {
                    std::vector<Expr> indices;
                    for (const auto &idx : op->indices) {
                        indices.push_back(mutateExpr(idx));
                    }
                    return bufferStore(op->buffer, std::move(indices),
                                       std::move(value));
                }
                TranslatedAccess access =
                    translateIndices(op->buffer, op->indices);
                Stmt store = bufferStore(op->buffer,
                                         std::move(access.positions),
                                         std::move(value));
                if (access.guard != nullptr) {
                    // Stores to absent coordinates are dropped.
                    store = ifThenElse(access.guard, std::move(store));
                }
                return store;
            }

          private:
            struct TranslatedAccess
            {
                std::vector<Expr> positions;
                /** Null when the access provably hits; else validity. */
                Expr guard;
            };

            /**
             * Translate coordinate-space indices of one sparse buffer
             * access into per-axis relative positions (eqs. 1-5).
             */
            TranslatedAccess
            translateIndices(const Buffer &buffer,
                             const std::vector<Expr> &indices)
            {
                TranslatedAccess out;
                out.positions.reserve(indices.size());
                // Absolute position of the previous buffer axis,
                // rebuilt as we walk the buffer's axis chain.
                Expr prev_abs = intImm(0);
                for (size_t d = 0; d < indices.size(); ++d) {
                    const Axis &axis = buffer->axes[d];
                    // Fast path (eq. 1 trivial case): the index is the
                    // iteration variable of this very axis.
                    const VarNode *as_var = nullptr;
                    if (indices[d]->kind == ExprKind::kVar) {
                        as_var =
                            static_cast<const VarNode *>(indices[d].get());
                    }
                    bool riding_axis = false;
                    if (as_var != nullptr) {
                        auto info_it = infos_.find(axis.get());
                        if (info_it != infos_.end() &&
                            coordSubst_.count(as_var) &&
                            sameIterVar(as_var, axis)) {
                            const auto &info = info_it->second;
                            if (info.posVar != nullptr) {
                                out.positions.push_back(info.posVar);
                            } else {
                                // Fused axis: relative position =
                                // absolute - row base.
                                out.positions.push_back(relativePos(
                                    axis, info.absPos, prev_abs));
                            }
                            prev_abs = info.absPos;
                            riding_axis = true;
                        }
                    }
                    if (riding_axis) {
                        continue;
                    }
                    // General case: compute the coordinate-space value
                    // then compress to a position (eq. 4).
                    Expr coord = mutateExpr(indices[d]);
                    auto add_guard = [&](Expr g) {
                        out.guard = out.guard == nullptr
                                        ? g
                                        : logicalAnd(out.guard, g);
                    };
                    switch (axis->kind) {
                      case AxisKind::kDenseFixed:
                        out.positions.push_back(coord);
                        prev_abs = out.positions.back();
                        break;
                      case AxisKind::kDenseVariable: {
                        out.positions.push_back(coord);
                        Expr base = bufferLoad(
                            lowerer_->indptrBuf(axis), {prev_abs});
                        prev_abs = add(base, coord);
                        break;
                      }
                      case AxisKind::kSparseFixed: {
                        Expr lo = mul(prev_abs, axis->nnzCols);
                        Expr hi = add(lo, axis->nnzCols);
                        Expr found = call(
                            axis->idtype, Builtin::kLowerBound,
                            {lo, hi, coord},
                            lowerer_->indicesBuf(axis));
                        add_guard(logicalAnd(
                            lt(found, hi),
                            eq(bufferLoad(lowerer_->indicesBuf(axis),
                                          {found}),
                               coord)));
                        out.positions.push_back(sub(found, lo));
                        prev_abs = found;
                        break;
                      }
                      case AxisKind::kSparseVariable: {
                        Buffer indptr = lowerer_->indptrBuf(axis);
                        Expr lo = bufferLoad(indptr, {prev_abs});
                        Expr hi = bufferLoad(
                            indptr, {add(prev_abs, intImm(1))});
                        Expr found = call(
                            axis->idtype, Builtin::kLowerBound,
                            {lo, hi, coord},
                            lowerer_->indicesBuf(axis));
                        add_guard(logicalAnd(
                            lt(found, hi),
                            eq(bufferLoad(lowerer_->indicesBuf(axis),
                                          {found}),
                               coord)));
                        out.positions.push_back(sub(found, lo));
                        prev_abs = found;
                        break;
                      }
                    }
                }
                return out;
            }

            /** Relative position from absolute, given parent abs. */
            Expr
            relativePos(const Axis &axis, const Expr &abs,
                        const Expr &parent_abs)
            {
                switch (axis->kind) {
                  case AxisKind::kDenseFixed:
                    return abs;
                  case AxisKind::kSparseFixed:
                    return sub(abs, mul(parent_abs, axis->nnzCols));
                  case AxisKind::kDenseVariable:
                  case AxisKind::kSparseVariable:
                    return sub(abs,
                               bufferLoad(lowerer_->indptrBuf(axis),
                                          {parent_abs}));
                }
                ICHECK(false);
                return nullptr;
            }

            /** Is `v` the iteration variable bound to `axis`? */
            bool
            sameIterVar(const VarNode *v, const Axis &axis)
            {
                auto it = iterVarAxis_.find(v);
                if (it == iterVarAxis_.end()) {
                    return false;
                }
                return it->second == axis.get();
            }

          public:
            std::map<const VarNode *, const AxisNode *> iterVarAxis_;

          private:
            Lowerer *lowerer_;
            const std::map<const AxisNode *, AxisLoopInfo> &infos_;
            const std::map<const VarNode *, Expr> &coordSubst_;
        };

        AccessTranslator translator(this, infos, coord_subst);
        for (size_t i = 0; i < iter->axes.size(); ++i) {
            translator.iterVarAxis_[iter->iterVars[i].get()] =
                iter->axes[i].get();
        }
        Stmt target = use_init ? iter->init : iter->body;
        return translator.mutateStmt(target);
    }

    PrimFunc func_;
    std::set<const AxisNode *> visitedAxes_;
    std::map<const AxisNode *, Buffer> indptrBuffers_;
    std::map<const AxisNode *, Buffer> indicesBuffers_;
};

} // namespace

PrimFunc
lowerSparseIterations(const PrimFunc &func)
{
    USER_CHECK(func->stage == IrStage::kStage1)
        << "lowerSparseIterations expects a Stage I function";
    Lowerer lowerer(func);
    return lowerer.run();
}

} // namespace transform
} // namespace sparsetir
