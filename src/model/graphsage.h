/**
 * @file
 * End-to-end GraphSAGE training cost model (paper §4.2.3, Figure 15).
 *
 * A GraphSAGE layer is mean-aggregate (SpMM) + two dense transforms;
 * training time per epoch = forward + backward (the backward pass
 * repeats the SpMM with the transposed adjacency plus GEMM gradients).
 * The DGL variant dispatches cuSPARSE-style SpMM; the
 * PyTorch+SparseTIR variant plugs in the tuned hyb SpMM kernels.
 */

#ifndef SPARSETIR_MODEL_GRAPHSAGE_H_
#define SPARSETIR_MODEL_GRAPHSAGE_H_

#include <cstdint>

#include "dfg/op_graph.h"
#include "engine/engine.h"
#include "format/csr.h"
#include "gpusim/simulator.h"

namespace sparsetir {
namespace model {

struct GraphSageConfig
{
    int64_t featIn = 128;
    int64_t featHidden = 128;
    int numLayers = 2;
};

struct GraphSageResult
{
    double dglMs = 0.0;
    double sparsetirMs = 0.0;
};

/** Simulate one training epoch under both frameworks. */
GraphSageResult graphSageEpoch(const format::Csr &graph,
                               const GraphSageConfig &config,
                               gpusim::Device &device,
                               int hyb_partitions);

/**
 * One GraphSAGE layer as a dataflow graph: h = mean-aggregate of
 * neighbour features "x" (rows x featIn via the adjacency pattern),
 * "out" = h @ "w" (featIn x featOut dense update). Both nodes share
 * the adjacency's row space, so the layer fuses into a single kernel
 * that never materializes the aggregated features.
 */
dfg::OpGraph buildGraphSageLayerGraph(const dfg::PatternRef &adj,
                                      int64_t feat_in,
                                      int64_t feat_out);

/** Serve one aggregate -> update layer through the engine. */
engine::DispatchInfo
graphSageLayer(engine::Engine &engine, const dfg::PatternRef &adj,
               int64_t feat_in, int64_t feat_out,
               runtime::NDArray *x, runtime::NDArray *w,
               runtime::NDArray *out, bool fuse = true);

} // namespace model
} // namespace sparsetir

#endif // SPARSETIR_MODEL_GRAPHSAGE_H_
