#include "format/csr.h"

#include <algorithm>

#include "support/logging.h"

namespace sparsetir {
namespace format {

Csr
csrFromDense(int64_t rows, int64_t cols, const std::vector<float> &dense)
{
    ICHECK_EQ(static_cast<int64_t>(dense.size()), rows * cols);
    Csr m;
    m.rows = rows;
    m.cols = cols;
    m.indptr.reserve(rows + 1);
    m.indptr.push_back(0);
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
            float v = dense[r * cols + c];
            if (v != 0.0f) {
                m.indices.push_back(static_cast<int32_t>(c));
                m.values.push_back(v);
            }
        }
        m.indptr.push_back(static_cast<int32_t>(m.indices.size()));
    }
    return m;
}

std::vector<float>
csrToDense(const Csr &m)
{
    std::vector<float> dense(m.rows * m.cols, 0.0f);
    for (int64_t r = 0; r < m.rows; ++r) {
        for (int32_t p = m.indptr[r]; p < m.indptr[r + 1]; ++p) {
            dense[r * m.cols + m.indices[p]] += m.values[p];
        }
    }
    return dense;
}

Csr
csrTranspose(const Csr &m)
{
    Csr t;
    t.rows = m.cols;
    t.cols = m.rows;
    t.indptr.assign(m.cols + 1, 0);
    // Counting sort by column.
    for (int32_t c : m.indices) {
        ++t.indptr[c + 1];
    }
    for (int64_t c = 0; c < m.cols; ++c) {
        t.indptr[c + 1] += t.indptr[c];
    }
    t.indices.resize(m.nnz());
    t.values.resize(m.nnz());
    std::vector<int32_t> cursor(t.indptr.begin(), t.indptr.end() - 1);
    for (int64_t r = 0; r < m.rows; ++r) {
        for (int32_t p = m.indptr[r]; p < m.indptr[r + 1]; ++p) {
            int32_t c = m.indices[p];
            int32_t out = cursor[c]++;
            t.indices[out] = static_cast<int32_t>(r);
            t.values[out] = m.values[p];
        }
    }
    return t;
}

bool
csrValid(const Csr &m)
{
    if (static_cast<int64_t>(m.indptr.size()) != m.rows + 1) {
        return false;
    }
    if (m.indptr.front() != 0 ||
        m.indptr.back() != static_cast<int32_t>(m.indices.size())) {
        return false;
    }
    if (m.indices.size() != m.values.size()) {
        return false;
    }
    for (int64_t r = 0; r < m.rows; ++r) {
        if (m.indptr[r] > m.indptr[r + 1]) {
            return false;
        }
        for (int32_t p = m.indptr[r]; p < m.indptr[r + 1]; ++p) {
            if (m.indices[p] < 0 || m.indices[p] >= m.cols) {
                return false;
            }
            if (p + 1 < m.indptr[r + 1] &&
                m.indices[p] >= m.indices[p + 1]) {
                return false;
            }
        }
    }
    return true;
}

float
csrAt(const Csr &m, int64_t r, int64_t c)
{
    ICHECK_GE(r, 0);
    ICHECK_LT(r, m.rows);
    auto begin = m.indices.begin() + m.indptr[r];
    auto end = m.indices.begin() + m.indptr[r + 1];
    auto it = std::lower_bound(begin, end, static_cast<int32_t>(c));
    if (it != end && *it == c) {
        return m.values[it - m.indices.begin()];
    }
    return 0.0f;
}

} // namespace format
} // namespace sparsetir
