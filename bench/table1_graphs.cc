/**
 * @file
 * Reproduces Table 1: statistics of the GNN graphs and the %padding
 * introduced by the hyb(c, k) composable format.
 */

#include <cstdio>

#include "bench_util.h"
#include "format/hyb.h"
#include "graph/datasets.h"
#include "graph/generator.h"

int
main()
{
    using namespace sparsetir;
    benchutil::printHeader(
        "Table 1: graphs used in GNN experiments (synthetic stand-ins)");
    std::printf("%-15s %10s %12s %8s %10s | %10s\n", "graph", "#nodes",
                "#edges", "gini", "%padding", "paper-%pad");
    for (const auto &spec : graph::table1Datasets()) {
        format::Csr g = graph::generateDataset(spec);
        graph::DegreeStats stats = graph::degreeStats(g);
        format::Hyb hyb = format::hybFromCsr(g, 1, -1);
        std::printf("%-15s %10lld %12lld %8.2f %10.1f | %10.1f",
                    spec.name.c_str(),
                    static_cast<long long>(g.rows),
                    static_cast<long long>(g.nnz()), stats.gini,
                    hyb.paddingRatio() * 100.0, spec.paperPaddingPct);
        if (spec.nodes != spec.paperNodes) {
            std::printf("   (scaled from %lld nodes / %lld edges)",
                        static_cast<long long>(spec.paperNodes),
                        static_cast<long long>(spec.paperEdges));
        }
        std::printf("\n");
    }
    std::printf("\n%%padding = padded zeros / stored entries for "
                "hyb(1, ceil(log2(nnz/rows))), as in the paper.\n");
    return 0;
}
