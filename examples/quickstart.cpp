/**
 * @file
 * Quickstart: define SpMM in SparseTIR (the paper's Figure 3), walk
 * it through all three IR stages, schedule it for a GPU, print the
 * generated CUDA-like source, execute it functionally and simulate
 * its performance.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <memory>

#include "codegen/cuda_codegen.h"
#include "core/ops.h"
#include "core/pipeline.h"
#include "gpusim/simulator.h"
#include "ir/printer.h"
#include "schedule/schedule.h"
#include "transform/lower_sparse_buffer.h"
#include "transform/lower_sparse_iter.h"

using namespace sparsetir;

int
main()
{
    // ---- Stage I: coordinate-space computation (Figure 3). ----
    ir::PrimFunc stage1 = core::buildSpmm();
    std::printf("================ Stage I ================\n%s\n",
                ir::funcToString(stage1).c_str());

    // ---- Stage II: sparse iteration lowering (Section 3.3). ----
    ir::PrimFunc stage2 = transform::lowerSparseIterations(stage1);
    std::printf("================ Stage II ===============\n%s\n",
                ir::funcToString(stage2).c_str());

    // ---- Composable transformations (Section 3.3.2). ----
    schedule::Schedule sch(stage2);
    auto loops = sch.getLoops("spmm");  // i, j, k
    sch.reorder({loops[2], loops[1]});
    auto [k_o, k_i] = sch.split(loops[2], 32);
    sch.bind(loops[0], "blockIdx.x");
    sch.bind(k_i, "threadIdx.x");
    sch.cacheWrite("spmm", "C");

    // ---- Stage III: sparse buffer lowering (Section 3.4). ----
    ir::PrimFunc stage3 = transform::lowerSparseBuffers(sch.func());
    std::printf("================ Stage III ==============\n%s\n",
                ir::funcToString(stage3).c_str());

    // ---- Target-specific code generation (Section 3.5). ----
    std::printf("================ CUDA ===================\n%s\n",
                codegen::emitCuda(stage3).c_str());

    // ---- Execute on a small CSR matrix and verify. ----
    format::Csr a;
    a.rows = 4;
    a.cols = 5;
    a.indptr = {0, 2, 3, 3, 7};
    a.indices = {1, 3, 0, 0, 2, 3, 4};
    a.values = {1, 2, 3, 4, 5, 6, 7};
    int64_t feat = 4;
    std::vector<float> b_host(a.cols * feat);
    for (size_t i = 0; i < b_host.size(); ++i) {
        b_host[i] = 0.25f * static_cast<float>(i % 7);
    }

    auto shared = std::make_shared<core::BindingSet>();
    auto kernel = core::compileSpmmCsr(a, feat, shared);
    runtime::NDArray b = runtime::NDArray::fromFloat(b_host);
    runtime::NDArray c({a.rows * feat}, ir::DataType::float32());
    shared->external("B_data", &b);
    shared->external("C_data", &c);
    kernel->execute();

    auto expected = core::referenceSpmm(a, b_host, feat);
    double worst = 0.0;
    for (int64_t i = 0; i < c.numel(); ++i) {
        worst = std::max(worst,
                         std::abs(expected[i] - c.floatAt(i)));
    }
    std::printf("functional check: max |err| = %g (%s)\n", worst,
                worst < 1e-5 ? "PASS" : "FAIL");

    // ---- Simulate on the V100 model. ----
    gpusim::Device device(gpusim::GpuSpec::v100());
    gpusim::KernelStats stats = device.launch(kernel->simKernel());
    std::printf("simulated: %.4f ms, %lld blocks, L1 %.0f%%, "
                "DRAM %lld bytes\n",
                stats.timeMs,
                static_cast<long long>(stats.numBlocks),
                stats.l1HitRate * 100.0,
                static_cast<long long>(stats.dramBytes));
    return 0;
}
