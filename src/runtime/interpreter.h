/**
 * @file
 * Functional execution of lowered SparseTIR programs.
 *
 * The interpreter walks Stage II/III IR and executes it on the host:
 * GPU thread-binding loops run as plain serial loops (the lowering
 * keeps per-thread work disjoint or reduction-local, so serial
 * emulation is exact). It is the reference semantics against which
 * every schedule primitive must be meaning-preserving, and the source
 * of numerical ground truth for the benchmark suite.
 */

#ifndef SPARSETIR_RUNTIME_INTERPRETER_H_
#define SPARSETIR_RUNTIME_INTERPRETER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ir/prim_func.h"
#include "observe/metrics.h"
#include "runtime/ndarray.h"

namespace sparsetir {
namespace runtime {

/** Bindings from function parameter names to arrays/scalars. */
struct Bindings
{
    /** Handle params (buffer data, indptr, indices) by param name. */
    std::unordered_map<std::string, NDArray *> arrays;
    /** Scalar int params by name. */
    std::unordered_map<std::string, int64_t> scalars;
};

/**
 * A compact window over a logically full-sized buffer parameter.
 *
 * Kernels address scatter outputs by absolute element offset, but a
 * kernel unit typically writes only a small part of the output (its
 * touched rows). An OffsetView describes that write set as sorted,
 * disjoint absolute spans packed contiguously: binding an array of
 * `numel` (= sum of span extents) elements together with the view
 * makes the backend translate every access of the parameter from its
 * absolute offset into the packed storage. This is what lets the
 * parallel executor privatize an accumulated output into scratch
 * sized to the unit's write-set extent instead of the whole output.
 *
 * Accesses outside every span fault (InternalError) on both backends
 * — the view doubles as an enforcement of the "spans cover every
 * element the kernel touches" contract, which plain full-sized
 * privatization had to trust.
 */
struct OffsetView
{
    /** Absolute element spans [begin, end): sorted, disjoint. */
    std::vector<std::pair<int64_t, int64_t>> spans;
    /** Packed offset of spans[k].first (prefix sum of extents). */
    std::vector<int64_t> bases;
    /** Packed storage size: sum of span extents. */
    int64_t numel = 0;

    /**
     * Build a view from spans (each non-empty with begin >= 0,
     * sorted, disjoint; an empty list is a valid empty window whose
     * every access faults).
     */
    static OffsetView
    fromSpans(std::vector<std::pair<int64_t, int64_t>> spans);

    /**
     * Packed offset of an absolute offset, or -1 when it lies
     * outside every span.
     */
    int64_t
    translate(int64_t offset) const
    {
        // Contiguous write sets — the common case — cost two
        // compares and a subtract per access.
        if (spans.size() == 1) {
            return offset >= spans[0].first && offset < spans[0].second
                       ? offset - spans[0].first
                       : -1;
        }
        size_t lo = 0;
        size_t hi = spans.size();
        while (lo < hi) {  // first span with begin > offset
            size_t mid = (lo + hi) / 2;
            if (spans[mid].first <= offset) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if (lo == 0 || offset >= spans[lo - 1].second) {
            return -1;
        }
        return bases[lo - 1] + (offset - spans[lo - 1].first);
    }
};

/**
 * One rebased buffer parameter of a dispatch: every access of the
 * named parameter translates through `view` (borrowed; must outlive
 * the run) into the compact array bound under the same name.
 */
struct BufferView
{
    std::string name;
    const OffsetView *view = nullptr;
};

/**
 * Host execution backend for lowered kernels.
 *
 * kInterpreter walks the AST and is the reference semantics; it keeps
 * the strictest per-access diagnostics. kBytecode compiles the
 * function once (memoized) to a flat register program and executes it
 * on a dispatch loop — same results bitwise, an order of magnitude
 * faster on warm dispatches. Functions the bytecode compiler cannot
 * lower (Stage I sparse iterations, vector IR) silently fall back to
 * the interpreter, whose diagnostics are authoritative.
 *
 * kNative is the third tier: the same Stage III subset emitted as C,
 * compiled out-of-process and dlopen'd (runtime/native/). Results are
 * bitwise identical to both other backends. Native artifacts are
 * attached per compiled kernel by the engine's promotion policy;
 * until one is ready — or when emission/compilation bails — kNative
 * dispatches execute on bytecode (and from there the interpreter),
 * so the request path never blocks on a C compiler.
 */
enum class Backend : uint8_t {
    kInterpreter,
    kBytecode,
    kNative,
};

/**
 * Execution window over the kernel's launch grid.
 *
 * When blockEnd >= 0, only iterations v with blockBegin <= v <
 * blockEnd of the outermost "blockIdx.x"-bound loop are executed;
 * other statements run normally. This is the unit of host-side
 * parallelism: the lowering keeps writes of distinct blockIdx
 * iterations either disjoint or expressed as read-modify-write
 * accumulation (which the parallel executor privatizes), so disjoint
 * windows of one kernel may run on different threads over shared
 * buffers.
 */
struct RunOptions
{
    int64_t blockBegin = 0;
    int64_t blockEnd = -1;  // -1: no restriction
    Backend backend = Backend::kBytecode;
    /**
     * Rebased buffer parameters of this run (see OffsetView): both
     * backends translate every access of a listed parameter through
     * its view into the compact array bound under that name. The
     * parallel executor uses this to run one kernel unchanged
     * against a write-set-sized privatization buffer.
     */
    std::vector<BufferView> offsetViews;
};

/**
 * Execute a PrimFunc over the given bindings. Buffers are updated in
 * place. Throws UserError when a parameter binding is missing and
 * InternalError on IR-level inconsistencies (e.g. out-of-bounds
 * access, which indicates a lowering bug). Executes on the default
 * backend (bytecode, interpreter fallback).
 */
void run(const ir::PrimFunc &func, const Bindings &bindings);

/** Execute a block-index window of a PrimFunc (see RunOptions). */
void run(const ir::PrimFunc &func, const Bindings &bindings,
         const RunOptions &options);

/**
 * Execute on the tree-walking interpreter regardless of
 * options.backend — the reference oracle for differential testing.
 */
void runInterpreted(const ir::PrimFunc &func, const Bindings &bindings,
                    const RunOptions &options = RunOptions());

/**
 * First For node bound to "blockIdx.x" in pre-order, or null. This is
 * the loop RunOptions block windows restrict, for both backends.
 */
const ir::ForNode *findBlockIdxLoop(const ir::Stmt &s);

/**
 * Floor division (toward negative infinity), the semantics of the
 * IR's floordiv/floormod. Shared by both backends so rounding can
 * never drift between them; throws InternalError on division by zero.
 */
int64_t floordivInt(int64_t a, int64_t b);

/** Execute every function in a module, in order. */
void runModule(const ir::Module &mod, const Bindings &bindings);

/** Launch-grid shape of a lowered kernel. */
struct LaunchInfo
{
    /** True when the kernel has an outermost blockIdx.x-bound loop. */
    bool hasBlockIdx = false;
    /**
     * Extent of that loop, evaluated against the scalar bindings;
     * 0 when absent or not evaluable from the bindings alone.
     */
    int64_t blockExtent = 0;
};

/**
 * Inspect the launch grid of `func` given scalar bindings. Returns
 * hasBlockIdx=false when the extent of the outermost blockIdx.x loop
 * cannot be evaluated from constants and bound scalars (e.g. it
 * depends on a loop-carried value), in which case callers must run
 * the kernel unsplit.
 *
 * This probe walks the IR and instantiates an interpreter per call;
 * it belongs on the compile path. Warm dispatchers should evaluate
 * the block-extent expression spilled into their compiled artifact
 * (bytecode::Program::blockExtent / engine::CompiledKernel) with
 * evalScalarExtent instead. Every call increments launchProbeCount()
 * so tests can assert warm paths never come back here.
 */
LaunchInfo launchInfo(const ir::PrimFunc &func, const Bindings &bindings);

/**
 * Process-wide count of launchInfo() grid probes (see above): a view
 * over the `runtime.launch_probes` counter in
 * observe::MetricsRegistry::global().
 */
uint64_t launchProbeCount();

/**
 * Reset launchProbeCount() to zero — a compatibility shim over
 * resetting the global registry counter. The process-wide count
 * still exists for legacy zero-probe assertions: test suites (the
 * fuzzers especially) quiesce, reset, run the warm path under test,
 * and assert the count is exactly zero. Code that needs non-aliased
 * attribution (concurrent engines in one process) should install a
 * ProbeCounterScope instead of reading this.
 */
void resetLaunchProbeCount();

/**
 * Attribute this thread's launchInfo() probes to `counter` for the
 * scope's lifetime, in addition to the process-global count. The
 * engine installs one around artifact builds so each engine's own
 * metrics registry sees only its probes — concurrent engines no
 * longer alias through the bare global. Scopes nest (inner wins,
 * restored on destruction) and are strictly thread-local: probes on
 * other threads are unaffected.
 */
class ProbeCounterScope
{
  public:
    explicit ProbeCounterScope(observe::Counter *counter);
    ~ProbeCounterScope();

    ProbeCounterScope(const ProbeCounterScope &) = delete;
    ProbeCounterScope &operator=(const ProbeCounterScope &) = delete;

  private:
    observe::Counter *prev_;
};

/**
 * Evaluate an integer expression using only constants and the scalar
 * bindings — no interpreter machine, no buffer state. Returns false
 * (leaving *out untouched) when the expression references anything
 * else (an unbound var, a buffer load, a call) or divides by zero.
 * This is the warm-dispatch grid-sizing path: the same expression
 * class launchInfo() accepts, at a fraction of the cost.
 */
bool evalScalarExtent(const ir::Expr &e, const Bindings &bindings,
                      int64_t *out);

} // namespace runtime
} // namespace sparsetir

#endif // SPARSETIR_RUNTIME_INTERPRETER_H_
