#include "transform/format_decompose.h"

#include <algorithm>
#include <cctype>

#include "ir/analysis.h"
#include "ir/builder.h"
#include "ir/functor.h"

namespace sparsetir {
namespace transform {

using namespace ir;

namespace {

/** Does the statement access a buffer with the given name? */
bool
accessesBuffer(const Stmt &s, const std::string &buffer_name)
{
    for (const auto &access : collectBufferAccesses(s)) {
        if (access.buffer->name == buffer_name) {
            return true;
        }
    }
    return false;
}

std::string
lowered(const std::string &name)
{
    std::string out = name;
    for (auto &c : out) {
        c = static_cast<char>(std::tolower(c));
    }
    return out;
}

/** Fresh iteration variables for a list of axes. */
std::vector<Var>
freshIterVars(const std::vector<Axis> &axes)
{
    std::vector<Var> vars;
    vars.reserve(axes.size());
    for (const auto &axis : axes) {
        vars.push_back(var(lowered(axis->name), axis->idtype));
    }
    return vars;
}

/**
 * Rewrites accesses of the original buffer into the new buffer and
 * substitutes original iteration variables by inverse-mapped
 * coordinate expressions.
 */
class BodyRewriter : public StmtMutator
{
  public:
    BodyRewriter(const Buffer &old_buffer, const Buffer &new_buffer,
                 const std::vector<Expr> &new_buffer_indices,
                 const std::map<const VarNode *, Expr> &var_subst)
        : oldBuffer_(old_buffer), newBuffer_(new_buffer),
          newIndices_(new_buffer_indices), varSubst_(var_subst)
    {}

  protected:
    Expr
    mutateVar(const VarNode *op, const Expr &e) override
    {
        auto it = varSubst_.find(op);
        return it != varSubst_.end() ? it->second : e;
    }

    Expr
    mutateBufferLoad(const BufferLoadNode *op, const Expr &e) override
    {
        if (op->buffer.get() == oldBuffer_.get()) {
            return bufferLoad(newBuffer_, newIndices_);
        }
        return StmtMutator::mutateBufferLoad(op, e);
    }

    Stmt
    mutateBufferStore(const BufferStoreNode *op, const Stmt &s) override
    {
        Expr value = mutateExpr(op->value);
        if (op->buffer.get() == oldBuffer_.get()) {
            return bufferStore(newBuffer_, newIndices_, std::move(value));
        }
        std::vector<Expr> indices;
        for (const auto &idx : op->indices) {
            indices.push_back(mutateExpr(idx));
        }
        return bufferStore(op->buffer, std::move(indices),
                           std::move(value));
    }

  private:
    const Buffer &oldBuffer_;
    const Buffer &newBuffer_;
    const std::vector<Expr> &newIndices_;
    const std::map<const VarNode *, Expr> &varSubst_;
};

/** Build the per-rule rewritten compute iteration. */
Stmt
rewriteIterationForRule(const SparseIterationNode *op,
                        const FormatRewriteRule &rule,
                        const Buffer &old_buffer)
{
    // 1. Expand the axis list through the rule's axis map.
    std::vector<Axis> new_axes;
    std::vector<IterKind> new_kinds;
    // Original iter var -> index in op->axes.
    std::map<std::string, Axis> rule_axis_by_name;
    for (const auto &axis : rule.newAxes) {
        rule_axis_by_name[axis->name] = axis;
    }
    // Original axis index -> list of replacement axis indices in
    // new_axes (for building the inverse substitution later).
    std::vector<std::vector<size_t>> replacement(op->axes.size());
    std::vector<Var> new_vars;
    for (size_t i = 0; i < op->axes.size(); ++i) {
        auto it = rule.axisMap.find(op->axes[i]->name);
        if (it == rule.axisMap.end()) {
            // Unmapped axis: keep the axis AND its iteration variable
            // so body references stay valid.
            replacement[i] = {new_axes.size()};
            new_axes.push_back(op->axes[i]);
            new_kinds.push_back(op->iterKinds[i]);
            new_vars.push_back(op->iterVars[i]);
        } else {
            for (const auto &name : it->second) {
                auto axis_it = rule_axis_by_name.find(name);
                USER_CHECK(axis_it != rule_axis_by_name.end())
                    << "axis map of rule '" << rule.name
                    << "' references unknown new axis '" << name << "'";
                replacement[i].push_back(new_axes.size());
                new_axes.push_back(axis_it->second);
                new_kinds.push_back(op->iterKinds[i]);
                new_vars.push_back(var(lowered(axis_it->second->name),
                                       axis_it->second->idtype));
            }
        }
    }

    // 2. Inverse map: original mapped coordinates from new iter vars.
    // The inverse index map takes new-buffer-axis-order coordinates.
    std::map<std::string, Expr> new_coord_by_axis;
    for (size_t i = 0; i < new_axes.size(); ++i) {
        new_coord_by_axis[new_axes[i]->name] = new_vars[i];
    }
    std::vector<Expr> new_buffer_coords;
    for (const auto &axis : rule.newBuffer->axes) {
        auto it = new_coord_by_axis.find(axis->name);
        USER_CHECK(it != new_coord_by_axis.end())
            << "new buffer axis '" << axis->name
            << "' is not iterated after rewriting '" << op->name << "'";
        new_buffer_coords.push_back(it->second);
    }
    std::vector<Expr> old_coords = rule.invIndexMap(new_buffer_coords);
    USER_CHECK(old_coords.size() == old_buffer->axes.size())
        << "inverse index map of rule '" << rule.name << "' must produce "
        << old_buffer->axes.size() << " coordinates";

    // Substitution: old iteration vars -> inverse-mapped expressions.
    std::map<const VarNode *, Expr> var_subst;
    for (size_t d = 0; d < old_buffer->axes.size(); ++d) {
        // Which iteration variable rides this old buffer axis?
        for (size_t i = 0; i < op->axes.size(); ++i) {
            if (op->axes[i].get() == old_buffer->axes[d].get()) {
                var_subst[op->iterVars[i].get()] = old_coords[d];
            }
        }
    }

    // New-buffer access indices are the new iteration variables in
    // buffer axis order.
    BodyRewriter rewriter(old_buffer, rule.newBuffer, new_buffer_coords,
                          var_subst);
    Stmt body = rewriter.mutateStmt(op->body);
    Stmt init =
        op->init != nullptr ? rewriter.mutateStmt(op->init) : nullptr;

    auto node = std::make_shared<SparseIterationNode>(
        op->name + "_" + rule.name, std::move(new_axes),
        std::move(new_vars), std::move(new_kinds), std::move(body));
    node->init = init;
    return node;
}

/** Build the copy iteration for one rule. */
SparseIteration
makeCopyIteration(const FormatRewriteRule &rule, const Buffer &old_buffer)
{
    const std::vector<Axis> &axes = rule.newAxes;
    std::string pattern(axes.size(), 'S');
    return makeSparseIteration(
        "copy_" + rule.name, axes, pattern,
        [&](const std::vector<Var> &vars) {
            std::map<std::string, Expr> coord_by_axis;
            for (size_t i = 0; i < axes.size(); ++i) {
                coord_by_axis[axes[i]->name] = vars[i];
            }
            std::vector<Expr> store_indices;
            for (const auto &axis : rule.newBuffer->axes) {
                store_indices.push_back(coord_by_axis.at(axis->name));
            }
            std::vector<Expr> old_coords =
                rule.invIndexMap(store_indices);
            Expr value = bufferLoad(old_buffer, old_coords);
            return bufferStore(rule.newBuffer, store_indices,
                               std::move(value));
        });
}

} // namespace

DecomposeResult
decomposeFormat(const PrimFunc &func,
                const std::vector<FormatRewriteRule> &rules)
{
    USER_CHECK(func->stage == IrStage::kStage1)
        << "decomposeFormat expects a Stage I function";
    USER_CHECK(!rules.empty()) << "decomposeFormat needs at least one rule";

    DecomposeResult result;
    PrimFunc out = copyFunc(func);

    // Declare new axes, parameters and buffers.
    for (const auto &rule : rules) {
        Buffer old_buffer = func->findBuffer(rule.bufferName);
        USER_CHECK(old_buffer != nullptr)
            << "rule '" << rule.name << "' targets unknown buffer '"
            << rule.bufferName << "'";
        for (const auto &axis : rule.newAxes) {
            out->axes.push_back(axis);
            if (axis->isVariable()) {
                out->params.push_back(axis->indptr);
            }
            if (axis->isSparse()) {
                out->params.push_back(axis->indices);
            }
        }
        out->params.push_back(rule.newBuffer->data);
        out->bufferMap.emplace_back(rule.newBuffer->data, rule.newBuffer);
    }

    // Generate the new body: copy iterations first, then per-rule
    // rewrites of every compute iteration touching the target buffer.
    std::vector<Stmt> new_body;
    for (const auto &rule : rules) {
        Buffer old_buffer = func->findBuffer(rule.bufferName);
        SparseIteration copy_iter = makeCopyIteration(rule, old_buffer);
        result.copyIterNames.push_back(copy_iter->name);
        new_body.push_back(copy_iter);
    }

    std::vector<Stmt> original;
    if (func->body != nullptr) {
        if (func->body->kind == StmtKind::kSeq) {
            auto seq_node =
                std::static_pointer_cast<const SeqStmtNode>(func->body);
            original = seq_node->seq;
        } else {
            original = {func->body};
        }
    }
    for (const auto &stmt : original) {
        if (stmt->kind != StmtKind::kSparseIteration) {
            new_body.push_back(stmt);
            continue;
        }
        auto iter =
            std::static_pointer_cast<const SparseIterationNode>(stmt);
        bool rewritten = false;
        for (const auto &rule : rules) {
            if (!accessesBuffer(stmt, rule.bufferName)) {
                continue;
            }
            Buffer old_buffer = func->findBuffer(rule.bufferName);
            Stmt new_iter =
                rewriteIterationForRule(iter.get(), rule, old_buffer);
            result.computeIterNames.push_back(
                std::static_pointer_cast<const SparseIterationNode>(
                    new_iter)
                    ->name);
            new_body.push_back(new_iter);
            rewritten = true;
        }
        if (!rewritten) {
            new_body.push_back(stmt);
        }
    }

    out->body = seq(std::move(new_body));
    result.func = out;
    return result;
}

std::pair<PrimFunc, PrimFunc>
splitPreprocess(const PrimFunc &func,
                const std::vector<std::string> &copy_names)
{
    auto is_copy = [&](const Stmt &s) {
        if (s->kind != StmtKind::kSparseIteration) {
            return false;
        }
        auto iter =
            std::static_pointer_cast<const SparseIterationNode>(s);
        return std::find(copy_names.begin(), copy_names.end(),
                         iter->name) != copy_names.end();
    };

    std::vector<Stmt> stmts;
    if (func->body->kind == StmtKind::kSeq) {
        stmts = std::static_pointer_cast<const SeqStmtNode>(func->body)
                    ->seq;
    } else {
        stmts = {func->body};
    }
    std::vector<Stmt> pre;
    std::vector<Stmt> compute;
    for (const auto &s : stmts) {
        (is_copy(s) ? pre : compute).push_back(s);
    }

    PrimFunc pre_func = copyFunc(func);
    pre_func->name = func->name + "_preprocess";
    pre_func->body = seq(std::move(pre));
    PrimFunc compute_func = copyFunc(func);
    compute_func->body = seq(std::move(compute));
    return {pre_func, compute_func};
}

} // namespace transform
} // namespace sparsetir
