/**
 * @file
 * Reproduces Figure 19: SpMM over unstructured (movement) pruned
 * weights across densities — SparseTIR(SR-BCRS), SparseTIR(BSR),
 * cuSPARSE and cuBLAS — plus the right panel: stored density of the
 * transformed formats vs original weight density.
 */

#include <cstdio>

#include "baselines/cublas.h"
#include "baselines/cusparse.h"
#include "baselines/vendor_constants.h"
#include "bench_util.h"
#include "core/pipeline.h"
#include "graph/pruned_weights.h"

using namespace sparsetir;

namespace {

void
runDevice(const gpusim::GpuSpec &spec)
{
    gpusim::Device device(spec);
    int64_t rows = benchutil::fastMode() ? 1024 : 4096;
    int64_t cols = 1024;
    int64_t seq = 512;
    std::printf("\n--- %s ---\n", spec.name.c_str());
    std::printf("%-10s %8s %12s %10s %10s | %12s %10s\n", "density",
                "cuBLAS", "ST(SR-BCRS)", "ST(BSR)", "cuSPARSE",
                "srbcrs-dens", "bsr-dens");
    for (int exp = 7; exp >= 3; --exp) {
        double density = 1.0 / static_cast<double>(1 << exp);
        format::Csr w =
            graph::unstructuredPrunedWeight(rows, cols, density, 77);
        format::SrBcrs sr = format::srbcrsFromCsr(w, 8, 32);
        format::Bsr bsr = format::bsrFromCsr(w, 32);
        double bsr_density =
            bsr.values.empty()
                ? 0.0
                : static_cast<double>(w.nnz()) /
                      static_cast<double>(bsr.values.size());

        gpusim::SimOptions opts;
        opts.efficiency = baselines::kCublasEfficiency;
        auto gemm = baselines::cublasGemm(rows, seq, cols, true);
        double base = device.launch(*gemm, opts).timeMs;

        opts.efficiency = baselines::kCusparseEfficiency;
        auto cus = baselines::cusparseSpmm(w, seq);
        double cus_ms = device.launch(*cus, opts).timeMs;

        opts.efficiency = baselines::kSparseTirEfficiency;
        auto sr_shared = std::make_shared<core::BindingSet>();
        runtime::NDArray b({w.cols * seq}, ir::DataType::float32());
        runtime::NDArray c({sr.stripes * sr.tileHeight * seq},
                           ir::DataType::float32());
        sr_shared->external("B_data", &b);
        sr_shared->external("C_data", &c);
        auto st_sr = core::compileSrbcrsSpmm(sr, seq, sr_shared);
        double sr_ms = device.launch(st_sr->simKernel(), opts).timeMs;

        auto bsr_shared = std::make_shared<core::BindingSet>();
        runtime::NDArray b2({bsr.blockCols * 32 * seq},
                            ir::DataType::float32());
        runtime::NDArray c2({bsr.blockRows * 32 * seq},
                            ir::DataType::float32());
        bsr_shared->external("B_data", &b2);
        bsr_shared->external("C_data", &c2);
        auto st_bsr = core::compileBsrSpmm(bsr, seq, bsr_shared, true);
        double bsr_ms =
            device.launch(st_bsr->simKernel(), opts).timeMs;

        std::printf("2^-%-7d %8.2f %12.2f %10.2f %10.2f | %12.3f "
                    "%10.3f\n",
                    exp, 1.0, base / sr_ms, base / bsr_ms,
                    base / cus_ms, sr.storedDensity(), bsr_density);
    }
}

} // namespace

int
main()
{
    benchutil::printHeader(
        "Figure 19: unstructured-pruned transformer SpMM vs cuBLAS "
        "(SR-BCRS(8,32) vs BSR(32))");
    runDevice(gpusim::GpuSpec::v100());
    runDevice(gpusim::GpuSpec::rtx3070());
    std::printf(
        "\nPaper: SR-BCRS beats BSR except near density 2^-3 (both "
        "transformed formats saturate); cuSPARSE\nonly beats cuBLAS "
        "below ~2^-6. Right panel: SR-BCRS stored density well above "
        "BSR's.\n");
    return 0;
}
