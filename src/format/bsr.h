/**
 * @file
 * Block Compressed Sparse Row storage (square blocks).
 */

#ifndef SPARSETIR_FORMAT_BSR_H_
#define SPARSETIR_FORMAT_BSR_H_

#include <cstdint>
#include <vector>

#include "format/csr.h"

namespace sparsetir {
namespace format {

/**
 * BSR matrix: CSR over blockSize x blockSize dense blocks. Block
 * values are stored block-major, row-major within a block (the layout
 * eq. 6-8 produce for the [IO, JO, II, JI] axis composition).
 */
struct Bsr
{
    int64_t rows = 0;
    int64_t cols = 0;
    int32_t blockSize = 1;
    int64_t blockRows = 0;
    int64_t blockCols = 0;
    std::vector<int32_t> indptr;   // blockRows + 1
    std::vector<int32_t> indices;  // nnz blocks
    std::vector<float> values;     // nnzBlocks * blockSize^2

    int64_t
    nnzBlocks() const
    {
        return static_cast<int64_t>(indices.size());
    }

    /** Fraction of stored values that are padding zeros. */
    double paddingRatio() const;
};

/** Convert CSR to BSR with the given block size (rows/cols padded). */
Bsr bsrFromCsr(const Csr &m, int32_t block_size);

/** Expand to row-major dense (original rows x cols). */
std::vector<float> bsrToDense(const Bsr &m);

} // namespace format
} // namespace sparsetir

#endif // SPARSETIR_FORMAT_BSR_H_
