#include "baselines/frameworks.h"

namespace sparsetir {
namespace baselines {

std::unique_ptr<gpusim::Kernel>
dglSddmm(const format::Csr &a, int64_t feat)
{
    SddmmParams params;
    params.rowParallel = true;   // FeatGraph row-parallel schedule
    params.vectorWidth = 4;
    params.twoStageReduction = false;
    return std::make_unique<SddmmKernel>("dgl_sddmm", a, feat, params);
}

std::unique_ptr<gpusim::Kernel>
dglSpmm(const format::Csr &a, int64_t feat)
{
    RowSplitParams params;
    params.rowsPerBlock = 32;
    params.vectorWidth = 4;
    params.registerAccum = true;
    params.unrollDiscount = 0.25;
    return std::make_unique<RowSplitSpmmKernel>("dgl_spmm", a, feat,
                                                params);
}

RgcnPlan
dglRgcn(const format::RelationalCsr &graph, int64_t feat_in,
        int64_t feat_out)
{
    RgcnPlan plan;
    for (size_t r = 0; r < graph.relations.size(); ++r) {
        const format::Csr &rel = graph.relations[r];
        if (rel.nnz() == 0) {
            continue;
        }
        std::string tag = "_r" + std::to_string(r);
        // Stage 1: T_r = X @ W_r for every node (eq. 9).
        plan.kernels.push_back(std::make_unique<DenseGemmKernel>(
            "dgl_gemm" + tag, graph.cols, feat_out, feat_in, false));
        // Stage 2: Y += A_r @ T_r (eq. 10).
        plan.kernels.push_back(std::make_unique<RowSplitSpmmKernel>(
            "dgl_spmm" + tag, rel, feat_out, RowSplitParams{}));
        plan.intermediateBytes += graph.cols * feat_out * 4;
        plan.extraLaunches += 2;  // framework dispatch per stage
    }
    return plan;
}

RgcnPlan
pygRgcn(const format::RelationalCsr &graph, int64_t feat_in,
        int64_t feat_out)
{
    RgcnPlan plan;
    for (size_t r = 0; r < graph.relations.size(); ++r) {
        const format::Csr &rel = graph.relations[r];
        if (rel.nnz() == 0) {
            continue;
        }
        std::string tag = "_r" + std::to_string(r);
        // Edge-wise: gather source features per edge, transform, then
        // scatter — the per-edge intermediate is nnz x feat.
        plan.kernels.push_back(std::make_unique<GatherScatterKernel>(
            "pyg_gather" + tag, rel.nnz(), feat_in, false));
        plan.kernels.push_back(std::make_unique<DenseGemmKernel>(
            "pyg_gemm" + tag, rel.nnz(), feat_out, feat_in, false));
        plan.kernels.push_back(std::make_unique<GatherScatterKernel>(
            "pyg_scatter" + tag, rel.nnz(), feat_out, true));
        plan.intermediateBytes +=
            rel.nnz() * (feat_in + feat_out) * 4;
        plan.extraLaunches += 3;
    }
    return plan;
}

RgcnPlan
graphilerRgcn(const format::RelationalCsr &graph, int64_t feat_in,
              int64_t feat_out)
{
    RgcnPlan plan;
    for (size_t r = 0; r < graph.relations.size(); ++r) {
        const format::Csr &rel = graph.relations[r];
        if (rel.nnz() == 0) {
            continue;
        }
        std::string tag = "_r" + std::to_string(r);
        // Compiled message passing: T_r computed only for touched
        // source nodes, messages consumed in one SpMM-like pass; no
        // per-edge HBM intermediate, but CSR (no load balancing) and
        // CUDA cores only.
        plan.kernels.push_back(std::make_unique<DenseGemmKernel>(
            "graphiler_gemm" + tag, graph.cols, feat_out, feat_in,
            false));
        RowSplitParams spmm;
        spmm.rowsPerBlock = 16;
        spmm.vectorWidth = 4;
        plan.kernels.push_back(std::make_unique<RowSplitSpmmKernel>(
            "graphiler_spmm" + tag, rel, feat_out, spmm));
        plan.intermediateBytes += graph.cols * feat_out * 4;
        plan.extraLaunches += 1;  // fused dispatch
    }
    return plan;
}

} // namespace baselines
} // namespace sparsetir
