/**
 * @file
 * End-to-end pipeline tests: every compiled kernel family is executed
 * by the interpreter and compared against dense references on
 * randomized inputs.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/ops.h"
#include "core/pipeline.h"
#include "format/bsr.h"
#include "format/dcsr.h"
#include "format/srbcrs.h"
#include "graph/generator.h"
#include "transform/lower_sparse_buffer.h"
#include "transform/lower_sparse_iter.h"
#include "support/rng.h"

namespace sparsetir {
namespace {

using core::BindingSet;
using format::Csr;
using runtime::NDArray;

std::vector<float>
randomVector(int64_t size, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> out(size);
    for (auto &v : out) {
        v = static_cast<float>(rng.uniformReal() * 2.0 - 1.0);
    }
    return out;
}

Csr
randomCsr(int64_t rows, int64_t cols, double density, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> dense(rows * cols, 0.0f);
    for (auto &v : dense) {
        if (rng.uniformReal() < density) {
            v = static_cast<float>(rng.uniformReal() * 2.0 - 1.0);
            if (v == 0.0f) {
                v = 0.5f;
            }
        }
    }
    return format::csrFromDense(rows, cols, dense);
}

TEST(Pipeline, SpmmCsrMatchesReference)
{
    Csr a = randomCsr(37, 29, 0.15, 1);
    int64_t feat = 24;
    auto b_host = randomVector(a.cols * feat, 2);

    auto shared = std::make_shared<BindingSet>();
    auto kernel = core::compileSpmmCsr(a, feat, shared);
    NDArray b = NDArray::fromFloat(b_host);
    NDArray c({a.rows * feat}, ir::DataType::float32());
    shared->external("B_data", &b);
    shared->external("C_data", &c);
    kernel->execute();

    auto expected = core::referenceSpmm(a, b_host, feat);
    for (int64_t i = 0; i < c.numel(); ++i) {
        ASSERT_NEAR(expected[i], c.floatAt(i), 1e-4) << "at " << i;
    }
}

TEST(Pipeline, SpmmHybMatchesReference)
{
    // Power-law graph exercises multiple buckets and row splitting.
    Csr a = graph::powerLawGraph(150, 1800, 1.8, 3);
    int64_t feat = 16;
    auto b_host = randomVector(a.cols * feat, 4);

    for (int c_partitions : {1, 2, 4}) {
        auto shared = std::make_shared<BindingSet>();
        NDArray b = NDArray::fromFloat(b_host);
        NDArray c({a.rows * feat}, ir::DataType::float32());
        shared->external("B_data", &b);
        shared->external("C_data", &c);
        core::HybSpmm compiled =
            core::compileSpmmHyb(a, feat, c_partitions, -1, shared);
        EXPECT_GE(compiled.kernels.size(), 1u);
        // Buckets accumulate partial results; C starts zeroed and
        // each bucket's init must not wipe other buckets' work, so
        // the generated kernels accumulate through C.
        for (auto &kernel : compiled.kernels) {
            kernel->execute();
        }
        auto expected = core::referenceSpmm(a, b_host, feat);
        double worst = 0.0;
        for (int64_t i = 0; i < c.numel(); ++i) {
            worst = std::max(
                worst, std::abs(expected[i] - c.floatAt(i)));
        }
        EXPECT_LT(worst, 1e-3)
            << "hyb(" << c_partitions << ") mismatch";
    }
}

TEST(Pipeline, HybCoversAllNonzeros)
{
    Csr a = graph::powerLawGraph(200, 3000, 1.7, 5);
    format::Hyb hyb = format::hybFromCsr(a, 2, -1);
    auto dense = format::csrToDense(a);
    auto rebuilt = format::hybToDense(hyb);
    ASSERT_EQ(dense.size(), rebuilt.size());
    for (size_t i = 0; i < dense.size(); ++i) {
        ASSERT_NEAR(dense[i], rebuilt[i], 1e-5) << "at " << i;
    }
}

TEST(Pipeline, SddmmMatchesReference)
{
    Csr a = randomCsr(41, 33, 0.12, 7);
    int64_t feat = 32;
    auto x_host = randomVector(a.rows * feat, 8);
    auto y_host = randomVector(feat * a.cols, 9);

    auto shared = std::make_shared<BindingSet>();
    auto kernel = core::compileSddmm(a, feat, shared);
    NDArray x = NDArray::fromFloat(x_host);
    NDArray y = NDArray::fromFloat(y_host);
    NDArray out({a.nnz()}, ir::DataType::float32());
    shared->external("X_data", &x);
    shared->external("Y_data", &y);
    shared->external("B_data", &out);
    kernel->execute();

    auto expected = core::referenceSddmm(a, x_host, y_host, feat);
    for (int64_t i = 0; i < out.numel(); ++i) {
        ASSERT_NEAR(expected[i], out.floatAt(i), 1e-3) << "at " << i;
    }
}

TEST(Pipeline, BsrSpmmMatchesReference)
{
    Csr a = randomCsr(48, 40, 0.1, 11);
    format::Bsr bsr = format::bsrFromCsr(a, 8);
    int64_t feat = 16;
    int64_t padded_cols = bsr.blockCols * bsr.blockSize;
    int64_t padded_rows = bsr.blockRows * bsr.blockSize;
    auto b_host = randomVector(padded_cols * feat, 12);

    auto shared = std::make_shared<BindingSet>();
    auto kernel = core::compileBsrSpmm(bsr, feat, shared, true);
    NDArray b = NDArray::fromFloat(b_host);
    NDArray c({padded_rows * feat}, ir::DataType::float32());
    shared->external("B_data", &b);
    shared->external("C_data", &c);
    kernel->execute();

    // Reference over the padded dense expansion.
    auto dense = format::bsrToDense(bsr);
    for (int64_t r = 0; r < a.rows; ++r) {
        for (int64_t k = 0; k < feat; ++k) {
            float expected = 0.0f;
            for (int64_t col = 0; col < a.cols; ++col) {
                expected +=
                    dense[r * a.cols + col] * b_host[col * feat + k];
            }
            ASSERT_NEAR(expected, c.floatAt(r * feat + k), 1e-3)
                << "at (" << r << "," << k << ")";
        }
    }
}

TEST(Pipeline, SrbcrsSpmmMatchesReference)
{
    Csr a = randomCsr(64, 48, 0.06, 13);
    format::SrBcrs sr = format::srbcrsFromCsr(a, 8, 4);
    int64_t feat = 8;
    auto b_host = randomVector(a.cols * feat, 14);

    auto shared = std::make_shared<BindingSet>();
    auto kernel = core::compileSrbcrsSpmm(sr, feat, shared);
    NDArray b = NDArray::fromFloat(b_host);
    NDArray c({sr.stripes * sr.tileHeight * feat},
              ir::DataType::float32());
    shared->external("B_data", &b);
    shared->external("C_data", &c);
    kernel->execute();

    auto expected = core::referenceSpmm(a, b_host, feat);
    for (int64_t r = 0; r < a.rows; ++r) {
        for (int64_t k = 0; k < feat; ++k) {
            ASSERT_NEAR(expected[r * feat + k],
                        c.floatAt(r * feat + k), 1e-3)
                << "at (" << r << "," << k << ")";
        }
    }
}

TEST(Pipeline, EllRgmsMatchesReference)
{
    // One relation: Y += A @ X @ W with A an ELL bucket.
    Csr a = randomCsr(30, 26, 0.2, 15);
    // Bucket: rows with length <= 8, padded.
    std::vector<int32_t> rows;
    for (int64_t r = 0; r < a.rows; ++r) {
        if (a.rowLength(r) > 0 && a.rowLength(r) <= 8) {
            rows.push_back(static_cast<int32_t>(r));
        }
    }
    ASSERT_FALSE(rows.empty());
    format::Ell bucket = format::ellFromCsrRows(a, rows, 8);

    int64_t fin = 16;
    int64_t fout = 16;
    auto x_host = randomVector(a.cols * fin, 16);
    auto w_host = randomVector(fin * fout, 17);

    auto shared = std::make_shared<BindingSet>();
    shared->scalar("m", a.rows);
    shared->scalar("n", a.cols);
    NDArray x = NDArray::fromFloat(x_host);
    NDArray w = NDArray::fromFloat(w_host);
    NDArray y({a.rows * fout}, ir::DataType::float32());
    shared->external("X_data", &x);
    shared->external("W_data", &w);
    shared->external("Y_data", &y);
    auto kernel = core::compileEllRgms(bucket, fin, fout, shared, "t0",
                                       true, 2);
    kernel->execute();

    // Reference: only bucket rows contribute.
    std::vector<float> expected(a.rows * fout, 0.0f);
    for (int32_t r : rows) {
        for (int32_t p = a.indptr[r]; p < a.indptr[r + 1]; ++p) {
            int64_t j = a.indices[p];
            float av = a.values[p];
            for (int64_t l = 0; l < fout; ++l) {
                float acc = 0.0f;
                for (int64_t k = 0; k < fin; ++k) {
                    acc += x_host[j * fin + k] *
                           w_host[k * fout + l];
                }
                expected[r * fout + l] += av * acc;
            }
        }
    }
    for (int64_t i = 0; i < y.numel(); ++i) {
        ASSERT_NEAR(expected[i], y.floatAt(i), 1e-2) << "at " << i;
    }
}

TEST(Pipeline, FormatDecomposeBsrPlusEllCopies)
{
    // The paper's Figure 5 configuration: decompose CSR SpMM into
    // BSR(2) + ELL(2); the generated copy iterations must move values
    // (with padding zeros) into the new buffers.
    Csr a = randomCsr(8, 8, 0.3, 19);
    format::Bsr bsr = format::bsrFromCsr(a, 2);

    auto rule = core::bsrRule("0", a.rows, a.cols, 2, bsr.blockRows,
                              bsr.nnzBlocks());
    auto stage1 = core::buildSpmm();
    auto result = transform::decomposeFormat(stage1, {rule});
    EXPECT_EQ(result.copyIterNames.size(), 1u);
    EXPECT_EQ(result.computeIterNames.size(), 1u);

    auto [pre, compute] = transform::splitPreprocess(
        result.func, result.copyIterNames);
    auto pre3 = transform::lowerSparseBuffers(
        transform::lowerSparseIterations(pre));

    // Bind and run the copy kernel; the produced values must equal
    // the format library's BSR conversion.
    NDArray indptr = NDArray::fromInt32(a.indptr);
    NDArray indices = NDArray::fromInt32(a.indices);
    NDArray values = NDArray::fromFloat(a.values);
    NDArray bsr_indptr = NDArray::fromInt32(bsr.indptr);
    NDArray bsr_indices = NDArray::fromInt32(bsr.indices);
    NDArray bsr_values(
        {static_cast<int64_t>(bsr.values.size())},
        ir::DataType::float32());
    runtime::Bindings bindings;
    bindings.scalars = {{"m", a.rows},
                        {"n", a.cols},
                        {"nnz", a.nnz()},
                        {"feat_size", 4}};
    bindings.arrays = {{"J_indptr", &indptr},
                       {"J_indices", &indices},
                       {"A_data", &values},
                       {"IO0_indptr", &bsr_indptr},
                       {"JO0_indices", &bsr_indices},
                       {"A_bsr_0_data", &bsr_values}};
    runtime::run(pre3, bindings);

    for (size_t i = 0; i < bsr.values.size(); ++i) {
        ASSERT_NEAR(bsr.values[i], bsr_values.floatAt(i), 1e-5)
            << "at " << i;
    }
}

} // namespace
} // namespace sparsetir
