#include "gpusim/spec.h"

namespace sparsetir {
namespace gpusim {

GpuSpec
GpuSpec::v100()
{
    GpuSpec spec;
    spec.name = "V100";
    spec.numSms = 80;
    spec.clockGhz = 1.38;
    spec.dramBandwidthGBs = 900.0;
    spec.l1SizeBytes = 128 << 10;
    spec.l2SizeBytes = 6 << 20;
    spec.fp32FlopsPerSmPerCycle = 128.0;   // 64 FP32 cores x FMA
    spec.tensorFlopsPerSmPerCycle = 1024.0;  // 8 TCs x 64 FMA x 2
    spec.intOpsPerSmPerCycle = 64.0;
    spec.sharedMemPerSmBytes = 96 << 10;
    spec.launchOverheadUs = 4.0;
    return spec;
}

GpuSpec
GpuSpec::rtx3070()
{
    GpuSpec spec;
    spec.name = "RTX3070";
    spec.numSms = 46;
    spec.clockGhz = 1.73;
    spec.dramBandwidthGBs = 448.0;
    spec.l1SizeBytes = 128 << 10;
    spec.l2SizeBytes = 4 << 20;
    spec.fp32FlopsPerSmPerCycle = 256.0;   // Ampere dual FP32 datapath
    spec.tensorFlopsPerSmPerCycle = 512.0;   // 4 3rd-gen TCs (fp16 acc)
    spec.intOpsPerSmPerCycle = 64.0;
    spec.sharedMemPerSmBytes = 100 << 10;
    spec.launchOverheadUs = 3.0;
    return spec;
}

} // namespace gpusim
} // namespace sparsetir
