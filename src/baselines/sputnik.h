/**
 * @file
 * Sputnik stand-ins: row-swizzled, vector-load SpMM/SDDMM tuned for
 * moderate deep-learning sparsity.
 */

#ifndef SPARSETIR_BASELINES_SPUTNIK_H_
#define SPARSETIR_BASELINES_SPUTNIK_H_

#include <memory>

#include "baselines/models.h"

namespace sparsetir {
namespace baselines {

std::unique_ptr<gpusim::Kernel> sputnikSpmm(const format::Csr &a,
                                            int64_t feat);

std::unique_ptr<gpusim::Kernel> sputnikSddmm(const format::Csr &a,
                                             int64_t feat);

} // namespace baselines
} // namespace sparsetir

#endif // SPARSETIR_BASELINES_SPUTNIK_H_
