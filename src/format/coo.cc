#include "format/coo.h"

#include <algorithm>
#include <numeric>

#include "support/logging.h"

namespace sparsetir {
namespace format {

void
cooCanonicalize(Coo &m)
{
    std::vector<size_t> order(m.row.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (m.row[a] != m.row[b]) {
            return m.row[a] < m.row[b];
        }
        return m.col[a] < m.col[b];
    });
    std::vector<int32_t> row;
    std::vector<int32_t> col;
    std::vector<float> val;
    row.reserve(order.size());
    col.reserve(order.size());
    val.reserve(order.size());
    for (size_t idx : order) {
        if (!row.empty() && row.back() == m.row[idx] &&
            col.back() == m.col[idx]) {
            val.back() += m.val[idx];
        } else {
            row.push_back(m.row[idx]);
            col.push_back(m.col[idx]);
            val.push_back(m.val[idx]);
        }
    }
    m.row = std::move(row);
    m.col = std::move(col);
    m.val = std::move(val);
}

Csr
csrFromCoo(Coo m)
{
    cooCanonicalize(m);
    Csr out;
    out.rows = m.rows;
    out.cols = m.cols;
    out.indptr.assign(m.rows + 1, 0);
    for (int32_t r : m.row) {
        ICHECK_GE(r, 0);
        ICHECK_LT(r, m.rows);
        ++out.indptr[r + 1];
    }
    for (int64_t r = 0; r < m.rows; ++r) {
        out.indptr[r + 1] += out.indptr[r];
    }
    out.indices = std::move(m.col);
    out.values = std::move(m.val);
    return out;
}

Coo
cooFromCsr(const Csr &m)
{
    Coo out;
    out.rows = m.rows;
    out.cols = m.cols;
    out.row.reserve(m.nnz());
    for (int64_t r = 0; r < m.rows; ++r) {
        for (int32_t p = m.indptr[r]; p < m.indptr[r + 1]; ++p) {
            out.row.push_back(static_cast<int32_t>(r));
        }
    }
    out.col = m.indices;
    out.val = m.values;
    return out;
}

} // namespace format
} // namespace sparsetir
