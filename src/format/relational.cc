#include "format/relational.h"

namespace sparsetir {
namespace format {

int64_t
RelationalCsr::totalNnz() const
{
    int64_t total = 0;
    for (const auto &rel : relations) {
        total += rel.nnz();
    }
    return total;
}

int64_t
RelationalHyb::storedEntries() const
{
    int64_t total = 0;
    for (const auto &rel : relations) {
        total += rel.storedEntries();
    }
    return total;
}

int64_t
RelationalHyb::paddedZeros() const
{
    int64_t total = 0;
    for (const auto &rel : relations) {
        total += rel.paddedZeros();
    }
    return total;
}

double
RelationalHyb::paddingRatio() const
{
    int64_t stored = storedEntries();
    return stored == 0
               ? 0.0
               : static_cast<double>(paddedZeros()) /
                     static_cast<double>(stored);
}

RelationalHyb
relationalHyb(const RelationalCsr &m, int32_t c, int32_t k)
{
    RelationalHyb out;
    out.rows = m.rows;
    out.cols = m.cols;
    out.relations.reserve(m.relations.size());
    for (const auto &rel : m.relations) {
        out.relations.push_back(hybFromCsr(rel, c, k));
    }
    return out;
}

bool
KernelMap::isEll1() const
{
    for (const auto &rel : maps.relations) {
        for (int64_t r = 0; r < rel.rows; ++r) {
            if (rel.rowLength(r) > 1) {
                return false;
            }
        }
    }
    return true;
}

} // namespace format
} // namespace sparsetir
