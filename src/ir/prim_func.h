/**
 * @file
 * PrimFunc: a compilable SparseTIR function, plus Module containers.
 */

#ifndef SPARSETIR_IR_PRIM_FUNC_H_
#define SPARSETIR_IR_PRIM_FUNC_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/stmt.h"

namespace sparsetir {
namespace ir {

/** Compilation stage of a PrimFunc's body. */
enum class IrStage : uint8_t {
    /** Coordinate-space computation (sparse iterations). */
    kStage1,
    /** Position-space computation (loops + sparse buffers). */
    kStage2,
    /** Loop-level IR (flat dense buffers only). */
    kStage3,
};

/**
 * A function over tensor parameters.
 *
 * params are scalar or handle variables in signature order; bufferMap
 * associates handle params with the buffers they back. Axes used by the
 * function are reachable from its sparse buffers and sparse iterations;
 * the `axes` list additionally records declaration order for printing.
 */
class PrimFuncNode
{
  public:
    std::string name;
    std::vector<Var> params;
    /** Handle param -> buffer bound to it (declaration order). */
    std::vector<std::pair<Var, Buffer>> bufferMap;
    /** Declared axes in declaration order (for printing only). */
    std::vector<Axis> axes;
    Stmt body;
    IrStage stage = IrStage::kStage1;
    std::map<std::string, Expr> attrs;

    /** Look up the buffer bound to a handle param; null if none. */
    Buffer
    bufferOf(const Var &param) const
    {
        for (const auto &[v, b] : bufferMap) {
            if (v.get() == param.get()) {
                return b;
            }
        }
        return nullptr;
    }

    /** Find a buffer by name; null if absent. */
    Buffer
    findBuffer(const std::string &buffer_name) const
    {
        for (const auto &[v, b] : bufferMap) {
            if (b->name == buffer_name) {
                return b;
            }
        }
        return nullptr;
    }
};

using PrimFunc = std::shared_ptr<PrimFuncNode>;

/** Create an empty PrimFunc shell. */
PrimFunc primFunc(std::string name);

/** Shallow-copy a PrimFunc (body shared until replaced). */
PrimFunc copyFunc(const PrimFunc &func);

/** A named collection of PrimFuncs (one per kernel after splitting). */
class ModuleNode
{
  public:
    std::vector<PrimFunc> functions;

    PrimFunc
    find(const std::string &name) const
    {
        for (const auto &f : functions) {
            if (f->name == name) {
                return f;
            }
        }
        return nullptr;
    }
};

using Module = std::shared_ptr<ModuleNode>;

} // namespace ir
} // namespace sparsetir

#endif // SPARSETIR_IR_PRIM_FUNC_H_
