/**
 * @file
 * GNN SpMM with composable formats: decompose a power-law graph into
 * the hyb(c, k) format (paper §4.2.1), tune the column-partition
 * count with the simulator as cost oracle, and compare against the
 * single-format kernel — the workflow of the paper's Figures 11-13.
 * Tuning and serving both route through an engine::Engine session, so
 * every candidate is compiled once and re-dispatch skips lowering.
 *
 * Build & run:  ./build/examples/gnn_spmm
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "autotune/search.h"
#include "core/pipeline.h"
#include "engine/engine.h"
#include "graph/datasets.h"
#include "graph/generator.h"

using namespace sparsetir;

int
main()
{
    graph::DatasetSpec spec = graph::datasetSpec("pubmed");
    format::Csr g = graph::generateDataset(spec);
    graph::DegreeStats stats = graph::degreeStats(g);
    std::printf("graph: %s (%lld nodes, %lld edges, max degree %lld, "
                "gini %.2f)\n",
                spec.name.c_str(), static_cast<long long>(g.rows),
                static_cast<long long>(g.nnz()),
                static_cast<long long>(stats.maxDegree), stats.gini);

    int64_t feat = 64;
    gpusim::Device device(gpusim::GpuSpec::v100());

    // Single-format baseline: CSR with a GE-SpMM-style schedule.
    auto shared = std::make_shared<core::BindingSet>();
    runtime::NDArray b({g.cols * feat}, ir::DataType::float32());
    runtime::NDArray c({g.rows * feat}, ir::DataType::float32());
    shared->external("B_data", &b);
    shared->external("C_data", &c);
    auto csr_kernel = core::compileSpmmCsr(g, feat, shared);
    double csr_ms = device.launch(csr_kernel->simKernel()).timeMs;
    std::printf("SparseTIR(no-hyb): %.4f ms\n", csr_ms);

    // Composable format: search c over {1, 2, 4, 8, 16}. The engine
    // session memoizes every candidate's compiled kernels.
    engine::Engine session(engine::EngineOptions{});
    autotune::HybTuneResult tuned =
        autotune::tuneSpmmHyb(g, feat, device, session);
    std::printf("hyb search:\n");
    for (const auto &cand : tuned.tried) {
        std::printf("  hyb(c=%2d, k=%d): %.4f ms%s\n", cand.c, cand.k,
                    cand.timeMs,
                    cand.c == tuned.best.c ? "  <- best" : "");
    }
    std::printf("SparseTIR(hyb):    %.4f ms  (%.2fx vs no-hyb)\n",
                tuned.best.timeMs, csr_ms / tuned.best.timeMs);

    // The padding the composable format pays for its load balance.
    format::Hyb hyb = format::hybFromCsr(g, tuned.best.c, -1);
    std::printf("padding: %.1f%% of stored entries are zeros "
                "(Table 1 column)\n",
                hyb.paddingRatio() * 100.0);

    // Serve the tuned configuration on the host through the same
    // session: the first dispatch hits the kernels the tuner already
    // compiled, later dispatches skip straight to value binding.
    engine::HybConfig best_config;
    best_config.partitions = tuned.best.c;
    c.zero();
    engine::DispatchInfo served =
        session.spmmHyb(g, feat, &b, &c, best_config);
    std::printf("\nserved hyb(c=%d) through the engine: %d kernels, "
                "cache %s, compile %.3f ms, exec %.1f ms\n",
                best_config.partitions, served.numKernels,
                served.cacheHit ? "hit" : "miss", served.compileMs,
                served.execMs);
    // Multi-tenant serving shape: several users' feature matrices in
    // flight against the one cached artifact. The batch resolves the
    // artifact once and stripes (request x kernel) units across the
    // session's thread pool; each user's output is bitwise identical
    // to a solo dispatch.
    constexpr int kInFlight = 4;
    std::vector<runtime::NDArray> user_b;
    std::vector<runtime::NDArray> user_c;
    for (int i = 0; i < kInFlight; ++i) {
        user_b.emplace_back(std::vector<int64_t>{g.cols * feat},
                            ir::DataType::float32());
        user_c.emplace_back(std::vector<int64_t>{g.rows * feat},
                            ir::DataType::float32());
    }
    std::vector<engine::SpmmRequest> requests;
    for (int i = 0; i < kInFlight; ++i) {
        requests.push_back(
            engine::SpmmRequest{&user_b[i], &user_c[i]});
    }
    engine::BatchDispatchInfo batch =
        session.spmmHybBatch(g, feat, requests, best_config);
    std::printf("batched: %d requests through one artifact "
                "(cache %s, compile %.3f ms, exec %.1f ms)\n",
                batch.numRequests, batch.cacheHit ? "hit" : "miss",
                batch.compileMs, batch.execMs);

    engine::EngineStats session_stats = session.stats();
    std::printf("session: %llu compile requests, %llu served from "
                "cache\n",
                static_cast<unsigned long long>(session_stats.requests),
                static_cast<unsigned long long>(
                    session_stats.cacheHits));
    return 0;
}
