#include "format/srbcrs.h"

#include <map>

#include "support/logging.h"

namespace sparsetir {
namespace format {

double
SrBcrs::storedDensity() const
{
    if (values.empty()) {
        return 0.0;
    }
    int64_t nonzero = 0;
    for (float v : values) {
        if (v != 0.0f) {
            ++nonzero;
        }
    }
    return static_cast<double>(nonzero) /
           static_cast<double>(values.size());
}

SrBcrs
srbcrsFromCsr(const Csr &m, int32_t t, int32_t g)
{
    ICHECK_GT(t, 0);
    ICHECK_GT(g, 0);
    SrBcrs out;
    out.rows = m.rows;
    out.cols = m.cols;
    out.tileHeight = t;
    out.groupSize = g;
    out.stripes = (m.rows + t - 1) / t;
    out.groupIndptr.push_back(0);

    for (int64_t s = 0; s < out.stripes; ++s) {
        // Collect non-zero tiles of this stripe: column -> t values.
        std::map<int32_t, std::vector<float>> tiles;
        for (int64_t r = s * t; r < std::min<int64_t>((s + 1) * t, m.rows);
             ++r) {
            for (int32_t p = m.indptr[r]; p < m.indptr[r + 1]; ++p) {
                auto &tile = tiles[m.indices[p]];
                if (tile.empty()) {
                    tile.assign(t, 0.0f);
                }
                tile[r - s * t] = m.values[p];
            }
        }
        int64_t tile_count = static_cast<int64_t>(tiles.size());
        int64_t groups = (tile_count + g - 1) / g;
        int64_t emitted = 0;
        for (const auto &[col, tile] : tiles) {
            out.tileCols.push_back(col);
            out.values.insert(out.values.end(), tile.begin(), tile.end());
            ++emitted;
        }
        // Pad the tail group with zero tiles (column repeats last).
        int32_t pad_col = tiles.empty() ? 0 : out.tileCols.back();
        while (emitted < groups * g) {
            out.tileCols.push_back(pad_col);
            out.values.insert(out.values.end(), t, 0.0f);
            ++emitted;
        }
        out.groupIndptr.push_back(out.groupIndptr.back() +
                                  static_cast<int32_t>(groups));
    }
    return out;
}

std::vector<float>
srbcrsToDense(const SrBcrs &m)
{
    std::vector<float> dense(m.rows * m.cols, 0.0f);
    int32_t t = m.tileHeight;
    int32_t g = m.groupSize;
    for (int64_t s = 0; s < m.stripes; ++s) {
        int64_t tile_begin = static_cast<int64_t>(m.groupIndptr[s]) * g;
        int64_t tile_end = static_cast<int64_t>(m.groupIndptr[s + 1]) * g;
        for (int64_t tile = tile_begin; tile < tile_end; ++tile) {
            int32_t c = m.tileCols[tile];
            for (int32_t ii = 0; ii < t; ++ii) {
                int64_t r = s * t + ii;
                float v = m.values[tile * t + ii];
                if (r < m.rows && v != 0.0f) {
                    dense[r * m.cols + c] = v;
                }
            }
        }
    }
    return dense;
}

} // namespace format
} // namespace sparsetir
