/**
 * @file
 * Sparse attention mask generators (paper §4.3.1): the Longformer
 * band mask and the Pixelated Butterfly mask.
 */

#ifndef SPARSETIR_GRAPH_ATTENTION_MASKS_H_
#define SPARSETIR_GRAPH_ATTENTION_MASKS_H_

#include <cstdint>

#include "format/csr.h"

namespace sparsetir {
namespace graph {

/** Band (sliding-window) mask of total width `band` plus diagonal. */
format::Csr bandMask(int64_t n, int64_t band);

/**
 * Block-butterfly mask: block-diagonal unions at power-of-two strides
 * (the butterfly factor pattern of Pixelated Butterfly), block size
 * `block`.
 */
format::Csr butterflyMask(int64_t n, int64_t block);

} // namespace graph
} // namespace sparsetir

#endif // SPARSETIR_GRAPH_ATTENTION_MASKS_H_
