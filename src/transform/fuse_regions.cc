#include "transform/fuse_regions.h"

#include <map>
#include <memory>
#include <utility>

#include "ir/functor.h"
#include "ir/structural_equal.h"
#include "support/logging.h"

namespace sparsetir {
namespace transform {

using namespace ir;

namespace {

/** Redirect every buffer reference to its canonical (by name) copy. */
class CanonicalizeBuffers : public StmtMutator
{
  public:
    explicit CanonicalizeBuffers(
        const std::map<std::string, Buffer> &canonical)
        : canonical_(canonical)
    {
    }

    Buffer
    mutateBuffer(const Buffer &buffer) override
    {
        auto it = canonical_.find(buffer->name);
        return it != canonical_.end() ? it->second : buffer;
    }

  private:
    const std::map<std::string, Buffer> &canonical_;
};

/** `idx - base`, folded when idx is structurally base (+ rest). */
Expr
rebase(const Expr &idx, const Expr &base)
{
    if (structuralEqual(idx, base)) {
        return intImm(0);
    }
    if (idx->kind == ExprKind::kAdd) {
        const auto *node = static_cast<const BinaryNode *>(idx.get());
        if (structuralEqual(node->a, base)) {
            return node->b;
        }
        if (structuralEqual(node->b, base)) {
            return node->a;
        }
    }
    return sub(idx, base);
}

/** Rewrite accesses of localized buffers to their per-row locals. */
class Localize : public StmtMutator
{
  public:
    struct Target
    {
        Buffer local;
        Expr rowBase;
    };

    explicit Localize(const std::map<std::string, Target> &targets)
        : targets_(targets)
    {
    }

    Expr
    mutateBufferLoad(const BufferLoadNode *op, const Expr &e) override
    {
        auto it = targets_.find(op->buffer->name);
        if (it == targets_.end()) {
            return StmtMutator::mutateBufferLoad(op, e);
        }
        ICHECK(op->indices.size() == 1)
            << "localized buffers are flat";
        Expr idx = mutateExpr(op->indices[0]);
        return bufferLoad(it->second.local,
                          {rebase(idx, it->second.rowBase)});
    }

    Stmt
    mutateBufferStore(const BufferStoreNode *op, const Stmt &s) override
    {
        auto it = targets_.find(op->buffer->name);
        if (it == targets_.end()) {
            return StmtMutator::mutateBufferStore(op, s);
        }
        ICHECK(op->indices.size() == 1)
            << "localized buffers are flat";
        Expr idx = mutateExpr(op->indices[0]);
        Expr value = mutateExpr(op->value);
        return bufferStore(it->second.local,
                           {rebase(idx, it->second.rowBase)},
                           std::move(value));
    }

  private:
    const std::map<std::string, Target> &targets_;
};

} // namespace

PrimFunc
fuseRowRegions(const std::vector<PrimFunc> &funcs,
               const std::string &name,
               const std::vector<LocalizeSpec> &locals)
{
    USER_CHECK(!funcs.empty()) << "nothing to fuse";

    // The shared row loop comes from the first member.
    USER_CHECK(funcs[0]->body->kind == StmtKind::kFor)
        << "kernel '" << funcs[0]->name
        << "' must start with a blockIdx.x loop";
    const auto *head =
        static_cast<const ForNode *>(funcs[0]->body.get());
    USER_CHECK(head->forKind == ForKind::kThreadBinding &&
               head->threadTag == "blockIdx.x")
        << "kernel '" << funcs[0]->name
        << "' must start with a blockIdx.x loop";
    Var row = head->loopVar;

    std::map<std::string, Buffer> canonical;
    std::map<std::string, Localize::Target> targets;
    for (const LocalizeSpec &spec : locals) {
        USER_CHECK(spec.extent > 0)
            << "localized buffer '" << spec.buffer
            << "' needs a positive per-row extent";
        Localize::Target target;
        auto local = std::make_shared<BufferNode>();
        local->data = var(spec.buffer + "_local", DataType::handle());
        local->name = spec.buffer + "_local";
        local->dtype = DataType::float32();
        local->shape = {intImm(spec.extent)};
        local->scope = MemScope::kLocal;
        target.local = local;
        target.rowBase = spec.rowBase;
        targets.emplace(spec.buffer, std::move(target));
    }

    PrimFunc out = primFunc(name);
    out->stage = IrStage::kStage3;
    std::vector<Stmt> fragments;

    for (const auto &func : funcs) {
        USER_CHECK(func->stage == IrStage::kStage3)
            << "region fusion expects Stage III kernels";
        USER_CHECK(func->body->kind == StmtKind::kFor)
            << "kernel '" << func->name
            << "' must start with a blockIdx.x loop";
        const auto *loop =
            static_cast<const ForNode *>(func->body.get());
        USER_CHECK(loop->forKind == ForKind::kThreadBinding &&
                   loop->threadTag == "blockIdx.x")
            << "kernel '" << func->name
            << "' must start with a blockIdx.x loop";
        USER_CHECK(structuralEqual(loop->extent, head->extent))
            << "kernel '" << func->name
            << "' iterates a different row space than '"
            << funcs[0]->name << "' — regions must share one "
            << "iteration space to fuse";

        // Rebase this member's rows onto the shared loop variable.
        Stmt body = loop->body;
        if (loop->loopVar.get() != row.get()) {
            std::map<const VarNode *, Expr> subst{
                {loop->loopVar.get(), row}};
            body = substitute(body, subst);
        }
        fragments.push_back(std::move(body));

        // Dedup the signature by buffer name; the first occurrence is
        // canonical and later members' references are redirected.
        for (const auto &[param, buffer] : func->bufferMap) {
            if (targets.count(buffer->name) != 0) {
                continue; // demoted to a per-row local below
            }
            auto [it, inserted] =
                canonical.emplace(buffer->name, buffer);
            if (inserted) {
                out->params.push_back(buffer->data);
                out->bufferMap.emplace_back(buffer->data, buffer);
            }
            (void)param;
            (void)it;
        }
        for (const auto &param : func->params) {
            if (func->bufferOf(param) != nullptr) {
                continue; // handled via bufferMap above
            }
            bool present = false;
            for (const auto &existing : out->params) {
                if (existing->name == param->name) {
                    present = true;
                    break;
                }
            }
            if (!present) {
                out->params.push_back(param);
            }
        }
    }

    Stmt body = seq(std::move(fragments));
    CanonicalizeBuffers canon(canonical);
    body = canon.mutateStmt(body);
    if (!targets.empty()) {
        Localize localize(targets);
        body = localize.mutateStmt(body);
        // Allocation sites go INSIDE the row loop: each row owns a
        // private copy, which is also what exempts the locals from
        // the verifier's cross-block race obligations.
        for (const auto &[global_name, target] : targets) {
            (void)global_name;
            body = allocate(target.local, body);
        }
    }
    out->body = forLoop(row, head->minValue, head->extent, body,
                        ForKind::kThreadBinding, "blockIdx.x");
    return out;
}

} // namespace transform
} // namespace sparsetir
