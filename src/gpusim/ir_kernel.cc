#include "gpusim/ir_kernel.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "ir/analysis.h"
#include "ir/functor.h"
#include "ir/simplify.h"

namespace sparsetir {
namespace gpusim {

using namespace ir;
using runtime::NDArray;

namespace {

/** Aggregated-loop record for stride sampling. */
struct AggVar
{
    const VarNode *var;
    int64_t extent;
};

/** Walk context (see header). */
struct WalkCtx
{
    int64_t multiplier = 1;
    const VarNode *laneVar = nullptr;
    int laneWidth = 1;
    bool tensorized = false;
    std::vector<AggVar> aggVars;
};

} // namespace

struct IrKernel::Impl
{
    PrimFunc func;
    /** Handle var -> bound array. */
    std::unordered_map<const VarNode *, NDArray *> arrays;
    /** Scalar var -> value. */
    std::unordered_map<const VarNode *, int64_t> scalars;
    /** Buffer data var -> simulated base address. */
    std::unordered_map<const VarNode *, uint64_t> baseAddr;
    /** Buffer data var -> non-global scope (shared/local). */
    std::unordered_map<const VarNode *, MemScope> scratchScope;
    /** Grid loops, outermost first. */
    std::vector<const ForNode *> gridLoops;
    std::vector<int64_t> gridExtents;
    int64_t totalBlocks = 1;
    int64_t totalGlobalBytes = 0;

    // ---------------- integer expression evaluation ----------------

    mutable std::unordered_map<const VarNode *, int64_t> env;

    int64_t
    evalInt(const Expr &e) const
    {
        switch (e->kind) {
          case ExprKind::kIntImm:
            return static_cast<const IntImmNode *>(e.get())->value;
          case ExprKind::kFloatImm:
            return static_cast<int64_t>(
                static_cast<const FloatImmNode *>(e.get())->value);
          case ExprKind::kVar: {
            auto v = static_cast<const VarNode *>(e.get());
            auto scalar_it = scalars.find(v);
            if (scalar_it != scalars.end()) {
                return scalar_it->second;
            }
            auto it = env.find(v);
            ICHECK(it != env.end())
                << "unbound variable '" << v->name
                << "' during kernel replay";
            return it->second;
          }
          case ExprKind::kCast:
            return evalInt(static_cast<const CastNode *>(e.get())->value);
          case ExprKind::kSelect: {
            auto op = static_cast<const SelectNode *>(e.get());
            return evalInt(op->cond) != 0 ? evalInt(op->trueValue)
                                          : evalInt(op->falseValue);
          }
          case ExprKind::kNot:
            return evalInt(static_cast<const NotNode *>(e.get())->a) == 0
                       ? 1
                       : 0;
          case ExprKind::kBufferLoad: {
            auto op = static_cast<const BufferLoadNode *>(e.get());
            NDArray *array = arrayOf(op->buffer);
            int64_t idx = evalInt(op->indices[0]);
            ICHECK_GE(idx, 0);
            ICHECK_LT(idx, array->numel());
            return array->intAt(idx);
          }
          case ExprKind::kCall: {
            auto op = static_cast<const CallNode *>(e.get());
            if (op->op == Builtin::kLowerBound ||
                op->op == Builtin::kUpperBound) {
                NDArray *array = arrayOf(op->bufferArg);
                int64_t lo = evalInt(op->args[0]);
                int64_t hi = evalInt(op->args[1]);
                int64_t val = evalInt(op->args[2]);
                bool upper = op->op == Builtin::kUpperBound;
                while (lo < hi) {
                    int64_t mid = lo + (hi - lo) / 2;
                    int64_t elem = array->intAt(mid);
                    bool right = upper ? elem <= val : elem < val;
                    if (right) {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                return lo;
            }
            ICHECK(false) << "cannot evaluate builtin in replay";
            return 0;
          }
          default: {
            auto op = static_cast<const BinaryNode *>(e.get());
            int64_t a = evalInt(op->a);
            // Short-circuit logic ops.
            if (op->kind == ExprKind::kAnd) {
                return a != 0 && evalInt(op->b) != 0 ? 1 : 0;
            }
            if (op->kind == ExprKind::kOr) {
                return a != 0 || evalInt(op->b) != 0 ? 1 : 0;
            }
            int64_t b = evalInt(op->b);
            switch (op->kind) {
              case ExprKind::kAdd:
                return a + b;
              case ExprKind::kSub:
                return a - b;
              case ExprKind::kMul:
                return a * b;
              case ExprKind::kFloorDiv: {
                int64_t q = a / b;
                if ((a % b != 0) && ((a < 0) != (b < 0))) {
                    --q;
                }
                return q;
              }
              case ExprKind::kFloorMod: {
                int64_t q = a / b;
                if ((a % b != 0) && ((a < 0) != (b < 0))) {
                    --q;
                }
                return a - q * b;
              }
              case ExprKind::kMin:
                return std::min(a, b);
              case ExprKind::kMax:
                return std::max(a, b);
              case ExprKind::kEQ:
                return a == b;
              case ExprKind::kNE:
                return a != b;
              case ExprKind::kLT:
                return a < b;
              case ExprKind::kLE:
                return a <= b;
              case ExprKind::kGT:
                return a > b;
              case ExprKind::kGE:
                return a >= b;
              default:
                ICHECK(false) << "unhandled binary op in replay";
            }
          }
        }
        return 0;
    }

    NDArray *
    arrayOf(const Buffer &buffer) const
    {
        auto it = arrays.find(buffer->data.get());
        ICHECK(it != arrays.end())
            << "buffer '" << buffer->name << "' not bound for replay";
        return it->second;
    }

    bool
    isGlobal(const Buffer &buffer) const
    {
        return scratchScope.find(buffer->data.get()) ==
               scratchScope.end();
    }

    // ------------------------- access emission ----------------------

    /**
     * Evaluate the flat index of an access under overridden special
     * variables.
     */
    int64_t
    indexWith(const Expr &index,
              const std::vector<std::pair<const VarNode *, int64_t>>
                  &overrides) const
    {
        std::vector<std::pair<const VarNode *, int64_t>> saved;
        saved.reserve(overrides.size());
        for (const auto &[v, value] : overrides) {
            auto it = env.find(v);
            saved.emplace_back(v, it != env.end() ? it->second : 0);
            env[v] = value;
        }
        int64_t result = evalInt(index);
        for (const auto &[v, value] : saved) {
            env[v] = value;
        }
        return result;
    }

    /** True if expr references `v`. */
    static bool
    dependsOn(const Expr &e, const VarNode *v)
    {
        auto vars = collectVars(e);
        return vars.count(v) > 0;
    }

    void
    emitAccess(const Buffer &buffer, const Expr &index, bool write,
               const WalkCtx &ctx, BlockWork *work) const
    {
        int elem = buffer->dtype.bytes();
        if (ctx.tensorized && buffer->dtype.isFloat()) {
            elem = 2;  // fp16 operands on the Tensor-Core path
        }
        if (!isGlobal(buffer)) {
            // Shared/local traffic.
            auto scope = scratchScope.at(buffer->data.get());
            if (scope == MemScope::kShared) {
                work->sharedBytes +=
                    static_cast<double>(elem) * ctx.laneWidth *
                    static_cast<double>(ctx.multiplier);
            }
            return;
        }

        // Base address with lane and aggregated vars at 0.
        std::vector<std::pair<const VarNode *, int64_t>> base_override;
        if (ctx.laneVar != nullptr) {
            base_override.emplace_back(ctx.laneVar, env.at(ctx.laneVar));
        }
        int64_t base_idx = evalInt(index);
        uint64_t base =
            baseAddr.at(buffer->data.get()) +
            static_cast<uint64_t>(base_idx) * buffer->dtype.bytes();

        // Warp-level unit from the lane stride.
        int64_t unit_bytes = elem;
        int64_t unit_count = 1;
        int64_t unit_span = elem;
        if (ctx.laneVar != nullptr && dependsOn(index, ctx.laneVar)) {
            int64_t lane0 = env.at(ctx.laneVar);
            int64_t idx1 =
                indexWith(index, {{ctx.laneVar, lane0 + 1}});
            int64_t stride = (idx1 - base_idx) * buffer->dtype.bytes();
            if (stride == elem || stride == buffer->dtype.bytes()) {
                unit_bytes = elem * ctx.laneWidth;
                unit_span = unit_bytes;
            } else if (stride == 0) {
                // Broadcast.
            } else {
                unit_count = ctx.laneWidth;
                unit_span =
                    std::abs(stride) * (ctx.laneWidth - 1) + elem;
            }
        }

        // Fold aggregated dense loops, innermost first.
        for (auto it = ctx.aggVars.rbegin(); it != ctx.aggVars.rend();
             ++it) {
            if (!dependsOn(index, it->var)) {
                continue;
            }
            int64_t idx1 = indexWith(index, {{it->var, 1}});
            int64_t stride = (idx1 - base_idx) * buffer->dtype.bytes();
            if (stride < 0) {
                stride = -stride;
            }
            if (unit_count == 1 && stride == unit_bytes) {
                unit_bytes *= it->extent;
                unit_span = unit_bytes;
            } else if (stride == 0) {
                // Loop-invariant under this var.
            } else {
                unit_count = std::max<int64_t>(unit_count, 1) *
                             it->extent;
                unit_span = stride * (it->extent - 1) + unit_span;
            }
        }

        MemAccess access;
        access.addr = base;
        access.write = write;
        if (unit_count == 1) {
            access.bytes = static_cast<uint32_t>(
                std::min<int64_t>(unit_bytes, 1u << 30));
        } else {
            access.bytes = static_cast<uint32_t>(
                std::min<int64_t>(unit_span, 1u << 30));
            // Distinct lines: each unit touches ceil(unit/128) lines.
            int64_t lines_per_unit = (unit_bytes / unit_count <= 128)
                                         ? 1
                                         : (unit_bytes / unit_count +
                                            127) /
                                               128;
            access.scatteredLines = static_cast<uint32_t>(
                std::min<int64_t>(unit_count * lines_per_unit,
                                  1 << 28));
        }
        work->accesses.push_back(access);
    }

    // -------------------------- op counting -------------------------

    /** Count arithmetic in an expression tree; emit loads it makes. */
    void
    countExpr(const Expr &e, const WalkCtx &ctx, BlockWork *work) const
    {
        switch (e->kind) {
          case ExprKind::kIntImm:
          case ExprKind::kFloatImm:
          case ExprKind::kStringImm:
          case ExprKind::kVar:
            return;
          case ExprKind::kCast:
            countExpr(static_cast<const CastNode *>(e.get())->value, ctx,
                      work);
            return;
          case ExprKind::kNot:
            countExpr(static_cast<const NotNode *>(e.get())->a, ctx,
                      work);
            work->intOps += static_cast<double>(ctx.multiplier);
            return;
          case ExprKind::kSelect: {
            auto op = static_cast<const SelectNode *>(e.get());
            countExpr(op->cond, ctx, work);
            // Both arms contribute potential work; count the taken arm
            // (evaluated) to avoid double counting guarded zeros.
            if (evalSafe(op->cond) != 0) {
                countExpr(op->trueValue, ctx, work);
            } else {
                countExpr(op->falseValue, ctx, work);
            }
            return;
          }
          case ExprKind::kBufferLoad: {
            auto op = static_cast<const BufferLoadNode *>(e.get());
            countExpr(op->indices[0], ctx, work);
            emitAccess(op->buffer, op->indices[0], false, ctx, work);
            return;
          }
          case ExprKind::kCall: {
            auto op = static_cast<const CallNode *>(e.get());
            for (const auto &arg : op->args) {
                countExpr(arg, ctx, work);
            }
            if (op->op == Builtin::kLowerBound ||
                op->op == Builtin::kUpperBound) {
                // log2(range) probes of the indices array.
                int64_t lo = evalSafe(op->args[0]);
                int64_t hi = evalSafe(op->args[1]);
                double probes = 1.0;
                int64_t range = std::max<int64_t>(hi - lo, 1);
                while (range > 1) {
                    range >>= 1;
                    probes += 1.0;
                }
                work->intOps +=
                    probes * 4.0 * static_cast<double>(ctx.multiplier) *
                    ctx.laneWidth;
                MemAccess access;
                access.addr =
                    baseAddr.at(op->bufferArg->data.get()) +
                    static_cast<uint64_t>(std::max<int64_t>(lo, 0)) *
                        op->bufferArg->dtype.bytes();
                access.bytes = op->bufferArg->dtype.bytes();
                access.scatteredLines = static_cast<uint32_t>(probes);
                work->accesses.push_back(access);
            } else if (op->op == Builtin::kAtomicAdd) {
                emitAccess(op->bufferArg, op->args[0], true, ctx, work);
                work->flops += static_cast<double>(ctx.multiplier) *
                               ctx.laneWidth;
            } else {
                work->flops += 4.0 * static_cast<double>(ctx.multiplier) *
                               ctx.laneWidth;
            }
            return;
          }
          default: {
            auto op = static_cast<const BinaryNode *>(e.get());
            countExpr(op->a, ctx, work);
            countExpr(op->b, ctx, work);
            double ops = static_cast<double>(ctx.multiplier) *
                         ctx.laneWidth;
            if (op->dtype.isFloat()) {
                if (ctx.tensorized) {
                    work->tensorFlops += ops;
                } else {
                    work->flops += ops;
                }
            } else {
                work->intOps += ops;
            }
            return;
          }
        }
    }

    /** Evaluate ints, tolerating lane-var dependence (lane 0 view). */
    int64_t
    evalSafe(const Expr &e) const
    {
        return evalInt(e);
    }

    // --------------------------- statements -------------------------

    /** Does the subtree contain loads whose index uses `v` under an
     *  int-array (data-dependent addressing)? */
    static bool
    dataDependentOn(const Stmt &s, const VarNode *v)
    {
        class Scanner : public StmtVisitor
        {
          public:
            const VarNode *v = nullptr;
            bool found = false;

          protected:
            void
            visitBufferLoad(const BufferLoadNode *op) override
            {
                if (!op->buffer->dtype.isFloat()) {
                    for (const auto &idx : op->indices) {
                        if (collectVars(idx).count(v)) {
                            found = true;
                        }
                    }
                }
                ExprVisitor::visitBufferLoad(op);
            }

            void
            visitCall(const CallNode *op) override
            {
                // Searches under the loop are data-dependent.
                for (const auto &arg : op->args) {
                    if (collectVars(arg).count(v)) {
                        found = true;
                    }
                }
                ExprVisitor::visitCall(op);
            }
        } scanner;
        scanner.v = v;
        scanner.visitStmt(s);
        return scanner.found;
    }

    void
    walk(const Stmt &s, WalkCtx ctx, BlockWork *work) const
    {
        switch (s->kind) {
          case StmtKind::kSeq: {
            auto op = static_cast<const SeqStmtNode *>(s.get());
            for (const auto &child : op->seq) {
                walk(child, ctx, work);
            }
            return;
          }
          case StmtKind::kFor: {
            auto op = static_cast<const ForNode *>(s.get());
            if (op->forKind == ForKind::kThreadBinding &&
                op->threadTag.rfind("blockIdx", 0) == 0) {
                // Grid loops are fixed by blockWork; body only.
                walk(op->body, ctx, work);
                return;
            }
            if (op->forKind == ForKind::kThreadBinding &&
                op->threadTag == "threadIdx.x") {
                int64_t extent = evalInt(op->extent);
                ICHECK(ctx.laneVar == nullptr)
                    << "nested threadIdx.x loops unsupported";
                for (int64_t base = 0; base < extent; base += 32) {
                    WalkCtx warp_ctx = ctx;
                    warp_ctx.laneVar = op->loopVar.get();
                    warp_ctx.laneWidth = static_cast<int>(
                        std::min<int64_t>(32, extent - base));
                    env[op->loopVar.get()] = base;
                    walk(op->body, warp_ctx, work);
                }
                env.erase(op->loopVar.get());
                return;
            }
            // threadIdx.y / serial / unrolled / vectorized.
            int64_t extent = evalInt(op->extent);
            int64_t min_v = evalInt(op->minValue);
            if (extent <= 0) {
                return;
            }
            bool aggregate =
                (op->forKind == ForKind::kVectorized ||
                 op->forKind == ForKind::kSerial ||
                 op->forKind == ForKind::kUnrolled) &&
                min_v == 0 && extent >= 4 &&
                !dataDependentOn(op->body, op->loopVar.get()) &&
                !containsStmtKind(op->body, StmtKind::kFor) &&
                !containsStmtKind(op->body, StmtKind::kIfThenElse);
            if (aggregate) {
                WalkCtx agg_ctx = ctx;
                agg_ctx.multiplier *= extent;
                agg_ctx.aggVars.push_back({op->loopVar.get(), extent});
                env[op->loopVar.get()] = 0;
                walk(op->body, agg_ctx, work);
                env.erase(op->loopVar.get());
                return;
            }
            for (int64_t v = min_v; v < min_v + extent; ++v) {
                env[op->loopVar.get()] = v;
                walk(op->body, ctx, work);
            }
            env.erase(op->loopVar.get());
            return;
          }
          case StmtKind::kBlock: {
            auto op = static_cast<const BlockNode *>(s.get());
            WalkCtx block_ctx = ctx;
            if (op->annotations.count("tensorize")) {
                block_ctx.tensorized = true;
            }
            if (op->init != nullptr) {
                bool fire = true;
                for (const auto &rv : op->reduceVars) {
                    auto it = env.find(rv.get());
                    if (it != env.end() && it->second != 0) {
                        fire = false;
                        break;
                    }
                }
                if (fire) {
                    walk(op->init, block_ctx, work);
                }
            }
            walk(op->body, block_ctx, work);
            return;
          }
          case StmtKind::kBufferStore: {
            auto op = static_cast<const BufferStoreNode *>(s.get());
            countExpr(op->value, ctx, work);
            countExpr(op->indices[0], ctx, work);
            emitAccess(op->buffer, op->indices[0], true, ctx, work);
            return;
          }
          case StmtKind::kIfThenElse: {
            auto op = static_cast<const IfThenElseNode *>(s.get());
            if (evalInt(op->cond) != 0) {
                walk(op->thenBody, ctx, work);
            } else if (op->elseBody != nullptr) {
                walk(op->elseBody, ctx, work);
            }
            return;
          }
          case StmtKind::kLetStmt: {
            auto op = static_cast<const LetStmtNode *>(s.get());
            countExpr(op->value, ctx, work);
            env[op->letVar.get()] = evalInt(op->value);
            walk(op->body, ctx, work);
            env.erase(op->letVar.get());
            return;
          }
          case StmtKind::kAllocate: {
            auto op = static_cast<const AllocateNode *>(s.get());
            const_cast<Impl *>(this)->scratchScope[op->buffer->data
                                                       .get()] =
                op->buffer->scope;
            walk(op->body, ctx, work);
            return;
          }
          case StmtKind::kEvaluate:
            countExpr(static_cast<const EvaluateNode *>(s.get())->value,
                      ctx, work);
            return;
          default:
            ICHECK(false) << "cannot replay statement kind";
        }
    }
};

IrKernel::IrKernel(PrimFunc func, const runtime::Bindings &bindings)
    : impl_(std::make_unique<Impl>())
{
    impl_->func = std::move(func);
    USER_CHECK(impl_->func->stage == IrStage::kStage3)
        << "IrKernel replays Stage III functions";

    for (const auto &param : impl_->func->params) {
        if (param->dtype.isHandle()) {
            auto it = bindings.arrays.find(param->name);
            USER_CHECK(it != bindings.arrays.end())
                << "missing array binding '" << param->name << "'";
            impl_->arrays[param.get()] = it->second;
        } else {
            auto it = bindings.scalars.find(param->name);
            USER_CHECK(it != bindings.scalars.end())
                << "missing scalar binding '" << param->name << "'";
            impl_->scalars[param.get()] = it->second;
        }
    }

    // Assign disjoint simulated address ranges per bound buffer.
    uint64_t next = 4096;
    for (const auto &[param, buffer] : impl_->func->bufferMap) {
        NDArray *array = impl_->arrays.count(buffer->data.get())
                             ? impl_->arrays[buffer->data.get()]
                             : nullptr;
        int64_t bytes = array != nullptr
                            ? array->numel() * buffer->dtype.bytes()
                            : 0;
        impl_->baseAddr[buffer->data.get()] = next;
        next += static_cast<uint64_t>(((bytes + 255) / 256) * 256) + 256;
        impl_->totalGlobalBytes += bytes;
    }

    // Identify the grid: outermost blockIdx.* thread bindings.
    const Stmt *cursor = &impl_->func->body;
    while (true) {
        const StmtNode *node = cursor->get();
        if (node->kind == StmtKind::kFor) {
            auto loop = static_cast<const ForNode *>(node);
            if (loop->forKind == ForKind::kThreadBinding &&
                loop->threadTag.rfind("blockIdx", 0) == 0) {
                impl_->gridLoops.push_back(loop);
                int64_t extent = 0;
                // Grid extents may reference scalar params only.
                for (const VarNode *v : collectVars(loop->extent)) {
                    USER_CHECK(impl_->scalars.count(v))
                        << "grid extent depends on non-scalar '"
                        << v->name << "'";
                }
                for (const auto &[v, value] : impl_->scalars) {
                    impl_->env[v] = value;
                }
                extent = impl_->evalInt(loop->extent);
                impl_->env.clear();
                impl_->gridExtents.push_back(extent);
                impl_->totalBlocks *= std::max<int64_t>(extent, 0);
                cursor = &loop->body;
                continue;
            }
        }
        break;
    }
    if (impl_->gridLoops.empty()) {
        impl_->totalBlocks = 1;
    }
}

IrKernel::~IrKernel() = default;

std::string
IrKernel::name() const
{
    return impl_->func->name;
}

int64_t
IrKernel::numBlocks() const
{
    return impl_->totalBlocks;
}

int64_t
IrKernel::globalBytes() const
{
    return impl_->totalGlobalBytes;
}

void
IrKernel::blockWork(int64_t block_id, BlockWork *work) const
{
    impl_->env.clear();
    // Decompose block id over the grid loops (innermost fastest).
    int64_t rest = block_id;
    for (size_t g = impl_->gridLoops.size(); g-- > 0;) {
        int64_t extent = std::max<int64_t>(impl_->gridExtents[g], 1);
        impl_->env[impl_->gridLoops[g]->loopVar.get()] = rest % extent;
        rest /= extent;
    }
    WalkCtx ctx;
    impl_->walk(impl_->func->body, ctx, work);
    impl_->env.clear();
}

} // namespace gpusim
} // namespace sparsetir
