/**
 * @file
 * Symbolic affine interval analysis over Stage III index expressions.
 *
 * The verifier (verify/verifier.h) must prove facts of the form
 * `0 <= index` and `index <= extent - 1` where both sides are integer
 * polynomials over scalar parameters (m, nnz, feat_size, ...), loop
 * variables, and opaque data-dependent values (buffer loads, binary
 * searches, floordiv/floormod results). This header provides the
 * machinery:
 *
 *  - LinExpr: an integer polynomial represented as monomial -> coeff,
 *    where a monomial is a multiset of interned atoms. Affine loop
 *    arithmetic (i * feat_size + k) and its cancellations
 *    (J_indptr[i] + (ij - J_indptr[i]) -> ij) fall out of the
 *    representation.
 *
 *  - AffineAnalyzer: interns atoms, tracks loop-variable ranges, let
 *    bindings and guard constraints as lexical scopes, carries
 *    caller-declared value facts for data-dependent atoms (format
 *    invariants like "J_indices values lie in [0, n-1]"), and
 *    discharges `e >= 0` obligations by a bounded search over bound
 *    substitutions and guard-constraint subtraction.
 *
 * Soundness model: every scalar integer parameter of a kernel is
 * assumed non-negative (they are sizes: row counts, nnz, feature
 * widths). Everything else is proven: loop variables from their
 * ranges, data-dependent values only from declared facts, guarded
 * statements only under their guard conjuncts. The prover is
 * conservative — "false" means "not provable", never "disprovable".
 */

#ifndef SPARSETIR_VERIFY_AFFINE_H_
#define SPARSETIR_VERIFY_AFFINE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir/prim_func.h"

namespace sparsetir {
namespace verify {

/** A product of interned atoms (sorted atom ids, with multiplicity). */
using Monomial = std::vector<int>;

/** Integer polynomial: sum of coeff * monomial, plus a constant. */
struct LinExpr
{
    /** Monomial -> non-zero coefficient. */
    std::map<Monomial, int64_t> terms;
    int64_t constant = 0;

    bool isConstant() const { return terms.empty(); }

    LinExpr &operator+=(const LinExpr &other);
    LinExpr &operator-=(const LinExpr &other);
    LinExpr &operator*=(int64_t scale);
    friend LinExpr operator+(LinExpr a, const LinExpr &b)
    {
        a += b;
        return a;
    }
    friend LinExpr operator-(LinExpr a, const LinExpr &b)
    {
        a -= b;
        return a;
    }
    friend LinExpr operator*(LinExpr a, int64_t scale)
    {
        a *= scale;
        return a;
    }
    /** Full polynomial product (distributes monomials). */
    static LinExpr product(const LinExpr &a, const LinExpr &b);

    static LinExpr constant_(int64_t c)
    {
        LinExpr e;
        e.constant = c;
        return e;
    }

    /** Stable serialization (memoization key, debugging). */
    std::string key() const;
};

/**
 * Declared value range of a data-dependent buffer or scalar
 * parameter. All fields optional (null = unknown). `lo`/`hi` bound
 * every element value inclusively; `first`/`last` give the values at
 * the two ends of the array (meaningful for sorted indptr arrays,
 * used to refine binary-search results). Bounds may be symbolic
 * expressions over the function's scalar parameters (format
 * invariants) or concrete immediates (derived from a cached
 * structure's actual arrays).
 */
struct ValueFact
{
    ir::Expr lo;
    ir::Expr hi;
    ir::Expr first;
    ir::Expr last;
    /**
     * Elements are non-decreasing (indptr arrays). Licenses the
     * monotone-window race rule: for a sorted array P, the half-open
     * windows [P[b], P[b+1]) of distinct b are pairwise disjoint.
     */
    bool sorted = false;
};

class AffineAnalyzer
{
  public:
    AffineAnalyzer() = default;

    /** Declare a value fact, keyed by buffer or parameter name. */
    void addFact(const std::string &name, ValueFact fact);
    const ValueFact *findFact(const std::string &name) const;

    // --- lexical scopes, driven by the verifier's walk ---------------

    /** Enter a loop over [min, min+extent). */
    void pushLoopVar(const ir::Var &v, const ir::Expr &min_value,
                     const ir::Expr &extent);
    void popLoopVar(const ir::Var &v);

    /** Enter a let binding; conversions substitute the value. */
    void pushLet(const ir::Var &v, const ir::Expr &value);
    void popLet(const ir::Var &v);

    /**
     * Enter a branch guarded by `cond` (negated for else branches).
     * Returns the number of affine conjuncts recorded; pass it to
     * popConstraints on scope exit. Non-affine conjuncts are skipped
     * (fewer facts, still sound).
     */
    int pushConstraints(const ir::Expr &cond, bool negated);
    void popConstraints(int count);

    // --- conversion and proving --------------------------------------

    /**
     * Convert an integer expression to polynomial form. Let-bound
     * variables are substituted; floordiv/floormod reconstruction
     * (c * (a // c) + (a % c) -> a) is applied so fused-loop
     * recompositions become provable.
     */
    LinExpr toLinExpr(const ir::Expr &e);

    /** Prove e >= 0 under the current scopes and facts. */
    bool proveNonNeg(const LinExpr &e);
    /** Prove a >= 0. */
    bool proveNonNeg(const ir::Expr &a);
    /** Prove a <= b. */
    bool proveLE(const ir::Expr &a, const ir::Expr &b);

    /**
     * Race-disjointness: prove distinct block_var values address
     * disjoint elements. Two rules are tried in order:
     *
     *  A. Stride decomposition — split `index` as
     *     stride * block_var + rest with stride invariant in every
     *     loop variable, then confine 0 <= rest <= stride - 1.
     *
     *  B. Monotone windows — `index` contains a c * P[block_var]
     *     term (c a positive constant) with P declared sorted, and
     *     c*P[block_var] <= index < c*P[block_var + 1] holds. Sorted
     *     P makes those per-block windows pairwise disjoint: the CSR
     *     edge-space write pattern `E[J_indptr[i] + r]` at c = 1, the
     *     BSR block-space pattern `B[(JO_indptr[io] + jo) * area + t]`
     *     at c = blockArea.
     *
     * False when neither rule applies or its obligations cannot be
     * proven.
     */
    bool proveBlockDisjoint(const LinExpr &index, const ir::Var &block_var);

    /** Atom id of `e` if it is already interned; -1 otherwise. */
    int findAtom(const ir::Expr &e) const;
    /** Atoms (by id) whose expression is a load from `buffer_name`. */
    std::vector<int> loadAtomsOf(const LinExpr &e,
                                 const std::string &buffer_name) const;
    /** LinExpr of a single interned atom. */
    LinExpr atomExpr(int id) const;

  private:
    /**
     * Interned atom. Bounds are recomputed per query — they depend on
     * the current loop/guard scopes, so caching them on the atom would
     * be unsound across scope changes.
     */
    struct Atom
    {
        ir::Expr expr;
    };

    struct LoopRange
    {
        LinExpr lo;
        LinExpr hi;
    };

    int internAtom(const ir::Expr &e);
    LinExpr convert(const ir::Expr &e, int depth);
    /** c * (a // c) + (a % c) -> a rewriting, to fixpoint. */
    void normalizeDivMod(LinExpr *e, int depth);

    /** Symbolic bounds of atom `id` under the current scopes. */
    bool atomLo(int id, LinExpr *out);
    bool atomHi(int id, LinExpr *out);
    bool atomNonNeg(int id);
    bool monomialNonNeg(const Monomial &m);
    /** All factors of m except position `skip` non-negative. */
    bool cofactorsNonNeg(const Monomial &m, size_t skip);

    /** Constant bounds of a polynomial by recursive substitution. */
    bool constBounds(const LinExpr &e, int64_t *lo, int64_t *hi, int depth);

    const ValueFact *factForBuffer(const ir::Buffer &buffer) const;

    /** Rule A of proveBlockDisjoint (stride decomposition). */
    bool proveBlockStride(const LinExpr &index, const ir::Var &block_var);
    /** Rule B of proveBlockDisjoint (monotone windows). */
    bool proveBlockMonotone(const LinExpr &index,
                            const ir::Var &block_var);

    bool proveNonNegImpl(const LinExpr &e, int depth,
                         std::set<std::string> *visited);

    std::vector<Atom> atoms_;
    /** Atoms whose range query is on the stack (cycle guard). */
    std::set<int> inProgress_;
    std::map<std::string, ValueFact> facts_;
    std::map<const ir::VarNode *, LoopRange> loopRanges_;
    std::map<const ir::VarNode *, ir::Expr> lets_;
    /** Guard conjuncts, each meaning `value >= 0`. */
    std::vector<LinExpr> constraints_;
};

} // namespace verify
} // namespace sparsetir

#endif // SPARSETIR_VERIFY_AFFINE_H_
