#include "gpusim/cache.h"

#include "support/logging.h"

namespace sparsetir {
namespace gpusim {

CacheModel::CacheModel(int64_t size_bytes, int line_bytes, int assoc)
    : lineBytes_(line_bytes), assoc_(assoc)
{
    ICHECK_GT(line_bytes, 0);
    ICHECK_GT(assoc, 0);
    numSets_ = size_bytes / (static_cast<int64_t>(line_bytes) * assoc);
    ICHECK_GT(numSets_, 0) << "cache too small for geometry";
    tags_.assign(numSets_ * assoc, 0);
}

bool
CacheModel::access(uint64_t addr)
{
    return accessLine(addr / lineBytes_);
}

bool
CacheModel::accessLine(uint64_t line)
{
    // Tag 0 marks an empty way; shift stored tags by one.
    uint64_t tag = line + 1;
    int64_t set = static_cast<int64_t>(line % numSets_);
    uint64_t *ways = &tags_[set * assoc_];
    for (int w = 0; w < assoc_; ++w) {
        if (ways[w] == tag) {
            // Move to front (LRU order).
            for (int k = w; k > 0; --k) {
                ways[k] = ways[k - 1];
            }
            ways[0] = tag;
            ++hits_;
            return true;
        }
    }
    // Miss: evict the LRU way.
    for (int k = assoc_ - 1; k > 0; --k) {
        ways[k] = ways[k - 1];
    }
    ways[0] = tag;
    ++misses_;
    return false;
}

void
CacheModel::flush()
{
    std::fill(tags_.begin(), tags_.end(), 0);
}

} // namespace gpusim
} // namespace sparsetir
