/**
 * @file
 * Parameterized kernel models shared by the vendor/framework baseline
 * stand-ins (DESIGN.md substitution 2).
 *
 * Each model reproduces the published algorithm's grid decomposition
 * and memory-access pattern; per-vendor factories (cusparse.h,
 * dgsparse.h, sputnik.h, taco.h, triton.h, cublas.h, torchsparse.h,
 * frameworks.h) configure them with the knobs that distinguish the
 * libraries: rows-per-block granularity, row sorting, register
 * accumulation, vector width and pipeline efficiency.
 */

#ifndef SPARSETIR_BASELINES_MODELS_H_
#define SPARSETIR_BASELINES_MODELS_H_

#include <memory>
#include <string>
#include <vector>

#include "format/bsr.h"
#include "format/csr.h"
#include "gpusim/simulator.h"

namespace sparsetir {
namespace baselines {

/** Simulated device address assignment shared by one model. */
class AddrAllocator
{
  public:
    uint64_t
    alloc(int64_t bytes)
    {
        uint64_t base = next_;
        next_ += static_cast<uint64_t>(((bytes + 255) / 256) * 256) + 256;
        return base;
    }

  private:
    uint64_t next_ = 1 << 20;
};

/** Knobs for the row-split SpMM family. */
struct RowSplitParams
{
    /** Rows handled by one thread block. */
    int rowsPerBlock = 32;
    /** Sort rows by length before assignment (Sputnik's swizzle). */
    bool sortRows = false;
    /** Accumulate in registers (one C store) vs global read-update. */
    bool registerAccum = true;
    /** Vector load width in elements (1 = scalar, 4 = float4). */
    int vectorWidth = 1;
    /** Loop-unrolling quality: fraction of index overhead removed. */
    double unrollDiscount = 0.0;
};

/**
 * Row-split CSR SpMM model: C[m x feat] = A[m x n] * B[n x feat].
 * Grid: ceil(rows / rowsPerBlock) blocks; each row walks its
 * non-zeros, gathering rows of B with warp-coalesced loads.
 */
class RowSplitSpmmKernel : public gpusim::Kernel
{
  public:
    RowSplitSpmmKernel(std::string name, const format::Csr &a,
                       int64_t feat, RowSplitParams params);

    std::string name() const override { return name_; }
    int64_t numBlocks() const override;
    void blockWork(int64_t block_id, gpusim::BlockWork *work) const
        override;

    int64_t
    footprintBytes() const
    {
        return footprint_;
    }

  private:
    std::string name_;
    const format::Csr &a_;
    int64_t feat_;
    RowSplitParams params_;
    std::vector<int32_t> rowOrder_;
    uint64_t indptrBase_;
    uint64_t indicesBase_;
    uint64_t valuesBase_;
    uint64_t bBase_;
    uint64_t cBase_;
    int64_t footprint_ = 0;
};

/**
 * Edge-split (COO-style) SpMM: non-zeros evenly divided across blocks,
 * results combined with atomics. Perfect balance, extra atomic
 * traffic. dgSPARSE's DA-SpMM picks this for skewed matrices.
 */
class EdgeSplitSpmmKernel : public gpusim::Kernel
{
  public:
    EdgeSplitSpmmKernel(std::string name, const format::Csr &a,
                        int64_t feat, int nnz_per_block,
                        int vector_width);

    std::string name() const override { return name_; }
    int64_t numBlocks() const override;
    void blockWork(int64_t block_id, gpusim::BlockWork *work) const
        override;

  private:
    std::string name_;
    const format::Csr &a_;
    int64_t feat_;
    int nnzPerBlock_;
    int vectorWidth_;
    std::vector<int32_t> rowOfNnz_;
    uint64_t indicesBase_;
    uint64_t valuesBase_;
    uint64_t bBase_;
    uint64_t cBase_;
};

/** Knobs for SDDMM models. */
struct SddmmParams
{
    /** Non-zeros per thread block. */
    int nnzPerBlock = 8;
    /** Vector load width (PRedS float4 = 4). */
    int vectorWidth = 1;
    /** Two-stage (intra+inter group) reduction (PRedS). */
    bool twoStageReduction = false;
    /** Parallelize over rows instead of non-zeros (FeatGraph/DGL). */
    bool rowParallel = false;
};

/** SDDMM model: out_nnz = (X @ Y) sampled at A's pattern. */
class SddmmKernel : public gpusim::Kernel
{
  public:
    SddmmKernel(std::string name, const format::Csr &a, int64_t feat,
                SddmmParams params);

    std::string name() const override { return name_; }
    int64_t numBlocks() const override;
    void blockWork(int64_t block_id, gpusim::BlockWork *work) const
        override;

  private:
    std::string name_;
    const format::Csr &a_;
    int64_t feat_;
    SddmmParams params_;
    std::vector<int32_t> rowOfNnz_;
    uint64_t indptrBase_;
    uint64_t indicesBase_;
    uint64_t xBase_;
    uint64_t yBase_;
    uint64_t outBase_;
};

/**
 * Dense GEMM model (cuBLAS stand-in): C[M x N] = A[M x K] * B[K x N],
 * 128x128 output tiles staged through shared memory; optional
 * Tensor-Core (fp16) path.
 */
class DenseGemmKernel : public gpusim::Kernel
{
  public:
    DenseGemmKernel(std::string name, int64_t m, int64_t n, int64_t k,
                    bool tensor_cores);

    std::string name() const override { return name_; }
    int64_t numBlocks() const override;
    void blockWork(int64_t block_id, gpusim::BlockWork *work) const
        override;

  private:
    std::string name_;
    int64_t m_, n_, k_;
    bool tensorCores_;
    int64_t tilesM_, tilesN_;
    uint64_t aBase_, bBase_, cBase_;
};

/**
 * Block-sparse SpMM model over BSR blocks with Tensor Cores (Triton
 * stand-in). Grid: (block rows) x (feat / 64) tiles.
 */
class BlockSparseSpmmKernel : public gpusim::Kernel
{
  public:
    BlockSparseSpmmKernel(std::string name, const format::Bsr &a,
                          int64_t feat, bool tensor_cores);

    std::string name() const override { return name_; }
    int64_t numBlocks() const override;
    void blockWork(int64_t block_id, gpusim::BlockWork *work) const
        override;

  private:
    std::string name_;
    const format::Bsr &a_;
    int64_t feat_;
    bool tensorCores_;
    int64_t featTiles_;
    uint64_t indptrBase_, indicesBase_, valuesBase_, bBase_, cBase_;
};

/**
 * Block-sparse SDDMM model (Triton stand-in): one output BSR block per
 * thread block, X/Y tiles multiplied with Tensor Cores.
 */
class BlockSparseSddmmKernel : public gpusim::Kernel
{
  public:
    BlockSparseSddmmKernel(std::string name, const format::Bsr &a,
                           int64_t feat, bool tensor_cores);

    std::string name() const override { return name_; }
    int64_t numBlocks() const override;
    void blockWork(int64_t block_id, gpusim::BlockWork *work) const
        override;

  private:
    std::string name_;
    const format::Bsr &a_;
    int64_t feat_;
    bool tensorCores_;
    uint64_t xBase_, yBase_, outBase_;
};

/**
 * Gather or scatter phase of TorchSparse-style sparse conv: moves
 * `rows` rows of `feat` floats between scattered locations and a
 * packed intermediate in HBM.
 */
class GatherScatterKernel : public gpusim::Kernel
{
  public:
    GatherScatterKernel(std::string name, int64_t rows, int64_t feat,
                        bool scatter_add);

    std::string name() const override { return name_; }
    int64_t numBlocks() const override;
    void blockWork(int64_t block_id, gpusim::BlockWork *work) const
        override;

  private:
    std::string name_;
    int64_t rows_;
    int64_t feat_;
    bool scatterAdd_;
    uint64_t srcBase_, dstBase_, mapBase_;
};

} // namespace baselines
} // namespace sparsetir

#endif // SPARSETIR_BASELINES_MODELS_H_
