#include "ir/builder.h"

namespace sparsetir {
namespace ir {

SparseTirBuilder::SparseTirBuilder(std::string name)
    : func_(primFunc(std::move(name)))
{}

Var
SparseTirBuilder::scalarParam(std::string name, DataType dtype)
{
    Var param = var(std::move(name), dtype);
    func_->params.push_back(param);
    return param;
}

Axis
SparseTirBuilder::addDenseFixed(std::string name, Expr length,
                                DataType idtype)
{
    Axis axis = denseFixed(std::move(name), std::move(length), idtype);
    func_->axes.push_back(axis);
    return axis;
}

Axis
SparseTirBuilder::addDenseVariable(std::string name, Axis parent,
                                   Expr length, Expr nnz, DataType idtype)
{
    Var indptr = var(name + "_indptr", DataType::handle());
    func_->params.push_back(indptr);
    Axis axis = denseVariable(std::move(name), std::move(parent),
                              std::move(length), std::move(nnz), indptr,
                              idtype);
    func_->axes.push_back(axis);
    return axis;
}

Axis
SparseTirBuilder::addSparseFixed(std::string name, Axis parent, Expr length,
                                 Expr nnz_cols, DataType idtype)
{
    Var indices = var(name + "_indices", DataType::handle());
    func_->params.push_back(indices);
    Axis axis = sparseFixed(std::move(name), std::move(parent),
                            std::move(length), std::move(nnz_cols), indices,
                            idtype);
    func_->axes.push_back(axis);
    return axis;
}

Axis
SparseTirBuilder::addSparseVariable(std::string name, Axis parent,
                                    Expr length, Expr nnz, DataType idtype)
{
    Var indptr = var(name + "_indptr", DataType::handle());
    Var indices = var(name + "_indices", DataType::handle());
    func_->params.push_back(indptr);
    func_->params.push_back(indices);
    Axis axis = sparseVariable(std::move(name), std::move(parent),
                               std::move(length), std::move(nnz), indptr,
                               indices, idtype);
    func_->axes.push_back(axis);
    return axis;
}

Buffer
SparseTirBuilder::addSparseBuffer(std::string name, std::vector<Axis> axes,
                                  DataType dtype)
{
    Buffer buffer = matchSparseBuffer(std::move(name), std::move(axes),
                                      dtype);
    func_->params.push_back(buffer->data);
    func_->bufferMap.emplace_back(buffer->data, buffer);
    return buffer;
}

void
SparseTirBuilder::spIter(std::vector<Axis> axes, const std::string &pattern,
                         std::string name, const BodyBuilder &body,
                         const BodyBuilder &init)
{
    body_.push_back(makeSparseIteration(std::move(name), std::move(axes),
                                        pattern, body, init));
}

void
SparseTirBuilder::append(Stmt stmt)
{
    body_.push_back(std::move(stmt));
}

PrimFunc
SparseTirBuilder::finish()
{
    ICHECK(!finished_) << "finish() called twice";
    finished_ = true;
    func_->body = seq(std::move(body_));
    func_->stage = IrStage::kStage1;
    return func_;
}

SparseIteration
makeSparseIteration(std::string name, std::vector<Axis> axes,
                    const std::string &pattern,
                    const SparseTirBuilder::BodyBuilder &body,
                    const SparseTirBuilder::BodyBuilder &init)
{
    USER_CHECK(pattern.size() == axes.size())
        << "iterator pattern \"" << pattern << "\" must have one "
        << "character per axis (" << axes.size() << " axes)";
    std::vector<IterKind> kinds = parseIterKinds(pattern);
    std::vector<Var> iter_vars;
    iter_vars.reserve(axes.size());
    for (const auto &axis : axes) {
        std::string var_name = axis->name;
        for (auto &c : var_name) {
            c = static_cast<char>(std::tolower(c));
        }
        iter_vars.push_back(var(var_name, axis->idtype));
    }
    Stmt body_stmt = body(iter_vars);
    auto node = std::make_shared<SparseIterationNode>(
        std::move(name), std::move(axes), iter_vars, std::move(kinds),
        std::move(body_stmt));
    if (init != nullptr) {
        node->init = init(iter_vars);
    }
    return node;
}

} // namespace ir
} // namespace sparsetir
