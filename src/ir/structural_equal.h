/**
 * @file
 * Structural equality of IR fragments, with alpha-renaming of bound
 * variables. Used by tests and by the tensorize pattern matcher.
 */

#ifndef SPARSETIR_IR_STRUCTURAL_EQUAL_H_
#define SPARSETIR_IR_STRUCTURAL_EQUAL_H_

#include "ir/stmt.h"

namespace sparsetir {
namespace ir {

/**
 * Structural comparison of expressions. Free variables must be
 * pointer-identical; variables bound inside compared statements (loop
 * vars, let vars) are matched positionally.
 */
bool structuralEqual(const Expr &a, const Expr &b);

/** Structural comparison of statements. */
bool structuralEqual(const Stmt &a, const Stmt &b);

} // namespace ir
} // namespace sparsetir

#endif // SPARSETIR_IR_STRUCTURAL_EQUAL_H_
