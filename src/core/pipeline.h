/**
 * @file
 * End-to-end compile pipelines: Stage I op -> (format decomposition)
 * -> lowering -> Stage II schedules -> Stage III -> bound, runnable,
 * simulatable kernels.
 *
 * This is the public API a downstream user programs against; the
 * bench harness and examples are built on it.
 */

#ifndef SPARSETIR_CORE_PIPELINE_H_
#define SPARSETIR_CORE_PIPELINE_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "format/bsr.h"
#include "format/csr.h"
#include "format/ell.h"
#include "format/hyb.h"
#include "format/srbcrs.h"
#include "gpusim/ir_kernel.h"
#include "ir/prim_func.h"
#include "runtime/interpreter.h"
#include "verify/verifier.h"

namespace sparsetir {
namespace core {

/** Owned + external arrays/scalars shared by a group of kernels. */
class BindingSet
{
  public:
    /**
     * Own an array under a parameter name; returns a stable pointer.
     * Throws UserError if the name is already bound (owned or
     * external): silently shadowing a live binding would leak the old
     * storage's purpose and almost always indicates a suffix clash
     * between kernels sharing the set.
     */
    runtime::NDArray *own(const std::string &param, runtime::NDArray arr);
    /**
     * Bind an external array (caller keeps ownership). Re-pointing an
     * existing external binding is allowed (swapping I/O buffers
     * between runs); shadowing owned storage throws UserError.
     */
    void external(const std::string &param, runtime::NDArray *arr);
    /** Bind a scalar. */
    void scalar(const std::string &param, int64_t value);

    const runtime::Bindings &view() const { return bindings_; }
    runtime::NDArray *find(const std::string &param) const;

  private:
    runtime::Bindings bindings_;
    std::deque<runtime::NDArray> storage_;
    std::set<std::string> owned_;
};

/** A Stage III function bound to data: executable and simulatable. */
class BoundKernel
{
  public:
    BoundKernel(ir::PrimFunc stage3,
                std::shared_ptr<BindingSet> bindings);

    const ir::PrimFunc &func() const { return func_; }
    const std::shared_ptr<BindingSet> &bindings() const
    {
        return bindings_;
    }

    /** Functional execution on the host interpreter. */
    void execute() const;

    /** Simulator adapter (built lazily, cached). */
    gpusim::IrKernel &simKernel();

  private:
    ir::PrimFunc func_;
    std::shared_ptr<BindingSet> bindings_;
    std::unique_ptr<gpusim::IrKernel> sim_;
};

/** Tunable schedule parameters for SpMM-family kernels. */
struct SpmmSchedule
{
    /** threadIdx.x width over the feature dimension. */
    int threadX = 32;
    /** Rows grouped into one thread block (hyb buckets override). */
    int rowsPerBlock = 1;
};

/** Tunable schedule parameters for SDDMM. */
struct SddmmSchedule
{
    /** Non-zeros per thread block. */
    int workloadsPerBlock = 8;
    /** Reduction lanes (rfactor width). */
    int groupSize = 32;
};

// ---------------------------------------------------------------------
// Compile-only entry points (no data binding)
//
// These produce Stage III kernel IR as a pure function of operator
// kind, format structure constants and schedule parameters — the unit
// the engine's compile cache memoizes. The compile-and-bind helpers
// below are implemented on top of them.
// ---------------------------------------------------------------------

/** Stage III CSR SpMM kernel (structure-independent). */
ir::PrimFunc compileSpmmCsrFunc(int64_t feat,
                                const SpmmSchedule &params);

/** One scheduled hyb bucket kernel plus its identifying structure. */
struct HybKernelPlan
{
    /** "p{partition}b{bucket}" — names the bucket's bound arrays. */
    std::string suffix;
    int partition = 0;
    int bucket = 0;
    int64_t numRows = 0;
    int width = 0;
    ir::PrimFunc func;
};

/**
 * Stage III kernels for every non-empty (partition, bucket) of a hyb
 * decomposition, scheduled GE-SpMM style. Depends only on the bucket
 * shape of `hyb` (row counts and widths), not its values.
 */
std::vector<HybKernelPlan> compileSpmmHybFuncs(const format::Hyb &hyb,
                                               int64_t feat,
                                               int threadX = 32);

/**
 * Parameter names the suffix-derived kernels bind. Everything that
 * binds data to these kernels (the compile-and-bind helpers below,
 * the engine's dispatchers) must derive names here so a rename in
 * the lowering cannot silently strand a binder on stale strings.
 */
inline std::string
ellRowIndicesParam(const std::string &suffix)
{
    return "I" + suffix + "_indices";
}
inline std::string
ellColIndicesParam(const std::string &suffix)
{
    return "J" + suffix + "_indices";
}
/** Value array of a hyb SpMM bucket kernel. */
inline std::string
hybValuesParam(const std::string &suffix)
{
    return "A_ell_" + suffix + "_data";
}
/** Value array of an ELL RGMS kernel. */
inline std::string
rgmsValuesParam(const std::string &suffix)
{
    return "A" + suffix + "_data";
}

/** Stage III fused SDDMM kernel (structure-independent). */
ir::PrimFunc compileSddmmFunc(int64_t feat,
                              const SddmmSchedule &params);

/**
 * Stage III BSR SpMM kernel. Depends only on the block edge and the
 * feature width — the facts the engine folds into its cache key —
 * never on which blocks are present.
 */
ir::PrimFunc compileBsrSpmmFunc(int32_t block_size, int64_t feat,
                                bool tensor_cores);

/**
 * Stage III BSR SDDMM kernel: one thread block per block row, the
 * X panel staged and reused across the row's non-zero blocks;
 * `tensor_cores` routes the per-block MMA to the TC pipe (fp16).
 */
ir::PrimFunc compileBsrSddmmFunc(int32_t block_size, int64_t feat,
                                 bool tensor_cores);

/** Stage III SR-BCRS(t, g) SpMM kernel (structure-independent). */
ir::PrimFunc compileSrbcrsSpmmFunc(int32_t tile_height,
                                   int32_t group_size, int64_t feat);

/** Stage III ELL RGMS kernel for one (relation, bucket) pair. */
ir::PrimFunc compileEllRgmsFunc(int64_t num_rows, int width,
                                int64_t feat_in, int64_t feat_out,
                                const std::string &suffix,
                                bool tensor_cores,
                                int rows_per_block = 4);

// ---------------------------------------------------------------------
// Compile-and-bind helpers
// ---------------------------------------------------------------------

/** CSR SpMM (SparseTIR no-hyb): C = A @ B. */
std::shared_ptr<BoundKernel> compileSpmmCsr(
    const format::Csr &a, int64_t feat,
    const std::shared_ptr<BindingSet> &shared,
    const SpmmSchedule &params = SpmmSchedule());

/** Result of a hyb(c, k) SpMM compilation. */
struct HybSpmm
{
    format::Hyb hyb;
    /** One kernel per non-empty (partition, bucket). */
    std::vector<std::shared_ptr<BoundKernel>> kernels;
    std::shared_ptr<BindingSet> bindings;
};

/**
 * SpMM through the composable-format pipeline: decomposeFormat with
 * one ELL rule per non-empty (partition, bucket), per-bucket GE-SpMM
 * style schedules, bucket data prepared by format::hybFromCsr.
 * The paper's Figure 11/13 "SparseTIR(hyb)" configuration.
 */
HybSpmm compileSpmmHyb(const format::Csr &a, int64_t feat, int c, int k,
                       const std::shared_ptr<BindingSet> &shared,
                       int threadX = 32);

/** Fused SDDMM with two-stage (rfactor) reduction, PRedS-style. */
std::shared_ptr<BoundKernel> compileSddmm(
    const format::Csr &a, int64_t feat,
    const std::shared_ptr<BindingSet> &shared,
    const SddmmSchedule &params = SddmmSchedule());

/** BSR SpMM; `tensor_cores` routes the MMA to the TC pipe (fp16). */
std::shared_ptr<BoundKernel> compileBsrSpmm(
    const format::Bsr &a, int64_t feat,
    const std::shared_ptr<BindingSet> &shared, bool tensor_cores);

/**
 * BSR SDDMM (sparse-attention row-panel kernel): samples X @ Y at
 * the present blocks of `a`. Binds the block structure and leaves
 * "X_data"/"Y_data"/"B_data" for the caller.
 */
std::shared_ptr<BoundKernel> compileBsrSddmm(
    const format::Bsr &a, int64_t feat,
    const std::shared_ptr<BindingSet> &shared,
    bool tensor_cores = false);

/** SR-BCRS(t, g) SpMM with Tensor-Core MMA (m8n32k16). */
std::shared_ptr<BoundKernel> compileSrbcrsSpmm(
    const format::SrBcrs &a, int64_t feat,
    const std::shared_ptr<BindingSet> &shared);

/**
 * One fused gather-matmul-scatter kernel for an ELL bucket of one
 * relation (paper Figure 21): Y += scatter(A_ell @ X @ W_r).
 * X/W/Y are bound externally in `shared` as "X_data"/"W_data"/
 * "Y_data" by the caller. Suffix keeps kernels distinct.
 */
std::shared_ptr<BoundKernel> compileEllRgms(
    const format::Ell &bucket, int64_t feat_in, int64_t feat_out,
    const std::shared_ptr<BindingSet> &shared, const std::string &suffix,
    bool tensor_cores, int rows_per_block = 4);

// ---------------------------------------------------------------------
// Static verification hooks
// ---------------------------------------------------------------------

/**
 * Whether static artifact verification is on by default: Debug builds
 * (no NDEBUG) unless SPARSETIR_VERIFY=0, any build when
 * SPARSETIR_VERIFY=1 (the CI configuration). Governs both the
 * pipeline's compile-time self-check and
 * engine::EngineOptions::verifyArtifacts.
 */
bool verifyEnabledByDefault();

/**
 * Declare the format invariants of a Stage III kernel's structure
 * arrays to a verifier context, recognized by parameter name:
 * indptr arrays (J_indptr / JO_indptr / G_indptr) are non-negative,
 * monotone 0 -> nnz-like totals; index arrays (J_indices,
 * JO_indices, T_indices and the per-bucket I<s>_indices /
 * J<s>_indices) hold valid row/column ids. These are exactly the
 * invariants the format library establishes, expressed over the
 * function's own scalar parameters — so a symbolic verification of
 * the kernel holds for EVERY structure, not just one request's.
 */
void declareFormatFacts(const ir::PrimFunc &func,
                        verify::VerifyContext *ctx);

/** Dense reference SpMM for verification: C = A_dense @ B. */
std::vector<float> referenceSpmm(const format::Csr &a,
                                 const std::vector<float> &b,
                                 int64_t feat);

/** Dense reference SDDMM: out_nnz = (X @ Y) masked to A's pattern. */
std::vector<float> referenceSddmm(const format::Csr &a,
                                  const std::vector<float> &x,
                                  const std::vector<float> &y,
                                  int64_t feat);

} // namespace core
} // namespace sparsetir

#endif // SPARSETIR_CORE_PIPELINE_H_
