/**
 * @file
 * Sparse iteration lowering: Stage I -> Stage II (paper §3.3.1).
 *
 * Four steps:
 *  1. Auxiliary buffer materialization — indptr/indices handles become
 *     explicit 1-D int buffers with domain hints.
 *  2. Nested loop generation — one loop per (possibly fused) axis,
 *     separated by TensorIR blocks whenever a loop's extent is
 *     data-dependent, so schedules cannot illegally reorder across.
 *  3. Coordinate translation — rewrites sparse buffer accesses from
 *     coordinate space to position space (eqs. 1-5), emitting binary
 *     searches for coordinate->position compression when the access
 *     does not ride an iteration axis.
 *  4. Read/write region analysis — annotates every block.
 */

#ifndef SPARSETIR_TRANSFORM_LOWER_SPARSE_ITER_H_
#define SPARSETIR_TRANSFORM_LOWER_SPARSE_ITER_H_

#include "ir/prim_func.h"

namespace sparsetir {
namespace transform {

/**
 * Lower every sparse iteration in `func` to nested loops in position
 * space. Returns a new Stage II function; the input is not modified.
 */
ir::PrimFunc lowerSparseIterations(const ir::PrimFunc &func);

/**
 * Total number of storage positions along an axis (used for aux buffer
 * extents and flattening strides): length for dense-fixed, nnz for
 * variable, parentSlots * nnzCols for sparse-fixed.
 */
ir::Expr axisSlots(const ir::Axis &axis);

/** The materialized indptr buffer of a variable axis. */
ir::Buffer indptrBufferOf(const ir::Axis &axis);

/** The materialized indices buffer of a sparse axis. */
ir::Buffer indicesBufferOf(const ir::Axis &axis);

} // namespace transform
} // namespace sparsetir

#endif // SPARSETIR_TRANSFORM_LOWER_SPARSE_ITER_H_
