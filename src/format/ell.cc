#include "format/ell.h"

#include "support/logging.h"

namespace sparsetir {
namespace format {

int64_t
Ell::paddedZeros() const
{
    int64_t zeros = 0;
    for (float v : values) {
        if (v == 0.0f) {
            ++zeros;
        }
    }
    return zeros;
}

Ell
ellFromCsrRows(const Csr &m, const std::vector<int32_t> &rows,
               int32_t width)
{
    ICHECK_GT(width, 0);
    Ell out;
    out.rows = m.rows;
    out.cols = m.cols;
    out.width = width;
    out.rowIndices = rows;
    out.colIndices.reserve(rows.size() * width);
    out.values.reserve(rows.size() * width);
    out.sourcePos.reserve(rows.size() * width);
    for (int32_t r : rows) {
        ICHECK_GE(r, 0);
        ICHECK_LT(r, m.rows);
        int32_t len = m.rowLength(r);
        ICHECK_LE(len, width)
            << "row " << r << " has " << len
            << " non-zeros; does not fit ELL width " << width;
        int32_t last_index = 0;
        for (int32_t k = 0; k < width; ++k) {
            if (k < len) {
                int32_t p = m.indptr[r] + k;
                last_index = m.indices[p];
                out.colIndices.push_back(m.indices[p]);
                out.values.push_back(m.values[p]);
                out.sourcePos.push_back(p);
            } else {
                // Repeat the last valid index so per-row indices stay
                // sorted; padded value is zero.
                out.colIndices.push_back(last_index);
                out.values.push_back(0.0f);
                out.sourcePos.push_back(-1);
            }
        }
    }
    return out;
}

void
ellAddToDense(const Ell &m, std::vector<float> *dense)
{
    ICHECK_EQ(static_cast<int64_t>(dense->size()), m.rows * m.cols);
    for (int64_t er = 0; er < m.numRows(); ++er) {
        int64_t r = m.rowIndices[er];
        for (int32_t k = 0; k < m.width; ++k) {
            float v = m.values[er * m.width + k];
            if (v != 0.0f) {
                (*dense)[r * m.cols + m.colIndices[er * m.width + k]] += v;
            }
        }
    }
}

} // namespace format
} // namespace sparsetir
