#include "baselines/triton.h"

namespace sparsetir {
namespace baselines {

std::unique_ptr<gpusim::Kernel>
tritonBlockSpmm(const format::Bsr &a, int64_t feat)
{
    return std::make_unique<BlockSparseSpmmKernel>("triton_bsrmm", a,
                                                   feat, true);
}

std::unique_ptr<gpusim::Kernel>
tritonBlockSddmm(const format::Bsr &a, int64_t feat)
{
    return std::make_unique<BlockSparseSddmmKernel>("triton_bsddmm", a,
                                                    feat, true);
}

} // namespace baselines
} // namespace sparsetir
