/**
 * @file
 * Builder DSL for Stage I SparseTIR programs.
 *
 * Mirrors the paper's Python front end (Figure 3): declare axes,
 * match sparse buffers against handle parameters and write sparse
 * iterations with lambda-built bodies.
 */

#ifndef SPARSETIR_IR_BUILDER_H_
#define SPARSETIR_IR_BUILDER_H_

#include <functional>
#include <string>
#include <vector>

#include "ir/prim_func.h"

namespace sparsetir {
namespace ir {

/**
 * Incrementally builds a Stage I PrimFunc.
 *
 * Axis-creating methods also append the indptr/indices handle
 * parameters to the function signature, and matchSparseBuffer appends
 * the value handle, so the finished function's parameter order follows
 * declaration order.
 */
class SparseTirBuilder
{
  public:
    explicit SparseTirBuilder(std::string name);

    /** Add a scalar parameter (e.g. m, n, nnz, feat_size). */
    Var scalarParam(std::string name, DataType dtype = DataType::int32());

    /** Declare a root dense-fixed axis. */
    Axis addDenseFixed(std::string name, Expr length,
                       DataType idtype = DataType::int32());

    /** Declare a dense-variable axis (creates an indptr param). */
    Axis addDenseVariable(std::string name, Axis parent, Expr length,
                          Expr nnz, DataType idtype = DataType::int32());

    /** Declare a sparse-fixed axis (creates an indices param). */
    Axis addSparseFixed(std::string name, Axis parent, Expr length,
                        Expr nnz_cols, DataType idtype = DataType::int32());

    /** Declare a sparse-variable axis (creates indptr+indices params). */
    Axis addSparseVariable(std::string name, Axis parent, Expr length,
                           Expr nnz, DataType idtype = DataType::int32());

    /** Bind a sparse buffer to a new handle parameter. */
    Buffer addSparseBuffer(std::string name, std::vector<Axis> axes,
                           DataType dtype = DataType::float32());

    /** Builds the loop body given the iteration variables. */
    using BodyBuilder = std::function<Stmt(const std::vector<Var> &)>;

    /**
     * Append a sparse iteration over `axes` with the S/R `pattern`
     * (one char per axis). `body` receives one iteration variable per
     * axis; `init` (optional) builds the reduction-init statement.
     */
    void spIter(std::vector<Axis> axes, const std::string &pattern,
                std::string name, const BodyBuilder &body,
                const BodyBuilder &init = nullptr);

    /** Append an arbitrary statement to the function body. */
    void append(Stmt stmt);

    /** Finalize and return the function. */
    PrimFunc finish();

  private:
    PrimFunc func_;
    std::vector<Stmt> body_;
    bool finished_ = false;
};

/**
 * Build a standalone sparse iteration (not tied to a builder), useful
 * for transformation passes that synthesize iterations.
 */
SparseIteration makeSparseIteration(
    std::string name, std::vector<Axis> axes, const std::string &pattern,
    const SparseTirBuilder::BodyBuilder &body,
    const SparseTirBuilder::BodyBuilder &init = nullptr);

} // namespace ir
} // namespace sparsetir

#endif // SPARSETIR_IR_BUILDER_H_
