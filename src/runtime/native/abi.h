/**
 * @file
 * C ABI shared between the host and emitted native kernels.
 *
 * A native kernel is a self-contained C translation unit compiled
 * out-of-process (`cc -O2 -fPIC -shared`) and dlopen'd back into the
 * serving process. The host and the kernel communicate through the
 * two structs below: the emitted source contains a textually
 * identical definition of each (see c_emitter.cc's preamble), so both
 * sides are laid out by the same platform C ABI and stay compatible
 * as long as the field order here and in the preamble match.
 *
 * Error handling crosses the boundary as integer return codes, never
 * exceptions: emitted code records (fault code, slot, offset) in the
 * context and returns; the host (native_compiler.cc) reconstructs the
 * same ICHECK/USER_CHECK diagnostics the bytecode VM would have
 * raised, so the native tier is drop-in bitwise- and fault-compatible
 * with the other backends.
 */

#ifndef SPARSETIR_RUNTIME_NATIVE_ABI_H_
#define SPARSETIR_RUNTIME_NATIVE_ABI_H_

#include <cstdint>

namespace sparsetir {
namespace runtime {
namespace native {

/**
 * Version of the kernel ABI (struct layout, helper contract, entry
 * and meta symbol names). Folded into every artifact's meta string
 * and cache filename, so a persisted .so built against an older ABI
 * can never be loaded by newer host code.
 */
constexpr int kNativeAbiVersion = 1;

/** Entry symbol every emitted kernel exports. */
constexpr const char *kEntrySymbol = "sparsetir_kernel_run";
/** Metadata symbol (a NUL-terminated identification string). */
constexpr const char *kMetaSymbol = "sparsetir_kernel_meta";

// ---------------------------------------------------------------------
// Fault codes returned by the kernel entry point. 0 is success.
// ---------------------------------------------------------------------

enum : int32_t {
    ST_OK = 0,
    /** Unbound / negative / out-of-range element access. */
    ST_FAULT_ACCESS = 1,
    /** Access outside every span of a rebased (OffsetView) slot. */
    ST_FAULT_WINDOW = 2,
    /** floordiv / floormod by zero. */
    ST_FAULT_DIV0 = 3,
    /** Register-class mismatch (int access to float storage etc.). */
    ST_FAULT_CLASS = 4,
    /** Binary search over a rebased slot or an invalid range. */
    ST_FAULT_SEARCH = 5,
    /** Negative scratch allocation extent. */
    ST_FAULT_NEGALLOC = 6,
    /** Scratch allocation failed (calloc returned NULL). */
    ST_FAULT_OOM = 7,
};

/**
 * One buffer slot visible to the kernel: a bound parameter array or
 * a scratch allocation. Mirrors the bytecode VM's SlotRt. `kind`
 * carries a bytecode::ElemKind value; `spans` points at 2*numSpans
 * int64s ([begin, end) pairs) when the slot is rebased through a
 * runtime::OffsetView.
 *
 * KEEP IN SYNC with the StSlot definition in c_emitter.cc's
 * preamble: same fields, same order, same types.
 */
struct StSlot
{
    unsigned char *base = nullptr;
    int64_t numel = 0;
    int32_t kind = 0;
    int32_t ebytes = 0;
    int32_t bound = 0;
    int32_t hasView = 0;
    const int64_t *spans = nullptr;
    const int64_t *bases = nullptr;
    int64_t numSpans = 0;
};

/**
 * Execution context of one kernel run. KEEP IN SYNC with the StCtx
 * definition in c_emitter.cc's preamble.
 */
struct StCtx
{
    StSlot *slots = nullptr;
    const int64_t *scalars = nullptr;
    int64_t blockBegin = 0;
    /** < 0: unwindowed (mirrors RunOptions::blockEnd). */
    int64_t blockEnd = -1;
    int32_t faultSlot = -1;
    int64_t faultOffset = 0;
};

/** Signature of the dlopen'd kernel entry point. */
using KernelEntryFn = int32_t (*)(StCtx *);

} // namespace native
} // namespace runtime
} // namespace sparsetir

#endif // SPARSETIR_RUNTIME_NATIVE_ABI_H_
