/**
 * @file
 * Memoization of compiled kernel artifacts.
 *
 * The cache maps a request fingerprint (see fingerprint.h) to the
 * artifact produced by the full Stage I -> III pipeline, so repeated
 * requests against the same sparsity structure skip decomposition,
 * lowering and scheduling entirely and go straight to value binding
 * and execution.
 *
 * Thread safety: all public methods may be called concurrently. A
 * builder for a missing key runs outside the lock (compiles can take
 * milliseconds and must not serialize unrelated lookups); if two
 * threads race to build the same key, both compile and the first
 * insertion wins — wasted work, never wrong results. Artifacts are
 * immutable after construction and shared by reference.
 */

#ifndef SPARSETIR_ENGINE_COMPILE_CACHE_H_
#define SPARSETIR_ENGINE_COMPILE_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "engine/fingerprint.h"
#include "observe/metrics.h"
#include "verify/verifier.h"

namespace sparsetir {
namespace engine {

struct CompiledKernel;

/**
 * Verdict of the static artifact verifier (verify/verifier.h) over
 * every kernel of one artifact. Filled by the miss-path builder when
 * EngineOptions::verifyArtifacts is on, then cached WITH the artifact
 * — warm dispatches reuse the verdict without re-proving anything, so
 * verification cost is paid exactly once per compiled artifact.
 */
struct VerifyReport
{
    /** True when verification ran for this artifact's kernels. */
    bool attempted = false;
    /** Every kernel proved bounds / write-set / race obligations. */
    bool ok = true;
    /** Kernels checked (hyb/RGCN artifacts hold several). */
    int kernels = 0;
    /** Wall time spent proving, across the artifact's kernels. */
    double verifyMs = 0.0;
    /** Printer-backed failure diagnostics (empty when ok). */
    std::vector<verify::Diagnostic> diagnostics;
};

/** Base of all cached compile results (immutable after build —
 *  except the atomic native-kernel boxes, see nativeKernels()). */
class Artifact
{
  public:
    virtual ~Artifact() = default;

    /**
     * The artifact's compiled kernels, for the engine's native-tier
     * promotion: each kernel's NativeBox is the one mutable cell of
     * an artifact, swapped from empty to a dlopen'd kernel when a
     * background native build completes. Artifact types that hold no
     * CompiledKernels (or predate the native tier) report none and
     * are simply never promoted.
     */
    virtual std::vector<CompiledKernel *>
    nativeKernels()
    {
        return {};
    }

    /** Cached static-verification verdict (see VerifyReport). */
    VerifyReport verify;
};

/**
 * Monotonic cache counters — a view assembled by
 * CompileCache::stats() from the metrics registry instruments
 * `cache.hits` / `cache.misses` / `cache.evictions` /
 * `cache.build_ms` (the struct itself no longer stores anything).
 */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /** Total wall time spent in miss-path builders. */
    double compileMs = 0.0;
    /** Kernels the static verifier checked at artifact build. */
    uint64_t verifiedKernels = 0;
    /** Artifacts whose verification found a violation. */
    uint64_t verifyFailures = 0;
    /** Total wall time spent proving (subset of compileMs). */
    double verifyMs = 0.0;
};

/** Thread-safe LRU cache of compiled artifacts. */
class CompileCache
{
  public:
    /**
     * `metrics` is the registry the cache's counters and build-time
     * histogram live in (borrowed; must outlive the cache — the
     * Engine passes its own registry so concurrent engines never
     * alias). Null: the cache registers in a private registry it
     * owns.
     */
    explicit CompileCache(size_t capacity = 64,
                          observe::MetricsRegistry *metrics = nullptr);

    /**
     * Return the artifact for `key`, invoking `builder` on a miss.
     * The builder's wall time is accounted in stats().compileMs.
     * When `was_hit` is non-null it is set to whether this call was
     * served from cache (a lost build race still reports a miss: the
     * caller paid for a compile).
     */
    std::shared_ptr<Artifact>
    getOrBuild(const CacheKey &key,
               const std::function<std::shared_ptr<Artifact>()> &builder,
               bool *was_hit = nullptr);

    /** Lookup without building; null on miss. Does not touch stats. */
    std::shared_ptr<Artifact> peek(const CacheKey &key) const;

    CacheStats stats() const;
    size_t size() const;
    size_t capacity() const { return capacity_; }
    void clear();

  private:
    struct Entry
    {
        std::shared_ptr<Artifact> value;
        std::list<CacheKey>::iterator lruPos;
    };

    /** Callers must hold mu_. Moves `key` to the LRU front. */
    void touch(const CacheKey &key, Entry &entry);

    mutable std::mutex mu_;
    size_t capacity_;
    /** Front = most recently used. */
    std::list<CacheKey> lru_;
    std::unordered_map<CacheKey, Entry, CacheKeyHash> entries_;
    /** Backing registry when none was injected. */
    std::unique_ptr<observe::MetricsRegistry> ownedMetrics_;
    observe::Counter *hits_;
    observe::Counter *misses_;
    observe::Counter *evictions_;
    observe::LatencyHistogram *buildMs_;
    observe::Counter *verifiedKernels_;
    observe::Counter *verifyFailures_;
    observe::LatencyHistogram *verifyMs_;
};

} // namespace engine
} // namespace sparsetir

#endif // SPARSETIR_ENGINE_COMPILE_CACHE_H_
