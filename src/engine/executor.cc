#include "engine/executor.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "ir/analysis.h"
#include "ir/expr.h"
#include "ir/functor.h"
#include "ir/structural_equal.h"
#include "support/logging.h"

namespace sparsetir {
namespace engine {

using namespace ir;
using runtime::Bindings;
using runtime::NDArray;

namespace {

/** Collects loads of one buffer (by data var) inside an expression. */
class LoadCollector : public ExprVisitor
{
  public:
    explicit LoadCollector(const VarNode *data) : data_(data) {}

    const std::vector<const BufferLoadNode *> &loads() const
    {
        return loads_;
    }

  protected:
    void
    visitBufferLoad(const BufferLoadNode *op) override
    {
        if (op->buffer->data.get() == data_) {
            loads_.push_back(op);
        }
        ExprVisitor::visitBufferLoad(op);
    }

  private:
    const VarNode *data_;
    std::vector<const BufferLoadNode *> loads_;
};

/**
 * Finds parameter-bound buffers updated by cross-element
 * accumulation: a store whose value re-loads the stored element, or
 * an atomic_add call. An RMW store inside a block whose init writes
 * the same buffer is exempt — that is an *initialized* reduction
 * (e.g. rfactor's final update): per element the init overwrites any
 * prior contents before the updates accumulate, so the kernel has
 * overwrite semantics and its per-block writes are disjoint; treating
 * it as accumulation would fold stale output contents back in.
 */
class AccumFinder : public StmtVisitor
{
  public:
    explicit AccumFinder(const PrimFunc &func)
    {
        for (const auto &param : func->params) {
            if (param->dtype.isHandle()) {
                params_.insert(param.get());
            }
        }
    }

    const std::set<std::string> &found() const { return found_; }

  protected:
    void
    visitBlock(const BlockNode *op) override
    {
        std::vector<const VarNode *> pushed;
        if (op->init != nullptr) {
            for (const BufferAccess &access :
                 collectBufferAccesses(op->init)) {
                if (access.isWrite) {
                    const VarNode *data = access.buffer->data.get();
                    if (init_written_.insert(data).second) {
                        pushed.push_back(data);
                    }
                }
            }
        }
        StmtVisitor::visitBlock(op);
        for (const VarNode *data : pushed) {
            init_written_.erase(data);
        }
    }

    void
    visitBufferStore(const BufferStoreNode *op) override
    {
        const VarNode *data = op->buffer->data.get();
        if (params_.count(data) && !init_written_.count(data)) {
            LoadCollector loads(data);
            loads.visitExpr(op->value);
            for (const BufferLoadNode *load : loads.loads()) {
                if (sameIndices(load->indices, op->indices)) {
                    found_.insert(data->name);
                    break;
                }
            }
        }
        StmtVisitor::visitBufferStore(op);
    }

    void
    visitCall(const CallNode *op) override
    {
        if (op->op == Builtin::kAtomicAdd && op->bufferArg != nullptr &&
            params_.count(op->bufferArg->data.get())) {
            found_.insert(op->bufferArg->data->name);
        }
        ExprVisitor::visitCall(op);
    }

  private:
    static bool
    sameIndices(const std::vector<Expr> &a, const std::vector<Expr> &b)
    {
        if (a.size() != b.size()) {
            return false;
        }
        for (size_t i = 0; i < a.size(); ++i) {
            if (!structuralEqual(a[i], b[i])) {
                return false;
            }
        }
        return true;
    }

    std::unordered_set<const VarNode *> params_;
    /** Buffers written by an enclosing block's init (scoped). */
    std::unordered_set<const VarNode *> init_written_;
    std::set<std::string> found_;
};

/**
 * Accumulated outputs of one task, privatized: name -> zeroed private
 * array shadowing the shared binding.
 */
struct Privatized
{
    std::vector<std::string> names;
    /** Parallel to names. deque-free: stable since sized up front. */
    std::vector<NDArray> arrays;
};

/**
 * Build task-local bindings where each accumulated output named in
 * `accum` (and float-typed — integer outputs are never privatized; see
 * caller guards) is replaced by a private zero-filled copy.
 */
Bindings
privatize(const Bindings &shared, const std::vector<std::string> &accum,
          Privatized *storage)
{
    Bindings local = shared;
    storage->names.reserve(accum.size());
    storage->arrays.reserve(accum.size());
    for (const std::string &name : accum) {
        auto it = shared.arrays.find(name);
        ICHECK(it != shared.arrays.end());
        const NDArray &orig = *it->second;
        storage->names.push_back(name);
        storage->arrays.emplace_back(orig.shape(), orig.dtype());
        local.arrays[name] = &storage->arrays.back();
    }
    return local;
}

/** Fold a private accumulator into the shared array element-wise. */
void
foldInto(NDArray *shared, const NDArray &priv)
{
    ICHECK_EQ(shared->numel(), priv.numel());
    int64_t n = shared->numel();
    if (shared->dtype().isFloat()) {
        for (int64_t i = 0; i < n; ++i) {
            shared->setFloat(i, shared->floatAt(i) + priv.floatAt(i));
        }
    } else {
        for (int64_t i = 0; i < n; ++i) {
            shared->setInt(i, shared->intAt(i) + priv.intAt(i));
        }
    }
}

/**
 * Accumulated params that are actually bound in this request. An
 * accumulated buffer the caller did not bind would fault inside the
 * interpreter anyway; filtering keeps privatization aligned with the
 * lazy-binding convention. `precomputed`, when non-null, is the
 * cached result of accumulatedParams(func).
 */
std::vector<std::string>
boundAccumulated(const PrimFunc &func, const Bindings &bindings,
                 const std::vector<std::string> *precomputed)
{
    std::vector<std::string> all;
    if (precomputed == nullptr) {
        all = ParallelExecutor::accumulatedParams(func);
    }
    const std::vector<std::string> &names =
        precomputed != nullptr ? *precomputed : all;
    std::vector<std::string> result;
    for (const std::string &name : names) {
        if (bindings.arrays.count(name)) {
            result.push_back(name);
        }
    }
    return result;
}

} // namespace

ParallelExecutor::ParallelExecutor(std::shared_ptr<ThreadPool> pool)
    : pool_(std::move(pool))
{
    ICHECK(pool_ != nullptr);
}

std::vector<std::string>
ParallelExecutor::accumulatedParams(const PrimFunc &func)
{
    AccumFinder finder(func);
    if (func->body != nullptr) {
        finder.visitStmt(func->body);
    }
    return std::vector<std::string>(finder.found().begin(),
                                    finder.found().end());
}

void
ParallelExecutor::runKernel(const PrimFunc &func,
                            const Bindings &bindings,
                            const ExecOptions &options,
                            const std::vector<std::string> *accum_pre)
    const
{
    int workers = options.workers > 0
                      ? std::min(options.workers, pool_->size())
                      : pool_->size();
    if (!options.parallel || workers <= 1) {
        runtime::run(func, bindings);
        return;
    }
    runtime::LaunchInfo info = runtime::launchInfo(func, bindings);
    int64_t min_chunk = std::max<int64_t>(options.minBlocksPerChunk, 1);
    int64_t chunks =
        info.hasBlockIdx
            ? std::min<int64_t>(workers, info.blockExtent / min_chunk)
            : 0;
    if (chunks < 2) {
        runtime::run(func, bindings);
        return;
    }

    std::vector<std::string> accum =
        boundAccumulated(func, bindings, accum_pre);
    std::vector<Privatized> privates(chunks);
    std::vector<Bindings> locals;
    locals.reserve(chunks);
    std::vector<runtime::RunOptions> windows(chunks);
    int64_t base = info.blockExtent / chunks;
    int64_t rem = info.blockExtent % chunks;
    int64_t begin = 0;
    for (int64_t c = 0; c < chunks; ++c) {
        int64_t extent = base + (c < rem ? 1 : 0);
        windows[c].blockBegin = begin;
        windows[c].blockEnd = begin + extent;
        begin += extent;
        locals.push_back(privatize(bindings, accum, &privates[c]));
    }

    pool_->parallelFor(chunks, [&](int64_t c) {
        runtime::run(func, locals[c], windows[c]);
    });

    // Fold privates in chunk order: per element this replays the
    // serial order of block contributions.
    for (size_t a = 0; a < accum.size(); ++a) {
        NDArray *shared = bindings.arrays.at(accum[a]);
        for (int64_t c = 0; c < chunks; ++c) {
            foldInto(shared, privates[c].arrays[a]);
        }
    }
}

void
ParallelExecutor::runKernels(
    const std::vector<PrimFunc> &funcs, const Bindings &bindings,
    const ExecOptions &options, const std::vector<uint8_t> &exclusive,
    const std::vector<std::vector<std::string>> *accums) const
{
    ICHECK(exclusive.empty() || exclusive.size() == funcs.size())
        << "exclusive mask does not match kernel count";
    ICHECK(accums == nullptr || accums->size() == funcs.size())
        << "precomputed accumulation lists do not match kernel count";
    int workers = options.workers > 0
                      ? std::min(options.workers, pool_->size())
                      : pool_->size();
    if (!options.parallel || workers <= 1) {
        for (const PrimFunc &func : funcs) {
            runtime::run(func, bindings);
        }
        return;
    }
    if (funcs.size() == 1) {
        // A lone non-exclusive kernel still gets grid-level
        // parallelism (each output element is written at most once,
        // so window splitting is bitwise-safe); an exclusive one
        // must stay serial.
        if (!exclusive.empty() && exclusive[0]) {
            runtime::run(funcs[0], bindings);
        } else {
            runKernel(funcs[0], bindings, options,
                      accums != nullptr ? &(*accums)[0] : nullptr);
        }
        return;
    }

    // Run a contiguous batch of single-write-back kernels in
    // parallel on privatized accumulators, then fold the privates in
    // list order: per output element this replays the serial
    // addition sequence exactly.
    auto run_batch = [&](int64_t begin, int64_t end) {
        int64_t n = end - begin;
        if (n <= 0) {
            return;
        }
        if (n == 1) {
            // Sole kernel of its batch: grid-split it instead of
            // running serially (non-exclusive by construction).
            runKernel(funcs[begin], bindings, options,
                      accums != nullptr ? &(*accums)[begin] : nullptr);
            return;
        }
        std::vector<std::vector<std::string>> accum(n);
        std::vector<Privatized> privates(n);
        std::vector<Bindings> locals;
        locals.reserve(n);
        for (int64_t i = 0; i < n; ++i) {
            accum[i] = boundAccumulated(
                funcs[begin + i], bindings,
                accums != nullptr ? &(*accums)[begin + i] : nullptr);
            locals.push_back(
                privatize(bindings, accum[i], &privates[i]));
        }
        if (workers >= pool_->size()) {
            // No per-call cap below pool capacity: enqueue the whole
            // batch, the pool bounds concurrency.
            pool_->parallelFor(n, [&](int64_t i) {
                runtime::run(funcs[begin + i], locals[i]);
            });
        } else {
            // Honor the per-call worker cap (options.workers) by
            // fanning out in waves of at most `workers` kernels.
            for (int64_t wave = 0; wave < n; wave += workers) {
                int64_t count = std::min<int64_t>(workers, n - wave);
                pool_->parallelFor(count, [&](int64_t j) {
                    runtime::run(funcs[begin + wave + j],
                                 locals[wave + j]);
                });
            }
        }
        for (int64_t i = 0; i < n; ++i) {
            for (size_t a = 0; a < accum[i].size(); ++a) {
                NDArray *shared = bindings.arrays.at(accum[i][a]);
                foldInto(shared, privates[i].arrays[a]);
            }
        }
    };

    int64_t total = static_cast<int64_t>(funcs.size());
    int64_t batch_begin = 0;
    for (int64_t i = 0; i < total; ++i) {
        if (!exclusive.empty() && exclusive[i]) {
            run_batch(batch_begin, i);
            // Exclusive kernels observe the true pre-values, so they
            // run at their serial position on shared storage.
            runtime::run(funcs[i], bindings);
            batch_begin = i + 1;
        }
    }
    run_batch(batch_begin, total);
}

} // namespace engine
} // namespace sparsetir
