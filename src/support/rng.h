/**
 * @file
 * Deterministic random number generation for synthetic workloads.
 *
 * All dataset generators take an explicit seed so every experiment is
 * reproducible bit-for-bit across runs.
 */

#ifndef SPARSETIR_SUPPORT_RNG_H_
#define SPARSETIR_SUPPORT_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sparsetir {

/**
 * SplitMix64-seeded xoshiro256** generator. Small, fast and
 * deterministic across platforms (unlike std::mt19937 distributions,
 * whose output is implementation-defined for some distribution types).
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed5eed);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t uniformInt(uint64_t bound);

    /** Uniform integer in [lo, hi]. */
    int64_t uniformRange(int64_t lo, int64_t hi);

    /** Uniform real in [0, 1). */
    double uniformReal();

    /** Standard normal via Box-Muller. */
    double normal();

    /**
     * Sample from a discrete power-law distribution over [1, x_max]
     * with exponent alpha (> 1), via inverse-CDF of the continuous
     * Pareto distribution rounded down.
     */
    int64_t powerLaw(double alpha, int64_t x_max);

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = uniformInt(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    uint64_t state_[4];
};

} // namespace sparsetir

#endif // SPARSETIR_SUPPORT_RNG_H_
