#include "graph/hetero.h"

#include <algorithm>
#include <cmath>

#include "format/coo.h"
#include "graph/generator.h"
#include "support/logging.h"
#include "support/rng.h"

namespace sparsetir {
namespace graph {

std::vector<HeteroSpec>
table2Heterographs()
{
    // ogbl-biokg and AM scaled down (DESIGN.md substitution 3).
    return {
        {"AIFB", 7262, 48810, 45, 7262, 48810, 17.9},
        {"MUTAG", 27163, 148100, 46, 27163, 148100, 8.0},
        {"BGS", 94806, 672884, 96, 94806, 672884, 4.3},
        {"ogbl-biokg", 93773, 4762678, 51, 31258, 1587559, 4.2},
        {"AM", 1885136, 5668682, 96, 377027, 1133736, 10.8},
    };
}

HeteroSpec
heteroSpec(const std::string &name)
{
    for (const auto &spec : table2Heterographs()) {
        if (spec.name == name) {
            return spec;
        }
    }
    USER_CHECK(false) << "unknown heterograph '" << name << "'";
    return {};
}

format::RelationalCsr
generateHetero(const HeteroSpec &spec, uint64_t seed)
{
    Rng rng(seed);
    format::RelationalCsr out;
    out.rows = spec.nodes;
    out.cols = spec.nodes;

    // Zipf relation popularity.
    std::vector<double> weight(spec.numEtypes);
    double total_weight = 0.0;
    for (int r = 0; r < spec.numEtypes; ++r) {
        weight[r] = 1.0 / static_cast<double>(r + 1);
        total_weight += weight[r];
    }

    int64_t remaining = spec.edges;
    for (int r = 0; r < spec.numEtypes; ++r) {
        int64_t rel_edges =
            r + 1 == spec.numEtypes
                ? remaining
                : std::max<int64_t>(
                      1, static_cast<int64_t>(std::llround(
                             spec.edges * weight[r] / total_weight)));
        rel_edges = std::min(rel_edges, remaining);
        remaining -= rel_edges;
        out.relations.push_back(powerLawGraph(
            spec.nodes, std::max<int64_t>(rel_edges, 1), 2.0,
            seed + 1000 + static_cast<uint64_t>(r)));
    }
    return out;
}

} // namespace graph
} // namespace sparsetir
