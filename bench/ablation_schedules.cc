/**
 * @file
 * Ablation: contribution of individual composable transformations to
 * SpMM/SDDMM performance (DESIGN.md ablation index). Uses
 * google-benchmark for the host-side compilation cost and the
 * simulator for kernel quality.
 */

#include <benchmark/benchmark.h>

#include "autotune/search.h"
#include "baselines/vendor_constants.h"
#include "bench_util.h"
#include "core/pipeline.h"
#include "graph/datasets.h"

using namespace sparsetir;

namespace {

format::Csr &
testGraph()
{
    static format::Csr g = [] {
        graph::DatasetSpec spec = graph::datasetSpec("pubmed");
        return graph::generateDataset(spec);
    }();
    return g;
}

/** Host cost of the full compile pipeline (lower + schedule). */
void
BM_CompileSpmmCsr(benchmark::State &state)
{
    format::Csr &g = testGraph();
    for (auto _ : state) {
        auto shared = std::make_shared<core::BindingSet>();
        auto kernel = core::compileSpmmCsr(g, 64, shared);
        benchmark::DoNotOptimize(kernel);
    }
}
BENCHMARK(BM_CompileSpmmCsr);

/** Host cost of hyb decomposition + per-bucket scheduling. */
void
BM_CompileSpmmHyb(benchmark::State &state)
{
    format::Csr &g = testGraph();
    for (auto _ : state) {
        auto shared = std::make_shared<core::BindingSet>();
        auto compiled = core::compileSpmmHyb(
            g, 64, static_cast<int>(state.range(0)), -1, shared);
        benchmark::DoNotOptimize(compiled);
    }
}
BENCHMARK(BM_CompileSpmmHyb)->Arg(1)->Arg(4);

/** Simulated kernel quality of schedule variants (custom counters). */
void
BM_ScheduleAblation(benchmark::State &state)
{
    format::Csr &g = testGraph();
    gpusim::Device device(gpusim::GpuSpec::v100());
    gpusim::SimOptions opts;
    opts.efficiency = baselines::kSparseTirEfficiency;
    int64_t feat = 64;

    runtime::NDArray b({g.cols * feat}, ir::DataType::float32());
    runtime::NDArray c({g.rows * feat}, ir::DataType::float32());

    // Variant A: thread binding only (threadX = 1 disables the
    // coalesced feature mapping).
    core::SpmmSchedule narrow;
    narrow.threadX = 1;
    auto sa = std::make_shared<core::BindingSet>();
    sa->external("B_data", &b);
    sa->external("C_data", &c);
    auto k_narrow = core::compileSpmmCsr(g, feat, sa, narrow);
    double narrow_ms =
        device.launch(k_narrow->simKernel(), opts).timeMs;

    // Variant B: + coalesced threadIdx.x over features.
    auto sb = std::make_shared<core::BindingSet>();
    sb->external("B_data", &b);
    sb->external("C_data", &c);
    auto k_coalesced = core::compileSpmmCsr(g, feat, sb);
    double coalesced_ms =
        device.launch(k_coalesced->simKernel(), opts).timeMs;

    // Variant C: + composable format (tuned hyb).
    autotune::HybTuneResult tuned =
        autotune::tuneSpmmHyb(g, feat, device, {1, 2, 4});

    for (auto _ : state) {
        benchmark::DoNotOptimize(narrow_ms);
    }
    state.counters["scalar_ms"] = narrow_ms;
    state.counters["coalesced_ms"] = coalesced_ms;
    state.counters["hyb_ms"] = tuned.best.timeMs;
    state.counters["coalesce_gain"] = narrow_ms / coalesced_ms;
    state.counters["format_gain"] = coalesced_ms / tuned.best.timeMs;
}
BENCHMARK(BM_ScheduleAblation)->Iterations(1);

} // namespace

BENCHMARK_MAIN();
