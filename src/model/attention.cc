#include "model/attention.h"

#include "baselines/triton.h"
#include "baselines/vendor_constants.h"
#include "core/pipeline.h"
#include "format/bsr.h"

namespace sparsetir {
namespace model {

using namespace baselines;

namespace {

gpusim::SimOptions
oursOpts()
{
    gpusim::SimOptions opts;
    opts.efficiency = kSparseTirEfficiency;
    return opts;
}

gpusim::SimOptions
tritonOpts()
{
    gpusim::SimOptions opts;
    opts.efficiency = kTritonEfficiency;
    return opts;
}

} // namespace

AttentionTimes
attentionSpmm(const format::Csr &mask, const AttentionConfig &config,
              gpusim::Device &device)
{
    AttentionTimes times;
    format::Bsr bsr = format::bsrFromCsr(mask, config.blockSize);

    auto triton = tritonBlockSpmm(bsr, config.headDim);
    times.tritonMs =
        device.launch(*triton, tritonOpts()).timeMs * config.heads;

    auto csr_shared = std::make_shared<core::BindingSet>();
    auto csr_kernel = core::compileSpmmCsr(mask, config.headDim,
                                           csr_shared);
    runtime::NDArray b({mask.cols * config.headDim},
                       ir::DataType::float32());
    runtime::NDArray c({mask.rows * config.headDim},
                       ir::DataType::float32());
    csr_shared->external("B_data", &b);
    csr_shared->external("C_data", &c);
    times.sparsetirCsrMs =
        device.launch(csr_kernel->simKernel(), oursOpts()).timeMs *
        config.heads;

    auto bsr_shared = std::make_shared<core::BindingSet>();
    auto bsr_kernel = core::compileBsrSpmm(bsr, config.headDim,
                                           bsr_shared, true);
    runtime::NDArray b2(
        {bsr.blockCols * config.blockSize * config.headDim},
        ir::DataType::float32());
    runtime::NDArray c2(
        {bsr.blockRows * config.blockSize * config.headDim},
        ir::DataType::float32());
    bsr_shared->external("B_data", &b2);
    bsr_shared->external("C_data", &c2);
    times.sparsetirBsrMs =
        device.launch(bsr_kernel->simKernel(), oursOpts()).timeMs *
        config.heads;
    return times;
}

AttentionTimes
attentionSddmm(const format::Csr &mask, const AttentionConfig &config,
               gpusim::Device &device)
{
    AttentionTimes times;
    format::Bsr bsr = format::bsrFromCsr(mask, config.blockSize);

    auto triton = tritonBlockSddmm(bsr, config.headDim);
    times.tritonMs =
        device.launch(*triton, tritonOpts()).timeMs * config.heads;

    auto csr_shared = std::make_shared<core::BindingSet>();
    auto csr_kernel = core::compileSddmm(mask, config.headDim,
                                         csr_shared);
    runtime::NDArray x({mask.rows * config.headDim},
                       ir::DataType::float32());
    runtime::NDArray y({config.headDim * mask.cols},
                       ir::DataType::float32());
    runtime::NDArray out({mask.nnz()}, ir::DataType::float32());
    csr_shared->external("X_data", &x);
    csr_shared->external("Y_data", &y);
    csr_shared->external("B_data", &out);
    times.sparsetirCsrMs =
        device.launch(csr_kernel->simKernel(), oursOpts()).timeMs *
        config.heads;

    // SparseTIR BSR SDDMM: one thread block per block row; the X tile
    // is staged once (cache_read to shared) and reused across every
    // non-zero block of the row, unlike Triton's per-block reload.
    class RowPanelBsddmm : public gpusim::Kernel
    {
      public:
        RowPanelBsddmm(const format::Bsr &a, int64_t feat)
            : a_(a), feat_(feat)
        {
            baselines::AddrAllocator alloc;
            xBase_ = alloc.alloc(a.rows * feat * 2);
            yBase_ = alloc.alloc(a.cols * feat * 2);
            outBase_ = alloc.alloc(
                static_cast<int64_t>(a.values.size()) * 4);
        }

        std::string name() const override
        {
            return "sparsetir_bsddmm";
        }
        int64_t numBlocks() const override { return a_.blockRows; }

        void
        blockWork(int64_t br, gpusim::BlockWork *work) const override
        {
            int64_t bs = a_.blockSize;
            int32_t lo = a_.indptr[br];
            int32_t hi = a_.indptr[br + 1];
            if (lo == hi) {
                return;
            }
            // Stage the X panel once per block row.
            work->accesses.push_back(gpusim::MemAccess{
                xBase_ + static_cast<uint64_t>(br * bs * feat_ * 2),
                static_cast<uint32_t>(bs * feat_ * 2), 0, false});
            work->sharedBytes += static_cast<double>(bs * feat_ * 2);
            for (int32_t p = lo; p < hi; ++p) {
                int64_t bc = a_.indices[p];
                work->accesses.push_back(gpusim::MemAccess{
                    yBase_ + static_cast<uint64_t>(bc * bs * feat_ * 2),
                    static_cast<uint32_t>(bs * feat_ * 2), 0, false});
                work->tensorFlops += 2.0 * static_cast<double>(bs) *
                                     static_cast<double>(bs) *
                                     static_cast<double>(feat_);
                work->accesses.push_back(gpusim::MemAccess{
                    outBase_ + static_cast<uint64_t>(p) * bs * bs * 4,
                    static_cast<uint32_t>(bs * bs * 4), 0, true});
            }
        }

      private:
        const format::Bsr &a_;
        int64_t feat_;
        uint64_t xBase_, yBase_, outBase_;
    };

    RowPanelBsddmm ours(bsr, config.headDim);
    times.sparsetirBsrMs =
        device.launch(ours, oursOpts()).timeMs * config.heads;
    return times;
}

} // namespace model
} // namespace sparsetir
